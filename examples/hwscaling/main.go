// Hardware scaling — the paper's §6.2: train BlackForest on a Fermi
// GTX580, inject the Table 2 machine characteristics, and predict matrix-
// multiply execution times on a Kepler K20m. The example also runs the
// importance-similarity test and shows the mixed-variable workaround the
// paper needs for Needleman-Wunsch, where Fermi and Kepler counter
// rankings diverge.
//
// Run with: go run ./examples/hwscaling
package main

import (
	"fmt"
	"log"

	"blackforest"
)

func main() {
	gtx580, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		log.Fatal(err)
	}
	k20m, err := blackforest.LookupDevice("K20m")
	if err != nil {
		log.Fatal(err)
	}

	sweep := func(base uint64) []blackforest.Workload {
		var runs []blackforest.Workload
		for r := 0; r < 3; r++ {
			for n := 32; n <= 1024; n *= 2 {
				base++
				runs = append(runs, &blackforest.MatMul{N: n, Seed: base})
			}
		}
		return runs
	}
	opt := blackforest.CollectOptions{MaxSimBlocks: 16}

	fmt.Println("profiling matmul sweep on GTX580 (training GPU)...")
	trainFrame, err := blackforest.Collect(gtx580, sweep(1), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profiling matmul sweep on K20m (target GPU)...")
	opt.Seed = 99
	targetFrame, err := blackforest.Collect(k20m, sweep(1000), opt)
	if err != nil {
		log.Fatal(err)
	}

	cfg := blackforest.DefaultConfig()
	hw, err := blackforest.HardwareScale(trainFrame, targetFrame, gtx580, k20m, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntop variables on %s: %v\n", hw.TrainDevice, hw.TrainImportance)
	fmt.Printf("top variables on %s: %v\n", hw.TargetDevice, hw.TargetImportance)
	fmt.Printf("importance similarity: %.2f (similar: %v)\n\n", hw.Similarity, hw.Similar)

	fmt.Printf("straightforward K20m predictions: MSE %.4g, R² %.3f\n",
		hw.Straightforward.MSE, hw.Straightforward.R2)
	for i := range hw.Straightforward.Actual {
		fmt.Printf("  size=%5.0f measured=%8.4f ms predicted=%8.4f ms\n",
			hw.Straightforward.Chars[i]["size"],
			hw.Straightforward.Actual[i], hw.Straightforward.Predicted[i])
	}
	fmt.Printf("\nmixed-variable predictions (%v):\n  MSE %.4g, R² %.3f\n",
		hw.MixedVariables, hw.Mixed.MSE, hw.Mixed.R2)
}
