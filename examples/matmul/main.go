// Matrix-multiply problem scaling — the paper's §6.1.1: profile the tiled
// CUDA SDK matrix multiply over sizes 2^5..2^11 on a simulated GTX580,
// train the forest, retain the top counters, model them as functions of
// the matrix size, and predict execution times for sizes never profiled.
//
// Run with: go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"blackforest"
)

func main() {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		log.Fatal(err)
	}

	// 24 runs: sizes 2^5..2^11 with repeated fresh inputs.
	var runs []blackforest.Workload
	seed := uint64(100)
	for r := 0; r < 3; r++ {
		for n := 32; n <= 2048; n *= 2 {
			seed++
			runs = append(runs, &blackforest.MatMul{N: n, Seed: seed})
		}
	}
	for _, n := range []int{32, 64, 128} {
		seed++
		runs = append(runs, &blackforest.MatMul{N: n, Seed: seed})
	}

	frame, err := blackforest.Collect(dev, runs, blackforest.CollectOptions{MaxSimBlocks: 16})
	if err != nil {
		log.Fatal(err)
	}
	cfg := blackforest.DefaultConfig()
	analysis, err := blackforest.Analyze(frame, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("matmul on %s: %%var explained %.1f%%\n\n", dev.Name, 100*analysis.VarExplained)
	fmt.Println("top counters (the store-throughput family dominates, as in the paper):")
	for i, imp := range analysis.Importance {
		if i >= 6 {
			break
		}
		fmt.Printf("  %d. %-28s %.2f\n", i+1, imp.Name, imp.PctIncMSE)
	}

	scaler, err := blackforest.NewProblemScaler(analysis, cfg.TopK, blackforest.AutoModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncounter models (mean R² %.3f):\n", scaler.AverageCounterR2())
	for name, m := range scaler.Models {
		fmt.Printf("  %-28s %-5s R²=%.3f\n", name, m.Kind, m.TrainR2)
	}

	fmt.Println("\npredictions for unseen matrix sizes:")
	for _, n := range []float64{192, 384, 768, 1536} {
		t, err := scaler.PredictTime(map[string]float64{"size": n})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%5.0f → %8.4f ms\n", n, t)
	}
}
