// Reduction bottleneck analysis — the paper's §5 walk-through: run the
// BlackForest pipeline on the CUDA SDK reduction kernels 1, 2 and 6 and
// watch the counter signature change as each optimization lands:
//
//   - reduce1 (strided shared-memory indexing): the bank-conflict signal
//     (shared_replay_overhead, l1_shared_bank_conflict) is present in the
//     collected data and appears in the PCA's ILP/replay component;
//   - reduce2 (sequential addressing): the conflict counters are
//     identically zero — they vanish from the frame entirely, the paper's
//     "most important counter for reduce1 is the least important for
//     reduce2" in its strongest form;
//   - reduce6 (grid-stride + full unrolling): memory traffic counters
//     drive the model — the kernel is bandwidth-bound, as a reduction
//     should be.
//
// Run with: go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"blackforest"
)

func main() {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		log.Fatal(err)
	}
	cfg := blackforest.DefaultConfig()
	cfg.Forest.NTrees = 250

	for _, variant := range []int{1, 2, 6} {
		frame, err := blackforest.Collect(dev, sweep(variant), blackforest.CollectOptions{MaxSimBlocks: 16})
		if err != nil {
			log.Fatal(err)
		}
		analysis, err := blackforest.Analyze(frame, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== reduce%d: %%var explained %.1f%% ===\n", variant, 100*analysis.VarExplained)

		fmt.Println("top counters:")
		for i, imp := range analysis.Importance {
			if i >= 5 {
				break
			}
			fmt.Printf("  %d. %-28s %.2f\n", i+1, imp.Name, imp.PctIncMSE)
		}

		// The §5 headline: the conflict signal exists for reduce1 and is
		// dropped as constant-zero for reduce2 and reduce6.
		if frame.Has("shared_replay_overhead") {
			fmt.Println("bank-conflict signal: PRESENT (shared_replay_overhead varies)")
		} else {
			fmt.Println("bank-conflict signal: ABSENT (constant zero, dropped from the frame)")
		}

		bns, err := analysis.Bottlenecks(3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("diagnosis:")
		for _, b := range bns {
			fmt.Printf("  %-26s %-8s %s\n", b.Counter, b.Direction, b.Pattern)
		}

		// PCA refinement, as the paper applies when importance alone is
		// not conclusive.
		ref, err := analysis.PCARefine(false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PCA: %d components explain %.1f%% of variance\n\n",
			ref.Components, 100*ref.ExplainedVariance)
	}
}

// sweep builds the data-collection runs for one kernel variant.
func sweep(variant int) []blackforest.Workload {
	var runs []blackforest.Workload
	seed := uint64(10 * variant)
	for _, bs := range []int{128, 256, 512} {
		for n := 1 << 12; n <= 1<<21; n *= 2 {
			seed++
			runs = append(runs, &blackforest.Reduction{
				Variant: variant, N: n, BlockSize: bs, Seed: seed,
			})
		}
	}
	return runs
}
