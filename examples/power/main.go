// Power prediction — the paper's §7 extension: "our method is not limited
// to predicting execution time - one could use other metrics of interest,
// such as power, as response variable". This example trains BlackForest
// with the board's average power draw as the response, shows which
// counters drive consumption, and predicts the power of unseen sizes.
//
// Run with: go run ./examples/power
package main

import (
	"fmt"
	"log"

	"blackforest"
)

func main() {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		log.Fatal(err)
	}

	var runs []blackforest.Workload
	seed := uint64(1)
	for r := 0; r < 3; r++ {
		for n := 32; n <= 1024; n *= 2 {
			seed++
			runs = append(runs, &blackforest.MatMul{N: n, Seed: seed})
		}
	}
	frame, err := blackforest.Collect(dev, runs, blackforest.CollectOptions{MaxSimBlocks: 16})
	if err != nil {
		log.Fatal(err)
	}

	cfg := blackforest.DefaultConfig()
	cfg.Response = blackforest.PowerColumn
	analysis, err := blackforest.Analyze(frame, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power model on %s: %%var explained %.1f%%, test R² %.3f\n\n",
		dev.Name, 100*analysis.VarExplained, analysis.TestR2)

	fmt.Println("counters driving power draw:")
	for i, imp := range analysis.Importance {
		if i >= 6 {
			break
		}
		fmt.Printf("  %d. %-28s %.2f\n", i+1, imp.Name, imp.PctIncMSE)
	}

	scaler, err := blackforest.NewProblemScaler(analysis, cfg.TopK, blackforest.AutoModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted power draw for unseen matrix sizes:")
	for _, n := range []float64{192, 384, 768} {
		p, err := scaler.PredictTime(map[string]float64{"size": n}) // response is power_w here
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%5.0f → %6.1f W\n", n, p)
	}
}
