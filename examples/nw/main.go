// Needleman-Wunsch problem scaling — the paper's §6.1.2: profile the
// Rodinia NW aligner over sequence lengths on a simulated GTX580 and
// predict unseen lengths using MARS counter models (the R "earth"
// equivalent), as the paper does when simple linear models are inadequate.
//
// Run with: go run ./examples/nw
package main

import (
	"fmt"
	"log"

	"blackforest"
)

func main() {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		log.Fatal(err)
	}

	// Sequence lengths 64..2048 with a pitch of 64.
	var runs []blackforest.Workload
	seed := uint64(7)
	for n := 64; n <= 2048; n += 64 {
		seed++
		runs = append(runs, &blackforest.NeedlemanWunsch{SeqLen: n, Seed: seed})
	}
	frame, err := blackforest.Collect(dev, runs, blackforest.CollectOptions{MaxSimBlocks: 16})
	if err != nil {
		log.Fatal(err)
	}

	cfg := blackforest.DefaultConfig()
	analysis, err := blackforest.Analyze(frame, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("needle on %s: %%var explained %.1f%%, test R² %.3f\n\n",
		dev.Name, 100*analysis.VarExplained, analysis.TestR2)

	fmt.Println("top predictors (occupancy and size lead, as in Fig 6a):")
	for i, imp := range analysis.Importance {
		if i >= 8 {
			break
		}
		fmt.Printf("  %d. %-28s %.2f\n", i+1, imp.Name, imp.PctIncMSE)
	}

	scaler, err := blackforest.NewProblemScaler(analysis, cfg.TopK, blackforest.MARSModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMARS counter models, mean R² %.3f (paper: 0.99)\n", scaler.AverageCounterR2())

	fmt.Println("\npredictions for unseen sequence lengths:")
	for _, n := range []float64{96, 352, 1120, 1696} {
		t, err := scaler.PredictTime(map[string]float64{"size": n})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  len=%5.0f → %8.4f ms\n", n, t)
	}
}
