// Heterogeneous workload partitioning — the paper's closing §7 claim:
// "we believe our approach is very useful in the context of emerging
// CPU+GPUs heterogeneous systems, where performance modeling is key to
// determine workload partitioning … As BF is equally applicable for all
// processing units in the platform, we can provide a unified modeling
// approach for heterogeneous platforms."
//
// This example trains one BlackForest time model per processing unit —
// the simulated GTX580 running the SDK reduction, and a Xeon-class CPU
// model running the multicore SIMD reduction — then sweeps the split
// fraction β of a large array and picks the β minimizing the makespan
// max(T_cpu(β·N), T_gpu((1−β)·N)), Glinda-style.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"blackforest"
)

func main() {
	// --- GPU time model ---
	gpu, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		log.Fatal(err)
	}
	var gpuRuns []blackforest.Workload
	seed := uint64(1)
	for n := 1 << 16; n <= 1<<24; n = n * 3 / 2 {
		for r := 0; r < 2; r++ {
			seed++
			gpuRuns = append(gpuRuns, &blackforest.Reduction{Variant: 6, N: n, BlockSize: 256, Seed: seed})
		}
	}
	gpuFrame, err := blackforest.Collect(gpu, gpuRuns, blackforest.CollectOptions{MaxSimBlocks: 16})
	if err != nil {
		log.Fatal(err)
	}
	cfg := blackforest.DefaultConfig()
	cfg.Forest.NTrees = 200
	gpuAnalysis, err := blackforest.Analyze(gpuFrame, cfg)
	if err != nil {
		log.Fatal(err)
	}
	gpuScaler, err := blackforest.NewProblemScaler(gpuAnalysis, 6, blackforest.AutoModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU (%s) reduce6 model: %%var explained %.1f%%\n", gpu.Name, 100*gpuAnalysis.VarExplained)

	// --- CPU time model (same pipeline, CPU counters) ---
	cpu, err := blackforest.LookupCPU("XeonE5")
	if err != nil {
		log.Fatal(err)
	}
	cp := blackforest.NewCPUProfiler(cpu, 0, 7)
	var cpuProfiles []*blackforest.Profile
	for n := 1 << 14; n <= 1<<24; n = n * 3 / 2 {
		for r := 0; r < 2; r++ {
			prof, err := cp.Run(&blackforest.CPUReduction{N: n})
			if err != nil {
				log.Fatal(err)
			}
			cpuProfiles = append(cpuProfiles, prof)
		}
	}
	cpuFrame, err := blackforest.FrameFromProfiles(cpuProfiles)
	if err != nil {
		log.Fatal(err)
	}
	cpuAnalysis, err := blackforest.Analyze(cpuFrame, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cpuScaler, err := blackforest.NewProblemScaler(cpuAnalysis, 6, blackforest.AutoModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU (%s) reduce model:  %%var explained %.1f%%\n\n", cpu.Name, 100*cpuAnalysis.VarExplained)

	// --- Partitioning: split N elements, run both units concurrently ---
	const totalN = 10_000_000 // unseen by either model, inside both ranges
	predict := func(scaler *blackforest.ProblemScaler, n float64, gpuSide bool) float64 {
		chars := map[string]float64{"size": n}
		if gpuSide {
			chars["block_size"] = 256
		}
		t, err := scaler.PredictTime(chars)
		if err != nil {
			log.Fatal(err)
		}
		return t
	}

	fmt.Printf("partitioning a %d-element reduction:\n", totalN)
	fmt.Println("  β(CPU)  T_cpu(ms)  T_gpu(ms)  makespan(ms)")
	bestBeta, bestMakespan := 0.0, predict(gpuScaler, totalN, true)
	for beta := 0.0; beta <= 0.5001; beta += 0.05 {
		cpuN := beta * totalN
		gpuN := (1 - beta) * totalN
		tc := 0.0
		if cpuN >= 1 {
			tc = predict(cpuScaler, cpuN, false)
		}
		tg := predict(gpuScaler, gpuN, true)
		makespan := tc
		if tg > makespan {
			makespan = tg
		}
		fmt.Printf("  %5.2f   %8.4f   %8.4f   %8.4f\n", beta, tc, tg, makespan)
		if makespan < bestMakespan {
			bestBeta, bestMakespan = beta, makespan
		}
	}
	gpuOnly := predict(gpuScaler, totalN, true)
	fmt.Printf("\noptimal split: %.0f%% CPU / %.0f%% GPU — makespan %.4f ms (GPU-only: %.4f ms)\n",
		100*bestBeta, 100*(1-bestBeta), bestMakespan, gpuOnly)
}
