// Quickstart: profile the CUDA SDK reduce2 kernel over a handful of array
// sizes on a simulated GTX580, train the BlackForest random forest, print
// the most influential performance counters, and predict the execution
// time of an unseen size.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"blackforest"
)

func main() {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1 — data collection: one run per (size, block size) pair.
	var runs []blackforest.Workload
	seed := uint64(1)
	for _, bs := range []int{128, 256, 512} {
		for n := 1 << 12; n <= 1<<20; n *= 4 {
			seed++
			runs = append(runs, &blackforest.Reduction{
				Variant: 2, N: n, BlockSize: bs, Seed: seed,
			})
		}
	}
	frame, err := blackforest.Collect(dev, runs, blackforest.CollectOptions{MaxSimBlocks: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d runs × %d variables on %s\n", frame.NumRows(), frame.NumCols(), dev.Name)

	// Stages 2–3 — forest construction, validation, variable importance.
	cfg := blackforest.DefaultConfig()
	cfg.Forest.NTrees = 200
	analysis, err := blackforest.Analyze(frame, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forest: OOB %%var explained %.1f%%, held-out R² %.3f\n\n",
		100*analysis.VarExplained, analysis.TestR2)

	fmt.Println("most influential counters (%IncMSE):")
	for i, imp := range analysis.Importance {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-28s %.3f\n", i+1, imp.Name, imp.PctIncMSE)
	}

	// Stage 5 — problem scaling: predict an unseen size.
	scaler, err := blackforest.NewProblemScaler(analysis, cfg.TopK, blackforest.AutoModel)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []float64{100_000, 2_000_000} {
		t, err := scaler.PredictTime(map[string]float64{"size": n, "block_size": 256})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npredicted time for unseen size %.0f (block 256): %.4f ms", n, t)
	}
	fmt.Println()
}
