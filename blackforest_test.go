package blackforest_test

import (
	"testing"

	"blackforest"
)

// TestPublicAPIEndToEnd drives the whole pipeline through the facade the
// way the README's quick start does: collect → analyze → importance →
// bottlenecks → problem-scaling prediction.
func TestPublicAPIEndToEnd(t *testing.T) {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Name != "GTX580" {
		t.Fatal("device lookup wrong")
	}

	var runs []blackforest.Workload
	seed := uint64(1)
	for _, bs := range []int{128, 256} {
		for n := 1 << 12; n <= 1<<19; n *= 2 {
			seed++
			runs = append(runs, &blackforest.Reduction{Variant: 1, N: n, BlockSize: bs, Seed: seed})
		}
	}
	frame, err := blackforest.Collect(dev, runs, blackforest.CollectOptions{MaxSimBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if frame.NumRows() != len(runs) {
		t.Fatalf("collected %d rows, want %d", frame.NumRows(), len(runs))
	}

	cfg := blackforest.DefaultConfig()
	cfg.Forest.NTrees = 100
	cfg.Seed = 7
	analysis, err := blackforest.Analyze(frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if analysis.VarExplained < 0.3 {
		t.Fatalf("%%var explained %.2f too low for a clean sweep", analysis.VarExplained)
	}
	if len(analysis.Importance) < 15 {
		t.Fatalf("importance covers only %d predictors", len(analysis.Importance))
	}

	bns, err := analysis.Bottlenecks(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bns) != 5 {
		t.Fatalf("%d bottlenecks", len(bns))
	}

	scaler, err := blackforest.NewProblemScaler(analysis, cfg.TopK, blackforest.AutoModel)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := scaler.PredictTime(map[string]float64{"size": 300000, "block_size": 256})
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 {
		t.Fatalf("non-positive predicted time %v", pred)
	}
}

func TestDeviceNames(t *testing.T) {
	names := blackforest.DeviceNames()
	want := map[string]bool{"GTX480": true, "GTX580": true, "K20m": true}
	if len(names) != len(want) {
		t.Fatalf("devices %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected device %s", n)
		}
	}
}

func TestProfilerFacade(t *testing.T) {
	dev, err := blackforest.LookupDevice("K20m")
	if err != nil {
		t.Fatal(err)
	}
	p := blackforest.NewProfiler(dev, blackforest.ProfilerOptions{MaxSimBlocks: 8, NoiseSigma: -1})
	prof, err := p.Run(&blackforest.MatMul{N: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Device != "K20m" || prof.TimeMS <= 0 {
		t.Fatalf("profile wrong: %+v", prof)
	}
	// Kepler profile must not expose Fermi-only counters.
	if _, ok := prof.Metrics["l1_global_load_miss"]; ok {
		t.Fatal("Fermi counter leaked into Kepler profile")
	}
}

func TestInjectMachineCharacteristicsFacade(t *testing.T) {
	dev, _ := blackforest.LookupDevice("GTX480")
	var runs []blackforest.Workload
	for i, n := range []int{4096, 8192, 16384} {
		runs = append(runs, &blackforest.Reduction{Variant: 2, N: n, BlockSize: 256, Seed: uint64(i)})
	}
	frame, err := blackforest.Collect(dev, runs, blackforest.CollectOptions{MaxSimBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	out, err := blackforest.InjectMachineCharacteristics(frame, dev)
	if err != nil {
		t.Fatal(err)
	}
	col, err := out.Column("freq")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 1.4 {
		t.Fatalf("freq %v, want 1.4", col[0])
	}
}
