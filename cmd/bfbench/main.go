// bfbench regenerates the paper's tables and figures.
//
// Usage:
//
//	bfbench -exp all                 # every table and figure
//	bfbench -exp fig5 -scale full    # one experiment at paper scale
//	bfbench -exp fig2,fig3,fig4      # the §5 reduction analyses
//
// Output is the text/chart rendering of each table or figure; -csvdir
// additionally writes the underlying series as CSV files for replotting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"blackforest/internal/experiments"
	"blackforest/internal/report"
)

// benchReport is the machine-readable run record written by -json: one
// wall-clock entry per experiment, so CI can archive regeneration timings
// (BENCH.json) next to the rendered output and track drift across commits.
type benchReport struct {
	GeneratedUnix int64             `json:"generated_unix"`
	GoVersion     string            `json:"go_version"`
	GOOS          string            `json:"goos"`
	GOARCH        string            `json:"goarch"`
	Scale         string            `json:"scale"`
	Seed          uint64            `json:"seed"`
	Workers       int               `json:"workers"`
	Experiments   []benchExperiment `json:"experiments"`
	TotalMS       float64           `json:"total_ms"`
}

type benchExperiment struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table1,table2,fig2..fig8, power, ladder, transpose, histogram, predict, or all")
	scale := flag.String("scale", "full", "experiment scale: quick or full")
	seed := flag.Uint64("seed", 1, "random seed")
	csvdir := flag.String("csvdir", "", "directory for CSV series output (optional)")
	workers := flag.Int("workers", 0, "concurrent profiling runs during collection (0 = all CPUs)")
	jsonPath := flag.String("json", "", "write per-experiment timings as JSON to this file (e.g. BENCH.json)")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Workers: *workers}
	switch *scale {
	case "quick":
		opts.Scale = experiments.Quick
	case "full":
		opts.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "bfbench: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}

	var names []string
	if *exp == "all" {
		names = []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "power", "ladder", "transpose", "histogram", "predict"}
	} else {
		names = strings.Split(*exp, ",")
	}

	rep := benchReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Scale:         *scale,
		Seed:          *seed,
		Workers:       *workers,
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		if err := run(name, opts, *csvdir); err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		rep.Experiments = append(rep.Experiments, benchExperiment{
			Name: name, MS: float64(elapsed.Microseconds()) / 1e3,
		})
		rep.TotalMS += float64(elapsed.Microseconds()) / 1e3
		fmt.Printf("\n[%s completed in %v]\n\n", name, elapsed.Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}

func writeBenchJSON(path string, rep *benchReport) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func run(name string, opts experiments.Options, csvdir string) error {
	w := os.Stdout
	switch name {
	case "table1":
		return experiments.RenderTable1(w)
	case "table2":
		return experiments.RenderTable2(w)
	case "fig2", "fig3", "fig4":
		variant := map[string]int{"fig2": 1, "fig3": 2, "fig4": 6}[name]
		res, err := experiments.RunReductionAnalysis(variant, opts)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		if csvdir != "" {
			return writeCSV(csvdir, name+"_partial_dependence.csv", res.PDName, res.PDGrid,
				[]report.Series{{Name: "predicted_time_ms", Y: res.PDResponse}})
		}
		return nil
	case "fig5", "fig6":
		var res *experiments.ProblemScaling
		var err error
		if name == "fig5" {
			res, err = experiments.RunMatMulPrediction(opts)
		} else {
			res, err = experiments.RunNWPrediction(opts)
		}
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		if csvdir != "" {
			sizes := make([]float64, len(res.Eval.Chars))
			for i, c := range res.Eval.Chars {
				sizes[i] = c["size"]
			}
			if err := writeCSV(csvdir, name+"_predictions.csv", "size", sizes, []report.Series{
				{Name: "measured_ms", Y: res.Eval.Actual},
				{Name: "predicted_ms", Y: res.Eval.Predicted},
			}); err != nil {
				return err
			}
			for _, cs := range res.CounterSeries {
				if err := writeCSV(csvdir, fmt.Sprintf("%s_counter_%s.csv", name, cs.Counter),
					"size", cs.Sizes, []report.Series{
						{Name: "measured", Y: cs.Measured},
						{Name: "modeled", Y: cs.Modeled},
					}); err != nil {
					return err
				}
			}
		}
		return nil
	case "fig7", "fig8":
		var res *experiments.HWScaling
		var err error
		if name == "fig7" {
			res, err = experiments.RunHWScalingMM(opts)
		} else {
			res, err = experiments.RunHWScalingNW(opts)
		}
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		if csvdir != "" {
			sizes := make([]float64, len(res.Result.Mixed.Chars))
			for i, c := range res.Result.Mixed.Chars {
				sizes[i] = c["size"]
			}
			return writeCSV(csvdir, name+"_predictions.csv", "size", sizes, []report.Series{
				{Name: "measured_ms", Y: res.Result.Mixed.Actual},
				{Name: "straightforward_ms", Y: res.Result.Straightforward.Predicted},
				{Name: "mixed_ms", Y: res.Result.Mixed.Predicted},
			})
		}
		return nil
	case "power":
		res, err := experiments.RunPowerPrediction(opts)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "ladder":
		res, err := experiments.RunReductionLadder(opts)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "transpose":
		for v := 0; v <= 2; v++ {
			res, err := experiments.RunTransposeAnalysis(v, opts)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	case "predict":
		res, err := experiments.RunPredictBench(opts)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "histogram":
		for v := 0; v <= 1; v++ {
			res, err := experiments.RunHistogramAnalysis(v, opts)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func writeCSV(dir, file, xName string, xs []float64, series []report.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, file))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteSeriesCSV(f, xName, xs, series); err != nil {
		return err
	}
	return f.Close()
}
