// bfbench regenerates the paper's tables and figures.
//
// Usage:
//
//	bfbench -exp all                 # every table and figure
//	bfbench -exp fig5 -scale full    # one experiment at paper scale
//	bfbench -exp fig2,fig3,fig4      # the §5 reduction analyses
//	bfbench -exp all -cache-dir .cache -warm
//
// Output is the text/chart rendering of each table or figure; -csvdir
// additionally writes the underlying series as CSV files for replotting.
//
// All experiments in one invocation share a run cache and a global
// simulation worker pool: a workload run collected by several experiments
// simulates once, and -cache-dir persists profiles across invocations so
// a warm rerun skips simulation entirely. Cached profiles are
// bit-identical to recomputed ones, so every rendering is unchanged.
// -warm times a second in-process pass over the same experiments and
// verifies its output is byte-identical to the cold pass.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"blackforest/internal/buildinfo"
	"blackforest/internal/experiments"
	"blackforest/internal/obs"
	"blackforest/internal/report"
	"blackforest/internal/runcache"
)

// laneExpBase is the trace-lane offset for experiment spans: profiling
// worker lanes are 0..workers-1, so experiment slots live far above them.
const laneExpBase = 1000

// benchReport is the machine-readable run record written by -json: one
// wall-clock entry per experiment, so CI can archive regeneration timings
// (BENCH.json) next to the rendered output and track drift across commits.
// New fields only ever extend the schema; existing consumers keep working.
type benchReport struct {
	GeneratedUnix int64             `json:"generated_unix"`
	GoVersion     string            `json:"go_version"`
	GOOS          string            `json:"goos"`
	GOARCH        string            `json:"goarch"`
	Scale         string            `json:"scale"`
	Seed          uint64            `json:"seed"`
	Workers       int               `json:"workers"`
	ExpWorkers    int               `json:"exp_workers,omitempty"`
	Experiments   []benchExperiment `json:"experiments"`
	TotalMS       float64           `json:"total_ms"`
	// ColdMS/WarmMS are the totals of the two -warm passes; without
	// -warm only TotalMS is meaningful (and ColdMS mirrors it).
	ColdMS float64 `json:"cold_ms,omitempty"`
	WarmMS float64 `json:"warm_ms,omitempty"`
	// Cache snapshots the shared run cache's counters at exit; CI
	// asserts a fully warm invocation reports zero misses.
	Cache    *runcache.Stats `json:"cache,omitempty"`
	CacheDir string          `json:"cache_dir,omitempty"`
}

type benchExperiment struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
	// WarmMS is the experiment's wall time in the -warm pass.
	WarmMS float64 `json:"warm_ms,omitempty"`
	// AllocsPerOp/BytesPerOp are the heap allocations attributed to one
	// execution of the experiment, sampled with runtime.MemStats. Only
	// recorded when experiments run one at a time (-expworkers 1);
	// concurrent experiments would attribute each other's allocations.
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  uint64 `json:"bytes_per_op,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table1,table2,fig2..fig8, power, ladder, transpose, histogram, optimize, predict, or all")
	scale := flag.String("scale", "full", "experiment scale: quick or full")
	seed := flag.Uint64("seed", 1, "random seed")
	csvdir := flag.String("csvdir", "", "directory for CSV series output (optional)")
	workers := flag.Int("workers", 0, "size of the shared simulation worker pool (0 = all CPUs)")
	expWorkers := flag.Int("expworkers", 1, "experiments run concurrently (their profiling runs always share one pool)")
	cacheDir := flag.String("cache-dir", "", "persist the run cache on disk in this directory (\"\" = in-memory only)")
	cacheMem := flag.Int("cache-mem", 0, "max in-memory cache entries (0 = default)")
	warm := flag.Bool("warm", false, "rerun all experiments against the warm cache and record cold/warm timings")
	jsonPath := flag.String("json", "", "write per-experiment timings as JSON to this file (e.g. BENCH.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	tracePath := flag.String("trace", "", "write the run's span tree as Chrome trace-event JSON to this file (open in Perfetto or chrome://tracing)")
	version := flag.Bool("version", false, "print version and build info, then exit")
	flag.Parse()

	if *version {
		buildinfo.Get("bfbench").Print(os.Stdout)
		return
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(nil)
	}

	opts := experiments.Options{Seed: *seed, Workers: *workers}
	switch *scale {
	case "quick":
		opts.Scale = experiments.Quick
	case "full":
		opts.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "bfbench: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	engine, err := experiments.NewEngine(experiments.EngineConfig{
		CacheDir:      *cacheDir,
		MaxMemEntries: *cacheMem,
		Workers:       *workers,
		Tracer:        tracer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfbench: opening run cache: %v\n", err)
		os.Exit(1)
	}
	opts.Engine = engine

	var names []string
	if *exp == "all" {
		names = []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "power", "ladder", "transpose", "histogram", "optimize", "predict"}
	} else {
		names = strings.Split(*exp, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
		defer f.Close()
	}

	rep := benchReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Scale:         *scale,
		Seed:          *seed,
		Workers:       *workers,
		ExpWorkers:    *expWorkers,
		CacheDir:      *cacheDir,
	}

	cold, err := runPass(names, opts, *csvdir, *expWorkers, os.Stdout, tracer, "cold")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfbench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range cold {
		rep.Experiments = append(rep.Experiments, benchExperiment{
			Name: r.name, MS: r.ms, AllocsPerOp: r.allocs, BytesPerOp: r.bytes,
		})
		rep.TotalMS += r.ms
	}
	rep.ColdMS = rep.TotalMS

	if *warm {
		warmRes, err := runPass(names, opts, "", *expWorkers, io.Discard, tracer, "warm")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: warm pass: %v\n", err)
			os.Exit(1)
		}
		for i, r := range warmRes {
			if !bytes.Equal(r.output, cold[i].output) {
				fmt.Fprintf(os.Stderr, "bfbench: warm pass of %s rendered different output than cold pass — cache is not bit-identical\n", r.name)
				os.Exit(1)
			}
			rep.Experiments[i].WarmMS = r.ms
			rep.WarmMS += r.ms
		}
		fmt.Printf("[warm pass: %.0f ms vs cold %.0f ms, output byte-identical]\n", rep.WarmMS, rep.ColdMS)
	}

	stats := engine.Stats()
	rep.Cache = &stats
	if tracer.Enabled() {
		if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[trace: %d events written to %s]\n", tracer.Len(), *tracePath)
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bfbench: writing heap profile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// expResult is one experiment's execution record within a pass.
type expResult struct {
	name   string
	output []byte
	ms     float64
	allocs uint64
	bytes  uint64
	err    error
}

// runPass executes the experiments — up to expWorkers concurrently, each
// rendering into its own buffer — and streams the rendered output to w in
// input order. Per-experiment allocation figures are only sampled when
// experiments run sequentially; concurrent experiments share the heap, so
// attribution would be noise.
func runPass(names []string, opts experiments.Options, csvdir string, expWorkers int, w io.Writer, tracer *obs.Tracer, pass string) ([]*expResult, error) {
	if expWorkers < 1 {
		expWorkers = 1
	}
	measureAllocs := expWorkers == 1
	// Experiment slots carry ids so each maps to a stable trace lane,
	// mirroring the profiler's gate.
	sem := make(chan int, expWorkers)
	for s := 0; s < expWorkers; s++ {
		sem <- s
		tracer.SetLaneName(laneExpBase+s, fmt.Sprintf("experiment-%d", s))
	}
	results := make([]*expResult, len(names))
	done := make([]chan struct{}, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		done[i] = make(chan struct{})
		results[i] = &expResult{name: name}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			defer close(done[i])
			slot := <-sem
			defer func() { sem <- slot }()
			sp := tracer.Begin(laneExpBase+slot, "exp "+name).Arg("pass", pass)
			defer sp.End()
			r := results[i]
			var m0, m1 runtime.MemStats
			if measureAllocs {
				runtime.ReadMemStats(&m0)
			}
			var buf bytes.Buffer
			start := time.Now()
			r.err = run(name, opts, csvdir, &buf)
			r.ms = float64(time.Since(start).Microseconds()) / 1e3
			if measureAllocs {
				runtime.ReadMemStats(&m1)
				r.allocs = m1.Mallocs - m0.Mallocs
				r.bytes = m1.TotalAlloc - m0.TotalAlloc
			}
			r.output = buf.Bytes()
		}(i, name)
	}
	var firstErr error
	for i := range names {
		<-done[i]
		r := results[i]
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", r.name, r.err)
			}
			continue
		}
		if firstErr == nil {
			w.Write(r.output)
			fmt.Fprintf(w, "\n[%s completed in %.0f ms]\n\n", r.name, r.ms)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

func writeBenchJSON(path string, rep *benchReport) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func run(name string, opts experiments.Options, csvdir string, w io.Writer) error {
	switch name {
	case "table1":
		return experiments.RenderTable1(w)
	case "table2":
		return experiments.RenderTable2(w)
	case "fig2", "fig3", "fig4":
		variant := map[string]int{"fig2": 1, "fig3": 2, "fig4": 6}[name]
		res, err := experiments.RunReductionAnalysis(variant, opts)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		if csvdir != "" {
			return writeCSV(csvdir, name+"_partial_dependence.csv", res.PDName, res.PDGrid,
				[]report.Series{{Name: "predicted_time_ms", Y: res.PDResponse}})
		}
		return nil
	case "fig5", "fig6":
		var res *experiments.ProblemScaling
		var err error
		if name == "fig5" {
			res, err = experiments.RunMatMulPrediction(opts)
		} else {
			res, err = experiments.RunNWPrediction(opts)
		}
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		if csvdir != "" {
			sizes := make([]float64, len(res.Eval.Chars))
			for i, c := range res.Eval.Chars {
				sizes[i] = c["size"]
			}
			if err := writeCSV(csvdir, name+"_predictions.csv", "size", sizes, []report.Series{
				{Name: "measured_ms", Y: res.Eval.Actual},
				{Name: "predicted_ms", Y: res.Eval.Predicted},
			}); err != nil {
				return err
			}
			for _, cs := range res.CounterSeries {
				if err := writeCSV(csvdir, fmt.Sprintf("%s_counter_%s.csv", name, cs.Counter),
					"size", cs.Sizes, []report.Series{
						{Name: "measured", Y: cs.Measured},
						{Name: "modeled", Y: cs.Modeled},
					}); err != nil {
					return err
				}
			}
		}
		return nil
	case "fig7", "fig8":
		var res *experiments.HWScaling
		var err error
		if name == "fig7" {
			res, err = experiments.RunHWScalingMM(opts)
		} else {
			res, err = experiments.RunHWScalingNW(opts)
		}
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		if csvdir != "" {
			sizes := make([]float64, len(res.Result.Mixed.Chars))
			for i, c := range res.Result.Mixed.Chars {
				sizes[i] = c["size"]
			}
			return writeCSV(csvdir, name+"_predictions.csv", "size", sizes, []report.Series{
				{Name: "measured_ms", Y: res.Result.Mixed.Actual},
				{Name: "straightforward_ms", Y: res.Result.Straightforward.Predicted},
				{Name: "mixed_ms", Y: res.Result.Mixed.Predicted},
			})
		}
		return nil
	case "power":
		res, err := experiments.RunPowerPrediction(opts)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "ladder":
		res, err := experiments.RunReductionLadder(opts)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "optimize":
		res, err := experiments.RunOptimizer(opts)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "transpose":
		for v := 0; v <= 2; v++ {
			res, err := experiments.RunTransposeAnalysis(v, opts)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	case "predict":
		res, err := experiments.RunPredictBench(opts)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "histogram":
		for v := 0; v <= 1; v++ {
			res, err := experiments.RunHistogramAnalysis(v, opts)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func writeCSV(dir, file, xName string, xs []float64, series []report.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, file))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteSeriesCSV(f, xName, xs, series); err != nil {
		return err
	}
	return f.Close()
}
