package main

import "testing"

func TestParseChars(t *testing.T) {
	dists, err := parseChars("size=64:4096, threads=1:32")
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 2 {
		t.Fatalf("%d dists", len(dists))
	}
	if dists[0].Name != "size" || dists[0].Min != 64 || dists[0].Max != 4096 {
		t.Fatalf("dist 0: %+v", dists[0])
	}
	if dists[1].Name != "threads" || dists[1].Min != 1 || dists[1].Max != 32 {
		t.Fatalf("dist 1: %+v", dists[1])
	}

	for _, bad := range []string{
		"",
		"size",
		"size=64",
		"=64:128",
		"size=a:b",
		"size=128:64",
		"size=64:",
	} {
		if d, err := parseChars(bad); err == nil {
			t.Errorf("parseChars(%q) accepted: %+v", bad, d)
		}
	}
}
