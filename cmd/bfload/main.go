// bfload replays synthetic predict traffic against a running bfserve and
// reports throughput and latency quantiles as JSON. Characteristic vectors
// are sampled from the served bundle's own training scales, so the replayed
// traffic looks like the problems the model was fitted on:
//
//	bfload -url http://localhost:8391 -bundle model.json -n 5000 -concurrency 16
//	bfload -url http://localhost:8391 -model matmul -bundle models/matmul.json \
//	       -n 2000 -qps 500 -json report.json
//
// Without -bundle, give the distributions explicitly:
//
//	bfload -chars "size=64:262144,threads=1:32" -n 1000
//
// The request sequence is deterministic in -seed: two runs with the same
// seed offer byte-identical bodies in the same order, so reports are
// comparable across server configurations (cache on/off, coalescing
// windows, worker counts).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"blackforest/internal/buildinfo"
	"blackforest/internal/core"
	"blackforest/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://localhost:8391", "bfserve base URL")
	model := flag.String("model", "", "route requests to /v1/models/{name}/predict (empty = default-model /v1/predict)")
	bundle := flag.String("bundle", "", "model bundle to sample characteristic distributions from")
	chars := flag.String("chars", "", `explicit characteristic ranges, e.g. "size=64:4096,threads=1:32" (overrides -bundle)`)
	n := flag.Int("n", 1000, "total predict requests to send")
	concurrency := flag.Int("concurrency", 8, "concurrent worker connections")
	qps := flag.Float64("qps", 0, "target offered rate (0 = as fast as possible)")
	seed := flag.Uint64("seed", 1, "seed for the synthetic request sequence")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	jsonOut := flag.String("json", "", "write the JSON report to this file (default stdout)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		buildinfo.Get("bfload").Print(os.Stdout)
		return
	}

	var dists []loadgen.CharDist
	var err error
	switch {
	case *chars != "":
		dists, err = parseChars(*chars)
	case *bundle != "":
		var ps *core.ProblemScaler
		if ps, err = core.LoadProblemScalerFile(*bundle); err == nil {
			dists = loadgen.DistsFromScaler(ps)
		}
	default:
		err = fmt.Errorf("one of -bundle or -chars is required")
	}
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     strings.TrimRight(*url, "/"),
		Model:       *model,
		N:           *n,
		Concurrency: *concurrency,
		QPS:         *qps,
		Seed:        *seed,
		Chars:       dists,
		Timeout:     *timeout,
	})
	if err != nil {
		fatal(err)
	}

	out := os.Stdout
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
		fmt.Printf("%d requests in %.1f ms: %.0f req/s, p50 %.3f ms, p99 %.3f ms, %d errors\n",
			rep.Requests, rep.DurationMS, rep.Throughput,
			rep.LatencyMS.P50, rep.LatencyMS.P99, rep.Errors)
	}
	if err := rep.WriteJSON(out); err != nil {
		fatal(err)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// parseChars parses "name=min:max,name=min:max" into distributions.
func parseChars(spec string) ([]loadgen.CharDist, error) {
	var dists []loadgen.CharDist
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rng, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad characteristic %q (want name=min:max)", part)
		}
		lo, hi, ok := strings.Cut(rng, ":")
		if !ok {
			return nil, fmt.Errorf("bad range %q for %q (want min:max)", rng, name)
		}
		min, err := strconv.ParseFloat(lo, 64)
		if err != nil {
			return nil, fmt.Errorf("bad min for %q: %w", name, err)
		}
		max, err := strconv.ParseFloat(hi, 64)
		if err != nil {
			return nil, fmt.Errorf("bad max for %q: %w", name, err)
		}
		if max < min {
			return nil, fmt.Errorf("range for %q is reversed (%g > %g)", name, min, max)
		}
		dists = append(dists, loadgen.CharDist{Name: name, Min: min, Max: max})
	}
	if len(dists) == 0 {
		return nil, fmt.Errorf("no characteristics in %q", spec)
	}
	return dists, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfload:", err)
	os.Exit(1)
}
