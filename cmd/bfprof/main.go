// bfprof is the nvprof-style profiling front end: it runs one of the
// bundled kernels on a simulated device and prints the counter values, in
// either nvprof-like CSV or the pipeline's frame CSV (with -sweep).
//
// Usage:
//
//	bfprof -kernel reduce2 -device GTX580 -size 1048576
//	bfprof -kernel matmul -device K20m -size 512
//	bfprof -kernel needle -sweep 64:1024:64 > needle.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
)

func main() {
	kernel := flag.String("kernel", "reduce2", "kernel: reduce0..reduce6, transpose0..transpose2, histogram0..histogram1, matmul, needle")
	device := flag.String("device", "GTX580", "device: "+strings.Join(gpusim.DeviceNames(), ", "))
	size := flag.Int("size", 1<<20, "problem size (array length, matrix dim, or sequence length)")
	blockSize := flag.Int("block", 256, "threads per block (reduction kernels)")
	sweep := flag.String("sweep", "", "profile a size sweep lo:hi:step and emit a frame CSV")
	maxBlocks := flag.Int("simblocks", 24, "max thread blocks simulated in detail per launch (0 = all)")
	seed := flag.Uint64("seed", 1, "input-data seed")
	workers := flag.Int("workers", 0, "concurrent profiling runs with -sweep (0 = all CPUs)")
	flag.Parse()

	dev, err := gpusim.LookupDevice(*device)
	if err != nil {
		fatal(err)
	}
	p := profiler.New(dev, profiler.Options{MaxSimBlocks: *maxBlocks, Seed: *seed})

	if *sweep != "" {
		lo, hi, step, err := parseSweep(*sweep)
		if err != nil {
			fatal(err)
		}
		var runs []profiler.Workload
		for n := lo; n <= hi; n += step {
			w, err := makeWorkload(*kernel, n, *blockSize, *seed+uint64(n))
			if err != nil {
				fatal(err)
			}
			runs = append(runs, w)
		}
		profiles, err := p.RunAll(runs, *workers)
		if err != nil {
			fatal(err)
		}
		frame, err := profiler.ToFrame(profiles)
		if err != nil {
			fatal(err)
		}
		if err := frame.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	w, err := makeWorkload(*kernel, *size, *blockSize, *seed)
	if err != nil {
		fatal(err)
	}
	prof, err := p.Run(w)
	if err != nil {
		fatal(err)
	}
	if err := prof.WriteNvprofCSV(os.Stdout); err != nil {
		fatal(err)
	}
}

func makeWorkload(kernel string, size, blockSize int, seed uint64) (profiler.Workload, error) {
	switch {
	case strings.HasPrefix(kernel, "transpose"):
		v, err := strconv.Atoi(strings.TrimPrefix(kernel, "transpose"))
		if err != nil {
			return nil, fmt.Errorf("bad transpose kernel %q", kernel)
		}
		return &kernels.Transpose{Variant: v, N: size, Seed: seed}, nil
	case strings.HasPrefix(kernel, "histogram"):
		v, err := strconv.Atoi(strings.TrimPrefix(kernel, "histogram"))
		if err != nil {
			return nil, fmt.Errorf("bad histogram kernel %q", kernel)
		}
		return &kernels.Histogram{Variant: v, N: size, BlockSize: blockSize, Seed: seed}, nil
	case strings.HasPrefix(kernel, "reduce"):
		v, err := strconv.Atoi(strings.TrimPrefix(kernel, "reduce"))
		if err != nil {
			return nil, fmt.Errorf("bad reduction kernel %q", kernel)
		}
		return &kernels.Reduction{Variant: v, N: size, BlockSize: blockSize, Seed: seed}, nil
	case kernel == "matmul":
		return &kernels.MatMul{N: size, Seed: seed}, nil
	case kernel == "needle":
		return &kernels.NeedlemanWunsch{SeqLen: size, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("unknown kernel %q", kernel)
	}
}

func parseSweep(s string) (lo, hi, step int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("sweep %q must be lo:hi:step", s)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		vals[i], err = strconv.Atoi(p)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("sweep %q: %w", s, err)
		}
	}
	if vals[2] <= 0 || vals[0] > vals[1] {
		return 0, 0, 0, fmt.Errorf("sweep %q: need lo <= hi and step > 0", s)
	}
	return vals[0], vals[1], vals[2], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfprof:", err)
	os.Exit(1)
}
