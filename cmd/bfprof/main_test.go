package main

import (
	"strings"
	"testing"
)

func TestParseSweep(t *testing.T) {
	lo, hi, step, err := parseSweep("64:1024:64")
	if err != nil || lo != 64 || hi != 1024 || step != 64 {
		t.Fatalf("got %d %d %d %v", lo, hi, step, err)
	}
	for _, bad := range []string{"", "64:1024", "a:b:c", "64:1024:0", "1024:64:64"} {
		if _, _, _, err := parseSweep(bad); err == nil {
			t.Errorf("sweep %q accepted", bad)
		}
	}
}

func TestMakeWorkload(t *testing.T) {
	cases := map[string]string{
		"reduce0":    "reduce0",
		"reduce6":    "reduce6",
		"transpose1": "transpose1",
		"histogram0": "histogram0",
		"matmul":     "matmul",
		"needle":     "needle",
	}
	for arg, wantName := range cases {
		w, err := makeWorkload(arg, 1024, 256, 1)
		if err != nil {
			t.Fatalf("%s: %v", arg, err)
		}
		if w.Name() != wantName {
			t.Fatalf("%s → %s", arg, w.Name())
		}
	}
	for _, bad := range []string{"reduceX", "transposeZ", "cuFFT", "histogramQ"} {
		if _, err := makeWorkload(bad, 1024, 256, 1); err == nil {
			t.Errorf("kernel %q accepted", bad)
		}
	}
}

func TestProfileRunsEndToEnd(t *testing.T) {
	w, err := makeWorkload("reduce2", 8192, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(w.Name(), "reduce") {
		t.Fatal("wrong workload")
	}
}
