// blackforest is the end-to-end tool: collect counter data for a kernel
// over a problem-size sweep, build and validate the random forest, report
// variable importance and bottleneck diagnosis, refine with PCA, and
// (optionally) predict execution time for unseen problem sizes.
//
// Usage:
//
//	blackforest -kernel reduce1 -device GTX580            # bottleneck analysis
//	blackforest -kernel matmul -predict 384,1536          # + problem scaling
//	blackforest -kernel needle -sweep 64:2048:64 -models mars
//	blackforest -kernel matmul -save model.json           # persist the model
//	blackforest -load model.json -predict 384,1536        # predict, no profiling
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"blackforest/internal/buildinfo"
	"blackforest/internal/core"
	"blackforest/internal/dataset"
	"blackforest/internal/faults"
	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/optimize"
	"blackforest/internal/profiler"
	"blackforest/internal/report"
)

func main() {
	kernel := flag.String("kernel", "reduce1", "kernel: reduce0..reduce6, transpose0..transpose2, histogram0..histogram1, matmul, needle")
	data := flag.String("data", "", "analyze an existing counter CSV (as produced by bfprof -sweep or real nvprof post-processing) instead of profiling")
	device := flag.String("device", "GTX580", "device: "+strings.Join(gpusim.DeviceNames(), ", "))
	sweep := flag.String("sweep", "", "size sweep lo:hi:step (defaults per kernel)")
	predict := flag.String("predict", "", "comma-separated unseen sizes to predict")
	models := flag.String("models", "auto", "counter models: auto, glm, or mars")
	topK := flag.Int("topk", 7, "retained most-important predictors")
	seed := flag.Uint64("seed", 1, "random seed")
	simBlocks := flag.Int("simblocks", 24, "max blocks simulated in detail per launch")
	workers := flag.Int("workers", 0, "concurrent profiling runs during collection (0 = all CPUs)")
	cacheDir := flag.String("cache-dir", "", "content-addressed run cache directory: repeated collections reuse profiles bit-identically (empty = off)")
	save := flag.String("save", "", "write the trained prediction model (forest + counter models) as a JSON bundle")
	quantize := flag.Bool("quantize", false, "with -save: write the compact quantized bundle (flat forest encoding, bit-identical predictions, no per-node trees)")
	load := flag.String("load", "", "load a saved model bundle instead of profiling and training")
	faultSpec := flag.String("faults", "", `fault injection spec, e.g. "seed=42,runfail=0.2,dropout=0.1" (chaos testing; empty = off)`)
	retries := flag.Int("retries", 0, "extra attempts for a failed profiling run (with -faults)")
	completeness := flag.Float64("completeness", core.DefaultMinCompleteness, "column completeness threshold for degraded collections: lower columns are dropped, higher are mean-imputed")
	explain := flag.Bool("explain", false, "print the simulator's cycle-accounting bottleneck breakdown for the kernel at its largest sweep size, then exit")
	optimizeFlag := flag.Bool("optimize", false, "classify the kernel's bottleneck regime and run the guarded launch-config search at its largest sweep size, then exit")
	transforms := flag.String("transforms", "", `with -optimize: restrict the search to a comma-separated transformation menu, e.g. "tile=32,unroll=4" (empty = full domains)`)
	minGain := flag.Float64("min-gain", optimize.DefaultMinGainPct, "with -optimize: validated cycle improvement (percent) required to accept a transformation")
	optSteps := flag.Int("opt-steps", optimize.DefaultMaxSteps, "with -optimize: maximum accepted transformations")
	optLog := flag.String("opt-log", "", "with -optimize: write the JSON decision log to this file")
	version := flag.Bool("version", false, "print version and build info, then exit")
	flag.Parse()

	if *version {
		buildinfo.Get("blackforest").Print(os.Stdout)
		return
	}
	if *explain {
		if err := explainKernel(*kernel, *device, *sweep, *seed, *simBlocks); err != nil {
			fatal(err)
		}
		return
	}
	if *optimizeFlag {
		if err := optimizeKernel(optimizeArgs{
			kernel: *kernel, device: *device, sweep: *sweep,
			seed: *seed, simBlocks: *simBlocks, cacheDir: *cacheDir,
			transforms: *transforms, minGain: *minGain, maxSteps: *optSteps,
			logPath: *optLog,
		}); err != nil {
			fatal(err)
		}
		return
	}

	faultCfg, err := faults.Parse(*faultSpec)
	if err != nil {
		fatal(err)
	}
	injector := faults.New(faultCfg)

	if *load != "" {
		scaler, err := core.LoadProblemScalerFile(*load)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: response %s, %d trees over %v (test R² %.3f, %d counter models, mean counter R² %.3f)\n",
			*load, scaler.Response(), scaler.Reduced.Forest.NumTrees(),
			scaler.Reduced.Predictors, scaler.Reduced.TestR2, len(scaler.Models), scaler.AverageCounterR2())
		if scaler.Degradation != nil {
			fmt.Printf("warning: model was trained on a %s\n", scaler.Degradation)
		}
		if *predict != "" {
			if err := predictSizes(scaler, *predict); err != nil {
				fatal(err)
			}
		}
		return
	}

	var frame *dataset.Frame
	var degradation *core.Degradation
	if *data != "" {
		var err error
		frame, err = dataset.LoadCSV(*data)
		if err != nil {
			fatal(err)
		}
		if !frame.Has(core.ResponseColumn) {
			fatal(fmt.Errorf("%s has no %s column", *data, core.ResponseColumn))
		}
		frame = frame.DropConstantColumns(core.ResponseColumn, core.PowerColumn)
		fmt.Printf("loaded %d runs × %d variables from %s\n", frame.NumRows(), frame.NumCols(), *data)
	} else {
		dev, err := gpusim.LookupDevice(*device)
		if err != nil {
			fatal(err)
		}
		runs, err := buildSweep(*kernel, *sweep, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("collecting %d runs of %s on %s...\n", len(runs), *kernel, dev.Name)
		copt := core.CollectOptions{
			MaxSimBlocks:    *simBlocks,
			Seed:            *seed,
			Workers:         *workers,
			Faults:          injector,
			Retries:         *retries,
			RetryBackoff:    10 * time.Millisecond,
			MinCompleteness: *completeness,
		}
		if *cacheDir != "" {
			copt.Cache, err = profiler.NewRunCache(*cacheDir, 0)
			if err != nil {
				fatal(err)
			}
		}
		frame, degradation, err = core.CollectWithReport(dev, runs, copt)
		if err != nil {
			fatal(err)
		}
		if copt.Cache != nil {
			s := copt.Cache.Stats()
			fmt.Printf("run cache %s: %d hits, %d misses (%.0f%% hit rate)\n",
				*cacheDir, s.Hits(), s.Misses, 100*s.HitRate())
		}
		if degradation != nil {
			fmt.Printf("warning: partial collection — %s\n", degradation)
		}
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.TopK = *topK
	a, err := core.Analyze(frame, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nrandom forest: %d trees, OOB MSE %.4g, %%var explained %.1f%%, test R² %.3f\n\n",
		a.Forest.NumTrees(), a.OOBMSE, 100*a.VarExplained, a.TestR2)

	labels := make([]string, 0, 12)
	values := make([]float64, 0, 12)
	for i, imp := range a.Importance {
		if i >= 12 {
			break
		}
		labels = append(labels, imp.Name)
		values = append(values, imp.PctIncMSE)
	}
	if err := report.BarChart(os.Stdout, "variable importance (%IncMSE):", labels, values, 44); err != nil {
		fatal(err)
	}

	bns, err := a.Bottlenecks(*topK)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nbottleneck diagnosis:")
	rows := make([][]string, 0, len(bns))
	for _, b := range bns {
		rows = append(rows, []string{
			strconv.Itoa(b.Rank), b.Counter, b.Direction.String(), b.Pattern, b.Remedy,
		})
	}
	if err := report.Table(os.Stdout, []string{"rank", "counter", "dir", "pattern", "remedy"}, rows); err != nil {
		fatal(err)
	}

	if a.NeedsPCA(bns) {
		fmt.Println("\nimportance is diffuse or nonmonotone — refining with PCA:")
	} else {
		fmt.Println("\nPCA refinement:")
	}
	ref, err := a.PCARefine(false)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %d components explain %.1f%% of variance\n", ref.Components, 100*ref.ExplainedVariance)
	for c := 0; c < ref.Components; c++ {
		fmt.Printf("  PC%d (%s):", c+1, ref.Labels[c])
		for i, ld := range ref.Loadings[c] {
			if i >= 4 {
				break
			}
			fmt.Printf(" %s=%+.2f", ld.Variable, ld.Value)
		}
		fmt.Println()
	}

	if *predict == "" && *save == "" {
		return
	}
	kind := core.AutoModel
	switch *models {
	case "glm":
		kind = core.GLMModel
	case "mars":
		kind = core.MARSModel
	}
	scaler, err := core.NewProblemScaler(a, *topK, kind)
	if err != nil {
		fatal(err)
	}
	// Record how the training data was repaired, so the saved bundle (and
	// anything serving it) discloses the degraded fit.
	scaler.Degradation = degradation
	if *save != "" {
		saveFile := scaler.SaveFile
		if *quantize {
			saveFile = scaler.SaveFileQuantized
		}
		if err := saveFile(*save); err != nil {
			fatal(err)
		}
		fmt.Printf("\nsaved model bundle to %s (serve it with: bfserve -model %s)\n", *save, *save)
	}
	if *predict != "" {
		fmt.Printf("\nproblem-scaling predictions (counter models: %s, mean R² %.3f):\n",
			*models, scaler.AverageCounterR2())
		if err := predictSizes(scaler, *predict); err != nil {
			fatal(err)
		}
	}
}

// predictSizes answers a comma-separated size list from the scaler, filling
// the block-size characteristic with its conventional default when the
// model uses it.
func predictSizes(scaler *core.ProblemScaler, sizes string) error {
	hasBlockSize := false
	for _, c := range scaler.CharNames {
		if c == "block_size" {
			hasBlockSize = true
		}
	}
	for _, s := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", s, err)
		}
		chars := map[string]float64{"size": float64(n)}
		if hasBlockSize {
			chars["block_size"] = 256
		}
		t, err := scaler.PredictTime(chars)
		if err != nil {
			return err
		}
		fmt.Printf("  size %8d → %.4f ms\n", n, t)
	}
	return nil
}

// explainKernel profiles the kernel at the largest size of its sweep
// (noise-free, so the numbers are the model's own) and prints the
// simulator's cycle-accounting breakdown: where the modeled cycles go,
// and which term bound each launch. This is the per-kernel ground truth
// the statistical pipeline's bottleneck diagnosis is trying to recover
// from counters alone.
func explainKernel(kernel, device, sweep string, seed uint64, simBlocks int) error {
	dev, err := gpusim.LookupDevice(device)
	if err != nil {
		return err
	}
	runs, err := buildSweep(kernel, sweep, seed)
	if err != nil {
		return err
	}
	w := runs[len(runs)-1]
	p := profiler.New(dev, profiler.Options{MaxSimBlocks: simBlocks, NoiseSigma: -1})
	prof, err := p.Run(w)
	if err != nil {
		return err
	}

	fmt.Printf("cycle accounting: %s on %s (size %.0f, %d launches, %.4g modeled cycles)\n\n",
		prof.Workload, prof.Device, prof.Characteristics["size"], prof.Launches, prof.Cycles)
	if err := optimize.RenderBreakdown(os.Stdout, &prof.Breakdown, prof.Cycles); err != nil {
		return err
	}

	fmt.Println("\nlaunches per binding bottleneck term:")
	for _, term := range []string{"issue", "alu", "dram", "l2", "latency", "atomics"} {
		if n := prof.Bottlenecks[term]; n > 0 {
			fmt.Printf("  %-8s ×%d\n", term, n)
		}
	}
	fmt.Printf("dominant: %s\n", prof.DominantBottleneck())
	return nil
}

// optimizeArgs carries the -optimize flag set.
type optimizeArgs struct {
	kernel, device, sweep string
	seed                  uint64
	simBlocks             int
	cacheDir              string
	transforms            string
	minGain               float64
	maxSteps              int
	logPath               string
}

// optimizeKernel classifies the kernel's bottleneck regime at the largest
// size of its sweep and runs the guarded launch-configuration search:
// candidates are scored at low fidelity, validated at the -simblocks
// fidelity, and accepted only for validated cycle gains above -min-gain.
// With -cache-dir every candidate simulation is served from (and feeds)
// the content-addressed run cache, so repeating a search is pure cache
// hits; with -opt-log the full decision log is written as JSON.
func optimizeKernel(a optimizeArgs) error {
	dev, err := gpusim.LookupDevice(a.device)
	if err != nil {
		return err
	}
	runs, err := buildSweep(a.kernel, a.sweep, a.seed)
	if err != nil {
		return err
	}
	w, ok := runs[len(runs)-1].(optimize.Tunable)
	if !ok {
		return fmt.Errorf("kernel %q has no tunable launch parameters", a.kernel)
	}
	menu, err := optimize.ParseTransforms(a.transforms)
	if err != nil {
		return err
	}
	cfg := optimize.Config{
		Device:            dev,
		ValidateSimBlocks: a.simBlocks,
		MinGainPct:        a.minGain,
		MaxSteps:          a.maxSteps,
		Transforms:        menu,
		Seed:              a.seed,
	}
	if a.cacheDir != "" {
		cfg.Cache, err = profiler.NewRunCache(a.cacheDir, 0)
		if err != nil {
			return err
		}
	}
	res, err := optimize.Optimize(w, cfg)
	if err != nil {
		return err
	}
	if err := res.Render(os.Stdout); err != nil {
		return err
	}
	if cfg.Cache != nil {
		s := cfg.Cache.Stats()
		fmt.Printf("\nrun cache %s: %d hits, %d misses (%.0f%% hit rate)\n",
			a.cacheDir, s.Hits(), s.Misses, 100*s.HitRate())
	}
	if a.logPath != "" {
		f, err := os.Create(a.logPath)
		if err != nil {
			return err
		}
		if err := res.WriteLog(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("decision log written to %s\n", a.logPath)
	}
	return nil
}

// buildSweep creates the collection runs for a kernel, using per-kernel
// default sweeps when none is given.
func buildSweep(kernel, sweep string, seed uint64) ([]profiler.Workload, error) {
	type mk func(n int, seed uint64) (profiler.Workload, error)
	var make_ mk
	var defSweep string
	switch {
	case strings.HasPrefix(kernel, "transpose"):
		v, err := strconv.Atoi(strings.TrimPrefix(kernel, "transpose"))
		if err != nil || v < 0 || v > 2 {
			return nil, fmt.Errorf("unknown kernel %q", kernel)
		}
		defSweep = "32:2048:96"
		make_ = func(n int, seed uint64) (profiler.Workload, error) {
			return &kernels.Transpose{Variant: v, N: (n / 32) * 32, Seed: seed}, nil
		}
	case strings.HasPrefix(kernel, "histogram"):
		v, err := strconv.Atoi(strings.TrimPrefix(kernel, "histogram"))
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("unknown kernel %q", kernel)
		}
		defSweep = "65536:4194304:131072"
		make_ = func(n int, seed uint64) (profiler.Workload, error) {
			return &kernels.Histogram{Variant: v, N: n, Seed: seed}, nil
		}
	case strings.HasPrefix(kernel, "reduce"):
		v, err := strconv.Atoi(strings.TrimPrefix(kernel, "reduce"))
		if err != nil || v < 0 || v > 6 {
			return nil, fmt.Errorf("unknown kernel %q", kernel)
		}
		defSweep = "4096:1048576:32768"
		make_ = func(n int, seed uint64) (profiler.Workload, error) {
			return &kernels.Reduction{Variant: v, N: n, BlockSize: 256, Seed: seed}, nil
		}
	case kernel == "matmul":
		defSweep = "32:2048:96"
		make_ = func(n int, seed uint64) (profiler.Workload, error) {
			return &kernels.MatMul{N: (n / 16) * 16, Seed: seed}, nil
		}
	case kernel == "needle":
		defSweep = "64:4096:64"
		make_ = func(n int, seed uint64) (profiler.Workload, error) {
			return &kernels.NeedlemanWunsch{SeqLen: n, Seed: seed}, nil
		}
	default:
		return nil, fmt.Errorf("unknown kernel %q", kernel)
	}
	if sweep == "" {
		sweep = defSweep
	}
	parts := strings.Split(sweep, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("sweep %q must be lo:hi:step", sweep)
	}
	lo, err1 := strconv.Atoi(parts[0])
	hi, err2 := strconv.Atoi(parts[1])
	step, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || step <= 0 {
		return nil, fmt.Errorf("bad sweep %q", sweep)
	}
	var runs []profiler.Workload
	for n := lo; n <= hi; n += step {
		seed++
		w, err := make_(n, seed)
		if err != nil {
			return nil, err
		}
		runs = append(runs, w)
	}
	return runs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blackforest:", err)
	os.Exit(1)
}
