package main

import "testing"

func TestBuildSweepDefaults(t *testing.T) {
	cases := []string{"reduce0", "reduce6", "matmul", "needle", "transpose0", "histogram1"}
	for _, kernel := range cases {
		runs, err := buildSweep(kernel, "", 1)
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		if len(runs) < 10 {
			t.Fatalf("%s default sweep has only %d runs", kernel, len(runs))
		}
	}
}

func TestBuildSweepCustom(t *testing.T) {
	runs, err := buildSweep("matmul", "32:128:32", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("custom sweep has %d runs, want 4", len(runs))
	}
}

func TestBuildSweepErrors(t *testing.T) {
	cases := []struct{ kernel, sweep string }{
		{"nope", ""},
		{"reduce9", ""},
		{"matmul", "32:128"},
		{"matmul", "a:b:c"},
		{"matmul", "32:128:0"},
	}
	for _, c := range cases {
		if _, err := buildSweep(c.kernel, c.sweep, 1); err == nil {
			t.Errorf("kernel=%q sweep=%q accepted", c.kernel, c.sweep)
		}
	}
}
