// bfserve serves predictions from saved BlackForest model bundles: the
// train-once / predict-cheaply split. Train and save with
//
//	blackforest -kernel matmul -save model.json
//
// then serve one bundle:
//
//	bfserve -model model.json -addr :8391
//	curl -s localhost:8391/v1/predict -d '{"chars":{"size":1536}}'
//
// or a whole directory of bundles, routed by model name:
//
//	bfserve -models-dir models/ -watch 2s -batch-window 1ms
//	curl -s localhost:8391/v1/models/matmul/predict -d '{"chars":{"size":1536}}'
//	curl -s localhost:8391/v1/models
//
// The directory may carry a manifest.json ({"default":"matmul","models":
// [{"name":"matmul","path":"matmul.json"}]}); without one, every *.json
// bundle is registered under its base name. Models hot-reload on SIGHUP or,
// with -watch, whenever a bundle's mtime changes — in-flight requests
// finish on the model they started with, and a bundle that fails to load
// keeps its previous version serving.
//
// Endpoints: POST /v1/predict and /v1/models/{name}/predict (single or
// batch), GET /v1/models, /v1/models/{name}, /v1/model, /healthz, /metrics
// (Prometheus text). The process shuts down gracefully on SIGINT/SIGTERM,
// letting in-flight requests complete.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blackforest/internal/buildinfo"
	"blackforest/internal/core"
	"blackforest/internal/faults"
	"blackforest/internal/serve"
)

func main() {
	model := flag.String("model", "", "single model bundle written by blackforest -save")
	modelsDir := flag.String("models-dir", "", "directory of model bundles (all *.json, or manifest.json), routed by name")
	defaultModel := flag.String("default-model", "", "model answering the legacy /v1/predict route (default: manifest election or first name)")
	watch := flag.Duration("watch", 0, "poll bundles for changes at this interval and hot-reload (0 = SIGHUP only)")
	addr := flag.String("addr", ":8391", "listen address")
	cache := flag.Int("cache", 1024, "per-model LRU prediction cache entries (negative disables)")
	workers := flag.Int("workers", 0, "concurrent predictions per batch request (0 = all CPUs)")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request timeout")
	batchWindow := flag.Duration("batch-window", 0, "coalesce single predicts into micro-batches, waiting at most this long (0 = off)")
	batchMax := flag.Int("batch-max", 32, "max coalesced micro-batch size")
	maxInFlight := flag.Int("max-inflight", 256, "concurrent predict requests before load shedding with 503 (negative disables shedding)")
	faultSpec := flag.String("faults", "", `fault injection spec, e.g. "seed=42,error=0.05,latency=0.1,spike=50ms,corrupt=0.01" (chaos testing; empty = off)`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = off)")
	accessLog := flag.Bool("access-log", true, "write one structured (JSON) access-log line per request to stderr")
	slowReq := flag.Duration("slow-request", time.Second, "access-log requests at least this slow at WARN with slow=true")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		buildinfo.Get("bfserve").Print(os.Stdout)
		return
	}
	if (*model == "") == (*modelsDir == "") {
		fmt.Fprintln(os.Stderr, "bfserve: exactly one of -model or -models-dir is required")
		flag.Usage()
		os.Exit(2)
	}
	faultCfg, err := faults.Parse(*faultSpec)
	if err != nil {
		fatal(err)
	}
	injector := faults.New(faultCfg)

	// Access logs are structured JSON on stderr, one line per request;
	// stdout stays human-oriented status output.
	var logger *slog.Logger
	if *accessLog {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	srv, err := serve.New(serve.Config{
		ModelPath:      *model,
		ModelsDir:      *modelsDir,
		DefaultModel:   *defaultModel,
		Loader:         func(path string) (*core.ProblemScaler, error) { return loadScaler(path, injector) },
		CacheSize:      *cache,
		Workers:        *workers,
		RequestTimeout: *timeout,
		BatchWindow:    *batchWindow,
		BatchMaxSize:   *batchMax,
		MaxInFlight:    *maxInFlight,
		Faults:         injector,
		AccessLog:      logger,
		SlowRequest:    *slowReq,
	})
	if err != nil {
		fatal(err)
	}
	names, def := srv.Models()
	fmt.Printf("registered %d model(s) %v, default %q\n", len(names), names, def)
	if injector != nil {
		fmt.Printf("chaos: fault injection active (%s)\n", faultCfg)
	}
	if *batchWindow > 0 {
		fmt.Printf("coalescing single predicts: window %v, max batch %d\n", *batchWindow, *batchMax)
	}

	// Profiling endpoints live on their own listener and mux, so they are
	// never exposed on the serving address and the serving mux stays free
	// of debug routes.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "bfserve: pprof:", err)
			}
		}()
		fmt.Printf("pprof on %s (GET /debug/pprof/)\n", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads the registry; -watch adds an mtime poll loop.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			logReload(srv.Reload())
		}
	}()
	if *watch > 0 {
		go srv.Watch(ctx, *watch, func(err error) {
			fmt.Fprintln(os.Stderr, "bfserve: reload:", err)
		})
		fmt.Printf("watching bundles for changes every %v\n", *watch)
	}

	fmt.Printf("serving on %s (POST /v1/predict, /v1/models/{name}/predict, GET /v1/models, /v1/model, /healthz, /metrics)\n", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fatal(err)
	}
	fmt.Println("bfserve: shut down cleanly")
}

func logReload(changed int, errs []error) {
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "bfserve: reload:", err)
	}
	if changed > 0 {
		fmt.Printf("bfserve: reloaded %d model(s)\n", changed)
	}
}

// loadScaler reads one bundle, threading the injector's corrupt/truncate
// profile into the read so bundle-load failure handling can be exercised
// end to end (a nil injector reads the file verbatim).
func loadScaler(path string, injector *faults.Injector) (*core.ProblemScaler, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ps, err := core.LoadProblemScaler(injector.WrapReader(f, faults.HashString(path)))
	if err != nil {
		return nil, err
	}
	fmt.Printf("loaded %s: response %s, %d trees over %v (test R² %.3f, %d counter models, engine %s)\n",
		path, ps.Response(), ps.Reduced.Forest.NumTrees(),
		ps.Reduced.Predictors, ps.Reduced.TestR2, len(ps.Models), ps.Reduced.Forest.Engine())
	if ps.Degradation != nil {
		fmt.Printf("warning: model was trained on a %s\n", ps.Degradation)
	}
	return ps, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfserve:", err)
	os.Exit(1)
}
