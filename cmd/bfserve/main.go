// bfserve serves predictions from a saved BlackForest model bundle: the
// train-once / predict-cheaply split. Train and save with
//
//	blackforest -kernel matmul -save model.json
//
// then serve the bundle:
//
//	bfserve -model model.json -addr :8391
//	curl -s localhost:8391/v1/predict -d '{"chars":{"size":1536}}'
//
// Endpoints: POST /v1/predict (single or batch), GET /v1/model,
// GET /healthz, GET /metrics (Prometheus text). The process shuts down
// gracefully on SIGINT/SIGTERM, letting in-flight requests complete.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blackforest/internal/core"
	"blackforest/internal/faults"
	"blackforest/internal/serve"
)

func main() {
	model := flag.String("model", "", "model bundle written by blackforest -save (required)")
	addr := flag.String("addr", ":8391", "listen address")
	cache := flag.Int("cache", 1024, "LRU prediction cache entries (negative disables)")
	workers := flag.Int("workers", 0, "concurrent predictions per batch request (0 = all CPUs)")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request timeout")
	maxInFlight := flag.Int("max-inflight", 256, "concurrent predict requests before load shedding with 503 (negative disables shedding)")
	faultSpec := flag.String("faults", "", `fault injection spec, e.g. "seed=42,error=0.05,latency=0.1,spike=50ms,corrupt=0.01" (chaos testing; empty = off)`)
	flag.Parse()

	if *model == "" {
		fmt.Fprintln(os.Stderr, "bfserve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	faultCfg, err := faults.Parse(*faultSpec)
	if err != nil {
		fatal(err)
	}
	injector := faults.New(faultCfg)

	scaler, err := loadScaler(*model, injector)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: response %s, %d trees over %v (test R² %.3f, %d counter models)\n",
		*model, scaler.Response(), scaler.Reduced.Forest.NumTrees(),
		scaler.Reduced.Predictors, scaler.Reduced.TestR2, len(scaler.Models))
	if scaler.Degradation != nil {
		fmt.Printf("warning: model was trained on a %s\n", scaler.Degradation)
	}
	if injector != nil {
		fmt.Printf("chaos: fault injection active (%s)\n", faultCfg)
	}

	srv, err := serve.New(serve.Config{
		Scaler:         scaler,
		CacheSize:      *cache,
		Workers:        *workers,
		RequestTimeout: *timeout,
		MaxInFlight:    *maxInFlight,
		Faults:         injector,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving on %s (POST /v1/predict, GET /v1/model, /healthz, /metrics)\n", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fatal(err)
	}
	fmt.Println("bfserve: shut down cleanly")
}

// loadScaler reads the bundle, threading the injector's corrupt/truncate
// profile into the read so bundle-load failure handling can be exercised
// end to end (a nil injector reads the file verbatim).
func loadScaler(path string, injector *faults.Injector) (*core.ProblemScaler, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadProblemScaler(injector.WrapReader(f, faults.HashString(path)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfserve:", err)
	os.Exit(1)
}
