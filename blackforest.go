// Package blackforest is the public API of BlackForest, a reproduction of
// "A Tool for Bottleneck Analysis and Performance Prediction for
// GPU-accelerated Applications" (Madougou et al., IPPS 2016).
//
// BlackForest analyzes GPU kernel performance statistically: it profiles a
// kernel over many problem configurations, collects hardware performance
// counters, trains a random forest with execution time as the response,
// reads performance bottlenecks off the forest's variable importance and
// partial dependence (refined with PCA when needed), and predicts execution
// time for unseen problem sizes and unseen similar hardware.
//
// Because this repository runs without GPU hardware, profiling executes on
// a built-in warp-level GPU simulator with Fermi (GTX480/GTX580) and Kepler
// (K20m) device models; the CUDA SDK reduction kernels, tiled matrix
// multiply, and Rodinia Needleman-Wunsch are bundled as workloads.
//
// # Quick start
//
//	dev, _ := blackforest.LookupDevice("GTX580")
//	var runs []blackforest.Workload
//	for n := 4096; n <= 1<<20; n *= 2 {
//		runs = append(runs, &blackforest.Reduction{Variant: 2, N: n, BlockSize: 256})
//	}
//	frame, _ := blackforest.Collect(dev, runs, blackforest.CollectOptions{})
//	analysis, _ := blackforest.Analyze(frame, blackforest.DefaultConfig())
//	for _, imp := range analysis.Importance[:5] {
//		fmt.Println(imp.Name, imp.PctIncMSE)
//	}
package blackforest

import (
	"io"

	"blackforest/internal/core"
	"blackforest/internal/cpusim"
	"blackforest/internal/dataset"
	"blackforest/internal/forest"
	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/mars"
	"blackforest/internal/pca"
	"blackforest/internal/profiler"
	"blackforest/internal/stepwise"
)

// Re-exported machine-model types.
type (
	// Device is a GPU hardware model (see LookupDevice, DeviceNames).
	Device = gpusim.Device
	// LaunchConfig describes one kernel launch's geometry and footprint.
	LaunchConfig = gpusim.LaunchConfig
	// Occupancy is the residency computed for a launch on a device.
	Occupancy = gpusim.Occupancy
)

// Re-exported profiling types.
type (
	// Workload is a profilable application (a sequence of kernel launches
	// plus problem characteristics).
	Workload = profiler.Workload
	// Profile is one profiled run: counters, characteristics, and time.
	Profile = profiler.Profile
	// ProfilerOptions configures the profiler front end.
	ProfilerOptions = profiler.Options
	// Profiler collects counters from workloads on one device.
	Profiler = profiler.Profiler
	// Releaser is the optional Workload interface for dropping large
	// per-run buffers once a run finishes.
	Releaser = profiler.Releaser
	// InputSeeded is the optional Workload interface exposing the
	// input-generation seed, which joins the per-run noise identity.
	InputSeeded = profiler.InputSeeded
)

// Re-exported workload implementations (the paper's benchmarks).
type (
	// Reduction is the CUDA SDK parallel-reduction family (variants 0–6).
	Reduction = kernels.Reduction
	// MatMul is the CUDA SDK tiled matrix multiplication.
	MatMul = kernels.MatMul
	// NeedlemanWunsch is the Rodinia NW sequence-alignment benchmark.
	NeedlemanWunsch = kernels.NeedlemanWunsch
	// Transpose is the CUDA SDK matrix-transpose optimization study
	// (naive / coalesced / padded variants).
	Transpose = kernels.Transpose
	// Histogram is the CUDA SDK 256-bin histogram atomics study
	// (global-atomics vs shared-privatized variants, with a skew knob).
	Histogram = kernels.Histogram
)

// Re-exported data and modeling types.
type (
	// Frame is the tabular container for collected profiles.
	Frame = dataset.Frame
	// Config controls the BlackForest pipeline.
	Config = core.Config
	// CollectOptions controls data collection.
	CollectOptions = core.CollectOptions
	// Analysis is a fitted forest with validation and importance.
	Analysis = core.Analysis
	// Bottleneck is one diagnosed performance limiter.
	Bottleneck = core.Bottleneck
	// PCARefinement is the stage-4 PCA over the predictors.
	PCARefinement = core.PCARefinement
	// ProblemScaler predicts time for unseen problem characteristics.
	ProblemScaler = core.ProblemScaler
	// CounterModel maps problem characteristics to one counter's value.
	CounterModel = core.CounterModel
	// ModelKind selects GLM, MARS, or automatic counter models.
	ModelKind = core.ModelKind
	// Evaluation is a predicted-vs-measured comparison.
	Evaluation = core.Evaluation
	// HWScaling is a hardware-scaling experiment result.
	HWScaling = core.HWScaling
	// Forest is the underlying random forest regressor.
	Forest = forest.Forest
	// Importance is one predictor's importance record.
	Importance = forest.Importance
	// ForestConfig controls forest training.
	ForestConfig = forest.Config
	// PCA is a fitted principal component analysis.
	PCA = pca.Result
	// MARS is a fitted multivariate-adaptive-regression-splines model.
	MARS = mars.Model
)

// Counter-model kinds.
const (
	// AutoModel picks GLM when it fits nearly perfectly, MARS otherwise.
	AutoModel = core.AutoModel
	// GLMModel forces generalized linear counter models.
	GLMModel = core.GLMModel
	// MARSModel forces MARS counter models.
	MARSModel = core.MARSModel
)

// ResponseColumn is the default response variable's column name ("time_ms").
const ResponseColumn = core.ResponseColumn

// PowerColumn names the alternative power-draw response ("power_w") for
// the paper's §7 extension.
const PowerColumn = core.PowerColumn

// LookupDevice returns the named GPU model (GTX480, GTX580, or K20m).
func LookupDevice(name string) (*Device, error) { return gpusim.LookupDevice(name) }

// DeviceNames lists the available GPU models.
func DeviceNames() []string { return gpusim.DeviceNames() }

// NewProfiler builds an nvprof-style profiler for a device.
func NewProfiler(dev *Device, opt ProfilerOptions) *Profiler { return profiler.New(dev, opt) }

// FrameFromProfiles tabulates profiles (from the GPU or CPU profiler) into
// a modeling frame, dropping zero-variance counters.
func FrameFromProfiles(profiles []*Profile) (*Frame, error) {
	f, err := profiler.ToFrame(profiles)
	if err != nil {
		return nil, err
	}
	return f.DropConstantColumns(ResponseColumn, PowerColumn), nil
}

// DefaultConfig returns the paper's pipeline configuration: 80:20 split,
// 500-tree forest with mtry=p/3, top-7 retention, 96% PCA variance target.
func DefaultConfig() Config { return core.DefaultConfig() }

// Collect profiles every workload run on the device and assembles the
// modeling frame (stage 1 of the pipeline).
func Collect(dev *Device, runs []Workload, opt CollectOptions) (*Frame, error) {
	return core.Collect(dev, runs, opt)
}

// Analyze builds and validates the random forest (stages 2–3): random
// split, forest fit, test metrics, and variable importance.
func Analyze(frame *Frame, cfg Config) (*Analysis, error) { return core.Analyze(frame, cfg) }

// NewProblemScaler builds a predictor for unseen problem sizes (§6.1):
// top-k counter selection, per-counter models, and the reduced forest.
func NewProblemScaler(a *Analysis, k int, kind ModelKind) (*ProblemScaler, error) {
	return core.NewProblemScaler(a, k, kind)
}

// HardwareScale runs the §6.2 experiment: predict execution times on a
// target GPU from a forest trained on another device plus a calibration
// subset, with the importance-similarity test and the mixed-variable
// workaround.
func HardwareScale(frameTrain, frameTarget *Frame, devTrain, devTarget *Device, cfg Config) (*HWScaling, error) {
	return core.HardwareScale(frameTrain, frameTarget, devTrain, devTarget, cfg)
}

// InjectMachineCharacteristics extends a frame with the device's Table 2
// hardware metrics as constant columns.
func InjectMachineCharacteristics(frame *Frame, dev *Device) (*Frame, error) {
	return core.InjectMachineCharacteristics(frame, dev)
}

// Re-exported CPU-substrate types (§7 heterogeneous extension).
type (
	// CPU is a multicore processor model (see LookupCPU, CPUNames).
	CPU = cpusim.CPU
	// CPUWorkload is a CPU-profilable application.
	CPUWorkload = cpusim.Workload
	// CPUProfiler profiles CPU workloads into the same frames.
	CPUProfiler = cpusim.Profiler
	// CPUReduction is the multicore SIMD sum reduction.
	CPUReduction = cpusim.CPUReduction
	// CPUMatMulWorkload is the cache-blocked multicore matrix multiply.
	CPUMatMulWorkload = cpusim.CPUMatMul
	// CPUNeedlemanWunsch is the wavefront-parallel DP fill.
	CPUNeedlemanWunsch = cpusim.CPUNeedlemanWunsch
)

// LookupCPU returns the named CPU model (XeonE5 or CoreI7).
func LookupCPU(name string) (*CPU, error) { return cpusim.LookupCPU(name) }

// CPUNames lists the available CPU models.
func CPUNames() []string { return cpusim.CPUNames() }

// NewCPUProfiler builds a PAPI-style profiler over the CPU model; its
// Profiles feed the same pipeline as GPU ones.
func NewCPUProfiler(cpu *CPU, noiseSigma float64, seed uint64) *CPUProfiler {
	return cpusim.NewProfiler(cpu, noiseSigma, seed)
}

// LoadForest reads a forest saved with Forest.Save. The loaded model
// predicts and reports importance; partial dependence needs the training
// data and is unavailable.
func LoadForest(r io.Reader) (*Forest, error) { return forest.Load(r) }

// StepwiseModel is the Stargazer-style stepwise linear regression used as
// the related-work baseline the forest is compared against.
type StepwiseModel = stepwise.Model

// StepwiseConfig controls the stepwise search.
type StepwiseConfig = stepwise.Config

// FitStepwise fits the stepwise-regression baseline on a design matrix.
func FitStepwise(x [][]float64, y []float64, names []string, cfg StepwiseConfig) (*StepwiseModel, error) {
	return stepwise.Fit(x, y, names, cfg)
}

// PCAFirstAnalysis is the §7 "PCA-first" pipeline variant: the forest is
// trained on principal-component scores instead of raw counters.
type PCAFirstAnalysis = core.PCAFirstAnalysis

// AnalyzePCAFirst rotates the counters to principal components before
// fitting the forest — the paper's planned remedy for diffuse importance
// over correlated counters.
func AnalyzePCAFirst(frame *Frame, cfg Config) (*PCAFirstAnalysis, error) {
	return core.AnalyzePCAFirst(frame, cfg)
}
