// Package gpusim is BlackForest's GPU substrate: a warp-level SIMT
// simulator with Fermi- and Kepler-class device models. It stands in for
// the NVIDIA hardware + CUPTI stack the paper profiles with nvprof.
//
// Kernels are written in an explicit-SIMT style (per-warp lane vectors,
// explicit active masks, explicit barriers) against the Warp API. The
// simulator executes them functionally — kernels compute real results on
// ordinary Go slices — while a mechanistic machine model accounts for the
// events behind every performance counter the paper uses: memory-coalescing
// transactions, L1/L2 cache hits and misses, shared-memory bank conflicts
// and their replays, branch divergence, instruction issue, occupancy, and a
// bottleneck-based execution-time estimate.
//
// The relationships the paper's random forest learns (replays inflate time,
// transactions consume bandwidth, occupancy hides latency) therefore emerge
// from the machine model rather than being painted onto the data.
package gpusim

import (
	"fmt"
	"sort"
)

// Arch is a GPU microarchitecture family.
type Arch int

const (
	// Fermi (compute capability 2.0): global loads cached in L1,
	// 128-byte L1 lines, 16 two-cycle shared-memory banks (modeled as 32),
	// counter set includes l1_shared_bank_conflict.
	Fermi Arch = iota
	// Kepler (compute capability 3.5): global loads bypass L1 (L2 only,
	// 32-byte segments), 32 shared banks, counter set includes
	// shared_load_replay / shared_store_replay instead of the Fermi
	// bank-conflict counter.
	Kepler
)

// String returns the architecture name.
func (a Arch) String() string {
	switch a {
	case Fermi:
		return "Fermi"
	case Kepler:
		return "Kepler"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// WarpSize is the number of threads per warp on every modeled device.
const WarpSize = 32

// Device describes one GPU model. Fields marked (Table 2) appear in the
// paper's hardware-metrics table.
type Device struct {
	Name              string
	Arch              Arch
	ComputeCapability string

	SMs            int     // number of streaming multiprocessors (Table 2: smp)
	CoresPerSM     int     // CUDA cores per SM (Table 2: rco)
	WarpSchedulers int     // warp schedulers per SM (Table 2: wsched)
	ClockGHz       float64 // core clock (Table 2: freq)

	MemBandwidthGBps float64 // peak DRAM bandwidth (Table 2: mbw)
	MaxRegsPerThread int     // max registers per thread (Table 2: l1c)
	L2SizeKB         int     // L2 cache size (Table 2: l2c)

	L1SizeKB         int // per-SM L1 size (global-load caching on Fermi)
	SharedMemPerSMKB int
	SharedBanks      int
	LdStUnitsPerSM   int // load/store units per SM (16 Fermi, 32 Kepler)
	RegFilePerSM     int // 32-bit registers per SM
	MaxWarpsPerSM    int
	MaxBlocksPerSM   int
	MaxThreadsPerBlk int

	// Latencies in core cycles.
	L1LatencyCycles   int
	L2LatencyCycles   int
	DRAMLatencyCycles int

	// GlobalLoadsUseL1 is true on Fermi; Kepler serves global loads from
	// L2 (32-byte transactions) only.
	GlobalLoadsUseL1 bool

	// LaunchOverheadUS is the fixed per-kernel-launch cost in
	// microseconds, visible in multi-launch workloads like the SDK
	// reduction driver.
	LaunchOverheadUS float64

	// Power model (§7 extension: power as the response variable).
	// IdleWatts is the board's baseline draw while a kernel is resident;
	// EnergyScale scales the per-event energies below (process-node
	// efficiency: Kepler's 28 nm spends less per op than Fermi's 40 nm);
	// TDPWatts caps the modeled average power.
	IdleWatts   float64
	EnergyScale float64
	TDPWatts    float64
}

// Per-event dynamic energies in nanojoules, before EnergyScale. The
// magnitudes follow the usual architecture-literature ballpark: DRAM
// traffic dominates, on-chip SRAM is an order of magnitude cheaper, and
// arithmetic cheaper still.
const (
	energyDRAMPerByteNJ  = 0.35 // per DRAM byte moved
	energyL2Per32BNJ     = 1.0  // per 32-byte L2 transaction
	energyL1Per128BNJ    = 1.2  // per 128-byte L1 access
	energyALUPerOpNJ     = 0.02 // per thread-level arithmetic op
	energySharedPerOpNJ  = 0.01 // per thread-level shared access
	energyIssuePerWarpNJ = 0.08 // fetch/decode/schedule per warp instruction
)

// devices is the built-in registry.
var devices = map[string]*Device{
	"GTX480": {
		Name: "GTX480", Arch: Fermi, ComputeCapability: "2.0",
		SMs: 15, CoresPerSM: 32, WarpSchedulers: 2, ClockGHz: 1.4,
		MemBandwidthGBps: 177.4, MaxRegsPerThread: 63, L2SizeKB: 768,
		L1SizeKB: 16, SharedMemPerSMKB: 48, SharedBanks: 32, LdStUnitsPerSM: 16,
		RegFilePerSM: 32768, MaxWarpsPerSM: 48, MaxBlocksPerSM: 8,
		MaxThreadsPerBlk: 1024,
		L1LatencyCycles:  28, L2LatencyCycles: 240, DRAMLatencyCycles: 500,
		GlobalLoadsUseL1: true, LaunchOverheadUS: 5,
		IdleWatts: 55, EnergyScale: 1.0, TDPWatts: 250,
	},
	"GTX580": {
		Name: "GTX580", Arch: Fermi, ComputeCapability: "2.0",
		SMs: 16, CoresPerSM: 32, WarpSchedulers: 2, ClockGHz: 1.544,
		MemBandwidthGBps: 192.4, MaxRegsPerThread: 63, L2SizeKB: 768,
		L1SizeKB: 16, SharedMemPerSMKB: 48, SharedBanks: 32, LdStUnitsPerSM: 16,
		RegFilePerSM: 32768, MaxWarpsPerSM: 48, MaxBlocksPerSM: 8,
		MaxThreadsPerBlk: 1024,
		L1LatencyCycles:  28, L2LatencyCycles: 240, DRAMLatencyCycles: 500,
		GlobalLoadsUseL1: true, LaunchOverheadUS: 5,
		IdleWatts: 60, EnergyScale: 1.0, TDPWatts: 244,
	},
	"K20m": {
		Name: "K20m", Arch: Kepler, ComputeCapability: "3.5",
		SMs: 13, CoresPerSM: 192, WarpSchedulers: 4, ClockGHz: 0.706,
		MemBandwidthGBps: 208, MaxRegsPerThread: 255, L2SizeKB: 1280,
		L1SizeKB: 16, SharedMemPerSMKB: 48, SharedBanks: 32, LdStUnitsPerSM: 32,
		RegFilePerSM: 65536, MaxWarpsPerSM: 64, MaxBlocksPerSM: 16,
		MaxThreadsPerBlk: 1024,
		L1LatencyCycles:  32, L2LatencyCycles: 230, DRAMLatencyCycles: 440,
		GlobalLoadsUseL1: false, LaunchOverheadUS: 4,
		IdleWatts: 45, EnergyScale: 0.55, TDPWatts: 225,
	},
}

// LookupDevice returns the named device model, or an error listing the
// available names.
func LookupDevice(name string) (*Device, error) {
	d, ok := devices[name]
	if !ok {
		return nil, fmt.Errorf("gpusim: unknown device %q (available: %v)", name, DeviceNames())
	}
	// Return a copy so callers cannot mutate the registry.
	c := *d
	return &c, nil
}

// DeviceNames returns the registered device names, sorted.
func DeviceNames() []string {
	names := make([]string, 0, len(devices))
	for n := range devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PeakWarpIssuePerCycle returns how many warp instructions an SM can issue
// per cycle (one per scheduler).
func (d *Device) PeakWarpIssuePerCycle() float64 {
	return float64(d.WarpSchedulers)
}

// BytesPerCycle returns device-wide DRAM bytes deliverable per core cycle.
func (d *Device) BytesPerCycle() float64 {
	return d.MemBandwidthGBps / d.ClockGHz
}

// PeakGOps returns the device-wide peak thread-op throughput in billions
// of thread-level operations per second (one op per CUDA core per cycle) —
// the compute ceiling of the roofline the optimizer places kernels on. The
// unit matches the simulator's thread-op counters (an FMA counts once), so
// achieved/peak ratios are directly comparable.
func (d *Device) PeakGOps() float64 {
	return float64(d.SMs*d.CoresPerSM) * d.ClockGHz
}

// RidgeOpsPerByte returns the roofline ridge point: the arithmetic
// intensity (thread ops per DRAM byte) at which the compute and memory
// ceilings intersect. Kernels below the ridge are memory-bandwidth-limited
// at best; kernels above it can reach the compute ceiling.
func (d *Device) RidgeOpsPerByte() float64 {
	return d.PeakGOps() / d.MemBandwidthGBps
}

// HardwareMetrics returns the machine-characteristic variables injected
// into the training data for hardware scaling (§6.2, Table 2), keyed by the
// short names the paper uses.
func (d *Device) HardwareMetrics() map[string]float64 {
	return map[string]float64{
		"wsched": float64(d.WarpSchedulers),
		"freq":   d.ClockGHz,
		"smp":    float64(d.SMs),
		"rco":    float64(d.CoresPerSM),
		"mbw":    d.MemBandwidthGBps,
		"l1c":    float64(d.MaxRegsPerThread),
		"l2c":    float64(d.L2SizeKB),
	}
}

// HardwareMetricNames lists the Table 2 metric names in display order.
func HardwareMetricNames() []string {
	return []string{"wsched", "freq", "smp", "rco", "mbw", "l1c", "l2c"}
}
