package gpusim

import "math/bits"

// Mask is a 32-bit active-lane mask: bit i set means lane i executes the
// instruction. It is the explicit form of SIMT control-flow divergence.
type Mask uint32

// FullMask returns a mask with all WarpSize lanes active.
func FullMask() Mask { return Mask(0xffffffff) }

// Active reports whether lane is active in the mask.
func (m Mask) Active(lane int) bool { return m&(1<<uint(lane)) != 0 }

// Count returns the number of active lanes.
func (m Mask) Count() int { return bits.OnesCount32(uint32(m)) }

// MaskWhere builds a mask from a per-lane predicate.
func MaskWhere(pred func(lane int) bool) Mask {
	var m Mask
	for lane := 0; lane < WarpSize; lane++ {
		if pred(lane) {
			m |= 1 << uint(lane)
		}
	}
	return m
}

// MaskFirstN returns a mask with the first n lanes active (n clamped to
// [0, WarpSize]).
func MaskFirstN(n int) Mask {
	if n <= 0 {
		return 0
	}
	if n >= WarpSize {
		return FullMask()
	}
	return Mask(1<<uint(n)) - 1
}

// Warp is the execution context handed to kernels: one call of the kernel
// function per warp, with per-lane values held in [WarpSize]-arrays by the
// kernel itself. All methods account counters on the owning block; warps of
// a block are scheduled one at a time, so no synchronization is needed.
type Warp struct {
	blk *Block
	id  int // warp index within the block

	// resume is the scheduling-token channel for goroutine-backed warps;
	// nil for warps executed inline on the scheduler goroutine (see
	// Block.run).
	resume chan struct{}
}

// WarpID returns the warp's index within its block.
func (w *Warp) WarpID() int { return w.id }

// BlockIdx returns the block's 2-D grid coordinates.
func (w *Warp) BlockIdx() (x, y int) { return w.blk.idxX, w.blk.idxY }

// BlockDim returns the block's 2-D dimensions in threads.
func (w *Warp) BlockDim() (x, y int) { return w.blk.cfg.BlockDimX, w.blk.cfg.BlockDimY }

// GridDim returns the grid dimensions in blocks.
func (w *Warp) GridDim() (x, y int) { return w.blk.cfg.GridDimX, w.blk.cfg.GridDimY }

// Device returns the device the kernel runs on.
func (w *Warp) Device() *Device { return w.blk.dev }

// LinearTID returns lane's linear thread index within the block
// (threadIdx.y*blockDim.x + threadIdx.x in CUDA terms).
func (w *Warp) LinearTID(lane int) int { return w.id*WarpSize + lane }

// ThreadIdx returns lane's 2-D thread coordinates within the block.
func (w *Warp) ThreadIdx(lane int) (x, y int) {
	t := w.LinearTID(lane)
	return t % w.blk.cfg.BlockDimX, t / w.blk.cfg.BlockDimX
}

// ValidMask returns the mask of lanes whose linear TID falls inside the
// block (the last warp of an odd-sized block is partially populated).
func (w *Warp) ValidMask() Mask {
	tpb := w.blk.cfg.ThreadsPerBlock()
	remaining := tpb - w.id*WarpSize
	return MaskFirstN(remaining)
}

// --- arithmetic instructions ---

// IntOps records n integer warp instructions executed under mask.
func (w *Warp) IntOps(mask Mask, n int) {
	c := w.blk.counters
	c.InstExecuted += uint64(n)
	c.InstIssued += uint64(n)
	c.ThreadInstExecuted += uint64(n * mask.Count())
	c.IntThreadOps += uint64(n * mask.Count())
}

// FloatOps records n floating-point warp instructions under mask
// (an FMA counts as one instruction).
func (w *Warp) FloatOps(mask Mask, n int) {
	c := w.blk.counters
	c.InstExecuted += uint64(n)
	c.InstIssued += uint64(n)
	c.ThreadInstExecuted += uint64(n * mask.Count())
	c.FloatThreadOps += uint64(n * mask.Count())
}

// SpecialOps records n special-function-unit instructions (rsqrt, sin, …).
func (w *Warp) SpecialOps(mask Mask, n int) {
	c := w.blk.counters
	c.InstExecuted += uint64(n)
	c.InstIssued += uint64(n)
	c.ThreadInstExecuted += uint64(n * mask.Count())
	c.SpecialThreadOps += uint64(n * mask.Count())
}

// Branch records a branch instruction under mask where the lanes in taken
// take it. A branch diverges when taken is a non-trivial subset of mask.
func (w *Warp) Branch(mask, taken Mask) {
	c := w.blk.counters
	c.InstExecuted++
	c.InstIssued++
	c.ThreadInstExecuted += uint64(mask.Count())
	c.Branch++
	t := taken & mask
	if t != 0 && t != mask {
		c.DivergentBranch++
	}
}

// --- memory instructions ---

// GlobalLoad records one warp global-load instruction: each active lane
// reads accessBytes at its byte address. The coalescer and cache hierarchy
// account the resulting transactions, hits, misses, and replays.
func (w *Warp) GlobalLoad(mask Mask, addrs *[WarpSize]uint64, accessBytes uint32) {
	if mask == 0 {
		return
	}
	b := w.blk
	c := b.counters
	active := mask.Count()
	c.InstExecuted++
	c.GldRequest++
	c.ThreadInstExecuted += uint64(active)
	c.LdstThreadOps += uint64(active)
	c.RequestedGldBytes += uint64(active) * uint64(accessBytes)

	if b.dev.GlobalLoadsUseL1 {
		// Fermi: 128-byte L1 lines; every miss fetches four 32-byte L2
		// segments; L2 misses go to DRAM.
		lines := coalesce(b.segScratch[:0], mask, addrs, accessBytes, 128)
		for _, line := range lines {
			if b.l1.access(line) {
				c.L1GlobalLoadHit++
				continue
			}
			c.L1GlobalLoadMiss++
			for seg := uint64(0); seg < 128; seg += 32 {
				c.L2ReadTransactions++
				if !b.l2.access(line + seg) {
					c.DRAMReadBytes += 32
				}
			}
		}
		replays := uint64(len(lines) - 1)
		c.GlobalReplay += replays
		c.InstIssued += 1 + replays
		return
	}

	// Kepler: global loads bypass L1; 32-byte L2 segments.
	segs := coalesce(b.segScratch[:0], mask, addrs, accessBytes, 32)
	for _, seg := range segs {
		c.L2ReadTransactions++
		if !b.l2.access(seg) {
			c.DRAMReadBytes += 32
		}
	}
	// Replays happen per extra 128-byte-equivalent group of segments.
	groups := (len(segs) + 3) / 4
	replays := uint64(0)
	if groups > 1 {
		replays = uint64(groups - 1)
	}
	c.GlobalReplay += replays
	c.InstIssued += 1 + replays
}

// GlobalStore records one warp global-store instruction. Stores write
// through L2 toward DRAM; transactions are counted per touched 128-byte
// span (the paper's global_store_transaction: 32–128 bytes each) and per
// 32-byte L2 segment.
func (w *Warp) GlobalStore(mask Mask, addrs *[WarpSize]uint64, accessBytes uint32) {
	if mask == 0 {
		return
	}
	b := w.blk
	c := b.counters
	active := mask.Count()
	c.InstExecuted++
	c.GstRequest++
	c.ThreadInstExecuted += uint64(active)
	c.LdstThreadOps += uint64(active)
	c.RequestedGstBytes += uint64(active) * uint64(accessBytes)

	nLines := len(coalesce(b.segScratch[:0], mask, addrs, accessBytes, 128))
	c.GlobalStoreTransaction += uint64(nLines)
	segs := coalesce(b.segScratch[:0], mask, addrs, accessBytes, 32)
	for _, seg := range segs {
		// Write-allocate in L2; modeled as write-through for DRAM traffic.
		b.l2.access(seg)
		c.L2WriteTransactions++
		c.DRAMWriteBytes += 32
	}
	replays := uint64(nLines - 1)
	c.GlobalReplay += replays
	c.InstIssued += 1 + replays
}

// SharedLoad records one warp shared-memory load: each active lane reads a
// 4-byte word at its byte offset into the block's shared memory. Bank
// conflicts serialize the access into degree passes, each extra pass being
// a replay.
func (w *Warp) SharedLoad(mask Mask, offsets *[WarpSize]uint32) {
	if mask == 0 {
		return
	}
	c := w.blk.counters
	c.InstExecuted++
	c.SharedLoad++
	c.ThreadInstExecuted += uint64(mask.Count())
	c.LdstThreadOps += uint64(mask.Count())
	degree := bankConflictDegree(&w.blk.banks, mask, offsets, w.blk.dev.SharedBanks)
	c.SharedLoadReplay += uint64(degree - 1)
	c.InstIssued += uint64(degree)
}

// SharedStore records one warp shared-memory store (4-byte words), with
// the same bank-conflict serialization as SharedLoad.
func (w *Warp) SharedStore(mask Mask, offsets *[WarpSize]uint32) {
	if mask == 0 {
		return
	}
	c := w.blk.counters
	c.InstExecuted++
	c.SharedStore++
	c.ThreadInstExecuted += uint64(mask.Count())
	c.LdstThreadOps += uint64(mask.Count())
	degree := bankConflictDegree(&w.blk.banks, mask, offsets, w.blk.dev.SharedBanks)
	c.SharedStoreReplay += uint64(degree - 1)
	c.InstIssued += uint64(degree)
}

// AtomicGlobalAdd records one warp global atomic instruction (atomicAdd
// on device memory). Lanes targeting the same address serialize: the
// instruction replays once per extra same-address lane, and each unique
// address costs an L2 read-modify-write.
func (w *Warp) AtomicGlobalAdd(mask Mask, addrs *[WarpSize]uint64) {
	if mask == 0 {
		return
	}
	b := w.blk
	c := b.counters
	c.InstExecuted++
	c.GlobalAtomicOps++
	c.ThreadInstExecuted += uint64(mask.Count())
	c.LdstThreadOps += uint64(mask.Count())

	degree, unique := addressContention(mask, addrs)
	c.AtomicReplays += uint64(degree - 1)
	c.InstIssued += uint64(degree)
	c.GlobalAtomicSerial += uint64(mask.Count() - unique)
	// Each unique address is an L2 read-modify-write (32 B each way).
	for i := 0; i < unique; i++ {
		c.L2ReadTransactions++
		c.L2WriteTransactions++
	}
	// Atomics resolve at L2; a fraction of lines miss to DRAM.
	for rem := uint32(mask); rem != 0; rem &= rem - 1 {
		lane := bits.TrailingZeros32(rem)
		if !b.l2.access(addrs[lane] &^ 31) {
			c.DRAMReadBytes += 32
			c.DRAMWriteBytes += 32
		}
	}
}

// AtomicSharedAdd records one warp shared-memory atomic. Same-address
// lanes serialize (no broadcast for read-modify-write), and bank conflicts
// serialize further; the effective degree is the larger of the two.
func (w *Warp) AtomicSharedAdd(mask Mask, offsets *[WarpSize]uint32) {
	if mask == 0 {
		return
	}
	b := w.blk
	c := b.counters
	c.InstExecuted++
	c.SharedAtomicOps++
	c.ThreadInstExecuted += uint64(mask.Count())
	c.LdstThreadOps += uint64(mask.Count())

	var addrs [WarpSize]uint64
	for l := 0; l < WarpSize; l++ {
		addrs[l] = uint64(offsets[l])
	}
	sameAddr, _ := addressContention(mask, &addrs)
	banks := bankConflictDegree(&b.banks, mask, offsets, b.dev.SharedBanks)
	degree := sameAddr
	if banks > degree {
		degree = banks
	}
	c.AtomicReplays += uint64(degree - 1)
	c.InstIssued += uint64(degree)
}

// addressContention returns the maximum number of active lanes hitting any
// single address (the serialization degree for read-modify-write) and the
// number of distinct addresses.
func addressContention(mask Mask, addrs *[WarpSize]uint64) (degree, unique int) {
	type entry struct {
		addr  uint64
		count int
	}
	var backing [WarpSize]entry
	seen := backing[:0]
	degree = 1
	for rem := uint32(mask); rem != 0; rem &= rem - 1 {
		lane := bits.TrailingZeros32(rem)
		found := false
		for i := range seen {
			if seen[i].addr == addrs[lane] {
				seen[i].count++
				if seen[i].count > degree {
					degree = seen[i].count
				}
				found = true
				break
			}
		}
		if !found {
			seen = append(seen, entry{addrs[lane], 1})
		}
	}
	return degree, len(seen)
}

// BlockState returns the per-block state stored in slot, creating it with
// create on first use. Kernels use this for the functional contents of
// shared memory (e.g. the reduction scratchpad or matrix tiles), which all
// warps of a block share. Warps are scheduled one at a time, so access is
// race-free. Slots come from NewSlot at package init; indexing a slice
// beats hashing a string key on every warp invocation.
func (w *Warp) BlockState(slot Slot, create func() any) any {
	b := w.blk
	if int(slot) >= len(b.state) {
		grown := make([]any, slotCount.Load())
		copy(grown, b.state)
		b.state = grown
	}
	v := b.state[slot]
	if v == nil {
		v = create()
		b.state[slot] = v
	}
	return v
}

// SharedF32 returns a per-block float32 scratchpad of at least n elements
// stored in slot — the functional view of a __shared__ float array. A
// pooled slice from an earlier block is reused (zeroed) when it is big
// enough and replaced when it is not.
func (w *Warp) SharedF32(slot Slot, n int) []float32 {
	v := w.BlockState(slot, func() any { return make([]float32, n) }).([]float32)
	if len(v) < n {
		v = make([]float32, n)
		w.blk.state[slot] = v
	}
	return v
}

// SharedI32 returns a per-block int32 scratchpad of at least n elements —
// the functional view of a __shared__ int array, with the same reuse rule
// as SharedF32.
func (w *Warp) SharedI32(slot Slot, n int) []int32 {
	v := w.BlockState(slot, func() any { return make([]int32, n) }).([]int32)
	if len(v) < n {
		v = make([]int32, n)
		w.blk.state[slot] = v
	}
	return v
}

// Sync executes a block-wide barrier (__syncthreads()). Every live warp of
// the block must call Sync the same number of times.
func (w *Warp) Sync() {
	b := w.blk
	c := b.counters
	c.InstExecuted++
	c.InstIssued++
	c.ThreadInstExecuted += uint64(w.ValidMask().Count())
	c.SyncCount++
	if w.resume == nil {
		// Inline warp: it is the lowest-indexed live warp (everything
		// before it ran to completion without ever syncing), so it drives
		// the ring — spawning the later warps on first use, then running
		// one barrier-to-barrier round for them before returning to its
		// own next segment.
		if !b.spawned {
			b.spawnFrom = w.id + 1
			b.spawn()
		}
		b.runRound()
		return
	}
	// Goroutine warp: pass the token to the next ring warp (or close the
	// round) and park until the next round reaches us.
	b.cursor++
	b.passToken()
	<-w.resume
}
