package gpusim

import "math/bits"

// This file models the memory subsystem: set-associative LRU caches and
// the warp-level access coalescer. Together they produce the transaction
// and hit/miss events behind the paper's memory counters.

// cache is a set-associative cache with LRU replacement, tracking only tags
// (the simulator moves no data — kernels compute on ordinary Go memory).
// Line sizes are always powers of two, so the line index is a shift; set
// counts often are not (a 1.5 MB L2 has 3072 sets), so set selection keeps
// a modulo fallback beside the fast mask path.
type cache struct {
	sets      [][]uint64 // per set, tags in MRU-first order
	ways      int
	lineSize  uint64
	lineShift uint
	numSets   uint64
	setMask   uint64 // numSets-1 when numSets is a power of two, else 0
	accesses  uint64
	misses    uint64
}

// newCache builds a cache of the given total size, line size, and
// associativity. Sizes that do not divide evenly are rounded down to at
// least one set. lineSize must be a power of two.
func newCache(sizeBytes, lineSize, ways int) *cache {
	numSets := sizeBytes / (lineSize * ways)
	if numSets < 1 {
		numSets = 1
	}
	c := &cache{
		sets:      make([][]uint64, numSets),
		ways:      ways,
		lineSize:  uint64(lineSize),
		lineShift: uint(bits.TrailingZeros64(uint64(lineSize))),
		numSets:   uint64(numSets),
	}
	if numSets&(numSets-1) == 0 {
		c.setMask = uint64(numSets - 1)
	}
	return c
}

// access looks up the line containing addr, inserting it on a miss.
// It reports whether the access hit.
func (c *cache) access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	var set uint64
	if c.setMask != 0 {
		set = line & c.setMask
	} else {
		set = line % c.numSets
	}
	ways := c.sets[set]
	for i, tag := range ways {
		if tag == line {
			// Move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	c.misses++
	if len(ways) < c.ways {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	c.sets[set] = ways
	return false
}

// reset clears all cache contents and statistics.
func (c *cache) reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.accesses, c.misses = 0, 0
}

// coalesce appends the unique aligned segments of the given size touched
// by the active lanes' byte addresses to buf (reused by the caller to avoid
// allocation) and returns it. It is the heart of the memory-access-pattern
// counters: a fully coalesced warp access to 4-byte words touches
// ⌈32·4/segment⌉ segments; a strided or scattered access touches up to 32.
func coalesce(buf []uint64, mask Mask, addrs *[WarpSize]uint64, accessBytes uint32, segment uint64) []uint64 {
	shift := uint(bits.TrailingZeros64(segment)) // segment is 32 or 128
	segs := buf[:0]
	for rem := uint32(mask); rem != 0; rem &= rem - 1 {
		lane := bits.TrailingZeros32(rem) // lanes in increasing order
		first := addrs[lane] >> shift
		last := (addrs[lane] + uint64(accessBytes) - 1) >> shift
		for s := first; s <= last; s++ {
			found := false
			for _, x := range segs {
				if x == s {
					found = true
					break
				}
			}
			if !found {
				segs = append(segs, s)
			}
		}
	}
	for i := range segs {
		segs[i] <<= shift
	}
	return segs
}

// bankConflictDegree returns the maximum number of distinct 4-byte words
// mapped to the same shared-memory bank among active lanes — the number of
// serialized passes the access needs. Lanes reading the same word broadcast
// and do not conflict. degree 1 means conflict-free.
// bankScratch is reusable working storage for bankConflictDegree, kept on
// the Block so the per-bank word lists need no zeroing per instruction
// (only the 64-byte count array is reset).
type bankScratch struct {
	words  [64][WarpSize]uint32
	counts [64]uint8
}

func bankConflictDegree(s *bankScratch, mask Mask, offsets *[WarpSize]uint32, banks int) int {
	if banks <= 0 || banks > 64 {
		return 1
	}
	// Distinct words per bank; duplicates (broadcasts) are detected by
	// scanning only the words already filed under the same bank.
	s.counts = [64]uint8{}
	degree := 1
	bankMask := uint32(0)
	if banks&(banks-1) == 0 {
		bankMask = uint32(banks - 1) // every modeled device has 16 or 32 banks
	}
	for rem := uint32(mask); rem != 0; rem &= rem - 1 {
		lane := bits.TrailingZeros32(rem)
		word := offsets[lane] >> 2
		var bank uint32
		if bankMask != 0 {
			bank = word & bankMask
		} else {
			bank = word % uint32(banks)
		}
		dup := false
		for i := uint8(0); i < s.counts[bank]; i++ {
			if s.words[bank][i] == word {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.words[bank][s.counts[bank]] = word
		s.counts[bank]++
		if int(s.counts[bank]) > degree {
			degree = int(s.counts[bank])
		}
	}
	return degree
}
