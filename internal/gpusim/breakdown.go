package gpusim

import (
	"fmt"
	"math"
)

// BottleneckBreakdown attributes a launch's modeled Cycles to the stall
// and work categories the paper's bottleneck analysis reasons about. The
// categories partition the total exactly: Total() reproduces
// LaunchResult.Cycles bit-for-bit, so per-category shares are meaningful
// percentages and downstream optimizers (ROADMAP item 3) can rank
// remediation by attributed cycles without re-deriving the timing model.
//
// Attribution is closed-form from the same counters and device terms the
// timing model uses: each category gets a weight in cycle units, and the
// final Cycles (including the pipeline-smoothing adjustment) is
// distributed proportionally. The breakdown is therefore a pure view over
// the existing model — computing it never changes Cycles, Bottleneck, or
// any derived metric.
type BottleneckBreakdown struct {
	// IssueCycles: productive instruction issue and arithmetic — the
	// cycles the kernel would cost with every stall removed.
	IssueCycles float64 `json:"issue_cycles"`
	// MemLatencyCycles: DRAM/L2 bandwidth and unhidden memory round-trip
	// latency.
	MemLatencyCycles float64 `json:"mem_latency_cycles"`
	// BarrierCycles: pipeline drains at __syncthreads barriers.
	BarrierCycles float64 `json:"barrier_cycles"`
	// SharedReplayCycles: shared-memory bank-conflict replays.
	SharedReplayCycles float64 `json:"shared_replay_cycles"`
	// UncoalescedCycles: replays from uncoalesced global transactions.
	UncoalescedCycles float64 `json:"uncoalesced_cycles"`
	// AtomicCycles: same-address atomic serialization and atomic replays.
	AtomicCycles float64 `json:"atomic_cycles"`
}

// barrierDrainCycles is the modeled issue-slot cost of one warp reaching a
// barrier: the warp sits in the scheduler without issuing for roughly a
// pipeline depth while the slowest warp of its block catches up.
const barrierDrainCycles = 8

// Total returns the attributed cycles. Summation order is fixed so the
// exactness fix-up in computeBreakdown can target it.
func (b *BottleneckBreakdown) Total() float64 {
	return b.IssueCycles + b.MemLatencyCycles + b.BarrierCycles +
		b.SharedReplayCycles + b.UncoalescedCycles + b.AtomicCycles
}

// Add accumulates other into b (used to aggregate per-launch breakdowns
// into a per-workload one).
func (b *BottleneckBreakdown) Add(other *BottleneckBreakdown) {
	b.IssueCycles += other.IssueCycles
	b.MemLatencyCycles += other.MemLatencyCycles
	b.BarrierCycles += other.BarrierCycles
	b.SharedReplayCycles += other.SharedReplayCycles
	b.UncoalescedCycles += other.UncoalescedCycles
	b.AtomicCycles += other.AtomicCycles
}

// Scale multiplies every category by f.
func (b *BottleneckBreakdown) Scale(f float64) {
	b.IssueCycles *= f
	b.MemLatencyCycles *= f
	b.BarrierCycles *= f
	b.SharedReplayCycles *= f
	b.UncoalescedCycles *= f
	b.AtomicCycles *= f
}

// String renders the breakdown as per-category percentages, largest first
// omitted — fixed order keeps the output diffable.
func (b *BottleneckBreakdown) String() string {
	total := b.Total()
	if total <= 0 {
		return "issue 0% mem 0% barrier 0% shared-replay 0% uncoalesced 0% atomics 0%"
	}
	pct := func(v float64) float64 { return 100 * v / total }
	return fmt.Sprintf("issue %.1f%% mem %.1f%% barrier %.1f%% shared-replay %.1f%% uncoalesced %.1f%% atomics %.1f%%",
		pct(b.IssueCycles), pct(b.MemLatencyCycles), pct(b.BarrierCycles),
		pct(b.SharedReplayCycles), pct(b.UncoalescedCycles), pct(b.AtomicCycles))
}

// computeBreakdown distributes cycles across categories using per-category
// weights expressed in cycle units (so they are commensurate):
//
//   - shared replays and uncoalesced replays each occupy one issue slot, so
//     their weight is replays / device issue rate — carved out of the issue
//     term, which counts InstIssued including replays;
//   - barriers cost barrierDrainCycles of stalled issue per warp-barrier;
//   - memory weight is the sum of the dram, l2, and latency terms;
//   - atomics weight is the serialization term plus atomic replays;
//   - issue keeps the remainder of the issue term plus the alu term.
//
// The weights are normalized onto the final smoothed Cycles, and a fix-up
// loop pins Total() to cycles exactly (floating-point summation order
// would otherwise leave an ulp of drift).
func computeBreakdown(c *Counters, cycles, issueRate, issueCycles, aluCycles, dramCycles, l2Cycles, latencyCycles, atomCycles float64) BottleneckBreakdown {
	var b BottleneckBreakdown
	if cycles <= 0 {
		return b
	}
	sharedW := float64(c.SharedLoadReplay+c.SharedStoreReplay) / issueRate
	uncoalW := float64(c.GlobalReplay) / issueRate
	atomReplayW := float64(c.AtomicReplays) / issueRate
	barrierW := barrierDrainCycles * float64(c.SyncCount) / issueRate
	memW := dramCycles + l2Cycles + latencyCycles
	atomW := atomCycles + atomReplayW
	issueW := issueCycles - sharedW - uncoalW - atomReplayW
	if issueW < 0 {
		issueW = 0
	}
	issueW += aluCycles

	totalW := issueW + memW + barrierW + sharedW + uncoalW + atomW
	if totalW <= 0 {
		b.IssueCycles = cycles
		return b
	}
	scale := cycles / totalW
	b.IssueCycles = issueW * scale
	b.MemLatencyCycles = memW * scale
	b.BarrierCycles = barrierW * scale
	b.SharedReplayCycles = sharedW * scale
	b.UncoalescedCycles = uncoalW * scale
	b.AtomicCycles = atomW * scale
	b.PinTotal(cycles)
	return b
}

// PinTotal adjusts the categories so Total() reproduces total bit-for-bit.
// computeBreakdown uses it to absorb the rounding of the proportional
// split; callers that sum per-launch breakdowns use it to re-pin the
// aggregate to the summed Cycles, where floating-point association would
// otherwise drift an ulp.
//
// Exactness is by construction, not by iteration: every category except
// the largest is rounded down to a multiple of g = 64·ulp(total) (a
// relative error of ~1e-14, far below model fidelity), and the largest is
// set to total minus their sum. All six values and every prefix sum are
// then multiples of ulp(total) bounded by total, hence exactly
// representable — so the fixed-order summation in Total() incurs no
// rounding at all and lands on total exactly.
func (b *BottleneckBreakdown) PinTotal(total float64) {
	fields := [...]*float64{&b.IssueCycles, &b.MemLatencyCycles, &b.BarrierCycles,
		&b.SharedReplayCycles, &b.UncoalescedCycles, &b.AtomicCycles}
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		for _, f := range fields {
			*f = 0
		}
		b.IssueCycles = total
		return
	}
	_, exp := math.Frexp(total) // total ∈ [2^(exp-1), 2^exp)
	g := math.Ldexp(1, exp-47)  // 64 × ulp(total); power-of-two scaling is exact
	largest := 0
	for i, f := range fields {
		if *f > *fields[largest] {
			largest = i
		}
	}
	var others float64
	for i, f := range fields {
		if i == largest {
			continue
		}
		*f = math.Floor(*f/g) * g
		others += *f // multiples of g: summation is exact
	}
	*fields[largest] = total - others
}
