package gpusim

import (
	"math"
	"testing"
)

// poolProbeSlots exercise every pooled state shape: float32 shared
// memory, int32 shared memory, a raw []uint32 slot (the histogram
// privatization pattern), and an unrecognized type that must be rebuilt.
var (
	poolF32Slot  = NewSlot()
	poolI32Slot  = NewSlot()
	poolU32Slot  = NewSlot()
	poolMiscSlot = NewSlot()
)

// poolProbeKernel writes into every state kind, syncs (so warp
// goroutines and the ring get exercised), and checks each array was
// zero/fresh at block start — the exact contract a real kernel relies on.
func poolProbeKernel(t *testing.T) KernelFunc {
	t.Helper()
	return func(w *Warp) {
		f := w.SharedF32(poolF32Slot, 64)
		i := w.SharedI32(poolI32Slot, 32)
		u := w.BlockState(poolU32Slot, func() any { return make([]uint32, 16) }).([]uint32)
		m := w.BlockState(poolMiscSlot, func() any { return map[int]int{} }).(map[int]int)
		if w.WarpID() == 0 {
			if f[0] != 0 || i[0] != 0 || u[0] != 0 || len(m) != 0 {
				t.Errorf("block (%d,%d): state not fresh: f=%v i=%v u=%v m=%v",
					w.blk.idxX, w.blk.idxY, f[0], i[0], u[0], m)
			}
		}
		w.Sync()
		bx, _ := w.BlockIdx()
		f[0] = float32(bx + 1)
		i[0] = int32(bx + 1)
		u[0] = uint32(bx + 1)
		m[bx] = bx
		var addrs [WarpSize]uint64
		for l := 0; l < WarpSize; l++ {
			addrs[l] = uint64(w.LinearTID(l)) * 4
		}
		w.GlobalLoad(FullMask(), &addrs, 4)
		w.FloatOps(FullMask(), 3)
		w.Sync()
	}
}

// TestWorkspacePoolingBitIdentical runs the same launch on a simulator
// whose workspace has already served other launches and on a pristine
// one: every counter, the modeled time, and the energy must agree to the
// last bit. This is the pooling contract — reuse may only change
// allocation counts, never results.
func TestWorkspacePoolingBitIdentical(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	cfg := LaunchConfig{GridDimX: 6, GridDimY: 1, BlockDimX: 128, BlockDimY: 1, RegsPerThread: 16, SharedMemPerBlock: 1024}
	kernel := poolProbeKernel(t)

	warmed := NewSimulator(d)
	// Dirty the workspace: a bigger launch (larger shared arrays, more
	// warps) followed by a cache reset, so the second launch starts from
	// the same cache state as a fresh simulator but a well-used workspace.
	big := LaunchConfig{GridDimX: 3, GridDimY: 1, BlockDimX: 256, BlockDimY: 1, RegsPerThread: 16, SharedMemPerBlock: 2048}
	if _, err := warmed.Launch(big, kernel, LaunchOptions{}); err != nil {
		t.Fatal(err)
	}
	warmed.ResetCaches()
	got, err := warmed.Launch(cfg, kernel, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	want, err := NewSimulator(d).Launch(cfg, kernel, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if got.Counters != want.Counters {
		t.Fatalf("counters diverge:\n pooled %+v\n fresh  %+v", got.Counters, want.Counters)
	}
	for _, pair := range [][2]float64{
		{got.Cycles, want.Cycles},
		{got.TimeMS, want.TimeMS},
		{got.EnergyMJ, want.EnergyMJ},
		{got.AvgPowerW, want.AvgPowerW},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("model outputs diverge: %x vs %x",
				math.Float64bits(pair[0]), math.Float64bits(pair[1]))
		}
	}
	if got.Bottleneck != want.Bottleneck {
		t.Fatalf("bottleneck %q vs %q", got.Bottleneck, want.Bottleneck)
	}
}

// TestWorkspaceShrinkingLaunch covers the downsize path: a launch whose
// shared arrays are smaller than the pooled ones must still see zeroed
// state of sufficient length, and a growing one must get a bigger array.
func TestWorkspaceShrinkingLaunch(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	slot := NewSlot()
	for _, bdim := range []int{256, 64, 512} {
		cfg := LaunchConfig{GridDimX: 2, GridDimY: 1, BlockDimX: bdim, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 256}
		want := bdim
		_, err := sim.Launch(cfg, func(w *Warp) {
			s := w.SharedF32(slot, want)
			if len(s) < want {
				t.Errorf("bdim %d: shared array len %d < %d", want, len(s), want)
			}
			if w.WarpID() == 0 {
				if s[0] != 0 || s[want-1] != 0 {
					t.Errorf("bdim %d: shared array not zeroed", want)
				}
				s[0], s[want-1] = 1, 1
			}
		}, LaunchOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPickBlocksEdgeCases(t *testing.T) {
	cases := []struct {
		total, maxSim int
		want          []int
	}{
		{total: 10, maxSim: 1, want: []int{0}},
		{total: 4, maxSim: 4, want: []int{0, 1, 2, 3}},
		{total: 4, maxSim: 9, want: []int{0, 1, 2, 3}},
		{total: 4, maxSim: 0, want: []int{0, 1, 2, 3}},
		{total: 4, maxSim: -1, want: []int{0, 1, 2, 3}},
		{total: 1, maxSim: 1, want: []int{0}},
		{total: 7, maxSim: 3, want: []int{0, 2, 4}},
		{total: 100, maxSim: 3, want: []int{0, 33, 66}},
	}
	for _, c := range cases {
		got := pickBlocks(c.total, c.maxSim)
		if len(got) != len(c.want) {
			t.Errorf("pickBlocks(%d,%d) = %v, want %v", c.total, c.maxSim, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("pickBlocks(%d,%d) = %v, want %v", c.total, c.maxSim, got, c.want)
				break
			}
		}
	}
}

// TestPickBlocksSampleInvariants: for every (total, maxSim) the sample is
// strictly increasing, in range, starts at block 0, and has exactly
// min(total, maxSim) entries — the properties counter scaling relies on.
func TestPickBlocksSampleInvariants(t *testing.T) {
	for total := 1; total <= 40; total++ {
		for maxSim := 1; maxSim <= 40; maxSim++ {
			got := pickBlocks(total, maxSim)
			wantLen := maxSim
			if wantLen > total {
				wantLen = total
			}
			if len(got) != wantLen {
				t.Fatalf("pickBlocks(%d,%d): %d blocks, want %d", total, maxSim, len(got), wantLen)
			}
			if got[0] != 0 {
				t.Fatalf("pickBlocks(%d,%d): first block %d, want 0", total, maxSim, got[0])
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] || got[i] >= total {
					t.Fatalf("pickBlocks(%d,%d): bad sample %v", total, maxSim, got)
				}
			}
		}
	}
}

func TestCountersScaleRounding(t *testing.T) {
	// Scale rounds each count to nearest (half away from zero): the
	// extrapolated totals must be integers without systematic downward
	// bias from truncation.
	c := Counters{InstExecuted: 3, InstIssued: 1, ThreadInstExecuted: 2, DRAMReadBytes: 7}
	c.Scale(1.5)
	if c.InstExecuted != 5 { // 4.5 rounds up
		t.Errorf("InstExecuted = %d, want 5", c.InstExecuted)
	}
	if c.InstIssued != 2 { // 1.5 rounds up
		t.Errorf("InstIssued = %d, want 2", c.InstIssued)
	}
	if c.ThreadInstExecuted != 3 {
		t.Errorf("ThreadInstExecuted = %d, want 3", c.ThreadInstExecuted)
	}
	if c.DRAMReadBytes != 11 { // 10.5 rounds up
		t.Errorf("DRAMReadBytes = %d, want 11", c.DRAMReadBytes)
	}

	// Scaling by exactly 1 is the identity.
	d := Counters{InstExecuted: 41, SharedLoad: 13, SyncCount: 9}
	e := d
	e.Scale(1)
	if d != e {
		t.Errorf("Scale(1) changed counters: %+v vs %+v", d, e)
	}

	// The launch-path ratio total/simulated reconstructs whole-grid
	// counts exactly when per-block counts are uniform.
	f := Counters{GldRequest: 12, L2ReadTransactions: 48} // 3 blocks' worth
	f.Scale(float64(7) / float64(3))                      // extrapolate to 7
	if f.GldRequest != 28 || f.L2ReadTransactions != 112 {
		t.Errorf("uniform extrapolation: %+v, want 28/112", f)
	}

	// Zero counts stay zero for any factor.
	var z Counters
	z.Scale(123.456)
	if z != (Counters{}) {
		t.Errorf("Scale left zero counters nonzero: %+v", z)
	}
}
