package gpusim

import "fmt"

// Block executes one thread block: it owns the block's counter accumulator
// and L1 view and schedules the block's warps cooperatively. Warps run one
// at a time, yielding at barriers, which makes execution deterministic and
// lets instruction accounting go lock-free — the SIMT analogue of
// communicating by channels rather than sharing memory.
type Block struct {
	dev  *Device
	cfg  LaunchConfig
	idxX int
	idxY int

	counters *Counters
	l1       *cache
	l2       *cache

	// state holds kernel-managed per-block data (the functional contents
	// of shared memory). Warps of a block execute one at a time, so no
	// locking is needed.
	state map[string]any

	// segScratch is reused by the coalescer to avoid per-instruction
	// allocation (a warp access touches at most 64 segments).
	segScratch [64]uint64
	// banks is the shared-memory conflict detector's working storage.
	banks bankScratch
}

// KernelFunc is the body of a kernel, invoked once per warp.
type KernelFunc func(w *Warp)

// run executes the kernel for every warp of the block. It returns an error
// if any warp panicked (kernel bugs surface as errors, not hangs).
func (b *Block) run(kernel KernelFunc) (err error) {
	n := b.cfg.WarpsPerBlock()
	warps := make([]*Warp, n)
	panics := make([]any, n)
	for i := 0; i < n; i++ {
		warps[i] = &Warp{
			blk:    b,
			id:     i,
			resume: make(chan struct{}),
			event:  make(chan warpEvent),
		}
	}
	for i, w := range warps {
		go func(i int, w *Warp) {
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
				// Signal completion even after a panic so the
				// scheduler never deadlocks.
				w.event <- evDone
			}()
			<-w.resume
			kernel(w)
		}(i, w)
	}

	// Round-robin the warps: each scheduling round runs every live warp
	// exclusively until its next barrier (or completion). This realizes
	// CUDA barrier semantics: no warp passes barrier k until all do.
	active := warps
	for len(active) > 0 {
		next := active[:0]
		for _, w := range active {
			w.resume <- struct{}{}
			if <-w.event == evBarrier {
				next = append(next, w)
			}
		}
		active = next
	}
	for i, p := range panics {
		if p != nil {
			return fmt.Errorf("gpusim: kernel panic in block (%d,%d) warp %d: %v", b.idxX, b.idxY, i, p)
		}
	}
	return nil
}
