package gpusim

import (
	"fmt"
	"sync/atomic"
)

// Slot is an interned handle for per-block kernel state (the functional
// contents of a __shared__ array). Kernels allocate slots once at package
// init with NewSlot and index the block's state table directly — no string
// hashing on the instruction hot path.
type Slot int

var slotCount atomic.Int64

// NewSlot reserves a new block-state slot. Call it from package-level var
// initialization, one per distinct shared array a kernel family uses.
func NewSlot() Slot { return Slot(slotCount.Add(1) - 1) }

// Block executes one thread block: it owns the block's counter accumulator
// and L1 view and schedules the block's warps cooperatively. Warps run one
// at a time, yielding at barriers, which makes execution deterministic and
// lets instruction accounting go lock-free.
type Block struct {
	dev  *Device
	cfg  LaunchConfig
	idxX int
	idxY int

	counters *Counters
	l1       *cache
	l2       *cache

	// state holds kernel-managed per-block data (the functional contents
	// of shared memory), indexed by Slot. Warps of a block execute one at
	// a time, so no locking is needed.
	state []any

	// --- scheduler state (see run) ---
	kernel KernelFunc
	panics []any
	// ring holds the goroutine-backed warps that are still live, in warp
	// order; cursor is the position of the warp currently holding the
	// scheduling token. Only the token holder (or the driver between
	// rounds) touches these, so they need no lock: token hand-offs are
	// channel operations and give the happens-before edges.
	ring      []*Warp
	cursor    int
	roundDone chan struct{}
	spawned   bool
	spawnFrom int
	// warpPool holds finished goroutine-backed warps (with their resume
	// channels) for reuse by later blocks run on the same workspace. Warps
	// only enter the pool after their goroutine is done with them, and the
	// token hand-off orders every pool access, so no lock is needed.
	warpPool []*Warp

	// segScratch is reused by the coalescer to avoid per-instruction
	// allocation (a warp access touches at most 64 segments).
	segScratch [64]uint64
	// banks is the shared-memory conflict detector's working storage.
	banks bankScratch
	// inlineWarp is the reusable Warp value for warps executed directly on
	// the scheduler goroutine, so barrier-free kernels allocate nothing
	// per warp.
	inlineWarp Warp
}

// KernelFunc is the body of a kernel, invoked once per warp.
type KernelFunc func(w *Warp)

// reset prepares a pooled block workspace for its next simulated block.
// Identity and wiring are replaced; kernel-visible state is restored to
// exactly what a fresh Block would present — numeric scratch slices are
// zeroed in place (BlockState create functions build zeroed slices, so a
// cleared one is indistinguishable), anything else is dropped and rebuilt
// on first use. Scheduler scratch (ring backing, pooled warps and their
// channels, the bank detector) carries over: it is overwritten before
// every read, so reuse cannot change a single counter.
func (b *Block) reset(cfg LaunchConfig, idxX, idxY int, counters *Counters, l1, l2 *cache) {
	b.cfg = cfg
	b.idxX, b.idxY = idxX, idxY
	b.counters = counters
	b.l1, b.l2 = l1, l2
	for i, v := range b.state {
		switch t := v.(type) {
		case []float32:
			clear(t)
		case []int32:
			clear(t)
		case []uint32:
			clear(t)
		case []float64:
			clear(t)
		default:
			b.state[i] = nil
		}
	}
}

// run executes the kernel for every warp of the block. It returns an error
// if any warp panicked (kernel bugs surface as errors, not hangs).
//
// Warps are run inline on the calling goroutine, one after another, until
// the first barrier is hit. A kernel with no __syncthreads therefore costs
// zero goroutines and zero channel operations. When a warp does call Sync,
// that warp — necessarily the lowest-indexed live warp, since everything
// before it already ran to completion — becomes the ring driver: its Sync
// lazily spawns the remaining warps as goroutines and passes a scheduling
// token around them, realizing CUDA barrier semantics (no warp passes
// barrier k until all live warps reach it). The token ring visits warps in
// index order, and the driver always executes its own segment before
// starting the others' round, so counters and cache state evolve in exactly
// the order the previous round-robin scheduler produced.
func (b *Block) run(kernel KernelFunc) error {
	n := b.cfg.WarpsPerBlock()
	b.kernel = kernel
	b.panics = nil
	b.ring = b.ring[:0]
	b.spawned = false

	for i := 0; i < n; i++ {
		w := &b.inlineWarp
		*w = Warp{blk: b, id: i}
		b.runInline(w, i)
		if b.spawned {
			// Warp i hit a barrier and drove the remaining warps from
			// inside Sync; it has now finished (or panicked). Any warps
			// still parked at a barrier get their remaining rounds here.
			for len(b.ring) > 0 {
				b.runRound()
			}
			break
		}
	}
	for i, p := range b.panics {
		if p != nil {
			return fmt.Errorf("gpusim: kernel panic in block (%d,%d) warp %d: %v", b.idxX, b.idxY, i, p)
		}
	}
	return nil
}

// runInline executes one warp directly on the scheduler goroutine,
// converting a kernel panic into a recorded per-warp error.
func (b *Block) runInline(w *Warp, i int) {
	defer func() {
		if r := recover(); r != nil {
			b.recordPanic(i, r)
		}
	}()
	b.kernel(w)
}

func (b *Block) recordPanic(i int, r any) {
	if b.panics == nil {
		b.panics = make([]any, b.cfg.WarpsPerBlock())
	}
	b.panics[i] = r
}

// spawn starts goroutines for warps spawnFrom..n-1. Each parks immediately
// on its resume channel; the first token it receives is its first
// scheduling round.
func (b *Block) spawn() {
	n := b.cfg.WarpsPerBlock()
	b.spawned = true
	if b.roundDone == nil {
		b.roundDone = make(chan struct{})
	}
	for j := b.spawnFrom; j < n; j++ {
		w := b.takeWarp(j)
		b.ring = append(b.ring, w)
		go func(w *Warp) {
			defer func() {
				if r := recover(); r != nil {
					b.recordPanic(w.id, r)
				}
				// The warp is finished: drop it from the ring, return it
				// to the pool, and pass the token on, even after a panic,
				// so the scheduler never deadlocks.
				b.ring = append(b.ring[:b.cursor], b.ring[b.cursor+1:]...)
				b.warpPool = append(b.warpPool, w)
				b.passToken()
			}()
			<-w.resume
			b.kernel(w)
		}(w)
	}
}

// takeWarp reuses a pooled goroutine-warp shell (keeping its resume
// channel, which is known empty once the warp is pooled) or builds one.
func (b *Block) takeWarp(id int) *Warp {
	if k := len(b.warpPool); k > 0 {
		w := b.warpPool[k-1]
		b.warpPool = b.warpPool[:k-1]
		w.id = id
		return w
	}
	return &Warp{blk: b, id: id, resume: make(chan struct{})}
}

// runRound runs one barrier-to-barrier segment of every live ring warp, in
// warp order, by circulating the token once. Called by the driver warp's
// Sync (after it has executed its own segment) and by run's drain loop.
func (b *Block) runRound() {
	if len(b.ring) == 0 {
		return
	}
	b.cursor = 0
	b.ring[0].resume <- struct{}{}
	<-b.roundDone
}

// passToken hands the scheduling token to the warp at the current cursor,
// or back to the driver when the round is complete. The caller must hold
// the token.
func (b *Block) passToken() {
	if b.cursor < len(b.ring) {
		b.ring[b.cursor].resume <- struct{}{}
	} else {
		b.roundDone <- struct{}{}
	}
}
