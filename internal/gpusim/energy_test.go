package gpusim

import "testing"

func TestEnergyModelBounds(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 64, GridDimY: 1, BlockDimX: 256, BlockDimY: 1, RegsPerThread: 12, SharedMemPerBlock: 1024}
	res, err := sim.Launch(cfg, func(w *Warp) {
		var addrs [WarpSize]uint64
		for l := range addrs {
			addrs[l] = uint64(4 * l)
		}
		for i := 0; i < 50; i++ {
			w.GlobalLoad(FullMask(), &addrs, 4)
			w.FloatOps(FullMask(), 10)
		}
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyMJ <= 0 {
		t.Fatal("no energy accounted")
	}
	if res.AvgPowerW < d.IdleWatts || res.AvgPowerW > d.TDPWatts {
		t.Fatalf("power %v W outside [idle %v, TDP %v]", res.AvgPowerW, d.IdleWatts, d.TDPWatts)
	}
}

func TestEnergyGrowsWithTraffic(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	cfg := LaunchConfig{GridDimX: 16, GridDimY: 1, BlockDimX: 64, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 256}
	run := func(loads int) *LaunchResult {
		sim := NewSimulator(d)
		res, err := sim.Launch(cfg, func(w *Warp) {
			bx, _ := w.BlockIdx()
			var addrs [WarpSize]uint64
			for i := 0; i < loads; i++ {
				for l := range addrs {
					// Streaming addresses: every load misses.
					addrs[l] = uint64(bx)<<24 | uint64(i*2048+4*l)
				}
				w.GlobalLoad(FullMask(), &addrs, 4)
			}
		}, LaunchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(5)
	big := run(200)
	if big.EnergyMJ <= small.EnergyMJ {
		t.Fatalf("40x more DRAM traffic did not increase energy: %v vs %v mJ",
			big.EnergyMJ, small.EnergyMJ)
	}
	// The busier kernel should also draw more average power.
	if big.AvgPowerW <= small.AvgPowerW {
		t.Fatalf("power did not grow with intensity: %v vs %v W", big.AvgPowerW, small.AvgPowerW)
	}
}

func TestPowerCappedAtTDP(t *testing.T) {
	// An absurdly dense kernel must saturate at the TDP, not exceed it.
	d, _ := LookupDevice("K20m")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 128, GridDimY: 1, BlockDimX: 256, BlockDimY: 1, RegsPerThread: 16, SharedMemPerBlock: 512}
	res, err := sim.Launch(cfg, func(w *Warp) {
		var addrs [WarpSize]uint64
		for i := 0; i < 100; i++ {
			for l := range addrs {
				addrs[l] = uint64(w.LinearTID(l)*128 + i*1<<20)
			}
			w.GlobalLoad(FullMask(), &addrs, 4)
			w.GlobalStore(FullMask(), &addrs, 4)
		}
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPowerW > d.TDPWatts+1e-9 {
		t.Fatalf("power %v exceeds TDP %v", res.AvgPowerW, d.TDPWatts)
	}
}
