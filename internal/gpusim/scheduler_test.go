package gpusim

import (
	"fmt"
	"strings"
	"testing"
)

// Scheduler regression tests: the inline/token-ring scheduler in Block.run
// must preserve the semantics of the original goroutine-per-warp
// round-robin — the same warp-segment execution order (counters and cache
// state evolve identically), the same panic reporting, and no deadlocks
// when warps exit early or sync unevenly.

func schedCfg(threads int) LaunchConfig {
	return LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: threads, BlockDimY: 1,
		RegsPerThread: 8, SharedMemPerBlock: 64}
}

func launchOne(t *testing.T, threads int, kernel KernelFunc) error {
	t.Helper()
	d, _ := LookupDevice("GTX580")
	_, err := NewSimulator(d).Launch(schedCfg(threads), kernel, LaunchOptions{})
	return err
}

// TestSchedulerSegmentOrder pins the exact interleaving the old round-robin
// scheduler produced: round k runs segment k of every live warp in warp
// order. The trace is appended under token ownership, so it is race-free.
func TestSchedulerSegmentOrder(t *testing.T) {
	cases := []struct {
		name  string
		warps int
		syncs func(id int) int // barriers each warp executes
		want  string
	}{
		{
			name: "no_barriers", warps: 4,
			syncs: func(int) int { return 0 },
			want:  "w0s0 w1s0 w2s0 w3s0",
		},
		{
			name: "uniform_two_barriers", warps: 3,
			syncs: func(int) int { return 2 },
			want:  "w0s0 w1s0 w2s0 w0s1 w1s1 w2s1 w0s2 w1s2 w2s2",
		},
		{
			// Warp 0 never syncs: it completes inline, warp 1 becomes the
			// ring driver, and rounds cover warps 1..3 only.
			name: "first_warp_exits_early", warps: 4,
			syncs: func(id int) int {
				if id == 0 {
					return 0
				}
				return 1
			},
			want: "w0s0 w1s0 w2s0 w3s0 w1s1 w2s1 w3s1",
		},
		{
			// Uneven sync counts: warps drop out of the ring at different
			// rounds, later rounds shrink, nothing deadlocks.
			name: "staggered_exit", warps: 4,
			syncs: func(id int) int { return id },
			want:  "w0s0 w1s0 w2s0 w3s0 w1s1 w2s1 w3s1 w2s2 w3s2 w3s3",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var trace []string
			err := launchOne(t, tc.warps*WarpSize, func(w *Warp) {
				for seg := 0; ; seg++ {
					trace = append(trace, fmt.Sprintf("w%ds%d", w.WarpID(), seg))
					if seg >= tc.syncs(w.WarpID()) {
						return
					}
					w.Sync()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.Join(trace, " "); got != tc.want {
				t.Fatalf("segment order\ngot:  %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// TestPanicReportsLowestWarpIndex: when several warps panic, the error
// names the lowest-indexed one (the order the panics slice is scanned),
// matching the original scheduler.
func TestPanicReportsLowestWarpIndex(t *testing.T) {
	err := launchOne(t, 4*WarpSize, func(w *Warp) {
		if w.WarpID() >= 2 {
			panic(fmt.Sprintf("boom %d", w.WarpID()))
		}
	})
	if err == nil {
		t.Fatal("panicking kernel reported success")
	}
	if !strings.Contains(err.Error(), "warp 2: boom 2") {
		t.Fatalf("error should name warp 2: %v", err)
	}
}

// TestPanicInRingDriver: the inline driver warp panics after it has taken
// over scheduling; the parked ring warps must still be driven to completion
// and the driver's panic reported.
func TestPanicInRingDriver(t *testing.T) {
	finished := make([]bool, 3)
	err := launchOne(t, 3*WarpSize, func(w *Warp) {
		w.Sync()
		if w.WarpID() == 0 {
			panic("driver bug")
		}
		w.Sync()
		finished[w.WarpID()] = true
	})
	if err == nil || !strings.Contains(err.Error(), "warp 0: driver bug") {
		t.Fatalf("want driver panic surfaced, got %v", err)
	}
	if !finished[1] || !finished[2] {
		t.Fatalf("ring warps not drained after driver panic: %v", finished)
	}
}

// TestPanicInRingWarp: a goroutine-backed warp panics between barriers; the
// driver and the remaining ring warps must complete.
func TestPanicInRingWarp(t *testing.T) {
	finished := make([]bool, 3)
	err := launchOne(t, 3*WarpSize, func(w *Warp) {
		w.Sync()
		if w.WarpID() == 1 {
			panic("ring bug")
		}
		w.Sync()
		finished[w.WarpID()] = true
	})
	if err == nil || !strings.Contains(err.Error(), "warp 1: ring bug") {
		t.Fatalf("want ring panic surfaced, got %v", err)
	}
	if !finished[0] || !finished[2] {
		t.Fatalf("surviving warps not drained after ring panic: %v", finished)
	}
}

// TestPerInstructionAllocs: instruction accounting must not allocate —
// running 100x more instructions through a block may not change the number
// of allocations per launch. This guards the coalescer/bank-conflict
// scratch reuse and the allocation-free instruction methods.
func TestPerInstructionAllocs(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	mk := func(iters int) KernelFunc {
		return func(w *Warp) {
			var addrs [WarpSize]uint64
			var offs [WarpSize]uint32
			for l := 0; l < WarpSize; l++ {
				addrs[l] = uint64(4 * l)
				offs[l] = uint32(4 * l)
			}
			full := FullMask()
			for i := 0; i < iters; i++ {
				w.IntOps(full, 1)
				w.GlobalLoad(full, &addrs, 4)
				w.GlobalStore(full, &addrs, 4)
				w.SharedLoad(full, &offs)
				w.SharedStore(full, &offs)
				w.AtomicGlobalAdd(full, &addrs)
				w.AtomicSharedAdd(full, &offs)
				w.Branch(full, full)
			}
		}
	}
	measure := func(iters int) float64 {
		kernel := mk(iters)
		return testing.AllocsPerRun(20, func() {
			if _, err := sim.Launch(schedCfg(2*WarpSize), kernel, LaunchOptions{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Slack of 2 absorbs stray background allocations; a real per-
	// instruction alloc would differ by thousands (500 iters × 8 instrs).
	small, big := measure(5), measure(500)
	if big > small+2 {
		t.Fatalf("allocations scale with instruction count: %v allocs at 5 iters, %v at 500", small, big)
	}
}

// TestBarrierFreeKernelAllocs: a kernel with no barriers runs entirely
// inline — no goroutines, no channels, no per-warp allocation. The whole
// launch should stay within a small constant allocation budget regardless
// of warp count.
func TestBarrierFreeKernelAllocs(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	kernel := func(w *Warp) { w.IntOps(FullMask(), 1) }
	few := testing.AllocsPerRun(20, func() {
		if _, err := sim.Launch(schedCfg(2*WarpSize), kernel, LaunchOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	many := testing.AllocsPerRun(20, func() {
		if _, err := sim.Launch(schedCfg(16*WarpSize), kernel, LaunchOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if many > few+2 {
		t.Fatalf("barrier-free launch allocates per warp: %v allocs at 2 warps, %v at 16", few, many)
	}
}
