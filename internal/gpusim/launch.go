package gpusim

import (
	"fmt"
	"math"
)

// ModelVersion names the simulator's modeling semantics. It salts every
// content-addressed run-cache key, so any change to how counters are
// accounted, time is modeled, or energy is derived MUST bump it —
// otherwise profiles cached by an older binary would be served as if the
// new model had produced them.
const ModelVersion = "gpusim-v1"

// LaunchOptions tunes a simulated kernel launch.
type LaunchOptions struct {
	// MaxSimBlocks caps the number of thread blocks executed in detail;
	// counters are scaled to the full grid afterwards (the standard
	// sampling-simulator compromise). 0 simulates every block, which is
	// required when the caller needs complete functional results.
	MaxSimBlocks int
}

// LaunchResult reports one simulated kernel launch.
type LaunchResult struct {
	Device    *Device
	Config    LaunchConfig
	Occupancy Occupancy
	// AchievedOccupancy estimates nvprof's achieved_occupancy.
	AchievedOccupancy float64
	// Counters are scaled to the full grid.
	Counters Counters
	// Cycles is the modeled execution duration in core cycles.
	Cycles float64
	// TimeMS is the modeled kernel time in milliseconds, including the
	// fixed launch overhead.
	TimeMS float64
	// Bottleneck names the term that bounded the kernel time:
	// "issue", "alu", "dram", "l2", or "latency".
	Bottleneck string
	// Breakdown attributes Cycles to stall/work categories; its Total()
	// equals Cycles exactly. It is a pure view over the timing model:
	// computing it never changes Cycles or Bottleneck.
	Breakdown BottleneckBreakdown
	// EnergyMJ is the modeled energy of the launch in millijoules
	// (idle draw over the duration plus per-event dynamic energy).
	EnergyMJ float64
	// AvgPowerW is the modeled average power draw over the launch.
	AvgPowerW       float64
	SimulatedBlocks int
	TotalBlocks     int
}

// Simulator executes kernels on a device model. The L2 cache persists
// across launches (as on real hardware); call ResetL2 between unrelated
// experiments for reproducibility.
type Simulator struct {
	dev *Device
	l2  *cache
	l1s []*cache // one L1 per SM slot, reused by blocks assigned to it
	// blk is the reusable block workspace: one Block whose scratch state
	// (shared-memory slices, warp shells, ring backing) survives across
	// blocks and launches instead of being reallocated per block. reset
	// restores everything a kernel can observe, so pooling is invisible
	// to counters. A Simulator is single-goroutine, as before.
	blk Block
}

// NewSimulator builds a simulator for the device.
func NewSimulator(dev *Device) *Simulator {
	s := &Simulator{
		dev: dev,
		l2:  newCache(dev.L2SizeKB*1024, 32, 16),
		l1s: make([]*cache, dev.SMs),
	}
	for i := range s.l1s {
		s.l1s[i] = newCache(dev.L1SizeKB*1024, 128, 4)
	}
	return s
}

// Device returns the simulated device.
func (s *Simulator) Device() *Device { return s.dev }

// ResetCaches clears all cache state.
func (s *Simulator) ResetCaches() {
	s.l2.reset()
	for _, l1 := range s.l1s {
		l1.reset()
	}
}

// Launch runs the kernel over the grid described by cfg and returns the
// modeled counters and time.
func (s *Simulator) Launch(cfg LaunchConfig, kernel KernelFunc, opts LaunchOptions) (*LaunchResult, error) {
	occ, err := ComputeOccupancy(s.dev, cfg)
	if err != nil {
		return nil, err
	}
	total := cfg.Blocks()
	simBlocks := pickBlocks(total, opts.MaxSimBlocks)

	var counters Counters
	s.blk.dev = s.dev
	for _, bi := range simBlocks {
		s.blk.reset(cfg, bi%cfg.GridDimX, bi/cfg.GridDimX, &counters, s.l1s[bi%len(s.l1s)], s.l2)
		if err := s.blk.run(kernel); err != nil {
			return nil, err
		}
	}
	if len(simBlocks) < total {
		counters.Scale(float64(total) / float64(len(simBlocks)))
	}

	res := &LaunchResult{
		Device:            s.dev,
		Config:            cfg,
		Occupancy:         occ,
		AchievedOccupancy: AchievedOccupancy(s.dev, cfg, occ),
		Counters:          counters,
		SimulatedBlocks:   len(simBlocks),
		TotalBlocks:       total,
	}
	s.model(res)
	return res, nil
}

// pickBlocks selects which block indices to simulate: all of them, or an
// even sample across the grid so boundary blocks and interior blocks are
// both represented.
func pickBlocks(total, maxSim int) []int {
	if maxSim <= 0 || maxSim >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, maxSim)
	stride := float64(total) / float64(maxSim)
	for i := range out {
		out[i] = int(float64(i) * stride)
	}
	return out
}

// model fills in the bottleneck-based timing estimate. The kernel time is
// the maximum of four device-wide terms, mirroring how the paper reasons
// about performance limiters (§3.1):
//
//   - issue:   warp instructions issued (incl. replays) / SM issue rate —
//     replays from bank conflicts and uncoalesced accesses inflate
//     exactly this term;
//   - alu:     thread-level arithmetic ops / total core throughput;
//   - dram:    DRAM bytes moved / memory bandwidth;
//   - latency: memory round-trips that resident warps cannot hide when
//     occupancy is low.
func (s *Simulator) model(res *LaunchResult) {
	d := s.dev
	c := &res.Counters
	occ := res.Occupancy

	effSMs := float64(d.SMs) * math.Max(occ.TailUtilization, 1e-3)
	if occ.ActiveSMs < d.SMs {
		effSMs = float64(occ.ActiveSMs)
	}

	issueCycles := float64(c.InstIssued) / (effSMs * d.PeakWarpIssuePerCycle())

	aluOps := float64(c.IntThreadOps + c.FloatThreadOps + 4*c.SpecialThreadOps)
	aluCycles := aluOps / (effSMs * float64(d.CoresPerSM))

	dramBytes := float64(c.DRAMReadBytes + c.DRAMWriteBytes)
	dramCycles := dramBytes / d.BytesPerCycle()

	l2Bytes := 32 * float64(c.L2ReadTransactions+c.L2WriteTransactions)
	l2Cycles := l2Bytes / (2 * d.BytesPerCycle()) // L2 ≈ 2× DRAM bandwidth

	// Latency term: each warp's chain of memory requests costs a
	// round-trip; resident warps (and per-warp memory-level parallelism)
	// overlap them.
	totalWarps := float64(res.TotalBlocks * res.Config.WarpsPerBlock())
	latencyCycles := 0.0
	if totalWarps > 0 {
		memReqs := float64(c.GldRequest + c.GstRequest)
		reqsPerWarp := memReqs / totalWarps
		avgLat := s.averageLatency(c)
		const mlp = 4 // outstanding requests a warp sustains
		overlap := math.Max(1, float64(occ.WarpsPerSM)) * mlp
		warpsPerSM := totalWarps / effSMs
		latencyCycles = warpsPerSM * reqsPerWarp * avgLat / overlap
	}

	// Global atomics to the same address serialize at the L2: the bank
	// applies one read-modify-write at a time, device-wide (~4 cycles
	// each) — the cost privatized histograms avoid.
	atomCycles := 4 * float64(c.GlobalAtomicSerial)

	res.Cycles, res.Bottleneck = maxTerm(map[string]float64{
		"issue":   issueCycles,
		"alu":     aluCycles,
		"dram":    dramCycles,
		"l2":      l2Cycles,
		"latency": latencyCycles,
		"atomics": atomCycles,
	})
	// Pipeline drain/ramp smoothing: secondary terms are not perfectly
	// hidden behind the bottleneck.
	sum := issueCycles + aluCycles + dramCycles + l2Cycles + latencyCycles + atomCycles
	res.Cycles += 0.08 * (sum - res.Cycles)

	res.Breakdown = computeBreakdown(c, res.Cycles, effSMs*d.PeakWarpIssuePerCycle(),
		issueCycles, aluCycles, dramCycles, l2Cycles, latencyCycles, atomCycles)

	res.TimeMS = res.Cycles/(d.ClockGHz*1e9)*1e3 + d.LaunchOverheadUS/1e3

	// Energy: baseline draw for the duration plus per-event dynamic
	// energy, capped so average power stays below the board TDP.
	dynNJ := d.EnergyScale * (energyDRAMPerByteNJ*dramBytes +
		energyL2Per32BNJ*float64(c.L2ReadTransactions+c.L2WriteTransactions) +
		energyL1Per128BNJ*float64(c.L1GlobalLoadHit+c.L1GlobalLoadMiss) +
		energyALUPerOpNJ*aluOps +
		energySharedPerOpNJ*float64(c.LdstThreadOps) +
		energyIssuePerWarpNJ*float64(c.InstIssued))
	timeSec := res.TimeMS / 1e3
	energyJ := d.IdleWatts*timeSec + dynNJ*1e-9
	if maxJ := d.TDPWatts * timeSec; energyJ > maxJ {
		energyJ = maxJ
	}
	res.EnergyMJ = energyJ * 1e3
	if timeSec > 0 {
		res.AvgPowerW = energyJ / timeSec
	}
}

// averageLatency returns the mean global-memory round-trip in cycles,
// weighted by where loads were served.
func (s *Simulator) averageLatency(c *Counters) float64 {
	d := s.dev
	hits := float64(c.L1GlobalLoadHit)
	l2Reads := float64(c.L2ReadTransactions)
	dramReads := float64(c.DRAMReadBytes) / 32
	l2Hits := l2Reads - dramReads
	if l2Hits < 0 {
		l2Hits = 0
	}
	total := hits + l2Hits + dramReads
	if total == 0 {
		return float64(d.L2LatencyCycles)
	}
	return (hits*float64(d.L1LatencyCycles) +
		l2Hits*float64(d.L2LatencyCycles) +
		dramReads*float64(d.DRAMLatencyCycles)) / total
}

// maxTerm returns the largest value and its key; ties break by name for
// determinism.
func maxTerm(terms map[string]float64) (float64, string) {
	best := math.Inf(-1)
	name := ""
	for _, k := range []string{"alu", "atomics", "dram", "issue", "l2", "latency"} {
		v, ok := terms[k]
		if !ok {
			continue
		}
		if v > best {
			best, name = v, k
		}
	}
	return best, name
}

// String summarizes a launch result.
func (r *LaunchResult) String() string {
	return fmt.Sprintf("%s grid=%dx%d block=%dx%d: %.4f ms (%s-bound, occ=%.2f, %d/%d blocks simulated)",
		r.Device.Name, r.Config.GridDimX, r.Config.GridDimY,
		r.Config.BlockDimX, r.Config.BlockDimY,
		r.TimeMS, r.Bottleneck, r.AchievedOccupancy,
		r.SimulatedBlocks, r.TotalBlocks)
}
