package gpusim

import "fmt"

// LaunchConfig describes one kernel launch: grid and block geometry plus
// the per-thread register and per-block shared-memory footprints that
// constrain occupancy.
type LaunchConfig struct {
	GridDimX, GridDimY   int
	BlockDimX, BlockDimY int
	RegsPerThread        int
	SharedMemPerBlock    int // bytes
}

// Blocks returns the total number of thread blocks in the grid.
func (lc LaunchConfig) Blocks() int { return lc.GridDimX * lc.GridDimY }

// ThreadsPerBlock returns the block size in threads.
func (lc LaunchConfig) ThreadsPerBlock() int { return lc.BlockDimX * lc.BlockDimY }

// WarpsPerBlock returns the number of warps per block (rounded up).
func (lc LaunchConfig) WarpsPerBlock() int {
	return (lc.ThreadsPerBlock() + WarpSize - 1) / WarpSize
}

// Validate checks the launch against device limits.
func (lc LaunchConfig) Validate(d *Device) error {
	if lc.GridDimX <= 0 || lc.GridDimY <= 0 || lc.BlockDimX <= 0 || lc.BlockDimY <= 0 {
		return fmt.Errorf("gpusim: non-positive launch geometry %+v", lc)
	}
	if tpb := lc.ThreadsPerBlock(); tpb > d.MaxThreadsPerBlk {
		return fmt.Errorf("gpusim: %d threads per block exceeds device limit %d", tpb, d.MaxThreadsPerBlk)
	}
	if lc.SharedMemPerBlock > d.SharedMemPerSMKB*1024 {
		return fmt.Errorf("gpusim: %d B shared memory per block exceeds SM capacity %d KB",
			lc.SharedMemPerBlock, d.SharedMemPerSMKB)
	}
	if lc.RegsPerThread > d.MaxRegsPerThread {
		return fmt.Errorf("gpusim: %d registers per thread exceeds device limit %d",
			lc.RegsPerThread, d.MaxRegsPerThread)
	}
	return nil
}

// Occupancy describes the residency achievable for a launch on a device.
type Occupancy struct {
	BlocksPerSM     int     // resident blocks per SM
	WarpsPerSM      int     // resident warps per SM
	Theoretical     float64 // resident warps / max warps
	LimitedBy       string  // "warps", "blocks", "shared", or "registers"
	ActiveSMs       int     // SMs that receive at least one block
	TailUtilization float64 // mean resident fraction accounting for the grid tail
}

// ComputeOccupancy evaluates the CUDA occupancy calculation for lc on d:
// resident blocks per SM are bounded by the warp budget, the block-slot
// budget, the shared-memory budget, and the register budget; the binding
// constraint is reported.
func ComputeOccupancy(d *Device, lc LaunchConfig) (Occupancy, error) {
	if err := lc.Validate(d); err != nil {
		return Occupancy{}, err
	}
	wpb := lc.WarpsPerBlock()

	byWarps := d.MaxWarpsPerSM / wpb
	byBlocks := d.MaxBlocksPerSM
	byShared := d.MaxBlocksPerSM
	if lc.SharedMemPerBlock > 0 {
		byShared = d.SharedMemPerSMKB * 1024 / lc.SharedMemPerBlock
	}
	byRegs := d.MaxBlocksPerSM
	if lc.RegsPerThread > 0 {
		regsPerBlock := lc.RegsPerThread * lc.ThreadsPerBlock()
		byRegs = d.RegFilePerSM / regsPerBlock
	}

	o := Occupancy{BlocksPerSM: byWarps, LimitedBy: "warps"}
	if byBlocks < o.BlocksPerSM {
		o.BlocksPerSM, o.LimitedBy = byBlocks, "blocks"
	}
	if byShared < o.BlocksPerSM {
		o.BlocksPerSM, o.LimitedBy = byShared, "shared"
	}
	if byRegs < o.BlocksPerSM {
		o.BlocksPerSM, o.LimitedBy = byRegs, "registers"
	}
	if o.BlocksPerSM < 1 {
		return Occupancy{}, fmt.Errorf("gpusim: launch %+v cannot fit a single block per SM (limit: %s)",
			lc, o.LimitedBy)
	}

	o.WarpsPerSM = o.BlocksPerSM * wpb
	o.Theoretical = float64(o.WarpsPerSM) / float64(d.MaxWarpsPerSM)

	// Tail utilization: with B blocks over S SMs in waves of
	// S·BlocksPerSM blocks, the final partial wave leaves SMs idle.
	blocks := lc.Blocks()
	perWave := d.SMs * o.BlocksPerSM
	fullWaves := blocks / perWave
	rem := blocks % perWave
	if rem == 0 {
		o.ActiveSMs = d.SMs
		o.TailUtilization = 1
	} else {
		active := (rem + o.BlocksPerSM - 1) / o.BlocksPerSM
		if active > d.SMs {
			active = d.SMs
		}
		o.ActiveSMs = active
		total := float64(fullWaves*perWave + rem)
		capacity := float64((fullWaves + 1) * perWave)
		o.TailUtilization = total / capacity
	}
	if blocks >= perWave {
		o.ActiveSMs = d.SMs
	}
	return o, nil
}

// AchievedOccupancy estimates the achieved_occupancy counter: the ratio of
// average active warps per active cycle to the SM's warp capacity. It
// discounts the theoretical occupancy by the grid-tail utilization and by a
// stall factor supplied by the timing model (fraction of cycles warps are
// unable to issue but still resident — resident warps count as active, so
// only the tail and partial last blocks reduce the counter).
func AchievedOccupancy(d *Device, lc LaunchConfig, o Occupancy) float64 {
	blocks := lc.Blocks()
	perWave := d.SMs * o.BlocksPerSM
	if blocks >= perWave {
		// Full waves dominate; the ragged final wave shaves a little.
		waves := float64(blocks) / float64(perWave)
		return o.Theoretical * weightFullWaves(waves)
	}
	// Partial single wave: fewer resident warps than theory assumes.
	residentBlocks := float64(blocks) / float64(d.SMs)
	if residentBlocks > float64(o.BlocksPerSM) {
		residentBlocks = float64(o.BlocksPerSM)
	}
	warps := residentBlocks * float64(lc.WarpsPerBlock())
	return warps / float64(d.MaxWarpsPerSM)
}

// weightFullWaves smooths the occupancy discount from ragged final waves:
// many waves → achieved ≈ theoretical; few waves → tail matters more.
func weightFullWaves(waves float64) float64 {
	return waves / (waves + 0.35)
}
