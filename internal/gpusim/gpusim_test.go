package gpusim

import (
	"strings"
	"testing"
	"testing/quick"
)

func gtx580(t *testing.T) *Device {
	t.Helper()
	d, err := LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func k20m(t *testing.T) *Device {
	t.Helper()
	d, err := LookupDevice("K20m")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLookupDevice(t *testing.T) {
	d := gtx580(t)
	if d.Arch != Fermi || d.SMs != 16 {
		t.Fatalf("GTX580 model wrong: %+v", d)
	}
	k := k20m(t)
	if k.Arch != Kepler || k.CoresPerSM != 192 {
		t.Fatalf("K20m model wrong: %+v", k)
	}
	if _, err := LookupDevice("RTX9090"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if !strings.Contains(Fermi.String(), "Fermi") || !strings.Contains(Kepler.String(), "Kepler") {
		t.Fatal("arch names wrong")
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	a, _ := LookupDevice("GTX580")
	a.SMs = 1
	b, _ := LookupDevice("GTX580")
	if b.SMs != 16 {
		t.Fatal("registry mutated through returned device")
	}
}

func TestHardwareMetricsTable2(t *testing.T) {
	// The paper's Table 2 values for GTX480 and K20m.
	gtx480, err := LookupDevice("GTX480")
	if err != nil {
		t.Fatal(err)
	}
	m := gtx480.HardwareMetrics()
	want := map[string]float64{"wsched": 2, "freq": 1.4, "smp": 15, "rco": 32, "mbw": 177.4, "l1c": 63, "l2c": 768}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("GTX480 %s = %v, want %v", k, m[k], v)
		}
	}
	km := k20m(t).HardwareMetrics()
	wantK := map[string]float64{"wsched": 4, "smp": 13, "rco": 192, "mbw": 208, "l1c": 255, "l2c": 1280}
	for k, v := range wantK {
		if km[k] != v {
			t.Fatalf("K20m %s = %v, want %v", k, km[k], v)
		}
	}
	if len(HardwareMetricNames()) != 7 {
		t.Fatal("Table 2 has 7 metrics")
	}
}

func TestOccupancyFullBlocks(t *testing.T) {
	d := gtx580(t)
	// 256-thread blocks, tiny footprint: warp-limited at 48/8 = 6 blocks.
	occ, err := ComputeOccupancy(d, LaunchConfig{
		GridDimX: 1024, GridDimY: 1, BlockDimX: 256, BlockDimY: 1,
		RegsPerThread: 10, SharedMemPerBlock: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 6 || occ.LimitedBy != "warps" {
		t.Fatalf("occupancy %+v", occ)
	}
	if occ.Theoretical != 1.0 {
		t.Fatalf("theoretical occupancy %v, want 1", occ.Theoretical)
	}
}

func TestOccupancySharedLimited(t *testing.T) {
	d := gtx580(t)
	occ, err := ComputeOccupancy(d, LaunchConfig{
		GridDimX: 100, GridDimY: 1, BlockDimX: 128, BlockDimY: 1,
		RegsPerThread: 10, SharedMemPerBlock: 24 * 1024, // 2 blocks fill 48 KB
	})
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 2 || occ.LimitedBy != "shared" {
		t.Fatalf("occupancy %+v", occ)
	}
}

func TestOccupancyRegisterLimited(t *testing.T) {
	d := gtx580(t)
	occ, err := ComputeOccupancy(d, LaunchConfig{
		GridDimX: 100, GridDimY: 1, BlockDimX: 256, BlockDimY: 1,
		RegsPerThread: 63, SharedMemPerBlock: 256, // 63·256 ≈ 16k regs/block of 32k
	})
	if err != nil {
		t.Fatal(err)
	}
	if occ.LimitedBy != "registers" {
		t.Fatalf("limited by %s", occ.LimitedBy)
	}
}

func TestOccupancyTinyBlocks(t *testing.T) {
	// 16-thread NW blocks are block-slot limited: 8 blocks × 1 warp = 8/48.
	d := gtx580(t)
	occ, err := ComputeOccupancy(d, LaunchConfig{
		GridDimX: 64, GridDimY: 1, BlockDimX: 16, BlockDimY: 1,
		RegsPerThread: 24, SharedMemPerBlock: 2 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if occ.LimitedBy != "blocks" || occ.BlocksPerSM != 8 {
		t.Fatalf("occupancy %+v", occ)
	}
	if occ.Theoretical > 0.2 {
		t.Fatalf("tiny blocks should yield low occupancy, got %v", occ.Theoretical)
	}
}

func TestOccupancyValidation(t *testing.T) {
	d := gtx580(t)
	cases := []LaunchConfig{
		{GridDimX: 0, GridDimY: 1, BlockDimX: 32, BlockDimY: 1},
		{GridDimX: 1, GridDimY: 1, BlockDimX: 2048, BlockDimY: 1, RegsPerThread: 10},
		{GridDimX: 1, GridDimY: 1, BlockDimX: 32, BlockDimY: 1, SharedMemPerBlock: 1 << 20},
		{GridDimX: 1, GridDimY: 1, BlockDimX: 32, BlockDimY: 1, RegsPerThread: 500},
	}
	for i, lc := range cases {
		if _, err := ComputeOccupancy(d, lc); err == nil {
			t.Fatalf("case %d accepted: %+v", i, lc)
		}
	}
}

// Property: achieved occupancy is in (0, 1] for any valid launch.
func TestAchievedOccupancyRange(t *testing.T) {
	d := gtx580(t)
	f := func(blocks16 uint16, logThreads uint8) bool {
		blocks := int(blocks16)%4096 + 1
		threads := 32 << (logThreads % 6) // 32..1024
		lc := LaunchConfig{
			GridDimX: blocks, GridDimY: 1, BlockDimX: threads, BlockDimY: 1,
			RegsPerThread: 16, SharedMemPerBlock: 512,
		}
		occ, err := ComputeOccupancy(d, lc)
		if err != nil {
			return false
		}
		a := AchievedOccupancy(d, lc, occ)
		return a > 0 && a <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskOps(t *testing.T) {
	if FullMask().Count() != 32 {
		t.Fatal("full mask count")
	}
	if MaskFirstN(5).Count() != 5 || MaskFirstN(0) != 0 || MaskFirstN(99) != FullMask() {
		t.Fatal("MaskFirstN wrong")
	}
	m := MaskWhere(func(l int) bool { return l%2 == 0 })
	if m.Count() != 16 || !m.Active(0) || m.Active(1) {
		t.Fatal("MaskWhere wrong")
	}
}

func TestCoalesceSequential(t *testing.T) {
	// 32 consecutive 4-byte words = 128 bytes = one 128-byte line.
	var addrs [WarpSize]uint64
	for l := range addrs {
		addrs[l] = 0x1000 + uint64(4*l)
	}
	segs := coalesce(nil, FullMask(), &addrs, 4, 128)
	if len(segs) != 1 {
		t.Fatalf("sequential access touches %d lines, want 1", len(segs))
	}
	if got := coalesce(nil, FullMask(), &addrs, 4, 32); len(got) != 4 {
		t.Fatalf("sequential access touches %d 32B segments, want 4", len(got))
	}
}

func TestCoalesceStrided(t *testing.T) {
	// Stride of 128 bytes: every lane in its own line.
	var addrs [WarpSize]uint64
	for l := range addrs {
		addrs[l] = uint64(128 * l)
	}
	if got := coalesce(nil, FullMask(), &addrs, 4, 128); len(got) != 32 {
		t.Fatalf("strided access coalesced to %d lines", len(got))
	}
}

func TestCoalesceMaskAndStraddle(t *testing.T) {
	var addrs [WarpSize]uint64
	addrs[0] = 126 // 4-byte access straddling a 128-byte boundary
	segs := coalesce(nil, MaskFirstN(1), &addrs, 4, 128)
	if len(segs) != 2 {
		t.Fatalf("straddling access counted %d lines, want 2", len(segs))
	}
	if got := coalesce(nil, 0, &addrs, 4, 128); len(got) != 0 {
		t.Fatal("empty mask produced segments")
	}
}

func TestBankConflicts(t *testing.T) {
	// Sequential words: conflict-free.
	var offs [WarpSize]uint32
	for l := range offs {
		offs[l] = uint32(4 * l)
	}
	if d := bankConflictDegree(new(bankScratch), FullMask(), &offs, 32); d != 1 {
		t.Fatalf("sequential degree %d", d)
	}
	// Stride 2 words: 2-way conflicts (reduce1's pattern).
	for l := range offs {
		offs[l] = uint32(8 * l)
	}
	if d := bankConflictDegree(new(bankScratch), FullMask(), &offs, 32); d != 2 {
		t.Fatalf("stride-2 degree %d", d)
	}
	// Broadcast: all lanes read the same word — no conflict.
	for l := range offs {
		offs[l] = 64
	}
	if d := bankConflictDegree(new(bankScratch), FullMask(), &offs, 32); d != 1 {
		t.Fatalf("broadcast degree %d", d)
	}
	// Same bank, all different words: fully serialized.
	for l := range offs {
		offs[l] = uint32(128 * l) // word = 32·l → all bank 0
	}
	if d := bankConflictDegree(new(bankScratch), FullMask(), &offs, 32); d != 32 {
		t.Fatalf("pathological degree %d", d)
	}
}

func TestCacheLRU(t *testing.T) {
	c := newCache(1024, 128, 2) // 4 sets × 2 ways
	if c.access(0) {
		t.Fatal("cold miss reported as hit")
	}
	if !c.access(0) {
		t.Fatal("immediate re-access missed")
	}
	// Fill set 0 (lines 0, 4, 8 all map there): after touching 0 then
	// 512, line 0 is LRU; inserting 1024 must evict it and keep 512.
	c.access(0)
	c.access(512)
	c.access(1024)
	if !c.access(512) {
		t.Fatal("MRU-side line evicted")
	}
	if c.access(0) {
		t.Fatal("LRU line not evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c := newCache(1024, 128, 2)
	c.access(0)
	c.reset()
	if c.access(0) {
		t.Fatal("cache not cleared by reset")
	}
}
