package gpusim

import (
	"testing"
)

// countKernel returns a kernel that tallies per-warp invocations and
// exercises a barrier.
func countKernel(t *testing.T, perWarp func(w *Warp)) KernelFunc {
	t.Helper()
	return func(w *Warp) {
		perWarp(w)
	}
}

func TestLaunchRunsEveryWarp(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 4, GridDimY: 2, BlockDimX: 64, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 256}
	seen := make(map[[3]int]bool)
	res, err := sim.Launch(cfg, func(w *Warp) {
		bx, by := w.BlockIdx()
		key := [3]int{bx, by, w.WarpID()}
		if seen[key] {
			t.Errorf("warp %v executed twice", key)
		}
		seen[key] = true
		w.IntOps(FullMask(), 1)
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8*2 {
		t.Fatalf("executed %d warps, want 16", len(seen))
	}
	if res.SimulatedBlocks != 8 || res.TotalBlocks != 8 {
		t.Fatalf("blocks %d/%d", res.SimulatedBlocks, res.TotalBlocks)
	}
	if res.Counters.InstExecuted != 16 {
		t.Fatalf("InstExecuted %d, want 16", res.Counters.InstExecuted)
	}
}

func TestBarrierSemantics(t *testing.T) {
	// Producer/consumer across warps: warp 0 writes before the barrier,
	// all warps read after. Under correct barrier scheduling every read
	// observes the write.
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: 128, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	flagSlot := NewSlot()
	ok := true
	_, err := sim.Launch(cfg, func(w *Warp) {
		shared := w.SharedF32(flagSlot, 1)
		if w.WarpID() == 3 { // a late warp writes
			shared[0] = 42
		}
		w.Sync()
		if shared[0] != 42 {
			ok = false
		}
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a warp passed the barrier before the write")
	}
}

func TestMultipleBarriers(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 2, GridDimY: 1, BlockDimX: 96, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	res, err := sim.Launch(cfg, func(w *Warp) {
		for i := 0; i < 5; i++ {
			w.Sync()
		}
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 blocks × 3 warps × 5 syncs.
	if res.Counters.SyncCount != 30 {
		t.Fatalf("SyncCount %d, want 30", res.Counters.SyncCount)
	}
}

func TestKernelPanicBecomesError(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: 64, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	_, err := sim.Launch(cfg, func(w *Warp) {
		if w.WarpID() == 1 {
			panic("kernel bug")
		}
		w.Sync() // warp 0 waits at a barrier warp 1 never reaches
	}, LaunchOptions{})
	if err == nil {
		t.Fatal("panicking kernel reported success")
	}
}

func TestBlockSamplingScalesCounters(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	cfg := LaunchConfig{GridDimX: 64, GridDimY: 1, BlockDimX: 32, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	kernel := func(w *Warp) { w.IntOps(FullMask(), 10) }

	full, err := NewSimulator(d).Launch(cfg, kernel, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := NewSimulator(d).Launch(cfg, kernel, LaunchOptions{MaxSimBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.SimulatedBlocks != 8 {
		t.Fatalf("simulated %d blocks", sampled.SimulatedBlocks)
	}
	// Uniform per-block work: scaling must reproduce the full count.
	if sampled.Counters.InstExecuted != full.Counters.InstExecuted {
		t.Fatalf("scaled InstExecuted %d, full %d",
			sampled.Counters.InstExecuted, full.Counters.InstExecuted)
	}
}

func TestTimingMonotoneInWork(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	mk := func(ops int) KernelFunc {
		return func(w *Warp) { w.FloatOps(FullMask(), ops) }
	}
	cfg := LaunchConfig{GridDimX: 32, GridDimY: 1, BlockDimX: 128, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	small, err := sim.Launch(cfg, mk(10), LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := sim.Launch(cfg, mk(1000), LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if big.TimeMS <= small.TimeMS {
		t.Fatalf("100x work not slower: %v vs %v", big.TimeMS, small.TimeMS)
	}
}

func TestFermiVsKeplerLoadPath(t *testing.T) {
	// The same strided load must hit L1 counters on Fermi and bypass
	// them on Kepler — the paper's §7 counter-evolution issue.
	load := func(w *Warp) {
		var addrs [WarpSize]uint64
		for l := range addrs {
			addrs[l] = uint64(4 * l)
		}
		w.GlobalLoad(FullMask(), &addrs, 4)
	}
	cfg := LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: 32, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}

	fermi, _ := LookupDevice("GTX580")
	rf, err := NewSimulator(fermi).Launch(cfg, load, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Counters.L1GlobalLoadMiss != 1 {
		t.Fatalf("Fermi L1 misses %d, want 1", rf.Counters.L1GlobalLoadMiss)
	}
	if rf.Counters.L2ReadTransactions != 4 {
		t.Fatalf("Fermi L2 reads %d, want 4 (one 128B line)", rf.Counters.L2ReadTransactions)
	}

	kepler, _ := LookupDevice("K20m")
	rk, err := NewSimulator(kepler).Launch(cfg, load, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rk.Counters.L1GlobalLoadMiss != 0 || rk.Counters.L1GlobalLoadHit != 0 {
		t.Fatal("Kepler should not touch L1 global-load counters")
	}
	if rk.Counters.L2ReadTransactions != 4 {
		t.Fatalf("Kepler L2 reads %d, want 4", rk.Counters.L2ReadTransactions)
	}
}

func TestSharedConflictReplaysCounted(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: 32, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 1024}
	res, err := sim.Launch(cfg, func(w *Warp) {
		var offs [WarpSize]uint32
		for l := range offs {
			offs[l] = uint32(8 * l) // stride-2 words → 2-way conflict
		}
		w.SharedLoad(FullMask(), &offs)
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SharedLoadReplay != 1 {
		t.Fatalf("SharedLoadReplay %d, want 1", res.Counters.SharedLoadReplay)
	}
	if res.Counters.InstIssued != res.Counters.InstExecuted+1 {
		t.Fatal("replay not reflected in InstIssued")
	}
}

func TestDivergentBranchCounted(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: 32, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	res, err := sim.Launch(cfg, func(w *Warp) {
		w.Branch(FullMask(), MaskFirstN(16)) // half the warp diverges
		w.Branch(FullMask(), FullMask())     // uniform: no divergence
		w.Branch(FullMask(), 0)              // nobody takes it: no divergence
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Branch != 3 || res.Counters.DivergentBranch != 1 {
		t.Fatalf("branch=%d divergent=%d", res.Counters.Branch, res.Counters.DivergentBranch)
	}
}

func TestGlobalStoreTransactions(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: 32, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	res, err := sim.Launch(cfg, func(w *Warp) {
		var addrs [WarpSize]uint64
		for l := range addrs {
			addrs[l] = uint64(4 * l) // one 128B line
		}
		w.GlobalStore(FullMask(), &addrs, 4)
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.GlobalStoreTransaction != 1 {
		t.Fatalf("store transactions %d, want 1", res.Counters.GlobalStoreTransaction)
	}
	if res.Counters.L2WriteTransactions != 4 {
		t.Fatalf("L2 writes %d, want 4", res.Counters.L2WriteTransactions)
	}
	if res.Counters.GstRequest != 1 || res.Counters.RequestedGstBytes != 128 {
		t.Fatal("store request accounting wrong")
	}
}

func TestValidMaskPartialWarp(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	// 48 threads: warp 0 full, warp 1 half.
	cfg := LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: 48, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	counts := map[int]int{}
	_, err := sim.Launch(cfg, func(w *Warp) {
		counts[w.WarpID()] = w.ValidMask().Count()
	}, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 32 || counts[1] != 16 {
		t.Fatalf("valid masks %v", counts)
	}
}

func TestCountersAddAndScale(t *testing.T) {
	a := Counters{InstExecuted: 10, GldRequest: 4, DRAMReadBytes: 100, SharedLoadReplay: 2}
	b := Counters{InstExecuted: 5, GldRequest: 1, DRAMReadBytes: 28, SharedStoreReplay: 3}
	a.Add(&b)
	if a.InstExecuted != 15 || a.GldRequest != 5 || a.DRAMReadBytes != 128 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.TotalReplays() != 5 {
		t.Fatalf("TotalReplays %d", a.TotalReplays())
	}
	a.Scale(2)
	if a.InstExecuted != 30 || a.DRAMReadBytes != 256 {
		t.Fatalf("Scale wrong: %+v", a)
	}
}

func TestLaunchResultString(t *testing.T) {
	d, _ := LookupDevice("GTX580")
	sim := NewSimulator(d)
	cfg := LaunchConfig{GridDimX: 1, GridDimY: 1, BlockDimX: 32, BlockDimY: 1, RegsPerThread: 8, SharedMemPerBlock: 64}
	res, err := sim.Launch(cfg, func(w *Warp) { w.IntOps(FullMask(), 1) }, LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" || res.Bottleneck == "" {
		t.Fatal("empty result summary")
	}
}
