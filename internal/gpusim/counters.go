package gpusim

// Counters accumulates the raw hardware events the machine model observes
// during kernel execution. They are the inputs from which the profiler
// derives the nvprof-style metrics of the paper's Table 1.
//
// All fields are totals over the simulated (possibly sampled) blocks;
// the launcher scales them to the full grid before deriving metrics.
type Counters struct {
	// Warp-level instruction counts. InstExecuted excludes replays;
	// InstIssued includes them (the paper's serialization signal:
	// inst_issued significantly larger than inst_executed).
	InstExecuted uint64
	InstIssued   uint64

	// ThreadInstExecuted counts thread-level instructions (active lanes
	// summed per warp instruction); with InstExecuted it yields
	// warp_execution_efficiency.
	ThreadInstExecuted uint64

	// Global memory requests: one per warp load/store instruction.
	GldRequest uint64
	GstRequest uint64

	// Requested bytes (what the kernel asked for, before coalescing).
	RequestedGldBytes uint64
	RequestedGstBytes uint64

	// Global load transactions at L1 granularity (Fermi 128 B lines) and
	// their cache outcomes. On Kepler global loads bypass L1 and these
	// count 32 B L2 transactions instead (hits stay zero).
	L1GlobalLoadHit  uint64
	L1GlobalLoadMiss uint64

	// GlobalStoreTransaction counts store transactions (up to 128 B each).
	GlobalStoreTransaction uint64

	// L2 transactions are 32-byte segments.
	L2ReadTransactions  uint64
	L2WriteTransactions uint64

	// DRAM traffic in bytes (L2 misses, both directions).
	DRAMReadBytes  uint64
	DRAMWriteBytes uint64

	// Shared memory: instructions (per warp) and conflict replays.
	SharedLoad        uint64
	SharedStore       uint64
	SharedLoadReplay  uint64
	SharedStoreReplay uint64

	// Memory-replay events from uncoalesced global accesses (each extra
	// transaction beyond the first replays the instruction on Fermi).
	GlobalReplay uint64

	// Control flow.
	Branch          uint64
	DivergentBranch uint64

	// Functional-unit thread-level op counts for utilization metrics.
	IntThreadOps     uint64
	FloatThreadOps   uint64
	SpecialThreadOps uint64
	LdstThreadOps    uint64

	// Atomic operations: per-warp instruction counts and the extra
	// serialization passes caused by same-address contention.
	// GlobalAtomicSerial counts thread-level global updates beyond the
	// first per address per instruction — work the L2 must apply one at
	// a time, device-wide.
	GlobalAtomicOps    uint64
	SharedAtomicOps    uint64
	AtomicReplays      uint64
	GlobalAtomicSerial uint64

	// Barriers executed (per warp).
	SyncCount uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.InstExecuted += other.InstExecuted
	c.InstIssued += other.InstIssued
	c.ThreadInstExecuted += other.ThreadInstExecuted
	c.GldRequest += other.GldRequest
	c.GstRequest += other.GstRequest
	c.RequestedGldBytes += other.RequestedGldBytes
	c.RequestedGstBytes += other.RequestedGstBytes
	c.L1GlobalLoadHit += other.L1GlobalLoadHit
	c.L1GlobalLoadMiss += other.L1GlobalLoadMiss
	c.GlobalStoreTransaction += other.GlobalStoreTransaction
	c.L2ReadTransactions += other.L2ReadTransactions
	c.L2WriteTransactions += other.L2WriteTransactions
	c.DRAMReadBytes += other.DRAMReadBytes
	c.DRAMWriteBytes += other.DRAMWriteBytes
	c.SharedLoad += other.SharedLoad
	c.SharedStore += other.SharedStore
	c.SharedLoadReplay += other.SharedLoadReplay
	c.SharedStoreReplay += other.SharedStoreReplay
	c.GlobalReplay += other.GlobalReplay
	c.GlobalAtomicOps += other.GlobalAtomicOps
	c.SharedAtomicOps += other.SharedAtomicOps
	c.AtomicReplays += other.AtomicReplays
	c.GlobalAtomicSerial += other.GlobalAtomicSerial
	c.Branch += other.Branch
	c.DivergentBranch += other.DivergentBranch
	c.IntThreadOps += other.IntThreadOps
	c.FloatThreadOps += other.FloatThreadOps
	c.SpecialThreadOps += other.SpecialThreadOps
	c.LdstThreadOps += other.LdstThreadOps
	c.SyncCount += other.SyncCount
}

// Scale multiplies every event count by f (used to extrapolate sampled
// blocks to the full grid). Counts are rounded to the nearest integer.
func (c *Counters) Scale(f float64) {
	s := func(v uint64) uint64 { return uint64(float64(v)*f + 0.5) }
	c.InstExecuted = s(c.InstExecuted)
	c.InstIssued = s(c.InstIssued)
	c.ThreadInstExecuted = s(c.ThreadInstExecuted)
	c.GldRequest = s(c.GldRequest)
	c.GstRequest = s(c.GstRequest)
	c.RequestedGldBytes = s(c.RequestedGldBytes)
	c.RequestedGstBytes = s(c.RequestedGstBytes)
	c.L1GlobalLoadHit = s(c.L1GlobalLoadHit)
	c.L1GlobalLoadMiss = s(c.L1GlobalLoadMiss)
	c.GlobalStoreTransaction = s(c.GlobalStoreTransaction)
	c.L2ReadTransactions = s(c.L2ReadTransactions)
	c.L2WriteTransactions = s(c.L2WriteTransactions)
	c.DRAMReadBytes = s(c.DRAMReadBytes)
	c.DRAMWriteBytes = s(c.DRAMWriteBytes)
	c.SharedLoad = s(c.SharedLoad)
	c.SharedStore = s(c.SharedStore)
	c.SharedLoadReplay = s(c.SharedLoadReplay)
	c.SharedStoreReplay = s(c.SharedStoreReplay)
	c.GlobalReplay = s(c.GlobalReplay)
	c.GlobalAtomicOps = s(c.GlobalAtomicOps)
	c.SharedAtomicOps = s(c.SharedAtomicOps)
	c.AtomicReplays = s(c.AtomicReplays)
	c.GlobalAtomicSerial = s(c.GlobalAtomicSerial)
	c.Branch = s(c.Branch)
	c.DivergentBranch = s(c.DivergentBranch)
	c.IntThreadOps = s(c.IntThreadOps)
	c.FloatThreadOps = s(c.FloatThreadOps)
	c.SpecialThreadOps = s(c.SpecialThreadOps)
	c.LdstThreadOps = s(c.LdstThreadOps)
	c.SyncCount = s(c.SyncCount)
}

// TotalReplays returns all instruction replays (shared-memory conflicts
// plus coalescing replays), the events behind inst_replay_overhead.
func (c *Counters) TotalReplays() uint64 {
	return c.SharedLoadReplay + c.SharedStoreReplay + c.GlobalReplay + c.AtomicReplays
}
