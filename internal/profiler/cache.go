package profiler

import (
	"encoding/json"
	"runtime"

	"blackforest/internal/gpusim"
	"blackforest/internal/runcache"
)

// profileCacheVersion salts every run key with the profiler's own result
// semantics. Bump it whenever the Profile schema or the way metrics are
// derived changes, so stale cache entries from older binaries can never
// be mistaken for current results. (Simulator-model changes are covered
// separately by gpusim.ModelVersion.)
const profileCacheVersion = "profile-v3"

// NewRunCache builds a content-addressed cache of profiles, keyed by
// RunKey and serialized as JSON (Go's float64 JSON encoding is
// shortest-exact, so disk round trips are bit-identical). dir "" keeps
// the cache memory-only; maxMem bounds the in-memory LRU layer
// (0 = runcache.DefaultMaxMemEntries).
func NewRunCache(dir string, maxMem int) (*runcache.Cache[*Profile], error) {
	return runcache.New(runcache.Config{Dir: dir, MaxMemEntries: maxMem},
		func(p *Profile) ([]byte, error) { return json.Marshal(p) },
		func(b []byte) (*Profile, error) {
			var p Profile
			if err := json.Unmarshal(b, &p); err != nil {
				return nil, err
			}
			return &p, nil
		})
}

// RunKey derives the content address of one profiled run: a SHA-256 over
// everything the resulting Profile is a pure function of — the simulator
// and profiler version salts, the device model, every profiling option
// that shapes the result (simulated-block cap, noise level, noise seed,
// fault profile, retry budget), and the workload identity (name, sorted
// characteristics, input seed). Two runs share a key if and only if they
// are guaranteed to produce bit-identical profiles, so a cache hit can
// substitute for a simulation anywhere — across experiments, processes,
// and machines.
func (p *Profiler) RunKey(w Workload) runcache.Key {
	h := runcache.NewHasher()
	h.String("blackforest/run")
	h.String(gpusim.ModelVersion)
	h.String(profileCacheVersion)
	h.String(p.dev.Name)
	h.Int(p.opt.MaxSimBlocks)
	h.Float64(p.opt.NoiseSigma)
	h.Uint64(p.opt.Seed)
	h.Int(p.opt.Retries)
	h.String(p.opt.Faults.Config().String())
	h.String(w.Name())
	chars := w.Characteristics()
	for _, k := range sortedKeys(chars) {
		h.String(k)
		h.Float64(chars[k])
	}
	if s, ok := w.(InputSeeded); ok {
		h.Uint64(1) // presence marker: seeded and unseeded never collide
		h.Uint64(s.InputSeed())
	}
	return h.Sum()
}

// Gate is a shared worker-pool semaphore: every profiling run acquires a
// slot for the duration of its simulation. Handing the same Gate to
// several concurrent collections drains all their runs through one
// global pool — the machine stays saturated across experiments instead
// of each collection rationing its own workers. Cache lookups and
// coalesced waits do not hold a slot; only real simulation work does.
//
// Slots carry stable ids 0..n-1, so a holder knows which of the n workers
// it is — the tracer uses the id as the span's lane, which is what makes
// scheduler occupancy visible as one timeline per worker.
type Gate chan int

// NewGate builds a gate admitting n concurrent runs (n <= 0 selects
// runtime.NumCPU()).
func NewGate(n int) Gate {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	g := make(Gate, n)
	for i := 0; i < n; i++ {
		g <- i
	}
	return g
}

// Size returns the number of slots.
func (g Gate) Size() int { return cap(g) }

func (g Gate) enter() int     { return <-g }
func (g Gate) leave(slot int) { g <- slot }
