package profiler

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"blackforest/internal/gpusim"
)

// fakeWorkload is a minimal Workload for profiler tests.
type fakeWorkload struct {
	name      string
	launches  int
	ops       int
	size      float64
	inputSeed uint64
}

func (f *fakeWorkload) Name() string { return f.name }

func (f *fakeWorkload) Characteristics() map[string]float64 {
	return map[string]float64{"size": f.size}
}

func (f *fakeWorkload) InputSeed() uint64 { return f.inputSeed }

func (f *fakeWorkload) Plan(dev *gpusim.Device) ([]Launch, error) {
	var out []Launch
	for i := 0; i < f.launches; i++ {
		out = append(out, Launch{
			Label: f.name,
			Config: gpusim.LaunchConfig{
				GridDimX: 8, GridDimY: 1, BlockDimX: 64, BlockDimY: 1,
				RegsPerThread: 8, SharedMemPerBlock: 128,
			},
			Kernel: func(w *gpusim.Warp) {
				w.FloatOps(gpusim.FullMask(), f.ops)
				var addrs [gpusim.WarpSize]uint64
				for l := range addrs {
					addrs[l] = uint64(4 * l)
				}
				w.GlobalLoad(gpusim.FullMask(), &addrs, 4)
			},
		})
	}
	return out, nil
}

func device(t *testing.T) *gpusim.Device {
	t.Helper()
	d, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunProducesMetrics(t *testing.T) {
	p := New(device(t), Options{NoiseSigma: -1})
	prof, err := p.Run(&fakeWorkload{name: "fake", launches: 3, ops: 100, size: 42})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Launches != 3 || prof.Workload != "fake" || prof.Device != "GTX580" {
		t.Fatalf("profile header wrong: %+v", prof)
	}
	if prof.TimeMS <= 0 {
		t.Fatal("non-positive time")
	}
	if prof.Characteristics["size"] != 42 {
		t.Fatal("characteristics not propagated")
	}
	if prof.Metrics["inst_executed"] <= 0 {
		t.Fatal("no instructions derived")
	}
	if prof.DominantBottleneck() == "" {
		t.Fatal("no bottleneck recorded")
	}
	if len(prof.MetricNames()) < 20 {
		t.Fatalf("only %d metrics derived", len(prof.MetricNames()))
	}
}

func TestNoiseReproducibleAndBounded(t *testing.T) {
	mk := func(seed uint64) *Profile {
		p := New(device(t), Options{Seed: seed})
		prof, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: 50, size: 1})
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	a, b := mk(5), mk(5)
	if a.TimeMS != b.TimeMS {
		t.Fatal("same seed produced different measured times")
	}
	c := mk(6)
	if a.TimeMS == c.TimeMS {
		t.Fatal("different seeds produced identical noise")
	}
	// Noise is small and multiplicative.
	rel := math.Abs(a.TimeMS-a.ModelTimeMS) / a.ModelTimeMS
	if rel > 0.2 {
		t.Fatalf("noise too large: %v", rel)
	}
}

// trackedWorkload wraps fakeWorkload with Release accounting and an
// optional planning failure, mirroring real workloads (NW) that allocate
// in Plan and must be released even when the run errors.
type trackedWorkload struct {
	fakeWorkload
	failPlan bool
	released int
}

func (w *trackedWorkload) Plan(dev *gpusim.Device) ([]Launch, error) {
	if w.failPlan {
		return nil, errors.New("injected plan failure")
	}
	return w.fakeWorkload.Plan(dev)
}

func (w *trackedWorkload) Release() { w.released++ }

func TestNoiseOrderIndependent(t *testing.T) {
	// A profile must not depend on which runs preceded it: b profiled
	// after a equals b profiled alone on a fresh profiler.
	mkA := func() *fakeWorkload { return &fakeWorkload{name: "a", launches: 1, ops: 30, size: 1} }
	mkB := func() *fakeWorkload { return &fakeWorkload{name: "b", launches: 2, ops: 70, size: 2} }
	p := New(device(t), Options{Seed: 9})
	if _, err := p.Run(mkA()); err != nil {
		t.Fatal(err)
	}
	after, err := p.Run(mkB())
	if err != nil {
		t.Fatal(err)
	}
	alone, err := New(device(t), Options{Seed: 9}).Run(mkB())
	if err != nil {
		t.Fatal(err)
	}
	if after.TimeMS != alone.TimeMS || after.PowerW != alone.PowerW {
		t.Fatalf("profile depends on sweep position: after=%v/%v alone=%v/%v",
			after.TimeMS, after.PowerW, alone.TimeMS, alone.PowerW)
	}
}

func TestInputSeedChangesNoise(t *testing.T) {
	// Two runs identical except for the input seed model repeated sweeps
	// with fresh data: same modeled time, independent noise draws.
	p := New(device(t), Options{Seed: 3})
	a, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: 40, size: 8, inputSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: 40, size: 8, inputSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.ModelTimeMS != b.ModelTimeMS {
		t.Fatal("input seed changed the modeled time")
	}
	if a.TimeMS == b.TimeMS {
		t.Fatal("distinct input seeds drew identical noise")
	}
}

func TestAveragePowerGuard(t *testing.T) {
	if got := averagePower(10, 2); got != 5 {
		t.Fatalf("averagePower(10, 2) = %v, want 5", got)
	}
	for _, tc := range []struct {
		energy, time float64
	}{
		{10, 0},                   // zero-time run: would divide to +Inf
		{0, 0},                    // 0/0: NaN
		{math.Inf(1), 2},          // degenerate energy
		{math.NaN(), 1},           // NaN propagates
		{10, -1},                  // negative time is as degenerate as zero
		{math.MaxFloat64, 1e-310}, // overflow to +Inf
	} {
		if got := averagePower(tc.energy, tc.time); got != 0 {
			t.Fatalf("averagePower(%v, %v) = %v, want 0", tc.energy, tc.time, got)
		}
	}
}

// runAllWorkloads builds a deterministic mixed batch for RunAll tests.
func runAllWorkloads() []Workload {
	var runs []Workload
	for i := 0; i < 9; i++ {
		runs = append(runs, &fakeWorkload{
			name:      "w" + string(rune('a'+i%3)),
			launches:  1 + i%3,
			ops:       20 + 10*i,
			size:      float64(1 + i),
			inputSeed: uint64(i),
		})
	}
	return runs
}

func TestRunAllMatchesSequential(t *testing.T) {
	p := New(device(t), Options{Seed: 11})
	var want []*Profile
	for _, w := range runAllWorkloads() {
		prof, err := p.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, prof)
	}
	for _, workers := range []int{0, 1, 4, 32} {
		got, err := p.RunAll(runAllWorkloads(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d profiles, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d: profile %d differs from sequential Run", workers, i)
			}
		}
	}
}

func TestRunAllOrderIndependent(t *testing.T) {
	p := New(device(t), Options{Seed: 11})
	forward, err := p.RunAll(runAllWorkloads(), 4)
	if err != nil {
		t.Fatal(err)
	}
	runs := runAllWorkloads()
	for i, j := 0, len(runs)-1; i < j; i, j = i+1, j-1 {
		runs[i], runs[j] = runs[j], runs[i]
	}
	reversed, err := p.RunAll(runs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range forward {
		if !reflect.DeepEqual(forward[i], reversed[len(reversed)-1-i]) {
			t.Fatalf("profile %d changed under input permutation", i)
		}
	}
}

func TestRunAllReleasesEveryWorkloadAndFirstErrorWins(t *testing.T) {
	mk := func(name string, fail bool) *trackedWorkload {
		return &trackedWorkload{
			fakeWorkload: fakeWorkload{name: name, launches: 1, ops: 20, size: 1},
			failPlan:     fail,
		}
	}
	runs := []*trackedWorkload{
		mk("ok0", false), mk("bad1", true), mk("ok2", false), mk("bad3", true),
	}
	var asWorkloads []Workload
	for _, w := range runs {
		asWorkloads = append(asWorkloads, w)
	}
	p := New(device(t), Options{Seed: 1})
	_, err := p.RunAll(asWorkloads, 2)
	if err == nil {
		t.Fatal("failing run accepted")
	}
	// The earliest failing run in input order is reported, regardless of
	// goroutine completion order.
	if !strings.Contains(err.Error(), "run 1 (bad1)") {
		t.Fatalf("error %q does not name the first failing run", err)
	}
	// Every workload — including both failing ones — was released once.
	for i, w := range runs {
		if w.released != 1 {
			t.Fatalf("workload %d released %d times, want 1", i, w.released)
		}
	}
}

func TestNoNoiseWhenDisabled(t *testing.T) {
	p := New(device(t), Options{NoiseSigma: -1})
	prof, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: 50, size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.TimeMS != prof.ModelTimeMS {
		t.Fatal("noise applied despite NoiseSigma < 0")
	}
}

func TestRunEmptyPlan(t *testing.T) {
	p := New(device(t), Options{})
	if _, err := p.Run(&fakeWorkload{name: "empty", launches: 0}); err == nil {
		t.Fatal("zero-launch workload accepted")
	}
}

func TestToFrame(t *testing.T) {
	p := New(device(t), Options{NoiseSigma: -1})
	var profiles []*Profile
	for _, size := range []float64{1, 2, 3} {
		prof, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: int(size * 10), size: size})
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, prof)
	}
	frame, err := ToFrame(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if frame.NumRows() != 3 {
		t.Fatalf("frame rows %d", frame.NumRows())
	}
	if !frame.Has("time_ms") || !frame.Has("size") || !frame.Has("inst_executed") {
		t.Fatalf("frame schema missing columns: %v", frame.Names())
	}
	if _, err := ToFrame(nil); err == nil {
		t.Fatal("empty profile list accepted")
	}
}

func TestToFrameRejectsMixedDevices(t *testing.T) {
	pa := New(device(t), Options{NoiseSigma: -1})
	k, err := gpusim.LookupDevice("K20m")
	if err != nil {
		t.Fatal(err)
	}
	pb := New(k, Options{NoiseSigma: -1})
	a, err := pa.Run(&fakeWorkload{name: "fake", launches: 1, ops: 10, size: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pb.Run(&fakeWorkload{name: "fake", launches: 1, ops: 10, size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToFrame([]*Profile{a, b}); err == nil {
		t.Fatal("mixed-device frame accepted")
	}
}

func TestWriteNvprofCSV(t *testing.T) {
	p := New(device(t), Options{NoiseSigma: -1})
	prof, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: 10, size: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := prof.WriteNvprofCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "==PROF== device,GTX580") {
		t.Fatal("CSV header missing")
	}
	if !strings.Contains(out, "inst_executed,") {
		t.Fatal("CSV metrics missing")
	}
}
