package profiler

import (
	"math"
	"strings"
	"testing"

	"blackforest/internal/gpusim"
)

// fakeWorkload is a minimal Workload for profiler tests.
type fakeWorkload struct {
	name     string
	launches int
	ops      int
	size     float64
}

func (f *fakeWorkload) Name() string { return f.name }

func (f *fakeWorkload) Characteristics() map[string]float64 {
	return map[string]float64{"size": f.size}
}

func (f *fakeWorkload) Plan(dev *gpusim.Device) ([]Launch, error) {
	var out []Launch
	for i := 0; i < f.launches; i++ {
		out = append(out, Launch{
			Label: f.name,
			Config: gpusim.LaunchConfig{
				GridDimX: 8, GridDimY: 1, BlockDimX: 64, BlockDimY: 1,
				RegsPerThread: 8, SharedMemPerBlock: 128,
			},
			Kernel: func(w *gpusim.Warp) {
				w.FloatOps(gpusim.FullMask(), f.ops)
				var addrs [gpusim.WarpSize]uint64
				for l := range addrs {
					addrs[l] = uint64(4 * l)
				}
				w.GlobalLoad(gpusim.FullMask(), &addrs, 4)
			},
		})
	}
	return out, nil
}

func device(t *testing.T) *gpusim.Device {
	t.Helper()
	d, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunProducesMetrics(t *testing.T) {
	p := New(device(t), Options{NoiseSigma: -1})
	prof, err := p.Run(&fakeWorkload{name: "fake", launches: 3, ops: 100, size: 42})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Launches != 3 || prof.Workload != "fake" || prof.Device != "GTX580" {
		t.Fatalf("profile header wrong: %+v", prof)
	}
	if prof.TimeMS <= 0 {
		t.Fatal("non-positive time")
	}
	if prof.Characteristics["size"] != 42 {
		t.Fatal("characteristics not propagated")
	}
	if prof.Metrics["inst_executed"] <= 0 {
		t.Fatal("no instructions derived")
	}
	if prof.DominantBottleneck() == "" {
		t.Fatal("no bottleneck recorded")
	}
	if len(prof.MetricNames()) < 20 {
		t.Fatalf("only %d metrics derived", len(prof.MetricNames()))
	}
}

func TestNoiseReproducibleAndBounded(t *testing.T) {
	mk := func(seed uint64) *Profile {
		p := New(device(t), Options{Seed: seed})
		prof, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: 50, size: 1})
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	a, b := mk(5), mk(5)
	if a.TimeMS != b.TimeMS {
		t.Fatal("same seed produced different measured times")
	}
	c := mk(6)
	if a.TimeMS == c.TimeMS {
		t.Fatal("different seeds produced identical noise")
	}
	// Noise is small and multiplicative.
	rel := math.Abs(a.TimeMS-a.ModelTimeMS) / a.ModelTimeMS
	if rel > 0.2 {
		t.Fatalf("noise too large: %v", rel)
	}
}

func TestNoNoiseWhenDisabled(t *testing.T) {
	p := New(device(t), Options{NoiseSigma: -1})
	prof, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: 50, size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.TimeMS != prof.ModelTimeMS {
		t.Fatal("noise applied despite NoiseSigma < 0")
	}
}

func TestRunEmptyPlan(t *testing.T) {
	p := New(device(t), Options{})
	if _, err := p.Run(&fakeWorkload{name: "empty", launches: 0}); err == nil {
		t.Fatal("zero-launch workload accepted")
	}
}

func TestToFrame(t *testing.T) {
	p := New(device(t), Options{NoiseSigma: -1})
	var profiles []*Profile
	for _, size := range []float64{1, 2, 3} {
		prof, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: int(size * 10), size: size})
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, prof)
	}
	frame, err := ToFrame(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if frame.NumRows() != 3 {
		t.Fatalf("frame rows %d", frame.NumRows())
	}
	if !frame.Has("time_ms") || !frame.Has("size") || !frame.Has("inst_executed") {
		t.Fatalf("frame schema missing columns: %v", frame.Names())
	}
	if _, err := ToFrame(nil); err == nil {
		t.Fatal("empty profile list accepted")
	}
}

func TestToFrameRejectsMixedDevices(t *testing.T) {
	pa := New(device(t), Options{NoiseSigma: -1})
	k, err := gpusim.LookupDevice("K20m")
	if err != nil {
		t.Fatal(err)
	}
	pb := New(k, Options{NoiseSigma: -1})
	a, err := pa.Run(&fakeWorkload{name: "fake", launches: 1, ops: 10, size: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pb.Run(&fakeWorkload{name: "fake", launches: 1, ops: 10, size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToFrame([]*Profile{a, b}); err == nil {
		t.Fatal("mixed-device frame accepted")
	}
}

func TestWriteNvprofCSV(t *testing.T) {
	p := New(device(t), Options{NoiseSigma: -1})
	prof, err := p.Run(&fakeWorkload{name: "fake", launches: 1, ops: 10, size: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := prof.WriteNvprofCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "==PROF== device,GTX580") {
		t.Fatal("CSV header missing")
	}
	if !strings.Contains(out, "inst_executed,") {
		t.Fatal("CSV metrics missing")
	}
}
