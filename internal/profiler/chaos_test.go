package profiler

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"blackforest/internal/faults"
)

// chaosBatch builds a deterministic batch of fake workloads for fault
// tests (fresh values each call, so RunAll can be replayed).
func chaosBatch() []Workload {
	var runs []Workload
	for i := 0; i < 12; i++ {
		runs = append(runs, &fakeWorkload{
			name: "fake", launches: 1 + i%3, ops: 20 + 10*i, size: float64(i + 1),
		})
	}
	return runs
}

func TestChaosRunFailureDeterministic(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 21, RunFailure: 0.5})
	p := New(device(t), Options{Seed: 4, Faults: inj})
	failed := func() []bool {
		var out []bool
		for _, w := range chaosBatch() {
			_, err := p.Run(w)
			if err != nil && !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("unexpected non-injected error: %v", err)
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b := failed(), failed()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("failure pattern not reproducible: %v vs %v", a, b)
	}
	any := false
	for _, f := range a {
		any = any || f
	}
	if !any {
		t.Fatal("runfail=0.5 over 12 runs injected nothing")
	}
}

func TestChaosRetryRecoversAndMatchesFaultFree(t *testing.T) {
	clean, err := New(device(t), Options{Seed: 4}).RunAll(chaosBatch(), 4)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 21, RunFailure: 0.5})
	p := New(device(t), Options{Seed: 4, Faults: inj, Retries: 12})
	got, err := p.RunAll(chaosBatch(), 4)
	if err != nil {
		t.Fatalf("RunAll with retries did not recover: %v", err)
	}
	// A run that eventually succeeds is profiled identically to the
	// fault-free run: the attempt number enters only the failure draw.
	if !reflect.DeepEqual(clean, got) {
		t.Fatal("recovered profiles differ from fault-free profiles")
	}
}

func TestChaosRetriesExhausted(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 1, RunFailure: 1})
	p := New(device(t), Options{Seed: 4, Faults: inj, Retries: 3})
	_, err := p.RunAll(chaosBatch(), 2)
	if err == nil {
		t.Fatal("runfail=1 succeeded")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error does not wrap ErrInjected: %v", err)
	}
}

func TestChaosRetriesReleaseEveryAttempt(t *testing.T) {
	w := &trackedWorkload{fakeWorkload: fakeWorkload{name: "fail", launches: 1, ops: 20, size: 1}}
	inj := faults.New(faults.Config{Seed: 1, RunFailure: 1})
	p := New(device(t), Options{Seed: 4, Faults: inj, Retries: 2})
	if _, err := p.RunAll([]Workload{w}, 1); err == nil {
		t.Fatal("runfail=1 succeeded")
	}
	if w.released != 3 {
		t.Fatalf("released %d times, want 3 (one per attempt)", w.released)
	}
}

func TestChaosDropoutRecorded(t *testing.T) {
	clean, err := New(device(t), Options{Seed: 4}).Run(&fakeWorkload{name: "fake", launches: 2, ops: 50, size: 3})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 8, CounterDropout: 0.3})
	p := New(device(t), Options{Seed: 4, Faults: inj})
	prof, err := p.Run(&fakeWorkload{name: "fake", launches: 2, ops: 50, size: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Dropped) == 0 {
		t.Fatal("dropout=0.3 dropped nothing")
	}
	if !sort.StringsAreSorted(prof.Dropped) {
		t.Fatalf("Dropped not sorted: %v", prof.Dropped)
	}
	for _, name := range prof.Dropped {
		if _, ok := prof.Metrics[name]; ok {
			t.Fatalf("dropped metric %q still present", name)
		}
		if _, ok := clean.Metrics[name]; !ok {
			t.Fatalf("dropped metric %q was never collected", name)
		}
	}
	if len(prof.Metrics)+len(prof.Dropped) != len(clean.Metrics) {
		t.Fatalf("metrics %d + dropped %d != clean %d",
			len(prof.Metrics), len(prof.Dropped), len(clean.Metrics))
	}
	// Surviving metrics are bit-identical to the fault-free run.
	for name, v := range prof.Metrics {
		if clean.Metrics[name] != v {
			t.Fatalf("surviving metric %q changed: %v vs %v", name, v, clean.Metrics[name])
		}
	}
}

func TestChaosFaultsOffBitIdentical(t *testing.T) {
	base, err := New(device(t), Options{Seed: 4}).RunAll(chaosBatch(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// A disabled config yields a nil injector; threading it through must
	// not perturb anything.
	inj := faults.New(faults.Config{Seed: 999})
	got, err := New(device(t), Options{Seed: 4, Faults: inj, Retries: 5}).RunAll(chaosBatch(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatal("faults-off profiling differs from baseline")
	}
}
