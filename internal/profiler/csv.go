package profiler

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"blackforest/internal/dataset"
)

// ToFrame converts a batch of profiles into the modeling data frame: one
// row per profile with problem characteristics, counter metrics, and the
// response columns "time_ms" and "power_w". Profiles must share a device
// (and hence a metric vocabulary); a missing characteristic or metric is an
// error so schema bugs surface early.
func ToFrame(profiles []*Profile) (*dataset.Frame, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("profiler: no profiles to tabulate")
	}
	first := profiles[0]
	charNames := sortedKeys(first.Characteristics)
	metricNames := sortedKeys(first.Metrics)

	f := dataset.New()
	for _, p := range profiles {
		if p.Device != first.Device {
			return nil, fmt.Errorf("profiler: mixed devices %s and %s in one frame", first.Device, p.Device)
		}
		row := make(map[string]float64, len(charNames)+len(metricNames)+1)
		for _, n := range charNames {
			v, ok := p.Characteristics[n]
			if !ok {
				return nil, fmt.Errorf("profiler: profile missing characteristic %q", n)
			}
			row[n] = v
		}
		for _, n := range metricNames {
			v, ok := p.Metrics[n]
			if !ok {
				return nil, fmt.Errorf("profiler: profile missing metric %q", n)
			}
			row[n] = v
		}
		row["time_ms"] = p.TimeMS
		row["power_w"] = p.PowerW
		if err := f.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// WriteNvprofCSV writes the profile in an nvprof --csv like layout:
// one "metric,value" row per counter, preceded by identification rows.
func (pr *Profile) WriteNvprofCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "==PROF== device,%s\n==PROF== kernel,%s\n==PROF== time_ms,%s\n",
		pr.Device, pr.Workload, strconv.FormatFloat(pr.TimeMS, 'g', -1, 64)); err != nil {
		return err
	}
	for _, name := range pr.MetricNames() {
		if _, err := fmt.Fprintf(w, "%s,%s\n", name,
			strconv.FormatFloat(pr.Metrics[name], 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
