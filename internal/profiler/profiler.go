// Package profiler is BlackForest's nvprof stand-in: it runs a workload
// (a sequence of kernel launches) on a simulated device, aggregates the raw
// event counts across launches, derives the nvprof-style metrics, and
// reports them together with the measured execution time.
//
// Like a real profiler, it injects a small amount of multiplicative
// measurement noise into the reported time (seeded, reproducible), so the
// statistical pipeline downstream never sees an implausibly clean response.
package profiler

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"blackforest/internal/counters"
	"blackforest/internal/gpusim"
	"blackforest/internal/stats"
)

// Launch is one kernel launch of a workload.
type Launch struct {
	// Label names the kernel for reporting (e.g. "reduce2", "nw_kernel1").
	Label  string
	Config gpusim.LaunchConfig
	Kernel gpusim.KernelFunc
}

// Workload is a profilable application: it plans its kernel launches for a
// device and exposes the problem characteristics the paper injects as
// predictors (e.g. matrix size, sequence length).
type Workload interface {
	// Name identifies the workload (e.g. "matmul").
	Name() string
	// Plan returns the launch sequence. Functional state (input/output
	// buffers) is captured in the kernel closures.
	Plan(dev *gpusim.Device) ([]Launch, error)
	// Characteristics returns the problem parameters as named values.
	Characteristics() map[string]float64
}

// Options configures profiling.
type Options struct {
	// MaxSimBlocks caps detailed simulation per launch; 0 simulates all
	// blocks (needed for functional verification, slow for big grids).
	MaxSimBlocks int
	// NoiseSigma is the standard deviation of the lognormal measurement
	// noise applied to the run time. Negative disables noise; 0 selects
	// the default of 0.015 (≈1.5%).
	NoiseSigma float64
	// Seed drives the noise generator.
	Seed uint64
}

// Profile is the result of profiling one workload run: the paper's unit of
// observation (one row of the training data).
type Profile struct {
	Workload        string
	Device          string
	Characteristics map[string]float64
	// Metrics maps counter/metric names (per the device architecture) to
	// values aggregated over all launches.
	Metrics map[string]float64
	// TimeMS is the measured (noisy) total execution time — the response
	// variable of the paper's models.
	TimeMS float64
	// ModelTimeMS is the noise-free modeled time.
	ModelTimeMS float64
	// PowerW is the measured (noisy) average power draw over the run —
	// the alternative response variable of the paper's §7 extension.
	PowerW float64
	// EnergyMJ is the modeled total energy in millijoules.
	EnergyMJ float64
	// Launches is the number of kernel launches executed.
	Launches int
	// Bottlenecks counts launches per binding bottleneck term.
	Bottlenecks map[string]int
}

// Profiler profiles workloads on one device.
type Profiler struct {
	dev *gpusim.Device
	opt Options
	rng *stats.RNG
}

// New builds a profiler for the device.
func New(dev *gpusim.Device, opt Options) *Profiler {
	if opt.NoiseSigma == 0 {
		opt.NoiseSigma = 0.015
	}
	if opt.NoiseSigma < 0 {
		opt.NoiseSigma = 0
	}
	return &Profiler{dev: dev, opt: opt, rng: stats.NewRNG(opt.Seed ^ 0x70726f66)}
}

// Device returns the profiled device.
func (p *Profiler) Device() *gpusim.Device { return p.dev }

// Run profiles one workload run end to end.
func (p *Profiler) Run(w Workload) (*Profile, error) {
	launches, err := w.Plan(p.dev)
	if err != nil {
		return nil, fmt.Errorf("profiler: planning %s: %w", w.Name(), err)
	}
	if len(launches) == 0 {
		return nil, errors.New("profiler: workload planned zero launches")
	}

	sim := gpusim.NewSimulator(p.dev)
	var agg counters.Sample
	var occWeighted, smWeighted, energyMJ float64
	bottlenecks := make(map[string]int)
	for _, l := range launches {
		res, err := sim.Launch(l.Config, l.Kernel, gpusim.LaunchOptions{MaxSimBlocks: p.opt.MaxSimBlocks})
		if err != nil {
			return nil, fmt.Errorf("profiler: launching %s/%s: %w", w.Name(), l.Label, err)
		}
		agg.Raw.Add(&res.Counters)
		agg.Cycles += res.Cycles
		agg.TimeMS += res.TimeMS
		occWeighted += res.AchievedOccupancy * res.Cycles
		smWeighted += res.Occupancy.TailUtilization * res.Cycles
		energyMJ += res.EnergyMJ
		bottlenecks[res.Bottleneck]++
	}
	if agg.Cycles > 0 {
		agg.AchievedOccupancy = occWeighted / agg.Cycles
		agg.SMEfficiency = smWeighted / agg.Cycles
	}

	modelTime := agg.TimeMS
	measured := modelTime
	power := energyMJ / modelTime // mJ over ms = W
	if p.opt.NoiseSigma > 0 {
		measured *= math.Exp(p.opt.NoiseSigma * p.rng.NormFloat64())
		power *= math.Exp(p.opt.NoiseSigma * p.rng.NormFloat64())
	}
	agg.TimeMS = measured

	return &Profile{
		Workload:        w.Name(),
		Device:          p.dev.Name,
		Characteristics: w.Characteristics(),
		Metrics:         counters.Derive(p.dev, agg),
		TimeMS:          measured,
		ModelTimeMS:     modelTime,
		PowerW:          power,
		EnergyMJ:        energyMJ,
		Launches:        len(launches),
		Bottlenecks:     bottlenecks,
	}, nil
}

// MetricNames returns the profile's metric names, sorted.
func (pr *Profile) MetricNames() []string {
	names := make([]string, 0, len(pr.Metrics))
	for n := range pr.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DominantBottleneck returns the bottleneck term that bound the most
// launches.
func (pr *Profile) DominantBottleneck() string {
	best, bestN := "", -1
	keys := make([]string, 0, len(pr.Bottlenecks))
	for k := range pr.Bottlenecks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if pr.Bottlenecks[k] > bestN {
			best, bestN = k, pr.Bottlenecks[k]
		}
	}
	return best
}
