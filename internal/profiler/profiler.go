// Package profiler is BlackForest's nvprof stand-in: it runs a workload
// (a sequence of kernel launches) on a simulated device, aggregates the raw
// event counts across launches, derives the nvprof-style metrics, and
// reports them together with the measured execution time.
//
// Like a real profiler, it injects a small amount of multiplicative
// measurement noise into the reported time (seeded, reproducible), so the
// statistical pipeline downstream never sees an implausibly clean response.
// Each run's noise is a pure function of the profiler seed and the
// workload's identity — never of how many runs were profiled before it —
// so sweeps may be reordered or profiled concurrently without changing any
// profile.
package profiler

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"blackforest/internal/counters"
	"blackforest/internal/faults"
	"blackforest/internal/gpusim"
	"blackforest/internal/obs"
	"blackforest/internal/runcache"
	"blackforest/internal/stats"
)

// LaneCache is the trace lane for cache events (hits and coalesced waits),
// which never occupy a worker slot and so have no worker lane of their own.
const LaneCache = -1

// Launch is one kernel launch of a workload.
type Launch struct {
	// Label names the kernel for reporting (e.g. "reduce2", "nw_kernel1").
	Label  string
	Config gpusim.LaunchConfig
	Kernel gpusim.KernelFunc
}

// Workload is a profilable application: it plans its kernel launches for a
// device and exposes the problem characteristics the paper injects as
// predictors (e.g. matrix size, sequence length).
type Workload interface {
	// Name identifies the workload (e.g. "matmul").
	Name() string
	// Plan returns the launch sequence. Functional state (input/output
	// buffers) is captured in the kernel closures.
	Plan(dev *gpusim.Device) ([]Launch, error)
	// Characteristics returns the problem parameters as named values.
	Characteristics() map[string]float64
}

// Releaser is the optional interface of workloads that hold large per-run
// buffers (e.g. NW's O(n²) score matrix). RunAll releases every planned
// workload once its run finishes — error or not — so sweeps do not
// accumulate memory.
type Releaser interface{ Release() }

// InputSeeded is the optional interface of workloads whose input data is
// generated from a seed. The seed joins the noise-identity hash, so
// repeated runs at the same problem configuration (fresh inputs, same
// size) still draw independent measurement noise.
type InputSeeded interface{ InputSeed() uint64 }

// Options configures profiling.
type Options struct {
	// MaxSimBlocks caps detailed simulation per launch; 0 simulates all
	// blocks (needed for functional verification, slow for big grids).
	MaxSimBlocks int
	// NoiseSigma is the standard deviation of the lognormal measurement
	// noise applied to the run time. Negative disables noise; 0 selects
	// the default of 0.015 (≈1.5%).
	NoiseSigma float64
	// Seed drives the noise generator.
	Seed uint64
	// Faults optionally injects simulated collection failures (failed
	// runs, counter dropout). Decisions key on the same workload identity
	// as the measurement noise, so they are reproducible and independent
	// of sweep order or concurrency. Nil disables injection.
	Faults *faults.Injector
	// Retries is the number of additional attempts RunAll makes when a
	// run fails (0 = fail fast, matching historic behavior).
	Retries int
	// RetryBackoff is the base delay between attempts; attempt k sleeps
	// RetryBackoff << k. Zero retries immediately.
	RetryBackoff time.Duration
	// Cache optionally memoizes completed runs, content-addressed by
	// RunKey. A hit is bit-identical to a recompute; concurrent requests
	// for the same run share one simulation. Cached profiles are shared
	// between callers and must be treated as immutable. Nil disables
	// caching (bit-identical to historic behavior — trivially, since a
	// cold cache computes exactly what no cache computes).
	Cache *runcache.Cache[*Profile]
	// Gate optionally shares one simulation worker pool across
	// collections: when set, RunAll draws slots from it instead of
	// building a per-call pool, so concurrent sweeps (or whole experiment
	// suites) saturate the machine together without oversubscribing it.
	Gate Gate
	// Tracer optionally records run → attempt → simulate spans, one lane
	// per gate slot, plus cache-hit instants. Nil (the default) disables
	// tracing at zero cost; every profile is bit-identical either way.
	Tracer *obs.Tracer
}

// Profile is the result of profiling one workload run: the paper's unit of
// observation (one row of the training data).
type Profile struct {
	Workload        string
	Device          string
	Characteristics map[string]float64
	// Metrics maps counter/metric names (per the device architecture) to
	// values aggregated over all launches.
	Metrics map[string]float64
	// TimeMS is the measured (noisy) total execution time — the response
	// variable of the paper's models.
	TimeMS float64
	// ModelTimeMS is the noise-free modeled time.
	ModelTimeMS float64
	// PowerW is the measured (noisy) average power draw over the run —
	// the alternative response variable of the paper's §7 extension.
	PowerW float64
	// EnergyMJ is the modeled total energy in millijoules.
	EnergyMJ float64
	// Launches is the number of kernel launches executed.
	Launches int
	// Bottlenecks counts launches per binding bottleneck term.
	Bottlenecks map[string]int
	// Cycles is the modeled core-cycle total summed over all launches.
	Cycles float64
	// Breakdown attributes Cycles to stall/work categories, summed over
	// all launches; Breakdown.Total() equals Cycles exactly.
	Breakdown gpusim.BottleneckBreakdown
	// ComputeOps is the total thread-level arithmetic work (int + float +
	// weighted special ops, the same mix the timing model's alu term
	// charges) summed over all launches. With DRAMBytes it fixes the
	// run's arithmetic intensity — its position on the device roofline.
	ComputeOps float64
	// DRAMBytes is the total DRAM traffic (reads + writes) over all
	// launches.
	DRAMBytes float64
	// Dropped lists counter names lost to injected dropout for this run,
	// sorted. Empty in normal operation; downstream frame assembly uses
	// it to decide between dropping and imputing incomplete columns.
	Dropped []string
}

// Profiler profiles workloads on one device. It is immutable after New and
// safe for concurrent use by multiple goroutines: every Run builds its own
// simulator, and measurement noise is drawn from a per-run generator seeded
// by the workload's identity rather than from a shared stream.
type Profiler struct {
	dev *gpusim.Device
	opt Options
}

// New builds a profiler for the device.
func New(dev *gpusim.Device, opt Options) *Profiler {
	if opt.NoiseSigma == 0 {
		opt.NoiseSigma = 0.015
	}
	if opt.NoiseSigma < 0 {
		opt.NoiseSigma = 0
	}
	return &Profiler{dev: dev, opt: opt}
}

// Device returns the profiled device.
func (p *Profiler) Device() *gpusim.Device { return p.dev }

// identityHash folds the workload's identity (name, characteristics,
// input seed) into an FNV-1a hash. It keys both measurement noise and
// fault injection, so neither depends on sweep position.
func identityHash(w Workload) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte8 := func(x uint64) {
		for i := 0; i < 64; i += 8 {
			h = (h ^ (x >> i & 0xff)) * prime64
		}
	}
	name := w.Name()
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	chars := w.Characteristics()
	for _, k := range sortedKeys(chars) {
		for i := 0; i < len(k); i++ {
			h = (h ^ uint64(k[i])) * prime64
		}
		byte8(math.Float64bits(chars[k]))
	}
	if s, ok := w.(InputSeeded); ok {
		byte8(s.InputSeed())
	}
	return h
}

// noiseSeed derives the measurement-noise seed for one run: the identity
// hash mixed with the profiler seed, splitmix-finalized the same way
// forest.Fit derives its per-tree seeds. Because position in the sweep
// never enters the hash, reordering or parallelizing a collection cannot
// change any profile.
func (p *Profiler) noiseSeed(w Workload) uint64 {
	return stats.SplitMix64(identityHash(w) ^ stats.SplitMix64(p.opt.Seed^0x70726f66))
}

// Run profiles one workload run end to end, consulting Options.Cache
// when one is configured and drawing a slot from Options.Gate (if set)
// for the simulation itself. With fault injection configured, a run that
// the injector fails reports an error wrapping faults.ErrInjected; Run
// is always "attempt 0" (RunAll drives later attempts).
func (p *Profiler) Run(w Workload) (*Profile, error) {
	computed := false
	compute := func() (*Profile, error) {
		computed = true
		lane := 0
		if g := p.opt.Gate; g != nil {
			lane = g.enter()
			defer g.leave(lane)
		}
		sp := p.opt.Tracer.Begin(lane, "run "+w.Name())
		defer sp.End()
		return p.run(w, 0, lane)
	}
	if p.opt.Cache == nil {
		return compute()
	}
	prof, err := p.opt.Cache.Do(p.RunKey(w), compute)
	if !computed && err == nil {
		p.opt.Tracer.Instant(LaneCache, "cache-hit", obs.Arg{Key: "workload", Value: w.Name()})
	}
	return prof, err
}

func (p *Profiler) run(w Workload, attempt, lane int) (*Profile, error) {
	launches, err := w.Plan(p.dev)
	if err != nil {
		return nil, fmt.Errorf("profiler: planning %s: %w", w.Name(), err)
	}
	if len(launches) == 0 {
		return nil, errors.New("profiler: workload planned zero launches")
	}
	if p.opt.Faults != nil && p.opt.Faults.FailRun(identityHash(w), attempt) {
		return nil, fmt.Errorf("profiler: collecting %s (attempt %d): %w", w.Name(), attempt+1, faults.ErrInjected)
	}

	sim := gpusim.NewSimulator(p.dev)
	var agg counters.Sample
	var breakdown gpusim.BottleneckBreakdown
	var occWeighted, smWeighted, energyMJ float64
	bottlenecks := make(map[string]int)
	simSpan := p.opt.Tracer.Begin(lane, "simulate").
		Arg("workload", w.Name()).
		Arg("launches", fmt.Sprint(len(launches)))
	for _, l := range launches {
		res, err := sim.Launch(l.Config, l.Kernel, gpusim.LaunchOptions{MaxSimBlocks: p.opt.MaxSimBlocks})
		if err != nil {
			simSpan.End()
			return nil, fmt.Errorf("profiler: launching %s/%s: %w", w.Name(), l.Label, err)
		}
		agg.Raw.Add(&res.Counters)
		agg.Cycles += res.Cycles
		agg.TimeMS += res.TimeMS
		occWeighted += res.AchievedOccupancy * res.Cycles
		smWeighted += res.Occupancy.TailUtilization * res.Cycles
		energyMJ += res.EnergyMJ
		bottlenecks[res.Bottleneck]++
		breakdown.Add(&res.Breakdown)
	}
	simSpan.End()
	// Re-pin after summation: per-launch totals are exact, but summing the
	// six fields independently associates differently than summing Cycles.
	breakdown.PinTotal(agg.Cycles)
	if agg.Cycles > 0 {
		agg.AchievedOccupancy = occWeighted / agg.Cycles
		agg.SMEfficiency = smWeighted / agg.Cycles
	}

	modelTime := agg.TimeMS
	measured := modelTime
	power := averagePower(energyMJ, modelTime)
	if p.opt.NoiseSigma > 0 {
		rng := stats.NewRNG(p.noiseSeed(w))
		measured *= math.Exp(p.opt.NoiseSigma * rng.NormFloat64())
		power *= math.Exp(p.opt.NoiseSigma * rng.NormFloat64())
	}
	agg.TimeMS = measured

	metrics := counters.Derive(p.dev, agg)
	var dropped []string
	if p.opt.Faults != nil {
		id := identityHash(w)
		for _, name := range sortedKeys(metrics) {
			if p.opt.Faults.DropCounter(id, name) {
				delete(metrics, name)
				dropped = append(dropped, name)
			}
		}
	}

	return &Profile{
		Workload:        w.Name(),
		Device:          p.dev.Name,
		Characteristics: w.Characteristics(),
		Metrics:         metrics,
		TimeMS:          measured,
		ModelTimeMS:     modelTime,
		PowerW:          power,
		EnergyMJ:        energyMJ,
		Launches:        len(launches),
		Bottlenecks:     bottlenecks,
		Cycles:          agg.Cycles,
		Breakdown:       breakdown,
		ComputeOps: float64(agg.Raw.IntThreadOps + agg.Raw.FloatThreadOps +
			4*agg.Raw.SpecialThreadOps),
		DRAMBytes: float64(agg.Raw.DRAMReadBytes + agg.Raw.DRAMWriteBytes),
		Dropped:   dropped,
	}, nil
}

// averagePower returns the mean power draw in watts (mJ over ms). A
// degenerate run with ~zero modeled time would divide to Inf/NaN and
// poison every downstream frame; it reports 0 W instead.
func averagePower(energyMJ, modelTimeMS float64) float64 {
	if modelTimeMS <= 0 {
		return 0
	}
	p := energyMJ / modelTimeMS
	if math.IsInf(p, 0) || math.IsNaN(p) {
		return 0
	}
	return p
}

// RunAll profiles every workload with up to workers concurrent runs
// (workers ≤ 0 selects runtime.NumCPU(), 1 profiles sequentially) and
// returns the profiles in input order. Because each run's noise derives
// from its identity, the result is bit-for-bit identical for every worker
// count, and independent of input order modulo slice order. Workloads
// implementing Releaser are released as soon as each attempt finishes,
// including runs that fail after planning; the error of the earliest run
// in input order wins. A failed run is retried up to Options.Retries
// times with exponential backoff (each attempt re-plans the workload, so
// released buffers are rebuilt) before its error is reported.
//
// When Options.Gate is set, workers is ignored and runs draw slots from
// the shared gate instead, so concurrent collections are scheduled
// globally. When Options.Cache is set, each run first consults the
// cache; only actual simulations occupy a pool slot, and identical
// in-flight runs (within or across collections) coalesce into one.
func (p *Profiler) RunAll(runs []Workload, workers int) ([]*Profile, error) {
	gate := p.opt.Gate
	if gate == nil {
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		if workers > len(runs) {
			workers = len(runs)
		}
		gate = NewGate(workers)
	}
	profiles := make([]*Profile, len(runs))
	errs := make([]error, len(runs))
	var wg sync.WaitGroup
	for i, w := range runs {
		wg.Add(1)
		go func(i int, w Workload) {
			defer wg.Done()
			profiles[i], errs[i] = p.runGated(w, gate)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("profiler: run %d (%s): %w", i, runs[i].Name(), err)
		}
	}
	return profiles, nil
}

// runGated is one scheduled run: a cache hit (or a coalesced wait on an
// identical in-flight run) returns without ever taking a pool slot; a
// real simulation holds one slot for its duration.
func (p *Profiler) runGated(w Workload, gate Gate) (*Profile, error) {
	computed := false
	compute := func() (*Profile, error) {
		computed = true
		slot := gate.enter()
		defer gate.leave(slot)
		sp := p.opt.Tracer.Begin(slot, "run "+w.Name())
		defer sp.End()
		return p.runWithRetry(w, slot)
	}
	if p.opt.Cache == nil {
		return compute()
	}
	prof, err := p.opt.Cache.Do(p.RunKey(w), compute)
	if !computed && err == nil {
		p.opt.Tracer.Instant(LaneCache, "cache-hit", obs.Arg{Key: "workload", Value: w.Name()})
	}
	return prof, err
}

// runWithRetry drives one workload through up to 1+Retries attempts.
func (p *Profiler) runWithRetry(w Workload, lane int) (*Profile, error) {
	var lastErr error
	for attempt := 0; attempt <= p.opt.Retries; attempt++ {
		if attempt > 0 && p.opt.RetryBackoff > 0 {
			time.Sleep(p.opt.RetryBackoff << (attempt - 1))
		}
		asp := p.opt.Tracer.Begin(lane, "attempt").Arg("n", fmt.Sprint(attempt+1))
		prof, err := p.run(w, attempt, lane)
		if err != nil {
			asp.Arg("error", "true")
		}
		asp.End()
		// Release unconditionally: Plan may have allocated (NW's
		// O(n²) matrix) even when the launch later failed.
		if rel, ok := w.(Releaser); ok {
			rel.Release()
		}
		if err == nil {
			return prof, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// MetricNames returns the profile's metric names, sorted.
func (pr *Profile) MetricNames() []string {
	names := make([]string, 0, len(pr.Metrics))
	for n := range pr.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DominantBottleneck returns the bottleneck term that bound the most
// launches.
func (pr *Profile) DominantBottleneck() string {
	best, bestN := "", -1
	keys := make([]string, 0, len(pr.Bottlenecks))
	for k := range pr.Bottlenecks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if pr.Bottlenecks[k] > bestN {
			best, bestN = k, pr.Bottlenecks[k]
		}
	}
	return best
}
