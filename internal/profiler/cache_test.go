package profiler_test

import (
	"math"
	"sync"
	"testing"

	"blackforest/internal/faults"
	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
	"blackforest/internal/runcache"
)

func testDevice(t *testing.T) *gpusim.Device {
	t.Helper()
	dev, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func cacheSweep(seed uint64) []profiler.Workload {
	var runs []profiler.Workload
	for _, n := range []int{1 << 12, 1 << 13, 1 << 14, 1 << 15} {
		seed++
		runs = append(runs, &kernels.Reduction{Variant: 2, N: n, BlockSize: 256, Seed: seed})
	}
	return runs
}

// profilesBitIdentical fails unless a and b agree to the last float bit.
func profilesBitIdentical(t *testing.T, a, b []*profiler.Profile) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("profile counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Workload != y.Workload || x.Device != y.Device || x.Launches != y.Launches {
			t.Fatalf("run %d: identity fields differ", i)
		}
		for _, pair := range [][2]float64{
			{x.TimeMS, y.TimeMS},
			{x.ModelTimeMS, y.ModelTimeMS},
			{x.PowerW, y.PowerW},
			{x.EnergyMJ, y.EnergyMJ},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("run %d: response bits differ: %x vs %x", i,
					math.Float64bits(pair[0]), math.Float64bits(pair[1]))
			}
		}
		if len(x.Metrics) != len(y.Metrics) {
			t.Fatalf("run %d: metric sets differ", i)
		}
		for name, v := range x.Metrics {
			w, ok := y.Metrics[name]
			if !ok || math.Float64bits(v) != math.Float64bits(w) {
				t.Fatalf("run %d: metric %s differs: %v vs %v", i, name, v, w)
			}
		}
	}
}

// TestCachedCollectionBitIdentical is the tentpole guarantee: profiles
// served by the cache — memory hits, coalesced in-flight shares, and
// disk round trips — are bit-identical to an uncached sequential run.
func TestCachedCollectionBitIdentical(t *testing.T) {
	dev := testDevice(t)
	opt := profiler.Options{MaxSimBlocks: 4, Seed: 9}
	baseline, err := profiler.New(dev, opt).RunAll(cacheSweep(100), 1)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cache, err := profiler.NewRunCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	optC := opt
	optC.Cache = cache
	p := profiler.New(dev, optC)

	// Cold pass: all misses, all simulated.
	cold, err := p.RunAll(cacheSweep(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	profilesBitIdentical(t, baseline, cold)
	if s := cache.Stats(); s.Hits() != 0 || s.Writes != 4 {
		t.Fatalf("cold stats = %+v, want 0 hits, 4 writes", s)
	}

	// Warm pass in the same process: pure memory hits.
	warm, err := p.RunAll(cacheSweep(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	profilesBitIdentical(t, baseline, warm)
	if s := cache.Stats(); s.MemHits != 4 {
		t.Fatalf("warm stats = %+v, want 4 memory hits", s)
	}

	// Fresh cache over the same directory: disk hits, still bit-identical.
	cache2, err := profiler.NewRunCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	optC2 := opt
	optC2.Cache = cache2
	disk, err := profiler.New(dev, optC2).RunAll(cacheSweep(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	profilesBitIdentical(t, baseline, disk)
	if s := cache2.Stats(); s.DiskHits != 4 || s.Misses != 0 {
		t.Fatalf("disk stats = %+v, want 4 disk hits, 0 misses", s)
	}
}

// TestRunKeySensitivity: every input that can change a profile must
// change the key, and irrelevant differences must not.
func TestRunKeySensitivity(t *testing.T) {
	dev := testDevice(t)
	base := profiler.Options{MaxSimBlocks: 4, Seed: 9}
	w := &kernels.Reduction{Variant: 2, N: 4096, BlockSize: 256, Seed: 5}
	key := profiler.New(dev, base).RunKey(w)

	if profiler.New(dev, base).RunKey(w) != key {
		t.Fatal("same inputs must derive the same key")
	}
	if profiler.New(dev, base).RunKey(&kernels.Reduction{Variant: 2, N: 4096, BlockSize: 256, Seed: 5}) != key {
		t.Fatal("key must depend on identity, not instance")
	}

	mutate := map[string]func() runcache.Key{
		"seed": func() runcache.Key {
			o := base
			o.Seed = 10
			return profiler.New(dev, o).RunKey(w)
		},
		"simblocks": func() runcache.Key {
			o := base
			o.MaxSimBlocks = 8
			return profiler.New(dev, o).RunKey(w)
		},
		"noise": func() runcache.Key {
			o := base
			o.NoiseSigma = -1
			return profiler.New(dev, o).RunKey(w)
		},
		"faults": func() runcache.Key {
			o := base
			o.Faults = faults.New(faults.Config{Seed: 1, CounterDropout: 0.5})
			return profiler.New(dev, o).RunKey(w)
		},
		"device": func() runcache.Key {
			dev2, err := gpusim.LookupDevice("K20m")
			if err != nil {
				t.Fatal(err)
			}
			return profiler.New(dev2, base).RunKey(w)
		},
		"workload-size": func() runcache.Key {
			return profiler.New(dev, base).RunKey(&kernels.Reduction{Variant: 2, N: 8192, BlockSize: 256, Seed: 5})
		},
		"input-seed": func() runcache.Key {
			return profiler.New(dev, base).RunKey(&kernels.Reduction{Variant: 2, N: 4096, BlockSize: 256, Seed: 6})
		},
		"variant": func() runcache.Key {
			return profiler.New(dev, base).RunKey(&kernels.Reduction{Variant: 3, N: 4096, BlockSize: 256, Seed: 5})
		},
	}
	seen := map[runcache.Key]string{key: "base"}
	for name, f := range mutate {
		k := f()
		if prev, dup := seen[k]; dup {
			t.Fatalf("mutation %q collided with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestSharedGateAcrossCollections drains two concurrent sweeps through
// one gate and one cache; the frames must match per-collection baselines
// and identical runs across the collections must coalesce or hit.
func TestSharedGateAcrossCollections(t *testing.T) {
	dev := testDevice(t)
	opt := profiler.Options{MaxSimBlocks: 4, Seed: 9}
	baseline, err := profiler.New(dev, opt).RunAll(cacheSweep(100), 1)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := profiler.NewRunCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	shared := opt
	shared.Cache = cache
	shared.Gate = profiler.NewGate(4)
	p := profiler.New(dev, shared)

	const collections = 3
	results := make([][]*profiler.Profile, collections)
	errs := make([]error, collections)
	var wg sync.WaitGroup
	for i := 0; i < collections; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.RunAll(cacheSweep(100), 0) // workers ignored: gate governs
		}(i)
	}
	wg.Wait()
	for i := 0; i < collections; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		profilesBitIdentical(t, baseline, results[i])
	}
	// 4 unique runs across 12 requests: 8 were served without simulating.
	s := cache.Stats()
	if s.Hits()+s.Coalesced != 8 {
		t.Fatalf("stats = %+v, want hits+coalesced = 8", s)
	}
	if s.Writes != 0 {
		t.Fatalf("stats = %+v, want no disk writes for memory-only cache", s)
	}
}

// TestCacheWithFaultsKeyed: a faulty collection and a clean one must not
// share cache entries, and the faulty one's degraded profiles are
// themselves reproducible through the cache.
func TestCacheWithFaultsKeyed(t *testing.T) {
	dev := testDevice(t)
	cache, err := profiler.NewRunCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	clean := profiler.Options{MaxSimBlocks: 4, Seed: 9, Cache: cache}
	faulty := clean
	faulty.Faults = faults.New(faults.Config{Seed: 3, CounterDropout: 0.3})
	faulty.Retries = 2

	cleanProfiles, err := profiler.New(dev, clean).RunAll(cacheSweep(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	faultyProfiles, err := profiler.New(dev, faulty).RunAll(cacheSweep(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits() != 0 {
		t.Fatalf("stats = %+v: clean and faulty runs must not share entries", s)
	}
	dropped := 0
	for _, p := range faultyProfiles {
		dropped += len(p.Dropped)
	}
	if dropped == 0 {
		t.Fatal("expected injected dropout in faulty profiles")
	}
	for _, p := range cleanProfiles {
		if len(p.Dropped) != 0 {
			t.Fatal("clean profiles must not report dropout")
		}
	}
	// Warm faulty pass: bit-identical degraded profiles from cache.
	again, err := profiler.New(dev, faulty).RunAll(cacheSweep(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	profilesBitIdentical(t, faultyProfiles, again)
	if s := cache.Stats(); s.Hits() != 4 {
		t.Fatalf("stats = %+v, want 4 hits on warm faulty pass", s)
	}
}
