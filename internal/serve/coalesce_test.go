package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCoalescedBitIdenticalToSequential is the coalescing acceptance test:
// K concurrent single predicts queued into one micro-batch must answer with
// time_ms bit-identical (math.Float64bits) to K sequential predictOne calls
// on a coalescing-free server. The flat batch path accumulates tree
// contributions in the same order as the solo walk, so coalescing changes
// scheduling, never bits.
func TestCoalescedBitIdenticalToSequential(t *testing.T) {
	ps := testScaler(t, 3)
	const k = 12
	sizes := make([]float64, k)
	for i := range sizes {
		sizes[i] = float64(64 * (i + 1))
	}

	// Sequential reference on a plain server (no coalescing, no cache).
	sref, err := New(Config{Scaler: ps, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, k)
	refSnap := sref.registry.defaultSnapshot()
	for i, size := range sizes {
		p, _, err := sref.predictOne(refSnap, map[string]float64{"size": size})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = math.Float64bits(p.TimeMS)
	}

	// Coalescing server: a wide window so all K requests join one batch.
	s, err := New(Config{Scaler: ps, CacheSize: -1, BatchWindow: 200 * time.Millisecond, BatchMaxSize: k})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.registry.defaultSnapshot()
	if snap.coal == nil {
		t.Fatal("BatchWindow did not enable the coalescer")
	}
	got := make([]uint64, k)
	var wg sync.WaitGroup
	for i := range sizes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := s.predictCoalesced(context.Background(), snap, map[string]float64{"size": sizes[i]})
			if err != nil {
				t.Errorf("row %d: %v", i, err)
				return
			}
			got[i] = math.Float64bits(p.TimeMS)
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("size %g: coalesced bits %x != sequential bits %x",
				sizes[i], got[i], want[i])
		}
	}

	// Everything drained through micro-batches (reaching BatchMaxSize
	// flushes immediately, so at least one real multi-row batch formed).
	s.metrics.mu.Lock()
	batchN, batchSum := s.metrics.batchN, s.metrics.batchSum
	s.metrics.mu.Unlock()
	if batchSum != k {
		t.Fatalf("batches drained %d rows, want %d", batchSum, k)
	}
	if batchN >= k {
		t.Fatalf("%d batches for %d rows: nothing coalesced", batchN, k)
	}
}

// TestCoalescerMaxSizeFlushesImmediately: reaching BatchMaxSize must drain
// without waiting out the window.
func TestCoalescerMaxSizeFlushesImmediately(t *testing.T) {
	drained := make(chan int, 4)
	c := newCoalescer(time.Hour, 4, func(reqs []*coalesceReq) {
		drained <- len(reqs)
		for _, rq := range reqs {
			close(rq.done)
		}
	})
	for i := 0; i < 4; i++ {
		c.enqueue(&coalesceReq{done: make(chan struct{})})
	}
	select {
	case n := <-drained:
		if n != 4 {
			t.Fatalf("drained %d requests, want 4", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("full batch never drained despite hour-long window")
	}
}

// TestCoalescerWindowFlushesPartialBatch: a lone request must drain once
// the window expires, not wait for batch-mates forever.
func TestCoalescerWindowFlushesPartialBatch(t *testing.T) {
	drained := make(chan int, 1)
	c := newCoalescer(10*time.Millisecond, 64, func(reqs []*coalesceReq) {
		drained <- len(reqs)
		for _, rq := range reqs {
			close(rq.done)
		}
	})
	c.enqueue(&coalesceReq{done: make(chan struct{})})
	select {
	case n := <-drained:
		if n != 1 {
			t.Fatalf("drained %d requests, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("window expiry never drained the partial batch")
	}
}

// TestCoalescedServerAnswersOverHTTP: with coalescing on, the HTTP path
// still answers every single predict correctly (each equal to the direct
// computation) and the batch-size histogram counts the drains.
func TestCoalescedServerAnswersOverHTTP(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{BatchWindow: time.Millisecond, CacheSize: -1})

	for _, size := range []float64{64, 320, 1024, 2048} {
		want, _, err := ps.PredictDetail(map[string]float64{"size": size})
		if err != nil {
			t.Fatal(err)
		}
		resp, raw := postPredict(t, hs.URL, fmt.Sprintf(`{"chars":{"size":%g}}`, size))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("size %g: status %d: %s", size, resp.StatusCode, raw)
		}
		var pr PredictResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		if got := pr.Predictions[0].TimeMS; got != want {
			t.Fatalf("size %g: coalesced HTTP answer %v != direct %v", size, got, want)
		}
	}

	text := scrapeMetrics(t, hs.URL)
	if !strings.Contains(text, "bfserve_batch_size_count 4") {
		t.Fatalf("metrics missing bfserve_batch_size_count 4:\n%s", text)
	}
	if !strings.Contains(text, `bfserve_predictions_total{model="default"} 4`) {
		t.Fatalf("coalesced predicts not counted per model:\n%s", text)
	}
}

// TestCoalescedBadRowFailsAlone: an invalid vector queued into a micro-batch
// must fail with a 400 naming the problem, without failing its batch-mates.
func TestCoalescedBadRowFailsAlone(t *testing.T) {
	ps := testScaler(t, 3)
	s, hs := newTestServer(t, ps, Config{BatchWindow: 50 * time.Millisecond, BatchMaxSize: 2, CacheSize: -1})
	snap := s.registry.defaultSnapshot()

	// Enqueue one good and one bad request concurrently so they share a
	// batch (BatchMaxSize 2 drains the pair immediately).
	type res struct {
		p   Prediction
		err error
	}
	results := make(chan res, 2)
	go func() {
		p, _, err := s.predictCoalesced(context.Background(), snap, map[string]float64{"size": 512})
		results <- res{p, err}
	}()
	go func() {
		p, _, err := s.predictCoalesced(context.Background(), snap, map[string]float64{"wrong_char": 1})
		results <- res{p, err}
	}()
	var okCount, errCount int
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				errCount++
			} else {
				okCount++
				want, _, err := ps.PredictDetail(map[string]float64{"size": 512})
				if err != nil {
					t.Fatal(err)
				}
				if r.p.TimeMS != want {
					t.Fatalf("good row answered %v, want %v", r.p.TimeMS, want)
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatal("coalesced request never completed")
		}
	}
	if okCount != 1 || errCount != 1 {
		t.Fatalf("got %d ok / %d errors, want 1/1", okCount, errCount)
	}

	// Over HTTP the bad row maps to a 400 naming the missing characteristic.
	resp, raw := postPredict(t, hs.URL, `{"chars":{"bogus":1}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad coalesced predict: status %d: %s", resp.StatusCode, raw)
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error, "row 0") {
		t.Fatalf("400 body: %s", raw)
	}
}
