package serve

// Observability contract tests: the /metrics scrape is well-formed
// Prometheus text exposition end to end (every sample belongs to a family
// whose # HELP/# TYPE preceded it, histograms are complete), and enabling
// access logging, request IDs, stage histograms, and an extra registry
// never changes a response body byte.

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"blackforest/internal/obs"
	"blackforest/internal/runcache"
)

// parseScrape walks one exposition scrape line by line and fails the test
// on any structural violation: samples before their family header, a family
// declared twice, unparsable values, or histogram families missing their
// +Inf bucket, _sum, or _count.
func parseScrape(t *testing.T, text string) (families map[string]string, samples map[string]float64) {
	t.Helper()
	families = map[string]string{} // name → type
	samples = map[string]float64{} // full series text (name+labels) → value
	helped := map[string]bool{}
	histSuffix := map[string]map[string]bool{} // histogram family → suffixes seen
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: family %q declared twice", ln+1, name)
			}
			if !helped[name] {
				t.Fatalf("line %d: family %q has TYPE but no preceding HELP", ln+1, name)
			}
			families[name] = typ
			if typ == "histogram" {
				histSuffix[name] = map[string]bool{}
			}
		case line == "" || strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment/blank: %q", ln+1, line)
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("line %d: no value: %q", ln+1, line)
			}
			series, val := line[:sp], line[sp+1:]
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
			}
			name := series
			if b := strings.IndexByte(series, '{'); b >= 0 {
				name = series[:b]
			}
			fam := name
			suffix := ""
			if _, ok := families[fam]; !ok {
				for _, sfx := range []string{"_bucket", "_sum", "_count"} {
					if strings.HasSuffix(name, sfx) {
						if _, ok := families[strings.TrimSuffix(name, sfx)]; ok {
							fam, suffix = strings.TrimSuffix(name, sfx), sfx
							break
						}
					}
				}
			}
			typ, ok := families[fam]
			if !ok {
				t.Fatalf("line %d: sample %q precedes its # TYPE header", ln+1, series)
			}
			if suffix != "" && typ != "histogram" && typ != "summary" {
				t.Fatalf("line %d: %s sample %q uses suffix %q", ln+1, typ, series, suffix)
			}
			if typ == "histogram" {
				if suffix == "" {
					t.Fatalf("line %d: histogram family %q has bare sample %q", ln+1, fam, series)
				}
				histSuffix[fam][suffix] = true
				if suffix == "_bucket" && strings.Contains(series, `le="+Inf"`) {
					histSuffix[fam]["+Inf"] = true
				}
			}
			f, _ := strconv.ParseFloat(val, 64)
			samples[series] = f
		}
	}
	for fam, seen := range histSuffix {
		for _, want := range []string{"_bucket", "_sum", "_count", "+Inf"} {
			if !seen[want] {
				t.Errorf("histogram %q is missing %s lines", fam, want)
			}
		}
	}
	return families, samples
}

// TestMetricsFullScrapeWellFormed parses the entire /metrics output — the
// serve counters, the build-info gauge, the stage histograms, and an extra
// registry carrying run-cache counters — with the strict parser above.
func TestMetricsFullScrapeWellFormed(t *testing.T) {
	extra := obs.NewRegistry()
	runcache.RegisterMetrics(extra, "bfserve_runcache", func() runcache.Stats {
		return runcache.Stats{MemHits: 7, Misses: 2}
	})
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{Extra: extra})

	// Touch a couple of routes so real series exist next to the zero ones.
	postPredict(t, hs.URL, `{"chars":{"size":256}}`)
	postPredict(t, hs.URL, `{"batch":[{"size":64},{"size":128}]}`)
	postPredict(t, hs.URL, `not json`)
	text := scrapeMetrics(t, hs.URL)

	families, samples := parseScrape(t, text)

	for fam, typ := range map[string]string{
		"bfserve_requests_total":           "counter",
		"bfserve_request_duration_seconds": "summary",
		"bfserve_predictions_total":        "counter",
		"bfserve_batch_size":               "histogram",
		"bfserve_build_info":               "gauge",
		"bfserve_stage_duration_seconds":   "histogram",
		"bfserve_runcache_hits_total":      "gauge",
	} {
		if got := families[fam]; got != typ {
			t.Errorf("family %s: got type %q, want %q", fam, got, typ)
		}
	}

	// Unhit routes expose zero-valued counters from the first scrape.
	if v, ok := samples[`bfserve_requests_total{path="/v1/models",code="200"}`]; !ok || v != 0 {
		t.Errorf("missing zero-valued series for unhit route /v1/models (got %v, present %v)", v, ok)
	}
	// Hit routes report their real counts.
	if v := samples[`bfserve_requests_total{path="/v1/predict",code="200"}`]; v != 2 {
		t.Errorf("predict 200 count = %v, want 2", v)
	}
	if v := samples[`bfserve_requests_total{path="/v1/predict",code="400"}`]; v != 1 {
		t.Errorf("predict 400 count = %v, want 1", v)
	}
	// The extra registry's series ride along in the same scrape.
	if v := samples[`bfserve_runcache_hits_total{layer="mem"}`]; v != 7 {
		t.Errorf("runcache mem hits = %v, want 7", v)
	}
	// Build info carries version and the default model's engine.
	found := false
	for series := range samples {
		if strings.HasPrefix(series, "bfserve_build_info{") {
			found = true
			if !strings.Contains(series, `version="dev"`) || !strings.Contains(series, `engine=`) {
				t.Errorf("build info missing version/engine labels: %s", series)
			}
		}
	}
	if !found {
		t.Error("scrape has no bfserve_build_info sample")
	}
	// The never-hit coalesce_wait stage still exposes its full bucket set.
	if v, ok := samples[`bfserve_stage_duration_seconds_count{stage="coalesce_wait"}`]; !ok || v != 0 {
		t.Errorf("cold coalesce_wait histogram: count = %v, present %v; want 0 and present", v, ok)
	}
	// Queue and inference stages observed the predicts above.
	for _, stage := range []string{"queue", "inference"} {
		if v := samples[fmt.Sprintf("bfserve_stage_duration_seconds_count{stage=%q}", stage)]; v < 2 {
			t.Errorf("stage %s observed %v requests, want >= 2", stage, v)
		}
	}
}

// TestObservabilityDoesNotChangeResponses pins the determinism contract on
// the serving path: access logging, slow-request flagging, and the extra
// registry may only add headers and log lines, never change response bytes.
func TestObservabilityDoesNotChangeResponses(t *testing.T) {
	ps := testScaler(t, 3)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, plainHS := newTestServer(t, ps, Config{})
	_, obsHS := newTestServer(t, ps, Config{
		AccessLog:   logger,
		SlowRequest: time.Nanosecond, // every request flags slow → Warn path
		Extra:       obs.NewRegistry(),
	})

	for _, body := range []string{
		`{"chars":{"size":256}}`,
		`{"batch":[{"size":64},{"size":128},{"size":4096}]}`,
		`{"chars":{"size":256}}`, // cache hit path
		`not json`,
	} {
		_, plain := postPredict(t, plainHS.URL, body)
		resp, traced := postPredict(t, obsHS.URL, body)
		if !bytes.Equal(plain, traced) {
			t.Fatalf("observability changed the response for %s:\nplain:  %s\ntraced: %s", body, plain, traced)
		}
		if resp.Header.Get("X-Request-ID") == "" {
			t.Fatal("response is missing the X-Request-ID header")
		}
	}

	// A client-provided request ID is echoed back, not replaced.
	req, err := http.NewRequest(http.MethodPost, obsHS.URL+"/v1/predict",
		strings.NewReader(`{"chars":{"size":256}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Fatalf("client request ID not echoed: got %q", got)
	}

	logs := logBuf.String()
	for _, want := range []string{
		`"msg":"request"`, `"request_id":`, `"path":"/v1/predict"`,
		`"status":200`, `"status":400`, `"slow":true`, `"level":"WARN"`,
		`"request_id":"client-abc-123"`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %s\n---\n%s", want, logs)
		}
	}
}

// TestStageHistogramCoalesceWait checks the coalesce_wait stage records
// queue time when micro-batching is on, alongside inference observations
// from the drain path.
func TestStageHistogramCoalesceWait(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{BatchWindow: 200 * time.Microsecond})
	postPredict(t, hs.URL, `{"chars":{"size":256}}`)
	postPredict(t, hs.URL, `{"chars":{"size":512}}`)
	text := scrapeMetrics(t, hs.URL)
	_, samples := parseScrape(t, text)
	if v := samples[`bfserve_stage_duration_seconds_count{stage="coalesce_wait"}`]; v != 2 {
		t.Errorf("coalesce_wait count = %v, want 2", v)
	}
	if v := samples[`bfserve_stage_duration_seconds_count{stage="inference"}`]; v < 1 {
		t.Errorf("inference count = %v, want >= 1", v)
	}
}
