package serve

// Serving-path hardening tests: panics answered as 500s (the server
// survives), singleflight coalescing of concurrent identical predictions,
// and delivered-only prediction metrics.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blackforest/internal/core"
)

// scrapeMetrics fetches /metrics as text.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestPanicOnSingleRequestAnswers500: a panic inside the prediction path of
// a single-vector request must surface as a JSON 500 through the recover
// middleware (http.TimeoutHandler re-raises the inner goroutine's panic in
// the outer frame), count in bfserve_panics_total, and leave the server
// fully functional.
func TestPanicOnSingleRequestAnswers500(t *testing.T) {
	ps := testScaler(t, 3)
	var calls atomic.Int64
	s, hs := newTestServer(t, ps, Config{})
	s.testHookPredict = func() {
		if calls.Add(1) == 1 {
			panic("deliberately broken predictor")
		}
	}

	resp, raw := postPredict(t, hs.URL, `{"chars":{"size":320}}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, raw)
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Fatalf("500 body is not a JSON error: %s", raw)
	}
	if !strings.Contains(e.Error, "deliberately broken predictor") {
		t.Fatalf("500 body does not name the panic: %s", raw)
	}

	// The server must still answer; the hook no longer panics.
	resp2, raw2 := postPredict(t, hs.URL, `{"chars":{"size":320}}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: status %d: %s", resp2.StatusCode, raw2)
	}
	text := scrapeMetrics(t, hs.URL)
	if !strings.Contains(text, "bfserve_panics_total 1") {
		t.Fatalf("metrics missing bfserve_panics_total 1:\n%s", text)
	}
}

// TestPanicInBatchWorkerAnswers500: a panic inside a parallel batch worker
// goroutine cannot be caught by HTTP middleware — predictOneSafe must convert
// it to an error that handlePredict maps to 500, and the process must
// survive.
func TestPanicInBatchWorkerAnswers500(t *testing.T) {
	ps := testScaler(t, 3)
	var calls atomic.Int64
	s, hs := newTestServer(t, ps, Config{Workers: 4})
	s.testHookPredict = func() {
		if calls.Add(1) == 1 {
			panic("worker boom")
		}
	}

	resp, raw := postPredict(t, hs.URL,
		`{"batch":[{"size":64},{"size":128},{"size":256},{"size":512}]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, raw)
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error, "prediction panicked") {
		t.Fatalf("500 body does not report the worker panic: %s", raw)
	}

	resp2, raw2 := postPredict(t, hs.URL, `{"batch":[{"size":64},{"size":128}]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the worker panic: status %d: %s", resp2.StatusCode, raw2)
	}
	text := scrapeMetrics(t, hs.URL)
	if !strings.Contains(text, "bfserve_panics_total 1") {
		t.Fatalf("metrics missing bfserve_panics_total 1:\n%s", text)
	}
}

// TestSingleflightCoalescesStampede: N concurrent identical cold requests
// must trigger exactly one model computation. The first computation blocks in
// the hook while the rest arrive; without coalescing each of them would miss
// the cache and compute independently (the stampede). The count is
// deterministic: the leader's cache put happens before its flight entry is
// removed, so every other request either coalesces or hits the cache.
func TestSingleflightCoalescesStampede(t *testing.T) {
	ps := testScaler(t, 3)
	var computations atomic.Int64
	release := make(chan struct{})
	s, hs := newTestServer(t, ps, Config{CacheSize: 16})
	s.testHookPredict = func() {
		computations.Add(1)
		<-release
	}

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/v1/predict", "application/json",
				strings.NewReader(`{"chars":{"size":896}}`))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	// Let the requests pile up behind the blocked leader, then release it.
	deadline := time.After(5 * time.Second)
	for computations.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no request reached the predictor")
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computations.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests computed %d times, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if codes[i] != codes[0] || !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d answered differently: %d %s vs %d %s",
				i, codes[i], bodies[i], codes[0], bodies[0])
		}
	}
	if codes[0] != http.StatusOK {
		t.Fatalf("status %d: %s", codes[0], bodies[0])
	}
}

// TestSingleflightFollowerNeverHangs: if the in-flight leader panics, any
// goroutine coalesced onto it must be released promptly (with an error or a
// freshly computed answer), never hang on the abandoned call.
func TestSingleflightFollowerNeverHangs(t *testing.T) {
	ps := testScaler(t, 3)
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	s, err := New(Config{Scaler: ps, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.testHookPredict = func() {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
			panic("leader boom")
		}
	}

	snap := s.registry.defaultSnapshot()
	chars := map[string]float64{"size": 448}
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := s.predictOneSafe(snap, chars)
		leaderDone <- err
	}()
	<-entered
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		s.predictOneSafe(snap, chars)
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-leaderDone:
		if _, ok := err.(*panicError); !ok {
			t.Fatalf("leader returned %v, want *panicError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader never returned")
	}
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower hung on the panicked leader's flight call")
	}
}

// TestMetricsCountOnlyDeliveredPredictions: a batch abandoned on context
// expiry returns nothing to the client, so none of its rows may count in
// bfserve_predictions_total (or the cache hit/miss counters).
func TestMetricsCountOnlyDeliveredPredictions(t *testing.T) {
	ps := testScaler(t, 3)
	release := make(chan struct{})
	var once sync.Once
	s, hs := newTestServer(t, ps, Config{Workers: 1, RequestTimeout: 100 * time.Millisecond})
	s.testHookPredict = func() {
		once.Do(func() { <-release })
	}

	resp, raw := postPredict(t, hs.URL, `{"batch":[{"size":64},{"size":128},{"size":256}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (timeout): %s", resp.StatusCode, raw)
	}
	close(release)
	// Let the abandoned handler goroutine finish unwinding before scraping.
	time.Sleep(100 * time.Millisecond)

	text := scrapeMetrics(t, hs.URL)
	for _, want := range []string{
		`bfserve_predictions_total{model="default"} 0`,
		"bfserve_cache_hits_total 0",
		"bfserve_cache_misses_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q after an undelivered batch:\n%s", want, text)
		}
	}

	// A delivered request counts normally.
	resp2, raw2 := postPredict(t, hs.URL, `{"chars":{"size":64}}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, raw2)
	}
	if text := scrapeMetrics(t, hs.URL); !strings.Contains(text, `bfserve_predictions_total{model="default"} 1`) {
		t.Fatalf("delivered prediction not counted:\n%s", text)
	}
}

// TestModelEndpointReportsEngine: /v1/model (and every predict answer) names
// the inference engine — "flat" for a fitted model, "flat(<enc>)" for one
// loaded from a quantized bundle.
func TestModelEndpointReportsEngine(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{})
	var rep ModelReport
	resp, err := http.Get(hs.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model.Engine != "flat" {
		t.Fatalf("fitted model engine = %q, want flat", rep.Model.Engine)
	}

	var buf bytes.Buffer
	if err := ps.SaveQuantized(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadProblemScaler(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, qhs := newTestServer(t, loaded, Config{})
	resp, err = http.Get(qhs.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rep.Model.Engine, "flat(") {
		t.Fatalf("quantized model engine = %q, want flat(<enc>)", rep.Model.Engine)
	}
	pr, raw := postPredict(t, qhs.URL, `{"chars":{"size":512}}`)
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("quantized-loaded model predict status %d: %s", pr.StatusCode, raw)
	}
	var predResp PredictResponse
	if err := json.Unmarshal(raw, &predResp); err != nil {
		t.Fatal(err)
	}
	if predResp.Model.Engine != rep.Model.Engine {
		t.Fatalf("predict engine %q != model engine %q", predResp.Model.Engine, rep.Model.Engine)
	}
}
