package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyWindow bounds the per-endpoint latency samples kept for quantile
// estimation: a ring buffer of the most recent observations, so /metrics
// reports recent behavior at O(1) memory.
const latencyWindow = 2048

// batchBuckets are the upper bounds of the coalesced micro-batch size
// histogram (a final +Inf bucket is implicit).
var batchBuckets = [...]float64{1, 2, 4, 8, 16, 32, 64, 128}

// metrics aggregates request counts, a sliding latency window, per-model
// prediction counts, the micro-batch size histogram, reload outcomes, and
// cache statistics, rendered in Prometheus text exposition format on
// /metrics.
type metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // "path|code" → count

	latencies []float64 // seconds; ring buffer
	latPos    int
	latCount  int64
	latSum    float64

	predictions map[string]int64 // model name → delivered predictions
	cacheHits   int64
	cacheMisses int64

	batchCounts [len(batchBuckets) + 1]int64 // per-bucket (non-cumulative)
	batchSum    int64
	batchN      int64

	reloads        int64 // models successfully (re)loaded
	reloadFailures int64 // bundle loads that failed during a reload

	shed     int64 // requests rejected by load shedding
	injected int64 // faults injected by the chaos layer
	panics   int64 // panics recovered into 500 answers
}

func newMetrics() *metrics {
	return &metrics{
		requests:    make(map[string]int64),
		latencies:   make([]float64, 0, latencyWindow),
		predictions: make(map[string]int64),
	}
}

// observe records one completed request.
func (m *metrics) observe(path string, code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s|%d", path, code)]++
	if len(m.latencies) < latencyWindow {
		m.latencies = append(m.latencies, sec)
	} else {
		m.latencies[m.latPos] = sec
		m.latPos = (m.latPos + 1) % latencyWindow
	}
	m.latCount++
	m.latSum += sec
}

// addPredictions counts served predictions for one model, split by cache
// outcome.
func (m *metrics) addPredictions(model string, hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.predictions[model] += hits + misses
	m.cacheHits += hits
	m.cacheMisses += misses
}

// observeBatch records one drained micro-batch of n coalesced predicts.
func (m *metrics) observeBatch(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := len(batchBuckets)
	for i, ub := range batchBuckets {
		if float64(n) <= ub {
			b = i
			break
		}
	}
	m.batchCounts[b]++
	m.batchSum += int64(n)
	m.batchN++
}

// modelPredictions returns the delivered-prediction count for one model.
func (m *metrics) modelPredictions(model string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.predictions[model]
}

// addReloads counts models successfully (re)loaded by a registry reload.
func (m *metrics) addReloads(n int) {
	m.mu.Lock()
	m.reloads += int64(n)
	m.mu.Unlock()
}

// addReloadFailure counts one bundle that failed to load during a reload
// (the previous snapshot keeps serving).
func (m *metrics) addReloadFailure() {
	m.mu.Lock()
	m.reloadFailures++
	m.mu.Unlock()
}

// addShed counts one load-shed request.
func (m *metrics) addShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// addInjected counts one injected fault (latency spike or handler error).
func (m *metrics) addInjected() {
	m.mu.Lock()
	m.injected++
	m.mu.Unlock()
}

// addPanic counts one panic recovered into a 500 answer.
func (m *metrics) addPanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// quantile returns the q-quantile of sorted xs (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// scrapeStats carries the point-in-time gauges the server computes at
// scrape: the registered model names and the summed per-model cache
// occupancy.
type scrapeStats struct {
	modelNames []string // sorted registry names; zero-valued counters are emitted for each
	routes     []string // instrumented route labels; unhit ones emit zero-valued counters
	cacheSize  int
	cacheCap   int
}

// writePrometheus renders the metrics in Prometheus text format.
func (m *metrics) writePrometheus(w io.Writer, st scrapeStats) {
	cacheSize, cacheCap := st.cacheSize, st.cacheCap
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = m.requests[k]
	}
	window := append([]float64(nil), m.latencies...)
	latCount, latSum := m.latCount, m.latSum
	// Every registered model gets a bfserve_predictions_total line, zero
	// included, so counters exist from the first scrape; models that were
	// unregistered by a reload keep their counted history.
	nameSet := make(map[string]bool, len(m.predictions)+len(st.modelNames))
	for name := range m.predictions {
		nameSet[name] = true
	}
	for _, name := range st.modelNames {
		nameSet[name] = true
	}
	models := make([]string, 0, len(nameSet))
	for name := range nameSet {
		models = append(models, name)
	}
	sort.Strings(models)
	perModel := make([]int64, len(models))
	for i, name := range models {
		perModel[i] = m.predictions[name]
	}
	hits, misses := m.cacheHits, m.cacheMisses
	batchCounts := m.batchCounts
	batchSum, batchN := m.batchSum, m.batchN
	reloads, reloadFailures := m.reloads, m.reloadFailures
	shed, injected, panics := m.shed, m.injected, m.panics
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP bfserve_requests_total Completed HTTP requests by path and status code.")
	fmt.Fprintln(w, "# TYPE bfserve_requests_total counter")
	seenPath := make(map[string]bool, len(keys))
	for i, k := range keys {
		path, code := k, ""
		if j := strings.LastIndexByte(k, '|'); j >= 0 {
			path, code = k[:j], k[j+1:]
		}
		seenPath[path] = true
		fmt.Fprintf(w, "bfserve_requests_total{path=%q,code=%q} %d\n", path, code, counts[i])
	}
	// Routes that have not been hit still expose a zero-valued series, so
	// a rate() over any route is well-defined from the first scrape.
	for _, route := range st.routes {
		if !seenPath[route] {
			fmt.Fprintf(w, "bfserve_requests_total{path=%q,code=\"200\"} 0\n", route)
		}
	}

	sort.Float64s(window)
	fmt.Fprintln(w, "# HELP bfserve_request_duration_seconds Request latency over a sliding window.")
	fmt.Fprintln(w, "# TYPE bfserve_request_duration_seconds summary")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "bfserve_request_duration_seconds{quantile=\"%g\"} %g\n", q, quantile(window, q))
	}
	fmt.Fprintf(w, "bfserve_request_duration_seconds_sum %g\n", latSum)
	fmt.Fprintf(w, "bfserve_request_duration_seconds_count %d\n", latCount)

	fmt.Fprintln(w, "# HELP bfserve_predictions_total Characteristic vectors predicted per model (cache hits included).")
	fmt.Fprintln(w, "# TYPE bfserve_predictions_total counter")
	for i, name := range models {
		fmt.Fprintf(w, "bfserve_predictions_total{model=%q} %d\n", name, perModel[i])
	}

	fmt.Fprintln(w, "# HELP bfserve_batch_size Coalesced micro-batch sizes at drain.")
	fmt.Fprintln(w, "# TYPE bfserve_batch_size histogram")
	var cum int64
	for i, ub := range batchBuckets {
		cum += batchCounts[i]
		fmt.Fprintf(w, "bfserve_batch_size_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += batchCounts[len(batchBuckets)]
	fmt.Fprintf(w, "bfserve_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "bfserve_batch_size_sum %d\n", batchSum)
	fmt.Fprintf(w, "bfserve_batch_size_count %d\n", batchN)

	fmt.Fprintln(w, "# HELP bfserve_reloads_total Models successfully (re)loaded by the registry.")
	fmt.Fprintln(w, "# TYPE bfserve_reloads_total counter")
	fmt.Fprintf(w, "bfserve_reloads_total %d\n", reloads)
	fmt.Fprintln(w, "# HELP bfserve_reload_failures_total Bundle loads that failed during a reload (previous model kept serving).")
	fmt.Fprintln(w, "# TYPE bfserve_reload_failures_total counter")
	fmt.Fprintf(w, "bfserve_reload_failures_total %d\n", reloadFailures)

	fmt.Fprintln(w, "# HELP bfserve_models Models currently registered.")
	fmt.Fprintln(w, "# TYPE bfserve_models gauge")
	fmt.Fprintf(w, "bfserve_models %d\n", len(st.modelNames))

	fmt.Fprintln(w, "# HELP bfserve_cache_hits_total Prediction cache hits.")
	fmt.Fprintln(w, "# TYPE bfserve_cache_hits_total counter")
	fmt.Fprintf(w, "bfserve_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP bfserve_cache_misses_total Prediction cache misses.")
	fmt.Fprintln(w, "# TYPE bfserve_cache_misses_total counter")
	fmt.Fprintf(w, "bfserve_cache_misses_total %d\n", misses)

	fmt.Fprintln(w, "# HELP bfserve_shed_total Requests rejected by load shedding.")
	fmt.Fprintln(w, "# TYPE bfserve_shed_total counter")
	fmt.Fprintf(w, "bfserve_shed_total %d\n", shed)
	fmt.Fprintln(w, "# HELP bfserve_injected_faults_total Faults injected by the chaos layer.")
	fmt.Fprintln(w, "# TYPE bfserve_injected_faults_total counter")
	fmt.Fprintf(w, "bfserve_injected_faults_total %d\n", injected)

	fmt.Fprintln(w, "# HELP bfserve_panics_total Panics recovered into 500 answers.")
	fmt.Fprintln(w, "# TYPE bfserve_panics_total counter")
	fmt.Fprintf(w, "bfserve_panics_total %d\n", panics)

	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintln(w, "# HELP bfserve_cache_hit_rate Fraction of predictions served from cache.")
	fmt.Fprintln(w, "# TYPE bfserve_cache_hit_rate gauge")
	fmt.Fprintf(w, "bfserve_cache_hit_rate %g\n", rate)

	fmt.Fprintln(w, "# HELP bfserve_cache_entries Current prediction cache entries.")
	fmt.Fprintln(w, "# TYPE bfserve_cache_entries gauge")
	fmt.Fprintf(w, "bfserve_cache_entries %d\n", cacheSize)
	fmt.Fprintln(w, "# HELP bfserve_cache_capacity Prediction cache capacity (0 = disabled).")
	fmt.Fprintln(w, "# TYPE bfserve_cache_capacity gauge")
	fmt.Fprintf(w, "bfserve_cache_capacity %d\n", cacheCap)
}
