package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyWindow bounds the per-endpoint latency samples kept for quantile
// estimation: a ring buffer of the most recent observations, so /metrics
// reports recent behavior at O(1) memory.
const latencyWindow = 2048

// metrics aggregates request counts, a sliding latency window, and cache
// statistics, rendered in Prometheus text exposition format on /metrics.
type metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // "path|code" → count

	latencies []float64 // seconds; ring buffer
	latPos    int
	latCount  int64
	latSum    float64

	predictions int64
	cacheHits   int64
	cacheMisses int64

	shed     int64 // requests rejected by load shedding
	injected int64 // faults injected by the chaos layer
	panics   int64 // panics recovered into 500 answers
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[string]int64),
		latencies: make([]float64, 0, latencyWindow),
	}
}

// observe records one completed request.
func (m *metrics) observe(path string, code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s|%d", path, code)]++
	if len(m.latencies) < latencyWindow {
		m.latencies = append(m.latencies, sec)
	} else {
		m.latencies[m.latPos] = sec
		m.latPos = (m.latPos + 1) % latencyWindow
	}
	m.latCount++
	m.latSum += sec
}

// addPredictions counts served predictions split by cache outcome.
func (m *metrics) addPredictions(hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.predictions += hits + misses
	m.cacheHits += hits
	m.cacheMisses += misses
}

// addShed counts one load-shed request.
func (m *metrics) addShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// addInjected counts one injected fault (latency spike or handler error).
func (m *metrics) addInjected() {
	m.mu.Lock()
	m.injected++
	m.mu.Unlock()
}

// addPanic counts one panic recovered into a 500 answer.
func (m *metrics) addPanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// quantile returns the q-quantile of sorted xs (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// writePrometheus renders the metrics in Prometheus text format.
func (m *metrics) writePrometheus(w io.Writer, cacheSize, cacheCap int) {
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = m.requests[k]
	}
	window := append([]float64(nil), m.latencies...)
	latCount, latSum := m.latCount, m.latSum
	predictions, hits, misses := m.predictions, m.cacheHits, m.cacheMisses
	shed, injected, panics := m.shed, m.injected, m.panics
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP bfserve_requests_total Completed HTTP requests by path and status code.")
	fmt.Fprintln(w, "# TYPE bfserve_requests_total counter")
	for i, k := range keys {
		path, code := k, ""
		if j := strings.LastIndexByte(k, '|'); j >= 0 {
			path, code = k[:j], k[j+1:]
		}
		fmt.Fprintf(w, "bfserve_requests_total{path=%q,code=%q} %d\n", path, code, counts[i])
	}

	sort.Float64s(window)
	fmt.Fprintln(w, "# HELP bfserve_request_duration_seconds Request latency over a sliding window.")
	fmt.Fprintln(w, "# TYPE bfserve_request_duration_seconds summary")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "bfserve_request_duration_seconds{quantile=\"%g\"} %g\n", q, quantile(window, q))
	}
	fmt.Fprintf(w, "bfserve_request_duration_seconds_sum %g\n", latSum)
	fmt.Fprintf(w, "bfserve_request_duration_seconds_count %d\n", latCount)

	fmt.Fprintln(w, "# HELP bfserve_predictions_total Characteristic vectors predicted (cache hits included).")
	fmt.Fprintln(w, "# TYPE bfserve_predictions_total counter")
	fmt.Fprintf(w, "bfserve_predictions_total %d\n", predictions)

	fmt.Fprintln(w, "# HELP bfserve_cache_hits_total Prediction cache hits.")
	fmt.Fprintln(w, "# TYPE bfserve_cache_hits_total counter")
	fmt.Fprintf(w, "bfserve_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP bfserve_cache_misses_total Prediction cache misses.")
	fmt.Fprintln(w, "# TYPE bfserve_cache_misses_total counter")
	fmt.Fprintf(w, "bfserve_cache_misses_total %d\n", misses)

	fmt.Fprintln(w, "# HELP bfserve_shed_total Requests rejected by load shedding.")
	fmt.Fprintln(w, "# TYPE bfserve_shed_total counter")
	fmt.Fprintf(w, "bfserve_shed_total %d\n", shed)
	fmt.Fprintln(w, "# HELP bfserve_injected_faults_total Faults injected by the chaos layer.")
	fmt.Fprintln(w, "# TYPE bfserve_injected_faults_total counter")
	fmt.Fprintf(w, "bfserve_injected_faults_total %d\n", injected)

	fmt.Fprintln(w, "# HELP bfserve_panics_total Panics recovered into 500 answers.")
	fmt.Fprintln(w, "# TYPE bfserve_panics_total counter")
	fmt.Fprintf(w, "bfserve_panics_total %d\n", panics)

	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintln(w, "# HELP bfserve_cache_hit_rate Fraction of predictions served from cache.")
	fmt.Fprintln(w, "# TYPE bfserve_cache_hit_rate gauge")
	fmt.Fprintf(w, "bfserve_cache_hit_rate %g\n", rate)

	fmt.Fprintln(w, "# HELP bfserve_cache_entries Current prediction cache entries.")
	fmt.Fprintln(w, "# TYPE bfserve_cache_entries gauge")
	fmt.Fprintf(w, "bfserve_cache_entries %d\n", cacheSize)
	fmt.Fprintln(w, "# HELP bfserve_cache_capacity Prediction cache capacity (0 = disabled).")
	fmt.Fprintln(w, "# TYPE bfserve_cache_capacity gauge")
	fmt.Fprintf(w, "bfserve_cache_capacity %d\n", cacheCap)
}
