package serve

// Request coalescing: single-vector predicts queue into micro-batches that
// drain through the forest's tree-major flat batch path (one pass of every
// tree over the whole batch, cache-hot node arrays) instead of walking the
// forest once per request. A batch drains when it reaches maxSize or when
// the oldest queued request has waited window — the classic
// throughput-for-bounded-latency trade. Because the flat batch path is
// bit-identical to the per-row walk, a coalesced prediction returns exactly
// the bytes the request would have gotten alone; coalescing changes
// scheduling, never results.

import (
	"sync"
	"time"
)

// coalesceReq is one queued single predict: its input, its cache identity,
// and the channel its caller waits on. p and err are valid once done closes.
type coalesceReq struct {
	chars map[string]float64
	key   string // canonical vector key; "" when unkeyable
	keyed bool
	done  chan struct{}
	p     Prediction
	err   error
}

// coalescer accumulates single predicts for one model snapshot and drains
// them as micro-batches. It is created per snapshot: requests that enqueued
// before a hot-reload swap drain on the snapshot they resolved, so a reload
// never splits a batch across model versions.
type coalescer struct {
	window  time.Duration
	maxSize int
	drain   func([]*coalesceReq) // runs outside the lock, in its own goroutine

	mu      sync.Mutex
	pending []*coalesceReq
	timer   *time.Timer
}

func newCoalescer(window time.Duration, maxSize int, drain func([]*coalesceReq)) *coalescer {
	if maxSize <= 0 {
		maxSize = 32
	}
	return &coalescer{window: window, maxSize: maxSize, drain: drain}
}

// enqueue adds one request to the forming batch. The first request arms the
// window timer; reaching maxSize flushes immediately.
func (c *coalescer) enqueue(req *coalesceReq) {
	c.mu.Lock()
	c.pending = append(c.pending, req)
	if len(c.pending) >= c.maxSize {
		c.flushLocked()
		c.mu.Unlock()
		return
	}
	if len(c.pending) == 1 {
		c.timer = time.AfterFunc(c.window, c.flush)
	}
	c.mu.Unlock()
}

// flush drains whatever is pending (the window expired).
func (c *coalescer) flush() {
	c.mu.Lock()
	c.flushLocked()
	c.mu.Unlock()
}

// flushLocked hands the pending batch to the drain goroutine and resets the
// queue. Caller holds c.mu.
func (c *coalescer) flushLocked() {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if len(c.pending) == 0 {
		return
	}
	batch := c.pending
	c.pending = nil
	go c.drain(batch)
}
