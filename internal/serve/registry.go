package serve

// Multi-model registry: one bfserve process serving many (kernel × device ×
// version) bundles, routed by model name. The registry owns an atomically
// swappable view of name → modelSnapshot; request handlers resolve their
// snapshot once and use it for the whole request, so a concurrent reload
// never changes a model under an in-flight prediction — old requests finish
// on the old snapshot, new requests see the new one. Per-model LRU caches
// and singleflight tables live inside the snapshot, so a swap naturally
// invalidates them.
//
// Models come from one of three sources:
//
//   - a directory of bundles (every *.json file, named by its base name)
//   - a manifest.json inside that directory, mapping names to bundle files
//     and optionally electing the default model
//   - a single bundle file or in-memory scaler (the legacy one-model mode),
//     registered under the name "default"
//
// Reloads are driven by SIGHUP (cmd/bfserve) or an fsnotify-free mtime
// watch loop: each pass re-stats every source and reloads only bundles
// whose (path, mtime, size) changed. A bundle that fails to load during a
// reload degrades gracefully — the previous snapshot keeps serving and
// bfserve_reload_failures_total counts the failure; the server never
// crashes or drops a model that was healthy before the reload.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blackforest/internal/core"
)

// ManifestName is the optional per-directory model manifest file.
const ManifestName = "manifest.json"

// Manifest maps model names to bundle files within a models directory.
type Manifest struct {
	// Default optionally elects the model answering the legacy
	// single-model routes (/v1/predict, /v1/model). When empty, the
	// lexicographically first model name is the default.
	Default string          `json:"default,omitempty"`
	Models  []ManifestModel `json:"models"`
}

// ManifestModel is one manifest entry.
type ManifestModel struct {
	Name string `json:"name"`
	// Path is the bundle file, relative to the manifest's directory.
	Path string `json:"path"`
}

// DecodeManifest parses and validates a models-directory manifest: strict
// JSON, non-empty unique names, relative paths that cannot escape the
// directory. Hostile input returns an error, never panics.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("invalid manifest JSON: %w", err)
	}
	if dec.More() {
		return nil, errors.New("trailing data after manifest object")
	}
	if len(m.Models) == 0 {
		return nil, errors.New("manifest lists no models")
	}
	seen := make(map[string]bool, len(m.Models))
	for i, e := range m.Models {
		if e.Name == "" {
			return nil, fmt.Errorf("manifest model %d has no name", i)
		}
		if strings.ContainsAny(e.Name, "/\\") {
			return nil, fmt.Errorf("manifest model name %q contains a path separator", e.Name)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("manifest names model %q twice", e.Name)
		}
		seen[e.Name] = true
		if e.Path == "" {
			return nil, fmt.Errorf("manifest model %q has no path", e.Name)
		}
		if filepath.IsAbs(e.Path) {
			return nil, fmt.Errorf("manifest model %q has an absolute path", e.Name)
		}
		clean := filepath.Clean(e.Path)
		if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("manifest model %q path escapes the models directory", e.Name)
		}
	}
	if m.Default != "" && !seen[m.Default] {
		return nil, fmt.Errorf("manifest default %q is not a listed model", m.Default)
	}
	return &m, nil
}

// modelSource is one on-disk bundle discovered by a scan: identity plus the
// change signature (mtime, size) the watch loop compares.
type modelSource struct {
	name  string
	path  string
	mtime time.Time
	size  int64
}

// modelSnapshot is the immutable serving state of one loaded model version.
// Everything a request needs — scaler, cache, singleflight table, coalescer
// — hangs off the snapshot, so requests that resolved it before a swap keep
// a fully consistent model until they finish.
type modelSnapshot struct {
	name    string
	version int // bumps on every successful (re)load of this name
	path    string
	mtime   time.Time
	size    int64
	loaded  time.Time

	scaler *core.ProblemScaler
	cache  *lruCache

	flightMu sync.Mutex
	flight   map[string]*flightCall

	coal *coalescer // nil when micro-batch coalescing is disabled
}

// registryView is one immutable generation of the registry: swapped
// atomically as a whole, so readers always see a consistent model set and
// default election.
type registryView struct {
	models      map[string]*modelSnapshot
	defaultName string
	names       []string // sorted
}

// Registry resolves model names to snapshots and reloads them from disk.
type Registry struct {
	mu   sync.Mutex // serializes loads and reloads
	view atomic.Pointer[registryView]

	// scan enumerates the current model sources; nil for a static
	// in-memory registry (no reload possible).
	scan func() ([]modelSource, string, error)
	// loader reads one bundle; swapped by cmd/bfserve to thread fault
	// injection into the read path.
	loader func(path string) (*core.ProblemScaler, error)
	// override forces the default model name regardless of manifest.
	override string
	// onLoad decorates each fresh snapshot (the server attaches the
	// per-model coalescer here).
	onLoad func(*modelSnapshot)

	cacheSize int
	metrics   *metrics
	versions  map[string]int // name → last assigned version (guarded by mu)
}

func newRegistry(cacheSize int, m *metrics) *Registry {
	r := &Registry{
		loader:    core.LoadProblemScalerFile,
		cacheSize: cacheSize,
		metrics:   m,
		versions:  make(map[string]int),
	}
	r.view.Store(&registryView{models: map[string]*modelSnapshot{}})
	return r
}

// scanDir enumerates a models directory: manifest.json when present,
// otherwise every *.json bundle named by its base name.
func scanDir(dir string) ([]modelSource, string, error) {
	manifestPath := filepath.Join(dir, ManifestName)
	if f, err := os.Open(manifestPath); err == nil {
		m, derr := func() (*Manifest, error) {
			defer f.Close()
			return DecodeManifest(f)
		}()
		if derr != nil {
			return nil, "", fmt.Errorf("%s: %w", manifestPath, derr)
		}
		sources := make([]modelSource, 0, len(m.Models))
		for _, e := range m.Models {
			src, err := statSource(e.Name, filepath.Join(dir, e.Path))
			if err != nil {
				return nil, "", err
			}
			sources = append(sources, src)
		}
		sortSources(sources)
		return sources, m.Default, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var sources []modelSource
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || e.Name() == ManifestName {
			continue
		}
		src, err := statSource(strings.TrimSuffix(e.Name(), ".json"), filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, "", err
		}
		sources = append(sources, src)
	}
	sortSources(sources)
	return sources, "", nil
}

func statSource(name, path string) (modelSource, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return modelSource{}, err
	}
	return modelSource{name: name, path: path, mtime: fi.ModTime(), size: fi.Size()}, nil
}

func sortSources(s []modelSource) {
	sort.Slice(s, func(i, j int) bool { return s[i].name < s[j].name })
}

// loadStatic installs a single in-memory scaler under name — the legacy
// one-model mode; the registry cannot reload it.
func (r *Registry) loadStatic(name string, ps *core.ProblemScaler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions[name] = 1
	snap := r.newSnapshot(modelSource{name: name}, ps)
	r.view.Store(&registryView{
		models:      map[string]*modelSnapshot{name: snap},
		defaultName: name,
		names:       []string{name},
	})
}

func (r *Registry) newSnapshot(src modelSource, ps *core.ProblemScaler) *modelSnapshot {
	snap := &modelSnapshot{
		name:    src.name,
		version: r.versions[src.name],
		path:    src.path,
		mtime:   src.mtime,
		size:    src.size,
		loaded:  time.Now(),
		scaler:  ps,
		cache:   newLRUCache(r.cacheSize),
		flight:  make(map[string]*flightCall),
	}
	if r.onLoad != nil {
		r.onLoad(snap)
	}
	return snap
}

// Reload rescans the sources and atomically swaps in a new view. Unchanged
// bundles (same path, mtime, size) keep their snapshot — cache and all;
// changed or new bundles are loaded fresh with an invalidated cache and a
// bumped version. A bundle that fails to load keeps its previous snapshot
// serving (degrade, never crash) and counts in
// bfserve_reload_failures_total. Reload returns how many models were
// (re)loaded and the per-model load errors.
func (r *Registry) Reload() (changed int, errs []error) {
	if r.scan == nil {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	sources, manifestDefault, err := r.scan()
	if err != nil {
		// The scan itself failed (directory unreadable, manifest
		// corrupt): keep the entire previous view serving.
		r.metrics.addReloadFailure()
		return 0, []error{err}
	}
	old := r.view.Load()
	next := make(map[string]*modelSnapshot, len(sources))
	for _, src := range sources {
		prev, had := old.models[src.name]
		if had && prev.path == src.path && prev.mtime.Equal(src.mtime) && prev.size == src.size {
			next[src.name] = prev
			continue
		}
		ps, err := r.loader(src.path)
		if err != nil {
			r.metrics.addReloadFailure()
			errs = append(errs, fmt.Errorf("model %s (%s): %w", src.name, src.path, err))
			if had {
				next[src.name] = prev // previous version keeps serving
			}
			continue
		}
		r.versions[src.name]++
		next[src.name] = r.newSnapshot(src, ps)
		changed++
	}
	if len(next) == 0 {
		// Refuse to swap to an empty registry: an all-failing reload must
		// not take down a serving process.
		if len(old.models) > 0 {
			errs = append(errs, errors.New("reload produced no loadable models; keeping previous set"))
			return changed, errs
		}
		errs = append(errs, errors.New("no loadable models"))
		return changed, errs
	}
	names := make([]string, 0, len(next))
	for n := range next {
		names = append(names, n)
	}
	sort.Strings(names)
	r.view.Store(&registryView{
		models:      next,
		defaultName: r.electDefault(next, manifestDefault, names),
		names:       names,
	})
	if changed > 0 {
		r.metrics.addReloads(changed)
	}
	return changed, errs
}

// electDefault picks the default model: explicit override first, then the
// manifest's election, then the lexicographically first name.
func (r *Registry) electDefault(models map[string]*modelSnapshot, manifestDefault string, sorted []string) string {
	if r.override != "" {
		if _, ok := models[r.override]; ok {
			return r.override
		}
	}
	if manifestDefault != "" {
		if _, ok := models[manifestDefault]; ok {
			return manifestDefault
		}
	}
	return sorted[0]
}

// Watch polls the sources every interval and reloads on change, until ctx
// is done. It is the fsnotify-free hot-reload loop: Reload itself compares
// (path, mtime, size) per model, so an idle tick costs a handful of stats
// and swaps nothing. Per-model load failures are reported through onError
// (nil = dropped) and bfserve_reload_failures_total; the loop itself never
// stops on them.
func (r *Registry) Watch(ctx context.Context, interval time.Duration, onError func(error)) {
	if r.scan == nil || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, errs := r.Reload()
			if onError != nil {
				for _, err := range errs {
					onError(err)
				}
			}
		}
	}
}

// resolve returns the snapshot for name, or the default model when name is
// empty (the legacy routes).
func (r *Registry) resolve(name string) (*modelSnapshot, bool) {
	v := r.view.Load()
	if name == "" {
		name = v.defaultName
	}
	snap, ok := v.models[name]
	return snap, ok
}

// defaultSnapshot returns the current default model's snapshot.
func (r *Registry) defaultSnapshot() *modelSnapshot {
	snap, _ := r.resolve("")
	return snap
}

// list returns the current snapshots sorted by name, plus the default name.
func (r *Registry) list() ([]*modelSnapshot, string) {
	v := r.view.Load()
	out := make([]*modelSnapshot, 0, len(v.names))
	for _, n := range v.names {
		out = append(out, v.models[n])
	}
	return out, v.defaultName
}
