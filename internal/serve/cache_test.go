package serve

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", Prediction{TimeMS: 1})
	c.put("b", Prediction{TimeMS: 2})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// "a" was just used, so inserting "c" must evict "b".
	c.put("c", Prediction{TimeMS: 3})
	if _, ok := c.get("b"); ok {
		t.Fatal("least recently used entry not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("new entry missing")
	}
	if c.size() != 2 {
		t.Fatalf("size %d, want 2", c.size())
	}
}

func TestLRUCacheUpdateInPlace(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", Prediction{TimeMS: 1})
	c.put("a", Prediction{TimeMS: 9})
	if c.size() != 1 {
		t.Fatalf("size %d after duplicate put", c.size())
	}
	p, _ := c.get("a")
	if p.TimeMS != 9 {
		t.Fatalf("stale value %v", p.TimeMS)
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	if newLRUCache(0) != nil || newLRUCache(-5) != nil {
		t.Fatal("non-positive capacity should disable the cache")
	}
}

// TestLRUCacheConcurrent exercises the lock under -race.
func TestLRUCacheConcurrent(t *testing.T) {
	c := newLRUCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.put(key, Prediction{TimeMS: float64(i)})
				c.get(key)
				c.size()
			}
		}(g)
	}
	wg.Wait()
	if c.size() > 8 {
		t.Fatalf("cache overflowed: %d entries", c.size())
	}
}

func TestVectorKey(t *testing.T) {
	names := []string{"size", "block_size"}
	k1, ok := vectorKey(names, map[string]float64{"size": 64, "block_size": 256})
	if !ok {
		t.Fatal("complete vector not keyed")
	}
	k2, _ := vectorKey(names, map[string]float64{"block_size": 256, "size": 64})
	if k1 != k2 {
		t.Fatal("key depends on map iteration order")
	}
	k3, _ := vectorKey(names, map[string]float64{"size": 65, "block_size": 256})
	if k1 == k3 {
		t.Fatal("different vectors share a key")
	}
	// Extra characteristics the model doesn't read must not change the key:
	// the prediction function ignores them, so the cache must too.
	k4, _ := vectorKey(names, map[string]float64{"size": 64, "block_size": 256, "extra": 1})
	if k1 != k4 {
		t.Fatal("unread characteristic changed the key")
	}
	if _, ok := vectorKey(names, map[string]float64{"size": 64}); ok {
		t.Fatal("incomplete vector keyed")
	}
	// +0 and -0 are distinct bit patterns; treating them as distinct keys is
	// safe (worst case a duplicate cache entry), but they must both key.
	kp, okp := vectorKey(names, map[string]float64{"size": 0, "block_size": 1})
	kn, okn := vectorKey(names, map[string]float64{"size": math.Copysign(0, -1), "block_size": 1})
	if !okp || !okn {
		t.Fatal("zero-valued vectors not keyed")
	}
	if kp == kn {
		t.Fatal("+0 and -0 collided despite distinct bit patterns")
	}
}
