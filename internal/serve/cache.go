package serve

import (
	"container/list"
	"math"
	"strconv"
	"sync"
)

// lruCache is a bounded, mutex-protected LRU map from canonical
// characteristic-vector keys to computed predictions. Predictions are a
// pure function of the characteristic vector (the forest and counter models
// are immutable once loaded), so caching cannot serve stale results.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	val Prediction
}

// newLRUCache returns a cache holding at most capacity entries, or nil
// (caching disabled) when capacity <= 0.
func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached prediction for key and marks it most recently used.
func (c *lruCache) get(key string) (Prediction, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Prediction{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a prediction, evicting the least recently used
// entry when full.
func (c *lruCache) put(key string, v Prediction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry).key)
		}
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: v})
}

// size returns the current entry count.
func (c *lruCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// vectorKey builds the canonical cache key for a characteristic vector:
// the exact bit patterns of the values in charNames order. Two vectors map
// to the same key iff every characteristic the model reads is bit-identical,
// so a cache hit returns exactly what recomputation would.
func vectorKey(charNames []string, chars map[string]float64) (string, bool) {
	buf := make([]byte, 0, len(charNames)*17)
	for _, n := range charNames {
		v, ok := chars[n]
		if !ok {
			return "", false
		}
		buf = strconv.AppendUint(buf, math.Float64bits(v), 16)
		buf = append(buf, '|')
	}
	return string(buf), true
}
