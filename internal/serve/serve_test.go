package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blackforest/internal/core"
	"blackforest/internal/dataset"
	"blackforest/internal/forest"
	"blackforest/internal/stats"
)

// testScaler trains a small ProblemScaler on synthetic data where size
// drives the counters and the counters drive time (the core package's
// fixture shape, rebuilt here since test helpers don't cross packages).
func testScaler(t testing.TB, seed uint64) *core.ProblemScaler {
	t.Helper()
	rng := stats.NewRNG(seed)
	n := 100
	sizes := make([]float64, n)
	driver := make([]float64, n)
	secondary := make([]float64, n)
	times := make([]float64, n)
	for i := 0; i < n; i++ {
		s := float64(64 * (1 + rng.Intn(64)))
		sizes[i] = s
		driver[i] = 3*s + rng.NormFloat64()
		secondary[i] = math.Sqrt(s) * 10
		times[i] = 0.001*s + 0.0001*secondary[i] + 0.002*rng.NormFloat64()
	}
	frame, err := dataset.FromColumns(
		[]string{"size", "driver_counter", "secondary_counter", core.ResponseColumn},
		[][]float64{sizes, driver, secondary, times},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Forest = forest.Config{NTrees: 60}
	cfg.Seed = seed
	a, err := core.Analyze(frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := core.NewProblemScaler(a, 3, core.AutoModel)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func newTestServer(t testing.TB, ps *core.ProblemScaler, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Scaler = ps
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postPredict(t testing.TB, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestPredictSingleMatchesDirect: the HTTP answer must carry time_ms
// bit-identical to an in-process PredictTime call — JSON float encoding in
// Go round-trips float64 exactly, so == is the right comparison.
func TestPredictSingleMatchesDirect(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{})

	for _, size := range []float64{64, 100, 512, 1000, 4096} {
		want, _, err := ps.PredictDetail(map[string]float64{"size": size})
		if err != nil {
			t.Fatal(err)
		}
		resp, raw := postPredict(t, hs.URL, fmt.Sprintf(`{"chars":{"size":%g}}`, size))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("size %v: status %d: %s", size, resp.StatusCode, raw)
		}
		var pr PredictResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatalf("size %v: %v", size, err)
		}
		if len(pr.Predictions) != 1 {
			t.Fatalf("size %v: %d predictions", size, len(pr.Predictions))
		}
		if got := pr.Predictions[0].TimeMS; got != want {
			t.Fatalf("size %v: HTTP %v != direct %v", size, got, want)
		}
		if pr.Model.BundleVersion != core.BundleVersion || pr.Model.Response != ps.Response() {
			t.Fatalf("size %v: wrong model metadata: %+v", size, pr.Model)
		}
		if len(pr.Predictions[0].Counters) != len(ps.Models) {
			t.Fatalf("size %v: %d counters in response, model has %d",
				size, len(pr.Predictions[0].Counters), len(ps.Models))
		}
	}
}

// TestPredictConcurrentMixed hammers the server with interleaved single and
// batch requests from many goroutines (run under -race in CI) and checks
// every answer against the direct computation.
func TestPredictConcurrentMixed(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{Workers: 4, CacheSize: 8})

	sizes := []float64{64, 128, 256, 512, 1024, 2048, 4096, 100, 300, 999}
	want := make(map[float64]float64, len(sizes))
	for _, s := range sizes {
		v, err := ps.PredictTime(map[string]float64{"size": s})
		if err != nil {
			t.Fatal(err)
		}
		want[s] = v
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				if (g+rep)%2 == 0 {
					// Single request.
					s := sizes[(g+rep)%len(sizes)]
					resp, err := http.Post(hs.URL+"/v1/predict", "application/json",
						strings.NewReader(fmt.Sprintf(`{"chars":{"size":%g}}`, s)))
					if err != nil {
						errCh <- err
						return
					}
					var pr PredictResponse
					err = json.NewDecoder(resp.Body).Decode(&pr)
					resp.Body.Close()
					if err != nil {
						errCh <- err
						return
					}
					if pr.Predictions[0].TimeMS != want[s] {
						errCh <- fmt.Errorf("single size %v: got %v want %v", s, pr.Predictions[0].TimeMS, want[s])
						return
					}
				} else {
					// Batch request over all sizes.
					var rows []string
					for _, s := range sizes {
						rows = append(rows, fmt.Sprintf(`{"size":%g}`, s))
					}
					body := `{"batch":[` + strings.Join(rows, ",") + `]}`
					resp, err := http.Post(hs.URL+"/v1/predict", "application/json", strings.NewReader(body))
					if err != nil {
						errCh <- err
						return
					}
					var pr PredictResponse
					err = json.NewDecoder(resp.Body).Decode(&pr)
					resp.Body.Close()
					if err != nil {
						errCh <- err
						return
					}
					if len(pr.Predictions) != len(sizes) {
						errCh <- fmt.Errorf("batch returned %d rows", len(pr.Predictions))
						return
					}
					for i, s := range sizes {
						if pr.Predictions[i].TimeMS != want[s] {
							errCh <- fmt.Errorf("batch row %d size %v: got %v want %v",
								i, s, pr.Predictions[i].TimeMS, want[s])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestMalformedRequestsReturn400JSON: every malformed body must yield a 400
// with a JSON error object, never a panic or an empty reply.
func TestMalformedRequestsReturn400JSON(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{MaxBatch: 4})

	cases := []string{
		``,
		`not json`,
		`{}`,
		`{"bogus":1}`,
		`{"chars":{"size":64},"batch":[{"size":64}]}`,
		`{"batch":[]}`,
		`{"batch":[null]}`,
		`{"batch":[{"size":1},{"size":2},{"size":3},{"size":4},{"size":5}]}`,
		`{"chars":{"size":64}} trailing`,
		`{"chars":{"wrong_characteristic":1}}`,
		`{"chars":{"size":"sixty-four"}}`,
	}
	for _, body := range cases {
		resp, raw := postPredict(t, hs.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("body %q: content type %q", body, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("body %q: error reply not JSON: %s", body, raw)
		}
	}

	// Wrong method.
	resp, err := http.Get(hs.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict: status %d, want 405", resp.StatusCode)
	}
}

// TestCacheHitReturnsSameBytes: a repeated identical request must be served
// from the cache with a byte-identical body, and the metrics must say so.
func TestCacheHitReturnsSameBytes(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{CacheSize: 16})

	body := `{"chars":{"size":768}}`
	resp1, raw1 := postPredict(t, hs.URL, body)
	resp2, raw2 := postPredict(t, hs.URL, body)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("cache hit changed the response bytes:\n%s\n%s", raw1, raw2)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mraw)
	for _, want := range []string{
		"bfserve_cache_hits_total 1",
		"bfserve_cache_misses_total 1",
		"bfserve_cache_hit_rate 0.5",
		`bfserve_predictions_total{model="default"} 2`,
		`bfserve_requests_total{path="/v1/predict",code="200"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestCacheDisabled: negative cache size must serve correctly with no cache.
func TestCacheDisabled(t *testing.T) {
	ps := testScaler(t, 3)
	s, hs := newTestServer(t, ps, Config{CacheSize: -1})
	if s.registry.defaultSnapshot().cache != nil {
		t.Fatal("cache not disabled")
	}
	resp, raw := postPredict(t, hs.URL, `{"chars":{"size":256}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
}

// TestModelEndpoint sanity-checks GET /v1/model.
func TestModelEndpoint(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{})

	resp, err := http.Get(hs.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rep ModelReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Model.BundleVersion != core.BundleVersion {
		t.Fatalf("bundle version %d", rep.Model.BundleVersion)
	}
	if rep.NumTrees != ps.Reduced.Forest.NumTrees() {
		t.Fatalf("num_trees %d", rep.NumTrees)
	}
	if len(rep.Importance) != len(ps.Reduced.Predictors) {
		t.Fatalf("%d importance rows for %d predictors", len(rep.Importance), len(rep.Predictors))
	}
	if len(rep.CounterModels) != len(ps.Models) {
		t.Fatalf("%d counter models reported, scaler has %d", len(rep.CounterModels), len(ps.Models))
	}
}

func TestHealthz(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestGracefulShutdownCompletesInFlight cancels the serve context while a
// request is held in flight by the test hook; the request must still get its
// 200, and new connections must be refused afterwards.
func TestGracefulShutdownCompletesInFlight(t *testing.T) {
	ps := testScaler(t, 3)
	s, err := New(Config{Scaler: ps, ShutdownGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.testHookPredict = func() {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	type result struct {
		code int
		raw  []byte
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/predict", "application/json",
			strings.NewReader(`{"chars":{"size":640}}`))
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		reqDone <- result{code: resp.StatusCode, raw: raw}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the predictor")
	}
	cancel() // begin graceful shutdown with the request in flight
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case r := <-reqDone:
		if r.err != nil {
			t.Fatalf("in-flight request failed during shutdown: %v", r.err)
		}
		if r.code != 200 {
			t.Fatalf("in-flight request got %d: %s", r.code, r.raw)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestSaveLoadServeBitIdentical is the acceptance criterion end to end: a
// bundle written by the training side, loaded the way cmd/bfserve loads it,
// must answer over HTTP with the same time_ms (to the last bit) as the
// in-process scaler it was saved from.
func TestSaveLoadServeBitIdentical(t *testing.T) {
	trained := testScaler(t, 9)
	path := t.TempDir() + "/model.json"
	if err := trained.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadProblemScalerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, loaded, Config{})

	for _, size := range []float64{64, 137, 512, 2048, 4096} {
		want, err := trained.PredictTime(map[string]float64{"size": size})
		if err != nil {
			t.Fatal(err)
		}
		resp, raw := postPredict(t, hs.URL, fmt.Sprintf(`{"chars":{"size":%g}}`, size))
		if resp.StatusCode != 200 {
			t.Fatalf("size %v: status %d: %s", size, resp.StatusCode, raw)
		}
		var pr PredictResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		if got := pr.Predictions[0].TimeMS; got != want {
			t.Fatalf("size %v: served %v != trained in-process %v", size, got, want)
		}
	}
}

// FuzzDecodePredictRequest: arbitrary bytes must never panic the decoder.
func FuzzDecodePredictRequest(f *testing.F) {
	f.Add([]byte(`{"chars":{"size":64}}`))
	f.Add([]byte(`{"batch":[{"size":64},{"size":128}]}`))
	f.Add([]byte(`{"chars":{"size":64},"batch":[]}`))
	f.Add([]byte(`{"batch":[null]}`))
	f.Add([]byte(`{"bogus":1}`))
	f.Add([]byte(`{"chars":{"size":"NaN"}}`))
	f.Add([]byte(``))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodePredictRequest(bytes.NewReader(data), 8)
		if err != nil {
			return
		}
		// Decoded requests must satisfy the documented invariants.
		if (req.Chars != nil) == (req.Batch != nil) {
			t.Fatalf("decoder returned both or neither of chars/batch: %+v", req)
		}
		if req.Batch != nil {
			if len(req.Batch) == 0 || len(req.Batch) > 8 {
				t.Fatalf("decoder let through batch of %d rows", len(req.Batch))
			}
			for i, row := range req.Batch {
				if row == nil {
					t.Fatalf("decoder let through null row %d", i)
				}
			}
		}
	})
}
