package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"blackforest/internal/core"
)

// saveBundle trains nothing new: it writes an already-fitted scaler to path
// the way cmd/blackforest -save does.
func saveBundle(t *testing.T, ps *core.ProblemScaler, path string) {
	t.Helper()
	if err := ps.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

// predictVia posts a single-vector predict to route and returns the
// response time_ms (asserting 200).
func predictVia(t *testing.T, baseURL, route string, size float64) float64 {
	t.Helper()
	resp, err := http.Post(baseURL+route, "application/json",
		strings.NewReader(fmt.Sprintf(`{"chars":{"size":%g}}`, size)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", route, resp.StatusCode)
	}
	if len(pr.Predictions) != 1 {
		t.Fatalf("%s: %d predictions", route, len(pr.Predictions))
	}
	return pr.Predictions[0].TimeMS
}

// TestRegistryRoutesByName: a directory of two bundles serves both models
// concurrently, routed by name; the legacy routes answer from the default
// (lexicographically first without a manifest); unknown names are 404s.
func TestRegistryRoutesByName(t *testing.T) {
	psA, psB := testScaler(t, 3), testScaler(t, 9)
	dir := t.TempDir()
	saveBundle(t, psA, filepath.Join(dir, "alpha.json"))
	saveBundle(t, psB, filepath.Join(dir, "beta.json"))

	s, err := New(Config{ModelsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, s)

	wantA, _, err := psA.PredictDetail(map[string]float64{"size": 512})
	if err != nil {
		t.Fatal(err)
	}
	wantB, _, err := psB.PredictDetail(map[string]float64{"size": 512})
	if err != nil {
		t.Fatal(err)
	}
	if wantA == wantB {
		t.Fatal("fixture models predict identically; routing test is vacuous")
	}

	cases := []struct {
		route string
		want  float64
	}{
		{"/v1/models/alpha/predict", wantA},
		{"/v1/models/beta/predict", wantB},
		{"/v1/predict", wantA}, // legacy route → default = lexicographic first
	}
	for _, c := range cases {
		if got := predictVia(t, hs.URL, c.route, 512); got != c.want {
			t.Errorf("%s: got %v want %v", c.route, got, c.want)
		}
	}

	// Unknown model names answer 404 with a JSON error, on both routes.
	for _, route := range []string{"/v1/models/gamma/predict", "/v1/models/gamma"} {
		var resp *http.Response
		var err error
		if strings.HasSuffix(route, "/predict") {
			resp, err = http.Post(hs.URL+route, "application/json",
				strings.NewReader(`{"chars":{"size":64}}`))
		} else {
			resp, err = http.Get(hs.URL + route)
		}
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		derr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", route, resp.StatusCode)
		}
		if derr != nil || !strings.Contains(e.Error, `unknown model "gamma"`) {
			t.Fatalf("%s: error body %+v, %v", route, e, derr)
		}
	}

	// GET /v1/models lists both with identity and stats.
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list ModelsResponse
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if list.Default != "alpha" || len(list.Models) != 2 {
		t.Fatalf("models listing: default %q, %d models", list.Default, len(list.Models))
	}
	for i, want := range []string{"alpha", "beta"} {
		m := list.Models[i]
		if m.Name != want || m.Version != 1 || m.Engine == "" || m.NumTrees == 0 {
			t.Fatalf("model %d listing: %+v", i, m)
		}
		if m.Default != (want == "alpha") {
			t.Fatalf("model %s default flag: %+v", want, m)
		}
	}

	// /v1/models/{name} serves the per-model report.
	resp, err = http.Get(hs.URL + "/v1/models/beta")
	if err != nil {
		t.Fatal(err)
	}
	var rep ModelReport
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model.Name != "beta" || rep.Model.ModelVersion != 1 {
		t.Fatalf("per-model report identity: %+v", rep.Model)
	}
}

// newHTTPServer wraps an already-built Server in an httptest server.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// TestManifestElectsDefault: manifest.json names the models, elects the
// default, and Config.DefaultModel overrides the manifest.
func TestManifestElectsDefault(t *testing.T) {
	psA, psB := testScaler(t, 3), testScaler(t, 9)
	dir := t.TempDir()
	saveBundle(t, psA, filepath.Join(dir, "a.json"))
	saveBundle(t, psB, filepath.Join(dir, "b.json"))
	manifest := `{"default":"beta","models":[
		{"name":"alpha","path":"a.json"},
		{"name":"beta","path":"b.json"}]}`
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	wantB, _, err := psB.PredictDetail(map[string]float64{"size": 256})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{ModelsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, s)
	if got := predictVia(t, hs.URL, "/v1/predict", 256); got != wantB {
		t.Fatalf("manifest default not honored: got %v want %v (beta)", got, wantB)
	}
	names, def := s.Models()
	if def != "beta" || len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Models() = %v, %q", names, def)
	}

	// Explicit override beats the manifest election.
	wantA, _, err := psA.PredictDetail(map[string]float64{"size": 256})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{ModelsDir: dir, DefaultModel: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := newHTTPServer(t, s2)
	if got := predictVia(t, hs2.URL, "/v1/predict", 256); got != wantA {
		t.Fatalf("DefaultModel override not honored: got %v want %v (alpha)", got, wantA)
	}
}

// TestDecodeManifestRejectsHostileInput: every malformed manifest must fail
// with a descriptive error, never panic or silently load.
func TestDecodeManifestRejectsHostileInput(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"empty", ``, "invalid manifest"},
		{"not json", `nope`, "invalid manifest"},
		{"no models", `{"models":[]}`, "no models"},
		{"unknown field", `{"modles":[{"name":"a","path":"a.json"}]}`, "invalid manifest"},
		{"trailing data", `{"models":[{"name":"a","path":"a.json"}]} x`, "trailing data"},
		{"unnamed model", `{"models":[{"name":"","path":"a.json"}]}`, "no name"},
		{"separator in name", `{"models":[{"name":"a/b","path":"a.json"}]}`, "path separator"},
		{"duplicate name", `{"models":[{"name":"a","path":"a.json"},{"name":"a","path":"b.json"}]}`, "twice"},
		{"missing path", `{"models":[{"name":"a","path":""}]}`, "no path"},
		{"absolute path", `{"models":[{"name":"a","path":"/etc/passwd"}]}`, "absolute"},
		{"escaping path", `{"models":[{"name":"a","path":"../../secrets.json"}]}`, "escapes"},
		{"unlisted default", `{"default":"b","models":[{"name":"a","path":"a.json"}]}`, "not a listed model"},
	}
	for _, c := range cases {
		m, err := DecodeManifest(strings.NewReader(c.body))
		if err == nil {
			t.Errorf("%s: decoded %+v, want error", c.name, m)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// A well-formed manifest decodes.
	m, err := DecodeManifest(strings.NewReader(
		`{"default":"a","models":[{"name":"a","path":"sub/a.json"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Default != "a" || len(m.Models) != 1 || m.Models[0].Path != "sub/a.json" {
		t.Fatalf("decoded %+v", m)
	}
}

// TestHotReloadSwapsAtomically is the reload acceptance test: while one
// request is held in flight on the old model, the bundle file is replaced
// and Reload swaps the registry. The in-flight request must answer from the
// model it started on; the next request must answer from the new one, with
// a bumped version and an empty (invalidated) cache.
func TestHotReloadSwapsAtomically(t *testing.T) {
	psOld, psNew := testScaler(t, 3), testScaler(t, 9)
	path := filepath.Join(t.TempDir(), "model.json")
	saveBundle(t, psOld, path)

	s, err := New(Config{ModelPath: path, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookPredict = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	hs := newHTTPServer(t, s)

	wantOld, _, err := psOld.PredictDetail(map[string]float64{"size": 512})
	if err != nil {
		t.Fatal(err)
	}
	wantNew, _, err := psNew.PredictDetail(map[string]float64{"size": 512})
	if err != nil {
		t.Fatal(err)
	}
	if wantOld == wantNew {
		t.Fatal("fixture models predict identically; swap test is vacuous")
	}

	// Hold one request in flight on the current (old) snapshot.
	type result struct {
		time float64
		err  error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/v1/predict", "application/json",
			strings.NewReader(`{"chars":{"size":512}}`))
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		var pr PredictResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil || len(pr.Predictions) != 1 {
			inFlight <- result{err: fmt.Errorf("bad response: %v %+v", err, pr)}
			return
		}
		inFlight <- result{time: pr.Predictions[0].TimeMS}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the predictor")
	}

	// Replace the bundle on disk and force a distinct change signature
	// (mtime granularity on some filesystems is a full second).
	saveBundle(t, psNew, path)
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	changed, errs := s.Reload()
	if len(errs) > 0 {
		t.Fatalf("reload errors: %v", errs)
	}
	if changed != 1 {
		t.Fatalf("reload changed %d models, want 1", changed)
	}

	// The held request finishes on the old snapshot.
	close(release)
	select {
	case r := <-inFlight:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.time != wantOld {
			t.Fatalf("in-flight request answered %v, want old model's %v", r.time, wantOld)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	// A fresh request answers from the new model; the swap invalidated the
	// cache, so this is a recomputation, not a stale hit.
	if got := predictVia(t, hs.URL, "/v1/predict", 512); got != wantNew {
		t.Fatalf("post-reload request answered %v, want new model's %v", got, wantNew)
	}
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list ModelsResponse
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 1 || list.Models[0].Version != 2 {
		t.Fatalf("post-reload listing: %+v", list.Models)
	}
	text := scrapeMetrics(t, hs.URL)
	if !strings.Contains(text, "bfserve_reloads_total 2") { // initial load + swap
		t.Fatalf("metrics missing bfserve_reloads_total 2:\n%s", text)
	}
}

// TestReloadUnchangedKeepsSnapshotAndCache: a reload that finds identical
// (path, mtime, size) signatures must swap nothing — the snapshot survives,
// cache included, so idle watch ticks are free.
func TestReloadUnchangedKeepsSnapshotAndCache(t *testing.T) {
	ps := testScaler(t, 3)
	dir := t.TempDir()
	saveBundle(t, ps, filepath.Join(dir, "only.json"))
	s, err := New(Config{ModelsDir: dir, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, s)

	first := predictVia(t, hs.URL, "/v1/predict", 640) // miss, fills cache
	changed, errs := s.Reload()
	if changed != 0 || len(errs) != 0 {
		t.Fatalf("no-op reload: changed %d, errs %v", changed, errs)
	}
	second := predictVia(t, hs.URL, "/v1/predict", 640)
	if first != second {
		t.Fatalf("prediction changed across no-op reload: %v vs %v", first, second)
	}
	text := scrapeMetrics(t, hs.URL)
	if !strings.Contains(text, "bfserve_cache_hits_total 1") {
		t.Fatalf("cache did not survive a no-op reload:\n%s", text)
	}
}

// FuzzDecodeManifest: arbitrary bytes must never panic the manifest
// decoder, and anything it accepts must satisfy the documented invariants.
func FuzzDecodeManifest(f *testing.F) {
	f.Add([]byte(`{"default":"a","models":[{"name":"a","path":"a.json"}]}`))
	f.Add([]byte(`{"models":[{"name":"a","path":"a.json"},{"name":"b","path":"sub/b.json"}]}`))
	f.Add([]byte(`{"models":[{"name":"a","path":"../escape.json"}]}`))
	f.Add([]byte(`{"models":[{"name":"a/b","path":"a.json"}]}`))
	f.Add([]byte(`{"models":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(m.Models) == 0 {
			t.Fatal("decoder accepted a manifest with no models")
		}
		seen := make(map[string]bool)
		for _, e := range m.Models {
			if e.Name == "" || e.Path == "" {
				t.Fatalf("decoder accepted empty name/path: %+v", e)
			}
			if seen[e.Name] {
				t.Fatalf("decoder accepted duplicate name %q", e.Name)
			}
			seen[e.Name] = true
			if strings.ContainsAny(e.Name, "/\\") {
				t.Fatalf("decoder accepted name with separator: %q", e.Name)
			}
			if filepath.IsAbs(e.Path) {
				t.Fatalf("decoder accepted absolute path %q", e.Path)
			}
			clean := filepath.Clean(e.Path)
			if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
				t.Fatalf("decoder accepted escaping path %q", e.Path)
			}
		}
		if m.Default != "" && !seen[m.Default] {
			t.Fatalf("decoder accepted unlisted default %q", m.Default)
		}
	})
}
