package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blackforest/internal/core"
	"blackforest/internal/faults"
)

func TestChaosInjectedErrorsDeterministic(t *testing.T) {
	ps := testScaler(t, 3)
	statuses := func() []int {
		_, hs := newTestServer(t, ps, Config{
			Faults: faults.New(faults.Config{Seed: 42, ServeError: 0.5}),
		})
		var out []int
		for i := 0; i < 20; i++ {
			resp, raw := postPredict(t, hs.URL, `{"chars":{"size":256}}`)
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusInternalServerError:
				if !strings.Contains(string(raw), "injected fault") {
					t.Fatalf("500 without injected-fault marker: %s", raw)
				}
			default:
				t.Fatalf("unexpected status %d: %s", resp.StatusCode, raw)
			}
			out = append(out, resp.StatusCode)
		}
		return out
	}
	a, b := statuses(), b2i(t, statuses)
	okA, errA := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: status %d vs %d across identical servers", i, a[i], b[i])
		}
		if a[i] == http.StatusOK {
			okA++
		} else {
			errA++
		}
	}
	if okA == 0 || errA == 0 {
		t.Fatalf("error=0.5 over 20 requests gave %d ok / %d injected", okA, errA)
	}
}

// b2i just invokes the closure; it keeps the two sequences visually paired.
func b2i(t *testing.T, f func() []int) []int {
	t.Helper()
	return f()
}

func TestChaosInjectedErrorCountsInMetrics(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{
		Faults: faults.New(faults.Config{Seed: 1, ServeError: 1}),
	})
	resp, raw := postPredict(t, hs.URL, `{"chars":{"size":256}}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	// Health and model endpoints are not in the injection path.
	for _, path := range []string{"/healthz", "/v1/model"} {
		r, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s returned %d under predict-only injection", path, r.StatusCode)
		}
	}
	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, _ := io.ReadAll(mr.Body)
	if !strings.Contains(string(body), "bfserve_injected_faults_total 1") {
		t.Fatalf("metrics do not count the injected fault:\n%s", body)
	}
}

func TestChaosInjectedLatencyBoundedByTimeout(t *testing.T) {
	ps := testScaler(t, 3)
	_, hs := newTestServer(t, ps, Config{
		RequestTimeout: 80 * time.Millisecond,
		Faults: faults.New(faults.Config{
			Seed: 1, ServeLatency: 1, LatencySpike: 10 * time.Second,
		}),
	})
	start := time.Now()
	resp, raw := postPredict(t, hs.URL, `{"chars":{"size":256}}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (want 503 from the timeout handler): %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "timed out") {
		t.Fatalf("timeout body missing: %s", raw)
	}
	// The injected 10s spike is bounded by the request deadline: the
	// response arrives at ~80ms, far before the spike would elapse.
	if elapsed > 5*time.Second {
		t.Fatalf("request took %v; injected sleep ignored the deadline", elapsed)
	}
}

func TestChaosLoadShedding(t *testing.T) {
	ps := testScaler(t, 3)
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s, hs := newTestServer(t, ps, Config{
		MaxInFlight: 1,
		CacheSize:   -1, // every request reaches the predict hook
	})
	s.testHookPredict = func() {
		entered <- struct{}{}
		<-release
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(hs.URL+"/v1/predict", "application/json",
			strings.NewReader(`{"chars":{"size":256}}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered // first request is now holding the only in-flight slot

	resp, raw := postPredict(t, hs.URL, `{"chars":{"size":512}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request got %d (want 503 shed): %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "overloaded") {
		t.Fatalf("shed body: %s", raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	close(release)
	wg.Wait()

	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, _ := io.ReadAll(mr.Body)
	if !strings.Contains(string(body), "bfserve_shed_total 1") {
		t.Fatalf("metrics do not count the shed request:\n%s", body)
	}
}

func TestChaosDeadlineStopsBatchWork(t *testing.T) {
	ps := testScaler(t, 3)
	var rowsPredicted atomic.Int64
	s, hs := newTestServer(t, ps, Config{
		RequestTimeout: 60 * time.Millisecond,
		Workers:        1,
		CacheSize:      -1,
	})
	s.testHookPredict = func() {
		rowsPredicted.Add(1)
		time.Sleep(5 * time.Millisecond)
	}

	const rows = 400
	var sb strings.Builder
	sb.WriteString(`{"batch":[`)
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"size":%d}`, 64+i)
	}
	sb.WriteString(`]}`)

	resp, raw := postPredict(t, hs.URL, sb.String())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (want 503 timeout): %s", resp.StatusCode, raw)
	}
	// Give the abandoned handler goroutine a moment to observe ctx.Err
	// and stop, then confirm it did not grind through the whole batch.
	deadline := time.Now().Add(2 * time.Second)
	var settled int64
	for time.Now().Before(deadline) {
		n := rowsPredicted.Load()
		time.Sleep(50 * time.Millisecond)
		if rowsPredicted.Load() == n {
			settled = n
			break
		}
	}
	if settled == 0 || settled >= rows {
		t.Fatalf("predicted %d of %d rows after timeout; deadline not propagated", settled, rows)
	}
}

// TestChaosReloadFailureKeepsPreviousModel: a watch-loop reload whose
// bundle read is fault-injected (truncated) must leave the previous model
// serving — same answers, model still listed — while
// bfserve_reload_failures_total counts the failure. Degrade, never crash.
func TestChaosReloadFailureKeepsPreviousModel(t *testing.T) {
	ps := testScaler(t, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "only.json")
	if err := ps.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// The loader reads faithfully once (initial load), then through a
	// truncating injector: every subsequent reload fails mid-read the way
	// a half-written bundle or failing disk would.
	truncating := faults.New(faults.Config{Seed: 9, TruncateReads: 1})
	var loads atomic.Int64
	loader := func(p string) (*core.ProblemScaler, error) {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var r io.Reader = f
		if loads.Add(1) > 1 {
			r = truncating.WrapReader(f, faults.HashString(p))
		}
		return core.LoadProblemScaler(r)
	}
	s, err := New(Config{ModelsDir: dir, Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, s)
	want := predictVia(t, hs.URL, "/v1/predict", 512)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reloadErrs := make(chan error, 16)
	go s.Watch(ctx, 5*time.Millisecond, func(err error) {
		select {
		case reloadErrs <- err:
		default:
		}
	})

	// Touch the bundle so the next watch tick sees a changed signature and
	// attempts the (now failing) reload.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-reloadErrs:
		if !strings.Contains(err.Error(), "unexpected EOF") {
			t.Fatalf("reload error %q does not carry the truncation cause", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch loop never reported the failing reload")
	}

	// The previous model keeps serving identical answers.
	if got := predictVia(t, hs.URL, "/v1/predict", 512); got != want {
		t.Fatalf("prediction changed after failed reload: %v vs %v", got, want)
	}
	names, _ := s.Models()
	if len(names) != 1 || names[0] != "only" {
		t.Fatalf("model dropped after failed reload: %v", names)
	}
	text := scrapeMetrics(t, hs.URL)
	i := strings.Index(text, "\nbfserve_reload_failures_total ")
	if i < 0 {
		t.Fatalf("metrics missing bfserve_reload_failures_total:\n%s", text)
	}
	var failures int
	if _, err := fmt.Sscanf(text[i+1:], "bfserve_reload_failures_total %d", &failures); err != nil || failures < 1 {
		t.Fatalf("bfserve_reload_failures_total = %d (%v), want >= 1", failures, err)
	}
}

func TestChaosFaultsOffBitIdentical(t *testing.T) {
	ps := testScaler(t, 3)
	_, plain := newTestServer(t, ps, Config{})
	_, nilInj := newTestServer(t, ps, Config{
		Faults:      faults.New(faults.Config{Seed: 7}), // disabled → nil
		MaxInFlight: 64,
	})
	for _, size := range []float64{64, 256, 1024} {
		body := fmt.Sprintf(`{"chars":{"size":%g}}`, size)
		r1, raw1 := postPredict(t, plain.URL, body)
		r2, raw2 := postPredict(t, nilInj.URL, body)
		if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
			t.Fatalf("status %d / %d", r1.StatusCode, r2.StatusCode)
		}
		var p1, p2 PredictResponse
		if err := json.Unmarshal(raw1, &p1); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw2, &p2); err != nil {
			t.Fatal(err)
		}
		if p1.Predictions[0].TimeMS != p2.Predictions[0].TimeMS {
			t.Fatalf("faults-off server predicts differently at size %g", size)
		}
	}
}
