// Package serve exposes a fitted ProblemScaler as a concurrent HTTP
// prediction service: the train-once / predict-cheaply split the serving
// north star needs. A model bundle trained by cmd/blackforest -save is
// loaded once; every query is then answered from the in-memory forest and
// counter models, with a bounded LRU cache in front (predictions are a pure
// function of the characteristic vector, so caching is sound).
//
// Endpoints:
//
//	POST /v1/predict  single {"chars": {...}} or batched {"batch": [...]}
//	GET  /v1/model    model metadata, importance table, validation stats
//	GET  /healthz     liveness
//	GET  /metrics     Prometheus text: request counts, latency quantiles,
//	                  cache hit rate
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blackforest/internal/buildinfo"
	"blackforest/internal/core"
	"blackforest/internal/faults"
	"blackforest/internal/obs"
)

// DefaultModelName is the registry name of the model behind the legacy
// single-model routes when no manifest or override elects one.
const DefaultModelName = "default"

// Config configures the prediction server. Exactly one model source is
// required: Scaler (in-memory), ModelPath (one bundle file, reloadable), or
// ModelsDir (a directory of bundles, optionally with a manifest.json).
type Config struct {
	// Scaler is an in-memory prediction model, registered as the default
	// model. It cannot be hot-reloaded.
	Scaler *core.ProblemScaler
	// ModelPath is a single bundle file, registered as the default model
	// and reloadable in place (SIGHUP / watch loop).
	ModelPath string
	// ModelsDir is a directory of model bundles: every *.json file, named
	// by its base name, or the models listed in its manifest.json.
	ModelsDir string
	// DefaultModel optionally names the model behind the legacy
	// single-model routes, overriding the manifest's election and the
	// lexicographic fallback.
	DefaultModel string
	// Loader reads one bundle file (nil = core.LoadProblemScalerFile);
	// cmd/bfserve substitutes a fault-injecting reader for chaos testing.
	Loader func(path string) (*core.ProblemScaler, error)
	// BatchWindow enables micro-batch coalescing of single predicts: a
	// queued request waits at most this long for batch-mates before the
	// batch drains through the tree-major flat path (0 = coalescing off).
	BatchWindow time.Duration
	// BatchMaxSize caps a coalesced micro-batch (0 = 32).
	BatchMaxSize int
	// CacheSize bounds the LRU prediction cache in entries
	// (0 = default 1024, negative = caching disabled).
	CacheSize int
	// Workers bounds concurrent per-row prediction inside one batch
	// request (0 = all CPUs).
	Workers int
	// RequestTimeout caps each request's handling time (0 = 15s).
	RequestTimeout time.Duration
	// ShutdownGrace is how long Serve waits for in-flight requests after
	// the context is canceled (0 = 10s).
	ShutdownGrace time.Duration
	// MaxBatch caps rows per batched request (0 = 4096).
	MaxBatch int
	// MaxBodyBytes caps the request body (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxInFlight bounds concurrently handled predict requests; excess
	// requests are shed immediately with 503 instead of queuing behind
	// the worker pool (0 = default 256, negative = no shedding).
	MaxInFlight int
	// Faults optionally injects latency spikes and handler errors for
	// chaos testing; nil serves faithfully.
	Faults *faults.Injector
	// AccessLog optionally receives one structured record per completed
	// request (request id, method, path, status, duration); nil disables
	// access logging. Logging never changes response bytes.
	AccessLog *slog.Logger
	// SlowRequest is the duration at which an access-logged request is
	// escalated from Info to Warn with slow=true (0 = 1s).
	SlowRequest time.Duration
	// Extra optionally merges additional metric families into the
	// /metrics scrape — e.g. run-cache counters registered with
	// runcache.RegisterMetrics. The server renders it after its own
	// families; callers must avoid reusing bfserve_* names it emits.
	Extra *obs.Registry
}

// Server is the HTTP prediction service over a model registry.
type Server struct {
	registry *Registry
	cacheN   int
	workers  int
	timeout  time.Duration
	grace    time.Duration
	maxRows  int
	maxBody  int64
	metrics  *metrics

	// batchWindow/batchMax configure micro-batch coalescing of single
	// predicts; window 0 disables it.
	batchWindow time.Duration
	batchMax    int

	// inflight is the load-shedding semaphore for /v1/predict; nil
	// disables shedding.
	inflight chan struct{}
	// faults injects serve-side chaos (nil = off); reqID numbers predict
	// requests so injection decisions are per-request deterministic.
	faults *faults.Injector
	reqID  atomic.Uint64

	// accessLog receives one record per completed request (nil = off);
	// requests slower than slowReq escalate to Warn. nextID numbers
	// requests for the X-Request-ID header — separate from reqID so
	// enabling access logs never shifts fault-injection decisions.
	accessLog *slog.Logger
	slowReq   time.Duration
	nextID    atomic.Uint64

	// obsReg holds the server's own registry-backed series (per-stage
	// latency histograms); extra is the caller-provided registry merged
	// into the scrape after it. stageQueue/stageCoalesce/stageInference
	// split predict latency into pre-compute overhead, coalescer queueing,
	// and model inference.
	obsReg         *obs.Registry
	extra          *obs.Registry
	stageQueue     *obs.Histogram
	stageCoalesce  *obs.Histogram
	stageInference *obs.Histogram

	// testHookPredict, when set, runs before each uncached prediction;
	// tests use it to hold requests in flight across a shutdown.
	testHookPredict func()
}

// New validates the configuration, builds a server, and performs the
// initial model load.
func New(cfg Config) (*Server, error) {
	nsrc := 0
	for _, set := range []bool{cfg.Scaler != nil, cfg.ModelPath != "", cfg.ModelsDir != ""} {
		if set {
			nsrc++
		}
	}
	if nsrc != 1 {
		return nil, errors.New("serve: exactly one of Config.Scaler, Config.ModelPath, Config.ModelsDir is required")
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 15 * time.Second
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 10 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.BatchMaxSize <= 0 {
		cfg.BatchMaxSize = 32
	}
	if cfg.SlowRequest <= 0 {
		cfg.SlowRequest = time.Second
	}
	cacheCap := cfg.CacheSize
	if cacheCap < 0 {
		cacheCap = 0
	}
	s := &Server{
		cacheN:      cacheCap,
		workers:     cfg.Workers,
		timeout:     cfg.RequestTimeout,
		grace:       cfg.ShutdownGrace,
		maxRows:     cfg.MaxBatch,
		maxBody:     cfg.MaxBodyBytes,
		metrics:     newMetrics(),
		batchWindow: cfg.BatchWindow,
		batchMax:    cfg.BatchMaxSize,
		faults:      cfg.Faults,
		accessLog:   cfg.AccessLog,
		slowReq:     cfg.SlowRequest,
		obsReg:      obs.NewRegistry(),
		extra:       cfg.Extra,
	}
	const stageHelp = "Predict latency split by stage: queue (pre-compute handler overhead), coalesce_wait (micro-batch queueing), inference (model compute)."
	s.stageQueue = s.obsReg.Histogram("bfserve_stage_duration_seconds", stageHelp,
		obs.DefaultLatencyBuckets, obs.Label{Name: "stage", Value: "queue"})
	s.stageCoalesce = s.obsReg.Histogram("bfserve_stage_duration_seconds", stageHelp,
		obs.DefaultLatencyBuckets, obs.Label{Name: "stage", Value: "coalesce_wait"})
	s.stageInference = s.obsReg.Histogram("bfserve_stage_duration_seconds", stageHelp,
		obs.DefaultLatencyBuckets, obs.Label{Name: "stage", Value: "inference"})
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}

	reg := newRegistry(cacheCap, s.metrics)
	reg.override = cfg.DefaultModel
	if cfg.Loader != nil {
		reg.loader = cfg.Loader
	}
	if s.batchWindow > 0 {
		reg.onLoad = func(snap *modelSnapshot) {
			snap.coal = newCoalescer(s.batchWindow, s.batchMax, func(reqs []*coalesceReq) {
				s.drainBatch(snap, reqs)
			})
		}
	}
	s.registry = reg

	defaultName := cfg.DefaultModel
	if defaultName == "" {
		defaultName = DefaultModelName
	}
	switch {
	case cfg.Scaler != nil:
		reg.loadStatic(defaultName, cfg.Scaler)
	case cfg.ModelPath != "":
		path := cfg.ModelPath
		reg.scan = func() ([]modelSource, string, error) {
			src, err := statSource(defaultName, path)
			if err != nil {
				return nil, "", err
			}
			return []modelSource{src}, "", nil
		}
	default:
		dir := cfg.ModelsDir
		reg.scan = func() ([]modelSource, string, error) { return scanDir(dir) }
	}
	if reg.scan != nil {
		if _, errs := reg.Reload(); len(reg.view.Load().models) == 0 {
			return nil, fmt.Errorf("serve: initial model load: %w", errors.Join(errs...))
		}
	}
	return s, nil
}

// Reload rescans the model sources and swaps changed bundles in atomically.
// See Registry.Reload.
func (s *Server) Reload() (changed int, errs []error) { return s.registry.Reload() }

// Watch runs the mtime-polling hot-reload loop until ctx is done.
func (s *Server) Watch(ctx context.Context, interval time.Duration, onError func(error)) {
	s.registry.Watch(ctx, interval, onError)
}

// Models returns the registered model names, sorted, plus the default name.
func (s *Server) Models() ([]string, string) {
	snaps, def := s.registry.list()
	names := make([]string, len(snaps))
	for i, snap := range snaps {
		names[i] = snap.name
	}
	return names, def
}

// PredictRequest is the body of POST /v1/predict: exactly one of Chars
// (single vector) or Batch (many vectors).
type PredictRequest struct {
	Chars map[string]float64   `json:"chars,omitempty"`
	Batch []map[string]float64 `json:"batch,omitempty"`
}

// Prediction is one predicted vector: the response estimate and the
// intermediate per-counter model outputs the forest consumed.
type Prediction struct {
	TimeMS   float64            `json:"time_ms"`
	Counters map[string]float64 `json:"counters"`
}

// ModelInfo is the compact model identity attached to every prediction.
type ModelInfo struct {
	// Name is the registry name the model is routed by; ModelVersion
	// bumps every time a reload swaps this name to a fresh bundle.
	Name          string   `json:"name"`
	ModelVersion  int      `json:"model_version"`
	BundleVersion int      `json:"bundle_version"`
	Response      string   `json:"response"`
	CharNames     []string `json:"char_names"`
	TestR2        float64  `json:"test_r2"`
	// Engine names the forest inference engine answering predictions:
	// "flat" for the compiled contiguous-array engine (with the bundle
	// value encoding appended when loaded from a quantized bundle, e.g.
	// "flat(dict16)"), "pointer" for the per-tree node walker.
	Engine string `json:"engine"`
}

// PredictResponse is the body answering POST /v1/predict.
type PredictResponse struct {
	Model       ModelInfo    `json:"model"`
	Predictions []Prediction `json:"predictions"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// DecodePredictRequest parses and validates a predict body: strict JSON
// (unknown fields rejected), exactly one of chars/batch, bounded batch
// size. Malformed input returns an error, never panics.
func DecodePredictRequest(r io.Reader, maxBatch int) (*PredictRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req PredictRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return nil, errors.New("trailing data after request object")
	}
	hasChars := req.Chars != nil
	hasBatch := req.Batch != nil
	switch {
	case hasChars && hasBatch:
		return nil, errors.New(`provide either "chars" or "batch", not both`)
	case !hasChars && !hasBatch:
		return nil, errors.New(`provide "chars" (single vector) or "batch" (list of vectors)`)
	case hasBatch && len(req.Batch) == 0:
		return nil, errors.New(`"batch" is empty`)
	case maxBatch > 0 && len(req.Batch) > maxBatch:
		return nil, fmt.Errorf(`"batch" has %d rows, limit is %d`, len(req.Batch), maxBatch)
	}
	for i, row := range req.Batch {
		if row == nil {
			return nil, fmt.Errorf("batch row %d is null", i)
		}
	}
	return &req, nil
}

// modelInfo builds the compact identity block for one snapshot.
func (s *Server) modelInfo(snap *modelSnapshot) ModelInfo {
	meta := snap.scaler.Meta()
	return ModelInfo{
		Name:          snap.name,
		ModelVersion:  snap.version,
		BundleVersion: meta.Version,
		Response:      meta.Response,
		CharNames:     meta.CharNames,
		TestR2:        meta.TestR2,
		Engine:        meta.Engine,
	}
}

// flightCall is one in-flight computation waiters coalesce onto; p and err
// are valid once done is closed.
type flightCall struct {
	done chan struct{}
	p    Prediction
	err  error
}

// computeOne runs the model for one characteristic vector, no cache, no
// coalescing.
func (s *Server) computeOne(snap *modelSnapshot, chars map[string]float64) (Prediction, error) {
	if s.testHookPredict != nil {
		s.testHookPredict()
	}
	t, counters, err := snap.scaler.PredictDetail(chars)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{TimeMS: t, Counters: counters}, nil
}

// predictOne answers one characteristic vector on one model snapshot,
// consulting the snapshot's cache and coalescing concurrent identical
// computations (singleflight keyed on the canonical vector key). It returns
// the prediction and whether it was served without computing (cache hit or
// coalesced onto another request's result).
func (s *Server) predictOne(snap *modelSnapshot, chars map[string]float64) (Prediction, bool, error) {
	key, keyed := vectorKey(snap.scaler.CharNames, chars)
	if !keyed {
		// Vector misses model characteristics: uncacheable, and the model
		// will report the precise missing name.
		p, err := s.computeOne(snap, chars)
		return p, false, err
	}
	if snap.cache != nil {
		if p, ok := snap.cache.get(key); ok {
			return p, true, nil
		}
	}
	snap.flightMu.Lock()
	if c, ok := snap.flight[key]; ok {
		snap.flightMu.Unlock()
		<-c.done
		return c.p, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	snap.flight[key] = c
	snap.flightMu.Unlock()
	completed := false
	defer func() {
		if !completed {
			// The computation panicked out of this frame: fail the waiters
			// (they must not hang) and let the panic keep unwinding into the
			// recover middleware / batch-worker recovery.
			c.err = errors.New("prediction panicked")
		}
		snap.flightMu.Lock()
		delete(snap.flight, key)
		snap.flightMu.Unlock()
		close(c.done)
	}()
	p, err := s.computeOne(snap, chars)
	c.p, c.err = p, err
	completed = true
	if err == nil && snap.cache != nil {
		snap.cache.put(key, p)
	}
	return p, false, err
}

// predictOneSafe is predictOne with panics converted to a *panicError, for
// batch workers: a panic inside a worker goroutine would bypass the HTTP
// recover middleware and kill the whole process.
func (s *Server) predictOneSafe(snap *modelSnapshot, chars map[string]float64) (p Prediction, hit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{v: r}
		}
	}()
	return s.predictOne(snap, chars)
}

// predictCoalesced answers one single-vector predict through the snapshot's
// micro-batch coalescer: cache first, then enqueue and wait for the batch
// drain. The drained result is bit-identical to a solo predictOne — the
// flat batch path accumulates tree contributions in the same order — so
// coalescing is invisible in the response bytes.
func (s *Server) predictCoalesced(ctx context.Context, snap *modelSnapshot, chars map[string]float64) (Prediction, bool, error) {
	key, keyed := vectorKey(snap.scaler.CharNames, chars)
	if keyed && snap.cache != nil {
		if p, ok := snap.cache.get(key); ok {
			return p, true, nil
		}
	}
	req := &coalesceReq{chars: chars, key: key, keyed: keyed, done: make(chan struct{})}
	queued := time.Now()
	snap.coal.enqueue(req)
	select {
	case <-req.done:
		s.stageCoalesce.Observe(time.Since(queued).Seconds())
		return req.p, false, req.err
	case <-ctx.Done():
		// The request's deadline fired while queued; the batch still
		// drains and warms the cache, but this caller stops waiting.
		return Prediction{}, false, ctx.Err()
	}
}

// drainBatch computes one coalesced micro-batch through the tree-major flat
// batch path and completes every queued request. Rows fail independently;
// a panic anywhere fails the whole batch with an error (never a crash —
// this runs on the coalescer's timer goroutine, outside any HTTP frame).
func (s *Server) drainBatch(snap *modelSnapshot, reqs []*coalesceReq) {
	completed := false
	defer func() {
		if r := recover(); r != nil {
			s.metrics.addPanic()
			for _, rq := range reqs {
				if !completed {
					rq.err = &panicError{v: r}
					close(rq.done)
				}
			}
		}
	}()
	rows := make([]map[string]float64, len(reqs))
	for i, rq := range reqs {
		rows[i] = rq.chars
	}
	computeStart := time.Now()
	times, counters, errs := snap.scaler.PredictDetailAll(rows)
	s.stageInference.Observe(time.Since(computeStart).Seconds())
	s.metrics.observeBatch(len(reqs))
	for i, rq := range reqs {
		if errs[i] != nil {
			rq.err = errs[i]
		} else {
			rq.p = Prediction{TimeMS: times[i], Counters: counters[i]}
			if rq.keyed && snap.cache != nil {
				snap.cache.put(rq.key, rq.p)
			}
		}
	}
	completed = true
	for _, rq := range reqs {
		close(rq.done)
	}
}

// panicError marks a prediction that panicked; handlePredict maps it to 500.
type panicError struct{ v any }

func (e *panicError) Error() string { return fmt.Sprintf("prediction panicked: %v", e.v) }

// predictRows answers a batch over the worker pool. Row order is preserved
// and results are identical for every worker count. The request context is
// observed between rows: once its deadline passes (http.TimeoutHandler
// sets one), remaining rows are abandoned and the context error returned,
// so a timed-out request stops burning CPU.
//
// Prediction/cache metrics count only delivered work: a batch that times
// out, is canceled, or fails on any row returns nothing to the client, so
// its partial hits and misses are not recorded (bfserve_predictions_total is
// a counter of answers served, not of internal model evaluations).
func (s *Server) predictRows(ctx context.Context, snap *modelSnapshot, rows []map[string]float64) ([]Prediction, error) {
	defer func(t0 time.Time) { s.stageInference.Observe(time.Since(t0).Seconds()) }(time.Now())
	out := make([]Prediction, len(rows))
	errs := make([]error, len(rows))
	var hits, misses int64

	workers := s.workers
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers <= 1 {
		for i, row := range rows {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, hit, err := s.predictOne(snap, row)
			out[i], errs[i] = p, err
			if err == nil {
				if hit {
					hits++
				} else {
					misses++
				}
			}
		}
	} else {
		var next atomic.Int64
		var ahits, amisses atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(rows) {
						return
					}
					p, hit, err := s.predictOneSafe(snap, rows[i])
					out[i], errs[i] = p, err
					if err == nil {
						if hit {
							ahits.Add(1)
						} else {
							amisses.Add(1)
						}
					}
				}
			}()
		}
		wg.Wait()
		hits, misses = ahits.Load(), amisses.Load()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	s.metrics.addPredictions(snap.name, hits, misses)
	return out, nil
}

// handlePredict serves POST /v1/predict (default model) and
// POST /v1/models/{name}/predict (routed by model name). The snapshot is
// resolved once, up front: a hot reload mid-request swaps the registry, but
// this request completes on the model it started with.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	name := r.PathValue("name")
	snap, ok := s.registry.resolve(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown model %q", name)})
		return
	}
	// Load shedding: if MaxInFlight requests are already being handled,
	// answer 503 immediately instead of queuing behind the worker pool —
	// an overloaded predictor should degrade crisply, not stall everyone.
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.metrics.addShed()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server overloaded, retry later"})
			return
		}
	}
	if s.faults != nil {
		id := s.reqID.Add(1)
		if d := s.faults.ServeDelay(id); d > 0 {
			s.metrics.addInjected()
			// Sleep is bounded by the request context so an injected
			// spike cannot outlive the request's deadline.
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
			}
		}
		if s.faults.ServeError(id) {
			s.metrics.addInjected()
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "injected fault: simulated handler failure"})
			return
		}
	}
	req, err := DecodePredictRequest(http.MaxBytesReader(w, r.Body, s.maxBody), s.maxRows)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Everything up to here — routing, shedding, chaos, decoding — is the
	// request's queue stage; compute starts now.
	s.stageQueue.Observe(time.Since(start).Seconds())
	var preds []Prediction
	if req.Chars != nil && snap.coal != nil {
		// Single predicts coalesce into micro-batches when enabled.
		p, hit, cerr := s.predictCoalesced(r.Context(), snap, req.Chars)
		if cerr == nil {
			preds = []Prediction{p}
			if hit {
				s.metrics.addPredictions(snap.name, 1, 0)
			} else {
				s.metrics.addPredictions(snap.name, 0, 1)
			}
		} else if r.Context().Err() == nil {
			cerr = fmt.Errorf("row 0: %w", cerr)
		}
		err = cerr
	} else {
		rows := req.Batch
		if req.Chars != nil {
			rows = []map[string]float64{req.Chars}
		}
		preds, err = s.predictRows(r.Context(), snap, rows)
	}
	if err != nil {
		var pe *panicError
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// http.TimeoutHandler has usually answered 503 already; the
			// code here is for callers driving the handler directly.
			code = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			code = http.StatusServiceUnavailable
		case errors.As(err, &pe):
			s.metrics.addPanic()
			code = http.StatusInternalServerError
		}
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Model: s.modelInfo(snap), Predictions: preds})
}

// ImportanceEntry is one row of the model's importance table.
type ImportanceEntry struct {
	Name          string  `json:"name"`
	IncMSE        float64 `json:"inc_mse"`
	PctIncMSE     float64 `json:"pct_inc_mse"`
	IncNodePurity float64 `json:"inc_node_purity"`
}

// CounterModelInfo summarizes one per-counter model.
type CounterModelInfo struct {
	Counter          string  `json:"counter"`
	Kind             string  `json:"kind"`
	TrainR2          float64 `json:"train_r2"`
	ResidualDeviance float64 `json:"residual_deviance"`
}

// ModelReport is the body answering GET /v1/model.
type ModelReport struct {
	Model         ModelInfo          `json:"model"`
	Predictors    []string           `json:"predictors"`
	NumTrees      int                `json:"num_trees"`
	OOBMSE        float64            `json:"oob_mse"`
	VarExplained  float64            `json:"var_explained"`
	TestMSE       float64            `json:"test_mse"`
	TestR2        float64            `json:"test_r2"`
	AvgCounterR2  float64            `json:"avg_counter_r2"`
	Importance    []ImportanceEntry  `json:"importance"`
	CounterModels []CounterModelInfo `json:"counter_models"`
}

// handleModel serves GET /v1/model (default model) and
// GET /v1/models/{name} (routed by model name).
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	name := r.PathValue("name")
	snap, ok := s.registry.resolve(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown model %q", name)})
		return
	}
	scaler := snap.scaler
	red := scaler.Reduced
	rep := ModelReport{
		Model:        s.modelInfo(snap),
		Predictors:   red.Predictors,
		NumTrees:     red.Forest.NumTrees(),
		OOBMSE:       red.OOBMSE,
		VarExplained: red.VarExplained,
		TestMSE:      red.TestMSE,
		TestR2:       red.TestR2,
		AvgCounterR2: scaler.AverageCounterR2(),
	}
	for _, imp := range red.Importance {
		rep.Importance = append(rep.Importance, ImportanceEntry(imp))
	}
	for _, name := range scaler.CounterNames() {
		cm := scaler.Models[name]
		rep.CounterModels = append(rep.CounterModels, CounterModelInfo{
			Counter:          cm.Counter,
			Kind:             cm.Kind,
			TrainR2:          cm.TrainR2,
			ResidualDeviance: cm.ResidualDeviance,
		})
	}
	writeJSON(w, http.StatusOK, rep)
}

// ModelSummary is one row of GET /v1/models: registry identity plus the
// bundle's validation stats and live serving counters.
type ModelSummary struct {
	Name          string  `json:"name"`
	Version       int     `json:"version"`
	Default       bool    `json:"default"`
	Path          string  `json:"path,omitempty"`
	LoadedUnix    int64   `json:"loaded_unix"`
	Engine        string  `json:"engine"`
	Response      string  `json:"response"`
	NumTrees      int     `json:"num_trees"`
	TestR2        float64 `json:"test_r2"`
	CounterModels int     `json:"counter_models"`
	Degraded      bool    `json:"degraded"`
	CacheEntries  int     `json:"cache_entries"`
	Predictions   int64   `json:"predictions_total"`
}

// ModelsResponse is the body answering GET /v1/models.
type ModelsResponse struct {
	Default string         `json:"default"`
	Models  []ModelSummary `json:"models"`
}

// handleModels serves GET /v1/models: every registered model with its
// name, version, engine, and stats.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	snaps, def := s.registry.list()
	resp := ModelsResponse{Default: def, Models: make([]ModelSummary, 0, len(snaps))}
	for _, snap := range snaps {
		meta := snap.scaler.Meta()
		entries := 0
		if snap.cache != nil {
			entries = snap.cache.size()
		}
		resp.Models = append(resp.Models, ModelSummary{
			Name:          snap.name,
			Version:       snap.version,
			Default:       snap.name == def,
			Path:          snap.path,
			LoadedUnix:    snap.loaded.Unix(),
			Engine:        meta.Engine,
			Response:      meta.Response,
			NumTrees:      meta.NumTrees,
			TestR2:        meta.TestR2,
			CounterModels: meta.Counters,
			Degraded:      meta.Degraded,
			CacheEntries:  entries,
			Predictions:   s.metrics.modelPredictions(snap.name),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves GET /metrics: the server's own counters, the
// build-info gauge, the registry-backed stage histograms, and any extra
// caller-provided registry, rendered as one Prometheus text scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snaps, def := s.registry.list()
	size := 0
	engine := ""
	names := make([]string, len(snaps))
	for i, snap := range snaps {
		names[i] = snap.name
		if snap.cache != nil {
			size += snap.cache.size()
		}
		if snap.name == def {
			engine = snap.scaler.Meta().Engine
		}
	}
	s.metrics.writePrometheus(w, scrapeStats{
		modelNames: names,
		routes:     serveRoutes[:],
		cacheSize:  size,
		cacheCap:   s.cacheN * len(snaps),
	})
	writeBuildInfo(w, engine)
	s.obsReg.WritePrometheus(w)
	if s.extra != nil {
		s.extra.WritePrometheus(w)
	}
}

// writeBuildInfo emits the constant-1 identity gauge: the binary's version
// and VCS revision plus the default model's inference engine. The engine
// label is resolved at scrape time so a hot reload that swaps engines (e.g.
// pointer → flat(dict16)) shows up on the next scrape.
func writeBuildInfo(w io.Writer, engine string) {
	bi := buildinfo.Get("bfserve")
	fmt.Fprintln(w, "# HELP bfserve_build_info Build and serving identity; the value is always 1.")
	fmt.Fprintln(w, "# TYPE bfserve_build_info gauge")
	fmt.Fprintf(w, "bfserve_build_info{version=%q,revision=%q,go=%q,engine=%q} 1\n",
		bi.Version, bi.ShortRevision(), bi.GoVersion, engine)
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request identification, counting, latency
// recording, and (when configured) structured access logging. Every response
// carries an X-Request-ID header — the client's own, when it sent one, else
// a server-assigned sequence number — correlating responses with log lines.
// Only headers change: response bodies stay byte-identical whether or not
// logging is enabled.
func (s *Server) instrument(path string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = "bfserve-" + strconv.FormatUint(s.nextID.Add(1), 10)
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, r)
		d := time.Since(start)
		s.metrics.observe(path, rec.code, d)
		if s.accessLog != nil {
			slow := d >= s.slowReq
			level := slog.LevelInfo
			if slow {
				level = slog.LevelWarn
			}
			s.accessLog.LogAttrs(r.Context(), level, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.code),
				slog.Duration("duration", d),
				slog.Bool("slow", slow),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// recovered wraps a handler with a recover-to-500 backstop: a panic
// anywhere in request handling (http.TimeoutHandler re-raises its inner
// goroutine's panics in this frame) answers a JSON 500 instead of tearing
// down the connection — one bad predict can never take the server down.
// Batch workers carry their own recovery (predictOneSafe): a panic in a
// worker goroutine would bypass any middleware and kill the process.
func (s *Server) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.metrics.addPanic()
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: fmt.Sprintf("internal error: %v", p)})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// serveRoutes are the instrumented route labels, in registration order.
// /metrics emits a zero-valued request counter for any route that has not
// been hit yet, so dashboards see the full route set from the first scrape.
var serveRoutes = [...]string{
	"/v1/predict", "/v1/model", "/v1/models/predict", "/v1/models/model",
	"/v1/models", "/healthz", "/metrics",
}

// Handler returns the service's HTTP handler: the prediction endpoints are
// instrumented, panic-recovered, and bounded by the per-request timeout.
// The legacy single-model routes (/v1/predict, /v1/model) answer from the
// registry's default model; /v1/models/{name}/... routes by model name.
func (s *Server) Handler() http.Handler {
	timeoutBody := `{"error":"request timed out"}`
	mux := http.NewServeMux()
	predict := s.recovered(http.TimeoutHandler(http.HandlerFunc(s.handlePredict), s.timeout, timeoutBody))
	model := s.recovered(http.TimeoutHandler(http.HandlerFunc(s.handleModel), s.timeout, timeoutBody))
	mux.Handle("/v1/predict", s.instrument("/v1/predict", predict))
	mux.Handle("/v1/model", s.instrument("/v1/model", model))
	mux.Handle("/v1/models/{name}/predict", s.instrument("/v1/models/predict", predict))
	mux.Handle("/v1/models/{name}", s.instrument("/v1/models/model", model))
	mux.Handle("/v1/models", s.instrument("/v1/models", s.recovered(
		http.TimeoutHandler(http.HandlerFunc(s.handleModels), s.timeout, timeoutBody))))
	mux.Handle("/healthz", s.instrument("/healthz", s.recovered(http.HandlerFunc(s.handleHealthz))))
	mux.Handle("/metrics", s.instrument("/metrics", s.recovered(http.HandlerFunc(s.handleMetrics))))
	return mux
}

// Serve runs the service on the listener until ctx is canceled, then shuts
// down gracefully: new connections are refused while in-flight requests get
// ShutdownGrace to complete.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), s.grace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
