// Package report renders BlackForest results for humans: aligned text
// tables, horizontal bar charts (variable importance), and x/y line charts
// (partial dependence, predicted-vs-measured series) — the textual
// equivalents of the paper's figures — plus CSV emission of every series
// so results can be re-plotted elsewhere.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Table writes rows under headers with columns padded to equal width.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// BarChart draws a horizontal bar chart: one labeled bar per value, scaled
// to maxWidth characters. Used for variable-importance figures.
func BarChart(w io.Writer, title string, labels []string, values []float64, maxWidth int) error {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	labelWidth := 0
	maxVal := 0.0
	for i, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
		if math.Abs(values[i]) > maxVal {
			maxVal = math.Abs(values[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	for i, l := range labels {
		n := int(math.Abs(values[i]) / maxVal * float64(maxWidth))
		bar := strings.Repeat("█", n)
		if n == 0 && values[i] != 0 {
			bar = "▏"
		}
		if _, err := fmt.Fprintf(w, "  %-*s %s %.4g\n", labelWidth, l, bar, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named line of an XY chart.
type Series struct {
	Name string
	Y    []float64
}

// XYChart plots one or more series over shared x values on a character
// grid. Each series uses its own glyph; a legend follows the plot.
func XYChart(w io.Writer, title string, xs []float64, series []Series, width, height int) error {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	if len(xs) == 0 || len(series) == 0 {
		_, err := io.WriteString(w, "  (no data)\n")
		return err
	}

	xmin, xmax := minMax(xs)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		lo, hi := minMax(s.Y)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i, x := range xs {
			if i >= len(s.Y) {
				break
			}
			col := int((x - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = g
			}
		}
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.4g", ymax)
		case height - 1:
			label = fmt.Sprintf("%10.4g", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10.4g %s %10.4g\n", xmin, strings.Repeat(" ", width-9), xmax); err != nil {
		return err
	}
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], s.Name)
	}
	_, err := fmt.Fprintf(w, "           legend: %s\n", strings.Join(legend, "  "))
	return err
}

// WriteSeriesCSV writes x plus the series as CSV columns.
func WriteSeriesCSV(w io.Writer, xName string, xs []float64, series []Series) error {
	headers := []string{xName}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for i, x := range xs {
		cells := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range series {
			v := math.NaN()
			if i < len(s.Y) {
				v = s.Y[i]
			}
			cells = append(cells, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SortedByY returns copies of xs and ys sorted by ascending x — chart
// helpers expect ordered series.
func SortedByY(xs, ys []float64) (sx, sy []float64) {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	sx = make([]float64, len(pts))
	sy = make([]float64, len(pts))
	for i, p := range pts {
		sx[i], sy[i] = p.x, p.y
	}
	return sx, sy
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
