package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb, []string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "23456"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatal("missing separator row")
	}
	if !strings.Contains(lines[3], "a-much-longer-name  23456") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	err := BarChart(&sb, "title", []string{"a", "bb"}, []float64{2, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "title") {
		t.Fatal("title missing")
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "", []string{"a"}, []float64{0}, 10); err != nil {
		t.Fatal(err)
	}
}

func TestXYChart(t *testing.T) {
	var sb strings.Builder
	xs := []float64{0, 1, 2, 3}
	err := XYChart(&sb, "chart", xs, []Series{
		{Name: "up", Y: []float64{0, 1, 2, 3}},
		{Name: "down", Y: []float64{3, 2, 1, 0}},
	}, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "legend: *=up  o=down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("series glyphs missing")
	}
}

func TestXYChartEmpty(t *testing.T) {
	var sb strings.Builder
	if err := XYChart(&sb, "t", nil, nil, 10, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty chart not flagged")
	}
}

func TestXYChartConstantSeries(t *testing.T) {
	var sb strings.Builder
	err := XYChart(&sb, "", []float64{1, 1, 1}, []Series{{Name: "flat", Y: []float64{5, 5, 5}}}, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteSeriesCSV(&sb, "size", []float64{1, 2}, []Series{
		{Name: "m", Y: []float64{10, 20}},
		{Name: "p", Y: []float64{11}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "size,m,p" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "1,10,11" {
		t.Fatalf("row %q", lines[1])
	}
	if !strings.Contains(lines[2], "NaN") {
		t.Fatalf("short series not padded with NaN: %q", lines[2])
	}
}

func TestSortedByY(t *testing.T) {
	xs, ys := SortedByY([]float64{3, 1, 2}, []float64{30, 10, 20})
	if xs[0] != 1 || ys[0] != 10 || xs[2] != 3 || ys[2] != 30 {
		t.Fatalf("sorted %v %v", xs, ys)
	}
}
