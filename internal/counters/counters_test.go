package counters

import (
	"testing"

	"blackforest/internal/gpusim"
)

func TestRegistryLookup(t *testing.T) {
	m, err := Lookup("shared_replay_overhead")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Derived || !m.OnFermi || !m.OnKepler {
		t.Fatalf("metadata wrong: %+v", m)
	}
	if _, err := Lookup("nonexistent_counter"); err == nil {
		t.Fatal("unknown counter accepted")
	}
}

func TestArchitectureAvailability(t *testing.T) {
	// The §7 counter-evolution facts: Fermi has l1_shared_bank_conflict,
	// Kepler instead exposes shared_load_replay / shared_store_replay.
	fermi := Available(gpusim.Fermi)
	kepler := Available(gpusim.Kepler)
	has := func(set []string, name string) bool {
		for _, n := range set {
			if n == name {
				return true
			}
		}
		return false
	}
	if !has(fermi, "l1_shared_bank_conflict") || has(kepler, "l1_shared_bank_conflict") {
		t.Fatal("l1_shared_bank_conflict availability wrong")
	}
	if has(fermi, "shared_load_replay") || !has(kepler, "shared_load_replay") {
		t.Fatal("shared_load_replay availability wrong")
	}
	if !has(fermi, "l1_global_load_miss") || has(kepler, "l1_global_load_miss") {
		t.Fatal("l1_global_load_miss availability wrong")
	}
	common := Common()
	if has(common, "l1_shared_bank_conflict") || has(common, "shared_load_replay") {
		t.Fatal("arch-specific counters leaked into the common set")
	}
	if !has(common, "gld_request") || !has(common, "achieved_occupancy") {
		t.Fatal("common counters missing")
	}
}

func TestAllCoversTable1(t *testing.T) {
	// Every counter named in the paper's Table 1 must be registered.
	table1 := []string{
		"shared_replay_overhead", "shared_load", "shared_store",
		"inst_replay_overhead", "l1_global_load_hit", "l1_global_load_miss",
		"gld_request", "gst_request", "global_store_transaction",
		"gld_requested_throughput", "achieved_occupancy",
		"l2_read_throughput", "l2_write_transactions", "ipc",
		"issue_slot_utilization", "warp_execution_efficiency",
	}
	for _, name := range table1 {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Table 1 counter %s missing: %v", name, err)
		}
	}
}

func TestDeriveBasics(t *testing.T) {
	dev, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{
		Raw: gpusim.Counters{
			InstExecuted:       1000,
			InstIssued:         1200,
			ThreadInstExecuted: 1000 * 32,
			GldRequest:         100,
			GstRequest:         50,
			RequestedGldBytes:  100 * 128,
			RequestedGstBytes:  50 * 128,
			L1GlobalLoadHit:    60,
			L1GlobalLoadMiss:   40,
			SharedLoadReplay:   120,
			SharedStoreReplay:  80,
			L2ReadTransactions: 160,
		},
		Cycles:            10000,
		TimeMS:            1.0,
		AchievedOccupancy: 0.5,
		SMEfficiency:      0.9,
	}
	m := Derive(dev, s)

	if m["inst_replay_overhead"] != 0.2 {
		t.Fatalf("inst_replay_overhead %v", m["inst_replay_overhead"])
	}
	if m["shared_replay_overhead"] != 0.2 {
		t.Fatalf("shared_replay_overhead %v", m["shared_replay_overhead"])
	}
	if m["warp_execution_efficiency"] != 100 {
		t.Fatalf("warp_execution_efficiency %v", m["warp_execution_efficiency"])
	}
	if m["achieved_occupancy"] != 0.5 {
		t.Fatal("achieved_occupancy passthrough wrong")
	}
	// ipc = 1000 / 10000 cycles / 16 SMs.
	if got, want := m["ipc"], 1000.0/10000/16; got != want {
		t.Fatalf("ipc %v want %v", got, want)
	}
	// l1_shared_bank_conflict = load+store replays on Fermi.
	if m["l1_shared_bank_conflict"] != 200 {
		t.Fatalf("l1_shared_bank_conflict %v", m["l1_shared_bank_conflict"])
	}
	// Requested load throughput: 12800 B over 1 ms = 0.0128 GB/s.
	if got := m["gld_requested_throughput"]; got < 0.0127 || got > 0.0129 {
		t.Fatalf("gld_requested_throughput %v", got)
	}
	if _, ok := m["shared_load_replay"]; ok {
		t.Fatal("Kepler-only counter present on Fermi")
	}
}

func TestDeriveKeplerDropsFermiCounters(t *testing.T) {
	dev, err := gpusim.LookupDevice("K20m")
	if err != nil {
		t.Fatal(err)
	}
	m := Derive(dev, Sample{Raw: gpusim.Counters{InstExecuted: 10, SharedLoadReplay: 3}, Cycles: 100, TimeMS: 1})
	if _, ok := m["l1_global_load_miss"]; ok {
		t.Fatal("l1_global_load_miss present on Kepler")
	}
	if m["shared_load_replay"] != 3 {
		t.Fatal("shared_load_replay missing on Kepler")
	}
}

func TestDeriveZeroTimeSafe(t *testing.T) {
	dev, _ := gpusim.LookupDevice("GTX580")
	m := Derive(dev, Sample{})
	for name, v := range m {
		if v != v { // NaN check
			t.Fatalf("counter %s is NaN for empty sample", name)
		}
	}
}
