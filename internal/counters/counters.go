// Package counters defines the performance-counter vocabulary BlackForest
// models over: the nvprof event and metric names of the paper's Table 1
// (and the fuller tool-guide list it references), their per-architecture
// availability, and the derivation of metric values from the simulator's
// raw event counts.
//
// Architecture dependence matters for the paper's hardware-scaling study
// (§6.2/§7): Fermi exposes l1_shared_bank_conflict, Kepler instead exposes
// shared_load_replay and shared_store_replay, and Kepler's global loads
// bypassing L1 leaves the l1_global_load_* counters meaningless there.
package counters

import (
	"fmt"
	"sort"

	"blackforest/internal/gpusim"
)

// Meta describes one counter or metric.
type Meta struct {
	Name        string
	Description string
	// OnFermi / OnKepler state availability per architecture.
	OnFermi  bool
	OnKepler bool
	// Derived is true for metrics computed from events and time (nvprof
	// "metrics"); false for raw event counts (nvprof "events").
	Derived bool
}

// registry lists every counter BlackForest collects. Descriptions follow
// the paper's Table 1 and the CUDA profiler users guide.
var registry = []Meta{
	{"gld_request", "number of executed global load instructions, increments per warp on a multiprocessor", true, true, false},
	{"gst_request", "number of executed global store instructions, increments per warp on a multiprocessor", true, true, false},
	{"shared_load", "number of executed shared load instructions, increments per warp on a multiprocessor", true, true, false},
	{"shared_store", "number of executed shared store instructions, increments per warp on a multiprocessor", true, true, false},
	{"l1_global_load_hit", "number of cache lines that hit in L1 for global memory load accesses", true, false, false},
	{"l1_global_load_miss", "number of cache lines that miss in L1 for global memory load accesses", true, false, false},
	{"l1_shared_bank_conflict", "number of shared memory bank conflicts", true, false, false},
	{"shared_load_replay", "replays caused by shared load bank conflict or lack of data", false, true, false},
	{"shared_store_replay", "replays caused by shared store bank conflict", false, true, false},
	{"global_store_transaction", "number of global store transactions (each 32, 64, 96 or 128 bytes)", true, true, false},
	{"l2_read_transactions", "memory read transactions seen at L2 cache", true, true, false},
	{"l2_write_transactions", "memory write transactions seen at L2 cache", true, true, false},
	{"inst_executed", "number of instructions executed, does not include replays", true, true, false},
	{"inst_issued", "number of instructions issued, including replays", true, true, false},
	{"branch", "number of branch instructions executed per warp", true, true, false},
	{"divergent_branch", "number of divergent branches within a warp", true, true, false},

	{"ipc", "number of instructions executed per cycle", true, true, true},
	{"issue_slot_utilization", "percentage of issue slots that issued at least one instruction, averaged across all cycles", true, true, true},
	{"achieved_occupancy", "ratio of average active warps per active cycle to the maximum number of warps per SM", true, true, true},
	{"inst_replay_overhead", "average number of replays for each instruction executed", true, true, true},
	{"shared_replay_overhead", "average number of replays due to shared memory conflicts for each instruction executed", true, true, true},
	{"warp_execution_efficiency", "ratio of average active threads per warp to the maximum number of threads per warp", true, true, true},
	{"gld_requested_throughput", "requested global memory load throughput (GB/s)", true, true, true},
	{"gst_requested_throughput", "requested global memory store throughput (GB/s)", true, true, true},
	{"gld_throughput", "global memory load throughput (GB/s)", true, true, true},
	{"gst_throughput", "global memory store throughput (GB/s)", true, true, true},
	{"gld_efficiency", "ratio of requested to actual global load throughput (percent)", true, true, true},
	{"gst_efficiency", "ratio of requested to actual global store throughput (percent)", true, true, true},
	{"l2_read_throughput", "memory read throughput at L2 cache (GB/s)", true, true, true},
	{"l2_write_throughput", "memory write throughput at L2 cache (GB/s)", true, true, true},
	{"dram_read_throughput", "device memory read throughput (GB/s)", true, true, true},
	{"dram_write_throughput", "device memory write throughput (GB/s)", true, true, true},
	{"ldst_fu_utilization", "utilization level of load/store function units (percent of peak)", true, true, true},
	{"sm_efficiency", "percentage of time at least one warp is active on an SM", true, true, true},
	{"atom_count", "number of global atomic instructions executed per warp", true, true, false},
	{"shared_atom_count", "number of shared-memory atomic instructions executed per warp", true, true, false},
	{"atomic_replay_overhead", "average replays from atomic same-address contention per instruction executed", true, true, true},
}

// All returns metadata for every known counter, in registry order.
func All() []Meta {
	out := make([]Meta, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the metadata for a counter name.
func Lookup(name string) (Meta, error) {
	for _, m := range registry {
		if m.Name == name {
			return m, nil
		}
	}
	return Meta{}, fmt.Errorf("counters: unknown counter %q", name)
}

// availableOn reports whether the counter exists on the architecture.
func (m Meta) availableOn(arch gpusim.Arch) bool {
	switch arch {
	case gpusim.Fermi:
		return m.OnFermi
	case gpusim.Kepler:
		return m.OnKepler
	default:
		return false
	}
}

// Available returns the names of counters exposed by the architecture,
// sorted for determinism.
func Available(arch gpusim.Arch) []string {
	var out []string
	for _, m := range registry {
		if m.availableOn(arch) {
			out = append(out, m.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Common returns counter names available on both architectures — the
// vocabulary usable for cross-architecture (hardware-scaling) models.
func Common() []string {
	var out []string
	for _, m := range registry {
		if m.OnFermi && m.OnKepler {
			out = append(out, m.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Sample holds the aggregate measurements of one profiled workload run
// (all kernel launches summed) from which metrics are derived.
type Sample struct {
	Raw               gpusim.Counters
	Cycles            float64 // total modeled core cycles
	TimeMS            float64 // total modeled wall time
	AchievedOccupancy float64 // cycle-weighted across launches
	SMEfficiency      float64 // cycle-weighted tail utilization
}

// Derive computes every counter available on the device's architecture.
func Derive(dev *gpusim.Device, s Sample) map[string]float64 {
	c := &s.Raw
	out := make(map[string]float64, len(registry))
	timeSec := s.TimeMS / 1e3
	if timeSec <= 0 {
		timeSec = 1e-12
	}
	cycles := s.Cycles
	if cycles <= 0 {
		cycles = 1
	}
	gbps := func(bytes float64) float64 { return bytes / timeSec / 1e9 }

	// Raw events.
	out["gld_request"] = float64(c.GldRequest)
	out["gst_request"] = float64(c.GstRequest)
	out["shared_load"] = float64(c.SharedLoad)
	out["shared_store"] = float64(c.SharedStore)
	out["global_store_transaction"] = float64(c.GlobalStoreTransaction)
	out["l2_read_transactions"] = float64(c.L2ReadTransactions)
	out["l2_write_transactions"] = float64(c.L2WriteTransactions)
	out["inst_executed"] = float64(c.InstExecuted)
	out["inst_issued"] = float64(c.InstIssued)
	out["branch"] = float64(c.Branch)
	out["divergent_branch"] = float64(c.DivergentBranch)
	out["atom_count"] = float64(c.GlobalAtomicOps)
	out["shared_atom_count"] = float64(c.SharedAtomicOps)

	if dev.Arch == gpusim.Fermi {
		out["l1_global_load_hit"] = float64(c.L1GlobalLoadHit)
		out["l1_global_load_miss"] = float64(c.L1GlobalLoadMiss)
		out["l1_shared_bank_conflict"] = float64(c.SharedLoadReplay + c.SharedStoreReplay)
	} else {
		out["shared_load_replay"] = float64(c.SharedLoadReplay)
		out["shared_store_replay"] = float64(c.SharedStoreReplay)
	}

	// Derived metrics.
	instExec := float64(c.InstExecuted)
	if instExec < 1 {
		instExec = 1
	}
	out["ipc"] = float64(c.InstExecuted) / cycles / float64(dev.SMs)
	out["issue_slot_utilization"] = 100 * float64(c.InstIssued) / (cycles * float64(dev.SMs) * dev.PeakWarpIssuePerCycle())
	out["achieved_occupancy"] = s.AchievedOccupancy
	out["inst_replay_overhead"] = float64(c.TotalReplays()) / instExec
	out["shared_replay_overhead"] = float64(c.SharedLoadReplay+c.SharedStoreReplay) / instExec
	out["atomic_replay_overhead"] = float64(c.AtomicReplays) / instExec
	out["warp_execution_efficiency"] = 100 * float64(c.ThreadInstExecuted) / (instExec * gpusim.WarpSize)

	out["gld_requested_throughput"] = gbps(float64(c.RequestedGldBytes))
	out["gst_requested_throughput"] = gbps(float64(c.RequestedGstBytes))

	var loadBytes float64
	if dev.GlobalLoadsUseL1 {
		loadBytes = 128 * float64(c.L1GlobalLoadHit+c.L1GlobalLoadMiss)
	} else {
		loadBytes = 32 * float64(c.L2ReadTransactions)
	}
	storeBytes := 32 * float64(c.L2WriteTransactions)
	out["gld_throughput"] = gbps(loadBytes)
	out["gst_throughput"] = gbps(storeBytes)
	out["gld_efficiency"] = pct(float64(c.RequestedGldBytes), loadBytes)
	out["gst_efficiency"] = pct(float64(c.RequestedGstBytes), storeBytes)

	out["l2_read_throughput"] = gbps(32 * float64(c.L2ReadTransactions))
	out["l2_write_throughput"] = gbps(32 * float64(c.L2WriteTransactions))
	out["dram_read_throughput"] = gbps(float64(c.DRAMReadBytes))
	out["dram_write_throughput"] = gbps(float64(c.DRAMWriteBytes))

	ldstPeak := cycles * float64(dev.SMs*dev.LdStUnitsPerSM)
	out["ldst_fu_utilization"] = 100 * float64(c.LdstThreadOps) / ldstPeak
	out["sm_efficiency"] = 100 * s.SMEfficiency

	// Drop metrics not exposed on this architecture.
	for _, m := range registry {
		if !m.availableOn(dev.Arch) {
			delete(out, m.Name)
		}
	}
	return out
}

// pct returns 100·a/b, or 0 when b is 0.
func pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}
