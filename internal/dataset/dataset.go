// Package dataset implements the tabular data container used throughout
// BlackForest: a column-named frame of float64 observations, with the
// selection, splitting, and CSV I/O operations the modeling pipeline needs.
//
// The paper's toolchain stores profiler output in "a structured repository";
// this package is that repository. Rows are observations (one profiled kernel
// run), columns are variables (performance counters, problem characteristics,
// machine characteristics, and the response).
package dataset

import (
	"errors"
	"fmt"
	"sort"

	"blackforest/internal/stats"
)

// Frame is a rectangular table of float64 values with named columns.
// All columns have the same length. The zero value is an empty frame.
type Frame struct {
	names []string
	index map[string]int
	cols  [][]float64
	nrows int
}

// New returns an empty frame.
func New() *Frame {
	return &Frame{index: make(map[string]int)}
}

// FromColumns builds a frame from a list of (name, values) pairs given as
// parallel slices. All value slices must have equal length and names must be
// unique.
func FromColumns(names []string, cols [][]float64) (*Frame, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("dataset: %d names but %d columns", len(names), len(cols))
	}
	f := New()
	for i, name := range names {
		if err := f.AddColumn(name, cols[i]); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// NumRows returns the number of observations.
func (f *Frame) NumRows() int { return f.nrows }

// NumCols returns the number of variables.
func (f *Frame) NumCols() int { return len(f.cols) }

// Names returns the column names in order. The returned slice is a copy.
func (f *Frame) Names() []string {
	out := make([]string, len(f.names))
	copy(out, f.names)
	return out
}

// Has reports whether the frame contains a column with the given name.
func (f *Frame) Has(name string) bool {
	_, ok := f.index[name]
	return ok
}

// AddColumn appends a column. The first column fixes the row count; later
// columns must match it. Adding a duplicate name is an error.
func (f *Frame) AddColumn(name string, values []float64) error {
	if _, dup := f.index[name]; dup {
		return fmt.Errorf("dataset: duplicate column %q", name)
	}
	if len(f.cols) > 0 && len(values) != f.nrows {
		return fmt.Errorf("dataset: column %q has %d rows, frame has %d", name, len(values), f.nrows)
	}
	v := make([]float64, len(values))
	copy(v, values)
	f.index[name] = len(f.cols)
	f.names = append(f.names, name)
	f.cols = append(f.cols, v)
	f.nrows = len(values)
	return nil
}

// AddConstColumn appends a column holding the same value in every row —
// used to inject machine characteristics (Table 2) into profiled data.
func (f *Frame) AddConstColumn(name string, value float64) error {
	v := make([]float64, f.nrows)
	for i := range v {
		v[i] = value
	}
	return f.AddColumn(name, v)
}

// Column returns the values of the named column. The returned slice aliases
// frame storage; callers must not mutate it.
func (f *Frame) Column(name string) ([]float64, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, fmt.Errorf("dataset: no column %q", name)
	}
	return f.cols[i], nil
}

// MustColumn is Column but panics on a missing name. Use only when the
// caller has already validated the schema.
func (f *Frame) MustColumn(name string) []float64 {
	c, err := f.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// At returns the value at row i of the named column.
func (f *Frame) At(i int, name string) (float64, error) {
	c, err := f.Column(name)
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= len(c) {
		return 0, fmt.Errorf("dataset: row %d out of range [0,%d)", i, len(c))
	}
	return c[i], nil
}

// Row returns row i as a map from column name to value.
func (f *Frame) Row(i int) (map[string]float64, error) {
	if i < 0 || i >= f.nrows {
		return nil, fmt.Errorf("dataset: row %d out of range [0,%d)", i, f.nrows)
	}
	out := make(map[string]float64, len(f.cols))
	for j, name := range f.names {
		out[name] = f.cols[j][i]
	}
	return out, nil
}

// RowVector returns row i restricted to the given columns, in order.
func (f *Frame) RowVector(i int, columns []string) ([]float64, error) {
	if i < 0 || i >= f.nrows {
		return nil, fmt.Errorf("dataset: row %d out of range [0,%d)", i, f.nrows)
	}
	out := make([]float64, len(columns))
	for k, name := range columns {
		j, ok := f.index[name]
		if !ok {
			return nil, fmt.Errorf("dataset: no column %q", name)
		}
		out[k] = f.cols[j][i]
	}
	return out, nil
}

// AppendRow appends one observation given as a name→value map. The map must
// cover exactly the frame's columns; an empty frame adopts the map's keys
// (sorted for determinism).
func (f *Frame) AppendRow(row map[string]float64) error {
	if len(f.cols) == 0 {
		keys := make([]string, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := f.AddColumn(k, nil); err != nil {
				return err
			}
		}
		f.nrows = 0
	}
	if len(row) != len(f.cols) {
		return fmt.Errorf("dataset: row has %d values, frame has %d columns", len(row), len(f.cols))
	}
	for j, name := range f.names {
		v, ok := row[name]
		if !ok {
			return fmt.Errorf("dataset: row missing column %q", name)
		}
		f.cols[j] = append(f.cols[j], v)
	}
	f.nrows++
	return nil
}

// Select returns a new frame containing only the named columns, in order.
func (f *Frame) Select(columns ...string) (*Frame, error) {
	out := New()
	for _, name := range columns {
		c, err := f.Column(name)
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(name, c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Drop returns a new frame without the named columns. Dropping a column
// that does not exist is an error.
func (f *Frame) Drop(columns ...string) (*Frame, error) {
	dropped := make(map[string]bool, len(columns))
	for _, c := range columns {
		if !f.Has(c) {
			return nil, fmt.Errorf("dataset: no column %q", c)
		}
		dropped[c] = true
	}
	out := New()
	for j, name := range f.names {
		if dropped[name] {
			continue
		}
		if err := out.AddColumn(name, f.cols[j]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Subset returns a new frame containing the given rows (in the given order).
func (f *Frame) Subset(rows []int) (*Frame, error) {
	out := New()
	for j, name := range f.names {
		col := make([]float64, len(rows))
		for k, r := range rows {
			if r < 0 || r >= f.nrows {
				return nil, fmt.Errorf("dataset: row %d out of range [0,%d)", r, f.nrows)
			}
			col[k] = f.cols[j][r]
		}
		if err := out.AddColumn(name, col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Split partitions the frame into train and test frames using the RNG, with
// the given training fraction (the paper uses 0.8).
func (f *Frame) Split(rng *stats.RNG, trainFrac float64) (train, test *Frame, err error) {
	if f.nrows == 0 {
		return nil, nil, errors.New("dataset: cannot split an empty frame")
	}
	trainIdx, testIdx := rng.TrainTestSplit(f.nrows, trainFrac)
	train, err = f.Subset(trainIdx)
	if err != nil {
		return nil, nil, err
	}
	test, err = f.Subset(testIdx)
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// Matrix returns the frame's values for the given columns as a row-major
// [nrows][len(columns)] design matrix.
func (f *Frame) Matrix(columns []string) ([][]float64, error) {
	idx := make([]int, len(columns))
	for k, name := range columns {
		j, ok := f.index[name]
		if !ok {
			return nil, fmt.Errorf("dataset: no column %q", name)
		}
		idx[k] = j
	}
	out := make([][]float64, f.nrows)
	for i := 0; i < f.nrows; i++ {
		row := make([]float64, len(columns))
		for k, j := range idx {
			row[k] = f.cols[j][i]
		}
		out[i] = row
	}
	return out, nil
}

// Bind returns a new frame with the rows of g appended to f. The frames
// must have identical column sets (order may differ).
func (f *Frame) Bind(g *Frame) (*Frame, error) {
	if len(f.cols) != len(g.cols) {
		return nil, fmt.Errorf("dataset: binding frames with %d and %d columns", len(f.cols), len(g.cols))
	}
	out := New()
	for j, name := range f.names {
		gc, err := g.Column(name)
		if err != nil {
			return nil, fmt.Errorf("dataset: bind: %w", err)
		}
		col := make([]float64, 0, f.nrows+g.nrows)
		col = append(col, f.cols[j]...)
		col = append(col, gc...)
		if err := out.AddColumn(name, col); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DropConstantColumns returns a new frame without zero-variance columns,
// except those listed in keep. Constant predictors carry no information for
// the forest and bias importance rankings.
func (f *Frame) DropConstantColumns(keep ...string) *Frame {
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	out := New()
	for j, name := range f.names {
		if !keepSet[name] && f.nrows > 1 && stats.Variance(f.cols[j]) == 0 {
			continue
		}
		// AddColumn cannot fail here: names are unique and lengths match.
		_ = out.AddColumn(name, f.cols[j])
	}
	return out
}
