package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the frame as CSV with a header row.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.names); err != nil {
		return err
	}
	rec := make([]string, len(f.cols))
	for i := 0; i < f.nrows; i++ {
		for j := range f.cols {
			rec[j] = strconv.FormatFloat(f.cols[j][i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the frame to the named file.
func (f *Frame) SaveCSV(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return err
	}
	return file.Close()
}

// ReadCSV parses a CSV stream with a header row into a frame. Every data
// cell must parse as a float64.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	cols := make([][]float64, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		for j, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV cell %q in column %q: %w", cell, header[j], err)
			}
			cols[j] = append(cols[j], v)
		}
	}
	return FromColumns(header, cols)
}

// LoadCSV reads a frame from the named CSV file.
func LoadCSV(path string) (*Frame, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ReadCSV(file)
}
