package dataset

import (
	"strings"
	"testing"

	"blackforest/internal/stats"
)

func sample(t *testing.T) *Frame {
	t.Helper()
	f, err := FromColumns(
		[]string{"a", "b", "time_ms"},
		[][]float64{{1, 2, 3, 4}, {10, 20, 30, 40}, {0.1, 0.2, 0.3, 0.4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFromColumnsAndAccessors(t *testing.T) {
	f := sample(t)
	if f.NumRows() != 4 || f.NumCols() != 3 {
		t.Fatalf("dims %dx%d", f.NumRows(), f.NumCols())
	}
	if !f.Has("a") || f.Has("zz") {
		t.Fatal("Has wrong")
	}
	b, err := f.Column("b")
	if err != nil || b[2] != 30 {
		t.Fatalf("Column: %v %v", b, err)
	}
	if _, err := f.Column("zz"); err == nil {
		t.Fatal("missing column accepted")
	}
	v, err := f.At(3, "a")
	if err != nil || v != 4 {
		t.Fatalf("At: %v %v", v, err)
	}
	if _, err := f.At(9, "a"); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestAddColumnValidation(t *testing.T) {
	f := sample(t)
	if err := f.AddColumn("a", []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := f.AddColumn("c", []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := f.AddConstColumn("k", 7); err != nil {
		t.Fatal(err)
	}
	k, _ := f.Column("k")
	for _, v := range k {
		if v != 7 {
			t.Fatal("const column wrong")
		}
	}
}

func TestColumnCopySemantics(t *testing.T) {
	vals := []float64{1, 2}
	f := New()
	if err := f.AddColumn("x", vals); err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	x, _ := f.Column("x")
	if x[0] != 1 {
		t.Fatal("AddColumn must copy input")
	}
}

func TestRowAndRowVector(t *testing.T) {
	f := sample(t)
	row, err := f.Row(1)
	if err != nil || row["b"] != 20 || row["time_ms"] != 0.2 {
		t.Fatalf("Row: %v %v", row, err)
	}
	vec, err := f.RowVector(2, []string{"time_ms", "a"})
	if err != nil || vec[0] != 0.3 || vec[1] != 3 {
		t.Fatalf("RowVector: %v %v", vec, err)
	}
	if _, err := f.RowVector(0, []string{"zz"}); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestAppendRow(t *testing.T) {
	f := New()
	if err := f.AppendRow(map[string]float64{"x": 1, "y": 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.AppendRow(map[string]float64{"x": 3, "y": 4}); err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 2 {
		t.Fatalf("rows %d", f.NumRows())
	}
	if err := f.AppendRow(map[string]float64{"x": 1}); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if err := f.AppendRow(map[string]float64{"x": 1, "z": 2}); err == nil {
		t.Fatal("wrong column name accepted")
	}
}

func TestSelectDropSubset(t *testing.T) {
	f := sample(t)
	s, err := f.Select("b", "a")
	if err != nil || s.NumCols() != 2 || s.Names()[0] != "b" {
		t.Fatalf("Select: %v %v", s.Names(), err)
	}
	d, err := f.Drop("b")
	if err != nil || d.Has("b") || !d.Has("a") {
		t.Fatal("Drop wrong")
	}
	if _, err := f.Drop("zz"); err == nil {
		t.Fatal("dropping missing column accepted")
	}
	sub, err := f.Subset([]int{3, 0})
	if err != nil || sub.NumRows() != 2 {
		t.Fatal("Subset wrong")
	}
	if v, _ := sub.At(0, "a"); v != 4 {
		t.Fatal("Subset order not preserved")
	}
	if _, err := f.Subset([]int{9}); err == nil {
		t.Fatal("bad subset row accepted")
	}
}

func TestSplit(t *testing.T) {
	f, _ := FromColumns([]string{"x"}, [][]float64{make([]float64, 100)})
	train, test, err := f.Split(stats.NewRNG(1), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumRows() != 80 || test.NumRows() != 20 {
		t.Fatalf("split %d/%d", train.NumRows(), test.NumRows())
	}
	if _, _, err := New().Split(stats.NewRNG(1), 0.8); err == nil {
		t.Fatal("empty split accepted")
	}
}

func TestMatrix(t *testing.T) {
	f := sample(t)
	m, err := f.Matrix([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 || m[1][0] != 2 || m[1][1] != 20 {
		t.Fatalf("Matrix wrong: %v", m)
	}
	if _, err := f.Matrix([]string{"zz"}); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestBind(t *testing.T) {
	f := sample(t)
	g := sample(t)
	b, err := f.Bind(g)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 8 {
		t.Fatalf("bind rows %d", b.NumRows())
	}
	h, _ := FromColumns([]string{"other"}, [][]float64{{1}})
	if _, err := f.Bind(h); err == nil {
		t.Fatal("mismatched bind accepted")
	}
}

func TestDropConstantColumns(t *testing.T) {
	f, _ := FromColumns(
		[]string{"varies", "const", "time_ms"},
		[][]float64{{1, 2, 3}, {5, 5, 5}, {7, 7, 7}},
	)
	out := f.DropConstantColumns("time_ms")
	if out.Has("const") {
		t.Fatal("constant column kept")
	}
	if !out.Has("time_ms") {
		t.Fatal("protected column dropped")
	}
	if !out.Has("varies") {
		t.Fatal("varying column dropped")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := sample(t)
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != f.NumRows() || g.NumCols() != f.NumCols() {
		t.Fatal("roundtrip dims differ")
	}
	for _, name := range f.Names() {
		a, _ := f.Column(name)
		b, _ := g.Column(name)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("roundtrip value differs in %s[%d]", name, i)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber\n")); err == nil {
		t.Fatal("non-numeric cell accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSaveLoadCSV(t *testing.T) {
	f := sample(t)
	path := t.TempDir() + "/frame.csv"
	if err := f.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 4 {
		t.Fatal("load wrong")
	}
	if _, err := LoadCSV(t.TempDir() + "/missing.csv"); err == nil {
		t.Fatal("missing file accepted")
	}
}
