// Package stats provides the descriptive statistics, deterministic random
// number generation, and resampling utilities shared by the BlackForest
// modeling stack.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs.
// Slices with fewer than two elements have variance 0.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SumSquaredDev returns Σ(x−mean)², the total sum of squares.
func SumSquaredDev(xs []float64) float64 {
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s
}

// Covariance returns the unbiased sample covariance of xs and ys.
// It panics if the slices differ in length.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: covariance of unequal-length slices")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation coefficient of xs and ys,
// or 0 when either series is constant.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// MSE returns the mean squared error between predictions and truth.
// It panics if the slices differ in length.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: MSE of unequal-length slices")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: MAE of unequal-length slices")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// MedianAbsPctError returns the median of |pred−truth|/|truth| over entries
// with truth ≠ 0 — the accuracy measure quoted by the paper's related work.
func MedianAbsPctError(pred, truth []float64) float64 {
	var errs []float64
	for i := range pred {
		if truth[i] != 0 {
			errs = append(errs, math.Abs(pred[i]-truth[i])/math.Abs(truth[i]))
		}
	}
	if len(errs) == 0 {
		return 0
	}
	return Quantile(errs, 0.5)
}

// RSquared returns the coefficient of determination of pred against truth.
// A constant truth series yields 0.
func RSquared(pred, truth []float64) float64 {
	tss := SumSquaredDev(truth)
	if tss == 0 {
		return 0
	}
	var rss float64
	for i := range pred {
		d := truth[i] - pred[i]
		rss += d * d
	}
	return 1 - rss/tss
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest value in xs; +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs; −Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Standardize returns (xs−mean)/sd along with the mean and sd used.
// A constant series is centered and left unscaled (sd reported as 1).
func Standardize(xs []float64) (z []float64, mean, sd float64) {
	mean = Mean(xs)
	sd = StdDev(xs)
	if sd == 0 {
		sd = 1
	}
	z = make([]float64, len(xs))
	for i, x := range xs {
		z[i] = (x - mean) / sd
	}
	return z, mean, sd
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
