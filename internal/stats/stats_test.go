package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !eq(Variance(xs), 32.0/7, 1e-12) {
		t.Fatalf("variance %v", Variance(xs))
	}
	if !eq(StdDev(xs), math.Sqrt(32.0/7), 1e-12) {
		t.Fatal("stddev wrong")
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("singleton variance not 0")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !eq(Correlation(xs, ys), 1, 1e-12) {
		t.Fatal("perfect correlation not 1")
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !eq(Correlation(xs, neg), -1, 1e-12) {
		t.Fatal("perfect anticorrelation not -1")
	}
	konst := []float64{3, 3, 3, 3, 3}
	if Correlation(xs, konst) != 0 {
		t.Fatal("constant series correlation not 0")
	}
	if !eq(Covariance(xs, ys), 5, 1e-12) {
		t.Fatalf("covariance %v", Covariance(xs, ys))
	}
}

func TestCovariancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Covariance([]float64{1}, []float64{1, 2})
}

func TestMSEMAERSquared(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 5}
	if !eq(MSE(pred, truth), 4.0/3, 1e-12) {
		t.Fatal("MSE wrong")
	}
	if !eq(MAE(pred, truth), 2.0/3, 1e-12) {
		t.Fatal("MAE wrong")
	}
	if !eq(RSquared(truth, truth), 1, 1e-12) {
		t.Fatal("perfect R² not 1")
	}
	if RSquared([]float64{0, 0, 0}, []float64{5, 5, 5}) != 0 {
		t.Fatal("constant-truth R² not 0")
	}
}

func TestMedianAbsPctError(t *testing.T) {
	pred := []float64{110, 90, 100}
	truth := []float64{100, 100, 100}
	if !eq(MedianAbsPctError(pred, truth), 0.1, 1e-12) {
		t.Fatalf("got %v", MedianAbsPctError(pred, truth))
	}
	if MedianAbsPctError([]float64{1}, []float64{0}) != 0 {
		t.Fatal("zero-truth entries should be skipped")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0.5) != 2 {
		t.Fatal("median wrong")
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Fatal("extremes wrong")
	}
	if !eq(Quantile([]float64{1, 2}, 0.5), 1.5, 1e-12) {
		t.Fatal("interpolation wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 2}
	if Min(xs) != -1 || Max(xs) != 3 {
		t.Fatal("min/max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max wrong")
	}
}

func TestStandardize(t *testing.T) {
	z, mean, sd := Standardize([]float64{2, 4, 6})
	if mean != 4 || !eq(sd, 2, 1e-12) {
		t.Fatalf("mean=%v sd=%v", mean, sd)
	}
	if !eq(Mean(z), 0, 1e-12) || !eq(StdDev(z), 1, 1e-12) {
		t.Fatal("standardized series not (0,1)")
	}
	zc, _, sdc := Standardize([]float64{5, 5})
	if sdc != 1 || zc[0] != 0 {
		t.Fatal("constant series handling wrong")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !eq(got[i], want[i], 1e-12) {
			t.Fatalf("linspace %v", got)
		}
	}
	if len(Linspace(0, 1, 0)) != 0 {
		t.Fatal("n=0 not empty")
	}
	if got := Linspace(2, 9, 1); len(got) != 1 || got[0] != 2 {
		t.Fatal("n=1 wrong")
	}
}

func TestSumSquaredDev(t *testing.T) {
	if !eq(SumSquaredDev([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("TSS wrong")
	}
}

// Property: correlation is within [-1, 1] and symmetric.
func TestCorrelationProperties(t *testing.T) {
	f := func(a, b [8]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			if math.Abs(a[i]) > 1e8 || math.Abs(b[i]) > 1e8 {
				return true
			}
		}
		r := Correlation(a[:], b[:])
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		return eq(r, Correlation(b[:], a[:]), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
