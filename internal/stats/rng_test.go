package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / float64(n); mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(4)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBootstrap(t *testing.T) {
	r := NewRNG(5)
	inBag, oob := r.Bootstrap(100)
	if len(inBag) != 100 {
		t.Fatalf("in-bag size %d", len(inBag))
	}
	inSet := make(map[int]bool)
	for _, v := range inBag {
		if v < 0 || v >= 100 {
			t.Fatalf("index out of range: %d", v)
		}
		inSet[v] = true
	}
	for _, v := range oob {
		if inSet[v] {
			t.Fatalf("OOB index %d also in bag", v)
		}
	}
	if len(inSet)+len(oob) != 100 {
		t.Fatal("in-bag distinct + OOB must partition the sample")
	}
	// Expected OOB fraction ≈ 1/e ≈ 0.368.
	if len(oob) < 20 || len(oob) > 55 {
		t.Fatalf("OOB size %d implausible", len(oob))
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(6)
	s := r.SampleWithoutReplacement(10, 4)
	if len(s) != 4 {
		t.Fatalf("size %d", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", s)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversample did not panic")
		}
	}()
	r.SampleWithoutReplacement(3, 4)
}

func TestTrainTestSplit(t *testing.T) {
	r := NewRNG(7)
	train, test := r.TrainTestSplit(100, 0.8)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
	seen := make(map[int]bool)
	for _, v := range append(append([]int{}, train...), test...) {
		if seen[v] {
			t.Fatal("overlap between train and test")
		}
		seen[v] = true
	}
}

func TestShuffleFloatsPreservesMultiset(t *testing.T) {
	f := func(xs []float64) bool {
		for _, v := range xs {
			if math.IsNaN(v) {
				return true
			}
		}
		orig := append([]float64(nil), xs...)
		NewRNG(9).ShuffleFloats(xs)
		sort.Float64s(orig)
		shuffled := append([]float64(nil), xs...)
		sort.Float64s(shuffled)
		for i := range orig {
			if orig[i] != shuffled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
