package stats

import "math"

// RNG is a small, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). BlackForest uses explicit RNG state
// everywhere so experiments are reproducible run-to-run; math/rand's global
// state is never touched.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		r.s[i] = splitmixFinalize(x)
	}
	return r
}

// SplitMix64 is the splitmix64 single-step mix: a cheap, high-quality
// avalanche of a 64-bit value. Callers use it to derive independent
// sub-seeds from a master seed (per tree, per profiled run) so work units
// can run in any order, or concurrently, without sharing generator state.
func SplitMix64(x uint64) uint64 {
	return splitmixFinalize(x + 0x9e3779b97f4a7c15)
}

// splitmixFinalize is splitmix64's output function.
func splitmixFinalize(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)). It consumes
// exactly the same generator stream as Perm(len(p)), so hot paths can reuse
// a buffer without perturbing any downstream random sequence.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
}

// ShuffleInts permutes xs in place (Fisher–Yates).
func (r *RNG) ShuffleInts(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// ShuffleFloats permutes xs in place (Fisher–Yates).
func (r *RNG) ShuffleFloats(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Bootstrap returns n indices drawn uniformly with replacement from [0, n),
// plus the set of out-of-bag indices not drawn.
func (r *RNG) Bootstrap(n int) (inBag []int, outOfBag []int) {
	inBag = make([]int, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		k := r.Intn(n)
		inBag[i] = k
		seen[k] = true
	}
	for i, s := range seen {
		if !s {
			outOfBag = append(outOfBag, i)
		}
	}
	return inBag, outOfBag
}

// SampleWithoutReplacement returns k distinct indices from [0, n).
// It panics if k > n.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("stats: sample size exceeds population")
	}
	p := r.Perm(n)
	return p[:k]
}

// TrainTestSplit partitions [0, n) into a training set of ⌈frac·n⌉ indices
// and a test set of the rest, both in random order.
func (r *RNG) TrainTestSplit(n int, frac float64) (train, test []int) {
	p := r.Perm(n)
	cut := int(frac*float64(n) + 0.5)
	if cut > n {
		cut = n
	}
	return p[:cut], p[cut:]
}
