// Package jsonx holds small JSON encoding helpers shared by the model
// persistence layer.
package jsonx

import (
	"encoding/json"
	"fmt"
	"math"
)

// Float64 marshals like an ordinary float64 but survives non-finite values,
// which encoding/json rejects outright: NaN and ±Inf are encoded as the
// strings "NaN", "+Inf", "-Inf". Model bundles use it for summary
// statistics that can legitimately be non-finite (e.g. a MARS GCV of +Inf
// when the penalty exceeds the sample count) without aborting the save.
type Float64 float64

// MarshalJSON implements json.Marshaler.
func (f Float64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float64) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = Float64(math.NaN())
		case "+Inf", "Inf":
			*f = Float64(math.Inf(1))
		case "-Inf":
			*f = Float64(math.Inf(-1))
		default:
			return fmt.Errorf("jsonx: invalid float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float64(v)
	return nil
}
