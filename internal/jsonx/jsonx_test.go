package jsonx

import (
	"encoding/json"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1)} {
		raw, err := json.Marshal(Float64(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var got Float64
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if float64(got) != v {
			t.Fatalf("%v round-tripped to %v via %s", v, got, raw)
		}
	}
	// NaN compares unequal to itself, so check it separately.
	raw, err := json.Marshal(Float64(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `"NaN"` {
		t.Fatalf("NaN encoded as %s", raw)
	}
	var got Float64
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(got)) {
		t.Fatalf("NaN round-tripped to %v", got)
	}
}

func TestFiniteValuesEncodePlain(t *testing.T) {
	raw, err := json.Marshal(Float64(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "2.5" {
		t.Fatalf("finite value encoded as %s, want plain number", raw)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, src := range []string{`"nan"`, `"infinity"`, `""`, `true`, `[1]`, `{}`} {
		var f Float64
		if err := json.Unmarshal([]byte(src), &f); err == nil {
			t.Errorf("%s accepted as Float64", src)
		}
	}
	// "Inf" is an accepted alias for "+Inf".
	var f Float64
	if err := json.Unmarshal([]byte(`"Inf"`), &f); err != nil || !math.IsInf(float64(f), 1) {
		t.Fatalf(`"Inf" alias: %v, err %v`, f, err)
	}
}
