package glm

import (
	"math"
	"testing"

	"blackforest/internal/stats"
)

func eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGaussianExactRecovery(t *testing.T) {
	// y = 2 + 3a − 1.5b, noiseless.
	rng := stats.NewRNG(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 2+3*a-1.5*b)
	}
	m, err := Fit(x, y, []string{"a", "b"}, Gaussian)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(m.Coef[0], 2, 1e-6) || !eq(m.Coef[1], 3, 1e-6) || !eq(m.Coef[2], -1.5, 1e-6) {
		t.Fatalf("coefficients %v", m.Coef)
	}
	if m.Deviance > 1e-10 {
		t.Fatalf("residual deviance %v on exact data", m.Deviance)
	}
	if m.RSquared(x, y) < 1-1e-9 {
		t.Fatal("R² not 1 on exact data")
	}
}

func TestGaussianWithNoise(t *testing.T) {
	rng := stats.NewRNG(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64() * 10
		x = append(x, []float64{a})
		y = append(y, 5+2*a+rng.NormFloat64())
	}
	m, err := Fit(x, y, []string{"a"}, Gaussian)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(m.Coef[1], 2, 0.1) {
		t.Fatalf("slope %v", m.Coef[1])
	}
	if m.NullDev <= m.Deviance {
		t.Fatal("null deviance should exceed residual deviance")
	}
}

func TestPoissonLogLink(t *testing.T) {
	// E[y] = exp(0.5 + 0.3a).
	rng := stats.NewRNG(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a := rng.Float64() * 5
		mu := math.Exp(0.5 + 0.3*a)
		// Approximate Poisson draw by rounding mu + noise·√mu.
		draw := math.Round(mu + rng.NormFloat64()*math.Sqrt(mu))
		if draw < 0 {
			draw = 0
		}
		x = append(x, []float64{a})
		y = append(y, draw)
	}
	m, err := Fit(x, y, []string{"a"}, Poisson)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(m.Coef[0], 0.5, 0.15) || !eq(m.Coef[1], 0.3, 0.05) {
		t.Fatalf("poisson coefficients %v", m.Coef)
	}
	if m.Iterations < 2 {
		t.Fatal("IRLS should iterate")
	}
}

func TestPoissonRejectsNegative(t *testing.T) {
	if _, err := Fit([][]float64{{1}, {2}, {3}}, []float64{1, -1, 2}, []string{"a"}, Poisson); err == nil {
		t.Fatal("negative poisson response accepted")
	}
}

func TestGammaLogLink(t *testing.T) {
	rng := stats.NewRNG(4)
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a := rng.Float64() * 3
		mu := math.Exp(1 + 0.5*a)
		y = append(y, mu*math.Exp(rng.NormFloat64()*0.1))
		x = append(x, []float64{a})
	}
	m, err := Fit(x, y, []string{"a"}, GammaLog)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(m.Coef[1], 0.5, 0.05) {
		t.Fatalf("gamma slope %v", m.Coef[1])
	}
}

func TestGammaRejectsNonPositive(t *testing.T) {
	if _, err := Fit([][]float64{{1}, {2}, {3}}, []float64{1, 0, 2}, []string{"a"}, GammaLog); err == nil {
		t.Fatal("zero gamma response accepted")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil, Gaussian); err == nil {
		t.Fatal("empty set accepted")
	}
	x := [][]float64{{1}, {2}, {3}}
	if _, err := Fit(x, []float64{1, 2}, []string{"a"}, Gaussian); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit(x, []float64{1, 2, 3}, []string{"a", "b"}, Gaussian); err == nil {
		t.Fatal("name mismatch accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}, []string{"a", "b"}, Gaussian); err == nil {
		t.Fatal("underdetermined system accepted")
	}
	if _, err := Fit(x, []float64{1, 2, 3}, []string{"a"}, Family(99)); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestCollinearFallsBackToRidge(t *testing.T) {
	// Duplicate predictor columns: OLS is rank-deficient; the ridge
	// fallback must still produce a usable fit.
	var x [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		v := float64(i)
		x = append(x, []float64{v, v})
		y = append(y, 4*v+1)
	}
	m, err := Fit(x, y, []string{"a", "adup"}, Gaussian)
	if err != nil {
		t.Fatal(err)
	}
	if m.RSquared(x, y) < 0.999 {
		t.Fatalf("ridge fallback fit poor: R²=%v", m.RSquared(x, y))
	}
}

func TestPredictPanicsOnWidth(t *testing.T) {
	m, err := Fit([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}, []string{"a"}, Gaussian)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestFamilyString(t *testing.T) {
	if Gaussian.String() != "gaussian" || Poisson.String() != "poisson(log)" || GammaLog.String() != "Gamma(log)" {
		t.Fatal("family names wrong")
	}
	if Family(9).String() == "" {
		t.Fatal("unknown family string empty")
	}
}

func TestModelString(t *testing.T) {
	m, _ := Fit([][]float64{{1}, {2}, {3}}, []float64{2, 4, 6}, []string{"a"}, Gaussian)
	if s := m.String(); s == "" {
		t.Fatal("empty model string")
	}
}
