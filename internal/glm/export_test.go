package glm

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"blackforest/internal/jsonx"
	"blackforest/internal/stats"
)

// fitSynthetic fits one model per family on compatible synthetic data.
func fitSynthetic(t *testing.T, family Family) (*Model, [][]float64) {
	t.Helper()
	rng := stats.NewRNG(7)
	n := 120
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b}
		switch family {
		case Gaussian:
			y[i] = 2 + 3*a - b + 0.01*rng.NormFloat64()
		default:
			y[i] = math.Exp(0.5 + a - 0.5*b)
		}
	}
	m, err := Fit(x, y, []string{"a", "b"}, family)
	if err != nil {
		t.Fatalf("fit %v: %v", family, err)
	}
	return m, x
}

// TestExportImportRoundTrip checks that a JSON round trip preserves every
// prediction bit for bit across all families.
func TestExportImportRoundTrip(t *testing.T) {
	for _, family := range []Family{Gaussian, Poisson, GammaLog} {
		orig, x := fitSynthetic(t, family)

		raw, err := json.Marshal(orig.Export())
		if err != nil {
			t.Fatalf("%v: marshal: %v", family, err)
		}
		var e ExportedModel
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("%v: unmarshal: %v", family, err)
		}
		loaded, err := Import(&e)
		if err != nil {
			t.Fatalf("%v: import: %v", family, err)
		}

		for i, row := range x {
			if got, want := loaded.Predict(row), orig.Predict(row); got != want {
				t.Fatalf("%v: prediction differs at row %d: %v != %v", family, i, got, want)
			}
		}
		// Probe grid beyond the training range.
		for a := -1.0; a <= 2.0; a += 0.25 {
			probe := []float64{a, 1.5 - a}
			if loaded.Predict(probe) != orig.Predict(probe) {
				t.Fatalf("%v: prediction differs on probe %v", family, probe)
			}
		}
		if loaded.Deviance != orig.Deviance || loaded.NullDev != orig.NullDev {
			t.Fatalf("%v: deviance statistics differ", family)
		}
		if loaded.Family != orig.Family || loaded.Iterations != orig.Iterations {
			t.Fatalf("%v: metadata differs", family)
		}
	}
}

func TestImportRejectsCorruptModels(t *testing.T) {
	good, _ := fitSynthetic(t, Gaussian)
	cases := map[string]func(e *ExportedModel){
		"nil":            nil,
		"unknown family": func(e *ExportedModel) { e.Family = "cauchy" },
		"no names":       func(e *ExportedModel) { e.Names = nil },
		"short coef":     func(e *ExportedModel) { e.Coef = e.Coef[:1] },
		"extra coef":     func(e *ExportedModel) { e.Coef = append(e.Coef, 1) },
		"NaN coef":       func(e *ExportedModel) { e.Coef[0] = math.NaN() },
		"Inf coef":       func(e *ExportedModel) { e.Coef[1] = math.Inf(1) },
	}
	for name, corrupt := range cases {
		var e *ExportedModel
		if corrupt != nil {
			e = good.Export()
			corrupt(e)
		}
		if _, err := Import(e); err == nil {
			t.Errorf("%s: corrupted model accepted", name)
		}
	}
}

// TestExportIsDeepCopy ensures mutating the export cannot corrupt the model.
func TestExportIsDeepCopy(t *testing.T) {
	m, x := fitSynthetic(t, Gaussian)
	before := m.Predict(x[0])
	e := m.Export()
	e.Coef[0] += 100
	e.Names[0] = "mutated"
	if m.Predict(x[0]) != before {
		t.Fatal("mutating the export changed the model")
	}
}

// TestNonFiniteDevianceSurvivesJSON pins the jsonx encoding: a model whose
// deviance is +Inf must still serialize and round-trip.
func TestNonFiniteDevianceSurvivesJSON(t *testing.T) {
	m, x := fitSynthetic(t, Gaussian)
	e := m.Export()
	e.Deviance = jsonx.Float64(math.Inf(1))
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(e); err != nil {
		t.Fatalf("encoding +Inf deviance: %v", err)
	}
	var e2 ExportedModel
	if err := json.NewDecoder(&buf).Decode(&e2); err != nil {
		t.Fatal(err)
	}
	loaded, err := Import(&e2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(loaded.Deviance, 1) {
		t.Fatalf("deviance came back as %v, want +Inf", loaded.Deviance)
	}
	if loaded.Predict(x[0]) != m.Predict(x[0]) {
		t.Fatal("prediction changed")
	}
}
