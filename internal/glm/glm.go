// Package glm implements generalized linear models: ordinary least squares
// for the gaussian family and iteratively reweighted least squares (IRLS)
// for poisson and gamma families with log links. BlackForest uses these as
// the "simple cases" counter models of §4.2 ("built as generalized linear
// models because of their simplicity"), with residual deviance as the
// fit-quality measure quoted in the paper (Fig. 5c discussion).
package glm

import (
	"errors"
	"fmt"
	"math"

	"blackforest/internal/mat"
	"blackforest/internal/stats"
)

// Family selects the response distribution and link function.
type Family int

const (
	// Gaussian with identity link: ordinary least squares.
	Gaussian Family = iota
	// Poisson with log link: for nonnegative count-like responses
	// (most raw performance counters).
	Poisson
	// GammaLog: gamma family with log link, for positive continuous
	// right-skewed responses (throughputs, times).
	GammaLog
)

// String returns the family's R-style name.
func (f Family) String() string {
	switch f {
	case Gaussian:
		return "gaussian"
	case Poisson:
		return "poisson(log)"
	case GammaLog:
		return "Gamma(log)"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Model is a fitted GLM. The first coefficient is the intercept.
type Model struct {
	Family     Family
	Names      []string // predictor names (excluding intercept)
	Coef       []float64
	Deviance   float64 // residual deviance
	NullDev    float64 // deviance of the intercept-only model
	Iterations int
}

const (
	irlsMaxIter = 50
	irlsTol     = 1e-9
)

// Fit fits a GLM of y on x (rows are observations) with an intercept.
func Fit(x [][]float64, y []float64, names []string, family Family) (*Model, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("glm: empty training set")
	}
	p := len(x[0])
	if len(y) != n {
		return nil, fmt.Errorf("glm: %d rows but %d responses", n, len(y))
	}
	if len(names) != p {
		return nil, fmt.Errorf("glm: %d names for %d predictors", len(names), p)
	}
	if n < p+1 {
		return nil, fmt.Errorf("glm: %d observations cannot identify %d coefficients", n, p+1)
	}

	// Design matrix with intercept column.
	design := mat.New(n, p+1)
	for i := 0; i < n; i++ {
		design.Set(i, 0, 1)
		for j := 0; j < p; j++ {
			design.Set(i, j+1, x[i][j])
		}
	}

	m := &Model{Family: family, Names: append([]string(nil), names...)}
	var err error
	switch family {
	case Gaussian:
		m.Coef, err = solveOLS(design, y)
		m.Iterations = 1
	case Poisson, GammaLog:
		m.Coef, m.Iterations, err = solveIRLS(design, y, family)
	default:
		return nil, fmt.Errorf("glm: unknown family %v", family)
	}
	if err != nil {
		return nil, err
	}

	m.Deviance = m.devianceOf(x, y)
	m.NullDev = nullDeviance(y, family)
	return m, nil
}

func solveOLS(design *mat.Matrix, y []float64) ([]float64, error) {
	coef, err := mat.SolveLeastSquares(design, y)
	if err == mat.ErrRankDeficient {
		// Fall back to a tiny ridge penalty for collinear designs.
		return mat.SolveRidge(design, y, 1e-8)
	}
	return coef, err
}

// solveIRLS runs iteratively reweighted least squares for log-link families.
func solveIRLS(design *mat.Matrix, y []float64, family Family) ([]float64, int, error) {
	n, pc := design.Rows(), design.Cols()
	for _, v := range y {
		if family == Poisson && v < 0 {
			return nil, 0, errors.New("glm: poisson response must be nonnegative")
		}
		if family == GammaLog && v <= 0 {
			return nil, 0, errors.New("glm: gamma response must be positive")
		}
	}

	// Initialize eta from log(y) clamped away from log(0).
	coef := make([]float64, pc)
	eta := make([]float64, n)
	for i, v := range y {
		if v < 1e-8 {
			v = 1e-8
		}
		eta[i] = math.Log(v)
	}

	wx := mat.New(n, pc)
	wz := make([]float64, n)
	var prevDev float64 = math.Inf(1)
	for iter := 1; iter <= irlsMaxIter; iter++ {
		// Working response z = eta + (y-mu)/mu (log link: dmu/deta = mu)
		// and weights: poisson w = mu, gamma(log) w = 1.
		for i := 0; i < n; i++ {
			mu := math.Exp(eta[i])
			if mu < 1e-10 {
				mu = 1e-10
			}
			z := eta[i] + (y[i]-mu)/mu
			var w float64
			switch family {
			case Poisson:
				w = mu
			case GammaLog:
				w = 1
			}
			sw := math.Sqrt(w)
			wz[i] = sw * z
			for j := 0; j < pc; j++ {
				wx.Set(i, j, sw*design.At(i, j))
			}
		}
		var err error
		coef, err = mat.SolveRidge(wx, wz, 1e-10)
		if err != nil {
			return nil, iter, fmt.Errorf("glm: IRLS solve failed: %w", err)
		}
		newEta, err := design.MulVec(coef)
		if err != nil {
			return nil, iter, err
		}
		copy(eta, newEta)

		dev := devianceEta(eta, y, family)
		if math.Abs(prevDev-dev) < irlsTol*(math.Abs(dev)+0.1) {
			return coef, iter, nil
		}
		prevDev = dev
	}
	return coef, irlsMaxIter, nil
}

// Predict returns the fitted mean response for a single observation.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.Names) {
		panic(fmt.Sprintf("glm: predicting with %d features, model has %d", len(x), len(m.Names)))
	}
	eta := m.Coef[0]
	for j, v := range x {
		eta += m.Coef[j+1] * v
	}
	switch m.Family {
	case Gaussian:
		return eta
	default:
		return math.Exp(eta)
	}
}

// PredictAll returns predictions for each row of xs.
func (m *Model) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// RSquared returns the coefficient of determination on the given data.
func (m *Model) RSquared(x [][]float64, y []float64) float64 {
	return stats.RSquared(m.PredictAll(x), y)
}

// devianceOf computes the residual deviance on (x, y).
func (m *Model) devianceOf(x [][]float64, y []float64) float64 {
	var dev float64
	for i, row := range x {
		mu := m.Predict(row)
		dev += unitDeviance(y[i], mu, m.Family)
	}
	return dev
}

func devianceEta(eta, y []float64, family Family) float64 {
	var dev float64
	for i := range y {
		dev += unitDeviance(y[i], math.Exp(eta[i]), family)
	}
	return dev
}

// unitDeviance is the per-observation deviance contribution.
func unitDeviance(y, mu float64, family Family) float64 {
	switch family {
	case Gaussian:
		d := y - mu
		return d * d
	case Poisson:
		if mu < 1e-10 {
			mu = 1e-10
		}
		if y <= 0 {
			return 2 * mu
		}
		return 2 * (y*math.Log(y/mu) - (y - mu))
	case GammaLog:
		if mu < 1e-10 {
			mu = 1e-10
		}
		if y <= 0 {
			y = 1e-10
		}
		return 2 * (-math.Log(y/mu) + (y-mu)/mu)
	default:
		return 0
	}
}

// nullDeviance is the deviance of the intercept-only model.
func nullDeviance(y []float64, family Family) float64 {
	mu := stats.Mean(y)
	var dev float64
	for _, v := range y {
		dev += unitDeviance(v, mu, family)
	}
	return dev
}

// String summarizes the model like R's print.glm.
func (m *Model) String() string {
	s := fmt.Sprintf("glm(family=%v): intercept=%.4g", m.Family, m.Coef[0])
	for j, name := range m.Names {
		s += fmt.Sprintf(", %s=%.4g", name, m.Coef[j+1])
	}
	s += fmt.Sprintf(" [residual deviance %.4g, null %.4g]", m.Deviance, m.NullDev)
	return s
}
