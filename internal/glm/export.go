package glm

import (
	"errors"
	"fmt"
	"math"

	"blackforest/internal/jsonx"
)

// ExportedModel is the serializable form of a fitted GLM.
type ExportedModel struct {
	Family     string        `json:"family"`
	Names      []string      `json:"names"`
	Coef       []float64     `json:"coef"`
	Deviance   jsonx.Float64 `json:"deviance"`
	NullDev    jsonx.Float64 `json:"null_deviance"`
	Iterations int           `json:"iterations"`
}

// Export returns the model in serializable form.
func (m *Model) Export() *ExportedModel {
	return &ExportedModel{
		Family:     m.Family.String(),
		Names:      append([]string(nil), m.Names...),
		Coef:       append([]float64(nil), m.Coef...),
		Deviance:   jsonx.Float64(m.Deviance),
		NullDev:    jsonx.Float64(m.NullDev),
		Iterations: m.Iterations,
	}
}

// parseFamily inverts Family.String.
func parseFamily(s string) (Family, error) {
	for _, f := range []Family{Gaussian, Poisson, GammaLog} {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("glm: unknown family %q", s)
}

// Import reconstructs a model from its exported form, validating shape and
// finiteness so a corrupted file errors instead of producing a model that
// panics or emits NaNs on Predict.
func Import(e *ExportedModel) (*Model, error) {
	if e == nil {
		return nil, errors.New("glm: nil exported model")
	}
	family, err := parseFamily(e.Family)
	if err != nil {
		return nil, err
	}
	if len(e.Names) == 0 {
		return nil, errors.New("glm: exported model has no predictors")
	}
	if len(e.Coef) != len(e.Names)+1 {
		return nil, fmt.Errorf("glm: %d coefficients for %d predictors (want %d)",
			len(e.Coef), len(e.Names), len(e.Names)+1)
	}
	for i, c := range e.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("glm: coefficient %d is not finite", i)
		}
	}
	return &Model{
		Family:     family,
		Names:      append([]string(nil), e.Names...),
		Coef:       append([]float64(nil), e.Coef...),
		Deviance:   float64(e.Deviance),
		NullDev:    float64(e.NullDev),
		Iterations: e.Iterations,
	}, nil
}
