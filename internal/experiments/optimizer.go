package experiments

import (
	"fmt"
	"io"

	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/optimize"
	"blackforest/internal/report"
)

// OptimizerRow is one kernel × device outcome of the closed-loop search.
type OptimizerRow struct {
	Kernel string
	Device string
	Result *optimize.Result
}

// OptimizerStudy is the closed-loop optimization experiment: for every
// kernel in a small suite — some at their stock SDK launch configuration,
// some deliberately detuned — classify the bottleneck regime against the
// device roofline and run the guarded launch-config search on both the
// training and the hardware-scaling target device. It demonstrates the
// loop the analysis pipeline motivates: diagnose, transform, re-simulate,
// keep only validated wins.
type OptimizerStudy struct {
	Rows []OptimizerRow
}

// optimizerSuite builds the searched workloads. Stock entries show what
// the search finds (or honestly fails to find) in already-tuned SDK
// defaults; the detuned entries show recovery from a mis-configured
// launch.
func optimizerSuite(o Options) []struct {
	label string
	w     optimize.Tunable
} {
	n := 1 << 20
	mm := 512
	tr := 1024
	if o.Scale == Quick {
		n = 1 << 18
		mm = 256
		tr = 512
	}
	seed := o.Seed
	return []struct {
		label string
		w     optimize.Tunable
	}{
		{"matmul (stock)", &kernels.MatMul{N: mm, Seed: seed}},
		{"reduce3 (stock)", &kernels.Reduction{Variant: 3, N: n, BlockSize: 256, Seed: seed}},
		{"reduce6 (detuned)", &kernels.Reduction{Variant: 6, N: n, BlockSize: 64, MaxBlocks: 32, Seed: seed}},
		{"transpose0 (stock)", &kernels.Transpose{Variant: 0, N: tr, Seed: seed}},
		{"histogram1 (detuned)", &kernels.Histogram{Variant: 1, N: n, BlockSize: 64, Seed: seed}},
	}
}

// optimizeConfig assembles the search configuration for one device,
// wiring in the engine's cache, pool and tracer when present.
func (o Options) optimizeConfig(dev *gpusim.Device) optimize.Config {
	cfg := optimize.Config{
		Device:            dev,
		SearchSimBlocks:   o.maxSimBlocks() / 2,
		ValidateSimBlocks: o.maxSimBlocks(),
		Seed:              o.Seed,
	}
	if o.Engine != nil {
		cfg.Cache = o.Engine.cache
		cfg.Gate = o.Engine.gate
		cfg.Tracer = o.Engine.tracer
	}
	return cfg
}

// RunOptimizer runs the closed-loop search suite on the training device
// and the hardware-scaling target.
func RunOptimizer(o Options) (*OptimizerStudy, error) {
	out := &OptimizerStudy{}
	for _, devName := range []string{trainDevice, targetDevice} {
		dev, err := gpusim.LookupDevice(devName)
		if err != nil {
			return nil, err
		}
		cfg := o.optimizeConfig(dev)
		for _, entry := range optimizerSuite(o) {
			res, err := optimize.Optimize(entry.w, cfg)
			if err != nil {
				return nil, fmt.Errorf("optimizing %s on %s: %w", entry.label, devName, err)
			}
			out.Rows = append(out.Rows, OptimizerRow{Kernel: entry.label, Device: devName, Result: res})
		}
	}
	return out, nil
}

// AcceptedOn counts validated improvements found on one device.
func (s *OptimizerStudy) AcceptedOn(device string) int {
	n := 0
	for _, r := range s.Rows {
		if r.Device == device {
			n += r.Result.Accepted
		}
	}
	return n
}

// Render writes the summary table plus one decision line per accepted
// transformation.
func (s *OptimizerStudy) Render(w io.Writer) error {
	fmt.Fprintf(w, "== closed-loop optimizer: roofline regime + guarded launch-config search ==\n")
	rows := make([][]string, 0, len(s.Rows))
	for _, r := range s.Rows {
		res := r.Result
		rows = append(rows, []string{
			r.Kernel, r.Device, string(res.Classification.Regime),
			fmt.Sprintf("%.4g", res.Baseline.Cycles),
			fmt.Sprintf("%.4g", res.Final.Cycles),
			fmt.Sprintf("%+.1f%%", res.GainPct),
			fmt.Sprintf("%d/%d", res.Accepted, res.Tried),
			optimize.ParamsString(res.Final.Params),
		})
	}
	if err := report.Table(w, []string{"kernel", "device", "regime", "baseline", "final", "gain", "acc/tried", "final params"}, rows); err != nil {
		return err
	}
	for _, r := range s.Rows {
		for _, d := range r.Result.Decisions {
			if d.Outcome == optimize.OutcomeAccepted {
				fmt.Fprintf(w, "  %s on %s: step %d %s (from %d) — %s\n",
					r.Kernel, r.Device, d.Step, d.Transform, d.From, d.Reason)
			}
		}
	}
	return nil
}
