package experiments

import (
	"fmt"
	"io"
	"sort"

	"blackforest/internal/core"
	"blackforest/internal/dataset"
	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
	"blackforest/internal/report"
)

// trainDevice is the GPU the paper trains on in every experiment.
const trainDevice = "GTX580"

// targetDevice is the paper's hardware-scaling target.
const targetDevice = "K20m"

// pipelineConfig assembles the core.Config for an experiment.
func (o Options) pipelineConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Forest = o.forestConfig()
	cfg.Seed = o.Seed
	return cfg
}

// collectOptions assembles the data-collection options for an experiment.
// With an Engine, collections share its run cache and worker pool.
func (o Options) collectOptions() core.CollectOptions {
	copt := core.CollectOptions{
		MaxSimBlocks: o.maxSimBlocks(),
		Seed:         o.Seed,
		Workers:      o.Workers,
	}
	if o.Engine != nil {
		copt.Cache = o.Engine.cache
		copt.Gate = o.Engine.gate
		copt.Tracer = o.Engine.tracer
	}
	return copt
}

// ReductionAnalysis is the result of a §5 bottleneck analysis (Figures
// 2–4): importance ranking, partial dependence of the top counter, and the
// PCA refinement.
type ReductionAnalysis struct {
	Variant  int
	Device   string
	Frame    *dataset.Frame
	Analysis *core.Analysis
	// Bottlenecks covers the top predictors with direction + pattern.
	Bottlenecks []core.Bottleneck
	// PDName/PDGrid/PDResponse are the partial dependence of the most
	// important counter (Fig 2b/3b/4b); PDLo/PDHi are the 90% pointwise
	// confidence band across trees (the §7 suggestion).
	PDName     string
	PDGrid     []float64
	PDResponse []float64
	PDLo       []float64
	PDHi       []float64
	// PCA is the refinement (Fig 2c/3c): retained components, variance,
	// loadings, and theme labels.
	PCA *core.PCARefinement
}

// RunReductionAnalysis reproduces Figure 2 (variant 1), Figure 3
// (variant 2), or Figure 4 (variant 6); other variants run the same
// pipeline for completeness.
func RunReductionAnalysis(variant int, o Options) (*ReductionAnalysis, error) {
	dev, err := gpusim.LookupDevice(trainDevice)
	if err != nil {
		return nil, err
	}
	frame, err := core.Collect(dev, ReductionSweep(variant, o), o.collectOptions())
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(frame, o.pipelineConfig())
	if err != nil {
		return nil, err
	}
	bn, err := a.Bottlenecks(8)
	if err != nil {
		return nil, err
	}
	res := &ReductionAnalysis{
		Variant:     variant,
		Device:      dev.Name,
		Frame:       frame,
		Analysis:    a,
		Bottlenecks: bn,
	}
	res.PDName = a.Importance[0].Name
	res.PDGrid, res.PDResponse, res.PDLo, res.PDHi, err = a.Forest.PartialDependenceCI(res.PDName, 25, 0.9)
	if err != nil {
		return nil, err
	}
	res.PCA, err = a.PCARefine(false)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes the figure-equivalent report.
func (r *ReductionAnalysis) Render(w io.Writer) error {
	fmt.Fprintf(w, "== reduce%d on %s: bottleneck analysis (%d runs, OOB %%var explained %.1f%%) ==\n\n",
		r.Variant, r.Device, r.Frame.NumRows(), 100*r.Analysis.VarExplained)

	labels := make([]string, 0, 10)
	values := make([]float64, 0, 10)
	for i, imp := range r.Analysis.Importance {
		if i >= 10 {
			break
		}
		labels = append(labels, imp.Name)
		values = append(values, imp.PctIncMSE)
	}
	if err := report.BarChart(w, "(a) variable importance (%IncMSE)", labels, values, 40); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n(b) partial dependence of %s on predicted time (90%% band)\n", r.PDName)
	if err := report.XYChart(w, "", r.PDGrid, []report.Series{
		{Name: "time_ms", Y: r.PDResponse},
		{Name: "lo", Y: r.PDLo},
		{Name: "hi", Y: r.PDHi},
	}, 56, 12); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n(c) PCA refinement: %d components explain %.1f%% of variance\n",
		r.PCA.Components, 100*r.PCA.ExplainedVariance)
	for c := 0; c < r.PCA.Components; c++ {
		fmt.Fprintf(w, "  PC%d (%s):", c+1, r.PCA.Labels[c])
		for i, ld := range r.PCA.Loadings[c] {
			if i >= 4 {
				break
			}
			fmt.Fprintf(w, " %s=%+.2f", ld.Variable, ld.Value)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\nbottleneck diagnosis:")
	rows := make([][]string, 0, len(r.Bottlenecks))
	for _, b := range r.Bottlenecks {
		rows = append(rows, []string{
			fmt.Sprintf("%d", b.Rank), b.Counter, b.Direction.String(),
			fmt.Sprintf("%.2f", b.Correlation), b.Pattern,
		})
	}
	return report.Table(w, []string{"rank", "counter", "direction", "corr", "pattern"}, rows)
}

// ProblemScaling is the result of a §6.1 prediction experiment (Figures 5
// and 6): full and reduced analyses, characteristic-only predictions on
// the test split, and the counter models behind them.
type ProblemScaling struct {
	Workload string
	Device   string
	Frame    *dataset.Frame
	Analysis *core.Analysis
	Reduced  *core.Analysis
	// RetainedPower reports whether the reduced model kept the full
	// model's predictive power.
	RetainedPower bool
	Scaler        *core.ProblemScaler
	// Eval holds predicted vs measured times on the held-out rows
	// (Fig 5b / 6b).
	Eval *core.Evaluation
	// CounterSeries holds, per modeled counter, measured and modeled
	// values across the sweep (Fig 5c / 6c), ordered by size.
	CounterSeries []CounterSeries
}

// CounterSeries is one counter's measured-vs-modeled curve.
type CounterSeries struct {
	Counter  string
	Kind     string
	R2       float64
	Deviance float64
	Sizes    []float64
	Measured []float64
	Modeled  []float64
}

// RunMatMulPrediction reproduces Figure 5: matrix-multiply problem
// scaling. Counter models are GLMs where those fit ("built as generalized
// linear models because of their simplicity"), with MARS picking up the
// saturating counters a cubic basis cannot follow.
func RunMatMulPrediction(o Options) (*ProblemScaling, error) {
	return runProblemScaling("matmul", MatMulSweep(o), core.AutoModel, o)
}

// RunNWPrediction reproduces Figure 6: Needleman-Wunsch problem scaling
// with MARS counter models.
func RunNWPrediction(o Options) (*ProblemScaling, error) {
	return runProblemScaling("needle", NWSweep(o), core.MARSModel, o)
}

func runProblemScaling(name string, runs []profiler.Workload, kind core.ModelKind, o Options) (*ProblemScaling, error) {
	dev, err := gpusim.LookupDevice(trainDevice)
	if err != nil {
		return nil, err
	}
	frame, err := core.Collect(dev, runs, o.collectOptions())
	if err != nil {
		return nil, err
	}
	cfg := o.pipelineConfig()
	a, err := core.Analyze(frame, cfg)
	if err != nil {
		return nil, err
	}
	reduced, retained, err := a.Reduce(cfg.TopK, 0)
	if err != nil {
		return nil, err
	}
	scaler, err := core.NewProblemScaler(a, cfg.TopK, kind)
	if err != nil {
		return nil, err
	}
	eval, err := scaler.Evaluate(a.Test)
	if err != nil {
		return nil, err
	}

	res := &ProblemScaling{
		Workload:      name,
		Device:        dev.Name,
		Frame:         frame,
		Analysis:      a,
		Reduced:       reduced,
		RetainedPower: retained,
		Scaler:        scaler,
		Eval:          eval,
	}

	// Counter models vs measurements across the sweep (Fig 5c/6c).
	sizes := frame.MustColumn("size")
	names := make([]string, 0, len(scaler.Models))
	for n := range scaler.Models {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, cname := range names {
		cm := scaler.Models[cname]
		measured := frame.MustColumn(cname)
		modeled := make([]float64, len(sizes))
		for i, s := range sizes {
			chars := make([]float64, len(scaler.CharNames))
			for j, c := range scaler.CharNames {
				if c == "size" {
					chars[j] = s
				} else {
					chars[j], _ = frame.At(i, c)
				}
			}
			modeled[i] = cm.Predict(chars)
		}
		sx, sm := report.SortedByY(sizes, measured)
		_, sp := report.SortedByY(sizes, modeled)
		res.CounterSeries = append(res.CounterSeries, CounterSeries{
			Counter: cname, Kind: cm.Kind, R2: cm.TrainR2, Deviance: cm.ResidualDeviance,
			Sizes: sx, Measured: sm, Modeled: sp,
		})
	}
	return res, nil
}

// Render writes the figure-equivalent report.
func (r *ProblemScaling) Render(w io.Writer) error {
	fmt.Fprintf(w, "== %s on %s: problem scaling (%d runs) ==\n\n", r.Workload, r.Device, r.Frame.NumRows())
	fmt.Fprintf(w, "forest: OOB MSE %.4g, %%var explained %.1f%%; test MSE %.4g, R² %.3f\n",
		r.Analysis.OOBMSE, 100*r.Analysis.VarExplained, r.Analysis.TestMSE, r.Analysis.TestR2)
	fmt.Fprintf(w, "reduced model (top %d): test R² %.3f (power retained: %v)\n\n",
		len(r.Reduced.Predictors), r.Reduced.TestR2, r.RetainedPower)

	labels := make([]string, 0, 10)
	values := make([]float64, 0, 10)
	for i, imp := range r.Analysis.Importance {
		if i >= 10 {
			break
		}
		labels = append(labels, imp.Name)
		values = append(values, imp.PctIncMSE)
	}
	if err := report.BarChart(w, "(a) variable importance (%IncMSE)", labels, values, 40); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n(b) predicted vs measured execution time on held-out runs (MSE %.4g, R² %.3f)\n",
		r.Eval.MSE, r.Eval.R2)
	sizes := make([]float64, len(r.Eval.Chars))
	for i, c := range r.Eval.Chars {
		sizes[i] = c["size"]
	}
	sx, sMeas := report.SortedByY(sizes, r.Eval.Actual)
	_, sPred := report.SortedByY(sizes, r.Eval.Predicted)
	if err := report.XYChart(w, "", sx, []report.Series{
		{Name: "measured", Y: sMeas},
		{Name: "predicted", Y: sPred},
	}, 56, 12); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n(c) counter models (mean R² %.3f)\n", r.Scaler.AverageCounterR2())
	rows := make([][]string, 0, len(r.CounterSeries))
	for _, cs := range r.CounterSeries {
		rows = append(rows, []string{
			cs.Counter, cs.Kind, fmt.Sprintf("%.3f", cs.R2), fmt.Sprintf("%.3g", cs.Deviance),
		})
	}
	return report.Table(w, []string{"counter", "model", "R²", "resid.deviance"}, rows)
}

// HWScaling is the result of a §6.2 experiment (Figures 7 and 8).
type HWScaling struct {
	Workload string
	Result   *core.HWScaling
}

// RunHWScalingMM reproduces Figure 7: K20m matrix-multiply predictions
// from a GTX580-trained forest.
func RunHWScalingMM(o Options) (*HWScaling, error) {
	return runHWScaling("matmul", MatMulSweep(o), MatMulSweep(o), o)
}

// RunHWScalingNW reproduces Figure 8: the NW case where Fermi and Kepler
// importance rankings diverge and the mixed-variable workaround applies.
func RunHWScalingNW(o Options) (*HWScaling, error) {
	return runHWScaling("needle", NWSweep(o), NWSweep(o), o)
}

func runHWScaling(name string, trainRuns, targetRuns []profiler.Workload, o Options) (*HWScaling, error) {
	devA, err := gpusim.LookupDevice(trainDevice)
	if err != nil {
		return nil, err
	}
	devB, err := gpusim.LookupDevice(targetDevice)
	if err != nil {
		return nil, err
	}
	// Both devices' sweeps are profiled concurrently: the collections are
	// independent, and per-run noise identity makes the result equal to
	// two sequential Collect calls.
	coptA := o.collectOptions()
	coptB := coptA
	coptB.Seed = o.Seed ^ 0xca11b
	frameA, frameB, err := core.CollectPair(devA, trainRuns, coptA, devB, targetRuns, coptB)
	if err != nil {
		return nil, err
	}
	hw, err := core.HardwareScale(frameA, frameB, devA, devB, o.pipelineConfig())
	if err != nil {
		return nil, err
	}
	return &HWScaling{Workload: name, Result: hw}, nil
}

// Render writes the figure-equivalent report.
func (r *HWScaling) Render(w io.Writer) error {
	hw := r.Result
	fmt.Fprintf(w, "== %s: hardware scaling %s → %s ==\n\n", r.Workload, hw.TrainDevice, hw.TargetDevice)
	fmt.Fprintf(w, "(a) top variables on %s: %v\n", hw.TrainDevice, hw.TrainImportance)
	fmt.Fprintf(w, "(b) top variables on %s: %v\n", hw.TargetDevice, hw.TargetImportance)
	fmt.Fprintf(w, "importance similarity (rank corr): %.2f — %s\n\n",
		hw.Similarity, map[bool]string{true: "sufficiently similar, straightforward scaling applies",
			false: "not similar; mixed-variable workaround needed"}[hw.Similar])

	renderEval := func(title string, ev *core.Evaluation) error {
		fmt.Fprintf(w, "%s: MSE %.4g, R² %.3f\n", title, ev.MSE, ev.R2)
		sizes := make([]float64, len(ev.Chars))
		for i, c := range ev.Chars {
			sizes[i] = c["size"]
		}
		sx, sMeas := report.SortedByY(sizes, ev.Actual)
		_, sPred := report.SortedByY(sizes, ev.Predicted)
		return report.XYChart(w, "", sx, []report.Series{
			{Name: "measured", Y: sMeas},
			{Name: "predicted", Y: sPred},
		}, 56, 12)
	}
	if err := renderEval("(c) straightforward prediction", hw.Straightforward); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmixed variables: %v\n", hw.MixedVariables)
	return renderEval("(d) mixed-variable prediction", hw.Mixed)
}
