package experiments

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"blackforest/internal/obs"
)

// TestRunOptimizerQuick: the closed-loop search finds at least one
// validated launch-config improvement on each device model, and the
// report renders every row.
func TestRunOptimizerQuick(t *testing.T) {
	res, err := RunOptimizer(Options{Scale: Quick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 5 kernels × 2 devices", len(res.Rows))
	}
	for _, devName := range []string{trainDevice, targetDevice} {
		if n := res.AcceptedOn(devName); n < 1 {
			t.Errorf("no validated improvement found on %s", devName)
		}
	}
	for _, row := range res.Rows {
		if row.Result.Final.Cycles > row.Result.Baseline.Cycles {
			t.Errorf("%s on %s: final cycles regressed", row.Kernel, row.Device)
		}
		if row.Result.Classification.Regime == "" {
			t.Errorf("%s on %s: no regime", row.Kernel, row.Device)
		}
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"closed-loop optimizer", "matmul (stock)", "reduce6 (detuned)", "K20m", "validated gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunOptimizerSharesEngine: run through a shared engine, the search
// draws every simulation through the engine cache — a second run is
// all hits — and emits optimizer spans on the tracer.
func TestRunOptimizerSharesEngine(t *testing.T) {
	// The clock is called from concurrent worker goroutines' spans.
	var now atomic.Int64
	tracer := obs.NewTracer(func() int64 { return now.Add(1000) })
	eng, err := NewEngine(EngineConfig{Workers: 2, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Scale: Quick, Seed: 1, Engine: eng}
	if _, err := RunOptimizer(o); err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats()
	if cold.Misses == 0 {
		t.Fatal("cold run recorded no cache misses")
	}
	if _, err := RunOptimizer(o); err != nil {
		t.Fatal(err)
	}
	warm := eng.Stats()
	if warm.Misses != cold.Misses {
		t.Errorf("warm run simulated %d new runs, want 0", warm.Misses-cold.Misses)
	}
	if warm.Hits() <= cold.Hits() {
		t.Error("warm run recorded no cache hits")
	}
	foundSpan := false
	for _, ev := range tracer.Events() {
		if ev.Lane == -2 && strings.HasPrefix(ev.Name, "optimize ") {
			foundSpan = true
			break
		}
	}
	if !foundSpan {
		t.Error("no optimizer spans on the tracer")
	}
}
