package experiments

import (
	"bytes"
	"os"
	"testing"

	"blackforest/internal/report"
)

// TestFig2MatchesGoldenCSV re-runs the Figure 2 reduction analysis with the
// committed configuration (full scale, seed 1 — exactly what produced
// results/ via `bfbench -exp all -scale full -seed 1`) and requires the
// emitted partial-dependence CSV to match results/fig2_partial_dependence.csv
// byte for byte. This pins the whole pipeline — simulator, profiler noise
// seeding, forest fitting, partial dependence — as run-to-run deterministic;
// an intentional change to any of those must regenerate results/.
func TestFig2MatchesGoldenCSV(t *testing.T) {
	golden, err := os.ReadFile("../../results/fig2_partial_dependence.csv")
	if err != nil {
		t.Fatalf("reading golden file (regenerate with bfbench -exp all -scale full -seed 1 -csvdir results/): %v", err)
	}

	res, err := RunReductionAnalysis(1, Options{Scale: Full, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := report.WriteSeriesCSV(&got, res.PDName, res.PDGrid,
		[]report.Series{{Name: "predicted_time_ms", Y: res.PDResponse}}); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got.Bytes(), golden) {
		t.Fatalf("fig2 partial dependence drifted from the committed golden file.\n"+
			"If the change is intentional, regenerate results/ with:\n"+
			"  go run ./cmd/bfbench -exp all -scale full -seed 1 -csvdir results/\n"+
			"got:\n%s\ngolden:\n%s", got.Bytes(), golden)
	}
}
