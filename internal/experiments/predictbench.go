package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"blackforest/internal/forest"
	"blackforest/internal/report"
	"blackforest/internal/stats"
)

// PredictBench measures forest inference latency: the flat compiled engine
// (single predicts and tree-major batches) against the frozen pointer-walker
// reference, on the same fitted forest and the same query set. Timings are
// single-threaded (Workers: 1) so the comparison isolates the engine, not
// the worker pool; the bit-identity column is the tentpole guarantee that
// the speedup changes nothing about the answers.
type PredictBench struct {
	Trees    int
	Features int
	Rows     int // training rows
	Queries  int // benchmark query rows

	SingleFlatNS    float64 // ns per single-vector Predict, flat engine
	SinglePointerNS float64 // ns per single-vector PredictPointer
	BatchFlatNS     float64 // ns per row, PredictAll (tree-major batch)
	BatchPointerNS  float64 // ns per row, row-major pointer loop

	BitIdentical bool
}

// RunPredictBench fits a synthetic forest and times both engines.
func RunPredictBench(o Options) (*PredictBench, error) {
	b := &PredictBench{Trees: 300, Features: 8, Rows: 1200, Queries: 4096}
	if o.Scale == Quick {
		b.Trees, b.Rows, b.Queries = 60, 300, 512
	}

	rng := stats.NewRNG(o.Seed)
	x := make([][]float64, b.Rows)
	y := make([]float64, b.Rows)
	names := make([]string, b.Features)
	for j := range names {
		names[j] = fmt.Sprintf("x%d", j)
	}
	for i := range x {
		x[i] = make([]float64, b.Features)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64() * 50
		}
		y[i] = 3*x[i][0] - 2*x[i][1] + 0.5*x[i][2]*x[i][2]/50 + rng.NormFloat64()
	}
	f, err := forest.Fit(x, y, names, forest.Config{
		NTrees: b.Trees, MinNodeSize: 5, Seed: o.Seed, Workers: 1,
	})
	if err != nil {
		return nil, err
	}

	queries := make([][]float64, b.Queries)
	for i := range queries {
		q := make([]float64, b.Features)
		for j := range q {
			q[j] = rng.NormFloat64() * 60
		}
		queries[i] = q
	}

	// Bit-identity gate before any timing: flat single, flat batch, and the
	// pointer oracle must agree on every query.
	b.BitIdentical = true
	batch := f.PredictAll(queries)
	for i, q := range queries {
		want := math.Float64bits(f.PredictPointer(q))
		if math.Float64bits(f.Predict(q)) != want || math.Float64bits(batch[i]) != want {
			b.BitIdentical = false
			break
		}
	}
	if !b.BitIdentical {
		return b, errors.New("experiments: flat engine diverged from the pointer walker")
	}

	var sink float64
	b.SingleFlatNS = timePerOp(b.Queries, func() {
		for _, q := range queries {
			sink += f.Predict(q)
		}
	})
	b.SinglePointerNS = timePerOp(b.Queries, func() {
		for _, q := range queries {
			sink += f.PredictPointer(q)
		}
	})
	out := make([]float64, b.Queries)
	b.BatchFlatNS = timePerOp(b.Queries, func() {
		copy(out, f.PredictAll(queries))
		sink += out[0]
	})
	b.BatchPointerNS = timePerOp(b.Queries, func() {
		for i, q := range queries {
			out[i] = f.PredictPointer(q)
		}
		sink += out[0]
	})
	if math.IsNaN(sink) {
		return nil, errors.New("experiments: benchmark produced NaN")
	}
	return b, nil
}

// timePerOp runs fn (which performs rowsPerCall operations) until it has
// accumulated enough wall clock for a stable estimate, and returns
// nanoseconds per operation.
func timePerOp(rowsPerCall int, fn func()) float64 {
	const minDuration = 200 * time.Millisecond
	fn() // warm up
	var elapsed time.Duration
	calls := 0
	for elapsed < minDuration {
		start := time.Now()
		fn()
		elapsed += time.Since(start)
		calls++
	}
	return float64(elapsed.Nanoseconds()) / float64(calls*rowsPerCall)
}

// Render writes the engine comparison table.
func (b *PredictBench) Render(w io.Writer) error {
	fmt.Fprintf(w, "== forest predict latency: flat compiled engine vs pointer walker ==\n")
	fmt.Fprintf(w, "forest: %d trees, %d features; %d queries; single-threaded\n",
		b.Trees, b.Features, b.Queries)
	rows := [][]string{
		{"single", fmt.Sprintf("%.0f", b.SingleFlatNS), fmt.Sprintf("%.0f", b.SinglePointerNS),
			fmt.Sprintf("%.2fx", b.SinglePointerNS/b.SingleFlatNS)},
		{"batch(tree-major)", fmt.Sprintf("%.0f", b.BatchFlatNS), fmt.Sprintf("%.0f", b.BatchPointerNS),
			fmt.Sprintf("%.2fx", b.BatchPointerNS/b.BatchFlatNS)},
	}
	if err := report.Table(w, []string{"mode", "flat ns/row", "pointer ns/row", "speedup"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "bit-identical to pointer walker: %v\n", b.BitIdentical)
	return nil
}
