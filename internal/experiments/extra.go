package experiments

import (
	"fmt"
	"io"

	"blackforest/internal/core"
	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
	"blackforest/internal/report"
)

// LadderRow is one kernel variant's measurements in the reduction ladder.
type LadderRow struct {
	Kernel      string
	TimeMS      float64
	BandwidthGB float64 // dram read throughput
	Bottleneck  string
	ReplayOvh   float64
	Divergent   float64
}

// ReductionLadder reproduces the CUDA SDK reduction whitepaper's summary
// table — time and achieved bandwidth per optimization step — as measured
// by the profiler. The paper's §5 narrative ("each implementing a specific
// optimization technique addressing specific performance bottlenecks")
// is this table's story.
type ReductionLadder struct {
	Device string
	N      int
	Rows   []LadderRow
}

// RunReductionLadder measures all seven variants at one size.
func RunReductionLadder(o Options) (*ReductionLadder, error) {
	dev, err := gpusim.LookupDevice(trainDevice)
	if err != nil {
		return nil, err
	}
	n := 1 << 22
	if o.Scale == Quick {
		n = 1 << 18
	}
	popt := profiler.Options{MaxSimBlocks: o.maxSimBlocks(), NoiseSigma: -1}
	if o.Engine != nil {
		popt.Cache = o.Engine.cache
		popt.Gate = o.Engine.gate
		popt.Tracer = o.Engine.tracer
	}
	p := profiler.New(dev, popt)
	out := &ReductionLadder{Device: dev.Name, N: n}
	for v := 0; v <= 6; v++ {
		prof, err := p.Run(&kernels.Reduction{Variant: v, N: n, BlockSize: 256, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, LadderRow{
			Kernel:      prof.Workload,
			TimeMS:      prof.TimeMS,
			BandwidthGB: prof.Metrics["dram_read_throughput"],
			Bottleneck:  prof.DominantBottleneck(),
			ReplayOvh:   prof.Metrics["inst_replay_overhead"],
			Divergent:   prof.Metrics["divergent_branch"],
		})
	}
	return out, nil
}

// Render writes the ladder table.
func (r *ReductionLadder) Render(w io.Writer) error {
	fmt.Fprintf(w, "== reduction optimization ladder on %s (n = %d) ==\n", r.Device, r.N)
	rows := make([][]string, 0, len(r.Rows))
	for i, row := range r.Rows {
		speedup := r.Rows[0].TimeMS / row.TimeMS
		rows = append(rows, []string{
			row.Kernel,
			fmt.Sprintf("%.4f", row.TimeMS),
			fmt.Sprintf("%.1f", row.BandwidthGB),
			fmt.Sprintf("%.2fx", speedup),
			row.Bottleneck,
			fmt.Sprintf("%.3f", row.ReplayOvh),
			fmt.Sprintf("%.0f", row.Divergent),
		})
		_ = i
	}
	return report.Table(w, []string{"kernel", "time(ms)", "BW(GB/s)", "speedup", "bound", "replay_ovh", "divergent"}, rows)
}

// runBottleneckAnalysis runs the §5-style pipeline on any workload sweep.
func runBottleneckAnalysis(runs []profiler.Workload, o Options) (*core.Analysis, []core.Bottleneck, error) {
	dev, err := gpusim.LookupDevice(trainDevice)
	if err != nil {
		return nil, nil, err
	}
	frame, err := core.Collect(dev, runs, o.collectOptions())
	if err != nil {
		return nil, nil, err
	}
	a, err := core.Analyze(frame, o.pipelineConfig())
	if err != nil {
		return nil, nil, err
	}
	bns, err := a.Bottlenecks(8)
	if err != nil {
		return nil, nil, err
	}
	return a, bns, nil
}

// WorkloadAnalysis is a generic bottleneck-analysis result for the extra
// (beyond-paper) workloads.
type WorkloadAnalysis struct {
	Workload    string
	Analysis    *core.Analysis
	Bottlenecks []core.Bottleneck
}

// RunTransposeAnalysis applies BlackForest to one transpose variant over a
// size sweep.
func RunTransposeAnalysis(variant int, o Options) (*WorkloadAnalysis, error) {
	sizes := []int{64, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048}
	if o.Scale == Quick {
		sizes = []int{64, 128, 256, 384, 512}
	}
	var runs []profiler.Workload
	seed := o.Seed
	for r := 0; r < 3; r++ {
		for _, n := range sizes {
			seed++
			runs = append(runs, &kernels.Transpose{Variant: variant, N: n, Seed: seed})
		}
	}
	a, bns, err := runBottleneckAnalysis(runs, o)
	if err != nil {
		return nil, err
	}
	return &WorkloadAnalysis{Workload: fmt.Sprintf("transpose%d", variant), Analysis: a, Bottlenecks: bns}, nil
}

// RunHistogramAnalysis applies BlackForest to one histogram variant over a
// joint (size, skew) sweep — the contention knob makes the atomic counters
// informative predictors.
func RunHistogramAnalysis(variant int, o Options) (*WorkloadAnalysis, error) {
	sizes := []int{1 << 16, 1 << 18, 1 << 20, 1 << 21}
	skews := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.97}
	if o.Scale == Quick {
		sizes = []int{1 << 14, 1 << 16, 1 << 18}
		skews = []float64{0, 0.25, 0.5, 0.75, 0.9}
	}
	var runs []profiler.Workload
	seed := o.Seed
	for _, n := range sizes {
		for _, sk := range skews {
			seed++
			runs = append(runs, &kernels.Histogram{Variant: variant, N: n, Skew: sk, Seed: seed})
		}
	}
	a, bns, err := runBottleneckAnalysis(runs, o)
	if err != nil {
		return nil, err
	}
	return &WorkloadAnalysis{Workload: fmt.Sprintf("histogram%d", variant), Analysis: a, Bottlenecks: bns}, nil
}

// Render writes the generic analysis report.
func (r *WorkloadAnalysis) Render(w io.Writer) error {
	fmt.Fprintf(w, "== %s bottleneck analysis (%d runs, %%var explained %.1f%%) ==\n\n",
		r.Workload, r.Analysis.Frame.NumRows(), 100*r.Analysis.VarExplained)
	labels := make([]string, 0, 10)
	values := make([]float64, 0, 10)
	for i, imp := range r.Analysis.Importance {
		if i >= 10 {
			break
		}
		labels = append(labels, imp.Name)
		values = append(values, imp.PctIncMSE)
	}
	if err := report.BarChart(w, "variable importance (%IncMSE)", labels, values, 40); err != nil {
		return err
	}
	fmt.Fprintln(w, "\ndiagnosis:")
	rows := make([][]string, 0, len(r.Bottlenecks))
	for _, b := range r.Bottlenecks {
		rows = append(rows, []string{
			fmt.Sprintf("%d", b.Rank), b.Counter, b.Direction.String(), b.Pattern,
		})
	}
	return report.Table(w, []string{"rank", "counter", "dir", "pattern"}, rows)
}
