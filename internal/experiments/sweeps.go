// Package experiments reproduces the paper's evaluation: each table and
// figure has a Run function that executes the corresponding workload sweep,
// drives the BlackForest pipeline, and renders the figure-equivalent
// text/CSV output. cmd/bfbench and the repository's benchmarks are thin
// wrappers over this package.
package experiments

import (
	"blackforest/internal/forest"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
)

// Scale selects experiment size.
type Scale int

const (
	// Quick shrinks sweeps and forests for CI and tests.
	Quick Scale = iota
	// Full is the paper-scale configuration.
	Full
)

// Options configures an experiment run.
type Options struct {
	Scale Scale
	Seed  uint64
	// Workers bounds concurrent profiling runs during data collection
	// (0 = all CPUs, 1 = sequential). Collected frames are identical for
	// every value. Ignored when Engine is set — its global pool governs.
	Workers int
	// Engine optionally shares a run cache and simulation worker pool
	// across experiments (see Engine). Nil runs the experiment
	// standalone; results are bit-identical either way.
	Engine *Engine
}

// forestConfig returns the forest size for the scale.
func (o Options) forestConfig() forest.Config {
	cfg := forest.DefaultConfig()
	if o.Scale == Quick {
		cfg.NTrees = 120
	}
	return cfg
}

// maxSimBlocks caps per-launch detailed simulation.
func (o Options) maxSimBlocks() int {
	if o.Scale == Quick {
		return 8
	}
	return 16
}

// ReductionSweep builds the §5 data-collection runs for one reduction
// variant: array length and block size are varied jointly (the paper's
// "different problem characteristics", <100 samples).
func ReductionSweep(variant int, o Options) []profiler.Workload {
	sizes := []int{
		1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17,
		1 << 18, 3 << 17, 1 << 19, 3 << 18, 1 << 20, 3 << 19,
		1 << 21, 3 << 20, 1 << 22,
	}
	blockSizes := []int{64, 128, 256, 512}
	if o.Scale == Quick {
		sizes = []int{1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
		blockSizes = []int{128, 256, 512}
	}
	var runs []profiler.Workload
	seed := o.Seed
	for _, bs := range blockSizes {
		for _, n := range sizes {
			seed++
			runs = append(runs, &kernels.Reduction{
				Variant: variant, N: n, BlockSize: bs, Seed: seed,
			})
		}
	}
	return runs
}

// MatMulSweep builds the §6.1.1 runs: matrix sizes 2^5..2^11, repeated
// with fresh inputs for 24 runs total (the paper: "We vary the matrix size
// from 2^5 to 2^11 (i.e., 24 runs)").
func MatMulSweep(o Options) []profiler.Workload {
	sizes := []int{32, 64, 128, 256, 512, 1024, 2048}
	repeats := 3
	extra := 3 // 7·3 + 3 = 24 runs; extras go to the smallest sizes
	if o.Scale == Quick {
		sizes = []int{32, 64, 128, 256, 512}
		repeats = 3
		extra = 0
	}
	var runs []profiler.Workload
	seed := o.Seed
	for r := 0; r < repeats; r++ {
		for _, n := range sizes {
			seed++
			runs = append(runs, &kernels.MatMul{N: n, Seed: seed})
		}
	}
	for i := 0; i < extra; i++ {
		seed++
		runs = append(runs, &kernels.MatMul{N: sizes[i%len(sizes)], Seed: seed})
	}
	return runs
}

// NWSweep builds the §6.1.2 runs: sequence length 64..8192 with a pitch of
// 64 (129 trials) at full scale.
func NWSweep(o Options) []profiler.Workload {
	var lens []int
	if o.Scale == Quick {
		for n := 64; n <= 1024; n += 64 {
			lens = append(lens, n)
		}
	} else {
		for n := 64; n <= 8192; n += 64 {
			lens = append(lens, n)
		}
	}
	var runs []profiler.Workload
	seed := o.Seed
	for _, n := range lens {
		seed++
		runs = append(runs, &kernels.NeedlemanWunsch{SeqLen: n, Seed: seed})
	}
	return runs
}
