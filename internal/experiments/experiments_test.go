package experiments

import (
	"strings"
	"testing"
)

// quickOpts shrinks every experiment for test time.
func quickOpts() Options { return Options{Scale: Quick, Seed: 3} }

func TestRenderTable1(t *testing.T) {
	var sb strings.Builder
	if err := RenderTable1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, counter := range []string{"shared_replay_overhead", "achieved_occupancy", "ipc", "warp_execution_efficiency"} {
		if !strings.Contains(out, counter) {
			t.Errorf("Table 1 missing %s", counter)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	var sb strings.Builder
	if err := RenderTable2(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, cell := range []string{"wsched", "mbw", "GTX480", "K20m", "177.4", "208", "1280"} {
		if !strings.Contains(out, cell) {
			t.Errorf("Table 2 missing %q", cell)
		}
	}
}

func TestSweepSizes(t *testing.T) {
	if n := len(MatMulSweep(Options{Scale: Full})); n != 24 {
		t.Fatalf("full MM sweep has %d runs, want 24 (paper)", n)
	}
	if n := len(NWSweep(Options{Scale: Full})); n != 128 {
		t.Fatalf("full NW sweep has %d runs, want 128 (64..8192 step 64)", n)
	}
	if n := len(ReductionSweep(1, Options{Scale: Full})); n > 100 {
		t.Fatalf("reduction sweep %d runs exceeds the paper's <100 budget", n)
	}
	if len(MatMulSweep(quickOpts())) >= 24 {
		t.Fatal("quick MM sweep not smaller than full")
	}
}

func TestRunReductionAnalysisQuick(t *testing.T) {
	res, err := RunReductionAnalysis(1, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != 1 || res.Device != "GTX580" {
		t.Fatal("metadata wrong")
	}
	if len(res.Analysis.Importance) < 10 {
		t.Fatalf("only %d predictors", len(res.Analysis.Importance))
	}
	if res.PCA.Components < 1 {
		t.Fatal("no PCA components")
	}
	if len(res.PDGrid) == 0 || len(res.PDGrid) != len(res.PDResponse) {
		t.Fatal("partial dependence missing")
	}
	// reduce1 must show a bank-conflict signal somewhere in the data.
	if !res.Frame.Has("shared_replay_overhead") {
		t.Fatal("reduce1 frame lacks shared_replay_overhead")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "variable importance") {
		t.Fatal("render incomplete")
	}
}

func TestReduce2LacksConflictSignal(t *testing.T) {
	// Figure 3's headline: reduce1's top counter vanishes for reduce2.
	res, err := RunReductionAnalysis(2, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Constant-zero counters are dropped during collection.
	if res.Frame.Has("shared_replay_overhead") {
		col := res.Frame.MustColumn("shared_replay_overhead")
		for _, v := range col {
			if v != 0 {
				t.Fatalf("reduce2 shows shared replay overhead %v", v)
			}
		}
	}
}

func TestRunMatMulPredictionQuick(t *testing.T) {
	res, err := RunMatMulPrediction(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "matmul" {
		t.Fatal("workload name wrong")
	}
	if res.Eval == nil || len(res.Eval.Predicted) == 0 {
		t.Fatal("no predictions")
	}
	if len(res.CounterSeries) == 0 {
		t.Fatal("no counter series")
	}
	for _, cs := range res.CounterSeries {
		if cs.Kind != "glm" && cs.Kind != "mars" {
			t.Fatalf("counter %s has kind %q", cs.Counter, cs.Kind)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "predicted vs measured") {
		t.Fatal("render incomplete")
	}
}

func TestRunHWScalingMMQuick(t *testing.T) {
	res, err := RunHWScalingMM(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	hw := res.Result
	if hw.TrainDevice != "GTX580" || hw.TargetDevice != "K20m" {
		t.Fatal("devices wrong")
	}
	if hw.Straightforward == nil || hw.Mixed == nil {
		t.Fatal("evaluations missing")
	}
	if len(hw.TrainImportance) == 0 || len(hw.TargetImportance) == 0 {
		t.Fatal("importance rankings missing")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hardware scaling GTX580 → K20m") {
		t.Fatal("render incomplete")
	}
}

func TestRunReductionLadder(t *testing.T) {
	res, err := RunReductionLadder(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Monotone improvement from reduce0 to reduce6 (allowing equal
	// neighbors for the fully-optimized tail).
	if !(res.Rows[0].TimeMS > res.Rows[2].TimeMS && res.Rows[2].TimeMS > res.Rows[6].TimeMS) {
		t.Fatalf("ladder not descending: %+v", res.Rows)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reduce6") {
		t.Fatal("render incomplete")
	}
}

func TestRunTransposeAnalysis(t *testing.T) {
	res, err := RunTransposeAnalysis(1, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The unpadded tile variant must expose its conflict counter.
	if !res.Analysis.Frame.Has("shared_replay_overhead") {
		t.Fatal("transpose1 frame lacks the bank-conflict signal")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunHistogramAnalysis(t *testing.T) {
	res, err := RunHistogramAnalysis(0, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Analysis.Frame.Has("atomic_replay_overhead") {
		t.Fatal("histogram frame lacks the atomic-contention signal")
	}
	// With the skew knob varied, the contention counter must carry real
	// importance (top half of the ranking).
	rank := -1
	for i, imp := range res.Analysis.Importance {
		if imp.Name == "atomic_replay_overhead" || imp.Name == "atom_count" {
			rank = i
			break
		}
	}
	if rank < 0 || rank > len(res.Analysis.Importance)/2 {
		t.Fatalf("atomic counters rank %d of %d", rank, len(res.Analysis.Importance))
	}
}
