package experiments

import (
	"fmt"
	"io"

	"blackforest/internal/core"
	"blackforest/internal/gpusim"
	"blackforest/internal/report"
)

// PowerPrediction is the §7 extension experiment: "our method is not
// limited to predicting execution time - one could use other metrics of
// interest, such as power, as response variable". The same pipeline runs
// with average power draw as the response: importance identifies the
// functional units driving consumption, and the problem scaler predicts
// power for unseen sizes.
type PowerPrediction struct {
	Workload string
	Device   string
	Analysis *core.Analysis
	Scaler   *core.ProblemScaler
	// Eval compares predicted and measured power on held-out runs.
	Eval *core.Evaluation
	// PerfPerWatt lists size → measured GFLOP/s-per-watt-style efficiency
	// proxy (1/(time·power), arbitrary units), the paper's "computing
	// efficiency in terms of performance per watt".
	PerfPerWattSizes  []float64
	PerfPerWattValues []float64
}

// RunPowerPrediction runs the power-response pipeline on the matrix
// multiply sweep.
func RunPowerPrediction(o Options) (*PowerPrediction, error) {
	dev, err := gpusim.LookupDevice(trainDevice)
	if err != nil {
		return nil, err
	}
	frame, err := core.Collect(dev, MatMulSweep(o), o.collectOptions())
	if err != nil {
		return nil, err
	}
	cfg := o.pipelineConfig()
	cfg.Response = core.PowerColumn
	a, err := core.Analyze(frame, cfg)
	if err != nil {
		return nil, err
	}
	scaler, err := core.NewProblemScaler(a, cfg.TopK, core.AutoModel)
	if err != nil {
		return nil, err
	}
	eval, err := scaler.Evaluate(a.Test)
	if err != nil {
		return nil, err
	}

	res := &PowerPrediction{
		Workload: "matmul",
		Device:   dev.Name,
		Analysis: a,
		Scaler:   scaler,
		Eval:     eval,
	}
	sizes := frame.MustColumn("size")
	times := frame.MustColumn(core.ResponseColumn)
	powers := frame.MustColumn(core.PowerColumn)
	eff := make([]float64, len(sizes))
	for i := range eff {
		// Work ∝ n³; efficiency = work / (time · power) = work/energy.
		n := sizes[i]
		eff[i] = 2 * n * n * n / (times[i] * 1e-3 * powers[i]) / 1e9 // GFLOP/J
	}
	res.PerfPerWattSizes, res.PerfPerWattValues = report.SortedByY(sizes, eff)
	return res, nil
}

// Render writes the extension report.
func (r *PowerPrediction) Render(w io.Writer) error {
	fmt.Fprintf(w, "== extension: power as response variable (%s on %s) ==\n\n", r.Workload, r.Device)
	fmt.Fprintf(w, "forest: %%var explained %.1f%%, test R² %.3f\n\n",
		100*r.Analysis.VarExplained, r.Analysis.TestR2)

	labels := make([]string, 0, 8)
	values := make([]float64, 0, 8)
	for i, imp := range r.Analysis.Importance {
		if i >= 8 {
			break
		}
		labels = append(labels, imp.Name)
		values = append(values, imp.PctIncMSE)
	}
	if err := report.BarChart(w, "counters driving power draw (%IncMSE)", labels, values, 40); err != nil {
		return err
	}

	fmt.Fprintf(w, "\npredicted vs measured power on held-out runs (MSE %.4g, R² %.3f)\n",
		r.Eval.MSE, r.Eval.R2)
	sizes := make([]float64, len(r.Eval.Chars))
	for i, c := range r.Eval.Chars {
		sizes[i] = c["size"]
	}
	sx, sMeas := report.SortedByY(sizes, r.Eval.Actual)
	_, sPred := report.SortedByY(sizes, r.Eval.Predicted)
	if err := report.XYChart(w, "", sx, []report.Series{
		{Name: "measured_W", Y: sMeas},
		{Name: "predicted_W", Y: sPred},
	}, 56, 12); err != nil {
		return err
	}

	fmt.Fprintln(w, "\ncomputing efficiency (GFLOP/J) across sizes:")
	return report.XYChart(w, "", r.PerfPerWattSizes,
		[]report.Series{{Name: "GFLOP/J", Y: r.PerfPerWattValues}}, 56, 10)
}
