package experiments

import (
	"fmt"
	"io"

	"blackforest/internal/counters"
	"blackforest/internal/gpusim"
	"blackforest/internal/report"
)

// RenderTable1 reproduces the paper's Table 1: the performance counters
// used in the study with their meanings, annotated with per-architecture
// availability (the §7 counter-evolution issue).
func RenderTable1(w io.Writer) error {
	fmt.Fprintln(w, "== Table 1: performance counters used in this study ==")
	var rows [][]string
	for _, m := range counters.All() {
		kind := "event"
		if m.Derived {
			kind = "metric"
		}
		arch := ""
		switch {
		case m.OnFermi && m.OnKepler:
			arch = "Fermi+Kepler"
		case m.OnFermi:
			arch = "Fermi"
		case m.OnKepler:
			arch = "Kepler"
		}
		rows = append(rows, []string{m.Name, kind, arch, m.Description})
	}
	return report.Table(w, []string{"counter", "kind", "arch", "meaning"}, rows)
}

// RenderTable2 reproduces Table 2: the GPU hardware metrics injected for
// hardware scaling, for every modeled device.
func RenderTable2(w io.Writer) error {
	fmt.Fprintln(w, "== Table 2: GPU hardware metrics ==")
	names := gpusim.DeviceNames()
	headers := append([]string{"metric", "meaning"}, names...)
	meanings := map[string]string{
		"wsched": "number of warp schedulers",
		"freq":   "clock rate (GHz)",
		"smp":    "number of MPs",
		"rco":    "cores per MP",
		"mbw":    "memory bandwidth (GB/s)",
		"l1c":    "registers per thread",
		"l2c":    "L2 size (KB)",
	}
	var rows [][]string
	for _, metric := range gpusim.HardwareMetricNames() {
		row := []string{metric, meanings[metric]}
		for _, dn := range names {
			dev, err := gpusim.LookupDevice(dn)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%g", dev.HardwareMetrics()[metric]))
		}
		rows = append(rows, row)
	}
	return report.Table(w, headers, rows)
}
