package experiments

import (
	"fmt"

	"blackforest/internal/obs"
	"blackforest/internal/profiler"
	"blackforest/internal/runcache"
)

// Engine is the shared scheduling state for a suite of experiments: one
// content-addressed run cache and one global simulation worker pool.
// Handing the same Engine to every experiment in a bfbench invocation
// (via Options.Engine) changes how profiles are produced, never what
// they are:
//
//   - identical runs appearing in several experiments (e.g. the matmul
//     sweep collected by fig5, fig7, and the power extension) simulate
//     once and hit the cache everywhere else;
//   - identical runs requested concurrently coalesce into one in-flight
//     simulation;
//   - all experiments' remaining simulations drain through one worker
//     pool, so concurrent experiments saturate the machine instead of
//     each rationing its own CPU share.
//
// Every profile served from the engine is bit-identical to what a
// standalone, sequential collection would produce (see profiler.RunKey
// for why the memoization is sound).
type Engine struct {
	cache  *runcache.Cache[*profiler.Profile]
	gate   profiler.Gate
	tracer *obs.Tracer
}

// EngineConfig configures a shared experiment engine.
type EngineConfig struct {
	// CacheDir persists profiles on disk, surviving the process; ""
	// keeps the cache memory-only (still deduplicates within the run).
	CacheDir string
	// MaxMemEntries bounds the in-memory cache layer
	// (0 = runcache.DefaultMaxMemEntries).
	MaxMemEntries int
	// Workers is the size of the global simulation pool
	// (0 = runtime.NumCPU()).
	Workers int
	// Tracer optionally records every collection's spans, one lane per
	// pool slot (plus profiler.LaneCache for cache hits) — the engine
	// names the lanes so exported traces read as worker timelines. Nil
	// disables tracing; results are bit-identical either way.
	Tracer *obs.Tracer
}

// NewEngine builds the shared cache and worker pool.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cache, err := profiler.NewRunCache(cfg.CacheDir, cfg.MaxMemEntries)
	if err != nil {
		return nil, err
	}
	gate := profiler.NewGate(cfg.Workers)
	if tr := cfg.Tracer; tr.Enabled() {
		tr.SetLaneName(profiler.LaneCache, "cache")
		for i := 0; i < gate.Size(); i++ {
			tr.SetLaneName(i, fmt.Sprintf("worker-%d", i))
		}
	}
	return &Engine{cache: cache, gate: gate, tracer: cfg.Tracer}, nil
}

// Stats returns a snapshot of the engine's cache counters.
func (e *Engine) Stats() runcache.Stats { return e.cache.Stats() }

// CacheDir returns the disk cache directory ("" when memory-only).
func (e *Engine) CacheDir() string { return e.cache.Dir() }

// Tracer returns the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// RegisterMetrics exposes the engine's run-cache counters in r under the
// given metric-name prefix (see runcache.RegisterMetrics).
func (e *Engine) RegisterMetrics(r *obs.Registry, prefix string) {
	runcache.RegisterMetrics(r, prefix, e.cache.Stats)
}
