package experiments

import (
	"bytes"
	"testing"
)

// TestEngineDedupAcrossExperiments runs two experiments that collect the
// same matmul sweep (fig5's problem scaling and the power extension)
// against one shared engine: the second experiment's collection must be
// served entirely from the cache, and every rendering must be
// byte-identical to an engine-less run.
func TestEngineDedupAcrossExperiments(t *testing.T) {
	o := Options{Scale: Quick, Seed: 1, Workers: 2}

	base, err := RunMatMulPrediction(o)
	if err != nil {
		t.Fatal(err)
	}
	var baseOut bytes.Buffer
	if err := base.Render(&baseOut); err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	oe := o
	oe.Engine = eng

	cached, err := RunMatMulPrediction(oe)
	if err != nil {
		t.Fatal(err)
	}
	var cachedOut bytes.Buffer
	if err := cached.Render(&cachedOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseOut.Bytes(), cachedOut.Bytes()) {
		t.Fatal("engine-backed run rendered different output than standalone run")
	}
	runs := len(MatMulSweep(o))
	if s := eng.Stats(); s.Misses != int64(runs) || s.Hits() != 0 {
		t.Fatalf("first collection stats = %+v, want %d misses and no hits", s, runs)
	}

	// The power extension collects the same sweep with the same options:
	// zero new simulations.
	if _, err := RunPowerPrediction(oe); err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Misses != int64(runs) || s.Hits() != int64(runs) {
		t.Fatalf("after power extension stats = %+v, want %d misses and %d hits", s, runs, runs)
	}
}

// TestEngineDistinguishesSeeds: fig7 collects the matmul sweep on the
// target device under a derived seed — those runs must not collide with
// the training device's entries.
func TestEngineDistinguishesSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("collects two devices' sweeps")
	}
	o := Options{Scale: Quick, Seed: 1, Workers: 2}
	eng, err := NewEngine(EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	oe := o
	oe.Engine = eng

	if _, err := RunHWScalingMM(oe); err != nil {
		t.Fatal(err)
	}
	runs := len(MatMulSweep(o))
	if s := eng.Stats(); s.Misses != int64(2*runs) || s.Hits() != 0 {
		t.Fatalf("fig7 stats = %+v, want %d distinct simulations", s, 2*runs)
	}
	// fig5 reuses the training half of fig7's collection.
	if _, err := RunMatMulPrediction(oe); err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Hits() != int64(runs) {
		t.Fatalf("after fig5 stats = %+v, want %d hits", s, runs)
	}
}
