package experiments

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"blackforest/internal/obs"
)

// TestTracingIsBitIdentical pins the tentpole determinism contract, in
// the style of the faults-off guarantee: enabling the tracer must not
// change a single output byte — it only ever adds a trace file.
func TestTracingIsBitIdentical(t *testing.T) {
	render := func(tracer *obs.Tracer) []byte {
		engine, err := NewEngine(EngineConfig{Workers: 2, Tracer: tracer})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunReductionAnalysis(1, Options{Seed: 1, Scale: Quick, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	plain := render(nil)
	// The clock is called from concurrent worker goroutines' spans.
	var clock atomic.Int64
	tracer := obs.NewTracer(func() int64 { return clock.Add(1000) })
	traced := render(tracer)

	if !bytes.Equal(plain, traced) {
		t.Fatal("enabling the tracer changed rendered experiment output")
	}
	if tracer.Len() == 0 {
		t.Fatal("enabled tracer recorded no events during a collection")
	}

	// The recorded spans must include the run → attempt → simulate chain
	// and export as valid Chrome trace JSON.
	seen := map[string]bool{}
	for _, ev := range tracer.Events() {
		switch {
		case strings.HasPrefix(ev.Name, "run "):
			seen["run"] = true
		case ev.Name == "attempt":
			seen["attempt"] = true
		case ev.Name == "simulate":
			seen["simulate"] = true
		}
	}
	for _, want := range []string{"run", "attempt", "simulate"} {
		if !seen[want] {
			t.Errorf("trace is missing %q spans", want)
		}
	}
	var out bytes.Buffer
	if err := tracer.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < tracer.Len() {
		t.Fatalf("export has %d events, tracer recorded %d", len(parsed.TraceEvents), tracer.Len())
	}
}

// TestEngineCacheHitsTraced checks that a warm rerun shows up as cache-hit
// instants rather than simulate spans.
func TestEngineCacheHitsTraced(t *testing.T) {
	var clock atomic.Int64
	tracer := obs.NewTracer(func() int64 { return clock.Add(1000) })
	engine, err := NewEngine(EngineConfig{Workers: 2, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Seed: 1, Scale: Quick, Engine: engine}
	if _, err := RunReductionAnalysis(1, o); err != nil {
		t.Fatal(err)
	}
	simulations := 0
	for _, ev := range tracer.Events() {
		if ev.Name == "simulate" {
			simulations++
		}
	}
	if _, err := RunReductionAnalysis(1, o); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, ev := range tracer.Events() {
		if ev.Name == "cache-hit" {
			hits++
		}
	}
	if hits < simulations {
		t.Errorf("warm rerun recorded %d cache-hit instants, want >= %d (one per prior simulation)", hits, simulations)
	}
	after := 0
	for _, ev := range tracer.Events() {
		if ev.Name == "simulate" {
			after++
		}
	}
	if after != simulations {
		t.Errorf("warm rerun simulated again: %d simulate spans, want %d", after, simulations)
	}
}

// TestEngineRegisterMetrics checks the run-cache counters surface through
// the shared registry (the same path bfserve's /metrics uses).
func TestEngineRegisterMetrics(t *testing.T) {
	engine, err := NewEngine(EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Seed: 1, Scale: Quick, Engine: engine}
	if _, err := RunReductionAnalysis(1, o); err != nil {
		t.Fatal(err)
	}
	if _, err := RunReductionAnalysis(1, o); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	engine.RegisterMetrics(reg, "bfbench_runcache")
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE bfbench_runcache_hits_total gauge",
		`bfbench_runcache_hits_total{layer="mem"}`,
		`bfbench_runcache_hits_total{layer="disk"} 0`,
		"bfbench_runcache_misses_total",
		"bfbench_runcache_coalesced_total",
		"bfbench_runcache_bad_entries_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n---\n%s", want, out)
		}
	}
	stats := engine.Stats()
	if stats.MemHits == 0 {
		t.Fatal("second identical analysis produced no mem hits")
	}
	if !strings.Contains(out, "bfbench_runcache_hits_total{layer=\"mem\"} "+
		strconv.FormatInt(stats.MemHits, 10)) {
		t.Errorf("scrape does not reflect live MemHits=%d\n---\n%s", stats.MemHits, out)
	}
}
