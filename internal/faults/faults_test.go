package faults

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.FailRun(1, 0) || in.DropCounter(1, "gld_request") || in.ServeError(1) {
		t.Fatal("nil injector injected a fault")
	}
	if d := in.ServeDelay(1); d != 0 {
		t.Fatalf("nil injector delay = %v, want 0", d)
	}
	r := strings.NewReader("hello")
	if got := in.WrapReader(r, 1); got != io.Reader(r) {
		t.Fatal("nil injector wrapped the reader")
	}
	if got := in.Config(); got != (Config{}) {
		t.Fatalf("nil injector Config = %+v, want zero", got)
	}
}

func TestNewDisabledIsNil(t *testing.T) {
	if in := New(Config{Seed: 99}); in != nil {
		t.Fatal("New with no fault probabilities should return nil")
	}
	if in := New(Config{Seed: 99, LatencySpike: time.Second}); in != nil {
		t.Fatal("a bare spike with latency=0 cannot fire; want nil injector")
	}
	if in := New(Config{RunFailure: 0.5}); in == nil {
		t.Fatal("New with runfail > 0 returned nil")
	}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, RunFailure: 0.3, CounterDropout: 0.3, ServeError: 0.3, ServeLatency: 0.3}
	a, b := New(cfg), New(cfg)
	for id := uint64(0); id < 200; id++ {
		for attempt := 0; attempt < 3; attempt++ {
			if a.FailRun(id, attempt) != b.FailRun(id, attempt) {
				t.Fatalf("FailRun(%d, %d) differs between equal injectors", id, attempt)
			}
		}
		if a.DropCounter(id, "gld_request") != b.DropCounter(id, "gld_request") {
			t.Fatalf("DropCounter(%d) differs between equal injectors", id)
		}
		if a.ServeError(id) != b.ServeError(id) || a.ServeDelay(id) != b.ServeDelay(id) {
			t.Fatalf("serve decisions differ for request %d", id)
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	a := New(Config{Seed: 1, RunFailure: 0.5})
	b := New(Config{Seed: 2, RunFailure: 0.5})
	same := 0
	for id := uint64(0); id < 512; id++ {
		if a.FailRun(id, 0) == b.FailRun(id, 0) {
			same++
		}
	}
	if same == 512 {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestAttemptsDrawIndependently(t *testing.T) {
	in := New(Config{Seed: 7, RunFailure: 0.5})
	varies := false
	for id := uint64(0); id < 64 && !varies; id++ {
		if in.FailRun(id, 0) != in.FailRun(id, 1) {
			varies = true
		}
	}
	if !varies {
		t.Fatal("attempt number does not influence the failure draw; retries could never succeed")
	}
}

func TestHitRateTracksProbability(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		in := New(Config{Seed: 3, RunFailure: p})
		hits := 0
		const n = 4000
		for id := uint64(0); id < n; id++ {
			if in.FailRun(id, 0) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.05 {
			t.Errorf("p=%g: observed hit rate %g", p, got)
		}
	}
}

func TestProbabilityExtremes(t *testing.T) {
	always := New(Config{RunFailure: 1})
	never := New(Config{RunFailure: 0, CounterDropout: 1})
	for id := uint64(0); id < 32; id++ {
		if !always.FailRun(id, 0) {
			t.Fatal("p=1 did not fire")
		}
		if never.FailRun(id, 0) {
			t.Fatal("p=0 fired")
		}
	}
}

func TestServeDelayDefaultSpike(t *testing.T) {
	in := New(Config{Seed: 5, ServeLatency: 1})
	if d := in.ServeDelay(0); d != 50*time.Millisecond {
		t.Fatalf("default spike = %v, want 50ms", d)
	}
	in = New(Config{Seed: 5, ServeLatency: 1, LatencySpike: 5 * time.Millisecond})
	if d := in.ServeDelay(0); d != 5*time.Millisecond {
		t.Fatalf("spike = %v, want 5ms", d)
	}
}

func TestReaderPassthroughWithoutCorruptModes(t *testing.T) {
	in := New(Config{Seed: 1, RunFailure: 0.5}) // enabled, but no reader faults
	r := strings.NewReader("payload")
	if got := in.WrapReader(r, 1); got != io.Reader(r) {
		t.Fatal("WrapReader wrapped despite corrupt=truncate=0")
	}
}

func TestReaderCorruptionDeterministicAndChunkLocal(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 4*corruptChunk)
	cfg := Config{Seed: 11, CorruptReads: 1} // every chunk flips one byte
	read := func(sizes []int) []byte {
		fr := New(cfg).WrapReader(bytes.NewReader(payload), 77)
		var out []byte
		buf := make([]byte, 0)
		for {
			n := sizes[len(out)%len(sizes)]
			buf = make([]byte, n)
			k, err := fr.Read(buf)
			out = append(out, buf[:k]...)
			if err != nil {
				break
			}
		}
		return out
	}
	a := read([]int{1024})
	b := read([]int{7, 130, 4096})
	if !bytes.Equal(a, b) {
		t.Fatal("corruption depends on read sizes")
	}
	flips := 0
	for i, c := range a {
		if c != 0xAA {
			flips++
			if c != 0xAA^0xff {
				t.Fatalf("byte %d corrupted to %#x, want xor 0xff", i, c)
			}
		}
	}
	if flips != 4 { // one per chunk, 4 chunks touched
		t.Fatalf("flipped %d bytes, want 4 (one per chunk)", flips)
	}
	if len(a) != len(payload) {
		t.Fatalf("read %d bytes, want %d", len(a), len(payload))
	}
}

func TestReaderTruncation(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 128<<10)
	fr := New(Config{Seed: 9, TruncateReads: 1}).WrapReader(bytes.NewReader(payload), 5)
	out, err := io.ReadAll(fr)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if len(out) >= len(payload) || len(out) >= 64<<10 {
		t.Fatalf("truncated stream returned %d bytes", len(out))
	}
	// Same identity, same cut point.
	fr2 := New(Config{Seed: 9, TruncateReads: 1}).WrapReader(bytes.NewReader(payload), 5)
	out2, _ := io.ReadAll(fr2)
	if len(out) != len(out2) {
		t.Fatalf("cut point not deterministic: %d vs %d", len(out), len(out2))
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []Config{
		{},
		{Seed: 42, RunFailure: 0.2},
		{Seed: 1, RunFailure: 0.25, CounterDropout: 0.1, CorruptReads: 0.01, TruncateReads: 0.02, ServeError: 0.05, ServeLatency: 0.5, LatencySpike: 25 * time.Millisecond},
		{CounterDropout: 1},
		{ServeLatency: 0.125, LatencySpike: 2 * time.Second},
	}
	for _, want := range cases {
		spec := want.String()
		got, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got != want {
			t.Fatalf("Parse(%q) = %+v, want %+v", spec, got, want)
		}
	}
}

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		want    Config
		wantErr bool
	}{
		{spec: "", want: Config{}},
		{spec: "off", want: Config{}},
		{spec: "  seed=7 , runfail=0.5 ", want: Config{Seed: 7, RunFailure: 0.5}},
		{spec: "dropout=1,spike=10ms,latency=0.5", want: Config{CounterDropout: 1, ServeLatency: 0.5, LatencySpike: 10 * time.Millisecond}},
		{spec: "runfail=1.5", wantErr: true},
		{spec: "runfail=-0.1", wantErr: true},
		{spec: "runfail=NaN", wantErr: true},
		{spec: "runfail", wantErr: true},
		{spec: "=0.5", wantErr: true},
		{spec: "bogus=1", wantErr: true},
		{spec: "seed=-1", wantErr: true},
		{spec: "seed=1,seed=2", wantErr: true},
		{spec: "spike=-5ms", wantErr: true},
		{spec: "spike=fast", wantErr: true},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("Parse(%q) = %+v, want error", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestHashStringDistinguishes(t *testing.T) {
	if HashString("gld_request") == HashString("gst_request") {
		t.Fatal("distinct counter names hashed equal")
	}
	if HashString("") == HashString("x") {
		t.Fatal("empty string collides with non-empty")
	}
}

func TestConcurrentUseIsSafe(t *testing.T) {
	in := New(Config{Seed: 13, RunFailure: 0.5, CounterDropout: 0.5})
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for id := uint64(0); id < 1000; id++ {
				in.FailRun(id, g)
				in.DropCounter(id, "achieved_occupancy")
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
