// Package faults is BlackForest's deterministic fault-injection layer.
// Real counter collection is lossy — nvprof multi-pass replay drops
// counters, whole runs fail, model files arrive truncated, and a serving
// tier sees latency spikes and transient errors. This package simulates
// all of that reproducibly so the degradation paths in the profiler, the
// training pipeline, and the HTTP service can be exercised by ordinary
// tests.
//
// Every decision is a pure function of (injector seed, fault domain,
// subject identity): the same seed and the same run identity always fail
// the same way, regardless of execution order or concurrency — the same
// SplitMix64-keying discipline the profiler uses for measurement noise.
// A nil *Injector injects nothing and costs nothing, so production paths
// thread it through unconditionally.
package faults

import (
	"errors"
	"time"

	"blackforest/internal/stats"
)

// ErrInjected marks every failure this package injects; callers
// distinguish simulated faults from real ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// Config is a fault profile. The zero value injects nothing. All
// probabilities are in [0, 1].
type Config struct {
	// Seed keys every decision; two injectors with equal configs make
	// identical decisions.
	Seed uint64
	// RunFailure is the per-attempt probability that a profiled run
	// fails outright (distinct attempts draw independently, so retries
	// can succeed).
	RunFailure float64
	// CounterDropout is the per-(run, counter) probability that a
	// collected counter is dropped from the profile — the multi-pass
	// replay loss mode.
	CounterDropout float64
	// CorruptReads is the per-chunk probability that a wrapped bundle
	// reader flips a byte; see Reader.
	CorruptReads float64
	// TruncateReads is the probability that a wrapped reader cuts the
	// stream short.
	TruncateReads float64
	// ServeError is the per-request probability of an injected handler
	// failure in the HTTP service.
	ServeError float64
	// ServeLatency is the per-request probability of an injected
	// latency spike of LatencySpike.
	ServeLatency float64
	// LatencySpike is the injected delay (default 50ms when
	// ServeLatency > 0 and no spike is given).
	LatencySpike time.Duration
}

// Enabled reports whether the profile can inject anything.
func (c Config) Enabled() bool {
	return c.RunFailure > 0 || c.CounterDropout > 0 || c.CorruptReads > 0 ||
		c.TruncateReads > 0 || c.ServeError > 0 || c.ServeLatency > 0
}

// Fault domains: mixed into every decision so the same identity draws
// independently per failure mode.
const (
	domainRunFailure = 0x52554e46 // "RUNF"
	domainDropout    = 0x44524f50 // "DROP"
	domainCorrupt    = 0x434f5252 // "CORR"
	domainTruncate   = 0x54525543 // "TRUC"
	domainServeErr   = 0x53455252 // "SERR"
	domainServeLat   = 0x534c4154 // "SLAT"
)

// Injector makes deterministic fault decisions. It is immutable and safe
// for concurrent use; the nil injector never injects.
type Injector struct {
	cfg Config
}

// New builds an injector for the profile, or nil when the profile cannot
// inject anything — so "faults off" is a nil check on every hot path.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.ServeLatency > 0 && cfg.LatencySpike <= 0 {
		cfg.LatencySpike = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Config returns the injector's profile (the zero Config for nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// decide draws the deterministic Bernoulli for (domain, key, p).
func (in *Injector) decide(domain, key uint64, p float64) bool {
	if in == nil || p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	u := stats.SplitMix64(domain ^ stats.SplitMix64(key^stats.SplitMix64(in.cfg.Seed)))
	return float64(u>>11)/(1<<53) < p
}

// HashString folds a string into a 64-bit identity key (FNV-1a), for
// mixing counter names and other labels into decisions.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// mix combines two identity keys.
func mix(a, b uint64) uint64 { return a ^ stats.SplitMix64(b) }

// FailRun reports whether the run with the given identity fails on the
// given attempt (attempts draw independently, so bounded retries see
// transient failures).
func (in *Injector) FailRun(identity uint64, attempt int) bool {
	if in == nil {
		return false
	}
	return in.decide(domainRunFailure, mix(identity, uint64(attempt)+1), in.cfg.RunFailure)
}

// DropCounter reports whether the named counter is dropped from the run
// with the given identity.
func (in *Injector) DropCounter(identity uint64, counter string) bool {
	if in == nil {
		return false
	}
	return in.decide(domainDropout, mix(identity, HashString(counter)), in.cfg.CounterDropout)
}

// ServeError reports whether the request with the given identity gets an
// injected handler failure.
func (in *Injector) ServeError(requestID uint64) bool {
	if in == nil {
		return false
	}
	return in.decide(domainServeErr, requestID, in.cfg.ServeError)
}

// ServeDelay returns the injected latency spike for the request, or 0.
func (in *Injector) ServeDelay(requestID uint64) time.Duration {
	if in == nil {
		return 0
	}
	if in.decide(domainServeLat, requestID, in.cfg.ServeLatency) {
		return in.cfg.LatencySpike
	}
	return 0
}
