package faults

import (
	"io"

	"blackforest/internal/stats"
)

// Reader wraps an io.Reader and deterministically injects the two bundle
// corruption modes chaos tests need: flipped bytes (CorruptReads, one
// independent draw per 4KiB chunk) and early EOF (TruncateReads, one
// draw per stream choosing a cut offset). Decisions are keyed on the
// stream identity, so the same (seed, identity) always damages the same
// offsets regardless of the caller's read sizes.
type Reader struct {
	r        io.Reader
	in       *Injector
	identity uint64

	off   int64 // bytes consumed so far
	cutAt int64 // byte offset to truncate at; -1 = never

	curChunk   int64 // chunk the cached decision is for; -1 = none yet
	flipTarget int64 // absolute offset to flip in curChunk; -1 = none
}

const corruptChunk = 4096

// WrapReader returns r with the injector's CorruptReads/TruncateReads
// profile applied. A nil injector (or a profile with both modes at zero)
// returns r unchanged, so the wrap is free when those faults are off.
func (in *Injector) WrapReader(r io.Reader, identity uint64) io.Reader {
	if in == nil || (in.cfg.CorruptReads <= 0 && in.cfg.TruncateReads <= 0) {
		return r
	}
	fr := &Reader{r: r, in: in, identity: identity, cutAt: -1, curChunk: -1, flipTarget: -1}
	if in.decide(domainTruncate, identity, in.cfg.TruncateReads) {
		// Cut somewhere in the first 64KiB — early enough that any
		// real bundle is visibly damaged, keyed so it's reproducible.
		u := stats.SplitMix64(domainTruncate ^ stats.SplitMix64(identity^stats.SplitMix64(in.cfg.Seed^0x7472756e)))
		fr.cutAt = int64(u % (64 << 10))
	}
	return fr
}

// chunkFlipTarget returns the absolute offset to corrupt within chunk c,
// or -1 when the chunk's draw misses.
func (fr *Reader) chunkFlipTarget(c int64) int64 {
	if c != fr.curChunk {
		fr.curChunk = c
		fr.flipTarget = -1
		if fr.in.decide(domainCorrupt, mix(fr.identity, uint64(c)+1), fr.in.cfg.CorruptReads) {
			u := stats.SplitMix64(mix(fr.identity, uint64(c)+1) ^ stats.SplitMix64(fr.in.cfg.Seed^0x636f7272))
			fr.flipTarget = c*corruptChunk + int64(u%corruptChunk)
		}
	}
	return fr.flipTarget
}

func (fr *Reader) Read(p []byte) (int, error) {
	if fr.cutAt >= 0 && fr.off >= fr.cutAt {
		return 0, io.ErrUnexpectedEOF
	}
	if fr.cutAt >= 0 && int64(len(p)) > fr.cutAt-fr.off {
		p = p[:fr.cutAt-fr.off]
	}
	n, err := fr.r.Read(p)
	for i := 0; i < n; i++ {
		o := fr.off + int64(i)
		if fr.chunkFlipTarget(o/corruptChunk) == o {
			p[i] ^= 0xff
		}
	}
	fr.off += int64(n)
	if err == io.EOF && fr.cutAt >= 0 {
		// The underlying stream ended before the cut point; report the
		// truncation anyway so short streams still exercise the path.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
