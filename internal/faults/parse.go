package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Parse decodes a fault-profile spec of comma-separated key=value pairs:
//
//	seed=42,runfail=0.2,dropout=0.1,corrupt=0.01,truncate=0.01,error=0.05,latency=0.1,spike=50ms
//
// All keys are optional; probabilities must be in [0, 1]; an empty spec
// (or "off") yields the zero Config. Parse(cfg.String()) round-trips.
func Parse(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return cfg, nil
	}
	seen := make(map[string]bool)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Config{}, fmt.Errorf("faults: malformed field %q (want key=value)", field)
		}
		if seen[key] {
			return Config{}, fmt.Errorf("faults: duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "seed":
			u, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			cfg.Seed = u
		case "spike":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad spike %q: %v", val, err)
			}
			if d < 0 {
				return Config{}, fmt.Errorf("faults: negative spike %q", val)
			}
			cfg.LatencySpike = d
		case "runfail", "dropout", "corrupt", "truncate", "error", "latency":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad probability for %s: %q", key, val)
			}
			if p < 0 || p > 1 || p != p {
				return Config{}, fmt.Errorf("faults: probability for %s out of [0,1]: %q", key, val)
			}
			switch key {
			case "runfail":
				cfg.RunFailure = p
			case "dropout":
				cfg.CounterDropout = p
			case "corrupt":
				cfg.CorruptReads = p
			case "truncate":
				cfg.TruncateReads = p
			case "error":
				cfg.ServeError = p
			case "latency":
				cfg.ServeLatency = p
			}
		default:
			return Config{}, fmt.Errorf("faults: unknown key %q (known: corrupt, dropout, error, latency, runfail, seed, spike, truncate)", key)
		}
	}
	return cfg, nil
}

// String renders the profile as a spec Parse accepts. The zero Config
// renders as "off".
func (c Config) String() string {
	var fields []string
	add := func(k string, v float64) {
		if v > 0 {
			fields = append(fields, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	if c.Seed != 0 {
		fields = append(fields, "seed="+strconv.FormatUint(c.Seed, 10))
	}
	add("runfail", c.RunFailure)
	add("dropout", c.CounterDropout)
	add("corrupt", c.CorruptReads)
	add("truncate", c.TruncateReads)
	add("error", c.ServeError)
	add("latency", c.ServeLatency)
	if c.LatencySpike > 0 {
		fields = append(fields, "spike="+c.LatencySpike.String())
	}
	if len(fields) == 0 {
		return "off"
	}
	sort.Strings(fields)
	return strings.Join(fields, ",")
}
