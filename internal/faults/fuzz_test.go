package faults

import (
	"testing"
)

// FuzzParse asserts the spec parser never panics and that every spec it
// accepts round-trips through String back to an equal Config.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("off")
	f.Add("seed=42,runfail=0.2,dropout=0.1")
	f.Add("corrupt=0.01,truncate=0.01,error=0.05,latency=0.1,spike=50ms")
	f.Add("seed=18446744073709551615")
	f.Add("runfail=1e-9")
	f.Add("spike=1h2m3s,latency=1")
	f.Add("runfail=0.5,runfail=0.5")
	f.Add(",,, ,")
	f.Add("=")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := Parse(spec)
		if err != nil {
			return
		}
		rendered := cfg.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-parsing %q failed: %v", spec, rendered, err)
		}
		if back != cfg {
			t.Fatalf("round trip drifted: %q -> %+v -> %q -> %+v", spec, cfg, rendered, back)
		}
	})
}
