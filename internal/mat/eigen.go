package mat

import (
	"errors"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a real symmetric matrix:
// A = V·diag(Values)·Vᵀ, with eigenvalues sorted in descending order and
// eigenvectors stored as the columns of Vectors.
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration; convergence for
// well-conditioned covariance matrices typically needs fewer than 15 sweeps.
const maxJacobiSweeps = 100

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. a is not modified.
func SymEigen(a *Matrix) (*Eigen, error) {
	if a.Rows() != a.Cols() {
		return nil, errors.New("mat: eigendecomposition requires a square matrix")
	}
	if !a.IsSymmetric(1e-9 * (1 + a.FrobeniusNorm())) {
		return nil, errors.New("mat: matrix is not symmetric")
	}
	n := a.Rows()
	w := a.Clone()
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return s
	}

	tol := 1e-22 * (1 + w.FrobeniusNorm()*w.FrobeniusNorm())
	for sweep := 0; sweep < maxJacobiSweeps && offDiag() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort eigenpairs by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	e := &Eigen{Values: make([]float64, n), Vectors: New(n, n)}
	for out, p := range pairs {
		e.Values[out] = p.val
		for k := 0; k < n; k++ {
			e.Vectors.Set(k, out, v.At(k, p.idx))
		}
	}
	return e, nil
}
