package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDimensions(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("wrong values: %v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestFromSlice(t *testing.T) {
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("got %v at (1,0), want 3", m.At(1, 0))
	}
	if _, err := FromSlice(2, 2, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAtRowCol(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatal("Row copy wrong")
	}
	row[2] = 99 // must not alias
	if m.At(1, 2) != 7 {
		t.Fatal("Row aliases storage")
	}
	col := m.Col(2)
	if col[1] != 7 {
		t.Fatal("Col wrong")
	}
}

func TestRawRowAliases(t *testing.T) {
	m := New(2, 2)
	m.RawRow(0)[1] = 5
	if m.At(0, 1) != 5 {
		t.Fatal("RawRow should alias storage")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose values wrong")
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul wrong at (%d,%d): %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec got %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("bad vector length accepted")
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	s, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 5 || s.At(1, 1) != 5 {
		t.Fatal("Add wrong")
	}
	d, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != -3 || d.At(1, 1) != 3 {
		t.Fatal("Sub wrong")
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatal("Scale wrong")
	}
	if a.At(1, 0) != 3 {
		t.Fatal("Scale mutated receiver")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}})
	if !almostEq(m.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("norm got %v", m.FrobeniusNorm())
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(1e-12) {
		t.Fatal("symmetric matrix rejected")
	}
	n, _ := FromRows([][]float64{{1, 2}, {3, 1}})
	if n.IsSymmetric(1e-12) {
		t.Fatal("asymmetric matrix accepted")
	}
	r := New(2, 3)
	if r.IsSymmetric(1e-12) {
		t.Fatal("non-square matrix accepted as symmetric")
	}
}

func TestMaxAbsOffDiag(t *testing.T) {
	m, _ := FromRows([][]float64{{9, 1, -7}, {1, 9, 2}, {-7, 2, 9}})
	p, q, v := m.MaxAbsOffDiag()
	if v != 7 || !((p == 0 && q == 2) || (p == 2 && q == 0)) {
		t.Fatalf("got (%d,%d)=%v", p, q, v)
	}
}

// Property: (Aᵀ)ᵀ = A for random matrices.
func TestTransposeInvolution(t *testing.T) {
	f := func(vals [12]float64) bool {
		m, _ := FromSlice(3, 4, vals[:])
		tt := m.T().T()
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				if m.At(i, j) != tt.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: A·I = A.
func TestMulIdentity(t *testing.T) {
	f := func(vals [9]float64) bool {
		m, _ := FromSlice(3, 3, vals[:])
		p, err := m.Mul(Identity(3))
		if err != nil {
			return false
		}
		for i := range vals {
			if p.data[i] != m.data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
