package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned when a least-squares system has (numerically)
// linearly dependent columns and cannot be solved without regularization.
var ErrRankDeficient = errors.New("mat: rank-deficient system")

// QR holds a Householder QR factorization of an m×n matrix (m ≥ n).
// R is stored in the upper triangle of qr; the Householder vectors in the
// lower triangle with their scaling factors in tau.
type QR struct {
	qr   *Matrix
	tau  []float64
	rows int
	cols int
}

// NewQR computes the Householder QR factorization of a. a is not modified.
func NewQR(a *Matrix) (*QR, error) {
	if a.Rows() < a.Cols() {
		return nil, fmt.Errorf("mat: QR requires rows >= cols, got %dx%d", a.Rows(), a.Cols())
	}
	m, n := a.Rows(), a.Cols()
	q := &QR{qr: a.Clone(), tau: make([]float64, n), rows: m, cols: n}
	for k := 0; k < n; k++ {
		// Compute the norm of column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, q.qr.At(i, k))
		}
		if norm == 0 {
			q.tau[k] = 0
			continue
		}
		// Choose the reflector sign matching the diagonal to avoid
		// cancellation in v_k = a_kk/norm + 1.
		if q.qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			q.qr.Set(i, k, q.qr.At(i, k)/norm)
		}
		q.qr.Set(k, k, q.qr.At(k, k)+1)
		q.tau[k] = -norm

		// Apply the transform to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += q.qr.At(i, k) * q.qr.At(i, j)
			}
			s = -s / q.qr.At(k, k)
			for i := k; i < m; i++ {
				q.qr.Set(i, j, q.qr.At(i, j)+s*q.qr.At(i, k))
			}
		}
	}
	return q, nil
}

// RDiag returns the diagonal of R (the tau values), whose magnitudes signal
// rank deficiency when near zero.
func (q *QR) RDiag() []float64 {
	out := make([]float64, q.cols)
	copy(out, q.tau)
	return out
}

// IsFullRank reports whether all diagonal entries of R exceed tol in
// magnitude.
func (q *QR) IsFullRank(tol float64) bool {
	for _, d := range q.tau {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// Solve finds x minimizing ‖a·x − b‖₂ using the stored factorization.
func (q *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != q.rows {
		return nil, fmt.Errorf("mat: rhs length %d, want %d", len(b), q.rows)
	}
	if !q.IsFullRank(1e-12) {
		return nil, ErrRankDeficient
	}
	y := make([]float64, q.rows)
	copy(y, b)
	// Apply Qᵀ to y.
	for k := 0; k < q.cols; k++ {
		if q.tau[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < q.rows; i++ {
			s += q.qr.At(i, k) * y[i]
		}
		s = -s / q.qr.At(k, k)
		for i := k; i < q.rows; i++ {
			y[i] += s * q.qr.At(i, k)
		}
	}
	// Back-substitute R·x = y.
	x := make([]float64, q.cols)
	for i := q.cols - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < q.cols; j++ {
			s -= q.qr.At(i, j) * x[j]
		}
		x[i] = s / q.tau[i]
	}
	return x, nil
}

// R returns the upper-triangular factor as a cols×cols matrix.
func (q *QR) R() *Matrix {
	r := New(q.cols, q.cols)
	for i := 0; i < q.cols; i++ {
		r.Set(i, i, q.tau[i])
		for j := i + 1; j < q.cols; j++ {
			r.Set(i, j, q.qr.At(i, j))
		}
	}
	return r
}

// SolveLeastSquares finds x minimizing ‖a·x − b‖₂.
// It is a convenience wrapper over NewQR + Solve.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	q, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return q.Solve(b)
}

// SolveRidge solves the ridge-regularized least squares problem
// minimizing ‖a·x − b‖² + λ‖x‖² by augmenting the system with √λ·I.
func SolveRidge(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("mat: negative ridge penalty %g", lambda)
	}
	if lambda == 0 {
		return SolveLeastSquares(a, b)
	}
	m, n := a.Rows(), a.Cols()
	aug := New(m+n, n)
	for i := 0; i < m; i++ {
		copy(aug.RawRow(i), a.RawRow(i))
	}
	sq := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sq)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return SolveLeastSquares(aug, rhs)
}
