package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveExactSystem(t *testing.T) {
	// Square, well-conditioned: x = [1, -2, 3].
	a, _ := FromRows([][]float64{
		{2, 1, 1},
		{1, 3, 2},
		{1, 0, 0},
	})
	want := []float64{1, -2, 3}
	b, _ := a.MulVec(want)
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Fatalf("x=%v want %v", x, want)
		}
	}
}

func TestSolveOverdetermined(t *testing.T) {
	// y = 2 + 3t fitted from 10 exact points: residual must vanish.
	n := 10
	a := New(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		tt := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, tt)
		b[i] = 2 + 3*tt
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-9) || !almostEq(x[1], 3, 1e-9) {
		t.Fatalf("x=%v want [2 3]", x)
	}
}

func TestSolveLeastSquaresResidualOrthogonality(t *testing.T) {
	// For inconsistent systems the residual must be orthogonal to the
	// column space: Aᵀ(Ax−b) = 0.
	a, _ := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{0, 1, 1, 3}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	res := make([]float64, len(b))
	for i := range b {
		res[i] = ax[i] - b[i]
	}
	atr, _ := a.T().MulVec(res)
	for _, v := range atr {
		if !almostEq(v, 0, 1e-9) {
			t.Fatalf("residual not orthogonal: %v", atr)
		}
	}
}

func TestSolveCubicBasisConditioning(t *testing.T) {
	// The counter models fit cubics on sizes up to 2048 — the regression
	// that exposed the original Householder sign bug.
	sizes := []float64{32, 112, 208, 304, 400, 496, 592, 688, 784, 896}
	a := New(len(sizes), 4)
	b := make([]float64, len(sizes))
	for i, n := range sizes {
		a.Set(i, 0, 1)
		a.Set(i, 1, n)
		a.Set(i, 2, n*n)
		a.Set(i, 3, n*n*n)
		b[i] = 2 + 3*n + 0.5*n*n
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[1], 3, 1e-4) || !almostEq(x[2], 0.5, 1e-6) || !almostEq(x[3], 0, 1e-8) {
		t.Fatalf("cubic fit unstable: %v", x)
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Duplicate columns: plain solve must refuse.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err != ErrRankDeficient {
		t.Fatalf("want ErrRankDeficient, got %v", err)
	}
	// Ridge regularization must succeed and split weight evenly.
	x, err := SolveRidge(a, []float64{1, 2, 3}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], x[1], 1e-6) {
		t.Fatalf("ridge did not symmetrize duplicate columns: %v", x)
	}
}

func TestSolveRidgeNegativeLambda(t *testing.T) {
	a := New(2, 2)
	if _, err := SolveRidge(a, []float64{0, 0}, -1); err == nil {
		t.Fatal("negative ridge penalty accepted")
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := NewQR(New(2, 3)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestQRSolveWrongRHS(t *testing.T) {
	q, err := NewQR(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Solve([]float64{1}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

func TestQRRMatchesProduct(t *testing.T) {
	// ‖R‖F = ‖A‖F since Q is orthogonal.
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	q, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(q.R().FrobeniusNorm(), a.FrobeniusNorm(), 1e-9) {
		t.Fatalf("‖R‖=%v, ‖A‖=%v", q.R().FrobeniusNorm(), a.FrobeniusNorm())
	}
}

func TestQRIsFullRank(t *testing.T) {
	q, err := NewQR(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsFullRank(1e-12) {
		t.Fatal("identity reported rank-deficient")
	}
}

// Property: for random consistent systems, Solve recovers the generator.
func TestQRSolveRecoversSolution(t *testing.T) {
	f := func(seedVals [8]float64, xv [2]float64) bool {
		a := New(4, 2)
		for i := 0; i < 4; i++ {
			for j := 0; j < 2; j++ {
				v := seedVals[i*2+j]
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
					return true // skip pathological draws
				}
				a.Set(i, j, v)
			}
		}
		for _, v := range xv {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		q, err := NewQR(a)
		if err != nil {
			return false
		}
		if !q.IsFullRank(1e-8 * (1 + a.FrobeniusNorm())) {
			return true // nearly singular draw: skip
		}
		b, _ := a.MulVec(xv[:])
		x, err := q.Solve(b)
		if err != nil {
			return true // rank threshold said no; fine
		}
		scale := 1 + math.Abs(xv[0]) + math.Abs(xv[1])
		return almostEq(x[0], xv[0], 1e-5*scale) && almostEq(x[1], xv[1], 1e-5*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
