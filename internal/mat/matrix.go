// Package mat provides the dense linear algebra needed by the BlackForest
// statistics stack: matrix arithmetic, Householder QR with least-squares
// solving, and a Jacobi eigensolver for symmetric matrices.
//
// Matrices are stored row-major in a single backing slice. The package is
// deliberately small: it implements exactly what PCA, GLM, and MARS need,
// with no external dependencies.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized rows×cols matrix.
// It panics if either dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mat: empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("mat: ragged input: row %d has %d values, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// FromSlice wraps data (row-major, length rows*cols) in a matrix, copying it.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("mat: data length %d does not match %dx%d", len(data), rows, cols)
	}
	m := New(rows, cols)
	copy(m.data, data)
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols:]
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = row[j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := New(m.rows, b.cols)
	// ikj loop order keeps the inner loop streaming over contiguous rows.
	for i := 0; i < m.rows; i++ {
		arow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d · vec(%d)", m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b elementwise.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d + %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Sub returns m − b elementwise.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d - %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsOffDiag returns the largest |m[i][j]|, i≠j, and its indices.
// The matrix must be square.
func (m *Matrix) MaxAbsOffDiag() (p, q int, v float64) {
	p, q = 0, 1
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i == j {
				continue
			}
			if a := math.Abs(m.At(i, j)); a > v {
				v, p, q = a, i, j
			}
		}
	}
	return p, q, v
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
