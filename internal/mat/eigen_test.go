package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	d, _ := FromRows([][]float64{{3, 0}, {0, 1}})
	e, err := SymEigen(d)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 3, 1e-10) || !almostEq(e.Values[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", e.Values)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,−1)/√2.
	m, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 3, 1e-10) || !almostEq(e.Values[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", e.Values)
	}
	v0 := []float64{e.Vectors.At(0, 0), e.Vectors.At(1, 0)}
	if !almostEq(math.Abs(v0[0]), math.Sqrt2/2, 1e-8) || !almostEq(v0[0], v0[1], 1e-8) {
		t.Fatalf("first eigenvector %v", v0)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	m, _ := FromRows([][]float64{
		{4, 1, 0.5},
		{1, 3, -0.2},
		{0.5, -0.2, 2},
	})
	e, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild A = V·diag(λ)·Vᵀ.
	n := 3
	rebuilt := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += e.Vectors.At(i, k) * e.Values[k] * e.Vectors.At(j, k)
			}
			rebuilt.Set(i, j, s)
		}
	}
	diff, _ := rebuilt.Sub(m)
	if diff.FrobeniusNorm() > 1e-9 {
		t.Fatalf("reconstruction error %v", diff.FrobeniusNorm())
	}
}

func TestSymEigenRejects(t *testing.T) {
	if _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	asym, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymEigen(asym); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

// Property: eigenvectors are orthonormal and eigenvalues sum to the trace.
func TestSymEigenProperties(t *testing.T) {
	f := func(v [6]float64) bool {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		// Build a symmetric 3x3 from 6 free entries.
		m, _ := FromRows([][]float64{
			{v[0], v[1], v[2]},
			{v[1], v[3], v[4]},
			{v[2], v[4], v[5]},
		})
		e, err := SymEigen(m)
		if err != nil {
			return false
		}
		scale := 1 + m.FrobeniusNorm()
		// Trace preservation.
		trace := v[0] + v[3] + v[5]
		sum := e.Values[0] + e.Values[1] + e.Values[2]
		if !almostEq(trace, sum, 1e-8*scale) {
			return false
		}
		// Orthonormal columns.
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				var dot float64
				for k := 0; k < 3; k++ {
					dot += e.Vectors.At(k, a) * e.Vectors.At(k, b)
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if !almostEq(dot, want, 1e-8) {
					return false
				}
			}
		}
		// Sorted descending.
		return e.Values[0] >= e.Values[1] && e.Values[1] >= e.Values[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
