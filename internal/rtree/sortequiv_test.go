package rtree

import (
	"slices"
	"sort"
	"testing"

	"blackforest/internal/stats"
)

// TestSortFuncMatchesSortSlice pins the assumption behind the unsafe-feature
// fallback in bestSplit: slices.SortFunc and sort.Slice are the same
// generated pdqsort, so given the same initial order and an equivalent
// comparator they produce the same permutation — including the placement of
// equal keys, which is what the bit-identity guarantee rides on. If a Go
// release ever splits the two implementations, this fails before any golden
// file can drift.
func TestSortFuncMatchesSortSlice(t *testing.T) {
	rng := stats.NewRNG(99)
	for _, n := range []int{0, 1, 2, 7, 12, 13, 40, 100, 257, 1000, 5000} {
		for _, distinct := range []int{1, 2, 5, 1 << 30} {
			keys := make([]float64, n)
			for i := range keys {
				keys[i] = float64(rng.Intn(distinct))
			}
			init := make([]int32, n)
			for i, v := range rng.Perm(n) {
				init[i] = int32(v)
			}

			a := make([]int32, n)
			copy(a, init)
			sort.Slice(a, func(i, j int) bool { return keys[a[i]] < keys[a[j]] })

			b := make([]int32, n)
			copy(b, init)
			slices.SortFunc(b, func(x, y int32) int {
				if keys[x] < keys[y] {
					return -1
				}
				if keys[x] > keys[y] {
					return 1
				}
				return 0
			})

			if !slices.Equal(a, b) {
				t.Fatalf("n=%d distinct=%d: sort.Slice and slices.SortFunc placed ties differently", n, distinct)
			}
		}
	}
}
