package rtree

import (
	"math"
	"testing"
	"testing/quick"

	"blackforest/internal/stats"
)

// stepData returns a 1-D dataset with a clean step at x = 5.
func stepData() ([][]float64, []float64) {
	var x [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		x = append(x, []float64{float64(i)})
		if i < 5 {
			y = append(y, 1)
		} else {
			y = append(y, 10)
		}
	}
	return x, y
}

func TestFitStepFunction(t *testing.T) {
	x, y := stepData()
	tree, err := Fit(x, y, nil, Params{MinNodeSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{2}); got != 1 {
		t.Fatalf("left region: got %v, want 1", got)
	}
	if got := tree.Predict([]float64{15}); got != 10 {
		t.Fatalf("right region: got %v, want 10", got)
	}
}

func TestPureNodeIsLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	y := make([]float64, 10)
	for i := range y {
		y[i] = 7 // constant response
	}
	tree, err := Fit(x, y, nil, Params{MinNodeSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 1 {
		t.Fatalf("constant response grew %d nodes", tree.NumNodes())
	}
	if tree.Predict([]float64{42}) != 7 {
		t.Fatal("constant prediction wrong")
	}
}

func TestMinNodeSizeRespected(t *testing.T) {
	x, y := stepData()
	tree, err := Fit(x, y, nil, Params{MinNodeSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 20 samples < 2*MinNodeSize → no split possible.
	if tree.NumNodes() != 1 {
		t.Fatalf("oversized MinNodeSize still split: %d nodes", tree.NumNodes())
	}
}

func TestMaxDepth(t *testing.T) {
	// Rich data so unlimited depth would go deep.
	rng := stats.NewRNG(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := rng.Float64() * 10
		x = append(x, []float64{v})
		y = append(y, math.Sin(v)*10)
	}
	tree, err := Fit(x, y, nil, Params{MinNodeSize: 2, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Fatalf("depth %d exceeds cap 3", tree.Depth())
	}
	deep, err := Fit(x, y, nil, Params{MinNodeSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Depth() <= 3 {
		t.Fatalf("unlimited tree suspiciously shallow: %d", deep.Depth())
	}
}

func TestMultiFeatureSplitSelection(t *testing.T) {
	// Only feature 1 is informative; the tree must split on it.
	rng := stats.NewRNG(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		noise := rng.Float64()
		signal := rng.Float64()
		x = append(x, []float64{noise, signal})
		if signal > 0.5 {
			y = append(y, 100)
		} else {
			y = append(y, 0)
		}
	}
	tree, err := Fit(x, y, nil, Params{MinNodeSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	gains := tree.PurityGain()
	if gains[1] <= gains[0] {
		t.Fatalf("informative feature gained %v, noise %v", gains[1], gains[0])
	}
	if got := tree.Predict([]float64{0.9, 0.9}); got < 90 {
		t.Fatalf("prediction %v, want ≈100", got)
	}
}

func TestBootstrapIndices(t *testing.T) {
	x, y := stepData()
	// Train only on the left region via idx; predictions stay ≈1.
	idx := []int{0, 1, 2, 3, 4, 0, 1, 2, 3, 4}
	tree, err := Fit(x, y, idx, Params{MinNodeSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{15}); got != 1 {
		t.Fatalf("got %v, want 1 (trained only on left region)", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil, Params{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, nil, Params{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}, nil, Params{}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1, 2}, []int{}, Params{}); err == nil {
		t.Fatal("empty index set accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1, 2}, nil, Params{MTry: 1}); err == nil {
		t.Fatal("MTry without RNG accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1, 2}, nil, Params{MTry: 5}); err == nil {
		t.Fatal("MTry > features accepted")
	}
}

func TestPredictPanicsOnWrongWidth(t *testing.T) {
	x, y := stepData()
	tree, _ := Fit(x, y, nil, Params{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong feature count")
		}
	}()
	tree.Predict([]float64{1, 2})
}

func TestNumLeavesAndString(t *testing.T) {
	x, y := stepData()
	tree, _ := Fit(x, y, nil, Params{MinNodeSize: 2})
	if tree.NumLeaves() < 2 {
		t.Fatal("expected at least 2 leaves")
	}
	if tree.NumLeaves()+0 >= tree.NumNodes()+1 {
		t.Fatal("leaves must be < nodes+1")
	}
	if tree.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: predictions are bounded by the training response range.
func TestPredictionBounds(t *testing.T) {
	f := func(ys [16]float64, probe [3]float64) bool {
		var x [][]float64
		var y []float64
		rng := stats.NewRNG(11)
		for i, v := range ys {
			// Counter-scale magnitudes only; the prefix-sum split scan
			// overflows on ~1e300 squares, which no profile produces.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
			x = append(x, []float64{rng.Float64() * 10, float64(i)})
			y = append(y, v)
		}
		tree, err := Fit(x, y, nil, Params{MinNodeSize: 2})
		if err != nil {
			return false
		}
		lo, hi := tree.ResponseRange()
		for _, p := range probe {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return true
			}
			got := tree.Predict([]float64{p, p})
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tree perfectly memorizes distinct 1-D points when grown to
// minimum node size 1... (CART with MinNodeSize 2 may keep pairs; we check
// training MSE is no worse than variance).
func TestTrainingFitBeatsMean(t *testing.T) {
	rng := stats.NewRNG(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		v := rng.Float64() * 100
		x = append(x, []float64{v})
		y = append(y, 3*v+rng.NormFloat64())
	}
	tree, err := Fit(x, y, nil, Params{MinNodeSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(y))
	for i := range x {
		pred[i] = tree.Predict(x[i])
	}
	if stats.MSE(pred, y) >= stats.Variance(y) {
		t.Fatal("tree no better than the mean on its own training data")
	}
}
