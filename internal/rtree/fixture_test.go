package rtree

// Tree-identity regression tests: the fig2 golden-file pattern applied to
// the learner itself. testdata/tree_fixture.json holds trees fitted by the
// pre-optimization implementation (legacyFit, frozen in legacy_test.go);
// the production Fit must reproduce them byte for byte. Any change to split
// finding that alters even one threshold ULP or one purity-gain bit fails
// here before it can silently shift every figure downstream.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blackforest/internal/stats"
)

const treeFixturePath = "testdata/tree_fixture.json"

// fixtureCase describes one pinned training configuration. Everything is
// derived from seeds so the exact same data and RNG streams can be rebuilt
// by both implementations.
type fixtureCase struct {
	Name      string
	N, P      int
	DataSeed  uint64
	Bootstrap bool   // idx drawn with replacement (duplicated rows)
	StepY     bool   // quantized response: exercises pure-node early exit
	QuantX    bool   // quantize even-indexed features: cross-row value ties
	// with unequal y, forcing the exact per-node sort fallback
	RNGSeed   uint64 // seeds Params.RNG when MTry > 0
	Params    Params // RNG field filled in at fit time
}

func fixtureCases() []fixtureCase {
	return []fixtureCase{
		{Name: "plain_cart", N: 80, P: 6, DataSeed: 11, Params: Params{MinNodeSize: 5}},
		{Name: "bootstrap_mtry", N: 120, P: 10, DataSeed: 22, Bootstrap: true, RNGSeed: 7, Params: Params{MinNodeSize: 5, MTry: 3}},
		{Name: "depth_capped", N: 100, P: 8, DataSeed: 33, RNGSeed: 9, Params: Params{MinNodeSize: 2, MaxDepth: 4, MTry: 2}},
		{Name: "pure_regions", N: 90, P: 5, DataSeed: 44, StepY: true, Params: Params{MinNodeSize: 3}},
		{Name: "tiny", N: 12, P: 3, DataSeed: 55, Params: Params{MinNodeSize: 5}},
		{Name: "deep_small_nodes", N: 200, P: 7, DataSeed: 66, Bootstrap: true, RNGSeed: 13, Params: Params{MinNodeSize: 2, MTry: 4}},
		{Name: "tied_counters", N: 150, P: 9, DataSeed: 77, QuantX: true, Bootstrap: true, RNGSeed: 17, Params: Params{MinNodeSize: 3, MTry: 3}},
	}
}

// fixtureData builds a continuous design matrix (no cross-row value
// collisions, so presorted and per-node orderings agree exactly) plus a
// response with signal and noise.
func fixtureData(c fixtureCase) (x [][]float64, y []float64, idx []int) {
	rng := stats.NewRNG(c.DataSeed)
	x = make([][]float64, c.N)
	y = make([]float64, c.N)
	for i := range x {
		row := make([]float64, c.P)
		for j := range row {
			row[j] = rng.Float64()
			if c.QuantX && j%2 == 0 {
				row[j] = float64(int(8*row[j])) / 8
			}
		}
		x[i] = row
		if c.StepY {
			// Piecewise-constant response: many pure nodes.
			y[i] = float64(int(3 * row[0]))
		} else {
			y[i] = 10*row[0] + rng.NormFloat64()
			if c.P > 1 {
				y[i] += 5 * row[1]
			}
		}
	}
	if c.Bootstrap {
		idx, _ = stats.NewRNG(c.DataSeed ^ 0xb007).Bootstrap(c.N)
	}
	return x, y, idx
}

func fitFixtureCase(t *testing.T, c fixtureCase, fit func([][]float64, []float64, []int, Params) (*Tree, error)) *Tree {
	t.Helper()
	x, y, idx := fixtureData(c)
	p := c.Params
	if p.MTry > 0 {
		p.RNG = stats.NewRNG(c.RNGSeed)
	}
	tree, err := fit(x, y, idx, p)
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	return tree
}

type fixtureEntry struct {
	Name string        `json:"name"`
	Tree *ExportedTree `json:"tree"`
}

func marshalFixture(entries []fixtureEntry) []byte {
	out, err := json.MarshalIndent(entries, "", " ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// TestUpdateTreeFixture regenerates the pinned fixture from the FROZEN
// legacy implementation. It never runs the production Fit, so the fixture
// always encodes pre-optimization behavior:
//
//	UPDATE_TREE_FIXTURE=1 go test ./internal/rtree -run TestUpdateTreeFixture
func TestUpdateTreeFixture(t *testing.T) {
	if os.Getenv("UPDATE_TREE_FIXTURE") == "" {
		t.Skip("set UPDATE_TREE_FIXTURE=1 to regenerate " + treeFixturePath)
	}
	var entries []fixtureEntry
	for _, c := range fixtureCases() {
		entries = append(entries, fixtureEntry{Name: c.Name, Tree: fitFixtureCase(t, c, legacyFit).Export()})
	}
	if err := os.MkdirAll(filepath.Dir(treeFixturePath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(treeFixturePath, marshalFixture(entries), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFitMatchesPinnedFixture is the learner-level golden test: trees grown
// by the current Fit must serialize byte-identically to the committed
// pre-optimization fixture.
func TestFitMatchesPinnedFixture(t *testing.T) {
	golden, err := os.ReadFile(treeFixturePath)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with UPDATE_TREE_FIXTURE=1): %v", err)
	}
	var entries []fixtureEntry
	for _, c := range fixtureCases() {
		entries = append(entries, fixtureEntry{Name: c.Name, Tree: fitFixtureCase(t, c, Fit).Export()})
	}
	got := marshalFixture(entries)
	if string(got) != string(golden) {
		// Pinpoint the first diverging case for a useful failure message.
		var want []fixtureEntry
		if err := json.Unmarshal(golden, &want); err != nil {
			t.Fatalf("fixture corrupt: %v", err)
		}
		for i := range entries {
			if i >= len(want) {
				break
			}
			g, _ := json.Marshal(entries[i])
			w, _ := json.Marshal(want[i])
			if string(g) != string(w) {
				t.Fatalf("case %q drifted from the pre-optimization fixture.\ngot:  %s\nwant: %s",
					entries[i].Name, g, w)
			}
		}
		t.Fatal("fixture drifted (case list changed?); regenerate only if the divergence is intended and understood")
	}
}

// TestFitMatchesLegacyReference differentially checks the presorted Fit
// against the frozen per-node-sort reference on freshly generated data —
// wider coverage than the static fixture, same bit-identity bar.
func TestFitMatchesLegacyReference(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seed := uint64(1000 + trial)
		rng := stats.NewRNG(seed)
		n := 20 + int(rng.Uint64()%200)
		p := 1 + int(rng.Uint64()%12)
		c := fixtureCase{
			Name:      fmt.Sprintf("trial%d", trial),
			N:         n,
			P:         p,
			DataSeed:  seed * 3,
			Bootstrap: trial%2 == 0,
			StepY:     trial%5 == 4,
			QuantX:    trial%3 != 0,
			RNGSeed:   seed * 7,
			Params: Params{
				MinNodeSize: 1 + int(rng.Uint64()%8),
				MaxDepth:    int(rng.Uint64() % 6), // 0 = unlimited
				MTry:        int(rng.Uint64() % uint64(p+1)),
			},
		}
		want := fitFixtureCase(t, c, legacyFit).Export()
		got := fitFixtureCase(t, c, Fit).Export()
		w, _ := json.Marshal(want)
		g, _ := json.Marshal(got)
		if string(w) != string(g) {
			t.Fatalf("trial %d (n=%d p=%d %+v): presorted Fit diverged from legacy reference\ngot:  %s\nwant: %s",
				trial, n, p, c.Params, g, w)
		}
	}
}
