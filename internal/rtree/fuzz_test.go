package rtree

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzImport: arbitrary JSON must never panic Import, and any tree that
// imports successfully must terminate and stay in range on Predict — the
// child>parent invariant is what makes a walk through a hostile node array
// safe, so this fuzz target is its regression test.
func FuzzImport(f *testing.F) {
	// Seed with a genuine exported tree...
	x := [][]float64{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {6, 3}, {7, 3}}
	y := []float64{0, 0, 1, 1, 4, 4, 9, 9}
	tree, err := Fit(x, y, nil, Params{MinNodeSize: 2})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(tree.Export())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// ...and structurally hostile variants: cycles, out-of-range children,
	// self-references, bad feature indices.
	f.Add([]byte(`{"nodes":[{"f":0,"t":1,"l":0,"r":0,"v":0,"n":1}],"features":2}`))
	f.Add([]byte(`{"nodes":[{"f":0,"t":1,"l":1,"r":2,"v":0,"n":1},{"f":-1,"v":1,"n":1},{"f":0,"t":2,"l":1,"r":0,"v":0,"n":1}],"features":1}`))
	f.Add([]byte(`{"nodes":[{"f":5,"v":0,"n":1}],"features":2}`))
	f.Add([]byte(`{"nodes":[{"f":-1,"v":3,"n":8}],"features":1,"purity":[1,2,3]}`))
	f.Add([]byte(`{"nodes":[],"features":1}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var e ExportedTree
		if err := json.Unmarshal(data, &e); err != nil {
			return
		}
		tr, err := Import(&e)
		if err != nil {
			return
		}
		// The imported tree must walk to a leaf on any input without
		// panicking or looping: probe a few vectors of the declared width.
		for _, fill := range []float64{0, 1e9, -1e9, math.NaN()} {
			probe := make([]float64, e.NFeatures)
			for i := range probe {
				probe[i] = fill
			}
			tr.Predict(probe)
		}
		if got := tr.NumNodes(); got != len(e.Nodes) {
			t.Fatalf("imported tree has %d nodes, exported %d", got, len(e.Nodes))
		}
	})
}

// FuzzImportFlat: the flat bundle decoder must never panic on arbitrary
// JSON, and any flat forest that imports successfully must terminate and
// stay in range on Predict. The children-after-parent-within-span check is
// what makes a walk through a hostile node array safe; cycles and
// out-of-range child offsets must be rejected at import, never walked.
func FuzzImportFlat(f *testing.F) {
	// Seed with a genuine compiled forest...
	x := [][]float64{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {6, 3}, {7, 3}}
	y := []float64{0, 0, 1, 1, 4, 4, 9, 9}
	var trees []*Tree
	for i := 0; i < 3; i++ {
		tree, err := Fit(x, y, []int{i, i + 1, i + 2, i + 3, i + 4, 0, 1, 2}, Params{MinNodeSize: 2})
		if err != nil {
			f.Fatal(err)
		}
		trees = append(trees, tree)
	}
	flat, err := CompileFlat(trees)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(flat.Export())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// ...and structurally hostile variants: self cycles, backward edges,
	// children escaping their tree span, bad roots, bad dict16 indices.
	f.Add([]byte(`{"features":1,"roots":[0],"feature":[0],"left":[0],"right":[0],"values":{"enc":"f64","f64":[1]}}`))
	f.Add([]byte(`{"features":1,"roots":[0],"feature":[0,0,-1],"left":[1,0,0],"right":[2,2,0],"values":{"enc":"f64","f64":[1,2,3]}}`))
	f.Add([]byte(`{"features":2,"roots":[0,1],"feature":[-1,0],"left":[0,2],"right":[0,3],"values":{"enc":"f64","f64":[1,2]}}`))
	f.Add([]byte(`{"features":2,"roots":[1,0],"feature":[-1,-1],"left":[0,0],"right":[0,0],"values":{"enc":"f64","f64":[1,2]}}`))
	f.Add([]byte(`{"features":1,"roots":[0],"feature":[-1],"left":[0],"right":[0],"values":{"enc":"dict16","table":[5],"idx":[9]}}`))
	f.Add([]byte(`{"features":1,"roots":[0],"feature":[-1],"left":[0],"right":[0],"values":{"enc":"f32","f32":[1.5]}}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var e ExportedFlatForest
		if err := json.Unmarshal(data, &e); err != nil {
			return
		}
		ff, err := ImportFlat(&e)
		if err != nil {
			return
		}
		// The imported forest must walk every tree to a leaf on any input
		// without panicking or looping: probe a few vectors of the declared
		// width, plus batch mode over the same probes.
		probes := make([][]float64, 0, 4)
		for _, fill := range []float64{0, 1e9, -1e9, math.NaN()} {
			probe := make([]float64, ff.NumFeatures())
			for i := range probe {
				probe[i] = fill
			}
			if _, err := ff.Predict(probe); err != nil {
				t.Fatalf("imported forest rejected a %d-wide probe: %v", len(probe), err)
			}
			probes = append(probes, probe)
		}
		if err := ff.PredictBatch(probes, make([]float64, len(probes))); err != nil {
			t.Fatalf("imported forest rejected a probe batch: %v", err)
		}
		if got := ff.NumNodes(); got != len(e.Feature) {
			t.Fatalf("imported forest has %d nodes, exported %d", got, len(e.Feature))
		}
	})
}
