package rtree

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzImport: arbitrary JSON must never panic Import, and any tree that
// imports successfully must terminate and stay in range on Predict — the
// child>parent invariant is what makes a walk through a hostile node array
// safe, so this fuzz target is its regression test.
func FuzzImport(f *testing.F) {
	// Seed with a genuine exported tree...
	x := [][]float64{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {6, 3}, {7, 3}}
	y := []float64{0, 0, 1, 1, 4, 4, 9, 9}
	tree, err := Fit(x, y, nil, Params{MinNodeSize: 2})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(tree.Export())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// ...and structurally hostile variants: cycles, out-of-range children,
	// self-references, bad feature indices.
	f.Add([]byte(`{"nodes":[{"f":0,"t":1,"l":0,"r":0,"v":0,"n":1}],"features":2}`))
	f.Add([]byte(`{"nodes":[{"f":0,"t":1,"l":1,"r":2,"v":0,"n":1},{"f":-1,"v":1,"n":1},{"f":0,"t":2,"l":1,"r":0,"v":0,"n":1}],"features":1}`))
	f.Add([]byte(`{"nodes":[{"f":5,"v":0,"n":1}],"features":2}`))
	f.Add([]byte(`{"nodes":[{"f":-1,"v":3,"n":8}],"features":1,"purity":[1,2,3]}`))
	f.Add([]byte(`{"nodes":[],"features":1}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var e ExportedTree
		if err := json.Unmarshal(data, &e); err != nil {
			return
		}
		tr, err := Import(&e)
		if err != nil {
			return
		}
		// The imported tree must walk to a leaf on any input without
		// panicking or looping: probe a few vectors of the declared width.
		for _, fill := range []float64{0, 1e9, -1e9, math.NaN()} {
			probe := make([]float64, e.NFeatures)
			for i := range probe {
				probe[i] = fill
			}
			tr.Predict(probe)
		}
		if got := tr.NumNodes(); got != len(e.Nodes) {
			t.Fatalf("imported tree has %d nodes, exported %d", got, len(e.Nodes))
		}
	})
}
