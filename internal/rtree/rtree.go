// Package rtree implements CART regression trees (Breiman et al., 1984),
// the base learner of BlackForest's random forest. Trees are grown by greedy
// binary splitting that minimizes the within-node sum of squared deviations
// (equation 3 of the paper), with the leaf prediction being the mean response
// of the region (equation 1).
package rtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"blackforest/internal/stats"
)

// Params controls tree growth.
type Params struct {
	// MinNodeSize is the minimum number of samples in a node eligible for
	// splitting; nodes smaller than this become leaves. The paper (and R's
	// randomForest in regression mode) uses 5.
	MinNodeSize int
	// MaxDepth caps tree depth; 0 means unlimited (grow to MinNodeSize).
	MaxDepth int
	// MTry is the number of predictors sampled (without replacement) as
	// split candidates at each node; 0 means all predictors (plain CART).
	MTry int
	// RNG supplies randomness for MTry subsetting. Required when MTry > 0.
	RNG *stats.RNG
}

// DefaultParams returns the parameters used by the paper: node size 5,
// unlimited depth, all features considered (MTry is set by the forest).
func DefaultParams() Params {
	return Params{MinNodeSize: 5}
}

// node is one tree node in the flattened node array. Leaves have
// feature == -1.
type node struct {
	feature   int     // split feature index, or -1 for a leaf
	threshold float64 // split point s: x[feature] <= s goes left
	left      int32   // index of the left child in Tree.nodes
	right     int32   // index of the right child
	value     float64 // mean response of samples reaching this node
	count     int     // number of training samples at this node
}

// Tree is a fitted regression tree.
type Tree struct {
	nodes      []node
	nFeatures  int
	minResp    float64 // smallest training response (prediction lower bound)
	maxResp    float64 // largest training response (prediction upper bound)
	purityGain []float64
}

// Fit grows a regression tree on rows X (each of equal length) and
// responses y, using only the sample indices in idx (with multiplicity, as
// produced by bootstrap sampling). If idx is nil, all rows are used.
func Fit(x [][]float64, y []float64, idx []int, p Params) (*Tree, error) {
	if len(x) == 0 {
		return nil, errors.New("rtree: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("rtree: %d rows but %d responses", len(x), len(y))
	}
	nf := len(x[0])
	if nf == 0 {
		return nil, errors.New("rtree: no features")
	}
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("rtree: ragged row %d (%d features, want %d)", i, len(row), nf)
		}
	}
	if p.MinNodeSize <= 0 {
		p.MinNodeSize = 5
	}
	if p.MTry < 0 || p.MTry > nf {
		return nil, fmt.Errorf("rtree: mtry %d out of range [0,%d]", p.MTry, nf)
	}
	if p.MTry > 0 && p.RNG == nil {
		return nil, errors.New("rtree: MTry > 0 requires an RNG")
	}
	if idx == nil {
		idx = make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, errors.New("rtree: empty sample index set")
	}

	t := &Tree{nFeatures: nf, purityGain: make([]float64, nf)}
	t.minResp, t.maxResp = math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		if y[i] < t.minResp {
			t.minResp = y[i]
		}
		if y[i] > t.maxResp {
			t.maxResp = y[i]
		}
	}

	b := &builder{x: x, y: y, p: p, tree: t}
	work := make([]int, len(idx))
	copy(work, idx)
	b.grow(work, 0)
	return t, nil
}

// builder carries shared state during recursive growth.
type builder struct {
	x    [][]float64
	y    []float64
	p    Params
	tree *Tree
}

// grow builds the subtree over samples idx at the given depth and returns
// the node's index in the flattened array.
func (b *builder) grow(idx []int, depth int) int32 {
	me := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, node{feature: -1})

	var sum float64
	for _, i := range idx {
		sum += b.y[i]
	}
	mean := sum / float64(len(idx))
	b.tree.nodes[me].value = mean
	b.tree.nodes[me].count = len(idx)

	if len(idx) < b.p.MinNodeSize*2 || (b.p.MaxDepth > 0 && depth >= b.p.MaxDepth) {
		return me
	}

	feat, thresh, gain, ok := b.bestSplit(idx, mean)
	if !ok {
		return me
	}

	left := idx[:0:0]
	right := idx[:0:0]
	for _, i := range idx {
		if b.x[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return me // degenerate split; keep as leaf
	}

	b.tree.purityGain[feat] += gain
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.tree.nodes[me].feature = feat
	b.tree.nodes[me].threshold = thresh
	b.tree.nodes[me].left = l
	b.tree.nodes[me].right = r
	return me
}

// bestSplit scans candidate features for the split minimizing the summed
// within-child SSE. It returns the feature, threshold, the SSE decrease
// relative to the unsplit node, and whether any valid split was found.
func (b *builder) bestSplit(idx []int, mean float64) (feat int, thresh, gain float64, ok bool) {
	n := len(idx)
	var parentSSE float64
	for _, i := range idx {
		d := b.y[i] - mean
		parentSSE += d * d
	}
	if parentSSE <= 0 {
		return 0, 0, 0, false // node is pure
	}

	candidates := b.candidateFeatures()
	order := make([]int, n)
	bestSSE := math.Inf(1)
	for _, f := range candidates {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool { return b.x[order[a]][f] < b.x[order[c]][f] })

		// Scan splits with running sums: left prefix vs right suffix.
		var sumL, sqL float64
		sumR, sqR := 0.0, 0.0
		for _, i := range order {
			sumR += b.y[i]
			sqR += b.y[i] * b.y[i]
		}
		for k := 0; k < n-1; k++ {
			yi := b.y[order[k]]
			sumL += yi
			sqL += yi * yi
			sumR -= yi
			sqR -= yi * yi
			// Cannot split between identical feature values.
			if b.x[order[k]][f] == b.x[order[k+1]][f] {
				continue
			}
			nl, nr := float64(k+1), float64(n-k-1)
			sse := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if sse < bestSSE {
				bestSSE = sse
				feat = f
				thresh = (b.x[order[k]][f] + b.x[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	if !ok {
		return 0, 0, 0, false
	}
	gain = parentSSE - bestSSE
	if gain <= 0 {
		return 0, 0, 0, false
	}
	return feat, thresh, gain, true
}

// candidateFeatures returns the feature indices to consider at this node:
// all of them for plain CART, or MTry sampled without replacement for RF.
func (b *builder) candidateFeatures() []int {
	nf := b.tree.nFeatures
	if b.p.MTry == 0 || b.p.MTry >= nf {
		all := make([]int, nf)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return b.p.RNG.SampleWithoutReplacement(nf, b.p.MTry)
}

// Predict returns the tree's response for the feature vector x.
// It panics if x has the wrong length.
func (t *Tree) Predict(x []float64) float64 {
	if len(x) != t.nFeatures {
		panic(fmt.Sprintf("rtree: predicting with %d features, tree has %d", len(x), t.nFeatures))
	}
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumFeatures returns the number of predictors the tree was trained on.
func (t *Tree) NumFeatures() int { return t.nFeatures }

// NumNodes returns the total node count (internal + leaves).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of terminal nodes.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.nodes {
		if t.nodes[i].feature < 0 {
			c++
		}
	}
	return c
}

// Depth returns the maximum root-to-leaf depth (a single leaf has depth 0).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// ResponseRange returns the [min, max] of training responses; every
// prediction lies within this interval (leaves are training means).
func (t *Tree) ResponseRange() (lo, hi float64) { return t.minResp, t.maxResp }

// PurityGain returns, per feature, the total SSE decrease contributed by
// splits on that feature (R's IncNodePurity). The slice is a copy.
func (t *Tree) PurityGain() []float64 {
	out := make([]float64, len(t.purityGain))
	copy(out, t.purityGain)
	return out
}

// String renders the tree structure for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(i int32, indent string)
	walk = func(i int32, indent string) {
		n := &t.nodes[i]
		if n.feature < 0 {
			fmt.Fprintf(&b, "%sleaf value=%.4g n=%d\n", indent, n.value, n.count)
			return
		}
		fmt.Fprintf(&b, "%sx[%d] <= %.4g (n=%d)\n", indent, n.feature, n.threshold, n.count)
		walk(n.left, indent+"  ")
		walk(n.right, indent+"  ")
	}
	walk(0, "")
	return b.String()
}
