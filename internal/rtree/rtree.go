// Package rtree implements CART regression trees (Breiman et al., 1984),
// the base learner of BlackForest's random forest. Trees are grown by greedy
// binary splitting that minimizes the within-node sum of squared deviations
// (equation 3 of the paper), with the leaf prediction being the mean response
// of the region (equation 1).
package rtree

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"

	"blackforest/internal/stats"
)

// Params controls tree growth.
type Params struct {
	// MinNodeSize is the minimum number of samples in a node eligible for
	// splitting; nodes smaller than this become leaves. The paper (and R's
	// randomForest in regression mode) uses 5.
	MinNodeSize int
	// MaxDepth caps tree depth; 0 means unlimited (grow to MinNodeSize).
	MaxDepth int
	// MTry is the number of predictors sampled (without replacement) as
	// split candidates at each node; 0 means all predictors (plain CART).
	MTry int
	// RNG supplies randomness for MTry subsetting. Required when MTry > 0.
	RNG *stats.RNG
}

// DefaultParams returns the parameters used by the paper: node size 5,
// unlimited depth, all features considered (MTry is set by the forest).
func DefaultParams() Params {
	return Params{MinNodeSize: 5}
}

// node is one tree node in the flattened node array. Leaves have
// feature == -1.
type node struct {
	feature   int     // split feature index, or -1 for a leaf
	threshold float64 // split point s: x[feature] <= s goes left
	left      int32   // index of the left child in Tree.nodes
	right     int32   // index of the right child
	value     float64 // mean response of samples reaching this node
	count     int     // number of training samples at this node
}

// Tree is a fitted regression tree.
type Tree struct {
	nodes      []node
	nFeatures  int
	minResp    float64 // smallest training response (prediction lower bound)
	maxResp    float64 // largest training response (prediction upper bound)
	purityGain []float64
}

// Matrix is a training design matrix preprocessed for fast tree growth: a
// column-major copy of the rows plus, per feature, all row ids sorted by
// (feature value, id). Building it costs one sort per feature; every tree
// fitted against it (FitMatrix) then derives its in-bag orderings with a
// zero-comparison counting walk, so growing a whole forest performs no
// further sorting on safe features. A Matrix is immutable after
// construction and safe for concurrent FitMatrix calls.
type Matrix struct {
	nrows, nf int
	col       []float64 // col[f*nrows+row] = x[row][f]
	ord       []int32   // nf blocks of nrows ids, sorted by (value, id)
}

// NewMatrix validates rows x and preprocesses them for FitMatrix.
func NewMatrix(x [][]float64) (*Matrix, error) {
	if len(x) == 0 {
		return nil, errors.New("rtree: empty training set")
	}
	nf := len(x[0])
	if nf == 0 {
		return nil, errors.New("rtree: no features")
	}
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("rtree: ragged row %d (%d features, want %d)", i, len(row), nf)
		}
	}
	nrows := len(x)
	m := &Matrix{
		nrows: nrows,
		nf:    nf,
		col:   make([]float64, nf*nrows),
		ord:   make([]int32, nf*nrows),
	}
	// Column-major copy of the design matrix: split scans read one
	// contiguous column instead of chasing a pointer per row.
	for i, row := range x {
		for j, v := range row {
			m.col[j*nrows+i] = v
		}
	}
	for f := 0; f < nf; f++ {
		block := m.ord[f*nrows : (f+1)*nrows]
		for i := range block {
			block[i] = int32(i)
		}
		base := f * nrows
		// (value, id) is a strict total order over distinct ids, so the
		// result is independent of the sorting algorithm — stable across
		// Go releases by construction.
		slices.SortFunc(block, func(a, c int32) int {
			va, vc := m.col[base+int(a)], m.col[base+int(c)]
			if va < vc {
				return -1
			}
			if va > vc {
				return 1
			}
			return int(a - c)
		})
	}
	return m, nil
}

// NumRows returns the number of training rows.
func (m *Matrix) NumRows() int { return m.nrows }

// NumFeatures returns the number of predictors.
func (m *Matrix) NumFeatures() int { return m.nf }

// Fit grows a regression tree on rows X (each of equal length) and
// responses y, using only the sample indices in idx (with multiplicity, as
// produced by bootstrap sampling). If idx is nil, all rows are used.
//
// When fitting many trees on the same rows (a forest), build a Matrix once
// with NewMatrix and call FitMatrix per tree to share the preprocessing.
func Fit(x [][]float64, y []float64, idx []int, p Params) (*Tree, error) {
	if len(x) != 0 && len(x) != len(y) {
		return nil, fmt.Errorf("rtree: %d rows but %d responses", len(x), len(y))
	}
	m, err := NewMatrix(x)
	if err != nil {
		return nil, err
	}
	return FitMatrix(m, y, idx, p)
}

// FitMatrix grows a regression tree against a preprocessed Matrix. See Fit.
func FitMatrix(m *Matrix, y []float64, idx []int, p Params) (*Tree, error) {
	if m.nrows != len(y) {
		return nil, fmt.Errorf("rtree: %d rows but %d responses", m.nrows, len(y))
	}
	nf := m.nf
	if p.MinNodeSize <= 0 {
		p.MinNodeSize = 5
	}
	if p.MTry < 0 || p.MTry > nf {
		return nil, fmt.Errorf("rtree: mtry %d out of range [0,%d]", p.MTry, nf)
	}
	if p.MTry > 0 && p.RNG == nil {
		return nil, errors.New("rtree: MTry > 0 requires an RNG")
	}
	if idx == nil {
		idx = make([]int, m.nrows)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, errors.New("rtree: empty sample index set")
	}

	t := &Tree{nFeatures: nf, purityGain: make([]float64, nf)}
	t.minResp, t.maxResp = math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		if y[i] < t.minResp {
			t.minResp = y[i]
		}
		if y[i] > t.maxResp {
			t.maxResp = y[i]
		}
	}

	n := len(idx)
	b := &builder{
		y:       y,
		p:       p,
		tree:    t,
		m:       m,
		nrows:   m.nrows,
		n:       n,
		col:     m.col,
		samples: make([]int32, n),
		ford:    make([]int32, nf*n),
		safe:    make([]bool, nf),
		order:   make([]int32, n),
		tmp:     make([]int32, n),
		side:    make([]uint8, m.nrows),
		cand:    make([]int, nf),
	}
	for i, v := range idx {
		b.samples[i] = int32(v)
	}
	if p.MTry == 0 || p.MTry >= nf {
		// Plain CART: candidate set is always the identity; fill it once.
		for i := range b.cand {
			b.cand[i] = i
		}
	}
	// sortCmp reproduces the seed comparator (value-only, ascending) for the
	// per-node fallback sort. Built once per tree so sorting allocates nothing.
	b.sortCmp = func(a, c int32) int {
		va, vc := b.col[b.sortBase+int(a)], b.col[b.sortBase+int(c)]
		if va < vc {
			return -1
		}
		if va > vc {
			return 1
		}
		return 0
	}
	b.presort()
	b.grow(0, n, 0)
	return t, nil
}

// builder carries shared state during recursive growth.
//
// The hot-path layout follows the sklearn/ranger presort-and-partition
// scheme: samples holds the in-bag row ids in recursion order, and ford
// holds, per feature, the same ids sorted by that feature's value. Both are
// indexed by the same [start, end) node ranges; grow re-partitions them in
// place as it recurses, so split scans on presorted ("safe") features never
// sort. Features whose tied values carry unequal responses fall back to an
// exact per-node sort (see presort for why). All per-node scratch (order,
// tmp, side, cand) is preallocated once per tree — growing a node allocates
// nothing beyond the appended tree node itself.
type builder struct {
	y    []float64
	p    Params
	tree *Tree
	m    *Matrix

	nrows   int       // rows in the full design matrix
	n       int       // in-bag sample count (len(idx), with multiplicity)
	col     []float64 // column-major matrix: col[f*nrows+row] = x[row][f]
	samples []int32   // row ids in recursion order; partitioned in place
	ford    []int32   // per-feature sorted orderings: nf blocks of n ids
	safe    []bool    // per feature: presorted path is bit-exact (see presort)
	order   []int32   // per-node sort buffer for unsafe features
	tmp     []int32   // stable-partition scratch for right-side ids
	side    []uint8   // per row id: 1 if the current split sends it left
	cand    []int     // candidate-feature scratch (identity for plain CART)

	sortBase int                  // column offset for sortCmp
	sortCmp  func(a, c int32) int // fallback comparator (built once per tree)
}

// presort builds, for every feature, the in-bag ids sorted by feature value
// (ties broken by row id for a deterministic total order), and classifies
// each feature as safe or unsafe for the presorted path.
//
// Bit-identity argument. The seed implementation re-sorted each node's ids
// with sort.Slice (value-only comparator), so the order of ids *within a
// run of equal values* was whatever pdqsort produced at that node; the split
// scan's running sums add y in that order, and float addition is not
// associative. The presorted ordering has a different (stable) tie order,
// which is harmless exactly when every run of equal feature values carries
// equal responses: then the scan's y sequence is identical position by
// position regardless of tie order, and every sum, SSE, threshold, and
// comparison reproduces the seed bit for bit. Bootstrap-duplicated rows
// always satisfy this (same row, same y); continuous features with no
// cross-row collisions satisfy it vacuously. Features that violate it
// (distinct rows colliding on a value with different y — common in raw GPU
// counter columns) are marked unsafe, and bestSplit re-sorts them per node
// with the exact seed pdqsort permutation (slices.SortFunc — same generated
// algorithm as sort.Slice, on the same initial order with the same
// comparator), so those scans are bit-identical too, just without the
// presort savings.
func (b *builder) presort() {
	// Derive each feature's in-bag ordering from the Matrix's full-row
	// ordering by multiplicity expansion: walking all rows in (value, id)
	// order and emitting each id count[id] times yields exactly the in-bag
	// multiset sorted by (value, id) — no comparisons per tree.
	count := make([]int32, b.nrows)
	for _, id := range b.samples {
		count[id]++
	}
	for f := 0; f < b.tree.nFeatures; f++ {
		full := b.m.ord[f*b.nrows : (f+1)*b.nrows]
		dst := b.ford[f*b.n : (f+1)*b.n]
		base := f * b.nrows
		safe := true
		w := 0
		prevV, prevY := math.NaN(), 0.0
		for _, id := range full {
			c := count[id]
			if c == 0 {
				continue
			}
			for ; c > 0; c-- {
				dst[w] = id
				w++
			}
			// Safety check, fused into the walk: a value collision between
			// distinct in-bag rows with unequal responses breaks the
			// order-invariance of tied sums (duplicates of one row always
			// agree with themselves, so checking distinct ids suffices).
			v, yv := b.col[base+int(id)], b.y[id]
			if v == prevV && yv != prevY {
				safe = false
			}
			prevV, prevY = v, yv
		}
		b.safe[f] = safe
	}
}

// grow builds the subtree over samples[start:end] at the given depth and
// returns the node's index in the flattened array.
func (b *builder) grow(start, end, depth int) int32 {
	me := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, node{feature: -1})

	var sum float64
	for _, id := range b.samples[start:end] {
		sum += b.y[id]
	}
	n := end - start
	mean := sum / float64(n)
	b.tree.nodes[me].value = mean
	b.tree.nodes[me].count = n

	if n < b.p.MinNodeSize*2 || (b.p.MaxDepth > 0 && depth >= b.p.MaxDepth) {
		return me
	}

	feat, thresh, gain, ok := b.bestSplit(start, end, mean)
	if !ok {
		return me
	}

	fbase := feat * b.nrows
	nl := 0
	for _, id := range b.samples[start:end] {
		var goLeft uint8
		if b.col[fbase+int(id)] <= thresh {
			goLeft = 1
		}
		b.side[id] = goLeft
		nl += int(goLeft)
	}
	if nl == 0 || nl == n {
		return me // degenerate split; keep as leaf
	}

	// Stable partition: recursion order and every safe feature's sorted
	// order survive the split, so child nodes need no re-sorting. Unsafe
	// features re-sort per node anyway, so their orderings are not kept up.
	b.partition(b.samples[start:end], nl)
	for f := 0; f < b.tree.nFeatures; f++ {
		if b.safe[f] {
			b.partition(b.ford[f*b.n+start:f*b.n+end], nl)
		}
	}

	b.tree.purityGain[feat] += gain
	l := b.grow(start, start+nl, depth+1)
	r := b.grow(start+nl, end, depth+1)
	b.tree.nodes[me].feature = feat
	b.tree.nodes[me].threshold = thresh
	b.tree.nodes[me].left = l
	b.tree.nodes[me].right = r
	return me
}

// partition stably moves the ids flagged in side to the front of seg,
// preserving relative order on both sides. nl is the left-side count.
// Both stores are unconditional (the left store at w never clobbers an
// unread slot because w never exceeds the read cursor), which keeps the
// loop free of data-dependent branches — side flags are effectively random,
// so a branching version mispredicts half the time.
func (b *builder) partition(seg []int32, nl int) {
	tmp := b.tmp
	w, r := 0, 0
	for _, id := range seg {
		s := int(b.side[id])
		seg[w] = id
		tmp[r] = id
		w += s
		r += 1 - s
	}
	copy(seg[nl:], tmp[:r])
}

// bestSplit scans candidate features for the split minimizing the summed
// within-child SSE. It returns the feature, threshold, the SSE decrease
// relative to the unsplit node, and whether any valid split was found.
// Each candidate scan walks the presorted ford range for this node, so the
// cost is O(n) per feature with cache-linear column reads — no sorting.
func (b *builder) bestSplit(start, end int, mean float64) (feat int, thresh, gain float64, ok bool) {
	n := end - start
	var parentSSE float64
	for _, id := range b.samples[start:end] {
		d := b.y[id] - mean
		parentSSE += d * d
	}
	if parentSSE <= 0 {
		return 0, 0, 0, false // node is pure
	}

	candidates := b.candidateFeatures()
	bestSSE := math.Inf(1)
	for _, f := range candidates {
		base := f * b.nrows
		var ord []int32
		if b.safe[f] {
			ord = b.ford[f*b.n+start : f*b.n+end]
		} else {
			// Exact seed fallback: same initial order (node recursion
			// order), same comparator, same pdqsort — same permutation.
			ord = b.order[:n]
			copy(ord, b.samples[start:end])
			b.sortBase = base
			slices.SortFunc(ord, b.sortCmp)
		}

		// Scan splits with running sums: left prefix vs right suffix.
		var sumL, sqL float64
		sumR, sqR := 0.0, 0.0
		for _, id := range ord {
			yi := b.y[id]
			sumR += yi
			sqR += yi * yi
		}
		v := b.col[base+int(ord[0])]
		for k := 0; k < n-1; k++ {
			yi := b.y[ord[k]]
			sumL += yi
			sqL += yi * yi
			sumR -= yi
			sqR -= yi * yi
			vNext := b.col[base+int(ord[k+1])]
			// Cannot split between identical feature values.
			if v != vNext {
				nl, nr := float64(k+1), float64(n-k-1)
				sse := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
				if sse < bestSSE {
					bestSSE = sse
					feat = f
					thresh = (v + vNext) / 2
					ok = true
				}
			}
			v = vNext
		}
	}
	if !ok {
		return 0, 0, 0, false
	}
	gain = parentSSE - bestSSE
	if gain <= 0 {
		return 0, 0, 0, false
	}
	return feat, thresh, gain, true
}

// candidateFeatures returns the feature indices to consider at this node:
// all of them for plain CART, or MTry sampled without replacement for RF.
// It reuses the per-builder cand buffer; the MTry path consumes the RNG
// stream exactly as SampleWithoutReplacement (Perm then truncate) did.
func (b *builder) candidateFeatures() []int {
	nf := b.tree.nFeatures
	if b.p.MTry == 0 || b.p.MTry >= nf {
		return b.cand
	}
	b.p.RNG.PermInto(b.cand)
	return b.cand[:b.p.MTry]
}

// Predict returns the tree's response for the feature vector x.
// It panics if x has the wrong length.
func (t *Tree) Predict(x []float64) float64 {
	if len(x) != t.nFeatures {
		panic(fmt.Sprintf("rtree: predicting with %d features, tree has %d", len(x), t.nFeatures))
	}
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumFeatures returns the number of predictors the tree was trained on.
func (t *Tree) NumFeatures() int { return t.nFeatures }

// NumNodes returns the total node count (internal + leaves).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of terminal nodes.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.nodes {
		if t.nodes[i].feature < 0 {
			c++
		}
	}
	return c
}

// Depth returns the maximum root-to-leaf depth (a single leaf has depth 0).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// ResponseRange returns the [min, max] of training responses; every
// prediction lies within this interval (leaves are training means).
func (t *Tree) ResponseRange() (lo, hi float64) { return t.minResp, t.maxResp }

// PurityGain returns, per feature, the total SSE decrease contributed by
// splits on that feature (R's IncNodePurity). The slice is a copy.
func (t *Tree) PurityGain() []float64 {
	out := make([]float64, len(t.purityGain))
	copy(out, t.purityGain)
	return out
}

// String renders the tree structure for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(i int32, indent string)
	walk = func(i int32, indent string) {
		n := &t.nodes[i]
		if n.feature < 0 {
			fmt.Fprintf(&b, "%sleaf value=%.4g n=%d\n", indent, n.value, n.count)
			return
		}
		fmt.Fprintf(&b, "%sx[%d] <= %.4g (n=%d)\n", indent, n.feature, n.threshold, n.count)
		walk(n.left, indent+"  ")
		walk(n.right, indent+"  ")
	}
	walk(0, "")
	return b.String()
}
