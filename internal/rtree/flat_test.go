package rtree

import (
	"encoding/json"
	"math"
	"testing"

	"blackforest/internal/stats"
)

// fitTestTrees grows nTrees CART trees on bootstrap resamples of a random
// regression problem, mimicking how forest.Fit produces the trees that
// CompileFlat consumes.
func fitTestTrees(t testing.TB, seed uint64, nTrees, rows, features int) ([]*Tree, [][]float64) {
	t.Helper()
	rng := stats.NewRNG(seed)
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range x {
		x[i] = make([]float64, features)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64() * 10
		}
		y[i] = x[i][0]*3 - x[i][features-1] + rng.NormFloat64()
	}
	trees := make([]*Tree, nTrees)
	for k := range trees {
		inBag, _ := rng.Bootstrap(rows)
		tr, err := Fit(x, y, inBag, Params{MinNodeSize: 3, MTry: features, RNG: rng})
		if err != nil {
			t.Fatalf("fitting tree %d: %v", k, err)
		}
		trees[k] = tr
	}
	return trees, x
}

// TestFlatMatchesPointerWalker: the compiled engine must reproduce the
// pointer walker bit for bit — same comparisons, verbatim leaf values,
// tree-order summation.
func TestFlatMatchesPointerWalker(t *testing.T) {
	trees, x := fitTestTrees(t, 1, 7, 120, 4)
	flat, err := CompileFlat(trees)
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumTrees() != len(trees) {
		t.Fatalf("NumTrees = %d, want %d", flat.NumTrees(), len(trees))
	}
	if flat.NumFeatures() != 4 {
		t.Fatalf("NumFeatures = %d, want 4", flat.NumFeatures())
	}
	wantNodes := 0
	for _, tr := range trees {
		wantNodes += tr.NumNodes()
	}
	if flat.NumNodes() != wantNodes {
		t.Fatalf("NumNodes = %d, want %d", flat.NumNodes(), wantNodes)
	}
	if flat.Encoding() != "" {
		t.Fatalf("in-process compile reports encoding %q, want \"\"", flat.Encoding())
	}

	out := make([]float64, len(x))
	if err := flat.PredictBatch(x, out); err != nil {
		t.Fatal(err)
	}
	for i, row := range x {
		var s float64
		for _, tr := range trees {
			s += tr.Predict(row)
		}
		want := s / float64(len(trees))
		got, err := flat.Predict(row)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %d: flat %v != pointer %v", i, got, want)
		}
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: batch %v != pointer %v", i, out[i], want)
		}
	}
}

func TestCompileFlatRejects(t *testing.T) {
	trees, _ := fitTestTrees(t, 2, 2, 40, 3)
	if _, err := CompileFlat(nil); err == nil {
		t.Fatal("compiled an empty forest")
	}
	if _, err := CompileFlat([]*Tree{trees[0], nil}); err == nil {
		t.Fatal("compiled a nil tree")
	}
	other, _ := fitTestTrees(t, 3, 1, 40, 2)
	if _, err := CompileFlat([]*Tree{trees[0], other[0]}); err == nil {
		t.Fatal("compiled trees with mismatched feature counts")
	}
}

func TestFlatPredictErrors(t *testing.T) {
	trees, x := fitTestTrees(t, 4, 3, 60, 3)
	flat, err := CompileFlat(trees)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Predict([]float64{1, 2}); err == nil {
		t.Fatal("predicted with a short vector")
	}
	if _, err := flat.Predict(nil); err == nil {
		t.Fatal("predicted with a nil vector")
	}
	if err := flat.PredictBatch(x[:4], make([]float64, 3)); err == nil {
		t.Fatal("batch accepted a mismatched output length")
	}
	bad := [][]float64{x[0], {1}}
	if err := flat.PredictBatch(bad, make([]float64, 2)); err == nil {
		t.Fatal("batch accepted a ragged row")
	}
}

// TestFlatExportImportRoundTrip: a JSON round trip through the bundle
// encoding must reconstruct the same structure (Equal) and the same
// predictions, bit for bit.
func TestFlatExportImportRoundTrip(t *testing.T) {
	trees, x := fitTestTrees(t, 5, 5, 100, 4)
	flat, err := CompileFlat(trees)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(flat.Export())
	if err != nil {
		t.Fatal(err)
	}
	var e ExportedFlatForest
	if err := json.Unmarshal(blob, &e); err != nil {
		t.Fatal(err)
	}
	got, err := ImportFlat(&e)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(flat) {
		t.Fatal("round-tripped forest differs structurally")
	}
	if got.Encoding() == "" {
		t.Fatal("imported forest reports no encoding")
	}
	for i, row := range x {
		a, err := flat.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("row %d: round trip changed prediction %v -> %v", i, a, b)
		}
	}
}

func TestEncodeValuesSelection(t *testing.T) {
	roundTrip := func(t *testing.T, vals []float64, wantEnc string) {
		t.Helper()
		e := encodeValues(vals)
		if e.Enc != wantEnc {
			t.Fatalf("encoding = %q, want %q", e.Enc, wantEnc)
		}
		got, err := e.decode(len(vals))
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d: %x -> %x", i, math.Float64bits(vals[i]), math.Float64bits(got[i]))
			}
		}
	}

	// Few distinct values, including the -0/+0 pair and NaN: dict16, and the
	// decode must restore the exact bit patterns.
	t.Run("dict16", func(t *testing.T) {
		vals := []float64{1.5, -2.25, 1.5, math.Copysign(0, -1), 0, math.NaN(), 1.5}
		roundTrip(t, vals, "dict16")
	})

	// More than 65536 distinct float32-exact values: f32.
	t.Run("f32", func(t *testing.T) {
		vals := make([]float64, 1<<16+10)
		for i := range vals {
			vals[i] = float64(float32(i) * 0.5)
		}
		roundTrip(t, vals, "f32")
	})

	// More than 65536 distinct values where at least one is not float32-exact:
	// raw f64 fallback.
	t.Run("f64", func(t *testing.T) {
		vals := make([]float64, 1<<16+10)
		for i := range vals {
			vals[i] = float64(i) + 0.1
		}
		roundTrip(t, vals, "f64")
	})
}

func TestDecodeValuesRejects(t *testing.T) {
	cases := []ExportedValues{
		{Enc: "dict16", Table: []float64{1}, Idx: []uint16{0}},    // wrong n (decode(2))
		{Enc: "dict16", Table: nil, Idx: []uint16{0, 0}},          // empty table
		{Enc: "dict16", Table: []float64{1}, Idx: []uint16{0, 5}}, // index out of table
		{Enc: "f32", F32: []float32{1}},                           // wrong n
		{Enc: "f64", F64: []float64{1}},                           // wrong n
		{Enc: "zstd", F64: []float64{1, 2}},                       // unknown encoding
	}
	for i, e := range cases {
		if _, err := e.decode(2); err == nil {
			t.Fatalf("case %d: decoded invalid values", i)
		}
	}
}

// TestImportFlatRejectsHostile: structurally hostile bundles must be
// rejected by validation, never walked.
func TestImportFlatRejectsHostile(t *testing.T) {
	valid := func() *ExportedFlatForest {
		return &ExportedFlatForest{
			NFeatures: 2,
			Roots:     []int32{0, 3},
			Feature:   []int32{0, -1, -1, -1},
			Left:      []int32{1, 0, 0, 0},
			Right:     []int32{2, 0, 0, 0},
			Values:    ExportedValues{Enc: "f64", F64: []float64{0.5, 1, 2, 3}},
		}
	}
	if _, err := ImportFlat(valid()); err != nil {
		t.Fatalf("baseline bundle rejected: %v", err)
	}

	mutate := []struct {
		name string
		f    func(e *ExportedFlatForest)
	}{
		{"nil", func(e *ExportedFlatForest) { *e = ExportedFlatForest{} }},
		{"no features", func(e *ExportedFlatForest) { e.NFeatures = 0 }},
		{"no nodes", func(e *ExportedFlatForest) {
			e.Feature, e.Left, e.Right = nil, nil, nil
			e.Values = ExportedValues{Enc: "f64"}
		}},
		{"ragged arrays", func(e *ExportedFlatForest) { e.Left = e.Left[:2] }},
		{"no roots", func(e *ExportedFlatForest) { e.Roots = nil }},
		{"first root nonzero", func(e *ExportedFlatForest) { e.Roots[0] = 1 }},
		{"roots not increasing", func(e *ExportedFlatForest) { e.Roots = []int32{0, 0} }},
		{"root out of range", func(e *ExportedFlatForest) { e.Roots = []int32{0, 9} }},
		{"feature out of range", func(e *ExportedFlatForest) { e.Feature[0] = 7 }},
		{"self cycle", func(e *ExportedFlatForest) { e.Left[0] = 0 }},
		{"backward edge", func(e *ExportedFlatForest) {
			e.Feature[1] = 0
			e.Left[1], e.Right[1] = 1, 2 // left child == self
		}},
		{"child crosses tree span", func(e *ExportedFlatForest) { e.Right[0] = 3 }},
		{"child out of range", func(e *ExportedFlatForest) { e.Right[0] = 99 }},
		{"bad values", func(e *ExportedFlatForest) { e.Values = ExportedValues{Enc: "f64", F64: []float64{1}} }},
	}
	for _, m := range mutate {
		e := valid()
		m.f(e)
		if _, err := ImportFlat(e); err == nil {
			t.Fatalf("%s: hostile bundle accepted", m.name)
		}
	}
}

// TestImportFlatNormalizesLeafChildren: serialized junk in leaf child slots
// must not survive import (it would break Equal against a compiled forest).
func TestImportFlatNormalizesLeafChildren(t *testing.T) {
	e := &ExportedFlatForest{
		NFeatures: 1,
		Roots:     []int32{0},
		Feature:   []int32{0, -1, -1},
		Left:      []int32{1, 42, -7},
		Right:     []int32{2, 13, 99},
		Values:    ExportedValues{Enc: "f64", F64: []float64{0, 1, 2}},
	}
	f, err := ImportFlat(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if f.left[i] != 0 || f.right[i] != 0 {
			t.Fatalf("leaf %d children not normalized: (%d, %d)", i, f.left[i], f.right[i])
		}
	}
	got, err := f.Predict([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("Predict = %v, want 2", got)
	}
}
