package rtree

import (
	"testing"

	"blackforest/internal/stats"
)

// TestFitAllocsIndependentOfNodeCount asserts the per-builder workspace
// actually eliminates per-node allocation: growing a ~4000-node tree may
// allocate only marginally more than growing a 7-node tree on the same
// data — the difference is the node slice doubling a dozen times, not
// anything proportional to node count. Before the presorted rewrite every
// node allocated fresh sort buffers, so this would differ by thousands.
func TestFitAllocsIndependentOfNodeCount(t *testing.T) {
	rng := stats.NewRNG(31)
	n, p := 2000, 8
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = 3*row[0] + rng.NormFloat64()
	}
	m, err := NewMatrix(x)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(params Params) (float64, int) {
		var nodes int
		allocs := testing.AllocsPerRun(10, func() {
			tree, err := FitMatrix(m, y, nil, params)
			if err != nil {
				t.Fatal(err)
			}
			nodes = tree.NumNodes()
		})
		return allocs, nodes
	}

	shallow, shallowNodes := measure(Params{MinNodeSize: 2, MaxDepth: 2})
	deep, deepNodes := measure(Params{MinNodeSize: 1})
	if deepNodes < 50*shallowNodes {
		t.Fatalf("test premise broken: deep tree %d nodes vs shallow %d", deepNodes, shallowNodes)
	}
	// ~40 covers the node-slice doublings plus slack; per-node allocation
	// would cost thousands here.
	if deep > shallow+40 {
		t.Fatalf("Fit allocates per node: %.0f allocs for %d nodes vs %.0f for %d",
			deep, deepNodes, shallow, shallowNodes)
	}
}
