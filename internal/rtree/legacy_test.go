package rtree

// This file freezes the pre-optimization CART implementation (per-node
// sort.Slice split finding) as a reference oracle. The production Fit was
// rewritten around presorted columnar feature orderings; the determinism
// guarantee of that rewrite is "same trees as this reference, bit for bit"
// on any training set whose tied feature values carry tied responses
// (bootstrap-duplicated rows qualify; distinct rows colliding on a raw
// counter value are the only case where the two orderings may diverge in
// final-ULP sums). testdata/tree_fixture.json is generated from THIS code
// (UPDATE_TREE_FIXTURE=1), so the pinned fixture can always be rebuilt from
// the pre-optimization behavior even after further rewrites.

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// legacyFit is the seed implementation of Fit, kept verbatim.
func legacyFit(x [][]float64, y []float64, idx []int, p Params) (*Tree, error) {
	if len(x) == 0 {
		return nil, errors.New("rtree: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("rtree: %d rows but %d responses", len(x), len(y))
	}
	nf := len(x[0])
	if nf == 0 {
		return nil, errors.New("rtree: no features")
	}
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("rtree: ragged row %d (%d features, want %d)", i, len(row), nf)
		}
	}
	if p.MinNodeSize <= 0 {
		p.MinNodeSize = 5
	}
	if p.MTry < 0 || p.MTry > nf {
		return nil, fmt.Errorf("rtree: mtry %d out of range [0,%d]", p.MTry, nf)
	}
	if p.MTry > 0 && p.RNG == nil {
		return nil, errors.New("rtree: MTry > 0 requires an RNG")
	}
	if idx == nil {
		idx = make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, errors.New("rtree: empty sample index set")
	}

	t := &Tree{nFeatures: nf, purityGain: make([]float64, nf)}
	t.minResp, t.maxResp = math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		if y[i] < t.minResp {
			t.minResp = y[i]
		}
		if y[i] > t.maxResp {
			t.maxResp = y[i]
		}
	}

	b := &legacyBuilder{x: x, y: y, p: p, tree: t}
	work := make([]int, len(idx))
	copy(work, idx)
	b.grow(work, 0)
	return t, nil
}

// legacyBuilder carries shared state during recursive growth.
type legacyBuilder struct {
	x    [][]float64
	y    []float64
	p    Params
	tree *Tree
}

func (b *legacyBuilder) grow(idx []int, depth int) int32 {
	me := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, node{feature: -1})

	var sum float64
	for _, i := range idx {
		sum += b.y[i]
	}
	mean := sum / float64(len(idx))
	b.tree.nodes[me].value = mean
	b.tree.nodes[me].count = len(idx)

	if len(idx) < b.p.MinNodeSize*2 || (b.p.MaxDepth > 0 && depth >= b.p.MaxDepth) {
		return me
	}

	feat, thresh, gain, ok := b.bestSplit(idx, mean)
	if !ok {
		return me
	}

	left := idx[:0:0]
	right := idx[:0:0]
	for _, i := range idx {
		if b.x[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return me // degenerate split; keep as leaf
	}

	b.tree.purityGain[feat] += gain
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.tree.nodes[me].feature = feat
	b.tree.nodes[me].threshold = thresh
	b.tree.nodes[me].left = l
	b.tree.nodes[me].right = r
	return me
}

func (b *legacyBuilder) bestSplit(idx []int, mean float64) (feat int, thresh, gain float64, ok bool) {
	n := len(idx)
	var parentSSE float64
	for _, i := range idx {
		d := b.y[i] - mean
		parentSSE += d * d
	}
	if parentSSE <= 0 {
		return 0, 0, 0, false // node is pure
	}

	candidates := b.candidateFeatures()
	order := make([]int, n)
	bestSSE := math.Inf(1)
	for _, f := range candidates {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool { return b.x[order[a]][f] < b.x[order[c]][f] })

		// Scan splits with running sums: left prefix vs right suffix.
		var sumL, sqL float64
		sumR, sqR := 0.0, 0.0
		for _, i := range order {
			sumR += b.y[i]
			sqR += b.y[i] * b.y[i]
		}
		for k := 0; k < n-1; k++ {
			yi := b.y[order[k]]
			sumL += yi
			sqL += yi * yi
			sumR -= yi
			sqR -= yi * yi
			// Cannot split between identical feature values.
			if b.x[order[k]][f] == b.x[order[k+1]][f] {
				continue
			}
			nl, nr := float64(k+1), float64(n-k-1)
			sse := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if sse < bestSSE {
				bestSSE = sse
				feat = f
				thresh = (b.x[order[k]][f] + b.x[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	if !ok {
		return 0, 0, 0, false
	}
	gain = parentSSE - bestSSE
	if gain <= 0 {
		return 0, 0, 0, false
	}
	return feat, thresh, gain, true
}

func (b *legacyBuilder) candidateFeatures() []int {
	nf := b.tree.nFeatures
	if b.p.MTry == 0 || b.p.MTry >= nf {
		all := make([]int, nf)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return b.p.RNG.SampleWithoutReplacement(nf, b.p.MTry)
}
