package rtree

import (
	"errors"
	"fmt"
)

// ExportedNode is the serializable form of one tree node.
type ExportedNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t,omitempty"`
	Left      int32   `json:"l,omitempty"`
	Right     int32   `json:"r,omitempty"`
	Value     float64 `json:"v"`
	Count     int     `json:"n"`
}

// ExportedTree is the serializable form of a fitted tree.
type ExportedTree struct {
	Nodes      []ExportedNode `json:"nodes"`
	NFeatures  int            `json:"features"`
	MinResp    float64        `json:"min"`
	MaxResp    float64        `json:"max"`
	PurityGain []float64      `json:"purity,omitempty"`
}

// Export returns the tree in serializable form.
func (t *Tree) Export() *ExportedTree {
	e := &ExportedTree{
		Nodes:      make([]ExportedNode, len(t.nodes)),
		NFeatures:  t.nFeatures,
		MinResp:    t.minResp,
		MaxResp:    t.maxResp,
		PurityGain: append([]float64(nil), t.purityGain...),
	}
	for i, n := range t.nodes {
		e.Nodes[i] = ExportedNode{
			Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right,
			Value: n.value, Count: n.count,
		}
	}
	return e
}

// Import reconstructs a tree from its exported form, validating the node
// graph so a corrupted file cannot cause out-of-range walks.
func Import(e *ExportedTree) (*Tree, error) {
	if len(e.Nodes) == 0 {
		return nil, errors.New("rtree: exported tree has no nodes")
	}
	if e.NFeatures <= 0 {
		return nil, fmt.Errorf("rtree: invalid feature count %d", e.NFeatures)
	}
	t := &Tree{
		nodes:      make([]node, len(e.Nodes)),
		nFeatures:  e.NFeatures,
		minResp:    e.MinResp,
		maxResp:    e.MaxResp,
		purityGain: append([]float64(nil), e.PurityGain...),
	}
	if t.purityGain == nil {
		t.purityGain = make([]float64, e.NFeatures)
	} else if len(t.purityGain) != e.NFeatures {
		return nil, fmt.Errorf("rtree: %d purity gains for %d features", len(t.purityGain), e.NFeatures)
	}
	for i, n := range e.Nodes {
		if n.Feature >= e.NFeatures {
			return nil, fmt.Errorf("rtree: node %d splits on feature %d of %d", i, n.Feature, e.NFeatures)
		}
		if n.Feature >= 0 {
			// Children must come after their parent (the invariant of the
			// flattened layout grown by Fit): this both bounds the indices
			// and makes cycles impossible, so Predict on any imported tree
			// terminates.
			if int(n.Left) <= i || int(n.Left) >= len(e.Nodes) ||
				int(n.Right) <= i || int(n.Right) >= len(e.Nodes) {
				return nil, fmt.Errorf("rtree: node %d has invalid children (%d, %d)", i, n.Left, n.Right)
			}
		}
		t.nodes[i] = node{
			feature: n.Feature, threshold: n.Threshold,
			left: n.Left, right: n.Right,
			value: n.Value, count: n.Count,
		}
	}
	return t, nil
}
