package rtree

// Flat compiled forest inference. A fitted forest of pointer-linked *Tree
// objects is compiled once into a single contiguous structure-of-arrays
// (feature index, threshold-or-leaf-value, left/right child offsets relative
// to the forest-global node array), with a per-tree root-offset index.
// Traversal is then a tight loop over four flat slices with no per-node
// pointer chasing, which makes single predicts ns-scale and lets batch
// prediction walk one tree's nodes across a whole row block before moving to
// the next tree (cache locality; see forest.PredictAll).
//
// Bit-identity: the compiler copies every threshold and leaf value verbatim
// and the traversal applies exactly the comparison Tree.Predict applies
// (x[feature] <= threshold goes left), so a FlatForest reproduces the
// pointer walker's predictions bit for bit. The quantized export encoding
// (ExportedValues) is only ever chosen when it is lossless, so a bundle
// round trip preserves that guarantee.

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// FlatForest is a forest compiled into one contiguous node array. Tree t's
// nodes occupy the half-open span [roots[t], roots[t+1]) (the last tree runs
// to the end of the array) with the root first; within a span children
// always come after their parent, the same invariant Import enforces for
// single trees, so any walk terminates. A FlatForest is immutable and safe
// for concurrent use.
type FlatForest struct {
	nFeatures int
	enc       string    // value encoding this forest was decoded from ("" = compiled in-process)
	roots     []int32   // per-tree root index into the node arrays
	feature   []int32   // split feature, or -1 for a leaf
	thresh    []float64 // split threshold, or the leaf value when feature < 0
	left      []int32   // forest-global left-child index (unused on leaves)
	right     []int32   // forest-global right-child index (unused on leaves)
}

// CompileFlat compiles fitted trees into a FlatForest. All trees must share
// a feature count; the per-tree node order (children after parents) is
// preserved, so the compiled layout satisfies the Import invariants by
// construction.
func CompileFlat(trees []*Tree) (*FlatForest, error) {
	if len(trees) == 0 {
		return nil, errors.New("rtree: no trees to compile")
	}
	nf := trees[0].nFeatures
	total := 0
	for i, t := range trees {
		if t == nil {
			return nil, fmt.Errorf("rtree: nil tree %d", i)
		}
		if t.nFeatures != nf {
			return nil, fmt.Errorf("rtree: tree %d has %d features, tree 0 has %d", i, t.nFeatures, nf)
		}
		if len(t.nodes) == 0 {
			return nil, fmt.Errorf("rtree: tree %d has no nodes", i)
		}
		total += len(t.nodes)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("rtree: forest has %d nodes, flat index limit is %d", total, math.MaxInt32)
	}
	f := &FlatForest{
		nFeatures: nf,
		roots:     make([]int32, len(trees)),
		feature:   make([]int32, 0, total),
		thresh:    make([]float64, 0, total),
		left:      make([]int32, 0, total),
		right:     make([]int32, 0, total),
	}
	for ti, t := range trees {
		base := int32(len(f.feature))
		f.roots[ti] = base
		for i := range t.nodes {
			n := &t.nodes[i]
			if n.feature < 0 {
				// Leaves reuse the threshold slot for the leaf value and
				// carry zeroed child offsets (never read by traversal).
				f.feature = append(f.feature, -1)
				f.thresh = append(f.thresh, n.value)
				f.left = append(f.left, 0)
				f.right = append(f.right, 0)
			} else {
				f.feature = append(f.feature, int32(n.feature))
				f.thresh = append(f.thresh, n.threshold)
				f.left = append(f.left, base+n.left)
				f.right = append(f.right, base+n.right)
			}
		}
	}
	return f, nil
}

// predictTree walks one tree from its root. The loop body is branch-light:
// the only data-dependent branch is the leaf test, and the child selection
// compiles to a conditional move.
func (f *FlatForest) predictTree(i int32, x []float64) float64 {
	feature, thresh := f.feature, f.thresh
	left, right := f.left, f.right
	for {
		ft := feature[i]
		if ft < 0 {
			return thresh[i]
		}
		next := left[i]
		if x[ft] > thresh[i] {
			next = right[i]
		}
		i = next
	}
}

// Predict returns the forest prediction (mean of tree predictions, summed in
// tree order) for x. Unlike Tree.Predict, a malformed input returns an error
// instead of panicking: the flat engine is the serving path, and one bad
// vector must never take the server down.
func (f *FlatForest) Predict(x []float64) (float64, error) {
	if len(x) != f.nFeatures {
		return 0, fmt.Errorf("rtree: predicting with %d features, forest has %d", len(x), f.nFeatures)
	}
	var s float64
	for _, r := range f.roots {
		s += f.predictTree(r, x)
	}
	return s / float64(len(f.roots)), nil
}

// PredictBatch fills out[i] with the forest prediction for rows[i], walking
// the batch tree-major: every tree is applied to the whole row block before
// the next tree starts, so one tree's node array stays cache-hot across all
// rows. Per row, tree contributions still accumulate in tree order, so each
// result is bit-identical to Predict. out must have len(rows).
func (f *FlatForest) PredictBatch(rows [][]float64, out []float64) error {
	if len(out) != len(rows) {
		return fmt.Errorf("rtree: output length %d for %d rows", len(out), len(rows))
	}
	for i, x := range rows {
		if len(x) != f.nFeatures {
			return fmt.Errorf("rtree: row %d has %d features, forest has %d", i, len(x), f.nFeatures)
		}
		out[i] = 0
	}
	for _, r := range f.roots {
		for i, x := range rows {
			out[i] += f.predictTree(r, x)
		}
	}
	nt := float64(len(f.roots))
	for i := range out {
		out[i] /= nt
	}
	return nil
}

// NumTrees returns the number of compiled trees.
func (f *FlatForest) NumTrees() int { return len(f.roots) }

// NumFeatures returns the number of predictors.
func (f *FlatForest) NumFeatures() int { return f.nFeatures }

// NumNodes returns the total node count across all trees.
func (f *FlatForest) NumNodes() int { return len(f.feature) }

// Encoding returns the bundle value encoding this forest was decoded from
// ("dict16", "f32" or "f64"), or "" for a forest compiled in-process.
func (f *FlatForest) Encoding() string { return f.enc }

// Equal reports whether two flat forests are structurally identical with
// bit-identical thresholds and leaf values (NaN-safe, -0/+0-distinguishing).
func (f *FlatForest) Equal(g *FlatForest) bool {
	if f.nFeatures != g.nFeatures ||
		!slices.Equal(f.roots, g.roots) ||
		!slices.Equal(f.feature, g.feature) ||
		!slices.Equal(f.left, g.left) ||
		!slices.Equal(f.right, g.right) ||
		len(f.thresh) != len(g.thresh) {
		return false
	}
	for i := range f.thresh {
		if math.Float64bits(f.thresh[i]) != math.Float64bits(g.thresh[i]) {
			return false
		}
	}
	return true
}

// ExportedValues is a float64 array under one of three lossless encodings,
// chosen by encodeValues to minimize the serialized footprint:
//
//   - "dict16": a sorted table of distinct values plus one uint16 index per
//     element — exact whenever the array has at most 65536 distinct bit
//     patterns (forest thresholds almost always qualify: they are midpoints
//     of observed training values).
//   - "f32": float32 per element — chosen only when every value round-trips
//     float64→float32→float64 exactly.
//   - "f64": raw float64 fallback; always exact.
//
// Decoding any of the three reconstructs the original float64 bit patterns,
// so quantized bundles predict bit-identically to unquantized ones.
type ExportedValues struct {
	Enc   string    `json:"enc"`
	Table []float64 `json:"table,omitempty"`
	Idx   []uint16  `json:"idx,omitempty"`
	F32   []float32 `json:"f32,omitempty"`
	F64   []float64 `json:"f64,omitempty"`
}

// encodeValues picks the smallest lossless encoding for vals.
func encodeValues(vals []float64) ExportedValues {
	// Dedup by bit pattern, not by ==: -0.0 == 0.0 would merge two distinct
	// patterns and change the bits a leaf sum can produce; NaN != NaN would
	// make map lookups miss. (NaN cannot appear in a fitted forest — Fit
	// rejects non-finite inputs — but the encoder must not corrupt anything.)
	distinct := make(map[uint64]uint16, 1024)
	for _, v := range vals {
		b := math.Float64bits(v)
		if _, ok := distinct[b]; !ok {
			if len(distinct) >= 1<<16 {
				distinct = nil
				break
			}
			distinct[b] = 0
		}
	}
	if distinct != nil {
		keys := make([]uint64, 0, len(distinct))
		for b := range distinct {
			keys = append(keys, b)
		}
		// Sort by value (bit pattern breaks the -0/+0 tie) so the table is
		// deterministic regardless of map iteration order.
		slices.SortFunc(keys, func(a, b uint64) int {
			va, vb := math.Float64frombits(a), math.Float64frombits(b)
			if va < vb {
				return -1
			}
			if va > vb {
				return 1
			}
			if a < b {
				return -1
			}
			if a > b {
				return 1
			}
			return 0
		})
		table := make([]float64, len(keys))
		for i, b := range keys {
			table[i] = math.Float64frombits(b)
			distinct[b] = uint16(i)
		}
		idx := make([]uint16, len(vals))
		for i, v := range vals {
			idx[i] = distinct[math.Float64bits(v)]
		}
		return ExportedValues{Enc: "dict16", Table: table, Idx: idx}
	}
	f32ok := true
	for _, v := range vals {
		if float64(float32(v)) != v {
			f32ok = false
			break
		}
	}
	if f32ok {
		f32 := make([]float32, len(vals))
		for i, v := range vals {
			f32[i] = float32(v)
		}
		return ExportedValues{Enc: "f32", F32: f32}
	}
	return ExportedValues{Enc: "f64", F64: append([]float64(nil), vals...)}
}

// decode reconstructs the float64 array, which must have length n.
func (e *ExportedValues) decode(n int) ([]float64, error) {
	switch e.Enc {
	case "dict16":
		if len(e.Idx) != n {
			return nil, fmt.Errorf("rtree: dict16 values carry %d indices for %d nodes", len(e.Idx), n)
		}
		if len(e.Table) == 0 || len(e.Table) > 1<<16 {
			return nil, fmt.Errorf("rtree: dict16 table has %d entries", len(e.Table))
		}
		out := make([]float64, n)
		for i, k := range e.Idx {
			if int(k) >= len(e.Table) {
				return nil, fmt.Errorf("rtree: dict16 index %d out of table range %d", k, len(e.Table))
			}
			out[i] = e.Table[k]
		}
		return out, nil
	case "f32":
		if len(e.F32) != n {
			return nil, fmt.Errorf("rtree: f32 values carry %d entries for %d nodes", len(e.F32), n)
		}
		out := make([]float64, n)
		for i, v := range e.F32 {
			out[i] = float64(v)
		}
		return out, nil
	case "f64":
		if len(e.F64) != n {
			return nil, fmt.Errorf("rtree: f64 values carry %d entries for %d nodes", len(e.F64), n)
		}
		return append([]float64(nil), e.F64...), nil
	default:
		return nil, fmt.Errorf("rtree: unknown value encoding %q", e.Enc)
	}
}

// ExportedFlatForest is the serializable form of a FlatForest: the bundle's
// optional compact forest encoding.
type ExportedFlatForest struct {
	NFeatures int            `json:"features"`
	Roots     []int32        `json:"roots"`
	Feature   []int32        `json:"feature"`
	Left      []int32        `json:"left"`
	Right     []int32        `json:"right"`
	Values    ExportedValues `json:"values"`
}

// Export returns the flat forest in serializable form with thresholds and
// leaf values under the smallest lossless encoding.
func (f *FlatForest) Export() *ExportedFlatForest {
	return &ExportedFlatForest{
		NFeatures: f.nFeatures,
		Roots:     append([]int32(nil), f.roots...),
		Feature:   append([]int32(nil), f.feature...),
		Left:      append([]int32(nil), f.left...),
		Right:     append([]int32(nil), f.right...),
		Values:    encodeValues(f.thresh),
	}
}

// ImportFlat reconstructs a FlatForest from its exported form, validating
// the node graph so a corrupted or hostile bundle cannot cause out-of-range
// or cyclic walks: roots must start at 0 and strictly increase, and every
// internal node's children must lie after it inside the same tree span.
func ImportFlat(e *ExportedFlatForest) (*FlatForest, error) {
	if e == nil {
		return nil, errors.New("rtree: nil exported flat forest")
	}
	if e.NFeatures <= 0 {
		return nil, fmt.Errorf("rtree: invalid feature count %d", e.NFeatures)
	}
	n := len(e.Feature)
	if n == 0 {
		return nil, errors.New("rtree: exported flat forest has no nodes")
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("rtree: %d nodes exceed the flat index limit", n)
	}
	if len(e.Left) != n || len(e.Right) != n {
		return nil, fmt.Errorf("rtree: node arrays disagree (%d features, %d left, %d right)",
			n, len(e.Left), len(e.Right))
	}
	if len(e.Roots) == 0 {
		return nil, errors.New("rtree: exported flat forest has no trees")
	}
	vals, err := e.Values.decode(n)
	if err != nil {
		return nil, err
	}
	for t, r := range e.Roots {
		if t == 0 {
			if r != 0 {
				return nil, fmt.Errorf("rtree: first tree root is %d, want 0", r)
			}
		} else if r <= e.Roots[t-1] {
			return nil, fmt.Errorf("rtree: tree roots not strictly increasing at tree %d", t)
		}
		if int(r) >= n {
			return nil, fmt.Errorf("rtree: tree %d root %d out of range %d", t, r, n)
		}
	}
	f := &FlatForest{
		nFeatures: e.NFeatures,
		enc:       e.Values.Enc,
		roots:     append([]int32(nil), e.Roots...),
		feature:   append([]int32(nil), e.Feature...),
		thresh:    vals,
		left:      make([]int32, n),
		right:     make([]int32, n),
	}
	for t := range f.roots {
		end := int32(n)
		if t+1 < len(f.roots) {
			end = f.roots[t+1]
		}
		for i := f.roots[t]; i < end; i++ {
			ft := f.feature[i]
			if ft >= int32(e.NFeatures) {
				return nil, fmt.Errorf("rtree: node %d splits on feature %d of %d", i, ft, e.NFeatures)
			}
			if ft < 0 {
				// Leaf: child offsets are never read; normalize them to zero
				// so Equal comparisons are independent of serialized junk.
				continue
			}
			// Children after their parent, confined to the tree span: this
			// bounds every index and makes cycles impossible, so Predict on
			// any imported flat forest terminates.
			if e.Left[i] <= i || e.Left[i] >= end || e.Right[i] <= i || e.Right[i] >= end {
				return nil, fmt.Errorf("rtree: node %d has invalid children (%d, %d)", i, e.Left[i], e.Right[i])
			}
			f.left[i], f.right[i] = e.Left[i], e.Right[i]
		}
	}
	return f, nil
}
