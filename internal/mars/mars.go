// Package mars implements Multivariate Adaptive Regression Splines
// (Friedman, 1991), the non-parametric regression BlackForest uses to model
// performance counters in terms of problem/hardware characteristics when
// linear models are inadequate (§4.1.3, §6.1.2). The implementation follows
// the classical two-stage algorithm: a forward pass greedily adding mirror
// pairs of hinge basis functions (optionally interacting with existing
// terms), then a backward pruning pass selecting the subset minimizing
// generalized cross-validation (GCV) — the same algorithm as R's earth.
package mars

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"blackforest/internal/mat"
	"blackforest/internal/stats"
)

// Config controls MARS fitting.
type Config struct {
	// MaxTerms caps the number of basis terms (including the intercept)
	// after the forward pass. earth's default is min(21, 2·p+1).
	MaxTerms int
	// MaxDegree is the maximum interaction degree (1 = additive model,
	// 2 allows pairwise hinge products). Default 2.
	MaxDegree int
	// MaxKnots caps candidate knots per feature (quantile-spaced).
	// Default 20.
	MaxKnots int
	// Penalty is the GCV cost per knot; earth uses 2 for additive models
	// and 3 when interactions are allowed. 0 selects that default.
	Penalty float64
}

// DefaultConfig returns earth-like defaults.
func DefaultConfig() Config {
	return Config{MaxDegree: 2, MaxKnots: 20}
}

// hinge is one factor max(0, ±(x_j − knot)) of a basis term.
type hinge struct {
	feature int
	knot    float64
	// pos selects max(0, x−knot) when true, max(0, knot−x) otherwise.
	pos bool
}

func (h hinge) eval(x []float64) float64 {
	d := x[h.feature] - h.knot
	if !h.pos {
		d = -d
	}
	if d < 0 {
		return 0
	}
	return d
}

// term is a product of hinges; the empty product is the intercept.
type term struct {
	factors []hinge
}

func (t term) eval(x []float64) float64 {
	v := 1.0
	for _, h := range t.factors {
		v *= h.eval(x)
		if v == 0 {
			return 0
		}
	}
	return v
}

// usesFeature reports whether the term already involves feature j.
func (t term) usesFeature(j int) bool {
	for _, h := range t.factors {
		if h.feature == j {
			return true
		}
	}
	return false
}

// Model is a fitted MARS model: ŷ(x) = Σ coef_i · B_i(x).
type Model struct {
	Names []string
	terms []term
	Coef  []float64
	// GCV is the generalized cross-validation score of the final model.
	GCV float64
	// RSS is the residual sum of squares on the training data.
	RSS float64
	// TrainR2 is R² on the training data.
	TrainR2 float64
}

// Fit fits a MARS model of y on x (rows are observations).
func Fit(x [][]float64, y []float64, names []string, cfg Config) (*Model, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("mars: empty training set")
	}
	p := len(x[0])
	if len(y) != n {
		return nil, fmt.Errorf("mars: %d rows but %d responses", n, len(y))
	}
	if len(names) != p {
		return nil, fmt.Errorf("mars: %d names for %d predictors", len(names), p)
	}
	if cfg.MaxTerms <= 0 {
		// earth's default: min(200, max(20, 2p)) + 1.
		cfg.MaxTerms = 2 * p
		if cfg.MaxTerms < 20 {
			cfg.MaxTerms = 20
		}
		if cfg.MaxTerms > 200 {
			cfg.MaxTerms = 200
		}
		cfg.MaxTerms++
	}
	if cfg.MaxDegree <= 0 {
		cfg.MaxDegree = 2
	}
	if cfg.MaxKnots <= 0 {
		cfg.MaxKnots = 20
	}
	if cfg.Penalty == 0 {
		if cfg.MaxDegree > 1 {
			cfg.Penalty = 3
		} else {
			cfg.Penalty = 2
		}
	}

	knots := candidateKnots(x, cfg.MaxKnots)
	terms := forwardPass(x, y, knots, cfg)
	terms = backwardPass(x, y, terms, cfg)

	coef, rss, err := fitCoefficients(x, y, terms)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Names: append([]string(nil), names...),
		terms: terms,
		Coef:  coef,
		RSS:   rss,
		GCV:   gcv(rss, n, len(terms), cfg.Penalty),
	}
	tss := stats.SumSquaredDev(y)
	if tss > 0 {
		m.TrainR2 = 1 - rss/tss
	}
	return m, nil
}

// candidateKnots returns quantile-spaced knot candidates per feature,
// excluding the extremes (a hinge at the min or max is degenerate).
func candidateKnots(x [][]float64, maxKnots int) [][]float64 {
	p := len(x[0])
	out := make([][]float64, p)
	col := make([]float64, len(x))
	for j := 0; j < p; j++ {
		for i, row := range x {
			col[i] = row[j]
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		uniq := sorted[:0]
		for i, v := range sorted {
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		if len(uniq) <= 2 {
			continue // constant or binary feature: no interior knots
		}
		interior := uniq[1 : len(uniq)-1]
		if len(interior) <= maxKnots {
			out[j] = append([]float64(nil), interior...)
			continue
		}
		ks := make([]float64, maxKnots)
		for k := 0; k < maxKnots; k++ {
			pos := float64(k) * float64(len(interior)-1) / float64(maxKnots-1)
			ks[k] = interior[int(pos)]
		}
		out[j] = ks
	}
	return out
}

// forwardPass greedily adds mirror hinge pairs minimizing RSS.
func forwardPass(x [][]float64, y []float64, knots [][]float64, cfg Config) []term {
	terms := []term{{}} // intercept
	_, bestRSS, err := fitCoefficients(x, y, terms)
	if err != nil {
		return terms
	}

	for len(terms)+1 < cfg.MaxTerms {
		type candidate struct {
			parent int
			h      hinge
		}
		var best candidate
		bestGain := 0.0
		found := false

		for pi, parent := range terms {
			if len(parent.factors) >= cfg.MaxDegree {
				continue
			}
			for j, ks := range knots {
				if parent.usesFeature(j) {
					continue
				}
				for _, k := range ks {
					trial := append(terms,
						extend(parent, hinge{feature: j, knot: k, pos: true}),
						extend(parent, hinge{feature: j, knot: k, pos: false}),
					)
					_, rss, err := fitCoefficients(x, y, trial)
					if err != nil {
						continue
					}
					if gain := bestRSS - rss; gain > bestGain {
						bestGain = gain
						best = candidate{parent: pi, h: hinge{feature: j, knot: k, pos: true}}
						found = true
					}
				}
			}
		}
		// Stop when the best addition explains under 0.01% of remaining RSS.
		if !found || bestGain < 1e-4*bestRSS {
			break
		}
		parent := terms[best.parent]
		terms = append(terms,
			extend(parent, best.h),
			extend(parent, hinge{feature: best.h.feature, knot: best.h.knot, pos: false}),
		)
		bestRSS -= bestGain
		if bestRSS <= 1e-12 {
			break
		}
	}
	return terms
}

func extend(parent term, h hinge) term {
	f := make([]hinge, len(parent.factors)+1)
	copy(f, parent.factors)
	f[len(parent.factors)] = h
	return term{factors: f}
}

// backwardPass prunes terms one at a time, keeping the subset with the best
// (lowest) GCV seen. The intercept is never removed.
func backwardPass(x [][]float64, y []float64, terms []term, cfg Config) []term {
	n := len(x)
	best := append([]term(nil), terms...)
	_, rss, err := fitCoefficients(x, y, terms)
	if err != nil {
		return best
	}
	bestGCV := gcv(rss, n, len(terms), cfg.Penalty)

	current := append([]term(nil), terms...)
	for len(current) > 1 {
		removeIdx := -1
		removeGCV := math.Inf(1)
		for i := 1; i < len(current); i++ { // skip intercept at 0
			trial := make([]term, 0, len(current)-1)
			trial = append(trial, current[:i]...)
			trial = append(trial, current[i+1:]...)
			_, rss, err := fitCoefficients(x, y, trial)
			if err != nil {
				continue
			}
			if g := gcv(rss, n, len(trial), cfg.Penalty); g < removeGCV {
				removeGCV = g
				removeIdx = i
			}
		}
		if removeIdx < 0 {
			break
		}
		current = append(current[:removeIdx], current[removeIdx+1:]...)
		if removeGCV < bestGCV {
			bestGCV = removeGCV
			best = append([]term(nil), current...)
		}
	}
	return best
}

// fitCoefficients solves least squares for the given basis and returns the
// coefficients and RSS.
func fitCoefficients(x [][]float64, y []float64, terms []term) ([]float64, float64, error) {
	n := len(x)
	design := mat.New(n, len(terms))
	for i, row := range x {
		for j, t := range terms {
			design.Set(i, j, t.eval(row))
		}
	}
	coef, err := mat.SolveRidge(design, y, 1e-10)
	if err != nil {
		return nil, 0, err
	}
	pred, err := design.MulVec(coef)
	if err != nil {
		return nil, 0, err
	}
	var rss float64
	for i := range y {
		d := y[i] - pred[i]
		rss += d * d
	}
	return coef, rss, nil
}

// gcv is Friedman's generalized cross-validation criterion.
func gcv(rss float64, n, nTerms int, penalty float64) float64 {
	c := float64(nTerms) + penalty*float64(nTerms-1)/2
	denom := 1 - c/float64(n)
	if denom <= 0 {
		return math.Inf(1)
	}
	return rss / float64(n) / (denom * denom)
}

// Predict returns the model response for the feature vector x.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.Names) {
		panic(fmt.Sprintf("mars: predicting with %d features, model has %d", len(x), len(m.Names)))
	}
	var s float64
	for i, t := range m.terms {
		s += m.Coef[i] * t.eval(x)
	}
	return s
}

// PredictAll returns predictions for each row of xs.
func (m *Model) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// NumTerms returns the number of basis terms including the intercept.
func (m *Model) NumTerms() int { return len(m.terms) }

// RSquared returns R² on the given data.
func (m *Model) RSquared(x [][]float64, y []float64) float64 {
	return stats.RSquared(m.PredictAll(x), y)
}

// String renders the model equation like earth's summary.
func (m *Model) String() string {
	var b strings.Builder
	b.WriteString("mars: y =")
	for i, t := range m.terms {
		if i > 0 {
			b.WriteString(" +")
		}
		fmt.Fprintf(&b, " %.4g", m.Coef[i])
		for _, h := range t.factors {
			name := m.Names[h.feature]
			if h.pos {
				fmt.Fprintf(&b, "·h(%s−%.4g)", name, h.knot)
			} else {
				fmt.Fprintf(&b, "·h(%.4g−%s)", h.knot, name)
			}
		}
	}
	fmt.Fprintf(&b, "  [terms=%d GCV=%.4g R²=%.3f]", len(m.terms), m.GCV, m.TrainR2)
	return b.String()
}
