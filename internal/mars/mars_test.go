package mars

import (
	"math"
	"testing"

	"blackforest/internal/stats"
)

func eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPiecewiseLinearRecovery(t *testing.T) {
	// y = 3·max(0, x−5) + 1: a single hinge, exactly MARS's basis.
	var x [][]float64
	var y []float64
	for i := 0; i <= 20; i++ {
		v := float64(i) / 2
		x = append(x, []float64{v})
		y = append(y, 3*math.Max(0, v-5)+1)
	}
	m, err := Fit(x, y, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainR2 < 0.999 {
		t.Fatalf("hinge recovery R² %v", m.TrainR2)
	}
	if !eq(m.Predict([]float64{2}), 1, 0.05) {
		t.Fatalf("flat region: %v", m.Predict([]float64{2}))
	}
	if !eq(m.Predict([]float64{9}), 13, 0.2) {
		t.Fatalf("sloped region: %v", m.Predict([]float64{9}))
	}
}

func TestPeakedCurve(t *testing.T) {
	// The shape that broke the GLM counter models: rise then fall.
	sizes := []float64{32, 64, 128, 256, 512, 1024, 2048}
	vals := []float64{0.65, 1.87, 4.89, 4.54, 1.71, 0.87, 0.44}
	var x [][]float64
	var y []float64
	for r := 0; r < 3; r++ {
		for i := range sizes {
			x = append(x, []float64{sizes[i]})
			y = append(y, vals[i])
		}
	}
	m, err := Fit(x, y, []string{"size"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainR2 < 0.99 {
		t.Fatalf("peaked curve R² %v", m.TrainR2)
	}
	// The peak must be reproduced, not averaged away.
	if m.Predict([]float64{128}) < 4 {
		t.Fatalf("peak flattened: %v", m.Predict([]float64{128}))
	}
}

func TestAdditiveTwoVariables(t *testing.T) {
	rng := stats.NewRNG(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 120; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		x = append(x, []float64{a, b})
		y = append(y, 2*math.Max(0, a-4)+5*math.Max(0, 6-b))
	}
	m, err := Fit(x, y, []string{"a", "b"}, Config{MaxDegree: 1, MaxKnots: 20})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainR2 < 0.98 {
		t.Fatalf("additive R² %v", m.TrainR2)
	}
}

func TestInteractionDegree2(t *testing.T) {
	rng := stats.NewRNG(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		a := rng.Float64() * 4
		b := rng.Float64() * 4
		x = append(x, []float64{a, b})
		y = append(y, math.Max(0, a-1)*math.Max(0, b-2))
	}
	additive, err := Fit(x, y, []string{"a", "b"}, Config{MaxDegree: 1, MaxKnots: 15})
	if err != nil {
		t.Fatal(err)
	}
	interactive, err := Fit(x, y, []string{"a", "b"}, Config{MaxDegree: 2, MaxKnots: 15})
	if err != nil {
		t.Fatal(err)
	}
	if interactive.TrainR2 < additive.TrainR2 {
		t.Fatalf("interactions did not help: %v vs %v", interactive.TrainR2, additive.TrainR2)
	}
	if interactive.TrainR2 < 0.9 {
		t.Fatalf("interaction fit poor: %v", interactive.TrainR2)
	}
}

func TestBackwardPrunesNoise(t *testing.T) {
	// Constant response: the model must collapse to the intercept.
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, 3)
	}
	m, err := Fit(x, y, []string{"x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTerms() != 1 {
		t.Fatalf("constant data kept %d terms", m.NumTerms())
	}
	if !eq(m.Predict([]float64{100}), 3, 1e-9) {
		t.Fatal("constant prediction wrong")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil, DefaultConfig()); err == nil {
		t.Fatal("empty set accepted")
	}
	x := [][]float64{{1}, {2}}
	if _, err := Fit(x, []float64{1}, []string{"a"}, DefaultConfig()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit(x, []float64{1, 2}, []string{"a", "b"}, DefaultConfig()); err == nil {
		t.Fatal("name mismatch accepted")
	}
}

func TestPredictPanicsOnWidth(t *testing.T) {
	m, err := Fit([][]float64{{1}, {2}, {3}, {4}}, []float64{1, 2, 3, 4}, []string{"a"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestStringRendersEquation(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i <= 20; i++ {
		v := float64(i)
		x = append(x, []float64{v})
		y = append(y, math.Max(0, v-10))
	}
	m, err := Fit(x, y, []string{"n"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s := m.String(); s == "" {
		t.Fatal("empty equation")
	}
}

func TestPredictAllMatchesPredict(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		v := float64(i)
		x = append(x, []float64{v})
		y = append(y, v*v)
	}
	m, err := Fit(x, y, []string{"v"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := m.PredictAll(x)
	for i := range x {
		if all[i] != m.Predict(x[i]) {
			t.Fatal("PredictAll diverges from Predict")
		}
	}
	if m.RSquared(x, y) != m.TrainR2 && math.Abs(m.RSquared(x, y)-m.TrainR2) > 1e-9 {
		t.Fatal("RSquared inconsistent with TrainR2 on training data")
	}
}
