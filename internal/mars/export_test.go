package mars

import (
	"encoding/json"
	"math"
	"testing"

	"blackforest/internal/stats"
)

func fitHingeData(t *testing.T) (*Model, [][]float64) {
	t.Helper()
	rng := stats.NewRNG(11)
	n := 150
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*4, rng.Float64()*4
		x[i] = []float64{a, b}
		y[i] = 1 + 2*math.Max(0, a-2) - 1.5*math.Max(0, 2-a) + 0.5*b + 0.01*rng.NormFloat64()
	}
	m, err := Fit(x, y, []string{"a", "b"}, Config{})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return m, x
}

// TestExportImportRoundTrip checks that the JSON round trip preserves every
// prediction bit for bit, including on probes outside the training range.
func TestExportImportRoundTrip(t *testing.T) {
	orig, x := fitHingeData(t)

	raw, err := json.Marshal(orig.Export())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var e ExportedModel
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	loaded, err := Import(&e)
	if err != nil {
		t.Fatalf("import: %v", err)
	}

	for i, row := range x {
		if loaded.Predict(row) != orig.Predict(row) {
			t.Fatalf("prediction differs at row %d", i)
		}
	}
	for a := -2.0; a <= 8.0; a += 0.5 {
		probe := []float64{a, 8 - a}
		if loaded.Predict(probe) != orig.Predict(probe) {
			t.Fatalf("prediction differs on probe %v", probe)
		}
	}
	if loaded.GCV != orig.GCV || loaded.RSS != orig.RSS || loaded.TrainR2 != orig.TrainR2 {
		t.Fatal("fit statistics differ after round trip")
	}
}

func TestImportRejectsCorruptModels(t *testing.T) {
	good, _ := fitHingeData(t)
	if len(good.terms) < 2 || len(good.terms[1].factors) == 0 {
		t.Fatal("fixture fit produced no hinge terms")
	}
	cases := map[string]func(e *ExportedModel){
		"nil":              nil,
		"no names":         func(e *ExportedModel) { e.Names = nil },
		"no terms":         func(e *ExportedModel) { e.Terms = nil; e.Coef = nil },
		"coef mismatch":    func(e *ExportedModel) { e.Coef = e.Coef[:len(e.Coef)-1] },
		"NaN coef":         func(e *ExportedModel) { e.Coef[0] = math.NaN() },
		"feature too big":  func(e *ExportedModel) { e.Terms[1].Factors[0].Feature = len(e.Names) },
		"feature negative": func(e *ExportedModel) { e.Terms[1].Factors[0].Feature = -1 },
		"NaN knot":         func(e *ExportedModel) { e.Terms[1].Factors[0].Knot = math.NaN() },
	}
	for name, corrupt := range cases {
		var e *ExportedModel
		if corrupt != nil {
			e = good.Export()
			corrupt(e)
		}
		if _, err := Import(e); err == nil {
			t.Errorf("%s: corrupted model accepted", name)
		}
	}
}

// TestExportIsDeepCopy ensures mutating the export cannot corrupt the model.
func TestExportIsDeepCopy(t *testing.T) {
	m, x := fitHingeData(t)
	before := m.Predict(x[0])
	e := m.Export()
	e.Coef[0] += 100
	if len(e.Terms) > 1 && len(e.Terms[1].Factors) > 0 {
		e.Terms[1].Factors[0].Knot += 100
	}
	if m.Predict(x[0]) != before {
		t.Fatal("mutating the export changed the model")
	}
}
