package mars

import (
	"errors"
	"fmt"
	"math"

	"blackforest/internal/jsonx"
)

// ExportedHinge is the serializable form of one hinge factor
// max(0, ±(x_feature − knot)).
type ExportedHinge struct {
	Feature int     `json:"f"`
	Knot    float64 `json:"k"`
	Pos     bool    `json:"pos,omitempty"`
}

// ExportedTerm is the serializable form of one basis term (a product of
// hinges; no factors means the intercept).
type ExportedTerm struct {
	Factors []ExportedHinge `json:"factors,omitempty"`
}

// ExportedModel is the serializable form of a fitted MARS model.
type ExportedModel struct {
	Names   []string       `json:"names"`
	Terms   []ExportedTerm `json:"terms"`
	Coef    []float64      `json:"coef"`
	GCV     jsonx.Float64  `json:"gcv"`
	RSS     jsonx.Float64  `json:"rss"`
	TrainR2 jsonx.Float64  `json:"train_r2"`
}

// Export returns the model in serializable form.
func (m *Model) Export() *ExportedModel {
	e := &ExportedModel{
		Names:   append([]string(nil), m.Names...),
		Terms:   make([]ExportedTerm, len(m.terms)),
		Coef:    append([]float64(nil), m.Coef...),
		GCV:     jsonx.Float64(m.GCV),
		RSS:     jsonx.Float64(m.RSS),
		TrainR2: jsonx.Float64(m.TrainR2),
	}
	for i, t := range m.terms {
		factors := make([]ExportedHinge, len(t.factors))
		for j, h := range t.factors {
			factors[j] = ExportedHinge{Feature: h.feature, Knot: h.knot, Pos: h.pos}
		}
		e.Terms[i] = ExportedTerm{Factors: factors}
	}
	return e
}

// Import reconstructs a model from its exported form, validating term
// structure so a corrupted file cannot cause out-of-range hinge evaluation.
func Import(e *ExportedModel) (*Model, error) {
	if e == nil {
		return nil, errors.New("mars: nil exported model")
	}
	if len(e.Names) == 0 {
		return nil, errors.New("mars: exported model has no predictors")
	}
	if len(e.Terms) == 0 {
		return nil, errors.New("mars: exported model has no basis terms")
	}
	if len(e.Coef) != len(e.Terms) {
		return nil, fmt.Errorf("mars: %d coefficients for %d terms", len(e.Coef), len(e.Terms))
	}
	m := &Model{
		Names:   append([]string(nil), e.Names...),
		terms:   make([]term, len(e.Terms)),
		Coef:    append([]float64(nil), e.Coef...),
		GCV:     float64(e.GCV),
		RSS:     float64(e.RSS),
		TrainR2: float64(e.TrainR2),
	}
	for i, c := range e.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("mars: coefficient %d is not finite", i)
		}
	}
	for i, et := range e.Terms {
		factors := make([]hinge, len(et.Factors))
		for j, eh := range et.Factors {
			if eh.Feature < 0 || eh.Feature >= len(e.Names) {
				return nil, fmt.Errorf("mars: term %d hinges on feature %d of %d", i, eh.Feature, len(e.Names))
			}
			if math.IsNaN(eh.Knot) || math.IsInf(eh.Knot, 0) {
				return nil, fmt.Errorf("mars: term %d has a non-finite knot", i)
			}
			factors[j] = hinge{feature: eh.Feature, knot: eh.Knot, pos: eh.Pos}
		}
		m.terms[i] = term{factors: factors}
	}
	return m, nil
}
