// Package stepwise implements forward-backward stepwise linear regression
// selected by BIC — the modeling approach of Stargazer (Jia, Shaw,
// Martonosi, ISPASS 2012), the closest tool in the paper's related work
// (§2). BlackForest's evaluation uses it as the baseline the random forest
// is compared against: the paper argues RF "usually outperforms the more
// traditional classification and regression algorithms", and the
// comparison benchmarks quantify that on this repo's data.
package stepwise

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"blackforest/internal/mat"
	"blackforest/internal/stats"
)

// Model is a fitted stepwise linear regression over a selected subset of
// predictors (standardized internally).
type Model struct {
	// Names are all candidate predictors, in input order.
	Names []string
	// Selected are the indices of the retained predictors.
	Selected []int
	// Coef holds the intercept followed by one coefficient per selected
	// predictor (in Selected order), on the standardized scale.
	Coef []float64
	// BIC is the final model's Bayesian information criterion.
	BIC float64
	// TrainR2 is R² on the training data.
	TrainR2 float64

	means, sds []float64
	yMean      float64
}

// Config controls the search.
type Config struct {
	// MaxTerms caps the number of selected predictors (0 = no cap).
	MaxTerms int
	// MinImprovement is the minimum BIC decrease to accept a step
	// (default 1e-6).
	MinImprovement float64
}

// Fit runs forward selection with backward elimination passes until BIC
// stops improving.
func Fit(x [][]float64, y []float64, names []string, cfg Config) (*Model, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("stepwise: empty training set")
	}
	p := len(x[0])
	if len(y) != n {
		return nil, fmt.Errorf("stepwise: %d rows but %d responses", n, len(y))
	}
	if len(names) != p {
		return nil, fmt.Errorf("stepwise: %d names for %d predictors", len(names), p)
	}
	if cfg.MinImprovement <= 0 {
		cfg.MinImprovement = 1e-6
	}
	if cfg.MaxTerms <= 0 || cfg.MaxTerms > p {
		cfg.MaxTerms = p
	}

	m := &Model{Names: append([]string(nil), names...)}

	// Standardize columns once.
	cols := make([][]float64, p)
	m.means = make([]float64, p)
	m.sds = make([]float64, p)
	raw := make([]float64, n)
	for j := 0; j < p; j++ {
		for i := range x {
			raw[i] = x[i][j]
		}
		z, mean, sd := stats.Standardize(raw)
		cols[j] = append([]float64(nil), z...)
		m.means[j], m.sds[j] = mean, sd
	}
	m.yMean = stats.Mean(y)

	selected := []int{}
	inModel := make([]bool, p)
	bestBIC := bicOf(rssFor(cols, y, selected), n, 0)

	for {
		improved := false
		// Forward step: try adding each absent predictor.
		if len(selected) < cfg.MaxTerms {
			bestAdd, bestAddBIC := -1, bestBIC
			for j := 0; j < p; j++ {
				if inModel[j] {
					continue
				}
				trial := append(append([]int{}, selected...), j)
				b := bicOf(rssFor(cols, y, trial), n, len(trial))
				if b < bestAddBIC-cfg.MinImprovement {
					bestAdd, bestAddBIC = j, b
				}
			}
			if bestAdd >= 0 {
				selected = append(selected, bestAdd)
				inModel[bestAdd] = true
				bestBIC = bestAddBIC
				improved = true
			}
		}
		// Backward step: try dropping each present predictor.
		bestDrop, bestDropBIC := -1, bestBIC
		for k := range selected {
			trial := make([]int, 0, len(selected)-1)
			trial = append(trial, selected[:k]...)
			trial = append(trial, selected[k+1:]...)
			b := bicOf(rssFor(cols, y, trial), n, len(trial))
			if b < bestDropBIC-cfg.MinImprovement {
				bestDrop, bestDropBIC = k, b
			}
		}
		if bestDrop >= 0 {
			inModel[selected[bestDrop]] = false
			selected = append(selected[:bestDrop], selected[bestDrop+1:]...)
			bestBIC = bestDropBIC
			improved = true
		}
		if !improved {
			break
		}
	}

	sort.Ints(selected)
	m.Selected = selected
	m.BIC = bestBIC

	coef, rss, err := fitOLS(cols, y, selected)
	if err != nil {
		return nil, err
	}
	m.Coef = coef
	tss := stats.SumSquaredDev(y)
	if tss > 0 {
		m.TrainR2 = 1 - rss/tss
	}
	return m, nil
}

// rssFor returns the residual sum of squares of the OLS fit on the subset
// (math.Inf on singular fits, which the search then avoids).
func rssFor(cols [][]float64, y []float64, subset []int) float64 {
	_, rss, err := fitOLS(cols, y, subset)
	if err != nil {
		return math.Inf(1)
	}
	return rss
}

// fitOLS solves the least-squares fit of y on the subset plus intercept.
func fitOLS(cols [][]float64, y []float64, subset []int) (coef []float64, rss float64, err error) {
	n := len(y)
	design := mat.New(n, len(subset)+1)
	for i := 0; i < n; i++ {
		design.Set(i, 0, 1)
		for k, j := range subset {
			design.Set(i, k+1, cols[j][i])
		}
	}
	coef, err = mat.SolveRidge(design, y, 1e-10)
	if err != nil {
		return nil, 0, err
	}
	pred, err := design.MulVec(coef)
	if err != nil {
		return nil, 0, err
	}
	for i := range y {
		d := y[i] - pred[i]
		rss += d * d
	}
	return coef, rss, nil
}

// bicOf is the gaussian-likelihood BIC: n·ln(RSS/n) + k·ln(n), with k
// counting the intercept and slope terms.
func bicOf(rss float64, n, terms int) float64 {
	if rss <= 0 {
		rss = 1e-12
	}
	return float64(n)*math.Log(rss/float64(n)) + float64(terms+1)*math.Log(float64(n))
}

// Predict returns the model response for one raw (unstandardized)
// observation in the full predictor order.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.Names) {
		panic(fmt.Sprintf("stepwise: predicting with %d features, model has %d", len(x), len(m.Names)))
	}
	out := m.Coef[0]
	for k, j := range m.Selected {
		out += m.Coef[k+1] * (x[j] - m.means[j]) / m.sds[j]
	}
	return out
}

// PredictAll returns predictions for each row of xs.
func (m *Model) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// SelectedNames returns the names of the retained predictors.
func (m *Model) SelectedNames() []string {
	out := make([]string, len(m.Selected))
	for k, j := range m.Selected {
		out[k] = m.Names[j]
	}
	return out
}

// RSquared returns R² on the given data.
func (m *Model) RSquared(x [][]float64, y []float64) float64 {
	return stats.RSquared(m.PredictAll(x), y)
}
