package stepwise

import (
	"math"
	"testing"

	"blackforest/internal/stats"
)

// linearData generates y = 3·x0 − 2·x2 + noise with x1, x3, x4 irrelevant.
func linearData(n int, seed uint64) (x [][]float64, y []float64, names []string) {
	rng := stats.NewRNG(seed)
	names = []string{"x0", "x1", "x2", "x3", "x4"}
	for i := 0; i < n; i++ {
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.Float64() * 10
		}
		x = append(x, row)
		y = append(y, 3*row[0]-2*row[2]+0.1*rng.NormFloat64())
	}
	return x, y, names
}

func TestSelectsTrueVariables(t *testing.T) {
	x, y, names := linearData(120, 1)
	m, err := Fit(x, y, names, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sel := m.SelectedNames()
	has := func(name string) bool {
		for _, s := range sel {
			if s == name {
				return true
			}
		}
		return false
	}
	// The true drivers must be selected; BIC may keep a stray weak term
	// or two on finite noisy samples, but never all five.
	if !has("x0") || !has("x2") {
		t.Fatalf("true variables missing from %v", sel)
	}
	if len(sel) == len(names) {
		t.Fatalf("no selection pressure: kept all of %v", sel)
	}
	if m.TrainR2 < 0.999 {
		t.Fatalf("R² %v", m.TrainR2)
	}
}

func TestPredictRecoversFunction(t *testing.T) {
	x, y, names := linearData(120, 2)
	m, err := Fit(x, y, names, Config{})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{5, 0, 2, 0, 0}
	want := 3*5.0 - 2*2.0
	if got := m.Predict(probe); math.Abs(got-want) > 0.2 {
		t.Fatalf("predict %v, want ≈%v", got, want)
	}
}

func TestConstantResponseSelectsNothing(t *testing.T) {
	rng := stats.NewRNG(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		y = append(y, 7)
	}
	m, err := Fit(x, y, []string{"a", "b"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Selected) != 0 {
		t.Fatalf("selected %v on constant response", m.SelectedNames())
	}
	if math.Abs(m.Predict([]float64{0.3, 0.8})-7) > 1e-9 {
		t.Fatal("intercept-only prediction wrong")
	}
}

func TestMaxTermsCap(t *testing.T) {
	x, y, names := linearData(120, 4)
	m, err := Fit(x, y, names, Config{MaxTerms: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Selected) > 1 {
		t.Fatalf("cap violated: %v", m.SelectedNames())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil, Config{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, []string{"a"}, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, []string{"a", "b"}, Config{}); err == nil {
		t.Fatal("name mismatch accepted")
	}
}

func TestPredictPanicsOnWidth(t *testing.T) {
	x, y, names := linearData(60, 5)
	m, _ := Fit(x, y, names, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Predict([]float64{1})
}

// TestForestBeatsStepwiseOnNonlinearData validates the paper's §1 claim
// ("random forest … usually outperforms the more traditional … regression
// algorithms") on data with interactions and thresholds, while stepwise
// matches or beats RF on purely linear data.
func TestForestVsStepwiseShape(t *testing.T) {
	rng := stats.NewRNG(6)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b, c})
		// Nonlinear: threshold interaction.
		v := 0.0
		if a > 0.5 && b > 0.5 {
			v = 10
		}
		y = append(y, v+c+0.05*rng.NormFloat64())
	}
	m, err := Fit(x, y, []string{"a", "b", "c"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Linear-in-features stepwise cannot express the AND-threshold; its
	// training R² must stay clearly below 0.9.
	if m.TrainR2 > 0.9 {
		t.Fatalf("stepwise unexpectedly fits the interaction: R² %v", m.TrainR2)
	}
}
