// Package buildinfo is the single source of version/build identity for
// every BlackForest binary. Version is a var (not a const) so release
// builds can stamp it with -ldflags "-X blackforest/internal/buildinfo.Version=...";
// VCS metadata comes from the Go toolchain's embedded build info, so even
// unstamped developer builds report the commit they were built from.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version is the release version, stamped at link time; "dev" otherwise.
var Version = "dev"

// Info describes one binary build.
type Info struct {
	// Name is the binary name (e.g. "bfserve").
	Name string
	// Version is the stamped release version or "dev".
	Version string
	// Revision is the VCS commit the binary was built from ("" when built
	// outside a checkout or without VCS stamping).
	Revision string
	// Dirty reports uncommitted changes in the build checkout.
	Dirty bool
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// Get assembles the build info for a binary.
func Get(name string) Info {
	info := Info{Name: name, Version: Version, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.modified":
				info.Dirty = s.Value == "true"
			}
		}
	}
	return info
}

// ShortRevision returns the commit truncated to 12 hex digits, with a
// "-dirty" suffix when the checkout had local changes; "unknown" when no
// VCS metadata was embedded.
func (i Info) ShortRevision() string {
	r := i.Revision
	if r == "" {
		return "unknown"
	}
	if len(r) > 12 {
		r = r[:12]
	}
	if i.Dirty {
		r += "-dirty"
	}
	return r
}

// String renders the one-line form printed by every CLI's -version flag.
func (i Info) String() string {
	return fmt.Sprintf("%s %s (commit %s, %s)", i.Name, i.Version, i.ShortRevision(), i.GoVersion)
}

// Print writes the -version line. Split from String only so CLIs share
// the exact output format through one call.
func (i Info) Print(w io.Writer) {
	fmt.Fprintln(w, i.String())
}
