package buildinfo

import (
	"strings"
	"testing"
)

func TestGetAndString(t *testing.T) {
	i := Get("bftest")
	if i.Name != "bftest" {
		t.Errorf("Name = %q", i.Name)
	}
	if i.Version != Version {
		t.Errorf("Version = %q, want %q", i.Version, Version)
	}
	if i.GoVersion == "" {
		t.Error("GoVersion is empty")
	}
	s := i.String()
	for _, want := range []string{"bftest", i.Version, i.GoVersion} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestShortRevision(t *testing.T) {
	cases := []struct {
		info Info
		want string
	}{
		{Info{}, "unknown"},
		{Info{Revision: "abc"}, "abc"},
		{Info{Revision: "0123456789abcdef0123"}, "0123456789ab"},
		{Info{Revision: "0123456789abcdef0123", Dirty: true}, "0123456789ab-dirty"},
	}
	for _, c := range cases {
		if got := c.info.ShortRevision(); got != c.want {
			t.Errorf("ShortRevision(%+v) = %q, want %q", c.info, got, c.want)
		}
	}
}
