package forest

import "testing"

// TestPredictAllParallelMatchesSequential pins the worker-pool contract: for
// every worker count (including the sequential path), PredictAll returns
// exactly what a plain Predict loop would.
func TestPredictAllParallelMatchesSequential(t *testing.T) {
	x, y, names := friedman1(200, 9)
	for _, workers := range []int{1, 2, 3, 7, 32} {
		f, err := Fit(x, y, names, Config{NTrees: 50, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(x))
		for i, row := range x {
			want[i] = f.Predict(row)
		}
		got := f.PredictAll(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d: PredictAll %v != Predict %v", workers, i, got[i], want[i])
			}
		}
		// Tiny batches take the sequential path; they must agree too.
		small := f.PredictAll(x[:2])
		for i := range small {
			if small[i] != want[i] {
				t.Fatalf("workers=%d: small-batch row %d differs", workers, i)
			}
		}
	}
}

// TestLoadedForestPredictAllParallel: a forest loaded from a bundle has no
// fit-time worker config (Workers=0 → all CPUs); the parallel path must
// still match sequential prediction bit for bit.
func TestLoadedForestPredictAllParallel(t *testing.T) {
	x, y, names := friedman1(150, 10)
	f, err := Fit(x, y, names, Config{NTrees: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Import(f.Export())
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictAll(x)
	got := loaded.PredictAll(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: loaded forest predicts %v, fitted %v", i, got[i], want[i])
		}
	}
}

// TestPartialDependenceWorkerIdentity pins the grid-point worker pool: the
// partial-dependence curves (and CI bands) are bit-identical for every
// worker count, including the sequential path.
func TestPartialDependenceWorkerIdentity(t *testing.T) {
	x, y, names := friedman1(120, 6)
	type curves struct {
		grid, resp     []float64
		ciGrid, ciResp []float64
		ciLo, ciHi     []float64
	}
	var want *curves
	for _, workers := range []int{1, 2, 5, 16} {
		f, err := Fit(x, y, names, Config{NTrees: 40, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		grid, resp, err := f.PartialDependence(names[0], 17)
		if err != nil {
			t.Fatal(err)
		}
		cg, cr, lo, hi, err := f.PartialDependenceCI(names[0], 17, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		got := &curves{grid, resp, cg, cr, lo, hi}
		if want == nil {
			want = got
			continue
		}
		for _, pair := range [][2][]float64{
			{want.grid, got.grid}, {want.resp, got.resp},
			{want.ciGrid, got.ciGrid}, {want.ciResp, got.ciResp},
			{want.ciLo, got.ciLo}, {want.ciHi, got.ciHi},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("workers=%d: length mismatch", workers)
			}
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("workers=%d: point %d: %v != %v", workers, i, pair[1][i], pair[0][i])
				}
			}
		}
	}
}
