package forest

import "testing"

// TestPredictAllParallelMatchesSequential pins the worker-pool contract: for
// every worker count (including the sequential path), PredictAll returns
// exactly what a plain Predict loop would.
func TestPredictAllParallelMatchesSequential(t *testing.T) {
	x, y, names := friedman1(200, 9)
	for _, workers := range []int{1, 2, 3, 7, 32} {
		f, err := Fit(x, y, names, Config{NTrees: 50, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(x))
		for i, row := range x {
			want[i] = f.Predict(row)
		}
		got := f.PredictAll(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d: PredictAll %v != Predict %v", workers, i, got[i], want[i])
			}
		}
		// Tiny batches take the sequential path; they must agree too.
		small := f.PredictAll(x[:2])
		for i := range small {
			if small[i] != want[i] {
				t.Fatalf("workers=%d: small-batch row %d differs", workers, i)
			}
		}
	}
}

// TestLoadedForestPredictAllParallel: a forest loaded from a bundle has no
// fit-time worker config (Workers=0 → all CPUs); the parallel path must
// still match sequential prediction bit for bit.
func TestLoadedForestPredictAllParallel(t *testing.T) {
	x, y, names := friedman1(150, 10)
	f, err := Fit(x, y, names, Config{NTrees: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Import(f.Export())
	if err != nil {
		t.Fatal(err)
	}
	want := f.PredictAll(x)
	got := loaded.PredictAll(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: loaded forest predicts %v, fitted %v", i, got[i], want[i])
		}
	}
}
