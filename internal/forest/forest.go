// Package forest implements random forest regression (Breiman, 2001) as
// used by BlackForest: bootstrap-bagged CART trees with per-node feature
// subsetting, out-of-bag (OOB) error estimation, permutation variable
// importance (%IncMSE), node-purity importance (IncNodePurity), and partial
// dependence profiles.
//
// The defaults mirror R's randomForest in regression mode: 500 trees,
// mtry = max(p/3, 1), node size 5.
package forest

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"blackforest/internal/rtree"
	"blackforest/internal/stats"
)

// Config controls forest training.
type Config struct {
	// NTrees is the number of trees grown (default 500).
	NTrees int
	// MTry is the number of predictors tried at each split
	// (default max(p/3, 1), the regression-mode convention).
	MTry int
	// MinNodeSize is the minimal splittable node size (default 5).
	MinNodeSize int
	// MaxDepth caps tree depth; 0 means unlimited.
	MaxDepth int
	// Seed seeds the deterministic RNG driving bootstrapping and feature
	// subsetting. Two fits with the same seed and data are identical.
	Seed uint64
	// Workers is the number of goroutines used to grow trees
	// (default runtime.NumCPU()).
	Workers int
}

// DefaultConfig returns the paper's forest configuration.
func DefaultConfig() Config {
	return Config{NTrees: 500, MinNodeSize: 5}
}

// Forest is a fitted random forest regression model.
//
// Prediction runs on a flat compiled engine: after Fit (or Import) all trees
// are compiled into one contiguous node array (rtree.FlatForest) and
// Predict/PredictAll route through it. The pointer-linked trees are retained
// as the frozen reference implementation (PredictPointer), the differential
// oracle the flat engine is tested against.
type Forest struct {
	trees    []*rtree.Tree
	flat     *rtree.FlatForest
	oobIdx   [][]int // per-tree out-of-bag sample indices
	names    []string
	x        [][]float64 // retained training design matrix
	y        []float64   // retained training response
	cfg      Config
	oobPred  []float64 // OOB-averaged prediction per training sample
	oobMSE   float64
	varExpl  float64
	rawImp   []float64 // mean OOB MSE increase per feature
	impSE    []float64 // standard error of the per-tree increases
	purity   []float64 // total SSE decrease per feature
	minResp  float64
	maxResp  float64
	nSamples int
}

// Fit trains a random forest on design matrix x (rows are observations),
// response y, and predictor names (one per column of x).
func Fit(x [][]float64, y []float64, names []string, cfg Config) (*Forest, error) {
	if len(x) == 0 {
		return nil, errors.New("forest: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("forest: %d rows but %d responses", len(x), len(y))
	}
	p := len(x[0])
	if len(names) != p {
		return nil, fmt.Errorf("forest: %d names for %d predictors", len(names), p)
	}
	if cfg.NTrees <= 0 {
		cfg.NTrees = 500
	}
	if cfg.MTry <= 0 {
		cfg.MTry = p / 3
		if cfg.MTry < 1 {
			cfg.MTry = 1
		}
	}
	if cfg.MTry > p {
		return nil, fmt.Errorf("forest: mtry %d exceeds predictor count %d", cfg.MTry, p)
	}
	if cfg.MinNodeSize <= 0 {
		cfg.MinNodeSize = 5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}

	// Reject non-finite inputs up front: a NaN/Inf cell (e.g. a buggy
	// imputation of a degraded collection) would otherwise poison split
	// scores silently and fit a garbage tree.
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("forest: row %d has %d predictors, want %d", i, len(row), p)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("forest: non-finite predictor %s in row %d", names[j], i)
			}
		}
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return nil, fmt.Errorf("forest: non-finite response in row %d", i)
		}
	}

	// Copy the training data: the forest retains it for OOB error,
	// permutation importance, and partial dependence, all of which would
	// silently corrupt if the caller mutated its slices after Fit.
	f := &Forest{
		trees:    make([]*rtree.Tree, cfg.NTrees),
		oobIdx:   make([][]int, cfg.NTrees),
		names:    append([]string(nil), names...),
		x:        copyRows(x),
		y:        append([]float64(nil), y...),
		cfg:      cfg,
		nSamples: len(x),
	}
	f.minResp, f.maxResp = stats.Min(f.y), stats.Max(f.y)

	// Pre-derive one RNG seed per tree from the master seed so tree
	// construction is order-independent and parallelizable.
	master := stats.NewRNG(cfg.Seed)
	seeds := make([]uint64, cfg.NTrees)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	// Preprocess the design matrix once (column-major copy + per-feature
	// sorted orderings); every tree shares it, so growing the forest does
	// no per-tree sorting on presortable features.
	m, err := rtree.NewMatrix(f.x)
	if err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.NTrees)
	sem := make(chan struct{}, cfg.Workers)
	for t := 0; t < cfg.NTrees; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := stats.NewRNG(seeds[t])
			inBag, oob := rng.Bootstrap(f.nSamples)
			tree, err := rtree.FitMatrix(m, f.y, inBag, rtree.Params{
				MinNodeSize: cfg.MinNodeSize,
				MaxDepth:    cfg.MaxDepth,
				MTry:        cfg.MTry,
				RNG:         rng,
			})
			if err != nil {
				errs[t] = err
				return
			}
			f.trees[t] = tree
			f.oobIdx[t] = oob
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Compile the serving engine: one flat node array over all trees.
	f.flat, err = rtree.CompileFlat(f.trees)
	if err != nil {
		return nil, err
	}

	f.computeOOB()
	f.computeImportance(seeds)
	return f, nil
}

// copyRows deep-copies a design matrix, rows included.
func copyRows(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// copyRowsFlat deep-copies a design matrix into one flat backing array.
func copyRowsFlat(x [][]float64) [][]float64 {
	if len(x) == 0 {
		return nil
	}
	p := len(x[0])
	flat := make([]float64, len(x)*p)
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = flat[i*p : (i+1)*p]
		copy(out[i], row)
	}
	return out
}

// forEachGridPoint evaluates fn for every partial-dependence grid point,
// spreading points over Config.Workers goroutines. Each worker receives its
// own mutable copy of the training rows plus a per-tree scratch slice, and
// every grid point writes only its own output index, so results are
// bit-identical for any worker count.
func (f *Forest) forEachGridPoint(grid []float64, fn func(g int, v float64, rows [][]float64, perTree []float64)) {
	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(grid) {
		workers = len(grid)
	}
	if workers <= 1 {
		rows := copyRowsFlat(f.x)
		perTree := make([]float64, len(f.trees))
		for g, v := range grid {
			fn(g, v, rows, perTree)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows := copyRowsFlat(f.x)
			perTree := make([]float64, len(f.trees))
			for {
				g := int(next.Add(1)) - 1
				if g >= len(grid) {
					return
				}
				fn(g, grid[g], rows, perTree)
			}
		}()
	}
	wg.Wait()
}

// computeOOB fills the OOB predictions and the derived error statistics.
func (f *Forest) computeOOB() {
	sum := make([]float64, f.nSamples)
	cnt := make([]int, f.nSamples)
	for t, tree := range f.trees {
		for _, i := range f.oobIdx[t] {
			sum[i] += tree.Predict(f.x[i])
			cnt[i]++
		}
	}
	f.oobPred = make([]float64, f.nSamples)
	var sse float64
	var used int
	for i := range sum {
		if cnt[i] == 0 {
			f.oobPred[i] = math.NaN()
			continue
		}
		f.oobPred[i] = sum[i] / float64(cnt[i])
		d := f.oobPred[i] - f.y[i]
		sse += d * d
		used++
	}
	if used > 0 {
		f.oobMSE = sse / float64(used)
	}
	if v := stats.Variance(f.y); v > 0 {
		// randomForest reports %Var explained as 1 − MSE_OOB/Var(y).
		f.varExpl = 1 - f.oobMSE/v
	}
}

// computeImportance computes permutation importance tree by tree, exactly
// as described in §4.1.1 of the paper: for each tree, the OOB MSE is
// compared with the OOB MSE after permuting one predictor's values.
func (f *Forest) computeImportance(seeds []uint64) {
	p := len(f.names)
	sumInc := make([]float64, p)
	sumIncSq := make([]float64, p)
	trees := 0

	// Per-tree increases are computed in parallel but reduced sequentially
	// in tree order: float addition is not associative, so summing in
	// goroutine-completion order would make the low bits of the importance
	// scores (and with them near-tied rankings) run-dependent.
	incs := make([][]float64, len(f.trees))
	var wg sync.WaitGroup
	sem := make(chan struct{}, f.cfg.Workers)
	for t := range f.trees {
		if len(f.oobIdx[t]) == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			incs[t] = f.treeImportance(t, stats.NewRNG(seeds[t]^0x5bf03635))
		}(t)
	}
	wg.Wait()
	for _, inc := range incs {
		if inc == nil {
			continue
		}
		for j := range inc {
			sumInc[j] += inc[j]
			sumIncSq[j] += inc[j] * inc[j]
		}
		trees++
	}

	f.rawImp = make([]float64, p)
	f.impSE = make([]float64, p)
	f.purity = make([]float64, p)
	if trees == 0 {
		return
	}
	n := float64(trees)
	for j := 0; j < p; j++ {
		mean := sumInc[j] / n
		f.rawImp[j] = mean
		varJ := sumIncSq[j]/n - mean*mean
		if varJ < 0 {
			varJ = 0
		}
		f.impSE[j] = math.Sqrt(varJ / n)
	}
	for _, tree := range f.trees {
		for j, g := range tree.PurityGain() {
			f.purity[j] += g
		}
	}
}

// treeImportance returns, for tree t, the increase in OOB MSE caused by
// permuting each predictor in turn.
func (f *Forest) treeImportance(t int, rng *stats.RNG) []float64 {
	oob := f.oobIdx[t]
	tree := f.trees[t]
	p := len(f.names)

	var baseSSE float64
	for _, i := range oob {
		d := tree.Predict(f.x[i]) - f.y[i]
		baseSSE += d * d
	}
	baseMSE := baseSSE / float64(len(oob))

	// Copy the OOB rows once; for each predictor, overwrite just that
	// column with permuted values and restore it afterwards. The buffer
	// passed to Predict holds exactly the values the seed implementation
	// assembled per row (original row with column j replaced), but the
	// O(p²·n) per-feature row copies collapse to O(p·n) total.
	inc := make([]float64, p)
	perm := make([]int, len(oob))
	flat := make([]float64, len(oob)*p)
	rows := make([][]float64, len(oob))
	for k, i := range oob {
		rows[k] = flat[k*p : (k+1)*p]
		copy(rows[k], f.x[i])
	}
	used := tree.PurityGain()
	for j := 0; j < p; j++ {
		copy(perm, oob)
		rng.ShuffleInts(perm)
		if used[j] == 0 {
			// The tree never splits on j, so permuting it cannot change a
			// single prediction: the full computation would reproduce
			// baseSSE bit for bit and yield exactly 0. The shuffle above
			// still runs to keep the RNG stream aligned.
			continue
		}
		var sse float64
		for k, i := range oob {
			save := rows[k][j]
			rows[k][j] = f.x[perm[k]][j]
			d := tree.Predict(rows[k]) - f.y[i]
			rows[k][j] = save
			sse += d * d
		}
		inc[j] = sse/float64(len(oob)) - baseMSE
	}
	return inc
}

// Predict returns the forest prediction (mean of tree predictions) for x.
// It routes through the flat compiled engine and, like Tree.Predict, panics
// on a feature-count mismatch; serving paths should use PredictVector, which
// returns an error instead.
func (f *Forest) Predict(x []float64) float64 {
	if f.flat != nil {
		v, err := f.flat.Predict(x)
		if err != nil {
			panic(err.Error())
		}
		return v
	}
	return f.PredictPointer(x)
}

// PredictVector is Predict with malformed input reported as an error rather
// than a panic — the serving-path entry point.
func (f *Forest) PredictVector(x []float64) (float64, error) {
	if f.flat != nil {
		return f.flat.Predict(x)
	}
	if len(x) != len(f.names) {
		return 0, fmt.Errorf("forest: predicting with %d features, forest has %d", len(x), len(f.names))
	}
	return f.PredictPointer(x), nil
}

// PredictPointer is the frozen pointer-walking reference implementation:
// the per-tree node-by-node walk the flat engine is differentially tested
// against (bit-identical output). It is unavailable on a forest loaded from
// a flat-only quantized bundle, which carries no per-tree nodes.
func (f *Forest) PredictPointer(x []float64) float64 {
	if len(f.trees) == 0 {
		panic("forest: pointer engine unavailable (loaded from a flat-only bundle)")
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// Engine names the active prediction engine: "flat" for the compiled
// contiguous-array engine, with the bundle value encoding appended (e.g.
// "flat(dict16)") when the forest was decoded from a quantized flat-only
// bundle, or "pointer" if no flat engine is compiled.
func (f *Forest) Engine() string {
	if f.flat == nil {
		return "pointer"
	}
	if enc := f.flat.Encoding(); enc != "" && len(f.trees) == 0 {
		return "flat(" + enc + ")"
	}
	return "flat"
}

// predictAllSeqThreshold is the batch size below which PredictAll stays
// sequential: goroutine startup costs more than a handful of tree walks.
const predictAllSeqThreshold = 4

// predictBlockRows is the row-block width of the tree-major batch mode:
// each worker walks every tree across one block of this many rows, keeping
// the current tree's node array cache-hot for the whole block.
const predictBlockRows = 256

// PredictAll returns predictions for each row of xs. Batches run tree-major
// on the flat engine (every tree visits a whole row block before the next
// tree starts) and large batches are spread block-wise over a worker pool
// (Config.Workers goroutines, or all CPUs for loaded models); per row, tree
// contributions accumulate in tree order, so the result is bit-identical to
// calling Predict per row, for every worker count and block size.
func (f *Forest) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	if f.flat == nil {
		f.predictAllPointer(xs, out)
		return out
	}
	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	blocks := (len(xs) + predictBlockRows - 1) / predictBlockRows
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 || len(xs) < predictAllSeqThreshold {
		if err := f.flat.PredictBatch(xs, out); err != nil {
			panic(err.Error())
		}
		return out
	}
	errs := make([]error, blocks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				lo := b * predictBlockRows
				hi := lo + predictBlockRows
				if hi > len(xs) {
					hi = len(xs)
				}
				errs[b] = f.flat.PredictBatch(xs[lo:hi], out[lo:hi])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Preserve the historical panic-on-malformed-row semantics, but
			// panic in the caller's goroutine, never inside a worker.
			panic(err.Error())
		}
	}
	return out
}

// predictAllPointer is the frozen row-major batch path over the pointer
// walker, kept for forests without a compiled flat engine.
func (f *Forest) predictAllPointer(xs [][]float64, out []float64) {
	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	if workers <= 1 || len(xs) < predictAllSeqThreshold {
		for i, x := range xs {
			out[i] = f.PredictPointer(x)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(xs) {
					return
				}
				out[i] = f.PredictPointer(xs[i])
			}
		}()
	}
	wg.Wait()
}

// OOBMSE returns the out-of-bag mean squared error.
func (f *Forest) OOBMSE() float64 { return f.oobMSE }

// VarExplained returns the OOB pseudo-R² (1 − MSE_OOB / Var(y)),
// matching R randomForest's "% Var explained" (as a fraction).
func (f *Forest) VarExplained() float64 { return f.varExpl }

// OOBPredictions returns per-sample OOB predictions (NaN where a sample was
// in-bag for every tree). The slice is a copy.
func (f *Forest) OOBPredictions() []float64 {
	out := make([]float64, len(f.oobPred))
	copy(out, f.oobPred)
	return out
}

// NumTrees returns the number of trees in the forest.
func (f *Forest) NumTrees() int {
	if len(f.trees) > 0 {
		return len(f.trees)
	}
	if f.flat != nil {
		return f.flat.NumTrees()
	}
	return 0
}

// Names returns the predictor names.
func (f *Forest) Names() []string { return append([]string(nil), f.names...) }

// ResponseRange returns [min, max] of the training response.
func (f *Forest) ResponseRange() (lo, hi float64) { return f.minResp, f.maxResp }

// Importance is one predictor's importance record.
type Importance struct {
	Name string
	// IncMSE is the mean increase in OOB MSE when the predictor is
	// permuted (raw, unscaled).
	IncMSE float64
	// PctIncMSE is IncMSE divided by its standard error across trees —
	// R's %IncMSE with scale=TRUE. Zero when the SE is zero.
	PctIncMSE float64
	// IncNodePurity is the total decrease in node SSE from splits on the
	// predictor, summed over all trees.
	IncNodePurity float64
}

// VariableImportance returns per-predictor importance sorted by descending
// %IncMSE (ties broken by IncNodePurity, then name for determinism).
func (f *Forest) VariableImportance() []Importance {
	out := make([]Importance, len(f.names))
	for j, name := range f.names {
		imp := Importance{Name: name, IncMSE: f.rawImp[j], IncNodePurity: f.purity[j]}
		if f.impSE[j] > 0 {
			imp.PctIncMSE = f.rawImp[j] / f.impSE[j]
		}
		out[j] = imp
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].PctIncMSE != out[b].PctIncMSE {
			return out[a].PctIncMSE > out[b].PctIncMSE
		}
		if out[a].IncNodePurity != out[b].IncNodePurity {
			return out[a].IncNodePurity > out[b].IncNodePurity
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// TopPredictors returns the names of the k most important predictors.
func (f *Forest) TopPredictors(k int) []string {
	imp := f.VariableImportance()
	if k > len(imp) {
		k = len(imp)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = imp[i].Name
	}
	return out
}

// PartialDependenceCI extends PartialDependence with pointwise confidence
// bands (the paper's §7 suggestion: "Integrating confidence intervals into
// the partial dependence plots would help interpretation"): at each grid
// point, the per-tree partial-dependence values are summarized by their
// (1−level)/2 and (1+level)/2 quantiles — the spread of the ensemble's
// member opinions.
func (f *Forest) PartialDependenceCI(name string, gridSize int, level float64) (grid, response, lo, hi []float64, err error) {
	if f.nSamples == 0 {
		return nil, nil, nil, nil, errors.New("forest: partial dependence needs the training data (unavailable on a loaded model)")
	}
	if level <= 0 || level >= 1 {
		level = 0.9
	}
	j := -1
	for k, n := range f.names {
		if n == name {
			j = k
			break
		}
	}
	if j < 0 {
		return nil, nil, nil, nil, fmt.Errorf("forest: no predictor %q", name)
	}
	if gridSize < 2 {
		gridSize = 2
	}
	col := make([]float64, f.nSamples)
	for i, row := range f.x {
		col[i] = row[j]
	}
	grid = stats.Linspace(stats.Min(col), stats.Max(col), gridSize)
	response = make([]float64, gridSize)
	lo = make([]float64, gridSize)
	hi = make([]float64, gridSize)

	f.forEachGridPoint(grid, func(g int, v float64, rows [][]float64, perTree []float64) {
		for i := range rows {
			rows[i][j] = v
		}
		for t, tree := range f.trees {
			var s float64
			for _, row := range rows {
				s += tree.Predict(row)
			}
			perTree[t] = s / float64(f.nSamples)
		}
		response[g] = stats.Mean(perTree)
		lo[g] = stats.Quantile(perTree, (1-level)/2)
		hi[g] = stats.Quantile(perTree, (1+level)/2)
	})
	return grid, response, lo, hi, nil
}

// PartialDependence returns the partial dependence profile of the named
// predictor: grid points spanning its observed range and, for each point v,
// the forest prediction averaged over the training set with that predictor
// forced to v (Friedman's partial dependence function).
func (f *Forest) PartialDependence(name string, gridSize int) (grid, response []float64, err error) {
	if f.nSamples == 0 {
		return nil, nil, errors.New("forest: partial dependence needs the training data (unavailable on a loaded model)")
	}
	j := -1
	for k, n := range f.names {
		if n == name {
			j = k
			break
		}
	}
	if j < 0 {
		return nil, nil, fmt.Errorf("forest: no predictor %q", name)
	}
	if gridSize < 2 {
		gridSize = 2
	}
	col := make([]float64, f.nSamples)
	for i, row := range f.x {
		col[i] = row[j]
	}
	lo, hi := stats.Min(col), stats.Max(col)
	grid = stats.Linspace(lo, hi, gridSize)
	response = make([]float64, gridSize)
	f.forEachGridPoint(grid, func(g int, v float64, rows [][]float64, _ []float64) {
		var s float64
		for i := range rows {
			rows[i][j] = v
			s += f.Predict(rows[i])
		}
		response[g] = s / float64(f.nSamples)
	})
	return grid, response, nil
}
