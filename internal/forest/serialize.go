package forest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"blackforest/internal/rtree"
)

// savedForest is the on-disk form of a fitted forest: the trees and the
// training-derived statistics, but not the training data itself. A loaded
// forest predicts and reports importance; partial dependence (which needs
// the training distribution) is unavailable and returns an error.
type savedForest struct {
	Version  int                   `json:"version"`
	Names    []string              `json:"names"`
	Trees    []*rtree.ExportedTree `json:"trees"`
	OOBMSE   float64               `json:"oob_mse"`
	VarExpl  float64               `json:"var_explained"`
	RawImp   []float64             `json:"importance"`
	ImpSE    []float64             `json:"importance_se"`
	Purity   []float64             `json:"purity"`
	MinResp  float64               `json:"min_response"`
	MaxResp  float64               `json:"max_response"`
	NSamples int                   `json:"training_samples"`
}

const saveVersion = 1

// Save writes the forest as JSON.
func (f *Forest) Save(w io.Writer) error {
	s := savedForest{
		Version:  saveVersion,
		Names:    f.names,
		Trees:    make([]*rtree.ExportedTree, len(f.trees)),
		OOBMSE:   f.oobMSE,
		VarExpl:  f.varExpl,
		RawImp:   f.rawImp,
		ImpSE:    f.impSE,
		Purity:   f.purity,
		MinResp:  f.minResp,
		MaxResp:  f.maxResp,
		NSamples: f.nSamples,
	}
	for i, t := range f.trees {
		s.Trees[i] = t.Export()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&s)
}

// Load reads a forest saved with Save. The result predicts and reports
// importance exactly as the original; methods needing the training data
// (PartialDependence, OOBPredictions) report that it is absent.
func Load(r io.Reader) (*Forest, error) {
	var s savedForest
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("forest: decoding saved model: %w", err)
	}
	if s.Version != saveVersion {
		return nil, fmt.Errorf("forest: unsupported model version %d", s.Version)
	}
	if len(s.Trees) == 0 {
		return nil, errors.New("forest: saved model has no trees")
	}
	p := len(s.Names)
	if p == 0 || len(s.RawImp) != p || len(s.ImpSE) != p || len(s.Purity) != p {
		return nil, errors.New("forest: saved model has inconsistent predictor metadata")
	}
	f := &Forest{
		trees:    make([]*rtree.Tree, len(s.Trees)),
		names:    s.Names,
		oobMSE:   s.OOBMSE,
		varExpl:  s.VarExpl,
		rawImp:   s.RawImp,
		impSE:    s.ImpSE,
		purity:   s.Purity,
		minResp:  s.MinResp,
		maxResp:  s.MaxResp,
		nSamples: 0, // training data not persisted
	}
	for i, et := range s.Trees {
		t, err := rtree.Import(et)
		if err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", i, err)
		}
		if t.NumFeatures() != p {
			return nil, fmt.Errorf("forest: tree %d has %d features, model has %d", i, t.NumFeatures(), p)
		}
		f.trees[i] = t
	}
	return f, nil
}
