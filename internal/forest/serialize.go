package forest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"blackforest/internal/rtree"
)

// Exported is the serializable form of a fitted forest: the trees and the
// training-derived statistics, but not the training data itself. A loaded
// forest predicts and reports importance; partial dependence (which needs
// the training distribution) is unavailable and returns an error.
//
// Either Trees or Flat (or both) must be present. Export emits the per-node
// trees; ExportQuantized emits only the compact flat encoding, which loads
// faster and smaller but predicts bit-identically. When both are present,
// Import verifies they describe the same forest.
type Exported struct {
	Version  int                       `json:"version"`
	Names    []string                  `json:"names"`
	Trees    []*rtree.ExportedTree     `json:"trees,omitempty"`
	Flat     *rtree.ExportedFlatForest `json:"flat,omitempty"`
	OOBMSE   float64                   `json:"oob_mse"`
	VarExpl  float64                   `json:"var_explained"`
	RawImp   []float64                 `json:"importance"`
	ImpSE    []float64                 `json:"importance_se"`
	Purity   []float64                 `json:"purity"`
	MinResp  float64                   `json:"min_response"`
	MaxResp  float64                   `json:"max_response"`
	NSamples int                       `json:"training_samples"`
}

const saveVersion = 1

// exportShell fills every Exported field except the forest encoding itself.
func (f *Forest) exportShell() *Exported {
	return &Exported{
		Version:  saveVersion,
		Names:    append([]string(nil), f.names...),
		OOBMSE:   f.oobMSE,
		VarExpl:  f.varExpl,
		RawImp:   append([]float64(nil), f.rawImp...),
		ImpSE:    append([]float64(nil), f.impSE...),
		Purity:   append([]float64(nil), f.purity...),
		MinResp:  f.minResp,
		MaxResp:  f.maxResp,
		NSamples: f.nSamples,
	}
}

// Export returns the forest in serializable form (per-node trees).
func (f *Forest) Export() *Exported {
	e := f.exportShell()
	e.Trees = make([]*rtree.ExportedTree, len(f.trees))
	for i, t := range f.trees {
		e.Trees[i] = t.Export()
	}
	return e
}

// ExportQuantized returns the forest in its compact serializable form: the
// flat compiled node array with thresholds and leaf values under the
// smallest lossless encoding, and no per-node trees. A forest imported from
// it predicts bit-identically but cannot serve as the pointer-walker oracle.
func (f *Forest) ExportQuantized() (*Exported, error) {
	if f.flat == nil {
		return nil, errors.New("forest: no flat engine compiled")
	}
	e := f.exportShell()
	e.Flat = f.flat.Export()
	return e, nil
}

// Import reconstructs a forest from its exported form with the same
// validation as Load. The result predicts and reports importance exactly as
// the original; methods needing the training data (PartialDependence,
// OOBPredictions) report that it is absent.
func Import(e *Exported) (*Forest, error) {
	if e == nil {
		return nil, errors.New("forest: nil exported model")
	}
	if e.Version != saveVersion {
		return nil, fmt.Errorf("forest: unsupported model version %d", e.Version)
	}
	if len(e.Trees) == 0 && e.Flat == nil {
		return nil, errors.New("forest: saved model has no trees")
	}
	p := len(e.Names)
	if p == 0 || len(e.RawImp) != p || len(e.ImpSE) != p || len(e.Purity) != p {
		return nil, errors.New("forest: saved model has inconsistent predictor metadata")
	}
	for j := 0; j < p; j++ {
		if math.IsNaN(e.RawImp[j]) || math.IsNaN(e.ImpSE[j]) || math.IsNaN(e.Purity[j]) {
			return nil, fmt.Errorf("forest: importance of predictor %d is NaN", j)
		}
	}
	f := &Forest{
		trees:    make([]*rtree.Tree, len(e.Trees)),
		names:    append([]string(nil), e.Names...),
		oobMSE:   e.OOBMSE,
		varExpl:  e.VarExpl,
		rawImp:   append([]float64(nil), e.RawImp...),
		impSE:    append([]float64(nil), e.ImpSE...),
		purity:   append([]float64(nil), e.Purity...),
		minResp:  e.MinResp,
		maxResp:  e.MaxResp,
		nSamples: 0, // training data not persisted
	}
	for i, et := range e.Trees {
		t, err := rtree.Import(et)
		if err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", i, err)
		}
		if t.NumFeatures() != p {
			return nil, fmt.Errorf("forest: tree %d has %d features, model has %d", i, t.NumFeatures(), p)
		}
		f.trees[i] = t
	}
	if len(e.Trees) > 0 {
		// The trees are authoritative: compile the serving engine from them,
		// and if the bundle also carries a flat encoding, insist it matches
		// bit for bit — a disagreement means a corrupted or tampered bundle.
		compiled, err := rtree.CompileFlat(f.trees)
		if err != nil {
			return nil, fmt.Errorf("forest: compiling flat engine: %w", err)
		}
		if e.Flat != nil {
			imported, err := rtree.ImportFlat(e.Flat)
			if err != nil {
				return nil, fmt.Errorf("forest: flat encoding: %w", err)
			}
			if !imported.Equal(compiled) {
				return nil, errors.New("forest: flat encoding disagrees with the trees")
			}
		}
		f.flat = compiled
	} else {
		fl, err := rtree.ImportFlat(e.Flat)
		if err != nil {
			return nil, fmt.Errorf("forest: flat encoding: %w", err)
		}
		if fl.NumFeatures() != p {
			return nil, fmt.Errorf("forest: flat encoding has %d features, model has %d", fl.NumFeatures(), p)
		}
		f.flat = fl
	}
	return f, nil
}

// Save writes the forest as JSON.
func (f *Forest) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(f.Export())
}

// SaveQuantized writes the forest as JSON in its compact flat-only form
// (see ExportQuantized). Load accepts both formats transparently.
func (f *Forest) SaveQuantized(w io.Writer) error {
	e, err := f.ExportQuantized()
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(e)
}

// Load reads a forest saved with Save.
func Load(r io.Reader) (*Forest, error) {
	var e Exported
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("forest: decoding saved model: %w", err)
	}
	return Import(&e)
}
