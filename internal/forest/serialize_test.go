package forest

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	x, y, names := friedman1(120, 20)
	orig, err := Fit(x, y, names, Config{NTrees: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Identical predictions on every training row and fresh probes.
	for i, row := range x {
		if orig.Predict(row) != loaded.Predict(row) {
			t.Fatalf("prediction differs at row %d", i)
		}
	}
	if loaded.NumTrees() != orig.NumTrees() {
		t.Fatal("tree count differs")
	}
	if loaded.OOBMSE() != orig.OOBMSE() || loaded.VarExplained() != orig.VarExplained() {
		t.Fatal("OOB statistics differ")
	}
	lo1, hi1 := orig.ResponseRange()
	lo2, hi2 := loaded.ResponseRange()
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("response range differs")
	}

	// Importance ranking preserved exactly.
	a := orig.VariableImportance()
	b := loaded.VariableImportance()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("importance differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}

	// The loaded model has no training data: PD must refuse gracefully.
	if _, _, err := loaded.PartialDependence("x1", 10); err == nil {
		t.Fatal("partial dependence on a loaded model should error")
	}
	if _, _, _, _, err := loaded.PartialDependenceCI("x1", 10, 0.9); err == nil {
		t.Fatal("PD CI on a loaded model should error")
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	cases := []string{
		``,
		`{"version": 99}`,
		`{"version": 1, "names": ["a"], "trees": []}`,
		`{"version": 1, "names": [], "trees": [{"nodes":[{"f":-1,"v":1,"n":1}],"features":1}]}`,
		// Tree with an out-of-range child pointer.
		`{"version": 1, "names": ["a"], "importance":[0], "importance_se":[0], "purity":[0],
		  "trees": [{"nodes":[{"f":0,"t":1,"l":5,"r":6,"v":1,"n":2}],"features":1}]}`,
		// Tree splitting on a feature the model does not have.
		`{"version": 1, "names": ["a"], "importance":[0], "importance_se":[0], "purity":[0],
		  "trees": [{"nodes":[{"f":3,"t":1,"l":0,"r":0,"v":1,"n":2}],"features":4}]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
