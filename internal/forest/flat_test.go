package forest

import (
	"bytes"
	"math"
	"testing"

	"blackforest/internal/stats"
)

// randomProblem generates a random regression design with a planted signal.
func randomProblem(rng *stats.RNG, rows, features int) ([][]float64, []float64, []string) {
	x := make([][]float64, rows)
	y := make([]float64, rows)
	names := make([]string, features)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	for i := range x {
		x[i] = make([]float64, features)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64() * 100
		}
		y[i] = 2*x[i][0] - x[i][features-1] + rng.NormFloat64()*0.5
	}
	return x, y, names
}

// TestFlatDifferential is the tentpole's gate: across many random forests
// and random query batches, the flat engine (single and batched, any worker
// count), a quantized-bundle round trip, and the frozen pointer walker must
// all agree bit for bit.
func TestFlatDifferential(t *testing.T) {
	const trials = 25
	rng := stats.NewRNG(0xf1a7)
	for trial := 0; trial < trials; trial++ {
		rows := 30 + rng.Intn(50)
		features := 2 + rng.Intn(5)
		x, y, names := randomProblem(rng, rows, features)
		cfg := Config{
			NTrees:      3 + rng.Intn(8),
			MTry:        1 + rng.Intn(features),
			MinNodeSize: 2 + rng.Intn(4),
			Seed:        rng.Uint64(),
			Workers:     1 + rng.Intn(4),
		}
		f, err := Fit(x, y, names, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Round trip through the quantized (flat-only) bundle.
		var buf bytes.Buffer
		if err := f.SaveQuantized(&buf); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("trial %d: loading quantized bundle: %v", trial, err)
		}
		if e := loaded.Engine(); e != "flat(dict16)" && e != "flat(f32)" && e != "flat(f64)" {
			t.Fatalf("trial %d: quantized engine = %q", trial, e)
		}
		if f.Engine() != "flat" {
			t.Fatalf("trial %d: fitted engine = %q, want flat", trial, f.Engine())
		}

		// Random query batch: mostly fresh draws, some training rows.
		n := 5 + rng.Intn(16)
		queries := make([][]float64, n)
		for i := range queries {
			if rng.Intn(3) == 0 {
				queries[i] = x[rng.Intn(rows)]
				continue
			}
			q := make([]float64, features)
			for j := range q {
				q[j] = rng.NormFloat64() * 150
			}
			queries[i] = q
		}

		batch := f.PredictAll(queries)
		for i, q := range queries {
			oracle := f.PredictPointer(q)
			flat := f.Predict(q)
			quant, err := loaded.PredictVector(q)
			if err != nil {
				t.Fatalf("trial %d row %d: %v", trial, i, err)
			}
			ob := math.Float64bits(oracle)
			if math.Float64bits(flat) != ob {
				t.Fatalf("trial %d row %d: flat %v != pointer %v", trial, i, flat, oracle)
			}
			if math.Float64bits(batch[i]) != ob {
				t.Fatalf("trial %d row %d: batch %v != pointer %v", trial, i, batch[i], oracle)
			}
			if math.Float64bits(quant) != ob {
				t.Fatalf("trial %d row %d: quantized %v != pointer %v", trial, i, quant, oracle)
			}
		}
	}
}

// TestPredictAllWorkerInvariance: the tree-major block schedule must produce
// the same bits for every worker count, including batches that are not a
// multiple of the block size.
func TestPredictAllWorkerInvariance(t *testing.T) {
	rng := stats.NewRNG(7)
	x, y, names := randomProblem(rng, 60, 3)
	queries := make([][]float64, 1000) // > predictBlockRows, not a multiple
	for i := range queries {
		queries[i] = []float64{rng.NormFloat64() * 100, rng.NormFloat64() * 100, rng.NormFloat64() * 100}
	}
	var want []float64
	for _, workers := range []int{1, 2, 3, 8} {
		f, err := Fit(x, y, names, Config{NTrees: 5, MinNodeSize: 3, Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := f.PredictAll(queries)
		if want == nil {
			want = got
			for i, q := range queries {
				if math.Float64bits(got[i]) != math.Float64bits(f.PredictPointer(q)) {
					t.Fatalf("row %d: batch differs from pointer oracle", i)
				}
			}
			continue
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d row %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestQuantizedBundleProperties: a flat-only bundle drops the trees, still
// answers importance queries from the shell metadata, and refuses the
// pointer-walk APIs that need per-tree nodes.
func TestQuantizedBundleProperties(t *testing.T) {
	rng := stats.NewRNG(11)
	x, y, names := randomProblem(rng, 50, 3)
	f, err := Fit(x, y, names, Config{NTrees: 6, MinNodeSize: 3, Seed: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := f.ExportQuantized()
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Trees) != 0 || e.Flat == nil {
		t.Fatalf("quantized export carries %d trees, flat=%v", len(e.Trees), e.Flat != nil)
	}
	loaded, err := Import(e)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTrees() != f.NumTrees() {
		t.Fatalf("NumTrees = %d, want %d", loaded.NumTrees(), f.NumTrees())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PredictPointer on a flat-only bundle did not panic")
		}
	}()
	loaded.PredictPointer(x[0])
}

// TestImportCrossValidatesFlat: when a bundle carries both trees and a flat
// encoding, the flat half must match what the trees compile to; a tampered
// flat encoding is a corrupted bundle and must be rejected.
func TestImportCrossValidatesFlat(t *testing.T) {
	rng := stats.NewRNG(13)
	x, y, names := randomProblem(rng, 40, 3)
	f, err := Fit(x, y, names, Config{NTrees: 4, MinNodeSize: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := f.Export()
	flat, err := f.ExportQuantized()
	if err != nil {
		t.Fatal(err)
	}
	e.Flat = flat.Flat
	if _, err := Import(e); err != nil {
		t.Fatalf("consistent trees+flat bundle rejected: %v", err)
	}
	// Tamper with one encoded value: now the halves disagree.
	switch e.Flat.Values.Enc {
	case "dict16":
		e.Flat.Values.Table[0] += 1
	case "f32":
		e.Flat.Values.F32[0] += 1
	default:
		e.Flat.Values.F64[0] += 1
	}
	if _, err := Import(e); err == nil {
		t.Fatal("tampered flat encoding accepted")
	}
}

// TestPredictAllMalformedRowPanics: the historical contract — PredictAll
// panics on a malformed row — must hold on the flat engine too, and the
// panic must surface in the caller's goroutine for any batch size.
func TestPredictAllMalformedRowPanics(t *testing.T) {
	rng := stats.NewRNG(17)
	x, y, names := randomProblem(rng, 40, 3)
	f, err := Fit(x, y, names, Config{NTrees: 4, MinNodeSize: 3, Seed: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{2, 600} {
		rows := make([][]float64, size)
		for i := range rows {
			rows[i] = x[i%len(x)]
		}
		rows[size-1] = []float64{1} // ragged
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("size %d: malformed row did not panic", size)
				}
			}()
			f.PredictAll(rows)
		}()
	}
}
