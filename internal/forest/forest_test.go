package forest

import (
	"math"
	"testing"
	"testing/quick"

	"blackforest/internal/stats"
)

// friedman1 generates Friedman's #1 regression benchmark:
// y = 10·sin(π·x1·x2) + 20·(x3−0.5)² + 10·x4 + 5·x5 + ε, with x6..x10 noise.
func friedman1(n int, seed uint64) (x [][]float64, y []float64, names []string) {
	rng := stats.NewRNG(seed)
	names = []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10"}
	for i := 0; i < n; i++ {
		row := make([]float64, 10)
		for j := range row {
			row[j] = rng.Float64()
		}
		x = append(x, row)
		y = append(y, 10*math.Sin(math.Pi*row[0]*row[1])+
			20*(row[2]-0.5)*(row[2]-0.5)+10*row[3]+5*row[4]+rng.NormFloat64())
	}
	return x, y, names
}

func TestFitFriedman1(t *testing.T) {
	x, y, names := friedman1(300, 1)
	f, err := Fit(x, y, names, Config{NTrees: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.VarExplained() < 0.6 {
		t.Fatalf("Friedman#1 %%var explained %.2f < 0.6", f.VarExplained())
	}
	// Informative variables must outrank every pure-noise variable.
	imp := f.VariableImportance()
	rank := map[string]int{}
	for i, v := range imp {
		rank[v.Name] = i
	}
	for _, sig := range []string{"x1", "x2", "x4"} {
		for _, noise := range []string{"x6", "x7", "x8", "x9", "x10"} {
			if rank[sig] > rank[noise] {
				t.Fatalf("%s (rank %d) ranked below noise %s (rank %d)",
					sig, rank[sig], noise, rank[noise])
			}
		}
	}
}

func TestNoiseImportanceNearZero(t *testing.T) {
	x, y, names := friedman1(300, 2)
	f, err := Fit(x, y, names, Config{NTrees: 200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var sigImp, noiseImp float64
	for _, v := range f.VariableImportance() {
		switch v.Name {
		case "x4":
			sigImp = v.IncMSE
		case "x9":
			noiseImp = v.IncMSE
		}
	}
	if noiseImp > sigImp/3 {
		t.Fatalf("noise IncMSE %v too close to signal %v", noiseImp, sigImp)
	}
}

func TestDeterminismAcrossFits(t *testing.T) {
	x, y, names := friedman1(100, 3)
	a, err := Fit(x, y, names, Config{NTrees: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(x, y, names, Config{NTrees: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.OOBMSE() != b.OOBMSE() {
		t.Fatal("same seed produced different OOB MSE")
	}
	probe := x[0]
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same seed produced different predictions")
	}
	c, err := Fit(x, y, names, Config{NTrees: 50, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.OOBMSE() == c.OOBMSE() {
		t.Fatal("different seeds produced identical OOB MSE")
	}
}

func TestFitDefensiveCopy(t *testing.T) {
	x, y, names := friedman1(100, 13)
	f, err := Fit(x, y, names, Config{NTrees: 60, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	probe := append([]float64(nil), x[0]...)
	oob := f.OOBMSE()
	pred := f.Predict(probe)
	imp := f.VariableImportance()
	grid, resp, err := f.PartialDependence("x1", 8)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ResponseRange()

	// Trash the caller's slices; the fitted forest must not notice.
	for i := range x {
		for j := range x[i] {
			x[i][j] = 1e9
		}
	}
	for i := range y {
		y[i] = -1e9
	}

	if f.OOBMSE() != oob {
		t.Fatal("OOB MSE changed after mutating training data")
	}
	if f.Predict(probe) != pred {
		t.Fatal("prediction changed after mutating training data")
	}
	if lo2, hi2 := f.ResponseRange(); lo2 != lo || hi2 != hi {
		t.Fatalf("response range tracked caller's y: [%v,%v] vs [%v,%v]", lo2, hi2, lo, hi)
	}
	imp2 := f.VariableImportance()
	for i := range imp {
		if imp[i] != imp2[i] {
			t.Fatal("importance changed after mutating training data")
		}
	}
	grid2, resp2, err := f.PartialDependence("x1", 8)
	if err != nil {
		t.Fatal(err)
	}
	for g := range grid {
		if grid[g] != grid2[g] || resp[g] != resp2[g] {
			t.Fatal("partial dependence read the caller's mutated matrix")
		}
	}
}

func TestPredictAllAndBounds(t *testing.T) {
	x, y, names := friedman1(150, 4)
	f, err := Fit(x, y, names, Config{NTrees: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ResponseRange()
	preds := f.PredictAll(x)
	for _, p := range preds {
		if p < lo || p > hi {
			t.Fatalf("prediction %v outside training range [%v, %v]", p, lo, hi)
		}
	}
}

func TestOOBPredictions(t *testing.T) {
	x, y, names := friedman1(100, 5)
	f, err := Fit(x, y, names, Config{NTrees: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	oob := f.OOBPredictions()
	if len(oob) != 100 {
		t.Fatalf("OOB predictions length %d", len(oob))
	}
	nan := 0
	for _, v := range oob {
		if math.IsNaN(v) {
			nan++
		}
	}
	// With 100 trees virtually every sample is OOB for some tree.
	if nan > 2 {
		t.Fatalf("%d samples have no OOB prediction", nan)
	}
	if f.OOBMSE() <= 0 {
		t.Fatal("OOB MSE not positive on noisy data")
	}
}

func TestConfigDefaults(t *testing.T) {
	x, y, names := friedman1(60, 6)
	f, err := Fit(x, y, names, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 500 {
		t.Fatalf("default NTrees %d", f.NumTrees())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil, Config{}); err == nil {
		t.Fatal("empty set accepted")
	}
	x := [][]float64{{1, 2}, {3, 4}}
	if _, err := Fit(x, []float64{1}, []string{"a", "b"}, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit(x, []float64{1, 2}, []string{"a"}, Config{}); err == nil {
		t.Fatal("name count mismatch accepted")
	}
	if _, err := Fit(x, []float64{1, 2}, []string{"a", "b"}, Config{MTry: 5}); err == nil {
		t.Fatal("MTry > p accepted")
	}
}

func TestTopPredictors(t *testing.T) {
	x, y, names := friedman1(150, 7)
	f, err := Fit(x, y, names, Config{NTrees: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	top := f.TopPredictors(3)
	if len(top) != 3 {
		t.Fatalf("TopPredictors(3) returned %d", len(top))
	}
	all := f.TopPredictors(99)
	if len(all) != 10 {
		t.Fatalf("TopPredictors(99) returned %d", len(all))
	}
}

func TestPartialDependenceMonotone(t *testing.T) {
	// y = 5·x1 (pure linear): the PD profile of x1 must rise.
	rng := stats.NewRNG(8)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		y = append(y, 5*a)
	}
	f, err := Fit(x, y, []string{"x1", "x2"}, Config{NTrees: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	grid, resp, err := f.PartialDependence("x1", 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 15 || len(resp) != 15 {
		t.Fatal("grid size wrong")
	}
	if stats.Correlation(grid, resp) < 0.95 {
		t.Fatalf("PD of linear driver not monotone: r=%v", stats.Correlation(grid, resp))
	}
	if _, _, err := f.PartialDependence("nope", 10); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

// Property: forest predictions are convex combinations of tree leaf means,
// hence bounded by the training response range, for any probe.
func TestForestBoundsProperty(t *testing.T) {
	x, y, names := friedman1(80, 9)
	f, err := Fit(x, y, names, Config{NTrees: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ResponseRange()
	prop := func(probe [10]float64) bool {
		for i := range probe {
			if math.IsNaN(probe[i]) || math.IsInf(probe[i], 0) {
				return true
			}
		}
		p := f.Predict(probe[:])
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestImportanceOrderingDeterministic(t *testing.T) {
	x, y, names := friedman1(120, 10)
	f, err := Fit(x, y, names, Config{NTrees: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := f.VariableImportance()
	b := f.VariableImportance()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("importance ordering unstable across calls")
		}
	}
}

func TestPartialDependenceCI(t *testing.T) {
	x, y, names := friedman1(150, 12)
	f, err := Fit(x, y, names, Config{NTrees: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	grid, resp, lo, hi, err := f.PartialDependenceCI("x4", 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 10 || len(resp) != 10 || len(lo) != 10 || len(hi) != 10 {
		t.Fatal("CI profile lengths wrong")
	}
	for g := range grid {
		if !(lo[g] <= resp[g] && resp[g] <= hi[g]) {
			t.Fatalf("band does not bracket mean at %d: %v %v %v", g, lo[g], resp[g], hi[g])
		}
		if hi[g] < lo[g] {
			t.Fatal("inverted band")
		}
	}
	// The band must have nonzero width somewhere: trees disagree.
	var width float64
	for g := range grid {
		width += hi[g] - lo[g]
	}
	if width <= 0 {
		t.Fatal("zero-width confidence band across the whole profile")
	}
	// Mean profile consistent with the plain PD (same definition).
	_, plain, err := f.PartialDependence("x4", 10)
	if err != nil {
		t.Fatal(err)
	}
	for g := range plain {
		if math.Abs(plain[g]-resp[g]) > 1e-9 {
			t.Fatalf("CI mean diverges from PD at %d: %v vs %v", g, resp[g], plain[g])
		}
	}
	if _, _, _, _, err := f.PartialDependenceCI("nope", 10, 0.9); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}
