package runcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// payload is a stand-in for a profile: a map of float64 metrics, the
// shape whose bit-exact round-trip the cache must guarantee.
type payload struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
	Time    float64            `json:"time"`
}

func newTestCache(t *testing.T, cfg Config) *Cache[*payload] {
	t.Helper()
	c, err := New(cfg,
		func(p *payload) ([]byte, error) { return json.Marshal(p) },
		func(b []byte) (*payload, error) {
			var p payload
			if err := json.Unmarshal(b, &p); err != nil {
				return nil, err
			}
			return &p, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func keyOf(parts ...string) Key {
	h := NewHasher()
	for _, p := range parts {
		h.String(p)
	}
	return h.Sum()
}

func TestHasherDistinguishesConcatenations(t *testing.T) {
	// "ab"+"c" must not collide with "a"+"bc" (length prefixes), and
	// field order must matter.
	if keyOf("ab", "c") == keyOf("a", "bc") {
		t.Fatal("length-prefixing failed: concatenation collision")
	}
	if keyOf("a", "b") == keyOf("b", "a") {
		t.Fatal("order should matter")
	}
	if NewHasher().Float64(0).Sum() == NewHasher().Float64(math.Copysign(0, -1)).Sum() {
		t.Fatal("-0.0 and +0.0 should hash distinctly")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	c := newTestCache(t, Config{})
	k := keyOf("run1")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache should miss")
	}
	want := &payload{Name: "run1", Time: 1.25, Metrics: map[string]float64{"x": 3.5}}
	c.Put(k, want)
	got, ok := c.Get(k)
	if !ok || got != want {
		t.Fatalf("memory hit should return the stored pointer; got %v ok=%v", got, ok)
	}
	s := c.Stats()
	if s.MemHits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 mem hit, 1 miss", s)
	}
}

func TestDiskRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(t, Config{Dir: dir})
	k := keyOf("run-disk")
	// Awkward floats: denormals, huge magnitudes, values with no short
	// decimal form — all must survive encode/decode bit for bit.
	want := &payload{
		Name: "disk",
		Time: math.Nextafter(1.0, 2.0),
		Metrics: map[string]float64{
			"denormal": 5e-324,
			"big":      1.7976931348623157e308,
			"third":    1.0 / 3.0,
			"neg":      -0.0,
		},
	}
	c.Put(k, want)

	// A fresh cache over the same dir must hit from disk with identical bits.
	c2 := newTestCache(t, Config{Dir: dir})
	got, ok := c2.Get(k)
	if !ok {
		t.Fatal("expected disk hit in fresh cache")
	}
	if got == want {
		t.Fatal("disk hit must be a decoded copy, not the same pointer")
	}
	if math.Float64bits(got.Time) != math.Float64bits(want.Time) {
		t.Fatalf("Time bits differ: %x vs %x", math.Float64bits(got.Time), math.Float64bits(want.Time))
	}
	for name, v := range want.Metrics {
		if math.Float64bits(got.Metrics[name]) != math.Float64bits(v) {
			t.Fatalf("metric %s bits differ", name)
		}
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", s)
	}
	// The disk hit is promoted to memory: next Get is a memory hit.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("promoted entry should hit")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 mem hit after promotion", s)
	}
}

func TestLRUBound(t *testing.T) {
	c := newTestCache(t, Config{MaxMemEntries: 3})
	for i := 0; i < 5; i++ {
		c.Put(keyOf(fmt.Sprintf("k%d", i)), &payload{Name: fmt.Sprintf("k%d", i)})
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Fatalf("stats = %+v, want 2 evictions", s)
	}
	// k0, k1 evicted; k2..k4 resident.
	if _, ok := c.Get(keyOf("k0")); ok {
		t.Fatal("k0 should have been evicted")
	}
	if _, ok := c.Get(keyOf("k4")); !ok {
		t.Fatal("k4 should be resident")
	}
	// Touch k2, insert k5: k3 is now the LRU victim.
	if _, ok := c.Get(keyOf("k2")); !ok {
		t.Fatal("k2 should be resident")
	}
	c.Put(keyOf("k5"), &payload{Name: "k5"})
	if _, ok := c.Get(keyOf("k2")); !ok {
		t.Fatal("recently used k2 should survive")
	}
	if _, ok := c.Get(keyOf("k3")); ok {
		t.Fatal("k3 should have been evicted")
	}
}

func TestMemoryLayerDisabled(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(t, Config{Dir: dir, MaxMemEntries: -1})
	k := keyOf("nomem")
	c.Put(k, &payload{Name: "nomem"})
	if _, ok := c.Get(k); !ok {
		t.Fatal("disk layer should still serve with memory disabled")
	}
	if s := c.Stats(); s.MemHits != 0 || s.DiskHits != 1 {
		t.Fatalf("stats = %+v, want disk-only hits", s)
	}
}

func TestDoComputesOncePerKey(t *testing.T) {
	c := newTestCache(t, Config{})
	var computes atomic.Int64
	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]*payload, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err := c.Do(keyOf("shared"), func() (*payload, error) {
				computes.Add(1)
				return &payload{Name: "shared", Time: 7}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatal("coalesced callers should share the leader's value")
		}
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := newTestCache(t, Config{})
	boom := errors.New("boom")
	k := keyOf("flaky")
	if _, err := c.Do(k, func() (*payload, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := c.Do(k, func() (*payload, error) { return &payload{Name: "ok"}, nil })
	if err != nil || v.Name != "ok" {
		t.Fatalf("retry after error should compute: %v %v", v, err)
	}
}

func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache[*payload]
	if _, ok := c.Get(keyOf("x")); ok {
		t.Fatal("nil cache should miss")
	}
	c.Put(keyOf("x"), &payload{})
	v, err := c.Do(keyOf("x"), func() (*payload, error) { return &payload{Name: "direct"}, nil })
	if err != nil || v.Name != "direct" {
		t.Fatalf("nil Do should compute directly: %v %v", v, err)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats = %+v, want zero", s)
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(t, Config{Dir: dir, MaxMemEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := keyOf(fmt.Sprintf("k%d", i%12))
				v, err := c.Do(k, func() (*payload, error) {
					return &payload{Name: fmt.Sprintf("k%d", i%12), Time: float64(i % 12)}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.Time != float64(i%12) {
					t.Errorf("wrong value for key %d: %v", i%12, v.Time)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
	s := Stats{MemHits: 3, DiskHits: 1, Misses: 4}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
	if s.Hits() != 4 {
		t.Fatalf("hits = %d, want 4", s.Hits())
	}
}

func TestDiskWriteFailureDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(t, Config{Dir: dir})
	// Swap the directory for a file: every disk write now fails, but Put
	// still serves from memory and the failure is counted.
	c.dir = filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(c.dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	k := keyOf("degraded")
	c.Put(k, &payload{Name: "degraded"})
	if _, ok := c.Get(k); !ok {
		t.Fatal("memory layer should still serve")
	}
	if s := c.Stats(); s.WriteErrors != 1 || s.Writes != 0 {
		t.Fatalf("stats = %+v, want 1 write error", s)
	}
}
