// Package runcache is BlackForest's content-addressed run cache: a
// two-layer (memory + disk) store for the results of deterministic
// simulator runs. Since PR 1 every profile is a pure function of its run
// identity — (device model, kernel, launch configuration, problem size,
// noise seed, fault spec, simulator version) — so the same run never needs
// to be simulated twice. The cache keys entries by a SHA-256 hash of that
// identity and guarantees that a hit is bit-identical to a recompute:
// entries that cannot be proven intact (bad magic, short file, checksum
// mismatch, undecodable payload) are treated as misses, deleted, and
// recomputed, never served.
//
// Layers:
//
//   - memory: an LRU-bounded map holding decoded values, so warm lookups
//     cost one mutex acquisition and no decoding;
//   - disk (optional): one file per key, written atomically
//     (temp file + rename) so readers never observe a partial entry and
//     concurrent writers at worst both write the same bytes.
//
// Do adds run-level singleflight on top: concurrent requests for the same
// key share one computation, so a global scheduler draining many
// experiments never simulates identical in-flight runs twice.
//
// The zero-value *Cache (nil) is a valid no-op: Get always misses, Put
// does nothing, and Do just computes — callers thread it unconditionally.
package runcache

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key is a content-addressed cache key: the SHA-256 of the run identity,
// built with Hasher. Its hex form names the disk entry.
type Key [32]byte

// String returns the key as lower-case hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Config configures a cache.
type Config struct {
	// Dir is the disk layer's directory; it is created on first write.
	// Empty disables the disk layer (memory-only cache).
	Dir string
	// MaxMemEntries bounds the memory layer: when full, the least
	// recently used entry is evicted (it remains on disk if a disk layer
	// exists). 0 selects DefaultMaxMemEntries; negative disables the
	// memory layer entirely.
	MaxMemEntries int
}

// DefaultMaxMemEntries is the memory-layer bound when Config leaves it 0.
const DefaultMaxMemEntries = 4096

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	// MemHits and DiskHits count lookups served from each layer.
	MemHits  int64 `json:"mem_hits"`
	DiskHits int64 `json:"disk_hits"`
	// Misses counts lookups that found nothing usable.
	Misses int64 `json:"misses"`
	// Coalesced counts Do callers that shared another caller's in-flight
	// computation instead of simulating themselves.
	Coalesced int64 `json:"coalesced"`
	// Writes counts disk entries written; WriteErrors counts writes that
	// failed (the value is still returned to the caller — a broken disk
	// degrades to memory-only caching, never to a wrong answer).
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	// Evictions counts memory-layer LRU evictions.
	Evictions int64 `json:"evictions"`
	// BadEntries counts corrupt/truncated/undecodable disk entries that
	// were discarded (and deleted) instead of being served.
	BadEntries int64 `json:"bad_entries"`
}

// Hits returns the total lookups served from either layer.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits() + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// Cache is a two-layer content-addressed store of T values. It is safe
// for concurrent use. Values handed out by Get/Do may be shared between
// callers and with the memory layer: callers must treat them as
// immutable.
type Cache[T any] struct {
	dir    string
	max    int
	encode func(T) ([]byte, error)
	decode func([]byte) (T, error)

	mu      sync.Mutex
	entries map[Key]*list.Element // -> *memEntry[T]
	lru     *list.List            // front = most recent
	flight  map[Key]*call[T]

	memHits, diskHits, misses, coalesced   atomic.Int64
	writes, writeErrors, evictions, badEnt atomic.Int64
}

type memEntry[T any] struct {
	key Key
	val T
}

// call is one in-flight computation shared by coalesced Do callers.
type call[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// New builds a cache that serializes values with encode and revives them
// with decode. The encode/decode pair must round-trip values exactly
// (bit-for-bit for floating-point content) — the disk layer's hit path
// runs decode(encode(v)).
func New[T any](cfg Config, encode func(T) ([]byte, error), decode func([]byte) (T, error)) (*Cache[T], error) {
	if encode == nil || decode == nil {
		return nil, fmt.Errorf("runcache: encode and decode are required")
	}
	max := cfg.MaxMemEntries
	if max == 0 {
		max = DefaultMaxMemEntries
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("runcache: creating %s: %w", cfg.Dir, err)
		}
	}
	return &Cache[T]{
		dir:     cfg.Dir,
		max:     max,
		encode:  encode,
		decode:  decode,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		flight:  make(map[Key]*call[T]),
	}, nil
}

// Stats returns a snapshot of the cache's counters (zero for nil).
func (c *Cache[T]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		MemHits:     c.memHits.Load(),
		DiskHits:    c.diskHits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Writes:      c.writes.Load(),
		WriteErrors: c.writeErrors.Load(),
		Evictions:   c.evictions.Load(),
		BadEntries:  c.badEnt.Load(),
	}
}

// Dir returns the disk layer's directory ("" for memory-only or nil).
func (c *Cache[T]) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Get returns the cached value for key. A disk hit is promoted into the
// memory layer. Unreadable disk entries count as misses (and are
// deleted), never as wrong answers.
func (c *Cache[T]) Get(key Key) (T, bool) {
	var zero T
	if c == nil {
		return zero, false
	}
	return c.get(key, true)
}

// get is Get's engine; countMiss lets Do's post-registration re-check
// look up without inflating the miss counter a second time.
func (c *Cache[T]) get(key Key, countMiss bool) (T, bool) {
	var zero T
	if v, ok := c.memGet(key); ok {
		c.memHits.Add(1)
		return v, true
	}
	if v, ok := c.diskGet(key); ok {
		c.memPut(key, v)
		c.diskHits.Add(1)
		return v, true
	}
	if countMiss {
		c.misses.Add(1)
	}
	return zero, false
}

// Put stores the value in both layers. Disk-write failures degrade the
// entry to memory-only and are visible in Stats.WriteErrors.
func (c *Cache[T]) Put(key Key, v T) {
	if c == nil {
		return
	}
	c.memPut(key, v)
	if c.dir == "" {
		return
	}
	if err := c.diskPut(key, v); err != nil {
		c.writeErrors.Add(1)
		return
	}
	c.writes.Add(1)
}

// Do returns the cached value for key, or computes, stores, and returns
// it. Concurrent Do calls for the same key share one computation (the
// followers' results are the leader's, bit for bit). Errors are not
// cached: every Do after a failed computation retries.
func (c *Cache[T]) Do(key Key, compute func() (T, error)) (T, error) {
	if c == nil {
		return compute()
	}
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	c.mu.Lock()
	if cl, ok := c.flight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-cl.done
		return cl.val, cl.err
	}
	cl := &call[T]{done: make(chan struct{})}
	c.flight[key] = cl
	c.mu.Unlock()

	// Re-check under flight ownership: a leader that completed between
	// our Get and our registration has already populated the cache. The
	// original Get already counted this lookup's miss.
	if v, ok := c.get(key, false); ok {
		cl.val = v
	} else {
		cl.val, cl.err = compute()
		if cl.err == nil {
			c.Put(key, cl.val)
		}
	}
	c.mu.Lock()
	delete(c.flight, key)
	c.mu.Unlock()
	close(cl.done)
	return cl.val, cl.err
}

// --- memory layer ---

func (c *Cache[T]) memGet(key Key) (T, bool) {
	var zero T
	if c.max < 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*memEntry[T]).val, true
}

func (c *Cache[T]) memPut(key Key, v T) {
	if c.max < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*memEntry[T]).val = v
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&memEntry[T]{key: key, val: v})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*memEntry[T]).key)
		c.evictions.Add(1)
	}
}

// --- disk layer ---

// Disk entries are self-verifying: magic, payload length, FNV-1a 64
// checksum, payload. Anything that fails validation is discarded.
var diskMagic = [8]byte{'B', 'F', 'R', 'C', '1', 0, 0, 0}

const diskHeaderSize = 8 + 8 + 8 // magic + length + checksum

func (c *Cache[T]) path(key Key) string {
	return filepath.Join(c.dir, key.String()+".bfrc")
}

func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

func (c *Cache[T]) diskGet(key Key) (T, bool) {
	var zero T
	if c.dir == "" {
		return zero, false
	}
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.discard(path)
		}
		return zero, false
	}
	payload, ok := validateEntry(raw)
	if !ok {
		c.discard(path)
		return zero, false
	}
	v, err := c.decode(payload)
	if err != nil {
		c.discard(path)
		return zero, false
	}
	return v, true
}

// validateEntry checks an entry's framing and checksum, returning the
// payload when — and only when — the bytes are provably intact.
func validateEntry(raw []byte) ([]byte, bool) {
	if len(raw) < diskHeaderSize {
		return nil, false
	}
	if [8]byte(raw[:8]) != diskMagic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	sum := binary.LittleEndian.Uint64(raw[16:24])
	payload := raw[diskHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	if checksum(payload) != sum {
		return nil, false
	}
	return payload, true
}

// discard removes a disk entry that failed validation, repairing the
// store: the next Put rewrites it from a fresh computation.
func (c *Cache[T]) discard(path string) {
	c.badEnt.Add(1)
	os.Remove(path)
}

func (c *Cache[T]) diskPut(key Key, v T) error {
	payload, err := c.encode(v)
	if err != nil {
		return err
	}
	buf := make([]byte, diskHeaderSize+len(payload))
	copy(buf[:8], diskMagic[:])
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[16:24], checksum(payload))
	copy(buf[diskHeaderSize:], payload)

	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	// Atomic single-writer protocol: a temp file in the same directory,
	// fully written and closed, then renamed over the final name. Readers
	// see either the whole entry or none of it; racing writers for the
	// same key rename identical bytes.
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
