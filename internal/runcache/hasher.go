package runcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
)

// Hasher folds a run identity into a Key. Every field is written with an
// unambiguous encoding (strings are length-prefixed, numbers fixed-width
// little-endian, floats by their IEEE 754 bits), so distinct identities
// cannot collide by concatenation and NaN payloads or -0.0 hash
// distinctly — the same discipline the profiler's identity hash uses,
// upgraded to a cryptographic digest because the cache is a persistent,
// shared namespace.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher starts a fresh key derivation.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// String writes a length-prefixed string.
func (h *Hasher) String(s string) *Hasher {
	h.Uint64(uint64(len(s)))
	h.h.Write([]byte(s))
	return h
}

// Uint64 writes a fixed-width integer.
func (h *Hasher) Uint64(x uint64) *Hasher {
	binary.LittleEndian.PutUint64(h.buf[:], x)
	h.h.Write(h.buf[:])
	return h
}

// Int writes an int as its 64-bit two's-complement form.
func (h *Hasher) Int(x int) *Hasher { return h.Uint64(uint64(int64(x))) }

// Float64 writes a float by its IEEE 754 bit pattern.
func (h *Hasher) Float64(f float64) *Hasher { return h.Uint64(math.Float64bits(f)) }

// Sum finalizes the key. The Hasher must not be reused afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}
