package runcache

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"blackforest/internal/faults"
)

// damage rewrites every cache entry in dir through a fault-injected
// reader (byte corruption or truncation per the config), simulating the
// disk rotting underneath the cache.
func damage(t *testing.T, dir string, cfg faults.Config) int {
	t.Helper()
	in := faults.New(cfg)
	if in == nil {
		t.Fatal("fault config injects nothing")
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.bfrc"))
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		r := in.WrapReader(bytes.NewReader(raw), faults.HashString(path))
		bad, err := io.ReadAll(r)
		if err != nil && err != io.ErrUnexpectedEOF {
			t.Fatal(err)
		}
		if err == io.ErrUnexpectedEOF && bytes.Equal(bad, raw) {
			// The injected cut offset fell beyond this small entry; apply
			// the truncation modulo the entry size so it is still visible.
			bad = bad[:len(bad)*2/5]
		}
		if cfg.CorruptReads > 0 && bytes.Equal(bad, raw) {
			// The injected flip offset (drawn per 4KiB chunk) fell beyond
			// this small entry; land it inside, keyed on the same identity.
			bad[faults.HashString(path)%uint64(len(bad))] ^= 0xff
		}
		if bytes.Equal(bad, raw) {
			continue
		}
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	return damaged
}

// TestChaosCorruptedEntriesRecomputedAndRepaired is the cache's core
// safety property: a damaged disk entry is never served — the run is
// recomputed bit-identically and the entry rewritten intact.
func TestChaosCorruptedEntriesRecomputedAndRepaired(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  faults.Config
	}{
		{"corrupt", faults.Config{Seed: 7, CorruptReads: 1}},
		{"truncate", faults.Config{Seed: 11, TruncateReads: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c := newTestCache(t, Config{Dir: dir})
			var computes atomic.Int64
			compute := func(name string, v float64) func() (*payload, error) {
				return func() (*payload, error) {
					computes.Add(1)
					return &payload{Name: name, Time: v, Metrics: map[string]float64{"m": v / 3}}, nil
				}
			}
			keys := make([]Key, 5)
			want := make([]*payload, 5)
			for i := range keys {
				keys[i] = NewHasher().String("chaos").Int(i).Sum()
				v, err := c.Do(keys[i], compute("chaos", float64(i)+0.1))
				if err != nil {
					t.Fatal(err)
				}
				want[i] = v
			}
			if n := computes.Load(); n != 5 {
				t.Fatalf("computed %d, want 5", n)
			}
			if damage(t, dir, tc.cfg) == 0 {
				t.Fatal("damage pass changed nothing")
			}

			// A fresh cache over the rotten directory must recompute every
			// damaged entry — and the recompute must be bit-identical.
			c2 := newTestCache(t, Config{Dir: dir})
			for i, k := range keys {
				v, err := c2.Do(k, compute("chaos", float64(i)+0.1))
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(v.Time) != math.Float64bits(want[i].Time) ||
					math.Float64bits(v.Metrics["m"]) != math.Float64bits(want[i].Metrics["m"]) {
					t.Fatalf("entry %d: recompute not bit-identical", i)
				}
			}
			s := c2.Stats()
			if s.BadEntries == 0 {
				t.Fatalf("stats = %+v, want discarded bad entries", s)
			}

			// The damaged entries were repaired: a third cache sees only
			// clean disk hits, no recomputes.
			before := computes.Load()
			c3 := newTestCache(t, Config{Dir: dir})
			for i, k := range keys {
				v, err := c3.Do(k, compute("chaos", float64(i)+0.1))
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(v.Time) != math.Float64bits(want[i].Time) {
					t.Fatalf("entry %d: repaired entry not bit-identical", i)
				}
			}
			if computes.Load() != before {
				t.Fatal("repaired entries should all be disk hits")
			}
			if s := c3.Stats(); s.DiskHits != 5 || s.BadEntries != 0 {
				t.Fatalf("stats = %+v, want 5 clean disk hits", s)
			}
		})
	}
}

// TestChaosGarbageFiles feeds the reader formats it must reject outright.
func TestChaosGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(t, Config{Dir: dir})
	k := NewHasher().String("garbage").Sum()
	cases := map[string][]byte{
		"empty":     {},
		"short":     []byte("BFRC1"),
		"bad-magic": append([]byte("XXXX1\x00\x00\x00"), make([]byte, 64)...),
		"bad-json":  entryBytes(t, []byte("{not json")),
		"wrong-len": func() []byte {
			b := entryBytes(t, []byte(`{"name":"x"}`))
			return b[:len(b)-2]
		}(),
	}
	for name, raw := range cases {
		if err := os.WriteFile(c.path(k), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); ok {
			t.Fatalf("%s: corrupt entry served", name)
		}
		if _, err := os.Stat(c.path(k)); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt entry not deleted", name)
		}
	}
}

// entryBytes frames a payload exactly as diskPut would.
func entryBytes(t *testing.T, payload []byte) []byte {
	t.Helper()
	buf := make([]byte, diskHeaderSize+len(payload))
	copy(buf[:8], diskMagic[:])
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[16:24], checksum(payload))
	copy(buf[diskHeaderSize:], payload)
	return buf
}
