package runcache

import "blackforest/internal/obs"

// RegisterMetrics exposes a cache's counters as live series in r under the
// given metric-name prefix (e.g. prefix "bfserve_runcache" yields
// "bfserve_runcache_hits_total{layer=\"mem\"}", …). stats is called at
// scrape time, so the scrape always reflects the current counters and
// nothing is double-accounted. It takes a snapshot function rather than a
// *Cache[T] so any stats source — a profiler run cache, a serving-side
// cache — registers the same way regardless of its value type.
func RegisterMetrics(r *obs.Registry, prefix string, stats func() Stats) {
	get := func(f func(Stats) int64) func() float64 {
		return func() float64 { return float64(f(stats())) }
	}
	r.GaugeFunc(prefix+"_hits_total", "Run-cache lookups served from each layer.",
		get(func(s Stats) int64 { return s.MemHits }), obs.Label{Name: "layer", Value: "mem"})
	r.GaugeFunc(prefix+"_hits_total", "Run-cache lookups served from each layer.",
		get(func(s Stats) int64 { return s.DiskHits }), obs.Label{Name: "layer", Value: "disk"})
	r.GaugeFunc(prefix+"_misses_total", "Run-cache lookups that found nothing usable.",
		get(func(s Stats) int64 { return s.Misses }))
	r.GaugeFunc(prefix+"_coalesced_total", "Callers that shared another caller's in-flight computation.",
		get(func(s Stats) int64 { return s.Coalesced }))
	r.GaugeFunc(prefix+"_writes_total", "Disk entries written.",
		get(func(s Stats) int64 { return s.Writes }))
	r.GaugeFunc(prefix+"_write_errors_total", "Disk writes that failed (degrades to memory-only, never a wrong answer).",
		get(func(s Stats) int64 { return s.WriteErrors }))
	r.GaugeFunc(prefix+"_evictions_total", "Memory-layer LRU evictions.",
		get(func(s Stats) int64 { return s.Evictions }))
	r.GaugeFunc(prefix+"_bad_entries_total", "Corrupt disk entries discarded instead of served.",
		get(func(s Stats) int64 { return s.BadEntries }))
}
