// Package loadgen replays synthetic predict traffic against a running
// bfserve instance and reports throughput and latency quantiles. It is the
// measurement half of the serving story: the registry and coalescer decide
// how requests are scheduled, loadgen tells you what that scheduling costs
// at a given concurrency and offered rate.
//
// Request bodies are deterministic: request i's characteristic vector is a
// pure function of (Seed, i), sampled from per-characteristic distributions
// — typically derived from a bundle's training scales via DistsFromScaler —
// so two runs with the same seed offer the identical request sequence and
// results are comparable across server configurations.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blackforest/internal/core"
	"blackforest/internal/stats"
)

// CharDist is the sampling distribution of one characteristic: uniform on
// [Min, Max] with optional multiplicative jitter (each sample is scaled by
// 1 ± Jitter), so replayed traffic covers the model's trained range without
// being a fixed grid that caches trivially.
type CharDist struct {
	Name   string  `json:"name"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Jitter float64 `json:"jitter,omitempty"`
}

// sample draws this characteristic's value for one request from rng.
func (d CharDist) sample(rng *stats.RNG) float64 {
	v := d.Min + (d.Max-d.Min)*rng.Float64()
	if d.Jitter > 0 {
		v *= 1 + d.Jitter*(2*rng.Float64()-1)
	}
	return v
}

// DistsFromScaler derives per-characteristic distributions from a bundle's
// training scales (the max-abs value of each characteristic seen during
// fitting): uniform over [scale/20, scale] with 5% jitter, covering the
// trained range without extrapolating far outside it.
func DistsFromScaler(ps *core.ProblemScaler) []CharDist {
	scales := ps.CharacteristicScales()
	dists := make([]CharDist, 0, len(ps.CharNames))
	for _, name := range ps.CharNames {
		s := scales[name]
		if s <= 0 {
			s = 1
		}
		dists = append(dists, CharDist{Name: name, Min: s / 20, Max: s, Jitter: 0.05})
	}
	return dists
}

// Config configures one load-generation run.
type Config struct {
	// BaseURL is the bfserve root, e.g. "http://localhost:8391".
	BaseURL string
	// Model optionally routes requests to /v1/models/{Model}/predict;
	// empty replays against the legacy default-model route /v1/predict.
	Model string
	// N is the total number of predict requests to send.
	N int
	// Concurrency is the number of worker connections (0 = 8).
	Concurrency int
	// QPS caps the offered request rate; 0 sends as fast as the workers
	// can (closed loop).
	QPS float64
	// Seed makes the synthetic request sequence reproducible.
	Seed uint64
	// Chars are the per-characteristic sampling distributions; required.
	Chars []CharDist
	// Timeout bounds each request (0 = 10s).
	Timeout time.Duration
	// Client optionally overrides the HTTP client (httptest injection);
	// its Timeout field is left untouched.
	Client *http.Client
}

// Report is the JSON result of a run.
type Report struct {
	URL         string         `json:"url"`
	Model       string         `json:"model,omitempty"`
	Requests    int            `json:"requests"`
	Errors      int            `json:"errors"`
	StatusCount map[string]int `json:"status_counts"`
	Concurrency int            `json:"concurrency"`
	QPS         float64        `json:"target_qps,omitempty"`
	Seed        uint64         `json:"seed"`
	DurationMS  float64        `json:"duration_ms"`
	Throughput  float64        `json:"throughput_rps"`
	LatencyMS   Latency        `json:"latency_ms"`
}

// Latency summarizes per-request latency in milliseconds.
type Latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// body builds request i's JSON body: a fresh RNG seeded from (Seed, i)
// makes every request's vector independent of worker scheduling.
func body(cfg *Config, i int) []byte {
	rng := stats.NewRNG(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	var buf bytes.Buffer
	buf.WriteString(`{"chars":{`)
	for j, d := range cfg.Chars {
		if j > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q:%s", d.Name,
			strconv.FormatFloat(d.sample(rng), 'g', -1, 64))
	}
	buf.WriteString(`}}`)
	return buf.Bytes()
}

// Run replays cfg.N predict requests and reports throughput and latency.
// Non-2xx answers and transport failures count as errors; the run itself
// fails only on invalid configuration or a canceled context.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL is required")
	}
	if cfg.N <= 0 {
		return nil, errors.New("loadgen: N must be positive")
	}
	if len(cfg.Chars) == 0 {
		return nil, errors.New("loadgen: at least one characteristic distribution is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	url := cfg.BaseURL + "/v1/predict"
	if cfg.Model != "" {
		url = cfg.BaseURL + "/v1/models/" + cfg.Model + "/predict"
	}

	latencies := make([]float64, cfg.N) // ms; index = request number
	codes := make([]int, cfg.N)         // 0 = transport error
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.N || ctx.Err() != nil {
					return
				}
				if cfg.QPS > 0 {
					// Open-loop pacing: request i is due at start + i/QPS.
					due := start.Add(time.Duration(float64(i) / cfg.QPS * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				}
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url,
					bytes.NewReader(body(&cfg, i)))
				if err != nil {
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
				codes[i] = resp.StatusCode
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: run canceled: %w", err)
	}

	rep := &Report{
		URL:         url,
		Model:       cfg.Model,
		Requests:    cfg.N,
		StatusCount: make(map[string]int),
		Concurrency: cfg.Concurrency,
		QPS:         cfg.QPS,
		Seed:        cfg.Seed,
		DurationMS:  float64(elapsed) / float64(time.Millisecond),
	}
	ok := 0
	okLat := make([]float64, 0, cfg.N)
	var sum float64
	for i, code := range codes {
		switch {
		case code == 0:
			rep.Errors++
			rep.StatusCount["transport_error"]++
		case code >= 200 && code < 300:
			ok++
			rep.StatusCount[strconv.Itoa(code)]++
			okLat = append(okLat, latencies[i])
			sum += latencies[i]
		default:
			rep.Errors++
			rep.StatusCount[strconv.Itoa(code)]++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(ok) / elapsed.Seconds()
	}
	if len(okLat) > 0 {
		sort.Float64s(okLat)
		rep.LatencyMS = Latency{
			Mean: sum / float64(len(okLat)),
			P50:  pct(okLat, 0.50),
			P90:  pct(okLat, 0.90),
			P99:  pct(okLat, 0.99),
			Max:  okLat[len(okLat)-1],
		}
	}
	return rep, nil
}

// pct returns the nearest-rank q-quantile of sorted xs.
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
