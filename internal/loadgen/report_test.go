package loadgen

import (
	"bytes"
	"testing"
)

// TestPctEdgeCases pins the nearest-rank quantile on the degenerate inputs
// a short or failed run produces: no samples, one sample, identical
// samples.
func TestPctEdgeCases(t *testing.T) {
	qs := []float64{0, 0.5, 0.9, 0.99, 1}
	for _, q := range qs {
		if got := pct(nil, q); got != 0 {
			t.Errorf("pct(nil, %g) = %g, want 0", q, got)
		}
		if got := pct([]float64{7.5}, q); got != 7.5 {
			t.Errorf("pct([7.5], %g) = %g, want 7.5", q, got)
		}
		all := []float64{3, 3, 3, 3, 3}
		if got := pct(all, q); got != 3 {
			t.Errorf("pct(all-equal, %g) = %g, want 3", q, got)
		}
	}
}

// TestPctNearestRank checks the index arithmetic against hand-computed
// ranks: on n sorted samples, quantile q reads index int(q*(n-1)).
func TestPctNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 1},    // index 0
		{0.5, 5},  // index int(4.5) = 4
		{0.9, 9},  // index int(8.1) = 8
		{0.99, 9}, // index int(8.91) = 8
		{1, 10},   // index 9
	} {
		if got := pct(sorted, tc.q); got != tc.want {
			t.Errorf("pct(1..10, %g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

// TestReportGoldenJSON pins the report's exact JSON rendering — field
// names, order, indentation — so downstream consumers (CI dashboards,
// jq pipelines in the README) never break on a silent schema change.
func TestReportGoldenJSON(t *testing.T) {
	rep := &Report{
		URL:         "http://localhost:8391/v1/predict",
		Model:       "matmul",
		Requests:    100,
		Errors:      2,
		StatusCount: map[string]int{"200": 98, "503": 2},
		Concurrency: 8,
		QPS:         500,
		Seed:        1,
		DurationMS:  250.5,
		Throughput:  391.2,
		LatencyMS: Latency{
			Mean: 1.25,
			P50:  1,
			P90:  2.5,
			P99:  6.125,
			Max:  9.75,
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "url": "http://localhost:8391/v1/predict",
  "model": "matmul",
  "requests": 100,
  "errors": 2,
  "status_counts": {
    "200": 98,
    "503": 2
  },
  "concurrency": 8,
  "target_qps": 500,
  "seed": 1,
  "duration_ms": 250.5,
  "throughput_rps": 391.2,
  "latency_ms": {
    "mean": 1.25,
    "p50": 1,
    "p90": 2.5,
    "p99": 6.125,
    "max": 9.75
  }
}
`
	if buf.String() != golden {
		t.Errorf("report JSON drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), golden)
	}
}
