package loadgen

import (
	"context"
	"math"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"blackforest/internal/core"
	"blackforest/internal/dataset"
	"blackforest/internal/forest"
	"blackforest/internal/serve"
	"blackforest/internal/stats"
)

// trainScaler fits a small model on synthetic data (size drives the
// counters, counters drive time) for end-to-end replay tests.
func trainScaler(t testing.TB, seed uint64) *core.ProblemScaler {
	t.Helper()
	rng := stats.NewRNG(seed)
	n := 100
	sizes := make([]float64, n)
	driver := make([]float64, n)
	times := make([]float64, n)
	for i := 0; i < n; i++ {
		s := float64(64 * (1 + rng.Intn(64)))
		sizes[i] = s
		driver[i] = 3*s + rng.NormFloat64()
		times[i] = 0.001*s + 0.002*rng.NormFloat64()
	}
	frame, err := dataset.FromColumns(
		[]string{"size", "driver_counter", core.ResponseColumn},
		[][]float64{sizes, driver, times},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Forest = forest.Config{NTrees: 40}
	cfg.Seed = seed
	a, err := core.Analyze(frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := core.NewProblemScaler(a, 2, core.AutoModel)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestRunAgainstRegistry is the bfload smoke e2e: a two-model bfserve, an
// in-process replay against each route, and a report with every request
// delivered and sane latency quantiles.
func TestRunAgainstRegistry(t *testing.T) {
	dir := t.TempDir()
	psA, psB := trainScaler(t, 3), trainScaler(t, 9)
	if err := psA.SaveFile(filepath.Join(dir, "alpha.json")); err != nil {
		t.Fatal(err)
	}
	if err := psB.SaveFile(filepath.Join(dir, "beta.json")); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{ModelsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	for _, model := range []string{"", "beta"} {
		rep, err := Run(context.Background(), Config{
			BaseURL:     hs.URL,
			Model:       model,
			N:           200,
			Concurrency: 8,
			Seed:        7,
			Chars:       DistsFromScaler(psA),
			Client:      hs.Client(),
		})
		if err != nil {
			t.Fatalf("model %q: %v", model, err)
		}
		if rep.Requests != 200 {
			t.Fatalf("model %q: report counts %d requests, want 200", model, rep.Requests)
		}
		if rep.Errors != 0 {
			t.Fatalf("model %q: %d errors: %+v", model, rep.Errors, rep.StatusCount)
		}
		if rep.StatusCount["200"] != 200 {
			t.Fatalf("model %q: status counts %+v", model, rep.StatusCount)
		}
		if rep.Throughput <= 0 {
			t.Fatalf("model %q: throughput %v", model, rep.Throughput)
		}
		lat := rep.LatencyMS
		if lat.P50 <= 0 || lat.P90 < lat.P50 || lat.P99 < lat.P90 || lat.Max < lat.P99 {
			t.Fatalf("model %q: non-monotone latency quantiles: %+v", model, lat)
		}
		wantSuffix := "/v1/predict"
		if model != "" {
			wantSuffix = "/v1/models/beta/predict"
		}
		if !strings.HasSuffix(rep.URL, wantSuffix) {
			t.Fatalf("model %q: replayed %s", model, rep.URL)
		}
	}

	// An unknown model routes to 404s: every request errors, none deliver.
	rep, err := Run(context.Background(), Config{
		BaseURL: hs.URL, Model: "gamma", N: 20, Seed: 7,
		Chars:  DistsFromScaler(psA),
		Client: hs.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 20 || rep.StatusCount["404"] != 20 {
		t.Fatalf("unknown model replay: %+v", rep)
	}
}

// TestBodyDeterministicInSeed: request i's body is a pure function of
// (seed, i) — worker scheduling cannot change what is offered.
func TestBodyDeterministicInSeed(t *testing.T) {
	cfg := &Config{Seed: 42, Chars: []CharDist{
		{Name: "size", Min: 64, Max: 4096, Jitter: 0.05},
		{Name: "threads", Min: 1, Max: 32},
	}}
	for i := 0; i < 10; i++ {
		a, b := body(cfg, i), body(cfg, i)
		if string(a) != string(b) {
			t.Fatalf("request %d body not deterministic:\n%s\n%s", i, a, b)
		}
		if !strings.HasPrefix(string(a), `{"chars":{"size":`) {
			t.Fatalf("request %d body malformed: %s", i, a)
		}
	}
	if string(body(cfg, 0)) == string(body(cfg, 1)) {
		t.Fatal("consecutive requests sampled identical vectors")
	}
	other := &Config{Seed: 43, Chars: cfg.Chars}
	if string(body(cfg, 0)) == string(body(other, 0)) {
		t.Fatal("different seeds sampled identical vectors")
	}
}

// TestDistsFromScalerCoversModelInputs: derived distributions name every
// model characteristic with positive, ordered bounds.
func TestDistsFromScalerCoversModelInputs(t *testing.T) {
	ps := trainScaler(t, 3)
	dists := DistsFromScaler(ps)
	if len(dists) != len(ps.CharNames) {
		t.Fatalf("%d dists for %d characteristics", len(dists), len(ps.CharNames))
	}
	for i, d := range dists {
		if d.Name != ps.CharNames[i] {
			t.Fatalf("dist %d names %q, want %q", i, d.Name, ps.CharNames[i])
		}
		if !(d.Min > 0) || !(d.Max > d.Min) || math.IsNaN(d.Max) {
			t.Fatalf("dist %q has bad bounds: %+v", d.Name, d)
		}
	}
}

// TestRunValidatesConfig: misconfiguration fails fast, before any traffic.
func TestRunValidatesConfig(t *testing.T) {
	cases := []Config{
		{},                          // no URL
		{BaseURL: "http://x"},       // no N
		{BaseURL: "http://x", N: 1}, // no chars
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d: Run accepted %+v", i, cfg)
		}
	}
}
