package optimize

import (
	"testing"

	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
)

// TestRegimePinning pins the classifier's diagnosis for every kernel ×
// device pair in the stock suite (plus two configurations constructed to
// reach the rarer regimes). These are the simulator's own cycle
// accountings read through the classifier, so a change here means either
// the timing model or the classification thresholds moved — both worth
// noticing.
func TestRegimePinning(t *testing.T) {
	mk := map[string]func() Tunable{
		"matmul-512": func() Tunable { return &kernels.MatMul{N: 512, Seed: 1} },
		"reduce0":    func() Tunable { return &kernels.Reduction{Variant: 0, N: 1 << 20, BlockSize: 256, Seed: 1} },
		"reduce1":    func() Tunable { return &kernels.Reduction{Variant: 1, N: 1 << 20, BlockSize: 256, Seed: 1} },
		"reduce6":    func() Tunable { return &kernels.Reduction{Variant: 6, N: 1 << 20, BlockSize: 256, Seed: 1} },
		"reduce6-starve": func() Tunable {
			return &kernels.Reduction{Variant: 6, N: 1 << 20, BlockSize: 256, MaxBlocks: 8, Seed: 1}
		},
		"transpose0": func() Tunable { return &kernels.Transpose{Variant: 0, N: 1024, Seed: 1} },
		"transpose1": func() Tunable { return &kernels.Transpose{Variant: 1, N: 1024, Seed: 1} },
		"transpose2": func() Tunable { return &kernels.Transpose{Variant: 2, N: 1024, Seed: 1} },
		"histogram0-skew": func() Tunable {
			return &kernels.Histogram{Variant: 0, N: 1 << 20, Skew: 0.6, Seed: 1}
		},
		"histogram1": func() Tunable { return &kernels.Histogram{Variant: 1, N: 1 << 20, Seed: 1} },
	}
	cases := []struct {
		kernel string
		device string
		want   Regime
	}{
		// The naive transpose's uncoalesced writes and the final
		// reduction's streaming loads saturate DRAM on both devices;
		// matmul at 512 saturates Fermi's bus but on Kepler (faster bus,
		// lower clock:bandwidth ratio) memory time is exposed latency.
		{"matmul-512", "GTX580", RegimeMemBandwidth},
		{"matmul-512", "K20m", RegimeLatency},
		// The early reduction variants are bound by instruction issue
		// (divergent/interleaved addressing costs issue slots, not
		// replays, in this model).
		{"reduce0", "GTX580", RegimeCompute},
		{"reduce0", "K20m", RegimeCompute},
		{"reduce1", "GTX580", RegimeCompute},
		{"reduce1", "K20m", RegimeCompute},
		{"reduce6", "GTX580", RegimeMemBandwidth},
		{"reduce6", "K20m", RegimeMemBandwidth},
		// Starving the grid to 8 blocks exposes latency on Kepler's 13
		// SMs (occupancy 0.08); Fermi's narrower bus still saturates.
		{"reduce6-starve", "GTX580", RegimeMemBandwidth},
		{"reduce6-starve", "K20m", RegimeUnderOccupied},
		{"transpose0", "GTX580", RegimeMemBandwidth},
		{"transpose0", "K20m", RegimeMemBandwidth},
		// The unpadded shared-memory tile hits 32-way bank conflicts.
		{"transpose1", "GTX580", RegimeReplay},
		{"transpose1", "K20m", RegimeReplay},
		{"transpose2", "GTX580", RegimeMemBandwidth},
		{"transpose2", "K20m", RegimeMemBandwidth},
		// Skewed input serializes global atomics on bin 0.
		{"histogram0-skew", "GTX580", RegimeAtomic},
		{"histogram0-skew", "K20m", RegimeAtomic},
		{"histogram1", "GTX580", RegimeMemBandwidth},
		{"histogram1", "K20m", RegimeMemBandwidth},
	}
	for _, c := range cases {
		t.Run(c.kernel+"/"+c.device, func(t *testing.T) {
			dev, err := gpusim.LookupDevice(c.device)
			if err != nil {
				t.Fatal(err)
			}
			p := profiler.New(dev, profiler.Options{MaxSimBlocks: 24, NoiseSigma: -1})
			prof, err := p.Run(mk[c.kernel]())
			if err != nil {
				t.Fatal(err)
			}
			got := Classify(dev, prof)
			if got.Regime != c.want {
				t.Errorf("regime = %s, want %s (%s)", got.Regime, c.want, got.Why)
			}
		})
	}
}

// TestClassificationEvidence spot-checks the numeric evidence behind two
// contrasting diagnoses.
func TestClassificationEvidence(t *testing.T) {
	dev, _ := gpusim.LookupDevice("GTX580")
	p := profiler.New(dev, profiler.Options{MaxSimBlocks: 24, NoiseSigma: -1})

	prof, err := p.Run(&kernels.Transpose{Variant: 0, N: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(dev, prof)
	if !c.Point.MemorySide {
		t.Errorf("transpose0 should sit on the memory side (intensity %.3f, ridge %.3f)",
			c.Point.OpsPerByte, c.Roofline.RidgeOpsPerByte)
	}
	if c.BandwidthUtil < 0.8 {
		t.Errorf("transpose0 bandwidth utilization %.2f, expected near peak", c.BandwidthUtil)
	}
	if c.Why == "" {
		t.Error("classification has no justification")
	}

	prof, err = p.Run(&kernels.Histogram{Variant: 0, N: 1 << 20, Skew: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c = Classify(dev, prof)
	if c.Shares["atomic serialization"] < 0.5 {
		t.Errorf("skewed histogram atomic share %.2f, expected dominant", c.Shares["atomic serialization"])
	}
	sum := 0.0
	for _, s := range c.Shares {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown shares sum to %.4f, want 1 (PinTotal partition)", sum)
	}
}

// TestRooflinePlacement checks the placement arithmetic on a synthetic
// profile with hand-computable numbers.
func TestRooflinePlacement(t *testing.T) {
	dev, _ := gpusim.LookupDevice("GTX580")
	rl := NewRoofline(dev)
	if rl.PeakGOps != float64(dev.SMs*dev.CoresPerSM)*dev.ClockGHz {
		t.Fatalf("PeakGOps = %v", rl.PeakGOps)
	}
	// One second of work: cycles = clock in Hz.
	p := &profiler.Profile{
		Cycles:     dev.ClockGHz * 1e9,
		ComputeOps: 100e9,
		DRAMBytes:  50e9,
	}
	pt := rl.Place(p)
	if pt.OpsPerByte != 2 {
		t.Errorf("intensity = %v, want 2", pt.OpsPerByte)
	}
	if pt.AchievedGOps != 100 {
		t.Errorf("achieved = %v GOps, want 100", pt.AchievedGOps)
	}
	if pt.AchievedGBps != 50 {
		t.Errorf("achieved = %v GB/s, want 50", pt.AchievedGBps)
	}
	wantCeiling := 2 * rl.PeakGBps // left of the ridge
	if pt.CeilingGOps != wantCeiling {
		t.Errorf("ceiling = %v, want %v", pt.CeilingGOps, wantCeiling)
	}
	if !pt.MemorySide {
		t.Error("intensity 2 on GTX580 should be memory side")
	}
}
