package optimize

import (
	"bytes"
	"strings"
	"testing"

	"blackforest/internal/gpusim"
)

// TestRenderBreakdownGolden pins the exact rendered table — the format
// blackforest -explain has always printed and -optimize now shares. Any
// drift here changes user-visible CLI output.
func TestRenderBreakdownGolden(t *testing.T) {
	b := &gpusim.BottleneckBreakdown{
		IssueCycles: 1234.5, MemLatencyCycles: 56789, BarrierCycles: 100,
		SharedReplayCycles: 0, UncoalescedCycles: 876.5, AtomicCycles: 1000,
	}
	var buf bytes.Buffer
	if err := RenderBreakdown(&buf, b, b.Total()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"category                  cycles     share",
		"------------------------  ---------  -----",
		"issue/arithmetic          1234       2.1%",
		"memory latency/bandwidth  5.679e+04  94.6%",
		"barrier wait              100        0.2%",
		"shared-memory replay      0          0.0%",
		"uncoalesced transactions  876.5      1.5%",
		"atomic serialization      1000       1.7%",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("rendered table drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRenderBreakdownZeroTotal: a zero-cycle breakdown renders 0.0%
// shares rather than NaN.
func TestRenderBreakdownZeroTotal(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderBreakdown(&buf, &gpusim.BottleneckBreakdown{}, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatalf("zero-total breakdown rendered NaN:\n%s", buf.String())
	}
}

func TestParamsString(t *testing.T) {
	got := ParamsString(map[string]int{"unroll": 0, "tile": 32})
	if got != "tile=32 unroll=0" {
		t.Fatalf("ParamsString = %q, want sorted \"tile=32 unroll=0\"", got)
	}
	if got := ParamsString(nil); got != "" {
		t.Fatalf("ParamsString(nil) = %q", got)
	}
}

// TestResultRender smoke-checks the full report renderer on a synthetic
// result (sections present, no panics on edge values).
func TestResultRender(t *testing.T) {
	res := &Result{
		Workload: "fake", Device: "GTX580",
		SearchSimBlocks: 4, ValidateSimBlocks: 8, MinGainPct: 1,
		Classification: Classification{
			Regime: RegimeMemBandwidth, Why: "test",
			Shares: map[string]float64{},
		},
		FinalRegime: RegimeCompute,
		Baseline:    Variant{Params: map[string]int{"x": 1}, Cycles: 1000},
		Final:       Variant{Params: map[string]int{"x": 2}, Cycles: 900},
		GainPct:     10,
		Decisions: []Decision{
			{Step: 1, Transform: Transform{"x", 2}, From: 1, SearchCycles: 910,
				SearchGainPct: 9, ValidatedCycles: 900, ValidatedGainPct: 10,
				Outcome: OutcomeAccepted, Reason: "validated gain 10.00% over incumbent"},
			{Step: 1, Transform: Transform{"x", 3}, From: 1, Outcome: OutcomeInvalid, Reason: "bad"},
		},
	}
	res.recount()
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== optimize: fake on GTX580 ==",
		"regime: memory-bandwidth-bound",
		"1 accepted", "1 invalid",
		"baseline: x=1",
		"final:    x=2",
		"10.0% fewer cycles",
		"cycle accounting, baseline:",
		"cycle accounting, optimized:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
