package optimize

import (
	"reflect"
	"testing"
)

func TestParseTransform(t *testing.T) {
	cases := []struct {
		in      string
		want    Transform
		wantErr bool
	}{
		{"tile=32", Transform{"tile", 32}, false},
		{"block_rows=8", Transform{"block_rows", 8}, false},
		{"unroll=0", Transform{"unroll", 0}, false},
		{" tile = 32 ", Transform{"tile", 32}, false},
		{"tile", Transform{}, true},
		{"=32", Transform{}, true},
		{"tile=", Transform{}, true},
		{"tile=abc", Transform{}, true},
		{"tile=-4", Transform{}, true},
		{"Tile=32", Transform{}, true},
		{"9tile=32", Transform{}, true},
		{"til e=32", Transform{}, true},
		{"tile=3.5", Transform{}, true},
	}
	for _, c := range cases {
		got, err := ParseTransform(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseTransform(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseTransform(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTransformRoundTrip(t *testing.T) {
	for _, tr := range []Transform{{"tile", 32}, {"unroll", 0}, {"block_rows", 16}} {
		got, err := ParseTransform(tr.String())
		if err != nil {
			t.Fatalf("round trip %v: %v", tr, err)
		}
		if got != tr {
			t.Fatalf("round trip %v -> %v", tr, got)
		}
	}
}

func TestParseTransforms(t *testing.T) {
	got, err := ParseTransforms("tile=32, unroll=4,block_rows=2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Transform{{"tile", 32}, {"unroll", 4}, {"block_rows", 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got, err := ParseTransforms("  "); err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", got, err)
	}
	if _, err := ParseTransforms("tile=32,tile=32"); err == nil {
		t.Fatal("duplicate transform accepted")
	}
	if _, err := ParseTransforms("tile=32,,unroll=4"); err == nil {
		t.Fatal("empty element accepted")
	}
}

// FuzzParseTransform checks the parser never panics and that every
// accepted spec round-trips through String to the same transform.
func FuzzParseTransform(f *testing.F) {
	for _, seed := range []string{"tile=32", "unroll=0", "block_rows=8", "=", "a=b", "x=-1",
		"tile=32,unroll=4", " tile = 1 ", "_x=2", "a=99999999999999999999"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseTransform(s)
		if err != nil {
			return
		}
		if tr.Param == "" {
			t.Fatalf("ParseTransform(%q) accepted an empty parameter name", s)
		}
		if tr.Value < 0 {
			t.Fatalf("ParseTransform(%q) accepted negative value %d", s, tr.Value)
		}
		back, err := ParseTransform(tr.String())
		if err != nil || back != tr {
			t.Fatalf("ParseTransform(%q) = %v does not round-trip: %v, %v", s, tr, back, err)
		}
	})
}
