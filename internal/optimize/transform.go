// Package optimize closes the loop the paper leaves open: having located a
// kernel's bottleneck (the analysis pipeline) and predicted its runtime
// (the scaling models), it classifies the bottleneck regime against the
// device roofline and searches launch-configuration transformations —
// block geometry, tile size, unroll factor — for validated cycle
// improvements, re-simulating every candidate through the shared run
// cache. Every accepted step is recorded in an auditable decision log and
// every regression found at validation fidelity is rolled back.
package optimize

import (
	"fmt"
	"strconv"
	"strings"

	"blackforest/internal/profiler"
)

// Tunable is a workload exposing launch-configuration parameters the
// optimizer may transform. It is implemented structurally by the kernels
// package (which cannot import this one): Params reports the effective
// value of every tunable parameter, ParamDomain the legal values of one,
// and WithParam builds a fresh, unplanned copy with one parameter changed
// — the original is never mutated, so the incumbent stays runnable.
type Tunable interface {
	profiler.Workload
	Params() map[string]int
	ParamDomain(name string) []int
	WithParam(name string, value int) (profiler.Workload, error)
}

// Transform is one launch-configuration edit: set parameter Param to
// Value.
type Transform struct {
	Param string `json:"param"`
	Value int    `json:"value"`
}

// String renders the transform in the parsable "param=value" form.
func (t Transform) String() string {
	return fmt.Sprintf("%s=%d", t.Param, t.Value)
}

// ParseTransform parses one "param=value" spec. Parameter names are the
// kernels' launch-config identifiers: lowercase letters, digits and
// underscores, starting with a letter.
func ParseTransform(s string) (Transform, error) {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return Transform{}, fmt.Errorf("optimize: transform %q is not param=value", s)
	}
	name := strings.TrimSpace(s[:eq])
	if err := checkParamName(name); err != nil {
		return Transform{}, err
	}
	v, err := strconv.Atoi(strings.TrimSpace(s[eq+1:]))
	if err != nil {
		return Transform{}, fmt.Errorf("optimize: transform %q has a non-integer value", s)
	}
	if v < 0 {
		return Transform{}, fmt.Errorf("optimize: transform %q has a negative value", s)
	}
	return Transform{Param: name, Value: v}, nil
}

// ParseTransforms parses a comma-separated list of "param=value" specs,
// the -transforms flag format. An empty string means no restriction
// (search every parameter's full domain) and returns nil.
func ParseTransforms(s string) ([]Transform, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]Transform, 0, len(parts))
	seen := make(map[Transform]bool, len(parts))
	for _, part := range parts {
		t, err := ParseTransform(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if seen[t] {
			return nil, fmt.Errorf("optimize: duplicate transform %s", t)
		}
		seen[t] = true
		out = append(out, t)
	}
	return out, nil
}

func checkParamName(name string) error {
	if name == "" {
		return fmt.Errorf("optimize: empty parameter name")
	}
	for i, r := range name {
		lower := r >= 'a' && r <= 'z'
		digit := r >= '0' && r <= '9'
		if i == 0 && !lower {
			return fmt.Errorf("optimize: parameter %q must start with a lowercase letter", name)
		}
		if !lower && !digit && r != '_' {
			return fmt.Errorf("optimize: parameter %q has invalid character %q", name, r)
		}
	}
	return nil
}
