package optimize

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"blackforest/internal/gpusim"
	"blackforest/internal/report"
)

// RenderBreakdown writes the cycle-accounting table for one breakdown:
// category, cycles, and share of the total. This is the single source of
// the table blackforest -explain and -optimize both print.
func RenderBreakdown(w io.Writer, b *gpusim.BottleneckBreakdown, totalCycles float64) error {
	cats := BreakdownCategories(b)
	rows := make([][]string, 0, len(cats))
	for _, c := range cats {
		share := 0.0
		if totalCycles > 0 {
			share = 100 * c.Cycles / totalCycles
		}
		rows = append(rows, []string{c.Name, fmt.Sprintf("%.4g", c.Cycles), fmt.Sprintf("%.1f%%", share)})
	}
	return report.Table(w, []string{"category", "cycles", "share"}, rows)
}

// ParamsString renders a parameter map as sorted "k=v" pairs — the
// stable one-line form the reports and logs use.
func ParamsString(params map[string]int) string {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, params[name]))
	}
	return strings.Join(parts, " ")
}

// Render writes the human-readable optimization report: the regime
// diagnosis with its roofline evidence, the decision table, the
// before/after configurations, and the before/after cycle accounting.
func (r *Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "== optimize: %s on %s ==\n\n", r.Workload, r.Device)

	c := &r.Classification
	fmt.Fprintf(w, "regime: %s — %s\n", c.Regime, c.Why)
	side := "compute"
	if c.Point.MemorySide {
		side = "memory"
	}
	fmt.Fprintf(w, "roofline: intensity %.3g ops/B (ridge %.3g) — %s side; %.1f GOps/s achieved, ceiling %.1f of %.1f peak\n",
		c.Point.OpsPerByte, c.Roofline.RidgeOpsPerByte, side,
		c.Point.AchievedGOps, c.Point.CeilingGOps, c.Roofline.PeakGOps)
	fmt.Fprintf(w, "occupancy %.2f; DRAM %.1f GB/s of %.1f peak (%.0f%%)\n\n",
		c.Occupancy, c.Point.AchievedGBps, c.Roofline.PeakGBps, 100*c.BandwidthUtil)

	fmt.Fprintf(w, "search: %d candidates tried, %d accepted, %d rejected, %d rolled back, %d invalid (min gain %.2g%%, sim blocks %d→%d)\n",
		r.Tried, r.Accepted, r.Rejected, r.RolledBack, r.Invalid,
		r.MinGainPct, r.SearchSimBlocks, r.ValidateSimBlocks)
	if len(r.Decisions) > 0 {
		rows := make([][]string, 0, len(r.Decisions))
		for _, d := range r.Decisions {
			search, validated := "-", "-"
			if d.Outcome != OutcomeInvalid {
				search = fmt.Sprintf("%.4g (%+.1f%%)", d.SearchCycles, d.SearchGainPct)
			}
			if d.ValidatedCycles != 0 {
				validated = fmt.Sprintf("%.4g (%+.1f%%)", d.ValidatedCycles, d.ValidatedGainPct)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", d.Step),
				fmt.Sprintf("%s (from %d)", d.Transform, d.From),
				search, validated, string(d.Outcome),
			})
		}
		if err := report.Table(w, []string{"step", "transform", "search cycles", "validated", "outcome"}, rows); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "\nbaseline: %s — %.4g cycles (%.4f ms, occupancy %.2f)\n",
		ParamsString(r.Baseline.Params), r.Baseline.Cycles, r.Baseline.TimeMS, r.Baseline.Occupancy)
	fmt.Fprintf(w, "final:    %s — %.4g cycles (%.4f ms, occupancy %.2f)",
		ParamsString(r.Final.Params), r.Final.Cycles, r.Final.TimeMS, r.Final.Occupancy)
	if r.Accepted > 0 {
		fmt.Fprintf(w, " — %.1f%% fewer cycles, regime now %s", r.GainPct, r.FinalRegime)
	} else {
		fmt.Fprintf(w, " — unchanged")
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "\ncycle accounting, baseline:\n")
	if err := RenderBreakdown(w, &r.Baseline.Breakdown, r.Baseline.Cycles); err != nil {
		return err
	}
	if r.Accepted > 0 {
		fmt.Fprintf(w, "\ncycle accounting, optimized:\n")
		if err := RenderBreakdown(w, &r.Final.Breakdown, r.Final.Cycles); err != nil {
			return err
		}
	}
	return nil
}
