package optimize

import (
	"math"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// Roofline is a device's roofline model: the flat compute ceiling
// (PeakGOps, in billions of thread-ops per second, the unit the
// simulator's alu term charges), the memory-bandwidth slope (PeakGBps),
// and the ridge point where they meet. A kernel whose arithmetic
// intensity falls left of the ridge cannot exceed the bandwidth slope no
// matter how well it computes; right of the ridge the compute ceiling
// binds.
type Roofline struct {
	Device          string  `json:"device"`
	PeakGOps        float64 `json:"peak_gops"`
	PeakGBps        float64 `json:"peak_gbps"`
	RidgeOpsPerByte float64 `json:"ridge_ops_per_byte"`
	clockGHz        float64
}

// NewRoofline derives the roofline from a device's peak rates.
func NewRoofline(dev *gpusim.Device) Roofline {
	return Roofline{
		Device:          dev.Name,
		PeakGOps:        dev.PeakGOps(),
		PeakGBps:        dev.MemBandwidthGBps,
		RidgeOpsPerByte: dev.RidgeOpsPerByte(),
		clockGHz:        dev.ClockGHz,
	}
}

// Point is one profiled run placed on the roofline.
type Point struct {
	// OpsPerByte is the run's arithmetic intensity: total thread-ops per
	// DRAM byte moved. +Inf when the run touches no DRAM.
	OpsPerByte float64 `json:"ops_per_byte"`
	// AchievedGOps and AchievedGBps are the run's realized compute and
	// DRAM throughput over the modeled (noise-free) cycle time.
	AchievedGOps float64 `json:"achieved_gops"`
	AchievedGBps float64 `json:"achieved_gbps"`
	// CeilingGOps is the roofline bound at this intensity:
	// min(PeakGOps, OpsPerByte·PeakGBps).
	CeilingGOps float64 `json:"ceiling_gops"`
	// Utilization is AchievedGOps/CeilingGOps — how close the run sits
	// under its own roof.
	Utilization float64 `json:"utilization"`
	// MemorySide is true when the intensity is left of the ridge point,
	// i.e. the bandwidth slope is the binding ceiling.
	MemorySide bool `json:"memory_side"`
}

// Place positions one profile on the roofline using its modeled cycles
// (never the noisy measured time: placement must be deterministic).
func (r Roofline) Place(p *profiler.Profile) Point {
	var pt Point
	seconds := p.Cycles / (r.clockGHz * 1e9)
	if p.DRAMBytes > 0 {
		pt.OpsPerByte = p.ComputeOps / p.DRAMBytes
	} else {
		pt.OpsPerByte = math.Inf(1)
	}
	if seconds > 0 {
		pt.AchievedGOps = p.ComputeOps / seconds / 1e9
		pt.AchievedGBps = p.DRAMBytes / seconds / 1e9
	}
	pt.CeilingGOps = math.Min(r.PeakGOps, pt.OpsPerByte*r.PeakGBps)
	if pt.CeilingGOps > 0 {
		pt.Utilization = pt.AchievedGOps / pt.CeilingGOps
	}
	pt.MemorySide = pt.OpsPerByte < r.RidgeOpsPerByte
	return pt
}
