package optimize

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"blackforest/internal/gpusim"
	"blackforest/internal/obs"
	"blackforest/internal/profiler"
	"blackforest/internal/runcache"
)

// LaneOptimize is the trace lane for optimizer spans and decision
// instants (simulation work itself shows on the worker lanes).
const LaneOptimize = -2

// Search defaults.
const (
	// DefaultSearchSimBlocks is the low-fidelity block cap candidates
	// are scored at.
	DefaultSearchSimBlocks = 8
	// DefaultValidateSimBlocks is the high-fidelity cap every would-be
	// accepted candidate is re-simulated at before the incumbent moves.
	DefaultValidateSimBlocks = 24
	// DefaultMinGainPct is the validated cycle improvement (percent)
	// below which a candidate is not worth accepting.
	DefaultMinGainPct = 1.0
	// DefaultMaxSteps bounds the greedy search depth.
	DefaultMaxSteps = 8
)

// Config configures one optimization search.
type Config struct {
	// Device is the simulated GPU (required).
	Device *gpusim.Device
	// SearchSimBlocks and ValidateSimBlocks are the two simulation
	// fidelities: candidates are ranked at the cheap search cap, and the
	// best is confirmed at the validation cap before it may replace the
	// incumbent. 0 selects the defaults.
	SearchSimBlocks   int
	ValidateSimBlocks int
	// MinGainPct is the acceptance threshold, in percent of the
	// incumbent's cycles; it guards both fidelities (a candidate below
	// it at search fidelity is rejected without validation; one below it
	// at validation fidelity is rolled back). 0 selects the default;
	// negative means any non-regression.
	MinGainPct float64
	// MaxSteps bounds accepted transformations (0 = default).
	MaxSteps int
	// Transforms optionally restricts the search to an explicit menu of
	// edits; nil searches every tunable parameter's full domain.
	Transforms []Transform
	// Seed drives the profiler's workload identity (the optimizer
	// itself is deterministic; simulations run noise-free).
	Seed uint64
	// Cache, Gate and Tracer are threaded into every candidate
	// simulation — repeated searches hit the run cache bit-identically.
	Cache  *runcache.Cache[*profiler.Profile]
	Gate   profiler.Gate
	Tracer *obs.Tracer

	// searchRun and validateRun override the two profiling fidelities in
	// white-box tests (e.g. to force a search/validation disagreement
	// and observe the rollback); nil uses real profilers.
	searchRun   func(profiler.Workload) (*profiler.Profile, error)
	validateRun func(profiler.Workload) (*profiler.Profile, error)
}

func (c Config) withDefaults() Config {
	if c.SearchSimBlocks == 0 {
		c.SearchSimBlocks = DefaultSearchSimBlocks
	}
	if c.ValidateSimBlocks == 0 {
		c.ValidateSimBlocks = DefaultValidateSimBlocks
	}
	if c.MinGainPct == 0 {
		c.MinGainPct = DefaultMinGainPct
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	return c
}

func (c Config) profiler(simBlocks int) func(profiler.Workload) (*profiler.Profile, error) {
	return profiler.New(c.Device, profiler.Options{
		MaxSimBlocks: simBlocks,
		NoiseSigma:   -1,
		Seed:         c.Seed,
		Cache:        c.Cache,
		Gate:         c.Gate,
		Tracer:       c.Tracer,
	}).Run
}

// Outcome is the fate of one candidate transformation.
type Outcome string

const (
	// OutcomeAccepted: the candidate won at search fidelity and its gain
	// held up at validation fidelity — it became the incumbent.
	OutcomeAccepted Outcome = "accepted"
	// OutcomeRejected: the search-fidelity gain was below threshold; the
	// candidate was not validated.
	OutcomeRejected Outcome = "rejected"
	// OutcomeRolledBack: the candidate cleared the search threshold but
	// regressed (or gained too little) at validation fidelity — the
	// incumbent was kept and the transform banned for this search.
	OutcomeRolledBack Outcome = "rolled-back"
	// OutcomeInvalid: the candidate could not be built or simulated
	// (illegal parameter combination for this problem size).
	OutcomeInvalid Outcome = "invalid"
)

// Decision is one row of the auditable search log: a candidate
// transformation, the evidence gathered about it, and its fate.
type Decision struct {
	Step      int       `json:"step"`
	Transform Transform `json:"transform"`
	// From is the parameter's value in the incumbent.
	From int `json:"from"`
	// SearchCycles and SearchGainPct are the low-fidelity evidence
	// (gain is relative to the incumbent at the same fidelity).
	SearchCycles  float64 `json:"search_cycles,omitempty"`
	SearchGainPct float64 `json:"search_gain_pct,omitempty"`
	// ValidatedCycles and ValidatedGainPct are filled only for
	// candidates that reached validation (accepted or rolled back).
	ValidatedCycles  float64 `json:"validated_cycles,omitempty"`
	ValidatedGainPct float64 `json:"validated_gain_pct,omitempty"`
	Outcome          Outcome `json:"outcome"`
	Reason           string  `json:"reason"`
}

// Variant is one launch configuration with its validated measurements.
type Variant struct {
	Params    map[string]int             `json:"params"`
	Cycles    float64                    `json:"cycles"`
	TimeMS    float64                    `json:"time_ms"`
	Occupancy float64                    `json:"occupancy"`
	Breakdown gpusim.BottleneckBreakdown `json:"breakdown"`
}

func makeVariant(w Tunable, p *profiler.Profile) Variant {
	params := make(map[string]int, len(w.Params()))
	for k, v := range w.Params() {
		params[k] = v
	}
	return Variant{
		Params:    params,
		Cycles:    p.Cycles,
		TimeMS:    p.ModelTimeMS,
		Occupancy: p.Metrics["achieved_occupancy"],
		Breakdown: p.Breakdown,
	}
}

// Result is one kernel's optimization outcome: the regime diagnosis, the
// baseline and final configurations at validation fidelity, and the full
// decision log. It doubles as the serialized decision-log format
// (WriteLog) and is reproducible: Replay re-derives Final from Baseline
// plus the accepted decisions and checks the cycles bit-exactly.
type Result struct {
	Workload string `json:"workload"`
	Device   string `json:"device"`
	// Search configuration, recorded for reproducibility.
	SearchSimBlocks   int     `json:"search_sim_blocks"`
	ValidateSimBlocks int     `json:"validate_sim_blocks"`
	MinGainPct        float64 `json:"min_gain_pct"`
	Seed              uint64  `json:"seed"`

	Classification Classification `json:"classification"`
	// FinalRegime is the regime of the optimized configuration.
	FinalRegime Regime  `json:"final_regime"`
	Baseline    Variant `json:"baseline"`
	Final       Variant `json:"final"`
	// GainPct is the validated improvement from baseline to final, in
	// percent of baseline cycles (≥ 0 by construction: every accepted
	// step is validated, every regression rolled back).
	GainPct   float64    `json:"gain_pct"`
	Decisions []Decision `json:"decisions"`

	Tried, Accepted, Rejected, RolledBack, Invalid int `json:"-"`
}

// WriteLog serializes the decision log as indented JSON. The encoding is
// deterministic: map keys sort, and the search itself is noise-free, so
// two searches from the same seed write byte-identical logs.
func (r *Result) WriteLog(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadLog deserializes a decision log written by WriteLog.
func ReadLog(rd io.Reader) (*Result, error) {
	var r Result
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("optimize: reading decision log: %w", err)
	}
	r.recount()
	return &r, nil
}

func (r *Result) recount() {
	r.Tried, r.Accepted, r.Rejected, r.RolledBack, r.Invalid = 0, 0, 0, 0, 0
	for _, d := range r.Decisions {
		r.Tried++
		switch d.Outcome {
		case OutcomeAccepted:
			r.Accepted++
		case OutcomeRejected:
			r.Rejected++
		case OutcomeRolledBack:
			r.RolledBack++
		case OutcomeInvalid:
			r.Invalid++
		}
	}
}

// candidate is one menu entry under evaluation.
type candidate struct {
	tr      Transform
	from    int
	order   int // menu position, the deterministic tiebreak
	w       Tunable
	profile *profiler.Profile
	err     error
}

// Optimize runs the guarded greedy search: classify the baseline, then
// repeatedly score every legal single-parameter edit of the incumbent at
// search fidelity, validate the most promising at validation fidelity,
// and accept it only if the validated gain clears MinGainPct — otherwise
// roll back to the incumbent and try the next candidate. The search
// stops when a step accepts nothing or MaxSteps transformations have
// been accepted. It is fully deterministic: simulations are noise-free,
// candidates are enumerated in sorted parameter order, and ranking ties
// break by menu position.
func Optimize(w Tunable, cfg Config) (*Result, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("optimize: Config.Device is required")
	}
	cfg = cfg.withDefaults()
	search, validate := cfg.searchRun, cfg.validateRun
	if search == nil {
		search = cfg.profiler(cfg.SearchSimBlocks)
	}
	if validate == nil {
		validate = cfg.profiler(cfg.ValidateSimBlocks)
	}
	if tr := cfg.Tracer; tr.Enabled() {
		tr.SetLaneName(LaneOptimize, "optimize")
	}
	span := cfg.Tracer.Begin(LaneOptimize, "optimize "+w.Name()).
		Arg("device", cfg.Device.Name)
	defer span.End()

	baseValid, err := validate(w)
	if err != nil {
		return nil, fmt.Errorf("optimize: baseline validation run: %w", err)
	}
	baseSearch, err := search(w)
	if err != nil {
		return nil, fmt.Errorf("optimize: baseline search run: %w", err)
	}

	res := &Result{
		Workload:          w.Name(),
		Device:            cfg.Device.Name,
		SearchSimBlocks:   cfg.SearchSimBlocks,
		ValidateSimBlocks: cfg.ValidateSimBlocks,
		MinGainPct:        cfg.MinGainPct,
		Seed:              cfg.Seed,
		Classification:    Classify(cfg.Device, baseValid),
		Baseline:          makeVariant(w, baseValid),
	}

	incumbent := w
	incValidCycles := baseValid.Cycles
	incSearchCycles := baseSearch.Cycles
	finalProfile := baseValid
	banned := make(map[Transform]bool)

	for step := 1; step <= cfg.MaxSteps; step++ {
		cands := enumerate(incumbent, cfg.Transforms, banned)
		if len(cands) == 0 {
			break
		}
		for i := range cands {
			c := &cands[i]
			cw, err := incumbent.WithParam(c.tr.Param, c.tr.Value)
			if err != nil {
				c.err = err
				continue
			}
			tw, ok := cw.(Tunable)
			if !ok {
				c.err = fmt.Errorf("optimize: %s.WithParam returned a non-Tunable workload", incumbent.Name())
				continue
			}
			c.w = tw
			c.profile, c.err = search(tw)
		}
		// Rank: best search cycles first; ties break by menu position so
		// the order — and therefore the log — is deterministic.
		sort.SliceStable(cands, func(i, j int) bool {
			ci, cj := &cands[i], &cands[j]
			if (ci.err == nil) != (cj.err == nil) {
				return ci.err == nil
			}
			if ci.err != nil {
				return ci.order < cj.order
			}
			if ci.profile.Cycles != cj.profile.Cycles {
				return ci.profile.Cycles < cj.profile.Cycles
			}
			return ci.order < cj.order
		})

		// All candidates this step were scored against the step-start
		// incumbent; every logged gain is relative to it.
		stepSearch, stepValid := incSearchCycles, incValidCycles
		accepted := false
		for i := range cands {
			c := &cands[i]
			d := Decision{Step: step, Transform: c.tr, From: c.from}
			switch {
			case c.err != nil:
				d.Outcome = OutcomeInvalid
				d.Reason = c.err.Error()
				banned[c.tr] = true
			case accepted:
				// A better candidate already won this step; the rest are
				// rejected unvalidated (they may return in a later step).
				d.SearchCycles = c.profile.Cycles
				d.SearchGainPct = gainPct(stepSearch, c.profile.Cycles)
				d.Outcome = OutcomeRejected
				d.Reason = "a better candidate was accepted this step"
			default:
				d.SearchCycles = c.profile.Cycles
				d.SearchGainPct = gainPct(stepSearch, c.profile.Cycles)
				if d.SearchGainPct < cfg.MinGainPct {
					d.Outcome = OutcomeRejected
					d.Reason = fmt.Sprintf("search gain %.2f%% below threshold %.2f%%", d.SearchGainPct, cfg.MinGainPct)
					break
				}
				vprof, verr := validate(c.w)
				if verr != nil {
					d.Outcome = OutcomeInvalid
					d.Reason = fmt.Sprintf("validation run failed: %v", verr)
					banned[c.tr] = true
					break
				}
				d.ValidatedCycles = vprof.Cycles
				d.ValidatedGainPct = gainPct(stepValid, vprof.Cycles)
				if d.ValidatedGainPct < cfg.MinGainPct {
					d.Outcome = OutcomeRolledBack
					d.Reason = fmt.Sprintf("validated gain %.2f%% below threshold %.2f%% — incumbent kept", d.ValidatedGainPct, cfg.MinGainPct)
					banned[c.tr] = true
					break
				}
				d.Outcome = OutcomeAccepted
				d.Reason = fmt.Sprintf("validated gain %.2f%% over incumbent", d.ValidatedGainPct)
				incumbent = c.w
				incValidCycles = vprof.Cycles
				incSearchCycles = c.profile.Cycles
				finalProfile = vprof
				accepted = true
			}
			cfg.Tracer.Instant(LaneOptimize, fmt.Sprintf("%s %s", d.Outcome, d.Transform),
				obs.Arg{Key: "workload", Value: w.Name()})
			res.Decisions = append(res.Decisions, d)
		}
		if !accepted {
			break
		}
	}

	res.Final = makeVariant(incumbent, finalProfile)
	res.FinalRegime = Classify(cfg.Device, finalProfile).Regime
	res.GainPct = gainPct(res.Baseline.Cycles, res.Final.Cycles)
	res.recount()
	span.Arg("accepted", fmt.Sprintf("%d", res.Accepted)).
		Arg("gain_pct", fmt.Sprintf("%.2f", res.GainPct))
	return res, nil
}

// enumerate lists every legal single-parameter edit of the incumbent, in
// sorted parameter order then domain order, skipping the current values,
// banned transforms, and (when a menu is given) anything off-menu.
func enumerate(w Tunable, menu []Transform, banned map[Transform]bool) []candidate {
	params := w.Params()
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	allowed := func(t Transform) bool {
		if len(menu) == 0 {
			return true
		}
		for _, m := range menu {
			if m == t {
				return true
			}
		}
		return false
	}
	var out []candidate
	for _, name := range names {
		for _, v := range w.ParamDomain(name) {
			t := Transform{Param: name, Value: v}
			if v == params[name] || banned[t] || !allowed(t) {
				continue
			}
			out = append(out, candidate{tr: t, from: params[name], order: len(out)})
		}
	}
	return out
}

func gainPct(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return 100 * (from - to) / from
}

// Replay re-derives a decision log's outcome from scratch: it applies
// the accepted transformations to the baseline workload in log order,
// re-simulates each resulting configuration at validation fidelity, and
// checks every cycle count — and the final parameters — bit-exactly
// against the log. A nil error means the log is a faithful, reproducible
// record of the search.
func Replay(w Tunable, log *Result, cfg Config) error {
	if cfg.Device == nil {
		return fmt.Errorf("optimize: Config.Device is required")
	}
	cfg.SearchSimBlocks = log.SearchSimBlocks
	cfg.ValidateSimBlocks = log.ValidateSimBlocks
	cfg.Seed = log.Seed
	cfg = cfg.withDefaults()
	validate := cfg.validateRun
	if validate == nil {
		validate = cfg.profiler(cfg.ValidateSimBlocks)
	}

	base, err := validate(w)
	if err != nil {
		return fmt.Errorf("optimize: replaying baseline: %w", err)
	}
	if base.Cycles != log.Baseline.Cycles {
		return fmt.Errorf("optimize: replayed baseline cycles %v != logged %v", base.Cycles, log.Baseline.Cycles)
	}
	cur := w
	for _, d := range log.Decisions {
		if d.Outcome != OutcomeAccepted {
			continue
		}
		next, err := cur.WithParam(d.Transform.Param, d.Transform.Value)
		if err != nil {
			return fmt.Errorf("optimize: replaying step %d (%s): %w", d.Step, d.Transform, err)
		}
		tw, ok := next.(Tunable)
		if !ok {
			return fmt.Errorf("optimize: replaying step %d (%s): workload is not Tunable", d.Step, d.Transform)
		}
		cur = tw
		prof, err := validate(cur)
		if err != nil {
			return fmt.Errorf("optimize: replaying step %d (%s): %w", d.Step, d.Transform, err)
		}
		if prof.Cycles != d.ValidatedCycles {
			return fmt.Errorf("optimize: step %d (%s) replayed cycles %v != logged %v",
				d.Step, d.Transform, prof.Cycles, d.ValidatedCycles)
		}
	}
	finalParams := cur.Params()
	if len(finalParams) != len(log.Final.Params) {
		return fmt.Errorf("optimize: replayed final params %v != logged %v", finalParams, log.Final.Params)
	}
	for k, v := range log.Final.Params {
		if finalParams[k] != v {
			return fmt.Errorf("optimize: replayed final params %v != logged %v", finalParams, log.Final.Params)
		}
	}
	return nil
}
