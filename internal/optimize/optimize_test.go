package optimize

import (
	"bytes"
	"fmt"
	"testing"

	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
	"blackforest/internal/runcache"
)

func gtx580(t *testing.T) *gpusim.Device {
	t.Helper()
	dev, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// detuned is the standard test subject: a mis-configured final reduction
// the search reliably improves.
func detuned(seed uint64) *kernels.Reduction {
	return &kernels.Reduction{Variant: 6, N: 1 << 18, BlockSize: 64, MaxBlocks: 32, Seed: seed}
}

func testConfig(dev *gpusim.Device) Config {
	return Config{Device: dev, SearchSimBlocks: 4, ValidateSimBlocks: 8, Seed: 1}
}

// TestOptimizeFindsImprovement: the guarded search recovers a detuned
// launch configuration on both device models.
func TestOptimizeFindsImprovement(t *testing.T) {
	for _, devName := range []string{"GTX580", "K20m"} {
		dev, err := gpusim.LookupDevice(devName)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(detuned(1), testConfig(dev))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted < 1 {
			t.Fatalf("%s: no accepted improvement (decisions: %+v)", devName, res.Decisions)
		}
		if res.GainPct <= 0 {
			t.Fatalf("%s: gain %.2f%%, want positive", devName, res.GainPct)
		}
	}
}

// TestOptimizeDeterministic: the same seed yields a byte-identical
// decision log, run to run.
func TestOptimizeDeterministic(t *testing.T) {
	dev := gtx580(t)
	var logs [2]bytes.Buffer
	for i := range logs {
		res, err := Optimize(detuned(1), testConfig(dev))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteLog(&logs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(logs[0].Bytes(), logs[1].Bytes()) {
		t.Fatalf("decision logs differ between identical runs:\n%s\n----\n%s", logs[0].String(), logs[1].String())
	}
}

// TestOptimizeNeverRegresses: across the kernel suite, the final
// configuration's validated cycles never exceed the baseline's, and every
// accepted decision individually clears the threshold.
func TestOptimizeNeverRegresses(t *testing.T) {
	dev := gtx580(t)
	suite := []Tunable{
		&kernels.MatMul{N: 256, Seed: 1},
		detuned(1),
		&kernels.Transpose{Variant: 0, N: 512, Seed: 1},
		&kernels.Histogram{Variant: 1, N: 1 << 18, BlockSize: 64, Seed: 1},
		&kernels.Reduction{Variant: 3, N: 1 << 18, BlockSize: 256, Seed: 1},
	}
	for _, w := range suite {
		res, err := Optimize(w, testConfig(dev))
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if res.Final.Cycles > res.Baseline.Cycles {
			t.Errorf("%s: final %.6g cycles exceeds baseline %.6g", w.Name(), res.Final.Cycles, res.Baseline.Cycles)
		}
		if res.GainPct < 0 {
			t.Errorf("%s: negative gain %.2f%%", w.Name(), res.GainPct)
		}
		for _, d := range res.Decisions {
			if d.Outcome == OutcomeAccepted && d.ValidatedGainPct < res.MinGainPct {
				t.Errorf("%s: accepted %s with validated gain %.2f%% below threshold %.2f%%",
					w.Name(), d.Transform, d.ValidatedGainPct, res.MinGainPct)
			}
			if d.Outcome == OutcomeRolledBack && d.ValidatedGainPct >= res.MinGainPct {
				t.Errorf("%s: rolled back %s despite validated gain %.2f%%",
					w.Name(), d.Transform, d.ValidatedGainPct)
			}
		}
	}
}

// fakeTunable is a synthetic workload for white-box search tests: one
// parameter x, with search/validation cycle tables injected via Config.
type fakeTunable struct {
	x      int
	domain []int
}

func (f *fakeTunable) Name() string { return "fake" }
func (f *fakeTunable) Characteristics() map[string]float64 {
	return map[string]float64{"x": float64(f.x)}
}
func (f *fakeTunable) Plan(dev *gpusim.Device) ([]profiler.Launch, error) {
	return nil, fmt.Errorf("fakeTunable must not be simulated")
}
func (f *fakeTunable) Params() map[string]int { return map[string]int{"x": f.x} }
func (f *fakeTunable) ParamDomain(name string) []int {
	if name == "x" {
		return f.domain
	}
	return nil
}
func (f *fakeTunable) WithParam(name string, value int) (profiler.Workload, error) {
	if name != "x" {
		return nil, fmt.Errorf("no parameter %q", name)
	}
	return &fakeTunable{x: value, domain: f.domain}, nil
}

func stubRun(cost map[int]float64) func(profiler.Workload) (*profiler.Profile, error) {
	return func(w profiler.Workload) (*profiler.Profile, error) {
		f := w.(*fakeTunable)
		c, ok := cost[f.x]
		if !ok {
			return nil, fmt.Errorf("no cost for x=%d", f.x)
		}
		return &profiler.Profile{Workload: "fake", Cycles: c}, nil
	}
}

// TestOptimizeRollback forces the two fidelities to disagree: x=2 looks
// 20%% better at search fidelity but regresses at validation fidelity, so
// it must be rolled back (incumbent kept, transform banned) and the
// honestly-better x=3 accepted instead.
func TestOptimizeRollback(t *testing.T) {
	dev := gtx580(t)
	cfg := Config{
		Device:      dev,
		MinGainPct:  1.0,
		searchRun:   stubRun(map[int]float64{1: 1000, 2: 800, 3: 950}),
		validateRun: stubRun(map[int]float64{1: 1000, 2: 1100, 3: 970}),
	}
	res, err := Optimize(&fakeTunable{x: 1, domain: []int{1, 2, 3}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RolledBack != 1 {
		t.Fatalf("rolled back %d candidates, want 1 (decisions: %+v)", res.RolledBack, res.Decisions)
	}
	d0 := res.Decisions[0]
	if d0.Transform != (Transform{"x", 2}) || d0.Outcome != OutcomeRolledBack {
		t.Fatalf("first decision = %+v, want x=2 rolled-back", d0)
	}
	if d0.ValidatedCycles != 1100 {
		t.Fatalf("rollback validated cycles = %v, want 1100", d0.ValidatedCycles)
	}
	d1 := res.Decisions[1]
	if d1.Transform != (Transform{"x", 3}) || d1.Outcome != OutcomeAccepted {
		t.Fatalf("second decision = %+v, want x=3 accepted", d1)
	}
	if res.Final.Params["x"] != 3 || res.Final.Cycles != 970 {
		t.Fatalf("final = %v @ %v cycles, want x=3 @ 970", res.Final.Params, res.Final.Cycles)
	}
	// The rolled-back transform must not be retried in later steps.
	for _, d := range res.Decisions[2:] {
		if d.Transform == (Transform{"x", 2}) {
			t.Fatalf("banned transform retried: %+v", d)
		}
	}
}

// TestOptimizeAllRegress: when every candidate regresses at validation,
// the baseline must survive untouched.
func TestOptimizeAllRegress(t *testing.T) {
	dev := gtx580(t)
	cfg := Config{
		Device:      dev,
		MinGainPct:  1.0,
		searchRun:   stubRun(map[int]float64{1: 1000, 2: 700, 3: 600}),
		validateRun: stubRun(map[int]float64{1: 1000, 2: 1400, 3: 1600}),
	}
	res, err := Optimize(&fakeTunable{x: 1, domain: []int{1, 2, 3}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.RolledBack != 2 {
		t.Fatalf("accepted=%d rolledback=%d, want 0 and 2", res.Accepted, res.RolledBack)
	}
	if res.Final.Params["x"] != 1 || res.Final.Cycles != 1000 {
		t.Fatalf("final = %v @ %v, want untouched baseline x=1 @ 1000", res.Final.Params, res.Final.Cycles)
	}
	if res.GainPct != 0 {
		t.Fatalf("gain = %v, want 0", res.GainPct)
	}
}

// TestOptimizeCacheDifferential: a second identical search is served
// entirely from the run cache — zero new simulations — and produces the
// identical decision log.
func TestOptimizeCacheDifferential(t *testing.T) {
	dev := gtx580(t)
	cache, err := profiler.NewRunCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(dev)
	cfg.Cache = cache

	var logs [2]bytes.Buffer
	var stats [2]runcache.Stats
	for i := range logs {
		res, err := Optimize(detuned(1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteLog(&logs[i]); err != nil {
			t.Fatal(err)
		}
		stats[i] = cache.Stats()
	}
	if stats[1].Misses != stats[0].Misses {
		t.Fatalf("second search simulated %d new runs, want 0 (100%% hit rate)", stats[1].Misses-stats[0].Misses)
	}
	if stats[1].Hits() <= stats[0].Hits() {
		t.Fatalf("second search recorded no cache hits (stats %+v -> %+v)", stats[0], stats[1])
	}
	if !bytes.Equal(logs[0].Bytes(), logs[1].Bytes()) {
		t.Fatal("cache-served search produced a different decision log")
	}
}

// TestRunKeySensitivity: every transformed configuration of every
// tunable kernel has a run key distinct from the baseline's and from
// every other transform's — the property that makes candidate caching
// sound.
func TestRunKeySensitivity(t *testing.T) {
	dev := gtx580(t)
	p := profiler.New(dev, profiler.Options{MaxSimBlocks: 8, NoiseSigma: -1})
	suite := []Tunable{
		&kernels.MatMul{N: 256, Seed: 1},
		&kernels.Reduction{Variant: 6, N: 1 << 18, BlockSize: 256, Seed: 1},
		&kernels.Transpose{Variant: 0, N: 512, Seed: 1},
		&kernels.Histogram{Variant: 1, N: 1 << 18, Seed: 1},
	}
	for _, w := range suite {
		seen := make(map[runcache.Key]string)
		base := p.RunKey(w)
		seen[base] = "baseline"
		params := w.Params()
		for name, cur := range params {
			for _, v := range w.ParamDomain(name) {
				if v == cur {
					continue
				}
				tw, err := w.WithParam(name, v)
				if err != nil {
					t.Fatalf("%s: WithParam(%s, %d): %v", w.Name(), name, v, err)
				}
				key := p.RunKey(tw)
				label := fmt.Sprintf("%s=%d", name, v)
				if prev, dup := seen[key]; dup {
					t.Errorf("%s: transform %s shares a run key with %s", w.Name(), label, prev)
				}
				seen[key] = label
			}
		}
	}
}

// TestReplay: a decision log round-trips through JSON and replays
// bit-exactly from the baseline workload; a tampered log is rejected.
func TestReplay(t *testing.T) {
	dev := gtx580(t)
	cfg := testConfig(dev)
	res, err := Optimize(detuned(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatal("test needs an accepted step")
	}
	var buf bytes.Buffer
	if err := res.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if log.Accepted != res.Accepted || log.Tried != res.Tried {
		t.Fatalf("log counts %d/%d, want %d/%d", log.Accepted, log.Tried, res.Accepted, res.Tried)
	}
	if err := Replay(detuned(1), log, Config{Device: dev}); err != nil {
		t.Fatalf("faithful log failed replay: %v", err)
	}

	tampered := *log
	tampered.Final = log.Final
	tampered.Final.Params = map[string]int{"block_size": 64, "max_blocks": 32}
	if err := Replay(detuned(1), &tampered, Config{Device: dev}); err == nil {
		t.Fatal("tampered final params passed replay")
	}
	tampered2 := *log
	tampered2.Baseline.Cycles++
	if err := Replay(detuned(1), &tampered2, Config{Device: dev}); err == nil {
		t.Fatal("tampered baseline cycles passed replay")
	}
}

// TestOptimizeTransformMenu: an explicit menu restricts the search.
func TestOptimizeTransformMenu(t *testing.T) {
	dev := gtx580(t)
	cfg := testConfig(dev)
	cfg.Transforms = []Transform{{"block_size", 256}}
	res, err := Optimize(detuned(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.Transform != (Transform{"block_size", 256}) {
			t.Fatalf("off-menu transform tried: %+v", d)
		}
	}
	if res.Final.Params["block_size"] != 256 {
		t.Fatalf("menu transform not applied: final %v", res.Final.Params)
	}
}
