package optimize

import (
	"fmt"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// Regime labels the bottleneck regime of a profiled kernel — the coarse
// diagnosis that selects which launch-config transformations are worth
// trying. It combines the simulator's exact cycle accounting (the
// PinTotal'd breakdown shares) with achieved occupancy and the kernel's
// roofline position, so the same evidence the paper's statistical
// pipeline recovers from counters is here read off directly.
type Regime string

const (
	// RegimeMemBandwidth: memory cycles dominate and the run already
	// draws a large fraction of peak DRAM bandwidth — the bandwidth roof
	// itself binds; only traffic reduction helps.
	RegimeMemBandwidth Regime = "memory-bandwidth-bound"
	// RegimeLatency: memory cycles dominate but bandwidth is far from
	// peak at reasonable occupancy — exposed latency, not throughput.
	RegimeLatency Regime = "latency-bound"
	// RegimeUnderOccupied: memory cycles dominate, bandwidth is far from
	// peak, and occupancy is too low to cover latency — more resident
	// warps (block geometry, register pressure) are the lever.
	RegimeUnderOccupied Regime = "under-occupied"
	// RegimeReplay: shared-memory bank-conflict replays or uncoalesced
	// transaction splits consume a large cycle share.
	RegimeReplay Regime = "divergence/replay-limited"
	// RegimeAtomic: atomic serialization consumes a large cycle share.
	RegimeAtomic Regime = "atomic-limited"
	// RegimeCompute: none of the stall categories dominate — issue and
	// arithmetic cycles do.
	RegimeCompute Regime = "compute-bound"
)

// Classification thresholds. Shares are fractions of total modeled
// cycles (the breakdown is a PinTotal'd partition, so shares sum to 1).
const (
	// atomicShareMin flags atomic serialization as the regime.
	atomicShareMin = 0.20
	// replayShareMin flags replay (bank conflicts + uncoalesced splits).
	replayShareMin = 0.20
	// memShareMin is the memory-cycle share above which the kernel is in
	// one of the three memory regimes.
	memShareMin = 0.40
	// bwBoundUtilMin: at or above this fraction of peak DRAM bandwidth,
	// memory dominance means the bandwidth roof itself.
	bwBoundUtilMin = 0.50
	// lowOccupancy separates under-occupied from plain latency-bound.
	lowOccupancy = 0.35
)

// Classification is the regime diagnosis for one profiled run.
type Classification struct {
	Regime Regime `json:"regime"`
	// Roofline and Point give the device model and the run's position
	// under it.
	Roofline Roofline `json:"roofline"`
	Point    Point    `json:"point"`
	// Shares are the breakdown's cycle fractions by category, in the
	// fixed category order of BreakdownCategories.
	Shares map[string]float64 `json:"shares"`
	// Occupancy is the run's achieved occupancy metric.
	Occupancy float64 `json:"occupancy"`
	// BandwidthUtil is achieved DRAM throughput over the device peak.
	BandwidthUtil float64 `json:"bandwidth_util"`
	// Why is a one-line justification citing the evidence.
	Why string `json:"why"`
}

// Classify diagnoses the bottleneck regime of one profile on one device.
func Classify(dev *gpusim.Device, p *profiler.Profile) Classification {
	rl := NewRoofline(dev)
	pt := rl.Place(p)
	c := Classification{
		Roofline:      rl,
		Point:         pt,
		Occupancy:     p.Metrics["achieved_occupancy"],
		BandwidthUtil: pt.AchievedGBps / rl.PeakGBps,
		Shares:        make(map[string]float64, 6),
	}
	b := p.Breakdown
	total := p.Cycles
	share := func(v float64) float64 {
		if total <= 0 {
			return 0
		}
		return v / total
	}
	for _, cat := range BreakdownCategories(&b) {
		c.Shares[cat.Name] = share(cat.Cycles)
	}
	atomic := share(b.AtomicCycles)
	replay := share(b.SharedReplayCycles + b.UncoalescedCycles)
	mem := share(b.MemLatencyCycles)

	switch {
	case atomic >= atomicShareMin:
		c.Regime = RegimeAtomic
		c.Why = fmt.Sprintf("atomic serialization takes %.0f%% of cycles", 100*atomic)
	case replay >= replayShareMin:
		c.Regime = RegimeReplay
		c.Why = fmt.Sprintf("replays (bank conflicts + uncoalesced splits) take %.0f%% of cycles", 100*replay)
	case mem >= memShareMin && c.BandwidthUtil >= bwBoundUtilMin:
		c.Regime = RegimeMemBandwidth
		c.Why = fmt.Sprintf("memory takes %.0f%% of cycles at %.0f%% of peak DRAM bandwidth", 100*mem, 100*c.BandwidthUtil)
	case mem >= memShareMin && c.Occupancy < lowOccupancy:
		c.Regime = RegimeUnderOccupied
		c.Why = fmt.Sprintf("memory takes %.0f%% of cycles at only %.0f%% of peak bandwidth with occupancy %.2f", 100*mem, 100*c.BandwidthUtil, c.Occupancy)
	case mem >= memShareMin:
		c.Regime = RegimeLatency
		c.Why = fmt.Sprintf("memory takes %.0f%% of cycles at only %.0f%% of peak bandwidth despite occupancy %.2f", 100*mem, 100*c.BandwidthUtil, c.Occupancy)
	default:
		c.Regime = RegimeCompute
		c.Why = fmt.Sprintf("issue/arithmetic dominates (memory %.0f%%, replay %.0f%%, atomics %.0f%%)", 100*mem, 100*replay, 100*atomic)
	}
	return c
}

// BreakdownCategory is one row of the cycle-accounting table: a fixed
// human-readable category name and its cycle count.
type BreakdownCategory struct {
	Name   string
	Cycles float64
}

// BreakdownCategories flattens a breakdown into the fixed category order
// every report uses (the same order and names as blackforest -explain).
func BreakdownCategories(b *gpusim.BottleneckBreakdown) []BreakdownCategory {
	return []BreakdownCategory{
		{"issue/arithmetic", b.IssueCycles},
		{"memory latency/bandwidth", b.MemLatencyCycles},
		{"barrier wait", b.BarrierCycles},
		{"shared-memory replay", b.SharedReplayCycles},
		{"uncoalesced transactions", b.UncoalescedCycles},
		{"atomic serialization", b.AtomicCycles},
	}
}
