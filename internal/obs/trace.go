// Package obs is BlackForest's observability layer: a span tracer whose
// traces export as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing), and a process-wide metrics registry rendered in
// Prometheus text exposition format.
//
// Both halves follow the repository's determinism discipline:
//
//   - A nil *Tracer is fully disabled and zero-cost — Begin returns a nil
//     *Span whose methods no-op, so instrumented code paths execute the
//     exact same instructions on the data they model. Every output the
//     pipeline produces with tracing off is bit-identical to HEAD, and
//     tracing on only ever *adds* a trace file (pinned by differential
//     tests, like the faults-off guarantee).
//   - The tracer's clock is injected: production uses a monotonic wall
//     clock, tests freeze time with a counter so exported traces are
//     byte-for-byte reproducible.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Arg is one key/value annotation attached to a span or instant event; it
// renders into the Chrome trace event's "args" object.
type Arg struct {
	Key   string
	Value string
}

// Event is one recorded trace event. Complete events (Phase 'X') carry a
// duration; instant events (Phase 'i') mark a point in time.
type Event struct {
	Name  string
	Lane  int
	Phase byte // 'X' complete, 'i' instant
	// StartNS/DurNS are nanoseconds on the tracer's clock.
	StartNS int64
	DurNS   int64
	Args    []Arg
}

// Tracer records spans and instant events on numbered lanes (Chrome trace
// "threads"): one lane per worker makes scheduler occupancy visible as a
// timeline. All methods are safe for concurrent use. The nil *Tracer is
// the disabled tracer: every method no-ops and allocates nothing.
type Tracer struct {
	clock func() int64 // nanoseconds; monotonic within one trace

	mu     sync.Mutex
	events []Event
	lanes  map[int]string
}

// NewTracer builds a tracer. clock returns the current trace time in
// nanoseconds and must be monotonic non-decreasing; nil selects a real
// monotonic clock anchored at the call to NewTracer. Tests inject a frozen
// counter so exported traces are deterministic.
func NewTracer(clock func() int64) *Tracer {
	if clock == nil {
		start := time.Now()
		clock = func() int64 { return time.Since(start).Nanoseconds() }
	}
	return &Tracer{clock: clock, lanes: make(map[int]string)}
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetLaneName labels a lane; the name shows as the thread name in the
// exported trace.
func (t *Tracer) SetLaneName(lane int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lanes[lane] = name
	t.mu.Unlock()
}

// Span is one in-flight span. The zero of *Span (nil, as returned by a
// disabled tracer) is valid: Arg and End no-op.
type Span struct {
	t     *Tracer
	lane  int
	name  string
	start int64
	args  []Arg
}

// Begin opens a span on a lane. It returns nil when the tracer is
// disabled, costing no allocation.
func (t *Tracer) Begin(lane int, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, lane: lane, name: name, start: t.clock()}
}

// Arg annotates the span; it returns the span for chaining and no-ops on
// nil.
func (s *Span) Arg(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{key, value})
	return s
}

// SetLane moves the span to another lane before it ends — used when the
// owning worker is only known after the span started (e.g. a run span
// that later acquires a scheduler slot).
func (s *Span) SetLane(lane int) {
	if s == nil {
		return
	}
	s.lane = lane
}

// End closes the span and records it. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.clock()
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	s.t.record(Event{Name: s.name, Lane: s.lane, Phase: 'X', StartNS: s.start, DurNS: dur, Args: s.args})
}

// Instant records a zero-duration marker event on a lane.
func (t *Tracer) Instant(lane int, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, Lane: lane, Phase: 'i', StartNS: t.clock(), Args: args})
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a snapshot of the recorded events in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded events (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is the trace-event JSON schema understood by Perfetto and
// chrome://tracing. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the recorded events as Chrome trace-event JSON.
// Events are ordered by (start, lane, name) and lane names become thread
// names, so the export is a pure function of the recorded events — with a
// frozen clock, byte-for-byte reproducible.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: cannot export a disabled (nil) tracer")
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	laneIDs := make([]int, 0, len(t.lanes))
	for id := range t.lanes {
		laneIDs = append(laneIDs, id)
	}
	lanes := make(map[int]string, len(t.lanes))
	for id, name := range t.lanes {
		lanes[id] = name
	}
	t.mu.Unlock()

	sort.Ints(laneIDs)
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].StartNS != events[j].StartNS {
			return events[i].StartNS < events[j].StartNS
		}
		if events[i].Lane != events[j].Lane {
			return events[i].Lane < events[j].Lane
		}
		return events[i].Name < events[j].Name
	})

	out := chromeTrace{DisplayTimeUnit: "ms"}
	for _, id := range laneIDs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]string{"name": lanes[id]},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Ph:   string(ev.Phase),
			PID:  1,
			TID:  ev.Lane,
			TS:   float64(ev.StartNS) / 1e3,
		}
		if ev.Phase == 'X' {
			dur := float64(ev.DurNS) / 1e3
			ce.Dur = &dur
		}
		if ev.Phase == 'i' {
			ce.S = "t" // thread-scoped instant
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]string, len(ev.Args))
			for _, a := range ev.Args {
				ce.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTraceFile exports the trace to a file.
func (t *Tracer) WriteChromeTraceFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return t.WriteChromeTrace(f)
}
