package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock returns a clock that advances by step nanoseconds per call.
func fakeClock(step int64) func() int64 {
	var now int64
	return func() int64 {
		v := now
		now += step
		return v
	}
}

func TestNilTracerIsFullyDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	sp := tr.Begin(0, "work")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	// All of these must be safe no-ops.
	sp.Arg("k", "v")
	sp.SetLane(3)
	sp.End()
	tr.Instant(0, "marker")
	tr.SetLaneName(0, "w0")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("exporting a nil tracer should error")
	}
}

func TestNilSpanBeginAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Begin(1, "hot")
		sp.Arg("a", "b")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v per span", allocs)
	}
}

func TestTracerRecordsSpansAndInstants(t *testing.T) {
	tr := NewTracer(fakeClock(1000))
	tr.SetLaneName(0, "worker-0")
	sp := tr.Begin(0, "run").Arg("workload", "matmul")
	tr.Instant(0, "cache-miss", Arg{"key", "abc"})
	sp.End()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Recording order: the instant ends before the span does.
	if evs[0].Name != "cache-miss" || evs[0].Phase != 'i' {
		t.Fatalf("event 0 = %+v, want instant cache-miss", evs[0])
	}
	if evs[1].Name != "run" || evs[1].Phase != 'X' {
		t.Fatalf("event 1 = %+v, want complete run", evs[1])
	}
	// clock: Begin=0, Instant=1000, End=2000 → dur 2000.
	if evs[1].StartNS != 0 || evs[1].DurNS != 2000 {
		t.Fatalf("run span timing = start %d dur %d, want 0/2000", evs[1].StartNS, evs[1].DurNS)
	}
	if len(evs[1].Args) != 1 || evs[1].Args[0] != (Arg{"workload", "matmul"}) {
		t.Fatalf("run span args = %+v", evs[1].Args)
	}
}

func TestSpanSetLaneMovesLane(t *testing.T) {
	tr := NewTracer(fakeClock(1))
	sp := tr.Begin(-1, "gated")
	sp.SetLane(7)
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Lane != 7 {
		t.Fatalf("events = %+v, want one event on lane 7", evs)
	}
}

func TestWriteChromeTraceDeterministicAndWellFormed(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(fakeClock(500))
		tr.SetLaneName(1, "worker-1")
		tr.SetLaneName(0, "worker-0")
		a := tr.Begin(0, "outer").Arg("x", "1")
		b := tr.Begin(1, "inner")
		tr.Instant(1, "hit")
		b.End()
		a.End()
		return tr
	}
	var buf1, buf2 bytes.Buffer
	if err := build().WriteChromeTrace(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("same events exported differently across runs")
	}

	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			TS   float64           `json:"ts"`
			Dur  *float64          `json:"dur"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf1.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var meta, complete, instant int
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Fatalf("bad metadata event %+v", ev)
			}
		case "X":
			complete++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete event without duration: %+v", ev)
			}
		case "i":
			instant++
			if ev.S != "t" {
				t.Fatalf("instant event scope = %q, want t", ev.S)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 2 || instant != 1 {
		t.Fatalf("event mix meta=%d complete=%d instant=%d, want 2/2/1", meta, complete, instant)
	}
	// Lane metadata is sorted by lane id regardless of naming order.
	if out.TraceEvents[0].TID != 0 || out.TraceEvents[1].TID != 1 {
		t.Fatalf("lane metadata out of order: %+v", out.TraceEvents[:2])
	}
}

func TestRegistryCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter("bf_cache_hits_total", "Cache hits.", Label{"layer", "mem"})
	r.Counter("bf_cache_hits_total", "Cache hits.", Label{"layer", "disk"})
	g := r.Gauge("bf_inflight", "In-flight runs.")
	r.GaugeFunc("bf_info", "Build info.", func() float64 { return 1 }, Label{"version", "v9"})

	hits.Add(3)
	hits.Inc()
	g.Set(2.5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP bf_cache_hits_total Cache hits.\n",
		"# TYPE bf_cache_hits_total counter\n",
		"bf_cache_hits_total{layer=\"mem\"} 4\n",
		"bf_cache_hits_total{layer=\"disk\"} 0\n", // zero-value series still exposed
		"# TYPE bf_inflight gauge\n",
		"bf_inflight 2.5\n",
		"bf_info{version=\"v9\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n---\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family, not per series.
	if n := strings.Count(out, "# TYPE bf_cache_hits_total"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bf_lat_seconds", "Latency.", []float64{0.1, 1})
	cold := r.Histogram("bf_cold_seconds", "Never observed.", []float64{1})

	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE bf_lat_seconds histogram\n",
		"bf_lat_seconds_bucket{le=\"0.1\"} 1\n",
		"bf_lat_seconds_bucket{le=\"1\"} 2\n",
		"bf_lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"bf_lat_seconds_sum 5.55\n",
		"bf_lat_seconds_count 3\n",
		// Unhit histogram still emits its full zero-valued bucket set.
		"bf_cold_seconds_bucket{le=\"1\"} 0\n",
		"bf_cold_seconds_bucket{le=\"+Inf\"} 0\n",
		"bf_cold_seconds_sum 0\n",
		"bf_cold_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n---\n%s", want, out)
		}
	}
	if cold.Count() != 0 {
		t.Errorf("cold histogram count = %d", cold.Count())
	}
	// Observations on the boundary land in the bucket whose le equals them.
	h2 := NewRegistry().Histogram("b", "h", []float64{1, 2})
	h2.Observe(1)
	if got := h2.Count(); got != 1 {
		t.Fatalf("count = %d", got)
	}
}

func TestRegistryNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metric handles returned non-zero values")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name with a different type did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("bf_x", "x")
	r.Gauge("bf_x", "x")
}

func TestRegistrySameSeriesReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("bf_y", "y", Label{"k", "v"})
	b := r.Counter("bf_y", "y", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
}
