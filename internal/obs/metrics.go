package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one fixed name/value pair attached to a series at registration.
type Label struct {
	Name  string
	Value string
}

// Registry is a process-wide metrics registry: counters, gauges, and
// histograms registered once and rendered together in Prometheus text
// exposition format. Series with the same metric name but different labels
// form one family sharing a single # HELP/# TYPE header. Registration
// order is preserved in the scrape output, and every registered series —
// including never-incremented counters and never-observed histograms —
// emits its zero-value lines, so dashboards see the full series set from
// the first scrape.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []*series
	byKey  map[string]*series
}

type series struct {
	labels []Label
	// Exactly one of the following backs the series.
	counter *Counter
	gauge   *Gauge
	gfn     func() float64
	hist    *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter is a monotonically increasing count. Methods are safe on nil
// (no-ops), so optional instrumentation needs no guards.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Methods are safe on nil.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the gauge's value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets. Methods are safe
// on nil.
type Histogram struct {
	buckets []float64 // upper bounds, ascending; +Inf implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
	count   atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefaultLatencyBuckets are the upper bounds (seconds) used for request
// and stage latency histograms: 100µs to ~10s, roughly ×3 per step.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// labelKey canonicalizes a label set for duplicate detection.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// register returns the series for (name, labels), creating the family
// and series as needed. It panics when a metric name is reused with a
// different type — that is a programming error, not a runtime condition.
func (r *Registry) register(name, help, typ string, labels []Label) (*series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.families = append(r.families, f)
		r.byName[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	if s, ok := f.byKey[key]; ok {
		return s, false
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s, true
}

// Counter registers (or fetches, when the same name and labels were
// registered before) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s, fresh := r.register(name, help, "counter", labels)
	if fresh {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s, fresh := r.register(name, help, "gauge", labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is read from fn at every
// scrape — the cheap way to expose an existing stats counter without
// double accounting.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s, _ := r.register(name, help, "gauge", labels)
	s.gauge = nil
	s.gfn = fn
}

// Histogram registers (or fetches) a histogram series with the given
// ascending upper bounds (+Inf is implicit; nil selects
// DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s, fresh := r.register(name, help, "histogram", labels)
	if fresh {
		if buckets == nil {
			buckets = DefaultLatencyBuckets
		}
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		s.hist = &Histogram{buckets: bs, counts: make([]atomic.Int64, len(bs)+1)}
	}
	return s.hist
}

// formatLabels renders {a="x",b="y"} (empty string for no labels), with
// extra appended after the fixed labels (used for histogram le).
func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered family in registration order:
// # HELP and # TYPE once per family, then one line per series — zero
// values included, so a registered-but-unhit histogram still exposes its
// full bucket set.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.counter.Value())
			case s.gfn != nil:
				fmt.Fprintf(w, "%s%s %g\n", f.name, formatLabels(s.labels), s.gfn())
			case s.gauge != nil:
				fmt.Fprintf(w, "%s%s %g\n", f.name, formatLabels(s.labels), s.gauge.Value())
			case s.hist != nil:
				var cum int64
				for i, ub := range s.hist.buckets {
					cum += s.hist.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						formatLabels(s.labels, Label{"le", formatFloat(ub)}), cum)
				}
				cum += s.hist.counts[len(s.hist.buckets)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, Label{"le", "+Inf"}), cum)
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, formatLabels(s.labels), s.hist.Sum())
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels), s.hist.Count())
			}
		}
	}
}

func formatFloat(v float64) string { return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0") }
