package core

import (
	"strings"
	"testing"

	"blackforest/internal/dataset"
	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
)

// collectMMQuick profiles a small matmul sweep for the extension tests.
func collectMMQuick(t *testing.T) *dataset.Frame {
	t.Helper()
	dev, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	var runs []profiler.Workload
	seed := uint64(1)
	for r := 0; r < 3; r++ {
		for n := 32; n <= 512; n *= 2 {
			seed++
			runs = append(runs, &kernels.MatMul{N: n, Seed: seed})
		}
	}
	frame, err := Collect(dev, runs, CollectOptions{MaxSimBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestPowerResponse(t *testing.T) {
	frame := collectMMQuick(t)
	if !frame.Has(PowerColumn) {
		t.Fatal("collected frame lacks power column")
	}
	// Power values must lie between idle draw and TDP.
	dev, _ := gpusim.LookupDevice("GTX580")
	for _, p := range frame.MustColumn(PowerColumn) {
		if p < dev.IdleWatts*0.8 || p > dev.TDPWatts*1.1 {
			t.Fatalf("implausible power %v W (idle %v, TDP %v)", p, dev.IdleWatts, dev.TDPWatts)
		}
	}

	cfg := quickConfig(1)
	cfg.Response = PowerColumn
	a, err := Analyze(frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.VarExplained < 0.5 {
		t.Fatalf("power model %%var explained %.2f", a.VarExplained)
	}
	// time_ms must not appear among the predictors (response leak).
	for _, p := range a.Predictors {
		if p == ResponseColumn || p == PowerColumn {
			t.Fatalf("response %s leaked into predictors", p)
		}
	}
	// The power scaler predicts watts for unseen sizes.
	ps, err := NewProblemScaler(a, 5, AutoModel)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ps.PredictTime(map[string]float64{"size": 192})
	if err != nil {
		t.Fatal(err)
	}
	if w < dev.IdleWatts*0.8 || w > dev.TDPWatts {
		t.Fatalf("predicted power %v W implausible", w)
	}
}

func TestKeplerMoreEfficientThanFermi(t *testing.T) {
	run := func(device string) float64 {
		dev, err := gpusim.LookupDevice(device)
		if err != nil {
			t.Fatal(err)
		}
		p := profiler.New(dev, profiler.Options{MaxSimBlocks: 8, NoiseSigma: -1})
		prof, err := p.Run(&kernels.MatMul{N: 512, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return prof.EnergyMJ
	}
	fermi := run("GTX580")
	kepler := run("K20m")
	if kepler >= fermi {
		t.Fatalf("28nm Kepler (%vmJ) should spend less energy than 40nm Fermi (%vmJ)", kepler, fermi)
	}
}

func TestAnalyzePCAFirst(t *testing.T) {
	frame := collectMMQuick(t)
	res, err := AnalyzePCAFirst(frame, quickConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Components < 1 {
		t.Fatal("no components retained")
	}
	// Predictors are component scores plus characteristics.
	sawPC, sawSize := false, false
	for _, p := range res.Predictors {
		if strings.HasPrefix(p, "PC") {
			sawPC = true
		}
		if p == "size" {
			sawSize = true
		}
	}
	if !sawPC || !sawSize {
		t.Fatalf("rotated predictor set wrong: %v", res.Predictors)
	}
	// PCA-first should still model the response well.
	if res.VarExplained < 0.5 {
		t.Fatalf("PCA-first %%var explained %.2f", res.VarExplained)
	}
	// Importance over components traces back to counters.
	for _, imp := range res.Importance {
		if strings.HasPrefix(imp.Name, "PC") {
			ld, err := res.ComponentMeaning(imp.Name, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(ld) != 3 {
				t.Fatalf("component meaning %v", ld)
			}
			break
		}
	}
	if _, err := res.ComponentMeaning("size", 3); err == nil {
		t.Fatal("non-component name accepted")
	}
}
