package core

import (
	"fmt"

	"blackforest/internal/dataset"
	"blackforest/internal/pca"
)

// PCAFirstAnalysis is the paper's §7 plan realized: "first applying PCA
// onto the data to both remove correlated variables and reduce
// dimensionality, potentially uncovering hidden structure, thus leading to
// easy interpretation of random forest outcome". The predictors are
// replaced by the scores of the leading principal components (plus the
// problem characteristics, which stay in natural units), and the forest is
// trained on those.
type PCAFirstAnalysis struct {
	// Analysis is the forest over component scores; predictor names are
	// PC1..PCk plus the retained characteristics.
	*Analysis
	// PCA is the fitted decomposition (for loading interpretation).
	PCA *pca.Result
	// Components is the number of retained components.
	Components int
}

// AnalyzePCAFirst runs the PCA-first variant of the pipeline on a
// collected frame.
func AnalyzePCAFirst(frame *dataset.Frame, cfg Config) (*PCAFirstAnalysis, error) {
	if cfg.PCAVariance <= 0 || cfg.PCAVariance > 1 {
		cfg.PCAVariance = 0.96
	}
	// Split predictors into measured counters (rotated) and
	// characteristics (passed through).
	var counterVars, chars []string
	for _, n := range Predictors(frame) {
		if isCharacteristic(n) {
			chars = append(chars, n)
		} else {
			counterVars = append(counterVars, n)
		}
	}
	if len(counterVars) < 2 {
		return nil, fmt.Errorf("core: only %d counters available for PCA", len(counterVars))
	}

	x, err := frame.Matrix(counterVars)
	if err != nil {
		return nil, err
	}
	p, err := pca.Fit(x, counterVars)
	if err != nil {
		return nil, err
	}
	k := p.ComponentsFor(cfg.PCAVariance)

	// Build the rotated frame: PC scores, characteristics, responses.
	rotated := dataset.New()
	for c := 0; c < k; c++ {
		if err := rotated.AddColumn(fmt.Sprintf("PC%d", c+1), p.Scores.Col(c)); err != nil {
			return nil, err
		}
	}
	for _, name := range chars {
		col, err := frame.Column(name)
		if err != nil {
			return nil, err
		}
		if err := rotated.AddColumn(name, col); err != nil {
			return nil, err
		}
	}
	for _, name := range responseColumns {
		if !frame.Has(name) {
			continue
		}
		col, err := frame.Column(name)
		if err != nil {
			return nil, err
		}
		if err := rotated.AddColumn(name, col); err != nil {
			return nil, err
		}
	}

	a, err := Analyze(rotated, cfg)
	if err != nil {
		return nil, err
	}
	return &PCAFirstAnalysis{Analysis: a, PCA: p, Components: k}, nil
}

// ComponentMeaning returns the strongest-loaded original counters of the
// named component score (e.g. "PC2"), so importance over components can be
// traced back to counters.
func (p *PCAFirstAnalysis) ComponentMeaning(name string, topN int) ([]pca.Loading, error) {
	var idx int
	if _, err := fmt.Sscanf(name, "PC%d", &idx); err != nil {
		return nil, fmt.Errorf("core: %q is not a component score", name)
	}
	ld, err := p.PCA.ComponentLoadings(idx - 1)
	if err != nil {
		return nil, err
	}
	if topN < len(ld) {
		ld = ld[:topN]
	}
	return ld, nil
}
