package core

import (
	"fmt"
	"math"
	"testing"

	"blackforest/internal/dataset"
	"blackforest/internal/forest"
	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
	"blackforest/internal/stats"
)

// syntheticFrame builds a frame that mimics collected data: size drives
// time and two counters deterministically; one counter is pure noise.
func syntheticFrame(n int, seed uint64) *dataset.Frame {
	rng := stats.NewRNG(seed)
	sizes := make([]float64, n)
	driver := make([]float64, n) // strongly predictive counter
	secondary := make([]float64, n)
	noise := make([]float64, n)
	times := make([]float64, n)
	for i := 0; i < n; i++ {
		s := float64(64 * (1 + rng.Intn(64)))
		sizes[i] = s
		driver[i] = 3*s + rng.NormFloat64()
		secondary[i] = math.Sqrt(s) * 10
		noise[i] = rng.Float64() * 100
		times[i] = 0.001*s + 0.0001*secondary[i] + 0.002*rng.NormFloat64()
	}
	f, err := dataset.FromColumns(
		[]string{"size", "driver_counter", "secondary_counter", "noise_counter", ResponseColumn},
		[][]float64{sizes, driver, secondary, noise, times},
	)
	if err != nil {
		panic(err)
	}
	return f
}

func quickConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Forest = forest.Config{NTrees: 80}
	cfg.Seed = seed
	return cfg
}

func TestAnalyzeSyntheticData(t *testing.T) {
	frame := syntheticFrame(80, 1)
	a, err := Analyze(frame, quickConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.VarExplained < 0.9 {
		t.Fatalf("%%var explained %.2f on clean synthetic data", a.VarExplained)
	}
	if a.TestR2 < 0.9 {
		t.Fatalf("test R² %.2f", a.TestR2)
	}
	// The noise counter must rank last.
	if a.Importance[len(a.Importance)-1].Name != "noise_counter" {
		t.Fatalf("noise counter not last: %v", a.Importance)
	}
	if a.Train.NumRows()+a.Test.NumRows() != frame.NumRows() {
		t.Fatal("split does not partition the frame")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	noresp, _ := dataset.FromColumns([]string{"a"}, [][]float64{make([]float64, 20)})
	if _, err := Analyze(noresp, quickConfig(1)); err == nil {
		t.Fatal("frame without response accepted")
	}
	tiny := syntheticFrame(5, 1)
	if _, err := Analyze(tiny, quickConfig(1)); err == nil {
		t.Fatal("too-small frame accepted")
	}
}

func TestReduceRetainsPower(t *testing.T) {
	frame := syntheticFrame(80, 2)
	a, err := Analyze(frame, quickConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	reduced, retained, err := a.Reduce(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced.Predictors) != 2 {
		t.Fatalf("reduced to %d predictors", len(reduced.Predictors))
	}
	if !retained {
		t.Fatalf("top-2 model lost power: full %.3f reduced %.3f", a.TestR2, reduced.TestR2)
	}
}

func TestTopDistinctPredictors(t *testing.T) {
	// driver_dup is a perfect copy of driver_counter and must collapse.
	rng := stats.NewRNG(3)
	n := 60
	driver := make([]float64, n)
	dup := make([]float64, n)
	other := make([]float64, n)
	times := make([]float64, n)
	for i := range driver {
		driver[i] = rng.Float64() * 100
		dup[i] = driver[i] * 2 // perfectly correlated
		other[i] = rng.Float64() * 10
		times[i] = driver[i] + other[i]
	}
	frame, _ := dataset.FromColumns(
		[]string{"driver_counter", "driver_dup", "other", ResponseColumn},
		[][]float64{driver, dup, other, times},
	)
	a, err := Analyze(frame, quickConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	top := a.TopDistinctPredictors(2, 0.999)
	if len(top) != 2 {
		t.Fatalf("got %v", top)
	}
	if (top[0] == "driver_counter" && top[1] == "driver_dup") ||
		(top[0] == "driver_dup" && top[1] == "driver_counter") {
		t.Fatalf("correlated duplicates both retained: %v", top)
	}
}

func TestBottlenecksClassification(t *testing.T) {
	frame := syntheticFrame(80, 4)
	a, err := Analyze(frame, quickConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	bns, err := a.Bottlenecks(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bns) != 3 {
		t.Fatalf("got %d bottlenecks", len(bns))
	}
	// The top driver rises with time: direction must be positive.
	foundPositive := false
	for _, b := range bns {
		if b.Counter == "driver_counter" || b.Counter == "size" {
			if b.Direction == Positive {
				foundPositive = true
			}
		}
		if b.Pattern == "" || b.Remedy == "" {
			t.Fatalf("missing classification for %s", b.Counter)
		}
	}
	if !foundPositive {
		t.Fatalf("no positive direction found among drivers: %+v", bns)
	}
	if Positive.String() != "positive" || Negative.String() != "negative" || Mixed.String() != "mixed" {
		t.Fatal("direction names wrong")
	}
}

func TestPCARefine(t *testing.T) {
	frame := syntheticFrame(80, 5)
	a, err := Analyze(frame, quickConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := a.PCARefine(false)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Components < 1 || ref.ExplainedVariance < 0.9 {
		t.Fatalf("refinement: %d comps, %.2f var", ref.Components, ref.ExplainedVariance)
	}
	if len(ref.Labels) != ref.Components {
		t.Fatal("labels/components mismatch")
	}
	vars := ref.MostEffectiveVariables(2)
	if len(vars) != 2 {
		t.Fatalf("MostEffectiveVariables: %v", vars)
	}
	// "size" must be excluded from PCA when includeChars is false.
	for _, ld := range ref.Loadings[0] {
		if ld.Variable == "size" {
			t.Fatal("characteristic leaked into PCA")
		}
	}
}

func TestProblemScalerSynthetic(t *testing.T) {
	frame := syntheticFrame(100, 6)
	a, err := Analyze(frame, quickConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewProblemScaler(a, 3, AutoModel)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ps.Evaluate(a.Test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.R2 < 0.8 {
		t.Fatalf("characteristic-only prediction R² %.3f", ev.R2)
	}
	// Size-driven counters must model near-perfectly; the pure-noise
	// counter (if retained after dedup) rightly cannot.
	for name, m := range ps.Models {
		if name != "noise_counter" && m.TrainR2 < 0.95 {
			t.Fatalf("counter model for %s weak: %.3f", name, m.TrainR2)
		}
	}
	if _, err := ps.PredictTime(map[string]float64{"wrong": 1}); err == nil {
		t.Fatal("missing characteristic accepted")
	}
}

func TestFitCounterModelKinds(t *testing.T) {
	frame := syntheticFrame(80, 7)
	g, err := FitCounterModel(frame, "driver_counter", []string{"size"}, GLMModel)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != "glm" || g.TrainR2 < 0.99 {
		t.Fatalf("GLM on linear counter: %+v", g)
	}
	m, err := FitCounterModel(frame, "driver_counter", []string{"size"}, MARSModel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != "mars" || m.TrainR2 < 0.99 {
		t.Fatalf("MARS on linear counter: kind=%s R²=%v", m.Kind, m.TrainR2)
	}
}

func TestCollectEndToEnd(t *testing.T) {
	dev, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	var runs []profiler.Workload
	for i, n := range []int{4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576, 2097152, 65536, 16384} {
		runs = append(runs, &kernels.Reduction{Variant: 2, N: n, BlockSize: 256, Seed: uint64(i)})
	}
	frame, err := Collect(dev, runs, CollectOptions{MaxSimBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if frame.NumRows() != len(runs) {
		t.Fatalf("collected %d rows", frame.NumRows())
	}
	if !frame.Has(ResponseColumn) || !frame.Has("size") {
		t.Fatal("schema missing response or characteristics")
	}
	// No constant columns should survive.
	for _, name := range frame.Names() {
		if name == ResponseColumn {
			continue
		}
		col := frame.MustColumn(name)
		if stats.Variance(col) == 0 {
			t.Fatalf("constant column %s survived collection", name)
		}
	}
	if _, err := Collect(dev, nil, CollectOptions{}); err == nil {
		t.Fatal("empty run list accepted")
	}
}

// collectRuns builds a fresh reduction sweep (workloads are released by
// Collect, so every Collect call gets its own instances).
func collectRuns() []profiler.Workload {
	var runs []profiler.Workload
	for i, n := range []int{4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288} {
		runs = append(runs, &kernels.Reduction{Variant: 2, N: n, BlockSize: 256, Seed: uint64(i + 1)})
	}
	return runs
}

// requireFramesEqual fails unless the two frames are bit-for-bit identical.
func requireFramesEqual(t *testing.T, label string, a, b *dataset.Frame) {
	t.Helper()
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		t.Fatalf("%s: %d vs %d columns", label, len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("%s: column %d is %q vs %q", label, i, an[i], bn[i])
		}
	}
	for _, name := range an {
		ca, cb := a.MustColumn(name), b.MustColumn(name)
		if len(ca) != len(cb) {
			t.Fatalf("%s: column %s has %d vs %d rows", label, name, len(ca), len(cb))
		}
		for r := range ca {
			if ca[r] != cb[r] {
				t.Fatalf("%s: %s[%d] = %v vs %v", label, name, r, ca[r], cb[r])
			}
		}
	}
}

func TestCollectWorkersBitIdentical(t *testing.T) {
	dev, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	opt := CollectOptions{MaxSimBlocks: 8, Seed: 3, Workers: 1}
	ref, err := Collect(dev, collectRuns(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		opt.Workers = workers
		frame, err := Collect(dev, collectRuns(), opt)
		if err != nil {
			t.Fatal(err)
		}
		requireFramesEqual(t, fmt.Sprintf("Workers=%d vs Workers=1", workers), ref, frame)
	}
}

func TestCollectOrderIndependent(t *testing.T) {
	dev, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	opt := CollectOptions{MaxSimBlocks: 8, Seed: 3, Workers: 4}
	forward, err := Collect(dev, collectRuns(), opt)
	if err != nil {
		t.Fatal(err)
	}
	runs := collectRuns()
	for i, j := 0, len(runs)-1; i < j; i, j = i+1, j-1 {
		runs[i], runs[j] = runs[j], runs[i]
	}
	reversed, err := Collect(dev, runs, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Rows follow input order, so match them by the (unique) size
	// characteristic; every cell must then agree exactly.
	rowBySize := map[float64]int{}
	for r, s := range reversed.MustColumn("size") {
		rowBySize[s] = r
	}
	for _, name := range forward.Names() {
		cf, cr := forward.MustColumn(name), reversed.MustColumn(name)
		for r, s := range forward.MustColumn("size") {
			rr, ok := rowBySize[s]
			if !ok {
				t.Fatalf("size %v missing from reversed collection", s)
			}
			if cf[r] != cr[rr] {
				t.Fatalf("%s at size %v: %v (forward) vs %v (reversed)", name, s, cf[r], cr[rr])
			}
		}
	}
}

func TestCollectPairMatchesSequential(t *testing.T) {
	devA, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	devB, err := gpusim.LookupDevice("K20m")
	if err != nil {
		t.Fatal(err)
	}
	optA := CollectOptions{MaxSimBlocks: 8, Seed: 5}
	optB := CollectOptions{MaxSimBlocks: 8, Seed: 6}
	seqA, err := Collect(devA, collectRuns(), optA)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := Collect(devB, collectRuns(), optB)
	if err != nil {
		t.Fatal(err)
	}
	pairA, pairB, err := CollectPair(devA, collectRuns(), optA, devB, collectRuns(), optB)
	if err != nil {
		t.Fatal(err)
	}
	requireFramesEqual(t, "device A", seqA, pairA)
	requireFramesEqual(t, "device B", seqB, pairB)

	if _, _, err := CollectPair(devA, nil, optA, devB, collectRuns(), optB); err == nil {
		t.Fatal("empty device-A run list accepted")
	}
}

func TestInjectMachineCharacteristics(t *testing.T) {
	frame := syntheticFrame(20, 8)
	dev, _ := gpusim.LookupDevice("K20m")
	out, err := InjectMachineCharacteristics(frame, dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range gpusim.HardwareMetricNames() {
		if !out.Has(name) {
			t.Fatalf("metric %s not injected", name)
		}
	}
	smp, _ := out.Column("smp")
	if smp[0] != 13 {
		t.Fatalf("smp = %v, want 13", smp[0])
	}
	// Original frame untouched.
	if frame.Has("smp") {
		t.Fatal("injection mutated the input frame")
	}
}

func TestHardwareScaleSynthetic(t *testing.T) {
	// Two "devices" with the same mechanism but different speed constants.
	mkFrame := func(scale float64, seed uint64) *dataset.Frame {
		rng := stats.NewRNG(seed)
		n := 60
		sizes := make([]float64, n)
		counter := make([]float64, n)
		times := make([]float64, n)
		for i := 0; i < n; i++ {
			s := float64(64 * (1 + rng.Intn(32)))
			sizes[i] = s
			counter[i] = 2 * s
			times[i] = scale*0.001*s + 0.0005*rng.NormFloat64()
		}
		f, _ := dataset.FromColumns(
			[]string{"size", "gld_request", ResponseColumn},
			[][]float64{sizes, counter, times},
		)
		return f
	}
	devA, _ := gpusim.LookupDevice("GTX580")
	devB, _ := gpusim.LookupDevice("K20m")
	hw, err := HardwareScale(mkFrame(1, 1), mkFrame(2, 2), devA, devB, quickConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if hw.TrainDevice != "GTX580" || hw.TargetDevice != "K20m" {
		t.Fatal("device names wrong")
	}
	if hw.Straightforward == nil || hw.Mixed == nil {
		t.Fatal("evaluations missing")
	}
	if hw.Straightforward.R2 < 0.5 {
		t.Fatalf("hardware scaling R² %.3f on clean synthetic data", hw.Straightforward.R2)
	}
	if len(hw.MixedVariables) == 0 {
		t.Fatal("no mixed variables")
	}
}
