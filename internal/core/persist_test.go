package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fitScaler trains a small ProblemScaler on the synthetic frame — the shared
// fixture for the persistence tests.
func fitScaler(t testing.TB, seed uint64) *ProblemScaler {
	t.Helper()
	frame := syntheticFrame(100, seed)
	a, err := Analyze(frame, quickConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewProblemScaler(a, 3, AutoModel)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// charGrid returns probe inputs spanning and exceeding the training sizes.
func charGrid() []map[string]float64 {
	var grid []map[string]float64
	for s := 32.0; s <= 8192; s *= 2 {
		grid = append(grid, map[string]float64{"size": s})
	}
	grid = append(grid, map[string]float64{"size": 100}, map[string]float64{"size": 5000})
	return grid
}

// TestCounterModelSaveLoadRoundTrip checks bit-identical Predict for both
// model kinds after a Save→Load cycle.
func TestCounterModelSaveLoadRoundTrip(t *testing.T) {
	frame := syntheticFrame(80, 7)
	for _, kind := range []ModelKind{GLMModel, MARSModel} {
		orig, err := FitCounterModel(frame, "driver_counter", []string{"size"}, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("%v: save: %v", kind, err)
		}
		loaded, err := LoadCounterModel(&buf)
		if err != nil {
			t.Fatalf("%v: load: %v", kind, err)
		}
		for s := 16.0; s <= 8192; s *= 2 {
			if got, want := loaded.Predict([]float64{s}), orig.Predict([]float64{s}); got != want {
				t.Fatalf("%v: prediction differs at size %v: %v != %v", kind, s, got, want)
			}
		}
		if loaded.Kind != orig.Kind || loaded.TrainR2 != orig.TrainR2 {
			t.Fatalf("%v: metadata differs after round trip", kind)
		}
	}
}

func TestImportCounterModelRejectsCorrupt(t *testing.T) {
	frame := syntheticFrame(80, 7)
	good, err := FitCounterModel(frame, "driver_counter", []string{"size"}, GLMModel)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(e *ExportedCounterModel){
		"nil":            nil,
		"no counter":     func(e *ExportedCounterModel) { e.Counter = "" },
		"no chars":       func(e *ExportedCounterModel) { e.Chars = nil; e.Scales = nil },
		"scale mismatch": func(e *ExportedCounterModel) { e.Scales = append(e.Scales, 1) },
		"zero scale":     func(e *ExportedCounterModel) { e.Scales[0] = 0 },
		"NaN scale":      func(e *ExportedCounterModel) { e.Scales[0] = math.NaN() },
		"unknown kind":   func(e *ExportedCounterModel) { e.Kind = "spline" },
		"kind w/o model": func(e *ExportedCounterModel) { e.Kind = "mars" },
		"basis mismatch": func(e *ExportedCounterModel) { e.GLM.Names = e.GLM.Names[:1]; e.GLM.Coef = e.GLM.Coef[:2] },
	}
	for name, corrupt := range cases {
		var e *ExportedCounterModel
		if corrupt != nil {
			e = good.Export()
			corrupt(e)
		}
		if _, err := ImportCounterModel(e); err == nil {
			t.Errorf("%s: corrupted counter model accepted", name)
		}
	}
}

// TestProblemScalerSaveLoadRoundTrip is the tentpole property: a loaded
// bundle answers PredictTime bit-identically to the fitted scaler on a grid
// of inputs, and exposes the same metadata.
func TestProblemScalerSaveLoadRoundTrip(t *testing.T) {
	orig := fitScaler(t, 6)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadProblemScaler(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	for _, chars := range charGrid() {
		want, wantCounters, err := orig.PredictDetail(chars)
		if err != nil {
			t.Fatalf("original predict %v: %v", chars, err)
		}
		got, gotCounters, err := loaded.PredictDetail(chars)
		if err != nil {
			t.Fatalf("loaded predict %v: %v", chars, err)
		}
		if got != want {
			t.Fatalf("PredictTime differs at %v: %v != %v", chars, got, want)
		}
		if len(gotCounters) != len(wantCounters) {
			t.Fatalf("counter detail differs at %v", chars)
		}
		for name, w := range wantCounters {
			if gotCounters[name] != w {
				t.Fatalf("counter %s differs at %v", name, chars)
			}
		}
	}

	if loaded.Response() != orig.Response() {
		t.Fatal("response column differs")
	}
	if strings.Join(loaded.CharNames, ",") != strings.Join(orig.CharNames, ",") {
		t.Fatal("characteristic names differ")
	}
	if strings.Join(loaded.CounterNames(), ",") != strings.Join(orig.CounterNames(), ",") {
		t.Fatal("counter names differ")
	}
	if loaded.Reduced.TestR2 != orig.Reduced.TestR2 || loaded.Reduced.OOBMSE != orig.Reduced.OOBMSE {
		t.Fatal("validation statistics differ")
	}
	// Permutation importance is recomputed from the stored raw scores.
	if len(loaded.Reduced.Importance) != len(orig.Reduced.Importance) {
		t.Fatal("importance length differs")
	}
	for i, imp := range orig.Reduced.Importance {
		if loaded.Reduced.Importance[i] != imp {
			t.Fatalf("importance %d differs: %+v != %+v", i, loaded.Reduced.Importance[i], imp)
		}
	}
}

// TestSaveIsDeterministic: two saves of the same scaler are byte-identical,
// which the serving cache-hit test and the golden regression rely on.
func TestSaveIsDeterministic(t *testing.T) {
	ps := fitScaler(t, 6)
	var a, b bytes.Buffer
	if err := ps.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := ps.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same scaler differ")
	}
}

func TestSaveFileRoundTrip(t *testing.T) {
	ps := fitScaler(t, 6)
	path := t.TempDir() + "/model.json"
	if err := ps.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProblemScalerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	chars := map[string]float64{"size": 1024}
	want, _ := ps.PredictTime(chars)
	got, err := loaded.PredictTime(chars)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("file round trip changed prediction: %v != %v", got, want)
	}
}

func TestImportBundleRejectsCorrupt(t *testing.T) {
	good := fitScaler(t, 6)
	counter := good.CounterNames()[0]
	cases := map[string]func(b *Bundle){
		"nil":             nil,
		"future version":  func(b *Bundle) { b.Version = BundleVersion + 1 },
		"zero version":    func(b *Bundle) { b.Version = 0 },
		"no response":     func(b *Bundle) { b.Response = "" },
		"no chars":        func(b *Bundle) { b.CharNames = nil },
		"no predictors":   func(b *Bundle) { b.Predictors = nil },
		"nil forest":      func(b *Bundle) { b.Forest = nil },
		"missing model":   func(b *Bundle) { delete(b.Models, counter) },
		"renamed model":   func(b *Bundle) { b.Models[counter].Counter = "impostor" },
		"char mismatch":   func(b *Bundle) { b.Models[counter].Chars = []string{"other"} },
		"predictor drift": func(b *Bundle) { b.Predictors[0] = b.Predictors[0] + "_x" },
	}
	for name, corrupt := range cases {
		var b *Bundle
		if corrupt != nil {
			// Round-trip through JSON for a deep copy to corrupt.
			raw, err := json.Marshal(good.Export())
			if err != nil {
				t.Fatal(err)
			}
			b = new(Bundle)
			if err := json.Unmarshal(raw, b); err != nil {
				t.Fatal(err)
			}
			corrupt(b)
		}
		if _, err := ImportBundle(b); err == nil {
			t.Errorf("%s: corrupted bundle accepted", name)
		}
	}
}

func TestLoadProblemScalerRejectsGarbage(t *testing.T) {
	for _, src := range []string{"", "not json", `{"version":`, `[1,2,3]`, `{"version":1}`} {
		if _, err := LoadProblemScaler(strings.NewReader(src)); err == nil {
			t.Errorf("garbage %q accepted", src)
		}
	}
}

// FuzzLoadBundle: arbitrary bytes must never panic the bundle loader — they
// either produce a working scaler or an error.
func FuzzLoadBundle(f *testing.F) {
	ps := fitScaler(f, 6)
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	// Seed a structurally plausible but internally inconsistent bundle.
	f.Add([]byte(strings.Replace(string(valid), `"version":1`, `"version":1,"predictors":["x"]`, 1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := LoadProblemScaler(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A bundle that loads must predict (or error) without panicking.
		_, _ = ps.PredictTime(map[string]float64{"size": 512})
	})
}

// TestQuantizedBundleRoundTrip: the quantized (flat-only forest) bundle is
// smaller than the per-node-tree bundle, still loads as version 1, and
// answers PredictDetail bit-identically across the probe grid.
func TestQuantizedBundleRoundTrip(t *testing.T) {
	orig := fitScaler(t, 6)
	var full, quant bytes.Buffer
	if err := orig.Save(&full); err != nil {
		t.Fatal(err)
	}
	if err := orig.SaveQuantized(&quant); err != nil {
		t.Fatal(err)
	}
	if quant.Len() >= full.Len() {
		t.Fatalf("quantized bundle is %d bytes, full bundle %d", quant.Len(), full.Len())
	}
	loaded, err := LoadProblemScaler(bytes.NewReader(quant.Bytes()))
	if err != nil {
		t.Fatalf("loading quantized bundle: %v", err)
	}
	if e := loaded.Reduced.Forest.Engine(); !strings.HasPrefix(e, "flat(") {
		t.Fatalf("quantized-loaded forest engine = %q, want flat(<enc>)", e)
	}
	for _, chars := range charGrid() {
		want, wantCounters, err := orig.PredictDetail(chars)
		if err != nil {
			t.Fatalf("original predict %v: %v", chars, err)
		}
		got, gotCounters, err := loaded.PredictDetail(chars)
		if err != nil {
			t.Fatalf("quantized predict %v: %v", chars, err)
		}
		if got != want {
			t.Fatalf("PredictTime differs at %v: %v != %v", chars, got, want)
		}
		for name, w := range wantCounters {
			if gotCounters[name] != w {
				t.Fatalf("counter %s differs at %v", name, chars)
			}
		}
	}
	if loaded.Reduced.TestR2 != orig.Reduced.TestR2 || loaded.Reduced.OOBMSE != orig.Reduced.OOBMSE {
		t.Fatal("validation statistics differ")
	}
}

// TestSaveFileQuantizedRoundTrip mirrors TestSaveFileRoundTrip for the
// quantized writer (the -quantize CLI path).
func TestSaveFileQuantizedRoundTrip(t *testing.T) {
	ps := fitScaler(t, 6)
	path := t.TempDir() + "/model-quant.json"
	if err := ps.SaveFileQuantized(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProblemScalerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	chars := map[string]float64{"size": 1024}
	want, _ := ps.PredictTime(chars)
	got, err := loaded.PredictTime(chars)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("quantized file round trip changed prediction: %v != %v", got, want)
	}
}
