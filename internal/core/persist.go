package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"blackforest/internal/forest"
	"blackforest/internal/glm"
	"blackforest/internal/jsonx"
	"blackforest/internal/mars"
)

// BundleVersion is the on-disk model-bundle format version. The
// compatibility policy (see DESIGN.md): loaders accept exactly the versions
// they know; any format change that alters prediction output bumps the
// version, so an old binary refuses a new bundle instead of mispredicting.
const BundleVersion = 1

// ExportedCounterModel is the serializable form of a CounterModel.
type ExportedCounterModel struct {
	Counter          string              `json:"counter"`
	Kind             string              `json:"kind"`
	TrainR2          jsonx.Float64       `json:"train_r2"`
	ResidualDeviance jsonx.Float64       `json:"residual_deviance"`
	Chars            []string            `json:"chars"`
	Scales           []float64           `json:"scales"`
	GLM              *glm.ExportedModel  `json:"glm,omitempty"`
	MARS             *mars.ExportedModel `json:"mars,omitempty"`
}

// Export returns the counter model in serializable form.
func (cm *CounterModel) Export() *ExportedCounterModel {
	e := &ExportedCounterModel{
		Counter:          cm.Counter,
		Kind:             cm.Kind,
		TrainR2:          jsonx.Float64(cm.TrainR2),
		ResidualDeviance: jsonx.Float64(cm.ResidualDeviance),
		Chars:            append([]string(nil), cm.chars...),
		Scales:           append([]float64(nil), cm.scales...),
	}
	if cm.m != nil {
		e.MARS = cm.m.Export()
	} else if cm.g != nil {
		e.GLM = cm.g.Export()
	}
	return e
}

// ImportCounterModel reconstructs a counter model from its exported form,
// validating that the embedded GLM/MARS matches the characteristic list so
// a corrupted bundle errors instead of panicking at prediction time.
func ImportCounterModel(e *ExportedCounterModel) (*CounterModel, error) {
	if e == nil {
		return nil, errors.New("core: nil exported counter model")
	}
	if e.Counter == "" {
		return nil, errors.New("core: exported counter model has no counter name")
	}
	if len(e.Chars) == 0 {
		return nil, fmt.Errorf("core: counter model %s has no characteristics", e.Counter)
	}
	if len(e.Scales) != len(e.Chars) {
		return nil, fmt.Errorf("core: counter model %s has %d scales for %d characteristics",
			e.Counter, len(e.Scales), len(e.Chars))
	}
	for i, s := range e.Scales {
		if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("core: counter model %s has invalid scale for %s", e.Counter, e.Chars[i])
		}
	}
	cm := &CounterModel{
		Counter:          e.Counter,
		Kind:             e.Kind,
		TrainR2:          float64(e.TrainR2),
		ResidualDeviance: float64(e.ResidualDeviance),
		chars:            append([]string(nil), e.Chars...),
		scales:           append([]float64(nil), e.Scales...),
	}
	switch e.Kind {
	case "glm":
		if e.GLM == nil {
			return nil, fmt.Errorf("core: counter model %s declares glm but carries none", e.Counter)
		}
		g, err := glm.Import(e.GLM)
		if err != nil {
			return nil, fmt.Errorf("core: counter model %s: %w", e.Counter, err)
		}
		if want := len(polyExpandNames(e.Chars)); len(g.Names) != want {
			return nil, fmt.Errorf("core: counter model %s GLM has %d basis terms for %d characteristics (want %d)",
				e.Counter, len(g.Names), len(e.Chars), want)
		}
		cm.g = g
	case "mars":
		if e.MARS == nil {
			return nil, fmt.Errorf("core: counter model %s declares mars but carries none", e.Counter)
		}
		m, err := mars.Import(e.MARS)
		if err != nil {
			return nil, fmt.Errorf("core: counter model %s: %w", e.Counter, err)
		}
		if len(m.Names) != len(e.Chars) {
			return nil, fmt.Errorf("core: counter model %s MARS has %d predictors for %d characteristics",
				e.Counter, len(m.Names), len(e.Chars))
		}
		cm.m = m
	default:
		return nil, fmt.Errorf("core: counter model %s has unknown kind %q", e.Counter, e.Kind)
	}
	return cm, nil
}

// Save writes the counter model as JSON.
func (cm *CounterModel) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(cm.Export())
}

// LoadCounterModel reads a counter model saved with Save.
func LoadCounterModel(r io.Reader) (*CounterModel, error) {
	var e ExportedCounterModel
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("core: decoding counter model: %w", err)
	}
	return ImportCounterModel(&e)
}

// Bundle is the versioned on-disk form of a ProblemScaler — the paper's
// complete prediction artifact: the reduced forest, the per-counter
// GLM/MARS models with their normalization, and the validation statistics,
// everything needed to answer PredictTime without re-profiling.
type Bundle struct {
	Version   int      `json:"version"`
	Response  string   `json:"response"`
	CharNames []string `json:"char_names"`
	// Predictors is the reduced forest's input order: characteristics are
	// taken from the query, counters from their models.
	Predictors []string                         `json:"predictors"`
	Forest     *forest.Exported                 `json:"forest"`
	Models     map[string]*ExportedCounterModel `json:"models"`

	// Validation statistics of the reduced analysis, carried for reporting
	// (GET /v1/model, blackforest -load): they describe the fit, not the
	// prediction function.
	OOBMSE       float64 `json:"oob_mse"`
	VarExplained float64 `json:"var_explained"`
	TestMSE      float64 `json:"test_mse"`
	TestR2       float64 `json:"test_r2"`

	// Degradation records how an incomplete collection was repaired
	// before this model was fit (dropped/imputed counter columns). Nil
	// for models trained on complete data. Reporting-only, like the
	// validation statistics, so its addition stays within version 1.
	Degradation *Degradation `json:"degradation,omitempty"`
}

// Export returns the scaler in serializable form.
func (ps *ProblemScaler) Export() *Bundle {
	b := &Bundle{
		Version:      BundleVersion,
		Response:     ps.Reduced.cfg.response(),
		CharNames:    append([]string(nil), ps.CharNames...),
		Predictors:   append([]string(nil), ps.Reduced.Predictors...),
		Forest:       ps.Reduced.Forest.Export(),
		Models:       make(map[string]*ExportedCounterModel, len(ps.Models)),
		OOBMSE:       ps.Reduced.OOBMSE,
		VarExplained: ps.Reduced.VarExplained,
		TestMSE:      ps.Reduced.TestMSE,
		TestR2:       ps.Reduced.TestR2,
		Degradation:  ps.Degradation,
	}
	for name, cm := range ps.Models {
		b.Models[name] = cm.Export()
	}
	return b
}

// ImportBundle reconstructs a ProblemScaler from a bundle. The loaded
// scaler predicts bit-identically to the saved one; the training frames are
// not persisted, so Analysis methods needing them are unavailable.
func ImportBundle(b *Bundle) (*ProblemScaler, error) {
	if b == nil {
		return nil, errors.New("core: nil bundle")
	}
	if b.Version != BundleVersion {
		return nil, fmt.Errorf("core: unsupported bundle version %d (this build reads version %d)",
			b.Version, BundleVersion)
	}
	if b.Response == "" {
		return nil, errors.New("core: bundle has no response column")
	}
	if len(b.CharNames) == 0 {
		return nil, errors.New("core: bundle has no problem characteristics")
	}
	if len(b.Predictors) == 0 {
		return nil, errors.New("core: bundle has no predictors")
	}
	if err := validateDegradation(b.Degradation); err != nil {
		return nil, err
	}
	f, err := forest.Import(b.Forest)
	if err != nil {
		return nil, err
	}
	fnames := f.Names()
	if len(fnames) != len(b.Predictors) {
		return nil, fmt.Errorf("core: bundle forest has %d predictors, bundle lists %d",
			len(fnames), len(b.Predictors))
	}
	for i, n := range fnames {
		if n != b.Predictors[i] {
			return nil, fmt.Errorf("core: bundle forest predictor %d is %q, bundle lists %q",
				i, n, b.Predictors[i])
		}
	}

	ps := &ProblemScaler{
		Degradation: b.Degradation,
		Reduced: &Analysis{
			Predictors:   append([]string(nil), b.Predictors...),
			Forest:       f,
			Importance:   f.VariableImportance(),
			OOBMSE:       b.OOBMSE,
			VarExplained: b.VarExplained,
			TestMSE:      b.TestMSE,
			TestR2:       b.TestR2,
			cfg:          Config{Response: b.Response},
		},
		CharNames: append([]string(nil), b.CharNames...),
		Models:    make(map[string]*CounterModel, len(b.Models)),
	}

	// Every counter the forest consumes must have a model whose
	// characteristic order matches the bundle's, or PredictTime would
	// assemble vectors in the wrong order. Characteristic predictors must
	// appear in CharNames: callers (and the serving cache key) treat
	// CharNames as the complete input set of the prediction function.
	charSet := make(map[string]bool, len(b.CharNames))
	for _, c := range b.CharNames {
		charSet[c] = true
	}
	for _, name := range b.Predictors {
		if isCharacteristic(name) {
			if !charSet[name] {
				return nil, fmt.Errorf("core: characteristic predictor %q missing from char_names", name)
			}
			continue
		}
		e, ok := b.Models[name]
		if !ok {
			return nil, fmt.Errorf("core: bundle has no model for counter %q", name)
		}
		cm, err := ImportCounterModel(e)
		if err != nil {
			return nil, err
		}
		if cm.Counter != name {
			return nil, fmt.Errorf("core: bundle model under key %q describes counter %q", name, cm.Counter)
		}
		if len(cm.chars) != len(b.CharNames) {
			return nil, fmt.Errorf("core: counter model %s uses %d characteristics, bundle has %d",
				name, len(cm.chars), len(b.CharNames))
		}
		for i, c := range cm.chars {
			if c != b.CharNames[i] {
				return nil, fmt.Errorf("core: counter model %s characteristic %d is %q, bundle has %q",
					name, i, c, b.CharNames[i])
			}
		}
		ps.Models[name] = cm
	}
	return ps, nil
}

// ExportQuantized is Export with the forest under its compact quantized
// flat encoding (contiguous node arrays, dictionary/float32-packed
// thresholds) instead of per-node trees. The encoding is only ever chosen
// where lossless, so a scaler loaded from the quantized bundle predicts
// bit-identically; the bundle is smaller and faster to load, at the cost of
// not carrying the pointer-walker reference trees. Stays within bundle
// version 1: the flat field is optional, and any reader of version 1
// understands both forms.
func (ps *ProblemScaler) ExportQuantized() (*Bundle, error) {
	fe, err := ps.Reduced.Forest.ExportQuantized()
	if err != nil {
		return nil, err
	}
	b := ps.Export()
	b.Forest = fe
	return b, nil
}

// Save writes the scaler as a single versioned JSON model bundle.
func (ps *ProblemScaler) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(ps.Export())
}

// SaveQuantized writes the scaler as a bundle with the quantized flat
// forest encoding. See ExportQuantized.
func (ps *ProblemScaler) SaveQuantized(w io.Writer) error {
	b, err := ps.ExportQuantized()
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(b)
}

// LoadProblemScaler reads a model bundle saved with Save, with full
// validation: a corrupted bundle errors instead of panicking.
func LoadProblemScaler(r io.Reader) (*ProblemScaler, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decoding model bundle: %w", err)
	}
	return ImportBundle(&b)
}

// SaveFile writes the scaler bundle to a file.
func (ps *ProblemScaler) SaveFile(path string) error {
	return ps.saveFileWith(path, ps.Save)
}

// SaveFileQuantized writes the quantized-forest scaler bundle to a file.
func (ps *ProblemScaler) SaveFileQuantized(path string) error {
	return ps.saveFileWith(path, ps.SaveQuantized)
}

func (ps *ProblemScaler) saveFileWith(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadProblemScalerFile reads a model bundle from a file.
func LoadProblemScalerFile(path string) (*ProblemScaler, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadProblemScaler(f)
}

// Response returns the response column the scaler predicts.
func (ps *ProblemScaler) Response() string { return ps.Reduced.cfg.response() }

// BundleMeta is the compact identity of a loaded model bundle — what a
// registry needs to name, list, and route to a model without reaching into
// the scaler's internals.
type BundleMeta struct {
	Version   int      `json:"bundle_version"`
	Response  string   `json:"response"`
	CharNames []string `json:"char_names"`
	Engine    string   `json:"engine"`
	NumTrees  int      `json:"num_trees"`
	TestR2    float64  `json:"test_r2"`
	Counters  int      `json:"counter_models"`
	// Degraded is true when the bundle discloses it was trained on a
	// repaired, incomplete collection.
	Degraded bool `json:"degraded"`
}

// Meta returns the scaler's bundle metadata.
func (ps *ProblemScaler) Meta() BundleMeta {
	return BundleMeta{
		Version:   BundleVersion,
		Response:  ps.Response(),
		CharNames: append([]string(nil), ps.CharNames...),
		Engine:    ps.Reduced.Forest.Engine(),
		NumTrees:  ps.Reduced.Forest.NumTrees(),
		TestR2:    ps.Reduced.TestR2,
		Counters:  len(ps.Models),
		Degraded:  ps.Degradation != nil,
	}
}

// CounterNames returns the modeled counters in sorted order.
func (ps *ProblemScaler) CounterNames() []string {
	out := make([]string, 0, len(ps.Models))
	for n := range ps.Models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
