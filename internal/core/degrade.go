package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"blackforest/internal/dataset"
	"blackforest/internal/profiler"
)

// DefaultMinCompleteness is the default column-completeness threshold for
// degraded collections: counters observed in fewer than this fraction of
// runs are dropped from the frame; counters at or above it are kept with
// missing cells mean-imputed.
const DefaultMinCompleteness = 0.8

// DegradedColumn records what happened to one incomplete counter column.
type DegradedColumn struct {
	Name string `json:"name"`
	// Completeness is the fraction of runs that reported the counter.
	Completeness float64 `json:"completeness"`
	// Action is "dropped" or "imputed".
	Action string `json:"action"`
	// ImputedValue is the column mean substituted into missing cells
	// (present only when Action is "imputed").
	ImputedValue float64 `json:"imputed_value,omitempty"`
}

// Degradation describes how an incomplete collection was repaired before
// training. It is recorded in the saved model bundle so a served model
// discloses that it was fit on degraded data.
type Degradation struct {
	// MinCompleteness is the threshold that decided drop vs impute.
	MinCompleteness float64 `json:"min_completeness"`
	// Rows is the number of collected runs.
	Rows int `json:"rows"`
	// Columns lists every counter column that was incomplete, sorted by
	// name.
	Columns []DegradedColumn `json:"columns"`
}

// Dropped returns the names of columns removed from the frame.
func (d *Degradation) Dropped() []string { return d.withAction("dropped") }

// Imputed returns the names of columns kept with mean-imputed cells.
func (d *Degradation) Imputed() []string { return d.withAction("imputed") }

func (d *Degradation) withAction(action string) []string {
	if d == nil {
		return nil
	}
	var out []string
	for _, c := range d.Columns {
		if c.Action == action {
			out = append(out, c.Name)
		}
	}
	return out
}

// String renders a one-line summary for CLI warnings.
func (d *Degradation) String() string {
	if d == nil || len(d.Columns) == 0 {
		return "complete collection"
	}
	return fmt.Sprintf("degraded collection over %d runs: %d column(s) dropped (%s), %d imputed (%s) at threshold %g",
		d.Rows, len(d.Dropped()), strings.Join(d.Dropped(), ", "),
		len(d.Imputed()), strings.Join(d.Imputed(), ", "), d.MinCompleteness)
}

// validateDegradation checks a bundle's degradation record so a corrupt
// or hand-edited bundle errors at load instead of reporting nonsense.
func validateDegradation(d *Degradation) error {
	if d == nil {
		return nil
	}
	if d.MinCompleteness < 0 || d.MinCompleteness > 1 || math.IsNaN(d.MinCompleteness) {
		return fmt.Errorf("core: bundle degradation threshold %v out of [0,1]", d.MinCompleteness)
	}
	if d.Rows < 0 {
		return fmt.Errorf("core: bundle degradation has negative row count %d", d.Rows)
	}
	for _, c := range d.Columns {
		if c.Name == "" {
			return fmt.Errorf("core: bundle degradation column with empty name")
		}
		if c.Completeness < 0 || c.Completeness >= 1 || math.IsNaN(c.Completeness) {
			return fmt.Errorf("core: bundle degradation column %q completeness %v out of [0,1)", c.Name, c.Completeness)
		}
		switch c.Action {
		case "dropped":
		case "imputed":
			if math.IsNaN(c.ImputedValue) || math.IsInf(c.ImputedValue, 0) {
				return fmt.Errorf("core: bundle degradation column %q has non-finite imputed value", c.Name)
			}
		default:
			return fmt.Errorf("core: bundle degradation column %q has unknown action %q", c.Name, c.Action)
		}
	}
	return nil
}

// assembleFrame tabulates profiles into a modeling frame, tolerating
// counters missing from some runs (injected dropout, or real multi-pass
// collection loss). When every profile is complete it defers to
// profiler.ToFrame, taking the exact historic code path so fault-free
// collections stay bit-identical. Otherwise it assembles the union of
// counters, drops columns observed in fewer than minCompleteness of the
// runs, mean-imputes the rest, and reports the decisions.
func assembleFrame(profiles []*profiler.Profile, minCompleteness float64) (*dataset.Frame, *Degradation, error) {
	degradedAny := false
	for _, p := range profiles {
		if len(p.Dropped) > 0 {
			degradedAny = true
			break
		}
	}
	if !degradedAny {
		f, err := profiler.ToFrame(profiles)
		return f, nil, err
	}
	if minCompleteness <= 0 {
		minCompleteness = DefaultMinCompleteness
	}
	if len(profiles) == 0 {
		return nil, nil, fmt.Errorf("profiler: no profiles to tabulate")
	}

	first := profiles[0]
	charNames := make([]string, 0, len(first.Characteristics))
	for n := range first.Characteristics {
		charNames = append(charNames, n)
	}
	sort.Strings(charNames)

	// The counter vocabulary is the union of everything any run reported
	// or lost — so a counter dropped from every run is still recorded.
	metricSet := make(map[string]bool)
	for _, p := range profiles {
		if p.Device != first.Device {
			return nil, nil, fmt.Errorf("profiler: mixed devices %s and %s in one frame", first.Device, p.Device)
		}
		for n := range p.Metrics {
			metricSet[n] = true
		}
		for _, n := range p.Dropped {
			metricSet[n] = true
		}
	}
	metricNames := make([]string, 0, len(metricSet))
	for n := range metricSet {
		metricNames = append(metricNames, n)
	}
	sort.Strings(metricNames)

	rows := len(profiles)
	deg := &Degradation{MinCompleteness: minCompleteness, Rows: rows}
	f := dataset.New()

	// Column order matches profiler.ToFrame: AppendRow adopts sorted row
	// keys, so the historic layout is every column name sorted together.
	allNames := make([]string, 0, len(charNames)+len(metricNames)+2)
	allNames = append(allNames, charNames...)
	allNames = append(allNames, metricNames...)
	allNames = append(allNames, ResponseColumn, PowerColumn)
	sort.Strings(allNames)

	for _, name := range allNames {
		switch name {
		case ResponseColumn:
			col := make([]float64, rows)
			for i, p := range profiles {
				col[i] = p.TimeMS
			}
			if err := f.AddColumn(name, col); err != nil {
				return nil, nil, err
			}
			continue
		case PowerColumn:
			col := make([]float64, rows)
			for i, p := range profiles {
				col[i] = p.PowerW
			}
			if err := f.AddColumn(name, col); err != nil {
				return nil, nil, err
			}
			continue
		}
		if _, isChar := first.Characteristics[name]; isChar {
			col := make([]float64, rows)
			for i, p := range profiles {
				v, ok := p.Characteristics[name]
				if !ok {
					return nil, nil, fmt.Errorf("profiler: profile missing characteristic %q", name)
				}
				col[i] = v
			}
			if err := f.AddColumn(name, col); err != nil {
				return nil, nil, err
			}
			continue
		}

		col := make([]float64, rows)
		present := make([]bool, rows)
		n, sum := 0, 0.0
		for i, p := range profiles {
			if v, ok := p.Metrics[name]; ok {
				col[i], present[i] = v, true
				n++
				sum += v
			}
		}
		completeness := float64(n) / float64(rows)
		if completeness >= 1 {
			if err := f.AddColumn(name, col); err != nil {
				return nil, nil, err
			}
			continue
		}
		if completeness < minCompleteness {
			deg.Columns = append(deg.Columns, DegradedColumn{
				Name: name, Completeness: completeness, Action: "dropped",
			})
			continue
		}
		mean := sum / float64(n)
		if math.IsNaN(mean) || math.IsInf(mean, 0) {
			return nil, nil, fmt.Errorf("core: column %q mean is not finite; cannot impute", name)
		}
		for i := range col {
			if !present[i] {
				col[i] = mean
			}
		}
		if err := f.AddColumn(name, col); err != nil {
			return nil, nil, err
		}
		deg.Columns = append(deg.Columns, DegradedColumn{
			Name: name, Completeness: completeness, Action: "imputed", ImputedValue: mean,
		})
	}
	return f, deg, nil
}
