package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"blackforest/internal/pca"
)

// PCARefinement is stage 4 of the pipeline: a PCA over the predictors with
// enough components retained to reach the configured variance target, plus
// the factor-loading interpretation aids the paper reads component meaning
// from ("PC1 is related to memory intensity…, PC2 to MIMD and ILP
// parallelism…").
type PCARefinement struct {
	PCA *pca.Result
	// Components is the number of retained components.
	Components int
	// ExplainedVariance is the cumulative variance share of the retained
	// components.
	ExplainedVariance float64
	// Loadings[k] are the variables most loaded on retained component k,
	// strongest first (signed values).
	Loadings [][]pca.Loading
	// Labels[k] is a heuristic interpretation of component k derived
	// from its dominant variables.
	Labels []string
}

// PCARefine runs the PCA refinement over the analysis's predictors
// (excluding problem characteristics, which are inputs rather than
// measured behavior, unless includeChars is true).
func (a *Analysis) PCARefine(includeChars bool) (*PCARefinement, error) {
	var vars []string
	for _, n := range a.Predictors {
		if !includeChars && isCharacteristic(n) {
			continue
		}
		vars = append(vars, n)
	}
	if len(vars) < 2 {
		return nil, fmt.Errorf("core: only %d variables available for PCA", len(vars))
	}
	x, err := a.Frame.Matrix(vars)
	if err != nil {
		return nil, err
	}
	res, err := pca.Fit(x, vars)
	if err != nil {
		return nil, err
	}

	k := res.ComponentsFor(a.cfg.PCAVariance)
	ref := &PCARefinement{PCA: res, Components: k}
	for _, share := range res.ExplainedVariance()[:k] {
		ref.ExplainedVariance += share
	}
	for c := 0; c < k; c++ {
		ld, err := res.ComponentLoadings(c)
		if err != nil {
			return nil, err
		}
		ref.Loadings = append(ref.Loadings, ld)
		ref.Labels = append(ref.Labels, labelComponent(ld))
	}
	return ref, nil
}

// MostEffectiveVariables implements the paper's pathological-case recipe:
// when the forest's importance does not separate predictors cleanly, select
// variables by their factor loadings on the retained components — the
// strongest-loaded variable of each component, deduplicated, up to k names.
func (r *PCARefinement) MostEffectiveVariables(k int) []string {
	seen := make(map[string]bool)
	var out []string
	// Round-robin over components, taking the next strongest loading of
	// each, so every retained component contributes.
	for rank := 0; len(out) < k; rank++ {
		progressed := false
		for c := 0; c < r.Components && len(out) < k; c++ {
			if rank >= len(r.Loadings[c]) {
				continue
			}
			progressed = true
			name := r.Loadings[c][rank].Variable
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// componentThemes maps counter-name fragments to the interpretation themes
// the paper assigns to components (§5.2: memory intensity, MIMD/ILP
// parallelism, SIMD efficiency, memory subsystem throughput).
var componentThemes = []struct {
	theme    string
	patterns []string
}{
	{"memory intensity", []string{"gld_request", "gst_request", "shared_load", "shared_store", "l2_read_transactions", "l2_write_transactions", "global_store_transaction", "l1_global_load"}},
	{"MIMD and ILP parallelism", []string{"inst_executed", "inst_issued", "ipc", "issue_slot_utilization", "achieved_occupancy", "inst_replay_overhead", "shared_replay_overhead"}},
	{"SIMD efficiency", []string{"warp_execution_efficiency", "divergent_branch", "branch"}},
	{"memory subsystem throughput", []string{"throughput", "ldst_fu_utilization", "_efficiency"}},
}

// labelComponent names a component after the theme its strongest loadings
// belong to.
func labelComponent(loadings []pca.Loading) string {
	scores := make(map[string]float64)
	limit := len(loadings)
	if limit > 6 {
		limit = 6
	}
	for _, ld := range loadings[:limit] {
		for _, th := range componentThemes {
			for _, p := range th.patterns {
				if strings.Contains(ld.Variable, p) {
					scores[th.theme] += math.Abs(ld.Value)
					break
				}
			}
		}
	}
	if len(scores) == 0 {
		return "mixed"
	}
	type kv struct {
		k string
		v float64
	}
	ranked := make([]kv, 0, len(scores))
	for k, v := range scores {
		ranked = append(ranked, kv{k, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].k < ranked[j].k
	})
	return ranked[0].k
}

// isCharacteristic reports whether a predictor is a problem or machine
// characteristic rather than a measured counter.
func isCharacteristic(name string) bool {
	switch name {
	case "size", "block_size", "wsched", "freq", "smp", "rco", "mbw", "l1c", "l2c":
		return true
	}
	return false
}
