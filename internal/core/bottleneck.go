package core

import (
	"strings"

	"blackforest/internal/stats"
)

// Direction describes how a counter's partial dependence moves the
// predicted execution time over the counter's observed range.
type Direction int

const (
	// Mixed: no monotone relationship over the full range — the paper's
	// cue to fall back on PCA ("variables are strongly correlated only
	// for part of the range").
	Mixed Direction = iota
	// Positive: more of the counter ⇒ more time.
	Positive
	// Negative: more of the counter ⇒ less time.
	Negative
)

// String returns the direction label.
func (d Direction) String() string {
	switch d {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	default:
		return "mixed"
	}
}

// Bottleneck is one diagnosed performance limiter: an influential counter,
// how it moves the predicted time, the performance pattern it signals, and
// a suggested elimination strategy (§1: "variable importance can be
// correlated to performance patterns, enabling us to provide systematic
// bottleneck detection … as well as suggest potential elimination
// strategies").
type Bottleneck struct {
	Counter     string
	Rank        int     // 1-based importance rank
	PctIncMSE   float64 // scaled permutation importance
	Direction   Direction
	Correlation float64 // Pearson r of the partial-dependence profile
	Pattern     string
	Remedy      string
}

// patternRules map counter-name fragments to performance patterns and
// remedies, in priority order.
var patternRules = []struct {
	fragment string
	pattern  string
	remedy   string
}{
	{"shared_replay_overhead", "shared memory bank conflicts serializing warp instructions", "pad shared arrays or switch to sequential addressing so lanes hit distinct banks"},
	{"l1_shared_bank_conflict", "shared memory bank conflicts", "restructure shared-memory indexing (e.g. +1 padding) to spread lanes across banks"},
	{"shared_load_replay", "shared memory load replays (bank conflicts)", "restructure shared-memory indexing to avoid multi-way bank access"},
	{"shared_store_replay", "shared memory store replays (bank conflicts)", "restructure shared-memory indexing to avoid multi-way bank access"},
	{"inst_replay_overhead", "instruction replays (serialization from conflicts or uncoalesced accesses)", "remove the underlying conflicts: coalesce global accesses and fix shared-memory patterns"},
	{"divergent_branch", "warp divergence serializing execution paths", "reorganize thread-to-data mapping so warps branch uniformly"},
	{"l1_global_load_miss", "poor global-load locality (L1 misses)", "improve spatial locality or stage reused data in shared memory"},
	{"l1_global_load_hit", "global-load traffic served by L1", "working set is cache-resident; consider increasing occupancy or ILP to cover the remaining latency"},
	{"global_store_transaction", "global store traffic (uncoalesced or voluminous stores)", "coalesce stores and widen per-thread output to amortize transactions"},
	{"l2_read_transactions", "L2 read traffic", "reduce memory footprint or improve reuse in shared memory/L1"},
	{"l2_write_transactions", "L2 write traffic", "reduce write volume or coalesce stores"},
	{"l2_read_throughput", "memory subsystem read pressure", "reduce redundant loads; stage reused tiles in shared memory"},
	{"l2_write_throughput", "memory subsystem write pressure", "reduce write volume or batch outputs"},
	{"dram_read_throughput", "device-memory bandwidth pressure (reads)", "the kernel is nearing the bandwidth roof; reduce bytes moved per result"},
	{"dram_write_throughput", "device-memory bandwidth pressure (writes)", "reduce bytes written per result"},
	{"gld_requested_throughput", "requested load bandwidth below hardware capability", "issue wider or more concurrent loads to saturate the memory system"},
	{"gst_requested_throughput", "requested store bandwidth", "balance store volume against available bandwidth"},
	{"gld_efficiency", "gap between requested and delivered load bytes (coalescing)", "align and coalesce global loads to warp-contiguous segments"},
	{"gst_efficiency", "gap between requested and delivered store bytes (coalescing)", "align and coalesce global stores"},
	{"gld_request", "global load instruction volume", "increase data reuse (shared memory tiling) to cut load instructions"},
	{"gst_request", "global store instruction volume", "accumulate in registers and store once per result"},
	{"achieved_occupancy", "insufficient resident warps to hide latency", "raise occupancy: smaller blocks' register/shared footprints, or more blocks"},
	{"issue_slot_utilization", "issue-slot pressure", "reduce instruction count or replays"},
	{"warp_execution_efficiency", "idle lanes within warps", "map work so all 32 lanes stay active (avoid tiny blocks and divergence)"},
	{"ipc", "instruction throughput", "kernel is compute-limited; reduce per-thread instruction count"},
	{"ldst_fu_utilization", "load/store unit pressure", "reduce memory instruction count via wider accesses"},
	{"atomic_replay_overhead", "atomic same-address contention serializing read-modify-writes", "privatize accumulators (per-block shared copies) or spread updates over more addresses"},
	{"shared_atom_count", "shared-memory atomic volume", "accumulate per-thread partials in registers before the atomic merge"},
	{"atom_count", "global atomic operation volume", "privatize accumulators in shared memory and merge once per block"},
	{"shared_load", "shared memory load volume", "exploit register reuse to cut shared traffic"},
	{"shared_store", "shared memory store volume", "exploit register reuse to cut shared traffic"},
	{"inst_executed", "total instruction volume", "reduce per-thread work or strength-reduce the inner loop"},
	{"inst_issued", "total issue volume including replays", "remove replay sources and redundant instructions"},
	{"branch", "branch volume", "unroll loops and flatten control flow"},
	{"size", "problem size (scaling driver, not a hardware bottleneck)", "expected driver of execution time"},
	{"block_size", "launch configuration", "tune threads per block for occupancy and coalescing"},
}

// classify returns the pattern/remedy for a counter name.
func classify(name string) (pattern, remedy string) {
	for _, r := range patternRules {
		if strings.Contains(name, r.fragment) {
			return r.pattern, r.remedy
		}
	}
	return "unclassified counter", "inspect the kernel with this counter in mind"
}

// Bottlenecks diagnoses the top-k most important predictors: each gets its
// partial-dependence direction and a performance-pattern classification.
// Counters whose partial dependence rises with time (Positive) are the
// performance bottlenecks in the paper's sense.
func (a *Analysis) Bottlenecks(k int) ([]Bottleneck, error) {
	const gridSize = 25
	if k > len(a.Importance) {
		k = len(a.Importance)
	}
	out := make([]Bottleneck, 0, k)
	for i := 0; i < k; i++ {
		imp := a.Importance[i]
		grid, resp, err := a.Forest.PartialDependence(imp.Name, gridSize)
		if err != nil {
			return nil, err
		}
		r := stats.Correlation(grid, resp)
		dir := Mixed
		switch {
		case r > 0.6:
			dir = Positive
		case r < -0.6:
			dir = Negative
		}
		pattern, remedy := classify(imp.Name)
		out = append(out, Bottleneck{
			Counter:     imp.Name,
			Rank:        i + 1,
			PctIncMSE:   imp.PctIncMSE,
			Direction:   dir,
			Correlation: r,
			Pattern:     pattern,
			Remedy:      remedy,
		})
	}
	return out, nil
}

// NeedsPCA reports whether the analysis hits the paper's pathological
// cases: low variance explained, or no top predictor with a clean monotone
// partial dependence — the cue to refine with PCA.
func (a *Analysis) NeedsPCA(bottlenecks []Bottleneck) bool {
	if a.VarExplained < 0.8 {
		return true
	}
	for _, b := range bottlenecks {
		if b.Direction != Mixed {
			return false
		}
	}
	return true
}
