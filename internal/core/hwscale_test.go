package core

import (
	"math"
	"strings"
	"testing"

	"blackforest/internal/dataset"
	"blackforest/internal/gpusim"
	"blackforest/internal/kernels"
	"blackforest/internal/profiler"
	"blackforest/internal/stats"
)

// profileOn runs one workload on the named device with every block
// simulated and noise disabled, so counters are exact and comparable
// across architectures.
func profileOn(t *testing.T, device string, w profiler.Workload) *profiler.Profile {
	t.Helper()
	dev, err := gpusim.LookupDevice(device)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profiler.New(dev, profiler.Options{MaxSimBlocks: 0, NoiseSigma: -1}).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestFermiKeplerCounterMapping(t *testing.T) {
	// The §7 counter-evolution problem, pinned: Fermi reports shared-memory
	// conflicts as one l1_shared_bank_conflict event; Kepler splits the
	// same replays into shared_load_replay and shared_store_replay. Both
	// modeled devices have 32 banks, so the event totals must map exactly.
	cases := []struct {
		name string
		mk   func(seed uint64) profiler.Workload
	}{
		// reduce1's strided indexing conflicts heavily; reduce2 is the
		// zero-counter edge (conflict-free, all replay events 0).
		{"reduce1-conflicting", func(seed uint64) profiler.Workload {
			return &kernels.Reduction{Variant: 1, N: 4096, BlockSize: 256, Seed: seed}
		}},
		{"reduce2-zero-conflicts", func(seed uint64) profiler.Workload {
			return &kernels.Reduction{Variant: 2, N: 4096, BlockSize: 256, Seed: seed}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fermi := profileOn(t, "GTX580", tc.mk(11)).Metrics
			kepler := profileOn(t, "K20m", tc.mk(11)).Metrics

			for _, name := range []string{"shared_load_replay", "shared_store_replay"} {
				if _, ok := fermi[name]; ok {
					t.Errorf("Fermi exposes Kepler-only counter %s", name)
				}
			}
			for _, name := range []string{"l1_shared_bank_conflict", "l1_global_load_hit", "l1_global_load_miss"} {
				if _, ok := kepler[name]; ok {
					t.Errorf("Kepler exposes Fermi-only counter %s", name)
				}
			}
			conflict, ok := fermi["l1_shared_bank_conflict"]
			if !ok {
				t.Fatal("Fermi profile lacks l1_shared_bank_conflict")
			}
			replays := kepler["shared_load_replay"] + kepler["shared_store_replay"]
			if conflict != replays {
				t.Errorf("Fermi conflicts %v != Kepler replay sum %v", conflict, replays)
			}
			if tc.name == "reduce2-zero-conflicts" && conflict != 0 {
				t.Errorf("conflict-free kernel reports %v conflicts", conflict)
			}
		})
	}
}

func TestCommonColumnsTable(t *testing.T) {
	mk := func(names ...string) *dataset.Frame {
		cols := make([][]float64, len(names))
		for i := range cols {
			cols[i] = []float64{1, 2}
		}
		f, err := dataset.FromColumns(names, cols)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	cases := []struct {
		name string
		a, b []string
		want []string
	}{
		{
			name: "identical vocabularies",
			a:    []string{"size", "gld_request", ResponseColumn},
			b:    []string{"size", "gld_request", ResponseColumn},
			want: []string{"size", "gld_request", ResponseColumn},
		},
		{
			// Fermi-only vs Kepler-only replay counters drop out; the
			// shared events survive in a's order.
			name: "arch-specific counters excluded",
			a:    []string{"l1_shared_bank_conflict", "gld_request", "size", ResponseColumn},
			b:    []string{"shared_load_replay", "shared_store_replay", "size", "gld_request", ResponseColumn},
			want: []string{"gld_request", "size", ResponseColumn},
		},
		{
			// A degraded target collection dropped a counter entirely: the
			// cross-device vocabulary must shrink accordingly.
			name: "column lost to degradation",
			a:    []string{"size", "gld_request", "shared_load", ResponseColumn},
			b:    []string{"size", "gld_request", ResponseColumn},
			want: []string{"size", "gld_request", ResponseColumn},
		},
		{
			name: "no overlap",
			a:    []string{"alpha", "beta"},
			b:    []string{"gamma", "delta"},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := commonColumns(mk(tc.a...), mk(tc.b...))
			if len(got) != len(tc.want) {
				t.Fatalf("commonColumns = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("commonColumns = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// hwFrame builds a synthetic two-counter frame where size drives time, and
// appends any extra named columns with the given generator.
func hwFrame(t *testing.T, seed uint64, n int, extra map[string]func(i int, size float64) float64) *dataset.Frame {
	t.Helper()
	rng := stats.NewRNG(seed)
	names := []string{"size", "gld_request", ResponseColumn}
	sizes := make([]float64, n)
	counter := make([]float64, n)
	times := make([]float64, n)
	for i := 0; i < n; i++ {
		s := float64(64 * (1 + rng.Intn(32)))
		sizes[i] = s
		counter[i] = 2 * s
		times[i] = 0.001*s + 0.0005*rng.NormFloat64()
	}
	cols := [][]float64{sizes, counter, times}
	for name, gen := range extra {
		col := make([]float64, n)
		for i := range col {
			col[i] = gen(i, sizes[i])
		}
		names = append(names, name)
		cols = append(cols, col)
	}
	f, err := dataset.FromColumns(names, cols)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestHardwareScaleEdgeCases(t *testing.T) {
	devA := mustLookup(t, "GTX580")
	devB := mustLookup(t, "K20m")
	zero := func(int, float64) float64 { return 0 }
	prop := func(_ int, s float64) float64 { return 3 * s }
	cases := []struct {
		name         string
		extraTrain   map[string]func(int, float64) float64
		extraTarget  map[string]func(int, float64) float64
		wantInCommon string // a column that must survive into the model
	}{
		{
			// A counter that never fires (conflict-free kernel) is constant
			// zero on both devices; training must not blow up on it.
			name:        "zero counter on both devices",
			extraTrain:  map[string]func(int, float64) float64{"l2_write_transactions": zero},
			extraTarget: map[string]func(int, float64) float64{"l2_write_transactions": zero},
		},
		{
			// Fermi trains with l1_shared_bank_conflict, Kepler reports the
			// replay pair instead: none of the three are shared, so the
			// cross-device forest falls back to the common events.
			name:        "kepler-only replay counters",
			extraTrain:  map[string]func(int, float64) float64{"l1_shared_bank_conflict": prop},
			extraTarget: map[string]func(int, float64) float64{"shared_load_replay": prop, "shared_store_replay": prop},
		},
		{
			// Degraded target collection dropped shared_load below the
			// completeness threshold: only the train side still has it.
			name:       "target column dropped by degradation",
			extraTrain: map[string]func(int, float64) float64{"shared_load": prop},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hw, err := HardwareScale(
				hwFrame(t, 1, 60, tc.extraTrain),
				hwFrame(t, 2, 60, tc.extraTarget),
				devA, devB, quickConfig(9))
			if err != nil {
				t.Fatal(err)
			}
			if hw.Straightforward == nil || hw.Mixed == nil {
				t.Fatal("evaluations missing")
			}
			for _, ev := range []*Evaluation{hw.Straightforward, hw.Mixed} {
				if math.IsNaN(ev.R2) || math.IsInf(ev.R2, 0) {
					t.Fatalf("non-finite R² %v", ev.R2)
				}
				if len(ev.Predicted) == 0 {
					t.Fatal("no predictions on the held-out target rows")
				}
				for _, p := range ev.Predicted {
					if math.IsNaN(p) || math.IsInf(p, 0) {
						t.Fatalf("non-finite prediction %v", p)
					}
				}
			}
		})
	}
}

func TestFitAndEvaluateUsablePredictors(t *testing.T) {
	pool := hwFrame(t, 3, 60, nil)
	test := hwFrame(t, 4, 20, nil)
	cases := []struct {
		name       string
		predictors []string
		wantErr    string
	}{
		{name: "all present", predictors: []string{"size", "gld_request"}},
		// Predictors lost to degradation or architecture mismatch are
		// silently skipped as long as one survives.
		{name: "some missing", predictors: []string{"l1_shared_bank_conflict", "size"}},
		{name: "none usable", predictors: []string{"l1_shared_bank_conflict", "shared_load_replay"},
			wantErr: "no usable predictors"},
		{name: "empty list", predictors: nil, wantErr: "no usable predictors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev, err := fitAndEvaluate(pool, test, tc.predictors, quickConfig(5))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(ev.Predicted) != test.NumRows() {
				t.Fatalf("%d predictions for %d test rows", len(ev.Predicted), test.NumRows())
			}
		})
	}
}

// mustLookup returns the named device or fails the test.
func mustLookup(t *testing.T, name string) *gpusim.Device {
	t.Helper()
	dev, err := gpusim.LookupDevice(name)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}
