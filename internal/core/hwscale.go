package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"blackforest/internal/dataset"
	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
	"blackforest/internal/stats"
)

// CollectPair profiles two devices' sweeps concurrently — the §6.2
// hardware-scaling experiments profile the same workload sweep on both
// GPUs, and the two collections are fully independent. When neither
// option sets Workers, the CPU budget is split between the devices so the
// pair does not oversubscribe the host; explicit Workers values are
// honored per side. Each frame is bit-for-bit what a standalone Collect
// with the same options would produce.
func CollectPair(
	devA *gpusim.Device, runsA []profiler.Workload, optA CollectOptions,
	devB *gpusim.Device, runsB []profiler.Workload, optB CollectOptions,
) (*dataset.Frame, *dataset.Frame, error) {
	// With a shared gate, the global pool already bounds simulation work
	// across both sides; splitting the CPU budget would only starve it.
	if optA.Gate == nil && optB.Gate == nil && optA.Workers <= 0 && optB.Workers <= 0 {
		half := runtime.NumCPU() / 2
		if half < 1 {
			half = 1
		}
		optA.Workers, optB.Workers = half, half
	}
	var (
		frameA, frameB *dataset.Frame
		errA, errB     error
		wg             sync.WaitGroup
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		frameA, errA = Collect(devA, runsA, optA)
	}()
	go func() {
		defer wg.Done()
		frameB, errB = Collect(devB, runsB, optB)
	}()
	wg.Wait()
	if errA != nil {
		return nil, nil, fmt.Errorf("%s sweep: %w", devA.Name, errA)
	}
	if errB != nil {
		return nil, nil, fmt.Errorf("%s sweep: %w", devB.Name, errB)
	}
	return frameA, frameB, nil
}

// InjectMachineCharacteristics returns the frame extended with the Table 2
// hardware metrics of the device as constant columns — the §6.2 step that
// lets one forest reason across GPUs.
func InjectMachineCharacteristics(frame *dataset.Frame, dev *gpusim.Device) (*dataset.Frame, error) {
	out, err := frame.Select(frame.Names()...)
	if err != nil {
		return nil, err
	}
	metrics := dev.HardwareMetrics()
	for _, name := range gpusim.HardwareMetricNames() {
		if err := out.AddConstColumn(name, metrics[name]); err != nil {
			return nil, fmt.Errorf("core: injecting %s: %w", name, err)
		}
	}
	return out, nil
}

// commonColumns returns the column names present in both frames, in a's
// order.
func commonColumns(a, b *dataset.Frame) []string {
	var out []string
	for _, n := range a.Names() {
		if b.Has(n) {
			out = append(out, n)
		}
	}
	return out
}

// HWScaling is the result of a hardware-scaling experiment: predicting a
// kernel's execution times on a target GPU from a forest trained on a
// different (similar) GPU plus a small calibration set from the target.
type HWScaling struct {
	TrainDevice  string
	TargetDevice string

	// TrainImportance and TargetImportance are the per-device rankings
	// used by the similarity test (each from a forest trained on that
	// device's data alone, over the common counter vocabulary).
	TrainImportance  []string
	TargetImportance []string
	// Similarity is the rank correlation of variable importance between
	// the devices; Similar applies the threshold (the paper's
	// "sufficiently similar hardware" test).
	Similarity float64
	Similar    bool

	// Straightforward is the §6.2 default: forest trained on the
	// training device + calibration rows, using the training device's
	// important variables, evaluated on the target's held-out rows.
	Straightforward *Evaluation
	// MixedVariables is the workaround predictor set (union of both
	// devices' top variables, as used for NW in Fig. 8(c)).
	MixedVariables []string
	// Mixed is the evaluation with the mixed predictor set.
	Mixed *Evaluation
}

// similarityThreshold is the rank correlation above which two devices
// count as "sufficiently similar" for straightforward hardware scaling.
const similarityThreshold = 0.5

// HardwareScale runs the §6.2 experiment. frameTrain/frameTarget are the
// collected frames (without machine characteristics — they are injected
// here) for the same workload sweep on the two devices.
func HardwareScale(frameTrain, frameTarget *dataset.Frame, devTrain, devTarget *gpusim.Device, cfg Config) (*HWScaling, error) {
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.8
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 7
	}
	ft, err := InjectMachineCharacteristics(frameTrain, devTrain)
	if err != nil {
		return nil, err
	}
	fg, err := InjectMachineCharacteristics(frameTarget, devTarget)
	if err != nil {
		return nil, err
	}

	// Per-device analyses for the similarity test run over each device's
	// FULL counter vocabulary — this is where the paper's §7 counter-
	// evolution problem surfaces: a variable important on Fermi (e.g.
	// l1_global_load_miss for NW) may not exist at all on Kepler.
	at, err := Analyze(ft, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: analyzing %s data: %w", devTrain.Name, err)
	}
	ag, err := Analyze(fg, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: analyzing %s data: %w", devTarget.Name, err)
	}

	// The cross-device forest can only use the shared vocabulary.
	common := commonColumns(ft, fg)
	ft, err = ft.Select(common...)
	if err != nil {
		return nil, err
	}
	fg, err = fg.Select(common...)
	if err != nil {
		return nil, err
	}

	hw := &HWScaling{
		TrainDevice:      devTrain.Name,
		TargetDevice:     devTarget.Name,
		TrainImportance:  at.TopPredictors(cfg.TopK),
		TargetImportance: ag.TopPredictors(cfg.TopK),
	}
	hw.Similarity = importanceRankCorrelation(at, ag)
	hw.Similar = hw.Similarity >= similarityThreshold

	// Calibration: the target's training split joins the training pool.
	// The split replays Analyze's RNG stream so the restricted frame
	// partitions into the same rows ag used.
	calib, test, err := fg.Split(stats.NewRNG(cfg.Seed^0x5b117), cfg.TrainFrac)
	if err != nil {
		return nil, err
	}
	pool, err := ft.Bind(calib)
	if err != nil {
		return nil, err
	}

	// Straightforward prediction: the training device's top variables
	// (plus machine characteristics, which now vary across the pool).
	straightVars := withMachineChars(hw.TrainImportance)
	hw.Straightforward, err = fitAndEvaluate(pool, test, straightVars, cfg)
	if err != nil {
		return nil, err
	}

	// Mixed-variable workaround: union of both devices' top variables.
	hw.MixedVariables = unionPreservingOrder(hw.TrainImportance, hw.TargetImportance)
	hw.Mixed, err = fitAndEvaluate(pool, test, withMachineChars(hw.MixedVariables), cfg)
	if err != nil {
		return nil, err
	}
	return hw, nil
}

// fitAndEvaluate trains a forest on pool over the given predictors and
// scores it on the test rows.
func fitAndEvaluate(pool, test *dataset.Frame, predictors []string, cfg Config) (*Evaluation, error) {
	// Guard against predictors missing from the pool (e.g. dropped as
	// constant in one device's frame).
	var usable []string
	for _, p := range predictors {
		if pool.Has(p) && test.Has(p) {
			usable = append(usable, p)
		}
	}
	if len(usable) == 0 {
		return nil, fmt.Errorf("core: no usable predictors among %v", predictors)
	}
	a, err := analyzeSplit(pool, pool, test, usable, cfg)
	if err != nil {
		return nil, err
	}
	pred, actual, err := a.PredictFrame(test)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Predicted: pred, Actual: actual}
	if test.Has("size") {
		sizes := test.MustColumn("size")
		for i := range pred {
			ev.Chars = append(ev.Chars, map[string]float64{"size": sizes[i]})
		}
	}
	ev.MSE = stats.MSE(pred, actual)
	ev.R2 = stats.RSquared(pred, actual)
	return ev, nil
}

// withMachineChars appends the Table 2 metric names to a predictor list
// (deduplicated).
func withMachineChars(vars []string) []string {
	return unionPreservingOrder(vars, gpusim.HardwareMetricNames())
}

// unionPreservingOrder merges b into a, keeping first-seen order.
func unionPreservingOrder(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range append(append([]string(nil), a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// importanceRankCorrelation computes the Spearman rank correlation between
// two analyses' importance rankings over their shared predictors.
func importanceRankCorrelation(a, b *Analysis) float64 {
	rankOf := func(an *Analysis) map[string]float64 {
		m := make(map[string]float64, len(an.Importance))
		for i, imp := range an.Importance {
			m[imp.Name] = float64(i)
		}
		return m
	}
	ra, rb := rankOf(a), rankOf(b)
	var names []string
	for n := range ra {
		if _, ok := rb[n]; ok {
			names = append(names, n)
		}
	}
	if len(names) < 3 {
		return 0
	}
	sort.Strings(names)
	xs := make([]float64, len(names))
	ys := make([]float64, len(names))
	for i, n := range names {
		xs[i] = ra[n]
		ys[i] = rb[n]
	}
	return stats.Correlation(xs, ys)
}
