package core

import (
	"errors"
	"fmt"
	"math"

	"blackforest/internal/dataset"
	"blackforest/internal/forest"
	"blackforest/internal/stats"
)

// Analysis is a fitted BlackForest model: the forest, its validation
// statistics, and the variable-importance ranking (§4.2 stages 2–3).
type Analysis struct {
	// Frame is the full collected data; Train and Test are its split.
	Frame *dataset.Frame
	Train *dataset.Frame
	Test  *dataset.Frame
	// Predictors are the columns the forest was trained on.
	Predictors []string
	// Forest is the fitted random forest (response: time_ms).
	Forest *forest.Forest
	// Importance is the ranking, most important first.
	Importance []forest.Importance

	// OOBMSE and VarExplained are the forest's out-of-bag statistics.
	OOBMSE       float64
	VarExplained float64
	// TestMSE and TestR2 measure held-out predictive power.
	TestMSE float64
	TestR2  float64

	cfg Config
}

// Analyze runs stages 2 and 3 of the pipeline on a collected frame:
// random 80:20 split, forest construction on the training set, validation
// on the test set, and variable-importance extraction.
func Analyze(frame *dataset.Frame, cfg Config) (*Analysis, error) {
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.8
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 7
	}
	if cfg.PCAVariance <= 0 || cfg.PCAVariance > 1 {
		cfg.PCAVariance = 0.96
	}
	if !frame.Has(cfg.response()) {
		return nil, fmt.Errorf("core: frame has no %s column", cfg.response())
	}
	if frame.NumRows() < 10 {
		return nil, fmt.Errorf("core: %d rows are too few to model (need at least 10)", frame.NumRows())
	}

	rng := stats.NewRNG(cfg.Seed ^ 0x5b117)
	train, test, err := frame.Split(rng, cfg.TrainFrac)
	if err != nil {
		return nil, err
	}
	return analyzeSplit(frame, train, test, Predictors(frame), cfg)
}

// AnalyzeWithPredictors is Analyze restricted to an explicit predictor set
// (used by the reduced model and the hardware-scaling workarounds).
func AnalyzeWithPredictors(frame *dataset.Frame, predictors []string, cfg Config) (*Analysis, error) {
	if len(predictors) == 0 {
		return nil, errors.New("core: empty predictor set")
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x5b117)
	train, test, err := frame.Split(rng, cfg.TrainFrac)
	if err != nil {
		return nil, err
	}
	return analyzeSplit(frame, train, test, predictors, cfg)
}

// analyzeSplit fits and validates a forest on a prepared split.
func analyzeSplit(frame, train, test *dataset.Frame, predictors []string, cfg Config) (*Analysis, error) {
	x, err := train.Matrix(predictors)
	if err != nil {
		return nil, err
	}
	y, err := train.Column(cfg.response())
	if err != nil {
		return nil, err
	}
	fcfg := cfg.Forest
	fcfg.Seed = cfg.Seed
	f, err := forest.Fit(x, y, predictors, fcfg)
	if err != nil {
		return nil, fmt.Errorf("core: fitting forest: %w", err)
	}

	a := &Analysis{
		Frame:        frame,
		Train:        train,
		Test:         test,
		Predictors:   append([]string(nil), predictors...),
		Forest:       f,
		Importance:   f.VariableImportance(),
		OOBMSE:       f.OOBMSE(),
		VarExplained: f.VarExplained(),
		cfg:          cfg,
	}
	if test.NumRows() > 0 {
		tx, err := test.Matrix(predictors)
		if err != nil {
			return nil, err
		}
		ty, err := test.Column(cfg.response())
		if err != nil {
			return nil, err
		}
		pred := f.PredictAll(tx)
		a.TestMSE = stats.MSE(pred, ty)
		a.TestR2 = stats.RSquared(pred, ty)
	}
	return a, nil
}

// TopPredictors returns the k most important predictor names.
func (a *Analysis) TopPredictors(k int) []string {
	if k > len(a.Importance) {
		k = len(a.Importance)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = a.Importance[i].Name
	}
	return out
}

// TopDistinctPredictors selects the k most important predictors while
// skipping any whose |correlation| with an already-selected predictor
// exceeds maxCorr — the paper's guard against highly correlated variables
// (§4.1.2) applied at selection time. Duplicated counters (e.g. the store
// throughput family, which differ only by constant factors) collapse to
// one representative, letting structurally different signals into the set.
func (a *Analysis) TopDistinctPredictors(k int, maxCorr float64) []string {
	if maxCorr <= 0 {
		maxCorr = 0.999
	}
	var out []string
	var cols [][]float64
	for _, imp := range a.Importance {
		if len(out) == k {
			break
		}
		col := a.Frame.MustColumn(imp.Name)
		dup := false
		for _, prev := range cols {
			if math.Abs(stats.Correlation(col, prev)) > maxCorr {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, imp.Name)
		cols = append(cols, col)
	}
	return out
}

// Reduce refits the model on only the top-k most important predictors and
// reports whether the reduced model retains the predictive power of the
// full one (paper: "we first validate that those variables keep similar
// predictive power as the initial set"). Retention is judged on held-out
// R²: the reduced model must reach at least retainFrac of the full model's
// (default 0.9 when retainFrac ≤ 0).
func (a *Analysis) Reduce(k int, retainFrac float64) (*Analysis, bool, error) {
	if retainFrac <= 0 {
		retainFrac = 0.9
	}
	reduced, err := analyzeSplit(a.Frame, a.Train, a.Test, a.TopPredictors(k), a.cfg)
	if err != nil {
		return nil, false, err
	}
	retained := reduced.TestR2 >= retainFrac*a.TestR2
	return reduced, retained, nil
}

// PartialDependence returns the partial dependence profile of a predictor
// against the predicted execution time.
func (a *Analysis) PartialDependence(name string, gridSize int) (grid, response []float64, err error) {
	return a.Forest.PartialDependence(name, gridSize)
}

// PredictFrame predicts the response for every row of a frame that
// contains the analysis's predictor columns. It returns predictions and,
// when the frame carries a response column, the actual values.
func (a *Analysis) PredictFrame(f *dataset.Frame) (pred, actual []float64, err error) {
	x, err := f.Matrix(a.Predictors)
	if err != nil {
		return nil, nil, err
	}
	pred = a.Forest.PredictAll(x)
	if f.Has(a.cfg.response()) {
		actual = append([]float64(nil), f.MustColumn(a.cfg.response())...)
	}
	return pred, actual, nil
}
