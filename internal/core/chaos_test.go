package core

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"blackforest/internal/faults"
	"blackforest/internal/gpusim"
)

func chaosDevice(t testing.TB) *gpusim.Device {
	t.Helper()
	dev, err := gpusim.LookupDevice("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestChaosCollectFaultsOffBitIdentical(t *testing.T) {
	dev := chaosDevice(t)
	opt := CollectOptions{MaxSimBlocks: 8, Seed: 3}
	base, err := Collect(dev, collectRuns(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = faults.New(faults.Config{Seed: 77}) // disabled profile → nil injector
	opt.Retries = 4
	frame, deg, err := CollectWithReport(dev, collectRuns(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("complete collection reported degradation: %+v", deg)
	}
	requireFramesEqual(t, "faults off vs baseline", base, frame)
}

func TestChaosCollectRetryMatchesFaultFree(t *testing.T) {
	dev := chaosDevice(t)
	base, err := Collect(dev, collectRuns(), CollectOptions{MaxSimBlocks: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := CollectOptions{
		MaxSimBlocks: 8, Seed: 3, Workers: 4,
		Faults:  faults.New(faults.Config{Seed: 21, RunFailure: 0.5}),
		Retries: 16,
	}
	frame, deg, err := CollectWithReport(dev, collectRuns(), opt)
	if err != nil {
		t.Fatalf("collection with retries did not recover: %v", err)
	}
	if deg != nil {
		t.Fatalf("run failures alone should not degrade columns: %+v", deg)
	}
	requireFramesEqual(t, "retried vs fault-free", base, frame)
}

func TestChaosCollectFailFast(t *testing.T) {
	dev := chaosDevice(t)
	opt := CollectOptions{
		MaxSimBlocks: 8, Seed: 3,
		Faults: faults.New(faults.Config{Seed: 21, RunFailure: 1}),
	}
	_, _, err := CollectWithReport(dev, collectRuns(), opt)
	if err == nil {
		t.Fatal("collection with runfail=1 and no retries succeeded")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error does not wrap ErrInjected: %v", err)
	}
}

func TestChaosCollectDropoutDegradesGracefully(t *testing.T) {
	dev := chaosDevice(t)
	base, err := Collect(dev, collectRuns(), CollectOptions{MaxSimBlocks: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := CollectOptions{
		MaxSimBlocks: 8, Seed: 3, Workers: 4,
		Faults:          faults.New(faults.Config{Seed: 8, CounterDropout: 0.25}),
		MinCompleteness: 0.8,
	}
	frame, deg, err := CollectWithReport(dev, collectRuns(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if deg == nil {
		t.Fatal("dropout=0.25 degraded nothing")
	}
	if deg.Rows != len(collectRuns()) || deg.MinCompleteness != 0.8 {
		t.Fatalf("degradation header wrong: %+v", deg)
	}
	if len(deg.Columns) == 0 {
		t.Fatal("degradation recorded no columns")
	}
	for _, c := range deg.Columns {
		switch c.Action {
		case "dropped":
			if c.Completeness >= 0.8 {
				t.Fatalf("column %q dropped at completeness %v ≥ threshold", c.Name, c.Completeness)
			}
			if frame.Has(c.Name) {
				t.Fatalf("dropped column %q still in frame", c.Name)
			}
		case "imputed":
			if c.Completeness < 0.8 || c.Completeness >= 1 {
				t.Fatalf("column %q imputed at completeness %v", c.Name, c.Completeness)
			}
		default:
			t.Fatalf("column %q has unknown action %q", c.Name, c.Action)
		}
	}
	// Every cell in the degraded frame is finite, and the response
	// columns are untouched by dropout.
	for _, name := range frame.Names() {
		for _, v := range frame.MustColumn(name) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite cell in column %q", name)
			}
		}
	}
	for _, resp := range []string{ResponseColumn, PowerColumn} {
		if !frame.Has(resp) {
			continue // may be constant-dropped only via keep list; Has must hold
		}
		want, got := base.MustColumn(resp), frame.MustColumn(resp)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("response column %q changed under dropout", resp)
		}
	}
	// The degraded frame still trains end to end.
	if frame.NumRows() >= 10 {
		if _, err := Analyze(frame, quickConfig(1)); err != nil {
			t.Fatalf("degraded frame does not train: %v", err)
		}
	}
}

func TestChaosStrictThresholdDropsEverythingIncomplete(t *testing.T) {
	dev := chaosDevice(t)
	opt := CollectOptions{
		MaxSimBlocks: 8, Seed: 3,
		Faults:          faults.New(faults.Config{Seed: 8, CounterDropout: 0.25}),
		MinCompleteness: 1,
	}
	frame, deg, err := CollectWithReport(dev, collectRuns(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if deg == nil {
		t.Fatal("expected degradation")
	}
	if n := len(deg.Imputed()); n != 0 {
		t.Fatalf("threshold 1 still imputed %d columns", n)
	}
	for _, name := range deg.Dropped() {
		if frame.Has(name) {
			t.Fatalf("dropped column %q survived", name)
		}
	}
}

// degradationFixture is a plausible record for persistence tests.
func degradationFixture() *Degradation {
	return &Degradation{
		MinCompleteness: 0.8,
		Rows:            64,
		Columns: []DegradedColumn{
			{Name: "gld_request", Completeness: 0.5, Action: "dropped"},
			{Name: "l1_global_load_hit", Completeness: 0.9, Action: "imputed", ImputedValue: 1234.5},
		},
	}
}

func TestDegradationRecordRoundTrip(t *testing.T) {
	ps := fitScaler(t, 6)
	ps.Degradation = degradationFixture()
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProblemScaler(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Degradation == nil {
		t.Fatal("degradation record lost in round trip")
	}
	if !reflect.DeepEqual(loaded.Degradation, ps.Degradation) {
		t.Fatalf("degradation drifted: %+v vs %+v", loaded.Degradation, ps.Degradation)
	}
	if got := loaded.Degradation.Dropped(); !reflect.DeepEqual(got, []string{"gld_request"}) {
		t.Fatalf("Dropped() = %v", got)
	}
	if got := loaded.Degradation.Imputed(); !reflect.DeepEqual(got, []string{"l1_global_load_hit"}) {
		t.Fatalf("Imputed() = %v", got)
	}
	if s := loaded.Degradation.String(); !strings.Contains(s, "gld_request") || !strings.Contains(s, "imputed") {
		t.Fatalf("summary %q omits the decisions", s)
	}
	var none *Degradation
	if s := none.String(); s != "complete collection" {
		t.Fatalf("nil degradation renders %q", s)
	}
}

func TestImportBundleRejectsBadDegradation(t *testing.T) {
	cases := map[string]*Degradation{
		"bad threshold":      {MinCompleteness: 1.5},
		"NaN threshold":      {MinCompleteness: math.NaN()},
		"negative rows":      {MinCompleteness: 0.8, Rows: -1},
		"empty column name":  {MinCompleteness: 0.8, Columns: []DegradedColumn{{Action: "dropped"}}},
		"unknown action":     {MinCompleteness: 0.8, Columns: []DegradedColumn{{Name: "x", Action: "zeroed"}}},
		"complete column":    {MinCompleteness: 0.8, Columns: []DegradedColumn{{Name: "x", Completeness: 1, Action: "imputed"}}},
		"non-finite imputed": {MinCompleteness: 0.8, Columns: []DegradedColumn{{Name: "x", Completeness: 0.9, Action: "imputed", ImputedValue: math.Inf(1)}}},
	}
	good := fitScaler(t, 6)
	for name, deg := range cases {
		b := good.Export()
		b.Degradation = deg
		if _, err := ImportBundle(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestChaosCorruptBundleLoad(t *testing.T) {
	ps := fitScaler(t, 6)
	ps.Degradation = degradationFixture()
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Faults-off wrap is a passthrough: the bundle loads unchanged.
	off := faults.New(faults.Config{Seed: 5})
	if _, err := LoadProblemScaler(off.WrapReader(bytes.NewReader(valid), 1)); err != nil {
		t.Fatalf("passthrough load failed: %v", err)
	}

	// Corruption and truncation must surface as errors (or, for a lucky
	// flip inside a numeric literal, a loadable bundle) — never a panic.
	corrupt := faults.New(faults.Config{Seed: 5, CorruptReads: 1})
	trunc := faults.New(faults.Config{Seed: 5, TruncateReads: 1})
	corruptErrs, truncErrs := 0, 0
	for id := uint64(0); id < 16; id++ {
		if _, err := LoadProblemScaler(corrupt.WrapReader(bytes.NewReader(valid), id)); err != nil {
			corruptErrs++
		}
		if _, err := LoadProblemScaler(trunc.WrapReader(bytes.NewReader(valid), id)); err != nil {
			truncErrs++
		}
	}
	if corruptErrs == 0 {
		t.Fatal("16 corrupted loads all succeeded")
	}
	if truncErrs == 0 {
		t.Fatal("16 truncated loads all succeeded")
	}
	// Determinism: the same identity fails the same way twice.
	for id := uint64(0); id < 4; id++ {
		_, err1 := LoadProblemScaler(corrupt.WrapReader(bytes.NewReader(valid), id))
		_, err2 := LoadProblemScaler(corrupt.WrapReader(bytes.NewReader(valid), id))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("identity %d: corruption outcome not reproducible", id)
		}
	}
}

// FuzzLoadDegradedBundle: bundles carrying a degradation record must
// round-trip or error cleanly, never panic.
func FuzzLoadDegradedBundle(f *testing.F) {
	ps := fitScaler(f, 6)
	ps.Degradation = degradationFixture()
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add(strings.Replace(valid, `"action":"imputed"`, `"action":"zeroed"`, 1))
	f.Add(strings.Replace(valid, `"min_completeness":0.8`, `"min_completeness":80`, 1))
	f.Add(`{"version":1,"degradation":{"columns":[{}]}}`)
	f.Add(`{"version":1,"degradation":null}`)
	f.Fuzz(func(t *testing.T, data string) {
		loaded, err := LoadProblemScaler(strings.NewReader(data))
		if err != nil {
			return
		}
		// Anything that loads must save and re-load with the degradation
		// record intact.
		var out bytes.Buffer
		if err := loaded.Save(&out); err != nil {
			t.Fatalf("loaded bundle does not save: %v", err)
		}
		again, err := LoadProblemScaler(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("saved bundle does not re-load: %v", err)
		}
		if !reflect.DeepEqual(again.Degradation, loaded.Degradation) {
			t.Fatal("degradation record drifted through save/load")
		}
	})
}
