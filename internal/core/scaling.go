package core

import (
	"errors"
	"fmt"
	"math"

	"blackforest/internal/dataset"
	"blackforest/internal/glm"
	"blackforest/internal/mars"
	"blackforest/internal/stats"
)

// ModelKind selects how counters are modeled in terms of problem
// characteristics (§4.2 results interpretation: "unless confronted with
// trivial cases … for which (generalized) linear models are adequate, we
// use MARS regressions").
type ModelKind int

const (
	// AutoModel fits a GLM first and falls back to MARS when the linear
	// fit is poor.
	AutoModel ModelKind = iota
	// GLMModel forces generalized linear models (paper's matrix-multiply
	// counter models).
	GLMModel
	// MARSModel forces MARS (paper's Needleman-Wunsch counter models,
	// built with R's earth).
	MARSModel
)

// String returns the kind's name.
func (k ModelKind) String() string {
	switch k {
	case GLMModel:
		return "glm"
	case MARSModel:
		return "mars"
	default:
		return "auto"
	}
}

// glmFallbackR2 is the training-R² threshold below which AutoModel
// switches from GLM to MARS — the paper's rule: GLMs only for the trivial
// cases they fit essentially perfectly, MARS for everything else.
const glmFallbackR2 = 0.995

// CounterModel predicts one counter's value from problem characteristics.
type CounterModel struct {
	Counter string
	// Kind is "glm" or "mars" — whichever was selected.
	Kind string
	// TrainR2 is R² of the model on its training data.
	TrainR2 float64
	// ResidualDeviance is the GLM residual deviance (0 for MARS) — the
	// fit-quality measure the paper quotes for Fig. 5(c).
	ResidualDeviance float64

	chars []string
	// scales normalizes each characteristic before the polynomial basis
	// expansion, keeping the GLM design well-conditioned (raw sizes cubed
	// reach 10⁹⁺).
	scales []float64
	g      *glm.Model
	m      *mars.Model
}

// Predict returns the modeled counter value for the characteristics,
// given in the model's characteristic order.
func (cm *CounterModel) Predict(chars []float64) float64 {
	if cm.m != nil {
		return cm.m.Predict(chars)
	}
	return cm.g.Predict(polyExpandRow(cm.normalize(chars)))
}

// normalize scales a characteristic vector by the training maxima.
func (cm *CounterModel) normalize(chars []float64) []float64 {
	out := make([]float64, len(chars))
	for i, c := range chars {
		out[i] = c / cm.scales[i]
	}
	return out
}

// polyDegree is the polynomial basis degree for GLM counter models: raw
// counters grow polynomially in problem size (MM: O(n³) work, O(n²) data),
// so a cubic basis in each characteristic covers the trivial cases.
const polyDegree = 3

// polyExpandRow builds the GLM basis [c, c², c³, log(1+c), 1/(ε+c)] per
// (normalized) characteristic. The rational term captures throughput-style
// counters, which behave like work/time ratios and peak mid-range.
func polyExpandRow(chars []float64) []float64 {
	out := make([]float64, 0, len(chars)*(polyDegree+2))
	for _, c := range chars {
		p := c
		for d := 0; d < polyDegree; d++ {
			out = append(out, p)
			p *= c
		}
		out = append(out, math.Log1p(math.Abs(c)))
		out = append(out, 1/(0.05+math.Abs(c)))
	}
	return out
}

// polyExpandNames names the expanded basis columns.
func polyExpandNames(chars []string) []string {
	var out []string
	for _, c := range chars {
		for d := 1; d <= polyDegree; d++ {
			out = append(out, fmt.Sprintf("%s^%d", c, d))
		}
		out = append(out, "log1p("+c+")")
		out = append(out, "inv("+c+")")
	}
	return out
}

// FitCounterModel models one counter column in terms of the characteristic
// columns of the frame.
func FitCounterModel(frame *dataset.Frame, counter string, chars []string, kind ModelKind) (*CounterModel, error) {
	x, err := frame.Matrix(chars)
	if err != nil {
		return nil, err
	}
	y, err := frame.Column(counter)
	if err != nil {
		return nil, err
	}

	cm := &CounterModel{Counter: counter, chars: append([]string(nil), chars...)}
	cm.scales = make([]float64, len(chars))
	for j := range chars {
		for _, row := range x {
			if v := math.Abs(row[j]); v > cm.scales[j] {
				cm.scales[j] = v
			}
		}
		if cm.scales[j] == 0 {
			cm.scales[j] = 1
		}
	}

	fitGLM := func() error {
		xg := make([][]float64, len(x))
		for i, row := range x {
			xg[i] = polyExpandRow(cm.normalize(row))
		}
		g, err := glm.Fit(xg, y, polyExpandNames(chars), glm.Gaussian)
		if err != nil {
			return err
		}
		cm.g = g
		cm.Kind = "glm"
		cm.TrainR2 = g.RSquared(xg, y)
		cm.ResidualDeviance = g.Deviance
		return nil
	}
	fitMARS := func() error {
		m, err := mars.Fit(x, y, chars, mars.DefaultConfig())
		if err != nil {
			return err
		}
		cm.m = m
		cm.g = nil
		cm.Kind = "mars"
		cm.TrainR2 = m.TrainR2
		cm.ResidualDeviance = 0
		return nil
	}

	switch kind {
	case GLMModel:
		if err := fitGLM(); err != nil {
			return nil, fmt.Errorf("core: GLM for %s: %w", counter, err)
		}
	case MARSModel:
		if err := fitMARS(); err != nil {
			return nil, fmt.Errorf("core: MARS for %s: %w", counter, err)
		}
	default:
		if err := fitGLM(); err != nil || cm.TrainR2 < glmFallbackR2 {
			if merr := fitMARS(); merr != nil {
				if err != nil {
					return nil, fmt.Errorf("core: modeling %s: glm: %v; mars: %w", counter, err, merr)
				}
				// Keep the GLM if MARS fails but GLM fitted.
			}
		}
	}
	return cm, nil
}

// ProblemScaler predicts execution time for unseen problem characteristics
// (§6.1): a reduced forest over the top-k counters plus characteristics,
// and per-counter models that generate counter values from characteristics
// alone.
type ProblemScaler struct {
	// Reduced is the top-k analysis whose forest makes the predictions.
	Reduced *Analysis
	// CharNames are the problem characteristics (model inputs).
	CharNames []string
	// Models maps each retained counter to its characteristics model.
	Models map[string]*CounterModel
	// Degradation, when non-nil, discloses that the training frame came
	// from an incomplete collection and how it was repaired. It does not
	// participate in prediction.
	Degradation *Degradation
}

// NewProblemScaler builds the scaler from a full analysis: it reduces to
// the top-k predictors, then models every retained counter in terms of the
// frame's problem characteristics.
func NewProblemScaler(a *Analysis, k int, kind ModelKind) (*ProblemScaler, error) {
	var chars []string
	for _, n := range a.Predictors {
		if isCharacteristic(n) {
			chars = append(chars, n)
		}
	}
	if len(chars) == 0 {
		return nil, errors.New("core: frame has no problem-characteristic columns")
	}

	// Select distinct top predictors (collapsing perfectly correlated
	// counter families) and refit the forest on them.
	vars := a.TopDistinctPredictors(k, 0.999)
	reduced, err := AnalyzeWithPredictors(a.Frame, vars, a.cfg)
	if err != nil {
		return nil, err
	}
	ps := &ProblemScaler{
		Reduced:   reduced,
		CharNames: chars,
		Models:    make(map[string]*CounterModel),
	}
	for _, name := range reduced.Predictors {
		if isCharacteristic(name) {
			continue
		}
		cm, err := FitCounterModel(a.Train, name, chars, kind)
		if err != nil {
			return nil, err
		}
		ps.Models[name] = cm
	}
	return ps, nil
}

// PredictTime predicts the execution time for the given problem
// characteristics: retained counters are generated from their models, then
// the reduced forest maps the assembled vector to time.
func (ps *ProblemScaler) PredictTime(chars map[string]float64) (float64, error) {
	t, _, err := ps.PredictDetail(chars)
	return t, err
}

// assembleVector builds the reduced forest's input vector for one query:
// characteristics are taken from the query, counters from their models. It
// returns the vector and the intermediate counter predictions.
func (ps *ProblemScaler) assembleVector(chars map[string]float64) ([]float64, map[string]float64, error) {
	charVec := make([]float64, len(ps.CharNames))
	for i, n := range ps.CharNames {
		v, ok := chars[n]
		if !ok {
			return nil, nil, fmt.Errorf("core: missing characteristic %q", n)
		}
		charVec[i] = v
	}
	counters := make(map[string]float64, len(ps.Models))
	x := make([]float64, len(ps.Reduced.Predictors))
	for i, name := range ps.Reduced.Predictors {
		if isCharacteristic(name) {
			v, ok := chars[name]
			if !ok {
				return nil, nil, fmt.Errorf("core: missing characteristic %q", name)
			}
			x[i] = v
			continue
		}
		x[i] = ps.Models[name].Predict(charVec)
		counters[name] = x[i]
	}
	return x, counters, nil
}

// PredictDetail is PredictTime plus the intermediate per-counter
// predictions the forest consumed — the serving layer's response payload.
func (ps *ProblemScaler) PredictDetail(chars map[string]float64) (float64, map[string]float64, error) {
	x, counters, err := ps.assembleVector(chars)
	if err != nil {
		return 0, nil, err
	}
	// PredictVector reports a malformed vector as an error: the serving path
	// runs through here, and one bad predict must never panic the server.
	t, err := ps.Reduced.Forest.PredictVector(x)
	if err != nil {
		return 0, nil, err
	}
	return t, counters, nil
}

// PredictDetailAll is PredictDetail over many queries at once, routed
// through the forest's tree-major flat batch path (Forest.PredictAll),
// which is bit-identical to the per-row walk for every worker count. Rows
// fail independently: errs[i] reports row i's problem while every other
// row still gets its prediction — the serving coalescer batches unrelated
// requests, so one bad vector must never fail its batch-mates.
func (ps *ProblemScaler) PredictDetailAll(rows []map[string]float64) (times []float64, counters []map[string]float64, errs []error) {
	times = make([]float64, len(rows))
	counters = make([]map[string]float64, len(rows))
	errs = make([]error, len(rows))
	xs := make([][]float64, 0, len(rows))
	idx := make([]int, 0, len(rows))
	for i, row := range rows {
		x, cs, err := ps.assembleVector(row)
		if err != nil {
			errs[i] = err
			continue
		}
		counters[i] = cs
		xs = append(xs, x)
		idx = append(idx, i)
	}
	if len(xs) == 0 {
		return times, counters, errs
	}
	preds, err := ps.predictAllSafe(xs)
	if err != nil {
		// The batch path refused (malformed vector reported as a panic):
		// fall back to the per-row error path so each row fails or
		// succeeds on its own.
		for j, i := range idx {
			times[i], errs[i] = ps.Reduced.Forest.PredictVector(xs[j])
		}
		return times, counters, errs
	}
	for j, i := range idx {
		times[i] = preds[j]
	}
	return times, counters, errs
}

// predictAllSafe runs the forest batch path with its historical
// panic-on-malformed-row semantics converted to an error.
func (ps *ProblemScaler) predictAllSafe(xs [][]float64) (out []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("core: batch predict: %v", r)
		}
	}()
	return ps.Reduced.Forest.PredictAll(xs), nil
}

// CharacteristicScales reports, per problem characteristic, the maximum
// absolute value seen in training — the normalization scale the counter
// models carry in the bundle. Load generators use it to sample realistic
// synthetic query distributions from a bundle alone. Characteristics
// without a fitted counter model (a scaler whose reduced forest kept only
// characteristics) default to scale 1.
func (ps *ProblemScaler) CharacteristicScales() map[string]float64 {
	out := make(map[string]float64, len(ps.CharNames))
	for _, n := range ps.CharNames {
		out[n] = 1
	}
	// Every counter model is fitted on the same training frame over the
	// same characteristic order, so any one of them carries the scales.
	for _, cm := range ps.Models {
		for i, c := range cm.chars {
			if i < len(cm.scales) {
				out[c] = cm.scales[i]
			}
		}
		break
	}
	return out
}

// Evaluation compares characteristic-only predictions against measured
// times for every row of a frame.
type Evaluation struct {
	Chars     []map[string]float64
	Predicted []float64
	Actual    []float64
	MSE       float64
	R2        float64
}

// Evaluate runs PredictTime for every row of the frame (typically the test
// split) using only its characteristic columns, and scores the result
// against the measured time — the paper's Fig. 5(b)/6(b) experiment.
func (ps *ProblemScaler) Evaluate(frame *dataset.Frame) (*Evaluation, error) {
	n := frame.NumRows()
	ev := &Evaluation{}
	for i := 0; i < n; i++ {
		chars := make(map[string]float64, len(ps.CharNames))
		for _, c := range ps.CharNames {
			v, err := frame.At(i, c)
			if err != nil {
				return nil, err
			}
			chars[c] = v
		}
		pred, err := ps.PredictTime(chars)
		if err != nil {
			return nil, err
		}
		actual, err := frame.At(i, ps.Reduced.cfg.response())
		if err != nil {
			return nil, err
		}
		ev.Chars = append(ev.Chars, chars)
		ev.Predicted = append(ev.Predicted, pred)
		ev.Actual = append(ev.Actual, actual)
	}
	ev.MSE = stats.MSE(ev.Predicted, ev.Actual)
	ev.R2 = stats.RSquared(ev.Predicted, ev.Actual)
	return ev, nil
}

// AverageCounterR2 returns the mean training R² over the counter models —
// the paper's "average R-squared of 0.99" quality summary.
func (ps *ProblemScaler) AverageCounterR2() float64 {
	if len(ps.Models) == 0 {
		return 0
	}
	var s float64
	for _, m := range ps.Models {
		s += m.TrainR2
	}
	return s / float64(len(ps.Models))
}
