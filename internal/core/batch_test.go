package core

import (
	"math"
	"testing"
)

// TestPredictDetailAllBitIdentical: the batched predict path must return,
// for every valid row, exactly the bits PredictDetail returns row by row —
// the serving coalescer's correctness rests on this.
func TestPredictDetailAllBitIdentical(t *testing.T) {
	ps := fitScaler(t, 11)
	rows := charGrid()
	times, counters, errs := ps.PredictDetailAll(rows)
	if len(times) != len(rows) || len(counters) != len(rows) || len(errs) != len(rows) {
		t.Fatalf("lengths %d/%d/%d for %d rows", len(times), len(counters), len(errs), len(rows))
	}
	for i, row := range rows {
		wantT, wantC, err := ps.PredictDetail(row)
		if err != nil {
			t.Fatal(err)
		}
		if errs[i] != nil {
			t.Fatalf("row %d: batch errored: %v", i, errs[i])
		}
		if math.Float64bits(times[i]) != math.Float64bits(wantT) {
			t.Fatalf("row %d: batch time %v != sequential %v", i, times[i], wantT)
		}
		if len(counters[i]) != len(wantC) {
			t.Fatalf("row %d: %d counters, want %d", i, len(counters[i]), len(wantC))
		}
		for name, want := range wantC {
			if got := counters[i][name]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("row %d counter %s: %v != %v", i, name, got, want)
			}
		}
	}
}

// TestPredictDetailAllRowsFailIndependently: a bad row errors alone; its
// neighbors still predict bit-identically to the sequential path.
func TestPredictDetailAllRowsFailIndependently(t *testing.T) {
	ps := fitScaler(t, 11)
	rows := []map[string]float64{
		{"size": 256},
		{"wrong_characteristic": 1}, // missing "size"
		{"size": 1024},
	}
	times, _, errs := ps.PredictDetailAll(rows)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good rows errored: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("bad row did not error")
	}
	for _, i := range []int{0, 2} {
		want, _, err := ps.PredictDetail(rows[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(times[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: %v != %v beside a failing row", i, times[i], want)
		}
	}

	// Empty input is a no-op, not a panic.
	ts, cs, es := ps.PredictDetailAll(nil)
	if len(ts) != 0 || len(cs) != 0 || len(es) != 0 {
		t.Fatalf("nil rows returned %d/%d/%d results", len(ts), len(cs), len(es))
	}
}

// TestCharacteristicScales: every model characteristic gets a positive
// training scale the load generator can sample from.
func TestCharacteristicScales(t *testing.T) {
	ps := fitScaler(t, 11)
	scales := ps.CharacteristicScales()
	if len(scales) != len(ps.CharNames) {
		t.Fatalf("%d scales for %d characteristics", len(scales), len(ps.CharNames))
	}
	for _, name := range ps.CharNames {
		s, ok := scales[name]
		if !ok || !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
			t.Fatalf("characteristic %q scale %v (present %v)", name, s, ok)
		}
	}
	// The fixture's sizes reach 64*64; max-abs scaling must reflect that,
	// not default to 1.
	if scales["size"] < 64 {
		t.Fatalf("size scale %v does not reflect training data", scales["size"])
	}
}

// TestBundleMeta: the metadata accessor mirrors the bundle's identity
// without touching serving internals.
func TestBundleMeta(t *testing.T) {
	ps := fitScaler(t, 11)
	meta := ps.Meta()
	if meta.Version != BundleVersion {
		t.Fatalf("meta version %d, want %d", meta.Version, BundleVersion)
	}
	if meta.Response != ps.Response() {
		t.Fatalf("meta response %q, want %q", meta.Response, ps.Response())
	}
	if len(meta.CharNames) != len(ps.CharNames) {
		t.Fatalf("meta has %d characteristics, scaler %d", len(meta.CharNames), len(ps.CharNames))
	}
	if meta.NumTrees != ps.Reduced.Forest.NumTrees() || meta.NumTrees == 0 {
		t.Fatalf("meta trees %d, forest %d", meta.NumTrees, ps.Reduced.Forest.NumTrees())
	}
	if meta.Engine != ps.Reduced.Forest.Engine() {
		t.Fatalf("meta engine %q, forest %q", meta.Engine, ps.Reduced.Forest.Engine())
	}
	if meta.Counters != len(ps.Models) {
		t.Fatalf("meta counters %d, scaler %d", meta.Counters, len(ps.Models))
	}
	if meta.Degraded {
		t.Fatal("healthy fixture reported degraded")
	}
}
