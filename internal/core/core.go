// Package core implements BlackForest itself — the paper's contribution:
// a statistical performance-analysis pipeline over GPU hardware performance
// counters. The five stages of §4.2 map onto this package as follows:
//
//  1. Data collection        — Collect (profiles a workload sweep into a frame)
//  2. RF construction and
//     validation             — Analyze (80:20 split, forest fit, test metrics)
//  3. Variable importance    — Analysis.Importance, Analysis.Reduce (top-k
//     refit with predictive-power check), partial dependence
//  4. Refinement with PCA    — Analysis.PCARefine (components, loadings,
//     varimax)
//  5. Results interpretation — bottleneck classification (bottleneck.go),
//     counter models in problem characteristics (scaling.go), problem-
//     and hardware-scaling prediction (scaling.go, hwscale.go)
package core

import (
	"errors"
	"fmt"
	"time"

	"blackforest/internal/dataset"
	"blackforest/internal/faults"
	"blackforest/internal/forest"
	"blackforest/internal/gpusim"
	"blackforest/internal/obs"
	"blackforest/internal/profiler"
	"blackforest/internal/runcache"
)

// ResponseColumn is the default response variable in collected frames.
const ResponseColumn = "time_ms"

// PowerColumn is the alternative response of the paper's §7 extension:
// average power draw, as read from the board sensor (modeled here by the
// simulator's energy model).
const PowerColumn = "power_w"

// responseColumns lists every column that is a response rather than a
// predictor; whichever is not being modeled is excluded from the
// predictor set (it would leak the answer).
var responseColumns = []string{ResponseColumn, PowerColumn}

// Config controls the modeling pipeline.
type Config struct {
	// Response is the response column: ResponseColumn (default) or
	// PowerColumn for the paper's §7 power-modeling extension.
	Response string
	// TrainFrac is the training share of the random split (paper: 0.8).
	TrainFrac float64
	// Forest configures the random forest.
	Forest forest.Config
	// TopK is how many of the most important predictors the reduced
	// model retains (paper: "usually between 6 and 8").
	TopK int
	// PCAVariance is the explained-variance target for component
	// retention in the PCA refinement (paper: ≥96–97%).
	PCAVariance float64
	// Seed drives the split and the forest.
	Seed uint64
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		TrainFrac:   0.8,
		Forest:      forest.DefaultConfig(),
		TopK:        7,
		PCAVariance: 0.96,
	}
}

// CollectOptions controls data collection.
type CollectOptions struct {
	// MaxSimBlocks caps per-launch detailed simulation (0 = all blocks).
	MaxSimBlocks int
	// NoiseSigma is the profiler's measurement noise (0 = default 1.5%,
	// negative = none).
	NoiseSigma float64
	// Seed seeds the profiler noise.
	Seed uint64
	// Workers bounds how many runs are profiled concurrently: 0 selects
	// runtime.NumCPU(), 1 collects sequentially. Every worker count
	// produces the same frame bit for bit — per-run noise derives from
	// the workload identity, not from sweep position.
	Workers int
	// Faults optionally injects simulated collection failures; nil (the
	// default) leaves collection bit-identical to historic behavior.
	Faults *faults.Injector
	// Retries is how many extra attempts a failed run gets (0 = fail
	// fast).
	Retries int
	// RetryBackoff is the base delay between attempts (attempt k waits
	// RetryBackoff << k-1).
	RetryBackoff time.Duration
	// MinCompleteness is the column-completeness threshold for degraded
	// collections (0 selects DefaultMinCompleteness). Counter columns
	// below it are dropped; at or above it, missing cells are
	// mean-imputed.
	MinCompleteness float64
	// Cache optionally memoizes profiled runs content-addressed by their
	// identity (see profiler.RunKey). Hits are bit-identical to
	// recomputes; identical in-flight runs coalesce. Nil disables.
	Cache *runcache.Cache[*profiler.Profile]
	// Gate optionally shares one simulation worker pool across
	// concurrent collections (overrides Workers when set), so a suite of
	// experiments drains through one global scheduler.
	Gate profiler.Gate
	// Tracer optionally records profiling spans (run → attempt →
	// simulate, one lane per worker slot) and cache-hit instants. Nil
	// disables tracing; collected frames are bit-identical either way.
	Tracer *obs.Tracer
}

// Collect profiles every workload run on the device and assembles the
// modeling frame: one row per run with problem characteristics, all
// counters available on the device's architecture, and the response
// column time_ms. Constant (zero-variance) counters are dropped — they
// cannot inform the forest. Runs are profiled concurrently per
// CollectOptions.Workers; rows keep input order regardless.
func Collect(dev *gpusim.Device, runs []profiler.Workload, opt CollectOptions) (*dataset.Frame, error) {
	frame, _, err := CollectWithReport(dev, runs, opt)
	return frame, err
}

// CollectWithReport is Collect plus the degradation report: when fault
// injection (or a future lossy collector) leaves counters missing from
// some runs, the returned Degradation records which columns were dropped
// or mean-imputed. It is nil for a complete collection, whose frame is
// bit-identical to historic Collect output.
func CollectWithReport(dev *gpusim.Device, runs []profiler.Workload, opt CollectOptions) (*dataset.Frame, *Degradation, error) {
	if len(runs) == 0 {
		return nil, nil, errors.New("core: no runs to collect")
	}
	p := profiler.New(dev, profiler.Options{
		MaxSimBlocks: opt.MaxSimBlocks,
		NoiseSigma:   opt.NoiseSigma,
		Seed:         opt.Seed,
		Faults:       opt.Faults,
		Retries:      opt.Retries,
		RetryBackoff: opt.RetryBackoff,
		Cache:        opt.Cache,
		Gate:         opt.Gate,
		Tracer:       opt.Tracer,
	})
	profiles, err := p.RunAll(runs, opt.Workers)
	if err != nil {
		return nil, nil, fmt.Errorf("core: collecting: %w", err)
	}
	frame, deg, err := assembleFrame(profiles, opt.MinCompleteness)
	if err != nil {
		return nil, nil, err
	}
	return frame.DropConstantColumns(responseColumns...), deg, nil
}

// Predictors returns the frame's predictor columns: everything except the
// response columns (time and power — whichever is not being modeled must
// not be a predictor either, since each nearly determines the other).
func Predictors(frame *dataset.Frame) []string {
	var out []string
	for _, n := range frame.Names() {
		if !isResponse(n) {
			out = append(out, n)
		}
	}
	return out
}

// isResponse reports whether the column is a response variable.
func isResponse(name string) bool {
	for _, r := range responseColumns {
		if name == r {
			return true
		}
	}
	return false
}

// response returns the configured response column name.
func (c Config) response() string {
	if c.Response == "" {
		return ResponseColumn
	}
	return c.Response
}
