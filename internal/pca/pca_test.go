package pca

import (
	"math"
	"testing"
	"testing/quick"

	"blackforest/internal/stats"
)

func eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// correlated2D generates points stretched along the (1,1) diagonal.
func correlated2D(n int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	var out [][]float64
	for i := 0; i < n; i++ {
		base := rng.NormFloat64() * 5
		out = append(out, []float64{
			base + rng.NormFloat64()*0.3,
			base + rng.NormFloat64()*0.3,
		})
	}
	return out
}

func TestFitDiagonalStructure(t *testing.T) {
	x := correlated2D(200, 1)
	r, err := Fit(x, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	shares := r.ExplainedVariance()
	if shares[0] < 0.95 {
		t.Fatalf("PC1 explains %.2f, want > 0.95 for near-collinear data", shares[0])
	}
	// PC1 direction ≈ (±1/√2, ±1/√2), components equal in magnitude.
	l0, l1 := r.Loadings.At(0, 0), r.Loadings.At(1, 0)
	if !eq(math.Abs(l0), math.Abs(l1), 0.05) {
		t.Fatalf("PC1 loadings not symmetric: %v %v", l0, l1)
	}
	if math.Signbit(l0) != math.Signbit(l1) {
		t.Fatal("PC1 loadings should share sign for positively correlated data")
	}
}

func TestExplainedVarianceSumsToOne(t *testing.T) {
	x := correlated2D(100, 2)
	r, err := Fit(x, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range r.ExplainedVariance() {
		sum += s
	}
	if !eq(sum, 1, 1e-9) {
		t.Fatalf("variance shares sum to %v", sum)
	}
}

func TestComponentsFor(t *testing.T) {
	x := correlated2D(100, 3)
	r, _ := Fit(x, []string{"a", "b"})
	if r.ComponentsFor(0.9) != 1 {
		t.Fatalf("near-collinear data needs %d components for 90%%", r.ComponentsFor(0.9))
	}
	if r.ComponentsFor(1.0) != 2 {
		t.Fatal("full variance needs all components")
	}
}

func TestScoresUncorrelated(t *testing.T) {
	x := correlated2D(300, 4)
	r, _ := Fit(x, []string{"a", "b"})
	s0 := r.Scores.Col(0)
	s1 := r.Scores.Col(1)
	if c := stats.Correlation(s0, s1); math.Abs(c) > 0.05 {
		t.Fatalf("component scores correlated: %v", c)
	}
}

func TestProject(t *testing.T) {
	x := correlated2D(100, 5)
	r, _ := Fit(x, []string{"a", "b"})
	// Projecting training points must reproduce the score rows.
	got, err := r.Project(x[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(got[0], r.Scores.At(0, 0), 1e-9) || !eq(got[1], r.Scores.At(0, 1), 1e-9) {
		t.Fatalf("projection %v, scores %v %v", got, r.Scores.At(0, 0), r.Scores.At(0, 1))
	}
	if _, err := r.Project([]float64{1}, 1); err == nil {
		t.Fatal("wrong input width accepted")
	}
	if _, err := r.Project(x[0], 3); err == nil {
		t.Fatal("too many components accepted")
	}
}

func TestComponentLoadingsSorted(t *testing.T) {
	x := correlated2D(100, 6)
	r, _ := Fit(x, []string{"a", "b"})
	ld, err := r.ComponentLoadings(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ld) != 2 {
		t.Fatalf("loadings count %d", len(ld))
	}
	if math.Abs(ld[0].Value) < math.Abs(ld[1].Value) {
		t.Fatal("loadings not sorted by |value|")
	}
	if _, err := r.ComponentLoadings(5); err == nil {
		t.Fatal("bad component index accepted")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Fit([][]float64{{1, 2}}, []string{"a", "b"}); err == nil {
		t.Fatal("single observation accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []string{"a", "b"}); err == nil {
		t.Fatal("name mismatch accepted")
	}
}

func TestVarimaxPreservesCommunalities(t *testing.T) {
	// Varimax is an orthogonal rotation: each variable's squared-loading
	// sum over the rotated components must equal the unrotated one.
	rng := stats.NewRNG(7)
	var x [][]float64
	for i := 0; i < 150; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		x = append(x, []float64{
			a + 0.1*rng.NormFloat64(),
			a + 0.1*rng.NormFloat64(),
			b + 0.1*rng.NormFloat64(),
			b + 0.1*rng.NormFloat64(),
		})
	}
	r, err := Fit(x, []string{"a1", "a2", "b1", "b2"})
	if err != nil {
		t.Fatal(err)
	}
	k := 2
	rot, err := r.Varimax(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		var before, after float64
		for j := 0; j < k; j++ {
			l := r.Loadings.At(i, j) * math.Sqrt(r.Eigenvalues[j])
			before += l * l
			after += rot.At(i, j) * rot.At(i, j)
		}
		if !eq(before, after, 1e-6) {
			t.Fatalf("communalities changed: %v → %v", before, after)
		}
	}
	// Varimax should concentrate each variable on one factor: the max
	// |loading| per row should dominate.
	for i := 0; i < 4; i++ {
		big := math.Max(math.Abs(rot.At(i, 0)), math.Abs(rot.At(i, 1)))
		small := math.Min(math.Abs(rot.At(i, 0)), math.Abs(rot.At(i, 1)))
		if small > big/2 {
			t.Fatalf("row %d not simplified: %v vs %v", i, big, small)
		}
	}
	if _, err := r.Varimax(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// Property: loadings matrix columns are orthonormal.
func TestLoadingsOrthonormal(t *testing.T) {
	f := func(seed uint64) bool {
		x := correlated2D(60, seed)
		r, err := Fit(x, []string{"a", "b"})
		if err != nil {
			return false
		}
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				var dot float64
				for k := 0; k < 2; k++ {
					dot += r.Loadings.At(k, a) * r.Loadings.At(k, b)
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if !eq(dot, want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
