// Package pca implements principal component analysis with varimax rotation
// and factor-loading interpretation, mirroring the R prcomp + varimax
// combination the paper's toolchain uses for the "refinement with PCA" stage
// (§4.2): reducing correlated counters to a few interpretable components and
// reading each variable's contribution off its loadings.
package pca

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"blackforest/internal/mat"
	"blackforest/internal/stats"
)

// Result holds a fitted PCA.
type Result struct {
	// Names are the input variable names, in column order.
	Names []string
	// Means and SDs are the standardization parameters applied per column.
	Means []float64
	SDs   []float64
	// Loadings is the p×p matrix of eigenvectors (columns are components,
	// sorted by descending eigenvalue). Loadings[i][j] is variable i's
	// loading on component j.
	Loadings *mat.Matrix
	// Eigenvalues are the variances along each component, descending.
	Eigenvalues []float64
	// Scores is the n×p matrix of observations projected onto components.
	Scores *mat.Matrix
}

// Fit runs PCA on the design matrix x (rows are observations, columns are
// variables named by names). Columns are standardized to zero mean and unit
// variance first, so PCA operates on the correlation matrix — appropriate
// for counters with wildly different scales.
func Fit(x [][]float64, names []string) (*Result, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("pca: empty input")
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("pca: no variables")
	}
	if len(names) != p {
		return nil, fmt.Errorf("pca: %d names for %d variables", len(names), p)
	}
	if n < 2 {
		return nil, errors.New("pca: need at least 2 observations")
	}

	// Standardize columns.
	z := mat.New(n, p)
	means := make([]float64, p)
	sds := make([]float64, p)
	col := make([]float64, n)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			col[i] = x[i][j]
		}
		zc, m, s := stats.Standardize(col)
		means[j], sds[j] = m, s
		for i := 0; i < n; i++ {
			z.Set(i, j, zc[i])
		}
	}

	// Correlation matrix = ZᵀZ/(n−1).
	zt := z.T()
	c, err := zt.Mul(z)
	if err != nil {
		return nil, err
	}
	c = c.Scale(1 / float64(n-1))

	eig, err := mat.SymEigen(c)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition: %w", err)
	}
	// Numerical noise can make tiny eigenvalues slightly negative.
	for i, v := range eig.Values {
		if v < 0 {
			eig.Values[i] = 0
		}
	}

	scores, err := z.Mul(eig.Vectors)
	if err != nil {
		return nil, err
	}

	return &Result{
		Names:       append([]string(nil), names...),
		Means:       means,
		SDs:         sds,
		Loadings:    eig.Vectors,
		Eigenvalues: eig.Values,
		Scores:      scores,
	}, nil
}

// ExplainedVariance returns each component's share of total variance.
func (r *Result) ExplainedVariance() []float64 {
	var total float64
	for _, v := range r.Eigenvalues {
		total += v
	}
	out := make([]float64, len(r.Eigenvalues))
	if total == 0 {
		return out
	}
	for i, v := range r.Eigenvalues {
		out[i] = v / total
	}
	return out
}

// ComponentsFor returns the smallest k such that the first k components
// explain at least the given fraction of total variance (e.g. 0.96).
func (r *Result) ComponentsFor(fraction float64) int {
	var cum float64
	for i, share := range r.ExplainedVariance() {
		cum += share
		if cum >= fraction {
			return i + 1
		}
	}
	return len(r.Eigenvalues)
}

// Project maps a raw observation (unstandardized, in input column order)
// onto the first k components.
func (r *Result) Project(x []float64, k int) ([]float64, error) {
	if len(x) != len(r.Names) {
		return nil, fmt.Errorf("pca: projecting %d values, fitted on %d variables", len(x), len(r.Names))
	}
	if k <= 0 || k > len(r.Eigenvalues) {
		return nil, fmt.Errorf("pca: k=%d out of range [1,%d]", k, len(r.Eigenvalues))
	}
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		var s float64
		for i := range x {
			s += (x[i] - r.Means[i]) / r.SDs[i] * r.Loadings.At(i, j)
		}
		out[j] = s
	}
	return out, nil
}

// Loading is one variable's loading on one component.
type Loading struct {
	Variable string
	Value    float64
}

// ComponentLoadings returns variable loadings for component j, sorted by
// descending absolute value — the paper's factor-loadings interpretation
// aid ("positively and strongly connected to PC2...").
func (r *Result) ComponentLoadings(j int) ([]Loading, error) {
	if j < 0 || j >= len(r.Eigenvalues) {
		return nil, fmt.Errorf("pca: component %d out of range [0,%d)", j, len(r.Eigenvalues))
	}
	out := make([]Loading, len(r.Names))
	for i, name := range r.Names {
		out[i] = Loading{Variable: name, Value: r.Loadings.At(i, j)}
	}
	sort.Slice(out, func(a, b int) bool {
		av, bv := math.Abs(out[a].Value), math.Abs(out[b].Value)
		if av != bv {
			return av > bv
		}
		return out[a].Variable < out[b].Variable
	})
	return out, nil
}

// Varimax rotates the first k components' loadings to maximize the varimax
// criterion (Kaiser, 1958), concentrating each variable's weight on few
// components for interpretability. It returns a new p×k loadings matrix;
// the receiver is unchanged.
func (r *Result) Varimax(k int) (*mat.Matrix, error) {
	p := len(r.Names)
	if k <= 0 || k > len(r.Eigenvalues) {
		return nil, fmt.Errorf("pca: varimax k=%d out of range [1,%d]", k, len(r.Eigenvalues))
	}
	// Scale eigenvectors by sqrt(eigenvalue) to get factor loadings.
	l := mat.New(p, k)
	for j := 0; j < k; j++ {
		s := math.Sqrt(r.Eigenvalues[j])
		for i := 0; i < p; i++ {
			l.Set(i, j, r.Loadings.At(i, j)*s)
		}
	}
	if k == 1 {
		return l, nil
	}

	const maxIter = 100
	const tol = 1e-8
	for iter := 0; iter < maxIter; iter++ {
		var rotated float64
		for a := 0; a < k-1; a++ {
			for b := a + 1; b < k; b++ {
				// Planar rotation angle maximizing the varimax
				// criterion for columns a, b.
				var u, v, num, den float64
				var sumU, sumV, sumUV, sumU2V2 float64
				for i := 0; i < p; i++ {
					xa, xb := l.At(i, a), l.At(i, b)
					u = xa*xa - xb*xb
					v = 2 * xa * xb
					sumU += u
					sumV += v
					sumUV += u * v
					sumU2V2 += u*u - v*v
				}
				pf := float64(p)
				num = 2 * (pf*sumUV - sumU*sumV)
				den = pf*sumU2V2 - (sumU*sumU - sumV*sumV)
				if math.Abs(num) < tol && math.Abs(den) < tol {
					continue
				}
				phi := 0.25 * math.Atan2(num, den)
				if math.Abs(phi) < tol {
					continue
				}
				c, s := math.Cos(phi), math.Sin(phi)
				for i := 0; i < p; i++ {
					xa, xb := l.At(i, a), l.At(i, b)
					l.Set(i, a, c*xa+s*xb)
					l.Set(i, b, -s*xa+c*xb)
				}
				rotated += math.Abs(phi)
			}
		}
		if rotated < tol {
			break
		}
	}
	return l, nil
}
