package kernels

import (
	"fmt"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// histBins is the histogram width (256-bin byte histogram, as in the CUDA
// SDK histogram256 sample).
const histBins = 256

// Histogram is the CUDA SDK 256-bin histogram study — the atomics
// counterpart of the reduction/transpose optimization ladders:
//
//	0 — global atomics: every thread atomicAdds directly into the global
//	    bin array; contention serializes same-bin updates device-wide;
//	1 — shared privatization: each block accumulates a private histogram
//	    in shared memory (shared atomics, block-local contention) and
//	    merges it into the global array once at the end.
//
// The Skew parameter concentrates the input distribution to dial the
// same-address contention from uniform (low) to single-bin (maximal) —
// the knob that makes atomic_replay_overhead an informative counter.
type Histogram struct {
	// Variant selects the kernel, 0–1.
	Variant int
	// N is the number of input elements.
	N int
	// BlockSize is threads per block (default 256).
	BlockSize int
	// Skew in [0, 1) is the fraction of inputs forced into bin 0.
	Skew float64
	// Seed generates the input.
	Seed uint64

	input []uint8
	bins  []uint32
}

// Name implements profiler.Workload.
func (h *Histogram) Name() string { return fmt.Sprintf("histogram%d", h.Variant) }

// Characteristics implements profiler.Workload. A non-default block size
// (the optimizer's transformation) joins the identity so transformed runs
// never share a noise seed or cache key with the baseline; at the default
// it is omitted, keeping every existing run's identity — and therefore
// every existing profile — bit-identical.
func (h *Histogram) Characteristics() map[string]float64 {
	c := map[string]float64{"size": float64(h.N), "skew": h.Skew}
	if h.BlockSize != 0 && h.BlockSize != 256 {
		c["block_size"] = float64(h.BlockSize)
	}
	return c
}

// Params implements the optimizer's Tunable contract: the launch-config
// parameters a search may transform, at their effective values.
func (h *Histogram) Params() map[string]int {
	bs := h.BlockSize
	if bs == 0 {
		bs = 256
	}
	return map[string]int{"block_size": bs}
}

// ParamDomain implements the optimizer's Tunable contract.
func (h *Histogram) ParamDomain(name string) []int {
	if name == "block_size" {
		return []int{64, 128, 256, 512, 1024}
	}
	return nil
}

// WithParam implements the optimizer's Tunable contract: a fresh,
// unplanned copy of the workload with one parameter changed.
func (h *Histogram) WithParam(name string, value int) (profiler.Workload, error) {
	if name != "block_size" {
		return nil, fmt.Errorf("kernels: histogram has no parameter %q", name)
	}
	return &Histogram{Variant: h.Variant, N: h.N, BlockSize: value,
		Skew: h.Skew, Seed: h.Seed}, nil
}

// InputSeed implements profiler.InputSeeded: repeated runs at the same
// size but with fresh inputs keep distinct noise identities.
func (h *Histogram) InputSeed() uint64 { return h.Seed }

// Bins returns the computed histogram (valid after a fully-simulated run).
func (h *Histogram) Bins() []uint32 { return h.bins }

// Input returns the generated input bytes (valid after Plan).
func (h *Histogram) Input() []uint8 { return h.input }

// Release drops the input so sweeps do not accumulate it.
func (h *Histogram) Release() { h.input = nil }

// CPUHistogram is the reference histogram.
func CPUHistogram(data []uint8) []uint32 {
	out := make([]uint32, histBins)
	for _, v := range data {
		out[v]++
	}
	return out
}

// Plan implements profiler.Workload.
func (h *Histogram) Plan(dev *gpusim.Device) ([]profiler.Launch, error) {
	if h.Variant < 0 || h.Variant > 1 {
		return nil, fmt.Errorf("kernels: histogram variant %d out of range [0,1]", h.Variant)
	}
	if h.N <= 0 {
		return nil, fmt.Errorf("kernels: histogram size %d must be positive", h.N)
	}
	if h.BlockSize == 0 {
		h.BlockSize = 256
	}
	if h.BlockSize < 64 || h.BlockSize > 1024 || h.BlockSize&(h.BlockSize-1) != 0 {
		return nil, fmt.Errorf("kernels: histogram block size %d must be a power of two in [64,1024]", h.BlockSize)
	}
	if h.Skew < 0 || h.Skew >= 1 {
		return nil, fmt.Errorf("kernels: histogram skew %v must be in [0,1)", h.Skew)
	}
	h.input = make([]uint8, h.N)
	skewCut := uint64(h.Skew * float64(1<<24))
	for i := range h.input {
		r := splitmix64(h.Seed + uint64(i))
		if r&0xffffff < skewCut {
			h.input[i] = 0
		} else {
			h.input[i] = uint8(r >> 24)
		}
	}
	h.bins = make([]uint32, histBins)

	blocks := ceilDiv(h.N, h.BlockSize)
	const maxBlocks = 240 // SDK-style grid cap; threads loop over input
	if blocks > maxBlocks {
		blocks = maxBlocks
	}
	shared := 0
	if h.Variant == 1 {
		shared = 4 * histBins
	}
	cfg := gpusim.LaunchConfig{
		GridDimX: blocks, GridDimY: 1,
		BlockDimX: h.BlockSize, BlockDimY: 1,
		RegsPerThread:     16,
		SharedMemPerBlock: shared,
	}
	return []profiler.Launch{{Label: h.Name(), Config: cfg, Kernel: h.kernel()}}, nil
}

func (h *Histogram) kernel() gpusim.KernelFunc {
	n := h.N
	input, bins := h.input, h.bins
	variant := h.Variant
	return func(w *gpusim.Warp) {
		bdim, _ := w.BlockDim()
		gdim, _ := w.GridDim()
		bx, _ := w.BlockIdx()
		valid := w.ValidMask()
		stride := bdim * gdim
		tid := laneInts(w.LinearTID)

		var priv []uint32
		if variant == 1 {
			priv = w.BlockState(histPrivSlot, func() any { return make([]uint32, histBins) }).([]uint32)
			// Zero the private histogram cooperatively (256 words,
			// blockSize threads): histBins/bdim stores per thread.
			for o := 0; o < histBins; o += bdim {
				sIdx := laneInts(func(l int) int { return (o + tid[l]) % histBins })
				sOffs := offs4(&sIdx)
				w.SharedStore(valid, &sOffs)
			}
			w.Sync()
		}

		gi := laneInts(func(l int) int { return bx*bdim + tid[l] })
		w.IntOps(valid, 2)
		for {
			inRange := valid & gpusim.MaskWhere(func(l int) bool { return gi[l] < n })
			w.Branch(valid, inRange)
			if inRange == 0 {
				break
			}
			addrs := addrs4(baseInput, &gi)
			w.GlobalLoad(inRange, &addrs, 1)

			var binIdx [gpusim.WarpSize]int
			for l := 0; l < gpusim.WarpSize; l++ {
				if inRange.Active(l) {
					binIdx[l] = int(input[gi[l]])
				}
			}
			w.IntOps(inRange, 1)
			if variant == 0 {
				gAddrs := addrs4(baseOutput, &binIdx)
				w.AtomicGlobalAdd(inRange, &gAddrs)
			} else {
				sOffs := offs4(&binIdx)
				w.AtomicSharedAdd(inRange, &sOffs)
			}
			// Functional accumulation (single-threaded simulation makes
			// plain adds exact).
			for l := 0; l < gpusim.WarpSize; l++ {
				if inRange.Active(l) {
					if variant == 0 {
						bins[binIdx[l]]++
					} else {
						priv[binIdx[l]]++
					}
				}
			}
			for l := range gi {
				gi[l] += stride
			}
			w.IntOps(valid, 1)
		}

		if variant == 1 {
			// Merge the private histogram into the global one.
			w.Sync()
			for o := 0; o < histBins; o += bdim {
				idx := laneInts(func(l int) int { return (o + tid[l]) % histBins })
				sOffs := offs4(&idx)
				w.SharedLoad(valid, &sOffs)
				gAddrs := addrs4(baseOutput, &idx)
				w.AtomicGlobalAdd(valid, &gAddrs)
			}
			// All warps passed the barrier, so accumulation is done;
			// warp 0 performs the functional merge once per block.
			if w.WarpID() == 0 {
				for b := 0; b < histBins; b++ {
					bins[b] += priv[b]
					priv[b] = 0
				}
			}
		}
	}
}
